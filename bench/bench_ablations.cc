/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, beyond the
 * paper's own experiments:
 *
 *  1. Death-throttle window and threshold (around the paper's
 *     N = 128 cycles, contexts/2 deaths) on the throttle-sensitive
 *     LZW workload.
 *  2. Context-stack configuration (off, paper 16 entries @ 200 cy,
 *     cheap swaps) on Dijkstra.
 *  3. Fetch-policy pressure: threads fetched per cycle (Icount.4.4's
 *     "4" against 1, 2 and 8) on QuickSort.
 *
 * Each ablation is one declarative sweep on the experiment engine.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/dijkstra.hh"
#include "workloads/lzw.hh"
#include "workloads/quicksort.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("design-choice ablations", scale);
    bench::JsonReport report("ablations", scale);
    auto runner = scale.runner();
    bool allCorrect = true;

    // ---- 1. throttle window / threshold ---------------------------
    {
        std::printf("[1] death-throttle parameters (LZW, tiny "
                    "workers)\n");
        TextTable t({"window", "threshold", "cycles", "granted",
                     "throttled"});
        wl::LzwParams p;
        p.length = scale.pick(1024, 2048, 4096);
        p.minSplit = 16;
        p.seed = scale.seed;

        const Cycle windows[] = {32, 128, 512};
        const int thresholds[] = {2, 4, 8};
        std::vector<harness::SweepPoint> points;
        for (Cycle window : windows) {
            for (int threshold : thresholds) {
                auto cfg = sim::MachineConfig::somt();
                cfg.division.deathWindow = window;
                cfg.division.deathThreshold = threshold;
                harness::SweepPoint pt;
                pt.label = "lzw/w" + std::to_string(window) + "/t" +
                           std::to_string(threshold);
                pt.run = [cfg, p] { return wl::runLzw(cfg, p); };
                points.push_back(std::move(pt));
            }
        }
        auto results = runner.run(points);
        std::size_t i = 0;
        for (Cycle window : windows) {
            for (int threshold : thresholds) {
                const auto &r = results[i++];
                allCorrect = allCorrect && r.correct;
                t.addRow({std::to_string(window),
                          std::to_string(threshold),
                          TextTable::count(r.stats.cycles),
                          TextTable::count(r.stats.divisionsGranted),
                          TextTable::count(
                              r.stats.divisionsThrottled)});
                if (window == 128 && threshold == 4)
                    report.count("lzw_cycles_paper_throttle",
                                 r.stats.cycles);
            }
        }
        t.render(std::cout);
        std::printf("paper setting: window 128, threshold "
                    "contexts/2 = 4\n\n");
    }

    // ---- 2. context stack -------------------------------------------
    {
        std::printf("[2] inactive-context stack (Dijkstra)\n");
        TextTable t({"configuration", "cycles", "swaps out",
                     "swaps in"});
        wl::DijkstraParams p;
        p.nodes = scale.pick(200, 500, 1000);
        p.seed = scale.seed;
        struct Variant
        {
            const char *name;
            bool enabled;
            Cycle swapLatency;
        };
        const std::vector<Variant> variants{
            {"off", false, 200},
            {"paper (200 cy)", true, 200},
            {"fast swap (15 cy)", true, 15},
            {"slow swap (800 cy)", true, 800}};

        std::vector<harness::SweepPoint> points;
        for (const auto &v : variants) {
            auto cfg = sim::MachineConfig::somt();
            cfg.enableContextStack = v.enabled;
            cfg.ctxStack.swapLatency = v.swapLatency;
            harness::SweepPoint pt;
            pt.label = std::string("dijkstra/") + v.name;
            pt.run = [cfg, p] { return wl::runDijkstra(cfg, p); };
            points.push_back(std::move(pt));
        }
        auto results = runner.run(points);
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const auto &v = variants[i];
            const auto &r = results[i];
            allCorrect = allCorrect && r.correct;
            t.addRow({v.name, TextTable::count(r.stats.cycles),
                      TextTable::count(r.stats.swapsOut),
                      TextTable::count(r.stats.swapsIn)});
            if (!v.enabled)
                report.count("dijkstra_cycles_no_ctxstack",
                             r.stats.cycles);
            else if (v.swapLatency == 200)
                report.count("dijkstra_cycles_paper_ctxstack",
                             r.stats.cycles);
        }
        t.render(std::cout);
        std::printf("\n");
    }

    // ---- 3. fetch-policy pressure ------------------------------------
    {
        std::printf("[3] threads fetched per cycle (QuickSort)\n");
        TextTable t({"threads/cycle", "insts/thread", "cycles",
                     "ipc"});
        wl::QuickSortParams p;
        p.length = scale.pick(1000, 2500, 8192);
        p.seed = scale.seed;
        struct F
        {
            int threads;
            int perThread;
        };
        const std::vector<F> fetches{{1, 16}, {2, 8}, {4, 4}, {8, 2}};

        std::vector<harness::SweepPoint> points;
        for (const auto &f : fetches) {
            auto cfg = sim::MachineConfig::somt();
            cfg.fetchThreadsPerCycle = f.threads;
            cfg.fetchInstsPerThread = f.perThread;
            harness::SweepPoint pt;
            pt.label = "quicksort/fetch" + std::to_string(f.threads);
            pt.run = [cfg, p] { return wl::runQuickSort(cfg, p); };
            points.push_back(std::move(pt));
        }
        auto results = runner.run(points);
        for (std::size_t i = 0; i < fetches.size(); ++i) {
            const auto &f = fetches[i];
            const auto &r = results[i];
            allCorrect = allCorrect && r.correct;
            t.addRow({std::to_string(f.threads),
                      std::to_string(f.perThread),
                      TextTable::count(r.stats.cycles),
                      TextTable::num(r.stats.ipc)});
            if (f.threads == 4) {
                report.count("quicksort_cycles_icount44",
                             r.stats.cycles);
                report.num("quicksort_ipc_icount44", r.stats.ipc);
            }
        }
        t.render(std::cout);
        std::printf("paper setting: Icount.4.4 (4 threads x 4 "
                    "instructions)\n");
    }
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
