/**
 * @file
 * Figure 7 — division throttling of small parallel sections. LZW
 * (N=4096-character sequence recursively halved) and Perceptron
 * (10000 neurons split in half) both perform little processing per
 * split opportunity; the death-rate throttle must win against the
 * throttle-free greedy strategy.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "workloads/lzw.hh"
#include "workloads/perceptron.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Figure 7 (division throttling)", scale);

    auto somt = sim::MachineConfig::somt();
    auto noThrottle = somt;
    noThrottle.division.policy = sim::DivisionPolicy::GreedyNoThrottle;
    noThrottle.name = "somt-nothrottle";

    TextTable t({"benchmark", "throttled cycles", "greedy cycles",
                 "throttle benefit", "throttle denials", "correct"});
    bench::JsonReport report("fig7_throttle", scale);
    bool allCorrect = true;

    {
        wl::LzwParams p;
        p.length = scale.pick(1024, 4096, 4096);
        p.minSplit = 2;  // tiny parallel sections
        p.seed = scale.seed;
        auto with = wl::runLzw(somt, p);
        auto without = wl::runLzw(noThrottle, p);
        t.addRow({"LZW (N=" + std::to_string(p.length) + ")",
                  TextTable::count(with.stats.cycles),
                  TextTable::count(without.stats.cycles),
                  TextTable::num(double(without.stats.cycles) /
                                 double(with.stats.cycles)) +
                      "x",
                  TextTable::count(with.stats.divisionsThrottled),
                  with.correct && without.correct ? "yes" : "NO"});
        report.num("lzw_throttle_benefit",
                   double(without.stats.cycles) /
                       double(with.stats.cycles));
        report.count("lzw_throttle_denials",
                     with.stats.divisionsThrottled);
        report.flag("lzw_correct", with.correct && without.correct);
        allCorrect = allCorrect && with.correct && without.correct;
    }
    {
        wl::PerceptronParams p;
        p.neurons = scale.pick(1000, 4000, 10000);
        p.inputs = 1;
        p.minGroup = 1;  // tiny groups
        p.seed = scale.seed;
        auto with = wl::runPerceptron(somt, p);
        auto without = wl::runPerceptron(noThrottle, p);
        t.addRow({"Perceptron (" + std::to_string(p.neurons) +
                      " neurons)",
                  TextTable::count(with.stats.cycles),
                  TextTable::count(without.stats.cycles),
                  TextTable::num(double(without.stats.cycles) /
                                 double(with.stats.cycles)) +
                      "x",
                  TextTable::count(with.stats.divisionsThrottled),
                  with.correct && without.correct ? "yes" : "NO"});
        report.num("perceptron_throttle_benefit",
                   double(without.stats.cycles) /
                       double(with.stats.cycles));
        report.count("perceptron_throttle_denials",
                     with.stats.divisionsThrottled);
        report.flag("perceptron_correct",
                    with.correct && without.correct);
        allCorrect = allCorrect && with.correct && without.correct;
    }
    t.render(std::cout);
    std::printf("\npaper: both benchmarks benefit from dynamic "
                "division throttling (Figure 7)\n");
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
