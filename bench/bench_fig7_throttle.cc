/**
 * @file
 * Figure 7 — division throttling of small parallel sections. LZW
 * (N=4096-character sequence recursively halved) and Perceptron
 * (10000 neurons split in half) both perform little processing per
 * split opportunity; the death-rate throttle must win against the
 * throttle-free greedy strategy. The four (workload, policy) points
 * run as one sweep on the experiment engine.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/lzw.hh"
#include "workloads/perceptron.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Figure 7 (division throttling)", scale);

    auto somt = sim::MachineConfig::somt();
    auto noThrottle = somt;
    noThrottle.division.policy = sim::DivisionPolicy::GreedyNoThrottle;
    noThrottle.name = "somt-nothrottle";

    wl::LzwParams lp;
    lp.length = scale.pick(1024, 4096, 4096);
    lp.minSplit = 2;  // tiny parallel sections
    lp.seed = scale.seed;

    wl::PerceptronParams pp;
    pp.neurons = scale.pick(1000, 4000, 10000);
    pp.inputs = 1;
    pp.minGroup = 1;  // tiny groups
    pp.seed = scale.seed;

    std::vector<harness::SweepPoint> points{
        {"lzw/throttled", [&] { return wl::runLzw(somt, lp); }},
        {"lzw/greedy", [&] { return wl::runLzw(noThrottle, lp); }},
        {"perceptron/throttled",
         [&] { return wl::runPerceptron(somt, pp); }},
        {"perceptron/greedy",
         [&] { return wl::runPerceptron(noThrottle, pp); }},
    };
    auto results = scale.runner().run(points);

    TextTable t({"benchmark", "throttled cycles", "greedy cycles",
                 "throttle benefit", "throttle denials", "correct"});
    bench::JsonReport report("fig7_throttle", scale);
    bool allCorrect = true;

    struct Pair
    {
        std::string name;
        const char *key;
        const wl::WorkloadResult &with;
        const wl::WorkloadResult &without;
    };
    for (const auto &[name, key, with, without] :
         {Pair{"LZW (N=" + std::to_string(lp.length) + ")", "lzw",
               results[0], results[1]},
          Pair{"Perceptron (" + std::to_string(pp.neurons) +
                   " neurons)",
               "perceptron", results[2], results[3]}}) {
        double benefit = double(without.stats.cycles) /
                         double(with.stats.cycles);
        bool correct = with.correct && without.correct;
        t.addRow({name, TextTable::count(with.stats.cycles),
                  TextTable::count(without.stats.cycles),
                  TextTable::num(benefit) + "x",
                  TextTable::count(with.stats.divisionsThrottled),
                  correct ? "yes" : "NO"});
        report.num(std::string(key) + "_throttle_benefit", benefit);
        report.count(std::string(key) + "_throttle_denials",
                     with.stats.divisionsThrottled);
        report.flag(std::string(key) + "_correct", correct);
        allCorrect = allCorrect && correct;
    }
    t.render(std::cout);
    std::printf("\npaper: both benchmarks benefit from dynamic "
                "division throttling (Figure 7)\n");
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
