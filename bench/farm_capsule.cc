/**
 * @file
 * BENCH_farm — the simulation-farm campaign driver (DESIGN.md §9).
 *
 * Runs the full workload registry across the three standard machine
 * shapes ({smt, cmp 2x4, func}) through the FarmRunner: worker
 * processes via --workers, content-addressed memoization via
 * --cache-dir, checkpoint/resume via --resume. The per-point table it
 * prints contains only *simulated* fields, so stdout is byte-identical
 * across worker counts, cold vs warm caches, and kill+resume — CI
 * diffs it literally to hold the farm to the determinism contract.
 *
 * Farm-specific flags on top of the common set (bench_util.hh),
 * which now includes --fault-plan/--point-timeout/
 * --max-point-retries/--strict (DESIGN.md §11):
 *   --die-after N      shorthand appending `die@N` to the fault plan:
 *                      the coordinator kills itself (exit status 3)
 *                      after N merged results — the CI kill+resume
 *                      probe
 *   --min-hit-rate P   exit nonzero unless the cache hit rate of this
 *                      run is at least P percent (warm-cache gate)
 *
 * BENCH_farm.json records the campaign observability counters: cache
 * hits/misses/stores/corrupt+length evictions, journal skips, the
 * supervision counters (timeouts/respawns/frames rejected/retries/
 * quarantined), and per-worker utilization (points completed +
 * simulation CPU seconds per worker).
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/farm.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    // Peel the farm-only flags, hand the rest to the common parser.
    int dieAfter = -1;
    double minHitRate = -1.0;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--die-after") == 0 && i + 1 < argc) {
            dieAfter = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--min-hit-rate") == 0 &&
                   i + 1 < argc) {
            minHitRate = std::atof(argv[++i]);
        } else {
            rest.push_back(argv[i]);
        }
    }
    auto scale =
        bench::parseScale(int(rest.size()), rest.data());
    bench::banner("simulation farm campaign (registry x machine)",
                  scale);

    const auto names = wl::WorkloadRegistry::builtin().names();
    struct Machine
    {
        const char *name;
        sim::MachineConfig cfg;
    };
    const Machine machines[] = {
        {"smt", sim::MachineConfig::somt()},
        {"cmp", sim::MachineConfig::cmpSomt(2, 4)},
        {"func",
         [] {
             auto c = sim::MachineConfig::somt();
             c.backend = "func";
             return c;
         }()},
    };

    std::vector<harness::FarmPoint> points;
    for (const auto &wlName : names)
        for (const auto &m : machines)
            points.push_back(harness::registryFarmPoint(
                wlName, m.cfg, scale.request(scale.seed),
                wlName + "/" + m.name));

    auto opts = scale.farmOptions();
    if (dieAfter >= 0) {
        // Legacy shorthand for the kill+resume probe.
        std::string plan = scale.faultPlan;
        if (!plan.empty())
            plan += ",";
        plan += "die@" + std::to_string(dieAfter);
        opts.faultPlan = harness::FaultPlan::parse(plan);
    }
    harness::FarmRunner farm(opts);
    auto results = farm.run(points);
    const auto &st = farm.stats();

    // Simulated fields only: this table is the determinism artifact.
    TextTable table({"workload", "machine", "cycles", "insts", "ipc",
                     "correct"});
    bool allCorrect = true;
    std::size_t at = 0;
    for (const auto &wlName : names) {
        for (const auto &m : machines) {
            const auto &r = results[at++];
            const bool quarantined =
                r.metric("quarantined", 0.0) != 0.0;
            // A quarantined point fails the run only under --strict;
            // its row is marked so the campaign is honest about it.
            allCorrect = allCorrect && (r.correct || quarantined);
            table.addRow({wlName, m.name,
                          TextTable::count(r.stats.cycles),
                          TextTable::count(r.stats.instructions),
                          TextTable::num(r.stats.ipc, 4),
                          quarantined     ? "quar"
                          : r.correct     ? "yes"
                                          : "NO"});
        }
    }
    table.render(std::cout);

    std::printf("\nfarm: %llu points, %llu computed, %llu cache hits, "
                "%llu misses, %llu corrupt evictions, "
                "%llu journal skips, %d workers\n",
                (unsigned long long)st.points,
                (unsigned long long)st.computed,
                (unsigned long long)st.cacheHits,
                (unsigned long long)st.cacheMisses,
                (unsigned long long)st.corruptEvictions,
                (unsigned long long)st.journalSkips, st.workersUsed);
    std::printf("farm: %llu timeouts, %llu respawns, %llu frames "
                "rejected, %llu retries, %llu quarantined\n",
                (unsigned long long)st.timeouts,
                (unsigned long long)st.respawns,
                (unsigned long long)st.framesRejected,
                (unsigned long long)st.pointRetries,
                (unsigned long long)st.quarantined);
    for (std::size_t w = 0; w < st.perWorkerPoints.size(); ++w)
        std::printf("farm: worker %zu: %llu points, %.3f cpu s\n", w,
                    (unsigned long long)st.perWorkerPoints[w],
                    st.perWorkerCpuSeconds[w]);

    bench::JsonReport report("farm", scale);
    std::size_t i = 0;
    for (const auto &wlName : names) {
        for (const auto &m : machines) {
            const auto &r = results[i++];
            std::string key = wlName + "." + m.name;
            report.count(key + ".sim_cycles", r.stats.cycles);
            report.count(key + ".sim_instructions",
                         r.stats.instructions);
            report.flag(key + ".correct", r.correct);
        }
    }
    bench::Scale::reportFarmStats(report, st);
    report.flag("all_correct", allCorrect);

    bool hitRateOk = true;
    if (minHitRate >= 0.0) {
        const double denom = double(st.cacheHits + st.cacheMisses);
        const double rate =
            denom > 0 ? 100.0 * double(st.cacheHits) / denom : 0.0;
        report.num("cache_hit_rate_percent", rate);
        hitRateOk = rate >= minHitRate;
        if (!hitRateOk)
            std::fprintf(stderr,
                         "farm: cache hit rate %.1f%% below the "
                         "--min-hit-rate %.1f%% gate\n",
                         rate, minHitRate);
    }

    bool strictOk = true;
    if (scale.strict && st.quarantined > 0) {
        strictOk = false;
        std::fprintf(stderr,
                     "farm: --strict and %llu point(s) quarantined\n",
                     (unsigned long long)st.quarantined);
    }
    if (scale.strict && st.journalWriteErrors > 0) {
        strictOk = false;
        std::fprintf(stderr,
                     "farm: --strict and %llu journal write "
                     "error(s): the checkpoint is unreliable\n",
                     (unsigned long long)st.journalWriteErrors);
    }

    return report.write() && allCorrect && hitRateOk && strictOk ? 0
                                                                 : 1;
}
