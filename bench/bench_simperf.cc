/**
 * @file
 * BENCH_simperf — host throughput of the simulator itself.
 *
 * Every paper figure and every sweep point funnels through the
 * cycle-level kernel, so host-side simulator speed bounds everything
 * the harnesses can explore. This harness sweeps the full workload
 * registry across the {smt, cmp, func} backends and reports *host*
 * metrics per point: wall seconds, host CPU seconds, simulated cycles
 * per host second, and simulated MIPS (committed instructions per
 * host second). The JSON lands in BENCH_simperf.json, seeding the
 * perf trajectory so every future PR's speedups and regressions are
 * visible per commit; the CI perf gate (bench/simperf_gate.cc)
 * compares each commit's detailed-tier aggregate MIPS against the
 * parent's checked-in copy.
 *
 * The func rows measure the fast functional tier (DESIGN.md §8); the
 * per-backend `aggregate_mips.<backend>` fields let the two-tier
 * speedup target (func >= 10x detailed) be read straight off the
 * JSON. For func, sim_cycles == sim_instructions by construction
 * (the serialized 1-IPC functional clock).
 *
 * Two clocks are reported on purpose: `wall_seconds` is elapsed time
 * (what a user waits for), while the throughput rates divide by the
 * *thread* CPU clock so they stay meaningful when `--jobs N`
 * timeshares points over fewer host cores. The simulated fields
 * (cycles, instructions, correctness) are deterministic at any job
 * count; only the host timings vary run to run.
 */

#include <ctime>
#include <iostream>
#include <map>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/farm.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

using namespace capsule;

namespace
{

/** Cores in the CMP sweep column (total contexts kept at the SMT 8). */
constexpr int cmpCores = 2;
constexpr int cmpContextsPerCore = 4;

const char *const backends[] = {"smt", "cmp", "func"};

double
threadCpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

double
wallSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

sim::MachineConfig
configFor(const std::string &backend)
{
    if (backend == "cmp")
        return sim::MachineConfig::cmpSomt(cmpCores,
                                           cmpContextsPerCore);
    auto cfg = sim::MachineConfig::somt();
    cfg.backend = backend;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("simulator host throughput (registry x backend)",
                  scale);

    // Repeat each point enough for a stable timing at small scales;
    // the simulated fields are identical across reps (determinism).
    const int reps = scale.pick(5, 3, 1);
    const auto names = wl::WorkloadRegistry::builtin().names();

    std::vector<harness::FarmPoint> points;
    for (const auto &wlName : names) {
        for (const char *backend : backends) {
            auto req = scale.request(scale.seed);
            auto cfg = configFor(backend);
            // Cache key: the registry point axes plus the repetition
            // count (host metrics are per-reps aggregates, so a
            // different --scale's reps must not alias).
            harness::FarmPoint pt = harness::registryFarmPoint(
                wlName, cfg, req, wlName + "/" + backend);
            pt.key.extra = std::uint64_t(reps);
            pt.run = [wlName, cfg, req, reps] {
                double w0 = wallSeconds();
                double c0 = threadCpuSeconds();
                wl::WorkloadResult res;
                for (int r = 0; r < reps; ++r)
                    res = wl::WorkloadRegistry::builtin().run(
                        wlName, cfg, req);
                double cpu = threadCpuSeconds() - c0;
                double wall = wallSeconds() - w0;
                res.setMetric("host_reps", double(reps));
                res.setMetric("host_wall_seconds", wall);
                res.setMetric("host_cpu_seconds", cpu);
                return res;
            };
            points.push_back(std::move(pt));
        }
    }
    // The classic path is the in-process runner; any farm flag
    // (--cache-dir/--workers/--resume) routes the same campaign
    // through the multi-process memoizing farm. Simulated fields are
    // identical either way; a cache hit replays the stored host
    // timings of the run that computed the entry.
    harness::FarmRunner farm(scale.farmOptions());
    std::vector<wl::WorkloadResult> results;
    if (scale.useFarm()) {
        results = farm.run(points);
    } else {
        std::vector<harness::SweepPoint> sweep;
        for (auto &pt : points)
            sweep.push_back({pt.label, pt.run});
        results = scale.runner().run(sweep);
    }

    bench::JsonReport report("simperf", scale);
    TextTable table({"workload", "backend", "sim cycles", "sim insts",
                     "wall s", "Mcycles/s", "MIPS"});
    bool allCorrect = true;
    double totalWall = 0, totalCpu = 0;
    double totalInsts = 0, totalCycles = 0;
    // Per-backend aggregates: the perf gate reads the detailed tiers,
    // the two-tier speedup target reads func vs smt.
    std::map<std::string, double> cpuBy, instsBy, cyclesBy;

    std::size_t at = 0;
    for (const auto &wlName : names) {
        for (const char *backend : backends) {
            const auto &r = results[at++];
            // Quarantined placeholders fail the run only under
            // --strict (checked against FarmStats below).
            allCorrect = allCorrect &&
                         (r.correct ||
                          r.metric("quarantined", 0.0) != 0.0);
            double wall = r.metric("host_wall_seconds");
            double cpu = r.metric("host_cpu_seconds");
            // Guard the rate denominators against clock granularity.
            double denom = cpu > 1e-9 ? cpu : 1e-9;
            double simInsts =
                double(r.stats.instructions) * double(reps);
            double simCycles = double(r.stats.cycles) * double(reps);
            double mips = simInsts / denom / 1e6;
            double cps = simCycles / denom;
            totalWall += wall;
            totalCpu += cpu;
            totalInsts += simInsts;
            totalCycles += simCycles;
            cpuBy[backend] += cpu;
            instsBy[backend] += simInsts;
            cyclesBy[backend] += simCycles;

            table.addRow({wlName, backend,
                          TextTable::count(r.stats.cycles),
                          TextTable::count(r.stats.instructions),
                          TextTable::num(wall, 4),
                          TextTable::num(cps / 1e6, 2),
                          TextTable::num(mips, 2)});

            std::string key = wlName + "." + backend;
            report.num(key + ".wall_seconds", wall);
            report.num(key + ".cpu_seconds", cpu);
            report.num(key + ".sim_cycles_per_sec", cps);
            report.num(key + ".mips", mips);
            report.count(key + ".sim_cycles", r.stats.cycles);
            report.count(key + ".sim_instructions",
                         r.stats.instructions);
            report.flag(key + ".correct", r.correct);
        }
    }
    table.render(std::cout);

    double aggDenom = totalCpu > 1e-9 ? totalCpu : 1e-9;
    std::printf("\naggregate: %.3f wall s, %.3f cpu s, "
                "%.2f Msim-cycles/s, %.2f sim-MIPS over %zu points "
                "(x%d reps)\n",
                totalWall, totalCpu, totalCycles / aggDenom / 1e6,
                totalInsts / aggDenom / 1e6, results.size(), reps);

    report.count("records", std::uint64_t(results.size()));
    report.count("reps_per_point", std::uint64_t(reps));
    report.num("total_wall_seconds", totalWall);
    report.num("total_cpu_seconds", totalCpu);
    report.num("aggregate_sim_cycles_per_sec", totalCycles / aggDenom);
    report.num("aggregate_mips", totalInsts / aggDenom / 1e6);
    for (const char *backend : backends) {
        double denom = cpuBy[backend] > 1e-9 ? cpuBy[backend] : 1e-9;
        report.num(std::string("aggregate_mips.") + backend,
                   instsBy[backend] / denom / 1e6);
        report.num(std::string("aggregate_sim_cycles_per_sec.") +
                       backend,
                   cyclesBy[backend] / denom);
        std::printf("aggregate %s: %.2f sim-MIPS\n", backend,
                    instsBy[backend] / denom / 1e6);
    }
    if (scale.useFarm())
        bench::Scale::reportFarmStats(report, farm.stats());
    report.flag("all_correct", allCorrect);
    bool strictOk = true;
    if (scale.strict && farm.stats().quarantined > 0) {
        strictOk = false;
        std::fprintf(stderr,
                     "simperf: --strict and %llu point(s) "
                     "quarantined\n",
                     (unsigned long long)farm.stats().quarantined);
    }
    return report.write() && allCorrect && strictOk ? 0 : 1;
}
