/**
 * @file
 * bench_adversarial — the adversarial scenario suite (DESIGN.md §10).
 *
 * Runs every scenario in the fuzz::scenarios() registry — pinned
 * pathological programs from the adversarial generator modes (lock
 * convoys, deep division chains, oversubscription, division-dependent
 * pipelines) — across the standard backend set {smt, cmp2, cmp4,
 * func}, verifying each against the full differential harness and
 * reporting *where the cycles go*: lock-wait cycles, denied
 * divisions, peak lock-table occupancy and peak context-stack depth.
 *
 * The scenarios are pinned (mode, caps, seed), so every number here
 * is a golden: tests/test_scenarios.cc asserts the verdicts, and the
 * BENCH_adversarial.json trajectory tracks the contention counters
 * release over release.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.hh"
#include "front/asm_program.hh"
#include "fuzz/diff_runner.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/scenarios.hh"
#include "sim/backend.hh"
#include "sim/sim_error.hh"

using namespace capsule;

namespace
{

struct ScenarioRun
{
    bool ok = false;            ///< completed without simulation error
    std::string errorKind;      ///< simulation-error kind when !ok
    sim::RunStats stats;
    sim::ContentionStats cont;
};

ScenarioRun
runScenario(const casm::Image &image, const sim::MachineConfig &cfg)
{
    ScenarioRun r;
    front::AsmProcess proc(image);
    auto backend = sim::makeBackend(cfg);
    backend->addThread(std::make_unique<front::AsmProgram>(proc));
    try {
        r.stats = backend->run();
        r.cont = backend->contention();
        r.ok = true;
    } catch (const sim::SimulationError &e) {
        r.errorKind = sim::simErrorKindName(e.kind());
    }
    return r;
}

/** BENCH key fragment: scenario names keep their dashes, backends
 *  are appended with underscores ("convoy-narrow_smt_..."). */
std::string
key(const std::string &scenario, const std::string &backend,
    const char *metric)
{
    return scenario + "_" + backend + "_" + metric;
}

} // namespace

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("adversarial scenario suite (contention metrics "
                  "across smt/cmp/func backends)",
                  scale);

    // The co-simulation set minus ffwd: the four organisations whose
    // contention counters the suite pins.
    std::vector<fuzz::BackendSpec> backends;
    for (auto &spec : fuzz::defaultBackends())
        if (spec.label != "ffwd")
            backends.push_back(std::move(spec));

    bench::JsonReport report("adversarial", scale);
    bool allAgree = true;
    bool allRan = true;

    for (const auto &s : fuzz::scenarios()) {
        // Full differential verdict first: final state vs the serial
        // oracle on every default backend (including ffwd).
        fuzz::DiffOutcome verdict = fuzz::runOne(s.params);
        allAgree = allAgree && verdict.ok;

        std::printf("\n%s: %s\n", s.name.c_str(),
                    s.description.c_str());
        std::printf("  nodes %d, words %zu, differential %s\n",
                    verdict.numNodes, verdict.words,
                    verdict.ok ? "agree" : "DIVERGED");
        if (!verdict.ok)
            std::printf("%s", verdict.detail.c_str());
        report.count(s.name + "_nodes",
                     std::uint64_t(verdict.numNodes));
        report.flag(s.name + "_agree", verdict.ok);

        fuzz::GeneratedProgram prog = fuzz::generate(s.params);
        std::printf("  %-6s %12s %12s %8s %9s %9s\n", "", "cycles",
                    "lock-wait", "denied", "peak-lock", "peak-ctx");
        for (const auto &spec : backends) {
            ScenarioRun run = runScenario(prog.image, spec.cfg);
            if (!run.ok) {
                allRan = false;
                std::printf("  %-6s simulation error: %s\n",
                            spec.label.c_str(),
                            run.errorKind.c_str());
                report.str(key(s.name, spec.label, "error"),
                           run.errorKind);
                continue;
            }
            std::printf("  %-6s %12llu %12llu %8llu %9llu %9llu\n",
                        spec.label.c_str(),
                        (unsigned long long)run.stats.cycles,
                        (unsigned long long)run.cont.lockWaitCycles,
                        (unsigned long long)run.cont.divisionsDenied,
                        (unsigned long long)run.cont.peakLockOccupancy,
                        (unsigned long long)run.cont.peakCtxStackDepth);
            report.count(key(s.name, spec.label, "cycles"),
                         run.stats.cycles);
            report.count(key(s.name, spec.label, "lock_wait_cycles"),
                         run.cont.lockWaitCycles);
            report.count(key(s.name, spec.label, "divisions_denied"),
                         run.cont.divisionsDenied);
            report.count(key(s.name, spec.label, "peak_lock_occupancy"),
                         run.cont.peakLockOccupancy);
            report.count(key(s.name, spec.label, "peak_ctx_depth"),
                         run.cont.peakCtxStackDepth);
        }
    }

    std::printf("\n%s: %zu scenario(s), %s\n",
                allAgree && allRan ? "OK" : "FAILED",
                fuzz::scenarios().size(),
                allAgree ? "all backends agree with the oracle"
                         : "divergence(s) detected");
    report.flag("all_agree", allAgree);
    report.flag("all_ran", allRan);
    bool wrote = report.write();

    return allAgree && allRan && wrote ? 0 : 1;
}
