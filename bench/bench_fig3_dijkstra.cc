/**
 * @file
 * Figure 3 — distribution of execution time for Dijkstra over many
 * random graphs, on the superscalar, the statically parallelised SMT
 * and the component-on-SOMT machine. The paper runs 100 graphs of
 * 1000 nodes and reports component speedups of 1.23x over the static
 * version and 2.51x over the superscalar, with visibly lower
 * variance for the component version.
 *
 * The sweep is declared point-by-point and executed by the
 * experiment engine on --jobs host threads; results come back in
 * submission order, so the rendered artifact is independent of the
 * job count.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "base/histogram.hh"
#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Figure 3 (Dijkstra execution-time distribution)",
                  scale);

    int graphs = scale.pick(10, 40, 100);
    // Must match the "dijkstra" registry factory's sizing
    // (src/workloads/workload.cc) — the sweep runs through it.
    int nodes = wl::pickByScale(scale.level(), 150, 400, 1000);
    std::printf("%d random graphs of %d nodes each\n\n", graphs,
                nodes);

    struct Arch
    {
        const char *name;
        const char *workload;
        sim::MachineConfig cfg;
        std::vector<double> cycles;
        int wrong = 0;
    };
    // The superscalar row is the *normal* imperative Dijkstra
    // (central list); the SMT rows run the component program
    // (Section 2's three-way comparison).
    std::vector<Arch> archs{
        {"superscalar", "dijkstra-normal",
         sim::MachineConfig::superscalar(), {}, 0},
        {"smt-static", "dijkstra", sim::MachineConfig::smtStatic(),
         {}, 0},
        {"somt-component", "dijkstra", sim::MachineConfig::somt(),
         {}, 0},
    };

    std::vector<harness::SweepPoint> points;
    for (int g = 0; g < graphs; ++g)
        for (const auto &arch : archs)
            points.push_back(harness::registryPoint(
                arch.workload, arch.cfg,
                scale.request(scale.seed + std::uint64_t(g))));

    auto results = scale.runner().run(points);
    for (std::size_t i = 0; i < results.size(); ++i) {
        auto &arch = archs[i % archs.size()];
        arch.cycles.push_back(double(results[i].stats.cycles));
        arch.wrong += !results[i].correct;
    }

    double lo = 1e300, hi = 0;
    for (const auto &arch : archs) {
        for (double c : arch.cycles) {
            lo = std::min(lo, c);
            hi = std::max(hi, c);
        }
    }
    for (auto &arch : archs) {
        Histogram h(lo, hi * 1.0001, 18);
        for (double c : arch.cycles)
            h.add(c);
        h.render(std::cout, arch.name);
        std::printf("\n");
    }

    double mMono = bench::mean(archs[0].cycles);
    double mStat = bench::mean(archs[1].cycles);
    double mSomt = bench::mean(archs[2].cycles);

    TextTable t({"comparison", "measured", "paper"});
    t.addRow({"component vs superscalar",
              TextTable::num(mMono / mSomt) + "x", "2.51x"});
    t.addRow({"component vs static SMT",
              TextTable::num(mStat / mSomt) + "x", "1.23x"});
    t.render(std::cout);
    int wrong = 0;
    for (const auto &arch : archs) {
        if (arch.wrong)
            std::printf("WARNING: %d incorrect results on %s\n",
                        arch.wrong, arch.name);
        wrong += arch.wrong;
    }

    bench::JsonReport report("fig3_dijkstra", scale);
    report.count("graphs", std::uint64_t(graphs));
    report.count("nodes", std::uint64_t(nodes));
    bench::reportThreeArchComparison(report, archs[0].cycles,
                                     archs[1].cycles, archs[2].cycles,
                                     wrong == 0);
    return report.write() && wrong == 0 ? 0 : 1;
}
