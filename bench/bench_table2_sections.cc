/**
 * @file
 * Table 2 — componentisation statistics of the re-engineered
 * SPEC CINT2000 programs: how much source was re-engineered and what
 * share of execution the componentised subgraph covers. Our
 * analogues re-create the *sections* (the rest of each program is a
 * calibrated serial phase), so the harness reports the measured
 * section share next to the paper's numbers, plus the size of each
 * analogue's componentised kernel in this repository.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "workloads/bzip_sort.hh"
#include "workloads/crafty_search.hh"
#include "workloads/mcf_route.hh"
#include "workloads/vpr_route.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Table 2 (componentisation statistics)", scale);

    auto mono = sim::MachineConfig::superscalar();

    // Measure the componentised-section share of total execution on
    // the baseline, with the serial phase calibrated to the paper's
    // published fraction (the substitution DESIGN.md documents).
    struct Row
    {
        const char *name;
        const char *key;  ///< identifier-safe name for JSON
        double paperFraction;
        const char *paperLines;
        Cycle section;
    };
    std::vector<Row> rows;
    bool allCorrect = true;

    {
        wl::McfParams p;
        p.nodes = scale.pick(4000, 12000, 60000);
        p.seed = scale.seed;
        auto res = wl::runMcf(mono, p);
        allCorrect = allCorrect && res.correct;
        rows.push_back({"181.mcf", "mcf", 0.45,
                        "174 lines / 2 functions",
                        res.sectionStats.cycles});
    }
    {
        wl::VprParams p;
        p.seed = scale.seed;
        auto res = wl::runVpr(mono, p);
        allCorrect = allCorrect && res.converged;
        rows.push_back({"175.vpr", "vpr", 0.93,
                        "624 lines / 10 functions",
                        res.sectionStats.cycles});
    }
    {
        wl::BzipParams p;
        p.blockBytes = scale.pick(512, 1024, 4096);
        p.seed = scale.seed;
        auto res = wl::runBzip(mono, p);
        allCorrect = allCorrect && res.correct;
        rows.push_back({"256.bzip2", "bzip2", 0.20,
                        "317 lines / 3 functions",
                        res.sectionStats.cycles});
    }
    {
        wl::CraftyParams p;
        p.branching = 3;
        p.depth = scale.pick(4, 5, 6);
        p.seed = scale.seed;
        auto res = wl::runCrafty(mono, p);
        allCorrect = allCorrect && res.correct;
        rows.push_back({"186.crafty", "crafty", 1.00,
                        "201 lines / 8 functions",
                        res.stats.cycles});
    }

    TextTable t({"benchmark", "paper modified", "paper % exec",
                 "measured % exec (calibrated)"});
    bench::JsonReport report("table2_sections", scale);
    for (const auto &r : rows) {
        Cycle serial = 0;
        if (r.paperFraction < 1.0) {
            Cycle target = Cycle(double(r.section) *
                                 (1.0 - r.paperFraction) /
                                 r.paperFraction);
            auto ops = bench::calibrateSerialOps(mono, target);
            rt::Exec e;
            serial = wl::simulate(mono, e,
                                  wl::serialSection(e, ops))
                         .stats.cycles;
        }
        double measured =
            double(r.section) / double(r.section + serial);
        t.addRow({r.name, r.paperLines,
                  TextTable::pct(r.paperFraction),
                  TextTable::pct(measured)});
        report.num(std::string(r.key) + "_paper_fraction",
                   r.paperFraction);
        report.num(std::string(r.key) + "_measured_fraction",
                   measured);
    }
    t.render(std::cout);
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
