/**
 * @file
 * Table 2 — componentisation statistics of the re-engineered
 * SPEC CINT2000 programs: how much source was re-engineered and what
 * share of execution the componentised subgraph covers. Our
 * analogues re-create the *sections* (the rest of each program is a
 * calibrated serial phase), so the harness reports the measured
 * section share next to the paper's numbers, plus the size of each
 * analogue's componentised kernel in this repository.
 *
 * The four section simulations run as one sweep on the experiment
 * engine; the calibrated serial phases (which depend on the measured
 * section lengths) run as a second sweep.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/bzip_sort.hh"
#include "workloads/crafty_search.hh"
#include "workloads/mcf_route.hh"
#include "workloads/vpr_route.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Table 2 (componentisation statistics)", scale);

    auto mono = sim::MachineConfig::superscalar();

    // Measure the componentised-section share of total execution on
    // the baseline, with the serial phase calibrated to the paper's
    // published fraction (the substitution DESIGN.md documents).
    struct Row
    {
        const char *name;
        const char *key;  ///< identifier-safe name for JSON
        double paperFraction;
        const char *paperLines;
    };
    const std::vector<Row> rows{
        {"181.mcf", "mcf", 0.45, "174 lines / 2 functions"},
        {"175.vpr", "vpr", 0.93, "624 lines / 10 functions"},
        {"256.bzip2", "bzip2", 0.20, "317 lines / 3 functions"},
        {"186.crafty", "crafty", 1.00, "201 lines / 8 functions"},
    };

    wl::McfParams mcfP;
    mcfP.nodes = scale.pick(4000, 12000, 60000);
    mcfP.seed = scale.seed;
    wl::VprParams vprP;
    vprP.seed = scale.seed;
    wl::BzipParams bzipP;
    bzipP.blockBytes = scale.pick(512, 1024, 4096);
    bzipP.seed = scale.seed;
    wl::CraftyParams craftyP;
    craftyP.branching = 3;
    craftyP.depth = scale.pick(4, 5, 6);
    craftyP.seed = scale.seed;

    std::vector<harness::SweepPoint> points{
        {"mcf/section", [&] { return wl::runMcf(mono, mcfP); }},
        {"vpr/section", [&] { return wl::runVpr(mono, vprP); }},
        {"bzip2/section", [&] { return wl::runBzip(mono, bzipP); }},
        {"crafty/section",
         [&] { return wl::runCrafty(mono, craftyP); }},
    };
    auto runner = scale.runner();
    auto sections = runner.run(points);

    bool allCorrect = true;
    for (const auto &s : sections)
        allCorrect = allCorrect && s.correct;

    // Serial phases for every row whose section share is below 100 %.
    std::vector<harness::SweepPoint> serialPoints;
    std::vector<int> serialIdx(rows.size(), -1);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i].paperFraction >= 1.0)
            continue;
        serialIdx[i] = int(serialPoints.size());
        serialPoints.push_back(bench::serialRemainderPoint(
            mono, sections[i].stats.cycles, rows[i].paperFraction,
            std::string(rows[i].key) + "/serial"));
    }
    auto serials = runner.run(serialPoints);

    TextTable t({"benchmark", "paper modified", "paper % exec",
                 "measured % exec (calibrated)"});
    bench::JsonReport report("table2_sections", scale);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        Cycle section = sections[i].stats.cycles;
        Cycle serial = serialIdx[i] >= 0
                           ? serials[std::size_t(serialIdx[i])]
                                 .stats.cycles
                           : 0;
        double measured = double(section) / double(section + serial);
        t.addRow({rows[i].name, rows[i].paperLines,
                  TextTable::pct(rows[i].paperFraction),
                  TextTable::pct(measured)});
        report.num(std::string(rows[i].key) + "_paper_fraction",
                   rows[i].paperFraction);
        report.num(std::string(rows[i].key) + "_measured_fraction",
                   measured);
    }
    t.render(std::cout);
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
