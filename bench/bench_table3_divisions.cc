/**
 * @file
 * Table 3 — divisions requested / allowed, the grant percentage and
 * the number of committed instructions per allowed division, for the
 * mcf, vpr and bzip2 analogues on the 8-context SOMT. The paper
 * reports mcf as the outlier with the highest grant ratio (40 %, one
 * division every ~3.7K instructions, testing division at every tree
 * node) with vpr and bzip2 far sparser (4 % / 4.5M and 6 % / 30M).
 * The three analogues run as one sweep on the experiment engine.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/bzip_sort.hh"
#include "workloads/mcf_route.hh"
#include "workloads/vpr_route.hh"

using namespace capsule;

namespace
{

std::string
perDivision(std::uint64_t insts, std::uint64_t granted)
{
    if (!granted)
        return "-";
    double v = double(insts) / double(granted);
    if (v >= 1e6)
        return capsule::TextTable::num(v / 1e6, 1) + "M";
    if (v >= 1e3)
        return capsule::TextTable::num(v / 1e3, 1) + "K";
    return capsule::TextTable::num(v, 0);
}

} // namespace

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Table 3 (division statistics)", scale);

    auto somt = sim::MachineConfig::somt();

    wl::McfParams mcfP;
    mcfP.nodes = scale.pick(4000, 20000, 60000);
    mcfP.seed = scale.seed;

    // Denser routing problem than the Figure-8 run so the probe
    // stream saturates the contexts (the Table-3 regime).
    wl::VprParams vprP;
    vprP.grid = scale.pick(32, 48, 64);
    vprP.nets = scale.pick(16, 32, 64);
    vprP.capacity = 3;
    vprP.seed = scale.seed;

    wl::BzipParams bzipP;
    bzipP.blockBytes = scale.pick(1024, 4096, 8192);
    bzipP.seed = scale.seed;

    std::vector<harness::SweepPoint> points{
        {"mcf/somt", [&] { return wl::runMcf(somt, mcfP); }},
        {"vpr/somt", [&] { return wl::runVpr(somt, vprP); }},
        {"bzip2/somt", [&] { return wl::runBzip(somt, bzipP); }},
    };
    auto results = scale.runner().run(points);

    TextTable t({"benchmark", "requested", "allowed", "% allowed",
                 "insts/division", "paper"});
    bench::JsonReport report("table3_divisions", scale);
    bool allCorrect = true;

    struct Line
    {
        const char *key;
        const char *paper;
    };
    const Line lines[] = {
        {"mcf", "99,598 req / 40% / 3.7K"},
        {"vpr", "67,560 req / 4% / 4.5M"},
        {"bzip2", "38,656 req / 6% / 30M"},
    };
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i].stats;
        allCorrect = allCorrect && results[i].correct;
        t.addRow({lines[i].key,
                  TextTable::count(r.divisionsRequested),
                  TextTable::count(r.divisionsGranted),
                  TextTable::pct(double(r.divisionsGranted) /
                                 double(r.divisionsRequested)),
                  perDivision(r.instructions, r.divisionsGranted),
                  lines[i].paper});
        report.count(std::string(lines[i].key) + "_requested",
                     r.divisionsRequested);
        report.count(std::string(lines[i].key) + "_granted",
                     r.divisionsGranted);
        // A zero denominator yields inf/nan, which num() serialises
        // as null — keeping the key set stable across runs.
        report.num(std::string(lines[i].key) + "_grant_fraction",
                   double(r.divisionsGranted) /
                       double(r.divisionsRequested));
        report.num(std::string(lines[i].key) + "_insts_per_division",
                   double(r.instructions) /
                       double(r.divisionsGranted));
    }
    t.render(std::cout);
    std::printf("\nshape to check: mcf grants a far larger share "
                "than vpr/bzip2, and its insts-per-division is\n"
                "orders of magnitude smaller (division tested at "
                "every tree node). Absolute counts scale with\n"
                "our reduced data sets (--paper raises them).\n");
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
