/**
 * @file
 * Table 3 — divisions requested / allowed, the grant percentage and
 * the number of committed instructions per allowed division, for the
 * mcf, vpr and bzip2 analogues on the 8-context SOMT. The paper
 * reports mcf as the outlier with the highest grant ratio (40 %, one
 * division every ~3.7K instructions, testing division at every tree
 * node) with vpr and bzip2 far sparser (4 % / 4.5M and 6 % / 30M).
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "workloads/bzip_sort.hh"
#include "workloads/mcf_route.hh"
#include "workloads/vpr_route.hh"

using namespace capsule;

namespace
{

std::string
perDivision(std::uint64_t insts, std::uint64_t granted)
{
    if (!granted)
        return "-";
    double v = double(insts) / double(granted);
    if (v >= 1e6)
        return capsule::TextTable::num(v / 1e6, 1) + "M";
    if (v >= 1e3)
        return capsule::TextTable::num(v / 1e3, 1) + "K";
    return capsule::TextTable::num(v, 0);
}

} // namespace

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Table 3 (division statistics)", scale);

    auto somt = sim::MachineConfig::somt();
    TextTable t({"benchmark", "requested", "allowed", "% allowed",
                 "insts/division", "paper"});
    bench::JsonReport report("table3_divisions", scale);
    auto record = [&report](const char *key, const auto &r) {
        report.count(std::string(key) + "_requested",
                     r.divisionsRequested);
        report.count(std::string(key) + "_granted",
                     r.divisionsGranted);
        // A zero denominator yields inf/nan, which num() serialises
        // as null — keeping the key set stable across runs.
        report.num(std::string(key) + "_grant_fraction",
                   double(r.divisionsGranted) /
                       double(r.divisionsRequested));
        report.num(std::string(key) + "_insts_per_division",
                   double(r.instructions) /
                       double(r.divisionsGranted));
    };

    bool allCorrect = true;
    {
        wl::McfParams p;
        p.nodes = scale.pick(4000, 20000, 60000);
        p.seed = scale.seed;
        auto res = wl::runMcf(somt, p);
        allCorrect = allCorrect && res.correct;
        auto r = res.sectionStats;
        t.addRow({"mcf", TextTable::count(r.divisionsRequested),
                  TextTable::count(r.divisionsGranted),
                  TextTable::pct(double(r.divisionsGranted) /
                                 double(r.divisionsRequested)),
                  perDivision(r.instructions, r.divisionsGranted),
                  "99,598 req / 40% / 3.7K"});
        record("mcf", r);
    }
    {
        // Denser routing problem than the Figure-8 run so the probe
        // stream saturates the contexts (the Table-3 regime).
        wl::VprParams p;
        p.grid = scale.pick(32, 48, 64);
        p.nets = scale.pick(16, 32, 64);
        p.capacity = 3;
        p.seed = scale.seed;
        auto res = wl::runVpr(somt, p);
        allCorrect = allCorrect && res.converged;
        auto r = res.sectionStats;
        t.addRow({"vpr", TextTable::count(r.divisionsRequested),
                  TextTable::count(r.divisionsGranted),
                  TextTable::pct(double(r.divisionsGranted) /
                                 double(r.divisionsRequested)),
                  perDivision(r.instructions, r.divisionsGranted),
                  "67,560 req / 4% / 4.5M"});
        record("vpr", r);
    }
    {
        wl::BzipParams p;
        p.blockBytes = scale.pick(1024, 4096, 8192);
        p.seed = scale.seed;
        auto res = wl::runBzip(somt, p);
        allCorrect = allCorrect && res.correct;
        auto r = res.sectionStats;
        t.addRow({"bzip2", TextTable::count(r.divisionsRequested),
                  TextTable::count(r.divisionsGranted),
                  TextTable::pct(double(r.divisionsGranted) /
                                 double(r.divisionsRequested)),
                  perDivision(r.instructions, r.divisionsGranted),
                  "38,656 req / 6% / 30M"});
        record("bzip2", r);
    }
    t.render(std::cout);
    std::printf("\nshape to check: mcf grants a far larger share "
                "than vpr/bzip2, and its insts-per-division is\n"
                "orders of magnitude smaller (division tested at "
                "every tree node). Absolute counts scale with\n"
                "our reduced data sets (--paper raises them).\n");
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
