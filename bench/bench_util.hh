/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures: scale selection (--paper runs the full
 * published data-set sizes; the default is minutes-scale), and the
 * serial-section calibration used by the SPEC-analogue harnesses to
 * reproduce Table 2's componentised-section fractions.
 */

#ifndef CAPSULE_BENCH_UTIL_HH
#define CAPSULE_BENCH_UTIL_HH

#include <cstdint>
#include <string>

#include "sim/machine.hh"

namespace capsule::bench
{

/** Command-line scale flags common to all harnesses. */
struct Scale
{
    bool paper = false;   ///< full published data-set sizes
    bool quick = false;   ///< CI-fast sizes
    std::uint64_t seed = 1;

    /** Pick by scale: quick / default / paper. */
    template <typename T>
    T
    pick(T q, T d, T p) const
    {
        return paper ? p : quick ? q : d;
    }
};

/** Parse --paper / --quick / --seed N; exits on unknown flags. */
Scale parseScale(int argc, char **argv);

/**
 * Compute the serial-section instruction budget whose simulated time
 * on `cfg` is approximately `target_cycles` (used to reproduce the
 * paper's section fractions).
 */
std::uint64_t calibrateSerialOps(const sim::MachineConfig &cfg,
                                 Cycle target_cycles);

/** Standard banner naming the paper artifact being regenerated. */
void banner(const std::string &what, const Scale &scale);

} // namespace capsule::bench

#endif // CAPSULE_BENCH_UTIL_HH
