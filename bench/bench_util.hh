/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures: scale selection (--paper runs the full
 * published data-set sizes; the default is minutes-scale), and the
 * serial-section calibration used by the SPEC-analogue harnesses to
 * reproduce Table 2's componentised-section fractions.
 */

#ifndef CAPSULE_BENCH_UTIL_HH
#define CAPSULE_BENCH_UTIL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "harness/farm.hh"
#include "sim/machine.hh"
#include "workloads/workload.hh"

namespace capsule::bench
{

class JsonReport;

/** Command-line scale flags common to all harnesses. */
struct Scale
{
    bool paper = false;   ///< full published data-set sizes
    bool quick = false;   ///< CI-fast sizes
    std::uint64_t seed = 1;
    std::string json;     ///< write headline metrics here (empty = off)
    int jobs = 0;         ///< sweep host threads (0 = all hw threads)

    // Simulation-farm flags (harness/farm.hh). cacheDir empty keeps
    // the classic in-process ExperimentRunner path.
    std::string cacheDir; ///< result-cache dir (enables memoization)
    std::uint64_t cacheMaxBytes = 0; ///< LRU budget (0 = unbounded)
    int workers = 1;      ///< farm worker processes (0 = all cores)
    bool resume = false;  ///< resume this campaign's journal

    // Fault-tolerance flags (DESIGN.md §11).
    std::string faultPlan;   ///< seeded fault schedule (validated)
    double pointTimeout = -1; ///< per-point deadline s (<0 = default)
    int maxPointRetries = 0; ///< quarantine threshold (0 = default)
    bool strict = false;     ///< any quarantined point fails the run

    /** The flags as a registry scale level. */
    wl::ScaleLevel
    level() const
    {
        return paper   ? wl::ScaleLevel::Paper
               : quick ? wl::ScaleLevel::Quick
                       : wl::ScaleLevel::Default;
    }

    /** Pick by scale: quick / default / paper (one source of truth
     *  with the registry factories). */
    template <typename T>
    T
    pick(T q, T d, T p) const
    {
        return wl::pickByScale(level(), q, d, p);
    }

    /** Registry request for one sweep point. */
    wl::WorkloadRequest
    request(std::uint64_t point_seed) const
    {
        return {level(), point_seed};
    }

    /** The experiment runner honouring --jobs. */
    harness::ExperimentRunner
    runner() const
    {
        return harness::ExperimentRunner(jobs);
    }

    /** True when any farm flag asks for the FarmRunner path. */
    bool
    useFarm() const
    {
        return !cacheDir.empty() || workers != 1 || resume ||
               !faultPlan.empty();
    }

    /** The farm options honouring --cache-dir/--workers/--resume and
     *  the fault-tolerance flags. */
    harness::FarmOptions
    farmOptions() const
    {
        harness::FarmOptions o;
        o.workers = workers;
        o.cacheDir = cacheDir;
        o.cacheMaxBytes = cacheMaxBytes;
        o.resume = resume;
        if (!faultPlan.empty())
            o.faultPlan = harness::FaultPlan::parse(faultPlan);
        if (pointTimeout >= 0)
            o.pointTimeoutSeconds = pointTimeout;
        if (maxPointRetries > 0)
            o.maxPointRetries = maxPointRetries;
        return o;
    }

    /** Record the FarmStats counters of a campaign under `prefix`
     *  (cache hits/misses/evictions, per-worker utilization). */
    static void reportFarmStats(JsonReport &report,
                                const harness::FarmStats &stats,
                                const std::string &prefix = "farm");
};

/** Parse --paper / --quick / --scale quick|default|paper / --seed N /
 *  --json FILE / --jobs N / --cache-dir DIR / --cache-max-bytes N /
 *  --workers N / --resume; exits on unknown flags. */
Scale parseScale(int argc, char **argv);

/**
 * Machine-readable record of a harness's headline metrics. Each
 * harness fills one of these alongside its human-readable tables;
 * write() emits it to the --json path (the bench-all target passes
 * one per harness, producing the BENCH_*.json perf trajectory).
 */
class JsonReport
{
  public:
    JsonReport(std::string artifact, const Scale &scale);

    /** Record a floating-point metric (speedups, percentages). */
    void num(const std::string &key, double value);
    /** Record an integer metric (cycle/event counts). */
    void count(const std::string &key, std::uint64_t value);
    /** Record a boolean metric (correctness flags). */
    void flag(const std::string &key, bool value);
    /** Record a string metric. */
    void str(const std::string &key, const std::string &value);

    /**
     * Write the report to the --json path. Returns false only on an
     * open/write failure (no --json path is a successful no-op), so
     * harnesses can use it as their exit status.
     */
    bool write() const;

  private:
    std::string path_;
    std::string artifact_;
    std::string scaleName_;
    std::uint64_t seed_;
    /// key -> already-serialised JSON value, in insertion order.
    std::vector<std::pair<std::string, std::string>> metrics_;
};

/** Mean of a sample vector (0 when empty). */
double mean(const std::vector<double> &v);

/**
 * Record the standard three-architecture comparison the figure
 * harnesses share (superscalar vs static SMT vs component-on-SOMT):
 * mean cycles per machine, the two component speedups, and the
 * correctness flag.
 */
void reportThreeArchComparison(JsonReport &report,
                               const std::vector<double> &superscalar,
                               const std::vector<double> &smtStatic,
                               const std::vector<double> &somt,
                               bool allCorrect);

/**
 * Compute the serial-section instruction budget whose simulated time
 * on `cfg` is approximately `target_cycles` (used to reproduce the
 * paper's section fractions).
 */
std::uint64_t calibrateSerialOps(const sim::MachineConfig &cfg,
                                 Cycle target_cycles);

/**
 * A sweep point simulating the calibrated serial remainder of a SPEC
 * analogue: given the measured componentised-section length and the
 * paper's section fraction (Table 2), calibrates and runs the serial
 * phase on `cfg`. Shared by the Figure-8 and Table-2 harnesses so
 * their "measured fraction" numbers cannot diverge.
 */
harness::SweepPoint serialRemainderPoint(const sim::MachineConfig &cfg,
                                         Cycle section_cycles,
                                         double section_fraction,
                                         std::string label);

/** Standard banner naming the paper artifact being regenerated. */
void banner(const std::string &what, const Scale &scale);

} // namespace capsule::bench

#endif // CAPSULE_BENCH_UTIL_HH
