/**
 * @file
 * Figure 8 — overall and componentised-section speedups for the
 * re-engineered SPEC CINT2000 analogues on an 8-context SOMT versus
 * the superscalar with the same resources. Section fractions follow
 * Table 2 (mcf 45 %, vpr 93 %, bzip2 20 %, crafty 100 %); serial
 * sections are calibrated synthetic phases (see DESIGN.md). Includes
 * the paper's crafty context sweep (4-context SOMT 2.3x vs
 * 8-context 1.7x) showing software thread pools degrading with more
 * contexts.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "workloads/bzip_sort.hh"
#include "workloads/crafty_search.hh"
#include "workloads/mcf_route.hh"
#include "workloads/vpr_route.hh"

using namespace capsule;

namespace
{

struct Row
{
    std::string name;
    std::string key;  ///< identifier-safe name for the JSON report
    Cycle sectionBase = 0;
    Cycle sectionSomt = 0;
    Cycle serial = 0;
    std::string paperOverall;
    bool correct = true;
};

double
sectionSpeedup(const Row &r)
{
    return double(r.sectionBase) / double(r.sectionSomt);
}

double
overallSpeedup(const Row &r)
{
    return double(r.serial + r.sectionBase) /
           double(r.serial + r.sectionSomt);
}

void
printRows(const std::vector<Row> &rows)
{
    TextTable t({"benchmark", "section speedup", "overall speedup",
                 "% in section", "paper overall", "correct"});
    for (const auto &r : rows) {
        double frac = double(r.sectionBase) /
                      double(r.serial + r.sectionBase);
        t.addRow({r.name, TextTable::num(sectionSpeedup(r)) + "x",
                  TextTable::num(overallSpeedup(r)) + "x",
                  TextTable::pct(frac), r.paperOverall,
                  r.correct ? "yes" : "NO"});
    }
    t.render(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Figure 8 (SPEC CINT2000 analogue speedups)",
                  scale);

    auto mono = sim::MachineConfig::superscalar();
    auto somt = sim::MachineConfig::somt();
    std::vector<Row> rows;

    // ---- 181.mcf: parallel route-planning tree search (45 %) ------
    {
        wl::McfParams p;
        p.nodes = scale.pick(4000, 20000, 60000);
        p.seed = scale.seed;
        auto base = wl::runMcf(mono, p);
        auto fast = wl::runMcf(somt, p);
        Row r;
        r.name = "181.mcf (tree search)";
        r.key = "mcf";
        r.sectionBase = base.sectionStats.cycles;
        r.sectionSomt = fast.sectionStats.cycles;
        // Table 2: componentised section is 45 % of execution.
        Cycle target =
            Cycle(double(r.sectionBase) * (1.0 - 0.45) / 0.45);
        auto serialOps = bench::calibrateSerialOps(mono, target);
        rt::Exec e2;
        r.serial = wl::simulate(mono, e2,
                                wl::serialSection(e2, serialOps))
                       .stats.cycles;
        r.paperOverall = "~1.2x (45% section)";
        r.correct = base.correct && fast.correct;
        rows.push_back(r);
    }

    // ---- 175.vpr: FPGA routing (93 %) -------------------------------
    {
        wl::VprParams p;
        p.grid = scale.pick(32, 32, 64);
        p.nets = scale.pick(12, 16, 48);
        p.seed = scale.seed;
        auto base = wl::runVpr(mono, p);
        auto fast = wl::runVpr(somt, p);
        Row r;
        r.name = "175.vpr (routing)";
        r.key = "vpr";
        r.sectionBase = base.sectionStats.cycles;
        r.sectionSomt = fast.sectionStats.cycles;
        Cycle target =
            Cycle(double(r.sectionBase) * (1.0 - 0.93) / 0.93);
        auto serialOps = bench::calibrateSerialOps(mono, target);
        rt::Exec e2;
        r.serial = wl::simulate(mono, e2,
                                wl::serialSection(e2, serialOps))
                       .stats.cycles;
        r.paperOverall = "2.x (93% section; 3.0 w/ 2x cache)";
        r.correct = base.converged && fast.converged;
        rows.push_back(r);
        std::printf("vpr iterations: sequential %d, parallel %d "
                    "(paper: 8 vs 9)\n",
                    base.iterations, fast.iterations);
    }

    // ---- 256.bzip2: block-sorting string sort (20 %) ---------------
    {
        wl::BzipParams p;
        p.blockBytes = scale.pick(512, 1200, 4096);
        p.seed = scale.seed;
        auto base = wl::runBzip(mono, p);
        auto fast = wl::runBzip(somt, p);
        Row r;
        r.name = "256.bzip2 (string sort)";
        r.key = "bzip2";
        r.sectionBase = base.sectionStats.cycles;
        r.sectionSomt = fast.sectionStats.cycles;
        Cycle target =
            Cycle(double(r.sectionBase) * (1.0 - 0.20) / 0.20);
        auto serialOps = bench::calibrateSerialOps(mono, target);
        rt::Exec e2;
        r.serial = wl::simulate(mono, e2,
                                wl::serialSection(e2, serialOps))
                       .stats.cycles;
        r.paperOverall = "~1.1-1.2x (20% section)";
        r.correct = base.correct && fast.correct;
        rows.push_back(r);
    }

    // ---- 186.crafty: pthread-pool game tree (100 %) -----------------
    Cycle craftyBase = 0;
    {
        wl::CraftyParams p;
        p.branching = scale.pick(3, 4, 4);
        p.depth = scale.pick(5, 6, 7);
        p.seed = scale.seed;
        p.poolThreads = 7;
        auto base = wl::runCrafty(mono, p);  // pool never spawns
        craftyBase = base.stats.cycles;
        auto fast = wl::runCrafty(somt, p);
        Row r;
        r.name = "186.crafty (8-ctx pool)";
        r.key = "crafty_8ctx";
        r.sectionBase = base.stats.cycles;
        r.sectionSomt = fast.stats.cycles;
        r.serial = 0;  // 100 % of execution is the search
        r.paperOverall = "1.7x";
        r.correct = base.correct && fast.correct;
        rows.push_back(r);
    }
    {
        wl::CraftyParams p;
        p.branching = scale.pick(3, 4, 4);
        p.depth = scale.pick(5, 6, 7);
        p.seed = scale.seed;
        p.poolThreads = 3;
        auto fast = wl::runCrafty(sim::MachineConfig::somt(4), p);
        Row r;
        r.name = "186.crafty (4-ctx pool)";
        r.key = "crafty_4ctx";
        r.sectionBase = craftyBase;
        r.sectionSomt = fast.stats.cycles;
        r.serial = 0;
        r.paperOverall = "2.3x (beats 8-ctx)";
        r.correct = fast.correct;
        rows.push_back(r);
    }

    std::printf("\n");
    printRows(rows);
    std::printf("\npaper range across the suite: 1.1x - 3.0x\n");

    bench::JsonReport report("fig8_spec", scale);
    bool allCorrect = true;
    for (const auto &r : rows) {
        report.num(r.key + "_section_speedup", sectionSpeedup(r));
        report.num(r.key + "_overall_speedup", overallSpeedup(r));
        report.flag(r.key + "_correct", r.correct);
        allCorrect = allCorrect && r.correct;
    }
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
