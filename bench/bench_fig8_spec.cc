/**
 * @file
 * Figure 8 — overall and componentised-section speedups for the
 * re-engineered SPEC CINT2000 analogues on an 8-context SOMT versus
 * the superscalar with the same resources. Section fractions follow
 * Table 2 (mcf 45 %, vpr 93 %, bzip2 20 %, crafty 100 %); serial
 * sections are calibrated synthetic phases (see DESIGN.md). Includes
 * the paper's crafty context sweep (4-context SOMT 2.3x vs
 * 8-context 1.7x) showing software thread pools degrading with more
 * contexts.
 *
 * Two sweeps on the experiment engine: the componentised sections
 * (both machines, all analogues), then — once the section baselines
 * are known — the calibrated serial remainders.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/bzip_sort.hh"
#include "workloads/crafty_search.hh"
#include "workloads/mcf_route.hh"
#include "workloads/vpr_route.hh"

using namespace capsule;

namespace
{

struct Row
{
    std::string name;
    std::string key;  ///< identifier-safe name for the JSON report
    Cycle sectionBase = 0;
    Cycle sectionSomt = 0;
    Cycle serial = 0;
    std::string paperOverall;
    bool correct = true;
};

double
sectionSpeedup(const Row &r)
{
    return double(r.sectionBase) / double(r.sectionSomt);
}

double
overallSpeedup(const Row &r)
{
    return double(r.serial + r.sectionBase) /
           double(r.serial + r.sectionSomt);
}

void
printRows(const std::vector<Row> &rows)
{
    TextTable t({"benchmark", "section speedup", "overall speedup",
                 "% in section", "paper overall", "correct"});
    for (const auto &r : rows) {
        double frac = double(r.sectionBase) /
                      double(r.serial + r.sectionBase);
        t.addRow({r.name, TextTable::num(sectionSpeedup(r)) + "x",
                  TextTable::num(overallSpeedup(r)) + "x",
                  TextTable::pct(frac), r.paperOverall,
                  r.correct ? "yes" : "NO"});
    }
    t.render(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Figure 8 (SPEC CINT2000 analogue speedups)",
                  scale);

    auto mono = sim::MachineConfig::superscalar();
    auto somt = sim::MachineConfig::somt();

    wl::McfParams mcfP;
    mcfP.nodes = scale.pick(4000, 20000, 60000);
    mcfP.seed = scale.seed;

    wl::VprParams vprP;
    vprP.grid = scale.pick(32, 32, 64);
    vprP.nets = scale.pick(12, 16, 48);
    vprP.seed = scale.seed;

    wl::BzipParams bzipP;
    bzipP.blockBytes = scale.pick(512, 1200, 4096);
    bzipP.seed = scale.seed;

    wl::CraftyParams craftyP;
    craftyP.branching = scale.pick(3, 4, 4);
    craftyP.depth = scale.pick(5, 6, 7);
    craftyP.seed = scale.seed;
    craftyP.poolThreads = 7;
    auto craftyP4 = craftyP;
    craftyP4.poolThreads = 3;

    // ---- sweep 1: the componentised sections ----------------------
    std::vector<harness::SweepPoint> sections{
        {"mcf/superscalar", [&] { return wl::runMcf(mono, mcfP); }},
        {"mcf/somt", [&] { return wl::runMcf(somt, mcfP); }},
        {"vpr/superscalar", [&] { return wl::runVpr(mono, vprP); }},
        {"vpr/somt", [&] { return wl::runVpr(somt, vprP); }},
        {"bzip2/superscalar",
         [&] { return wl::runBzip(mono, bzipP); }},
        {"bzip2/somt", [&] { return wl::runBzip(somt, bzipP); }},
        // crafty's pool never spawns on the superscalar
        {"crafty8/superscalar",
         [&] { return wl::runCrafty(mono, craftyP); }},
        {"crafty8/somt",
         [&] { return wl::runCrafty(somt, craftyP); }},
        {"crafty4/somt",
         [&] {
             return wl::runCrafty(sim::MachineConfig::somt(4),
                                  craftyP4);
         }},
    };
    auto runner = scale.runner();
    auto res = runner.run(sections);

    // ---- sweep 2: calibrated serial remainders (Table 2) ----------
    auto serials = runner.run({
        bench::serialRemainderPoint(mono, res[0].stats.cycles, 0.45,
                                    "mcf/serial"),
        bench::serialRemainderPoint(mono, res[2].stats.cycles, 0.93,
                                    "vpr/serial"),
        bench::serialRemainderPoint(mono, res[4].stats.cycles, 0.20,
                                    "bzip2/serial"),
    });

    std::vector<Row> rows;
    auto addRow = [&rows](std::string name, std::string key,
                          const wl::WorkloadResult &base,
                          const wl::WorkloadResult &fast,
                          Cycle serial, std::string paper) {
        Row r;
        r.name = std::move(name);
        r.key = std::move(key);
        r.sectionBase = base.stats.cycles;
        r.sectionSomt = fast.stats.cycles;
        r.serial = serial;
        r.paperOverall = std::move(paper);
        r.correct = base.correct && fast.correct;
        rows.push_back(r);
    };
    addRow("181.mcf (tree search)", "mcf", res[0], res[1],
           serials[0].stats.cycles, "~1.2x (45% section)");
    addRow("175.vpr (routing)", "vpr", res[2], res[3],
           serials[1].stats.cycles,
           "2.x (93% section; 3.0 w/ 2x cache)");
    std::printf("vpr iterations: sequential %d, parallel %d "
                "(paper: 8 vs 9)\n",
                int(res[2].metric("iterations")),
                int(res[3].metric("iterations")));
    addRow("256.bzip2 (string sort)", "bzip2", res[4], res[5],
           serials[2].stats.cycles, "~1.1-1.2x (20% section)");
    addRow("186.crafty (8-ctx pool)", "crafty_8ctx", res[6], res[7],
           0, "1.7x");
    // The 4-context pool shares the superscalar baseline.
    addRow("186.crafty (4-ctx pool)", "crafty_4ctx", res[6], res[8],
           0, "2.3x (beats 8-ctx)");

    std::printf("\n");
    printRows(rows);
    std::printf("\npaper range across the suite: 1.1x - 3.0x\n");

    bench::JsonReport report("fig8_spec", scale);
    bool allCorrect = true;
    for (const auto &r : rows) {
        report.num(r.key + "_section_speedup", sectionSpeedup(r));
        report.num(r.key + "_overall_speedup", overallSpeedup(r));
        report.flag(r.key + "_correct", r.correct);
        allCorrect = allCorrect && r.correct;
    }
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
