/**
 * @file
 * Figure 5 — distribution of execution time for QuickSort over many
 * lists of varied distributions. The paper runs 500 lists and
 * reports component speedups of 2.51x over the static version and
 * 2.93x over the superscalar. The list x architecture sweep runs on
 * the experiment engine (--jobs host threads, order-independent
 * output).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "base/histogram.hh"
#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/quicksort.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Figure 5 (QuickSort execution-time distribution)",
                  scale);

    int lists = scale.pick(10, 40, 500);
    int length = scale.pick(1024, 4096, 16384);
    std::printf("%d lists of %d elements, five distributions\n\n",
                lists, length);

    const wl::ListDistribution dists[] = {
        wl::ListDistribution::Uniform,
        wl::ListDistribution::Gaussian,
        wl::ListDistribution::Exponential,
        wl::ListDistribution::NearlySorted,
        wl::ListDistribution::FewValues,
    };

    struct Arch
    {
        const char *name;
        sim::MachineConfig cfg;
        std::vector<double> cycles;
        int wrong = 0;
    };
    std::vector<Arch> archs{
        {"superscalar", sim::MachineConfig::superscalar(), {}, 0},
        {"smt-static", sim::MachineConfig::smtStatic(), {}, 0},
        {"somt-component", sim::MachineConfig::somt(), {}, 0},
    };

    std::vector<harness::SweepPoint> points;
    for (int i = 0; i < lists; ++i) {
        wl::QuickSortParams p;
        p.length = length;
        p.distribution = dists[i % 5];
        p.seed = scale.seed + std::uint64_t(i);
        for (const auto &arch : archs) {
            harness::SweepPoint pt;
            pt.label = std::string(arch.name) + "/list" +
                       std::to_string(i);
            auto cfg = arch.cfg;
            pt.run = [cfg, p] { return wl::runQuickSort(cfg, p); };
            points.push_back(std::move(pt));
        }
    }

    auto results = scale.runner().run(points);
    for (std::size_t i = 0; i < results.size(); ++i) {
        auto &arch = archs[i % archs.size()];
        arch.cycles.push_back(double(results[i].stats.cycles));
        arch.wrong += !results[i].correct;
    }

    double lo = 1e300, hi = 0;
    for (const auto &arch : archs) {
        for (double c : arch.cycles) {
            lo = std::min(lo, c);
            hi = std::max(hi, c);
        }
    }
    for (auto &arch : archs) {
        Histogram h(lo, hi * 1.0001, 18);
        for (double c : arch.cycles)
            h.add(c);
        h.render(std::cout, arch.name);
        std::printf("\n");
    }

    double mMono = bench::mean(archs[0].cycles);
    double mStat = bench::mean(archs[1].cycles);
    double mSomt = bench::mean(archs[2].cycles);

    TextTable t({"comparison", "measured", "paper"});
    t.addRow({"component vs superscalar",
              TextTable::num(mMono / mSomt) + "x", "2.93x"});
    t.addRow({"component vs static SMT",
              TextTable::num(mStat / mSomt) + "x", "2.51x"});
    t.render(std::cout);
    int wrong = 0;
    for (const auto &arch : archs) {
        if (arch.wrong)
            std::printf("WARNING: %d incorrect results on %s\n",
                        arch.wrong, arch.name);
        wrong += arch.wrong;
    }

    bench::JsonReport report("fig5_quicksort", scale);
    report.count("lists", std::uint64_t(lists));
    report.count("length", std::uint64_t(length));
    bench::reportThreeArchComparison(report, archs[0].cycles,
                                     archs[1].cycles, archs[2].cycles,
                                     wrong == 0);
    return report.write() && wrong == 0 ? 0 : 1;
}
