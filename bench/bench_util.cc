#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "workloads/harness.hh"

namespace capsule::bench
{

Scale
parseScale(int argc, char **argv)
{
    Scale s;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paper") == 0) {
            s.paper = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            s.quick = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            s.seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--paper|--quick] [--seed N]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return s;
}

std::uint64_t
calibrateSerialOps(const sim::MachineConfig &cfg, Cycle target_cycles)
{
    // First estimate from a probe run, then one correction round:
    // cold-miss warmup makes cycles-per-op nonlinear in the run
    // length, so a single linear extrapolation lands off-target.
    constexpr std::uint64_t probeOps = 20000;
    rt::Exec exec;
    auto probe =
        wl::simulate(cfg, exec, wl::serialSection(exec, probeOps));
    double cyclesPerOp =
        double(probe.stats.cycles) / double(probeOps);
    auto ops = std::uint64_t(double(target_cycles) / cyclesPerOp);
    ops = ops < 64 ? 64 : ops;

    rt::Exec exec2;
    auto check =
        wl::simulate(cfg, exec2, wl::serialSection(exec2, ops));
    double ratio = double(target_cycles) /
                   double(std::max<Cycle>(1, check.stats.cycles));
    ops = std::uint64_t(double(ops) * ratio);
    return ops < 64 ? 64 : ops;
}

void
banner(const std::string &what, const Scale &scale)
{
    std::printf("== CAPSULE reproduction: %s ==\n", what.c_str());
    std::printf("scale: %s (seed %llu)\n\n",
                scale.paper ? "paper" : scale.quick ? "quick"
                                                    : "default",
                (unsigned long long)scale.seed);
}

} // namespace capsule::bench
