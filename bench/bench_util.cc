#include "bench_util.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "workloads/harness.hh"

namespace capsule::bench
{

Scale
parseScale(int argc, char **argv)
{
    Scale s;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paper") == 0) {
            s.paper = true;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            s.quick = true;
        } else if (std::strcmp(argv[i], "--scale") == 0 &&
                   i + 1 < argc) {
            // Named-level alias for --quick/--paper (and the explicit
            // spelling of the default level).
            const char *level = argv[++i];
            if (std::strcmp(level, "quick") == 0) {
                s.quick = true;
            } else if (std::strcmp(level, "paper") == 0) {
                s.paper = true;
            } else if (std::strcmp(level, "default") == 0) {
                s.quick = s.paper = false;
            } else {
                std::fprintf(stderr,
                             "--scale wants quick, default or paper, "
                             "got '%s'\n",
                             level);
                std::exit(2);
            }
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            s.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            s.json = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            long v = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v < 1 ||
                v > 4096) {  // sane cap; also guards int overflow
                std::fprintf(stderr,
                             "--jobs wants a positive integer, got "
                             "'%s'\n",
                             argv[i]);
                std::exit(2);
            }
            s.jobs = int(v);
        } else if (std::strcmp(argv[i], "--cache-dir") == 0 &&
                   i + 1 < argc) {
            s.cacheDir = argv[++i];
        } else if (std::strcmp(argv[i], "--cache-max-bytes") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            unsigned long long v =
                std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr,
                             "--cache-max-bytes wants a byte count, "
                             "got '%s'\n",
                             argv[i]);
                std::exit(2);
            }
            s.cacheMaxBytes = v;
        } else if (std::strcmp(argv[i], "--workers") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            long v = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v < 0 ||
                v > 4096) {
                std::fprintf(stderr,
                             "--workers wants a non-negative integer "
                             "(0 = all cores), got '%s'\n",
                             argv[i]);
                std::exit(2);
            }
            s.workers = int(v);
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            s.resume = true;
        } else if (std::strcmp(argv[i], "--fault-plan") == 0 &&
                   i + 1 < argc) {
            s.faultPlan = argv[++i];
        } else if (std::strcmp(argv[i], "--point-timeout") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            double v = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || v < 0) {
                std::fprintf(stderr,
                             "--point-timeout wants a non-negative "
                             "seconds value (0 disables deadlines), "
                             "got '%s'\n",
                             argv[i]);
                std::exit(2);
            }
            s.pointTimeout = v;
        } else if (std::strcmp(argv[i], "--max-point-retries") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            long v = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v < 1 || v > 1000) {
                std::fprintf(stderr,
                             "--max-point-retries wants a positive "
                             "integer, got '%s'\n",
                             argv[i]);
                std::exit(2);
            }
            s.maxPointRetries = int(v);
        } else if (std::strcmp(argv[i], "--strict") == 0) {
            s.strict = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--paper|--quick|--scale LEVEL] "
                         "[--seed N] [--json FILE] [--jobs N] "
                         "[--cache-dir DIR] [--cache-max-bytes N] "
                         "[--workers N] [--resume] "
                         "[--fault-plan PLAN] [--point-timeout S] "
                         "[--max-point-retries N] [--strict]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (s.resume && s.cacheDir.empty()) {
        std::fprintf(stderr,
                     "--resume needs --cache-dir (the cache is the "
                     "journal's payload store)\n");
        std::exit(2);
    }
    if (!s.faultPlan.empty()) {
        try {
            harness::FaultPlan::parse(s.faultPlan);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "--fault-plan: %s\n", e.what());
            std::exit(2);
        }
    }
    return s;
}

void
Scale::reportFarmStats(JsonReport &report,
                       const harness::FarmStats &stats,
                       const std::string &prefix)
{
    report.count(prefix + "_points", stats.points);
    report.count(prefix + "_computed", stats.computed);
    report.count(prefix + "_cache_hits", stats.cacheHits);
    report.count(prefix + "_cache_misses", stats.cacheMisses);
    report.count(prefix + "_cache_stores", stats.cacheStores);
    report.count(prefix + "_corrupt_evictions",
                 stats.corruptEvictions);
    report.count(prefix + "_length_evictions",
                 stats.lengthEvictions);
    report.count(prefix + "_size_evictions", stats.sizeEvictions);
    report.count(prefix + "_journal_skips", stats.journalSkips);
    report.count(prefix + "_journal_write_errors",
                 stats.journalWriteErrors);
    report.count(prefix + "_timeouts", stats.timeouts);
    report.count(prefix + "_respawns", stats.respawns);
    report.count(prefix + "_frames_rejected", stats.framesRejected);
    report.count(prefix + "_point_retries", stats.pointRetries);
    report.count(prefix + "_quarantined", stats.quarantined);
    report.count(prefix + "_workers",
                 std::uint64_t(stats.workersUsed));
    for (std::size_t w = 0; w < stats.perWorkerPoints.size(); ++w) {
        const std::string id = prefix + "_worker" + std::to_string(w);
        report.count(id + "_points", stats.perWorkerPoints[w]);
        report.num(id + "_cpu_seconds", stats.perWorkerCpuSeconds[w]);
    }
    report.num(prefix + "_wall_seconds", stats.wallSeconds);
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += x;
    return s / double(v.size());
}

void
reportThreeArchComparison(JsonReport &report,
                          const std::vector<double> &superscalar,
                          const std::vector<double> &smtStatic,
                          const std::vector<double> &somt,
                          bool allCorrect)
{
    double mMono = mean(superscalar);
    double mStat = mean(smtStatic);
    double mSomt = mean(somt);
    report.num("mean_cycles_superscalar", mMono);
    report.num("mean_cycles_smt_static", mStat);
    report.num("mean_cycles_somt_component", mSomt);
    report.num("speedup_vs_superscalar", mMono / mSomt);
    report.num("speedup_vs_smt_static", mStat / mSomt);
    report.flag("all_correct", allCorrect);
}

std::uint64_t
calibrateSerialOps(const sim::MachineConfig &cfg, Cycle target_cycles)
{
    // First estimate from a probe run, then one correction round:
    // cold-miss warmup makes cycles-per-op nonlinear in the run
    // length, so a single linear extrapolation lands off-target.
    constexpr std::uint64_t probeOps = 20000;
    rt::Exec exec;
    auto probe =
        wl::simulate(cfg, exec, wl::serialSection(exec, probeOps));
    double cyclesPerOp = double(probe.cycles) / double(probeOps);
    auto ops = std::uint64_t(double(target_cycles) / cyclesPerOp);
    ops = ops < 64 ? 64 : ops;

    rt::Exec exec2;
    auto check =
        wl::simulate(cfg, exec2, wl::serialSection(exec2, ops));
    double ratio = double(target_cycles) /
                   double(std::max<Cycle>(1, check.cycles));
    ops = std::uint64_t(double(ops) * ratio);
    return ops < 64 ? 64 : ops;
}

harness::SweepPoint
serialRemainderPoint(const sim::MachineConfig &cfg,
                     Cycle section_cycles, double section_fraction,
                     std::string label)
{
    Cycle target = Cycle(double(section_cycles) *
                         (1.0 - section_fraction) /
                         section_fraction);
    harness::SweepPoint pt;
    pt.label = std::move(label);
    pt.run = [cfg, target] {
        auto ops = calibrateSerialOps(cfg, target);
        rt::Exec exec;
        wl::WorkloadResult res;
        res.workload = "serial-section";
        res.stats =
            wl::simulate(cfg, exec, wl::serialSection(exec, ops));
        res.correct = true;
        return res;
    };
    return pt;
}

void
banner(const std::string &what, const Scale &scale)
{
    std::printf("== CAPSULE reproduction: %s ==\n", what.c_str());
    std::printf("scale: %s (seed %llu)\n\n",
                scale.paper ? "paper" : scale.quick ? "quick"
                                                    : "default",
                (unsigned long long)scale.seed);
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

JsonReport::JsonReport(std::string artifact, const Scale &scale)
    : path_(scale.json), artifact_(std::move(artifact)),
      scaleName_(scale.paper ? "paper" : scale.quick ? "quick"
                                                     : "default"),
      seed_(scale.seed)
{
}

void
JsonReport::num(const std::string &key, double value)
{
    // JSON has no nan/inf literals; emit null so the file stays
    // parseable.
    if (!std::isfinite(value)) {
        metrics_.emplace_back(key, "null");
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    metrics_.emplace_back(key, buf);
}

void
JsonReport::count(const std::string &key, std::uint64_t value)
{
    metrics_.emplace_back(key, std::to_string(value));
}

void
JsonReport::flag(const std::string &key, bool value)
{
    metrics_.emplace_back(key, value ? "true" : "false");
}

void
JsonReport::str(const std::string &key, const std::string &value)
{
    metrics_.emplace_back(key, '"' + jsonEscape(value) + '"');
}

bool
JsonReport::write() const
{
    if (path_.empty())
        return true;  // nothing requested, nothing to fail
    std::ofstream f(path_);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path_.c_str());
        return false;
    }
    f << "{\n";
    f << "  \"artifact\": \"" << jsonEscape(artifact_) << "\",\n";
    f << "  \"scale\": \"" << scaleName_ << "\",\n";
    f << "  \"seed\": " << seed_ << ",\n";
    f << "  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        f << (i ? ",\n    " : "\n    ") << '"'
          << jsonEscape(metrics_[i].first) << "\": "
          << metrics_[i].second;
    }
    f << "\n  }\n}\n";
    f.flush();
    if (!f.good()) {
        std::fprintf(stderr, "error writing %s\n", path_.c_str());
        return false;
    }
    std::printf("JSON metrics written to %s\n", path_.c_str());
    return true;
}

} // namespace capsule::bench
