/**
 * @file
 * Table 1 — baseline configuration of the SOMT, SMT and superscalar
 * processors. Prints the configuration table and validates the
 * derived quantities the paper quotes (the 16-entry context stack
 * holding 62 registers + PC; Icount.4.4 fetch limits). Note the
 * context-stack footprint: 16 x 63 x 8 B = 8064 B (~8 kB) with the
 * 64-bit registers this machine models, while the paper's Section
 * 3.1 quotes ~4 kB — a figure consistent only with 4-byte entries.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Table 1 (baseline configuration)", scale);

    auto somt = sim::MachineConfig::somt();
    auto smt = sim::MachineConfig::smtStatic();
    auto mono = sim::MachineConfig::superscalar();

    TextTable t({"parameter", "somt", "smt-static", "superscalar",
                 "paper"});
    auto row = [&](const std::string &name, auto get,
                   const std::string &paper) {
        t.addRow({name, std::to_string(get(somt)),
                  std::to_string(get(smt)), std::to_string(get(mono)),
                  paper});
    };
    row("hardware contexts",
        [](const auto &c) { return c.numContexts; }, "8 (SMT)");
    row("fetch width", [](const auto &c) { return c.fetchWidth; },
        "16");
    row("fetch threads/cycle",
        [](const auto &c) { return c.fetchThreadsPerCycle; },
        "4 (Icount.4.4)");
    row("fetch insts/thread",
        [](const auto &c) { return c.fetchInstsPerThread; }, "4");
    row("branch preds/cycle",
        [](const auto &c) { return c.branchPredPerCycle; }, "2");
    row("issue/decode/commit width",
        [](const auto &c) { return c.issueWidth; }, "8");
    row("RUU size", [](const auto &c) { return c.ruuSize; }, "256");
    row("LSQ size", [](const auto &c) { return c.lsqSize; }, "128");
    row("IALU units", [](const auto &c) { return c.numIalu; }, "8");
    row("IMULT units", [](const auto &c) { return c.numImult; }, "4");
    row("FPALU units", [](const auto &c) { return c.numFpalu; }, "4");
    row("FPMULT units", [](const auto &c) { return c.numFpmult; },
        "4");
    row("memory latency (cy)",
        [](const auto &c) { return int(c.mem.memLatency); }, "200");
    row("L1D size (kB)",
        [](const auto &c) { return int(c.mem.l1d.sizeBytes / 1024); },
        "8 (1 cy)");
    row("L1I size (kB)",
        [](const auto &c) { return int(c.mem.l1i.sizeBytes / 1024); },
        "16 (1 cy)");
    row("L2 size (kB)",
        [](const auto &c) { return int(c.mem.l2.sizeBytes / 1024); },
        "1024 (12 cy)");
    row("context-stack entries",
        [](const auto &c) {
            return c.enableContextStack ? c.ctxStack.entries : 0;
        },
        "16");
    row("context swap latency (cy)",
        [](const auto &c) { return int(c.ctxStack.swapLatency); },
        "~200");
    row("division throttle window (cy)",
        [](const auto &c) { return int(c.division.deathWindow); },
        "128");
    t.render(std::cout);

    // Derived quantity: 16 entries x (62 registers + PC) x 8 bytes
    // = 8064 bytes, i.e. ~8 kB. The paper's Section 3.1 quotes
    // "about 4 kB" for the same 16 x 63 layout, which only works
    // out with 4-byte entries; with this machine's 64-bit registers
    // the honest figure is twice that.
    auto stackBytes = 16ull * (62 + 1) * 8;
    std::printf("\ncontext stack footprint: %llu bytes (~8 kB for "
                "16 entries of 62 regs + PC at 8 B each;\n"
                "paper Section 3.1 says ~4 kB, which implies 4-byte "
                "entries)\n",
                (unsigned long long)stackBytes);
    std::printf("division throttle threshold: deaths in window > "
                "contexts/2 = %d\n",
                somt.division.deathThreshold);

    bench::JsonReport report("table1_config", scale);
    report.count("somt_contexts", std::uint64_t(somt.numContexts));
    report.count("fetch_width", std::uint64_t(somt.fetchWidth));
    report.count("issue_width", std::uint64_t(somt.issueWidth));
    report.count("ruu_size", std::uint64_t(somt.ruuSize));
    report.count("context_stack_entries",
                 std::uint64_t(somt.ctxStack.entries));
    report.count("context_stack_bytes", stackBytes);
    // The paper's (4-byte-entry) figure, kept for comparison.
    report.count("context_stack_bytes_paper_claim", 4096);
    report.count("division_death_window",
                 std::uint64_t(somt.division.deathWindow));
    report.count("division_death_threshold",
                 std::uint64_t(somt.division.deathThreshold));
    return report.write() ? 0 : 1;
}
