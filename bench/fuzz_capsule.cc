/**
 * @file
 * fuzz_capsule — the differential fuzzing CLI (DESIGN.md §7).
 *
 * Generates `--iters` random CAPSULE programs from `--seed` (iteration
 * i uses seed+i), co-simulates each on the functional reference
 * oracle, the SMT machine and the 2- and 4-core CMP organisations,
 * and reports any final-state divergence or invariant violation.
 * Failing seeds are shrunk and their `.casm` repros dumped under
 * `--artifacts` (default fuzz-artifacts/). `--jobs N` fans iterations
 * out over host threads; the output (stdout and --json) is
 * byte-identical at any job count.
 *
 *   fuzz_capsule --iters 1000 --seed 1 --jobs 8
 *   fuzz_capsule --iters 200 --scale quick --json BENCH_fuzz.json
 *   fuzz_capsule --iters 50 --inject-bug add-off-by-one   # sanity
 *
 * Exit status: 0 when every iteration agreed, 1 otherwise — under
 * --inject-bug a nonzero exit is the expected (healthy) outcome.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "bench_util.hh"
#include "fuzz/diff_runner.hh"
#include "harness/thread_pool.hh"

using namespace capsule;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seed N] [--iters N] [--jobs N]\n"
        "          [--scale quick|default|paper] [--quick] [--paper]\n"
        "          [--mode independent|hotlock|deeptree|"
        "oversubscribe|divdep|adversarial]\n"
        "          [--artifacts DIR] [--json FILE] [--no-shrink]\n"
        "          [--inject-bug add-off-by-one|xor-as-or|"
        "slt-inverted]\n"
        "          [--cache-dir DIR] [--cache-max-bytes N]\n"
        "          [--workers N] [--resume]\n"
        "          [--fault-plan PLAN] [--point-timeout S]\n"
        "          [--max-point-retries N] [--strict]\n",
        argv0);
    std::exit(2);
}

long
parseNum(const char *flag, const char *text, long lo, long hi,
         const char *argv0)
{
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < lo || v > hi) {
        std::fprintf(stderr, "%s wants an integer in [%ld, %ld]\n",
                     flag, lo, hi);
        usage(argv0);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    fuzz::FuzzConfig cfg;
    cfg.iters = 100;
    cfg.jobs = 0; // resolved below: 0 = all hardware threads

    bench::Scale scale; // reused for the banner / JsonReport shape
    std::string injectName;
    std::string modeName = "independent";
    bool strict = false;

    for (int i = 1; i < argc; ++i) {
        auto is = [&](const char *f) {
            return std::strcmp(argv[i], f) == 0;
        };
        if (is("--seed") && i + 1 < argc) {
            cfg.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (is("--iters") && i + 1 < argc) {
            cfg.iters = int(parseNum("--iters", argv[++i], 1,
                                     10'000'000, argv[0]));
        } else if (is("--jobs") && i + 1 < argc) {
            cfg.jobs = int(parseNum("--jobs", argv[++i], 1, 4096,
                                    argv[0]));
        } else if (is("--quick")) {
            scale.quick = true;
        } else if (is("--paper")) {
            scale.paper = true;
        } else if (is("--scale") && i + 1 < argc) {
            const char *level = argv[++i];
            if (std::strcmp(level, "quick") == 0)
                scale.quick = true;
            else if (std::strcmp(level, "paper") == 0)
                scale.paper = true;
            else if (std::strcmp(level, "default") == 0)
                scale.quick = scale.paper = false;
            else
                usage(argv[0]);
        } else if (is("--artifacts") && i + 1 < argc) {
            cfg.artifactsDir = argv[++i];
        } else if (is("--json") && i + 1 < argc) {
            scale.json = argv[++i];
        } else if (is("--no-shrink")) {
            cfg.shrink = false;
        } else if (is("--inject-bug") && i + 1 < argc) {
            injectName = argv[++i];
        } else if (is("--mode") && i + 1 < argc) {
            modeName = argv[++i];
        } else if (is("--cache-dir") && i + 1 < argc) {
            cfg.cacheDir = argv[++i];
        } else if (is("--cache-max-bytes") && i + 1 < argc) {
            cfg.cacheMaxBytes = std::strtoull(argv[++i], nullptr, 10);
        } else if (is("--workers") && i + 1 < argc) {
            cfg.workers = int(parseNum("--workers", argv[++i], 0,
                                       4096, argv[0]));
        } else if (is("--resume")) {
            cfg.resume = true;
        } else if (is("--fault-plan") && i + 1 < argc) {
            cfg.faultPlan = argv[++i];
        } else if (is("--point-timeout") && i + 1 < argc) {
            char *end = nullptr;
            double v = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || v < 0)
                usage(argv[0]);
            cfg.pointTimeoutSeconds = v;
        } else if (is("--max-point-retries") && i + 1 < argc) {
            cfg.maxPointRetries = int(parseNum(
                "--max-point-retries", argv[++i], 1, 1000, argv[0]));
        } else if (is("--strict")) {
            strict = true;
        } else {
            usage(argv[0]);
        }
    }

    try {
        cfg.inject = fuzz::parseInjectedBug(injectName);
        cfg.mode = fuzz::parseFuzzMode(modeName);
        if (!cfg.faultPlan.empty())
            harness::FaultPlan::parse(cfg.faultPlan);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0]);
    }
    if (cfg.resume && cfg.cacheDir.empty()) {
        std::fprintf(stderr, "--resume needs --cache-dir\n");
        usage(argv[0]);
    }
    if (cfg.jobs == 0)
        cfg.jobs = harness::hostConcurrency();
    // --scale picks the generated-program size caps: quick halves
    // them (CI smoke), paper grows them half again (nightly depth).
    cfg.sizeScale = scale.paper ? 1.5 : scale.quick ? 0.5 : 1.0;
    scale.seed = cfg.seed;
    scale.jobs = cfg.jobs;

    bench::banner("differential fuzzing (generator vs reference vs "
                  "smt/cmp backends)",
                  scale);
    // No jobs count here: stdout is byte-identical at any --jobs.
    std::printf("iterations: %d (seeds %llu..%llu, mode %s)%s\n",
                cfg.iters, (unsigned long long)cfg.seed,
                (unsigned long long)(cfg.seed +
                                     std::uint64_t(cfg.iters) - 1),
                fuzz::fuzzModeName(cfg.mode),
                cfg.inject == fuzz::InjectedBug::None
                    ? ""
                    : " [BUG INJECTION ACTIVE]");

    fuzz::CampaignResult res = fuzz::runCampaign(cfg);

    std::printf("\nprograms: %d  nodes: %llu  words: %llu\n",
                res.iterations,
                (unsigned long long)res.nodesTotal,
                (unsigned long long)res.wordsTotal);
    for (const auto &f : res.failures) {
        std::printf("FAIL seed %llu (iteration %d, %d nodes, "
                    "shrunk to %d):\n%s",
                    (unsigned long long)f.seed, f.iteration,
                    f.numNodes, f.shrunkNodes, f.detail.c_str());
        if (!f.artifactPath.empty())
            std::printf("  repro: %s\n", f.artifactPath.c_str());
    }
    std::printf("%s: %zu divergence(s) in %d iteration(s)\n",
                res.ok() ? "OK" : "FAILED", res.failures.size(),
                res.iterations);

    bench::JsonReport report("fuzz", scale);
    report.count("iterations", std::uint64_t(res.iterations));
    report.count("divergences", std::uint64_t(res.failures.size()));
    report.count("nodes_total", res.nodesTotal);
    report.count("words_total", res.wordsTotal);
    report.str("mode", fuzz::fuzzModeName(cfg.mode));
    report.str("inject_bug", fuzz::injectedBugName(cfg.inject));
    if (!cfg.cacheDir.empty() || cfg.workers != 1 ||
        !cfg.faultPlan.empty())
        bench::Scale::reportFarmStats(report, res.farm);
    report.flag("all_agree", res.ok());
    bool wrote = report.write();

    bool strictOk = true;
    if (strict && res.farm.quarantined > 0) {
        strictOk = false;
        std::fprintf(stderr,
                     "fuzz: --strict and %llu iteration(s) "
                     "quarantined\n",
                     (unsigned long long)res.farm.quarantined);
    }
    if (strict && res.farm.journalWriteErrors > 0) {
        strictOk = false;
        std::fprintf(stderr,
                     "fuzz: --strict and %llu journal write "
                     "error(s): the checkpoint is unreliable\n",
                     (unsigned long long)res.farm.journalWriteErrors);
    }

    return res.ok() && wrote && strictOk ? 0 : 1;
}
