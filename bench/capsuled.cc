/**
 * @file
 * capsuled — the persistent farm daemon CLI (DESIGN.md §12). Binds a
 * Unix-domain socket, serves batched campaign submissions from any
 * number of concurrent capsule_submit clients over one shared result
 * cache, and runs until SIGINT/SIGTERM (or --serve-seconds expires),
 * then prints the service counters.
 *
 * Daemon-specific flags on top of the common set (bench_util.hh —
 * --cache-dir / --cache-max-bytes / --workers / --point-timeout all
 * mean what they mean for farm_capsule, per campaign):
 *   --socket PATH       listening socket path (default
 *                       ./capsuled.sock)
 *   --io-timeout S      per-client I/O deadline: a half-sent message
 *                       or a client too slow to take its results is
 *                       dropped after S seconds (default 30)
 *   --serve-seconds S   exit after S seconds (0 = until a signal;
 *                       the CI smoke uses a bounded run)
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_util.hh"
#include "harness/daemon.hh"

using namespace capsule;

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath = "capsuled.sock";
    double ioTimeout = 30.0;
    double serveSeconds = 0.0;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            socketPath = argv[++i];
        } else if (std::strcmp(argv[i], "--io-timeout") == 0 &&
                   i + 1 < argc) {
            ioTimeout = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--serve-seconds") == 0 &&
                   i + 1 < argc) {
            serveSeconds = std::atof(argv[++i]);
        } else {
            rest.push_back(argv[i]);
        }
    }
    auto scale = bench::parseScale(int(rest.size()), rest.data());

    harness::DaemonOptions opts;
    opts.socketPath = socketPath;
    opts.cacheDir = scale.cacheDir;
    opts.cacheMaxBytes = scale.cacheMaxBytes;
    opts.workersPerCampaign = scale.workers;
    if (scale.pointTimeout >= 0)
        opts.pointTimeoutSeconds = scale.pointTimeout;
    opts.ioTimeoutSeconds = ioTimeout;

    harness::FarmDaemon daemon(opts);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "capsuled: %s\n", error.c_str());
        return 1;
    }
    std::printf("capsuled: listening on %s (cache %s, %d "
                "worker(s)/campaign, io timeout %.1fs)\n",
                socketPath.c_str(),
                opts.cacheDir.empty() ? "<off>"
                                      : opts.cacheDir.c_str(),
                opts.workersPerCampaign, opts.ioTimeoutSeconds);
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    const auto t0 = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
        if (serveSeconds > 0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                    .count() >= serveSeconds)
            break;
    }
    daemon.stop();

    const auto st = daemon.stats();
    std::printf("capsuled: %llu clients (%llu served, %llu "
                "dropped), %llu campaigns, %llu jobs\n",
                (unsigned long long)st.clientsAccepted,
                (unsigned long long)st.clientsServed,
                (unsigned long long)st.clientsDropped,
                (unsigned long long)st.campaigns,
                (unsigned long long)st.jobs);
    std::printf("capsuled: %llu io timeouts, %llu protocol errors, "
                "%llu cache hits, %llu misses, %llu computed, "
                "%llu quarantined\n",
                (unsigned long long)st.ioTimeouts,
                (unsigned long long)st.protocolErrors,
                (unsigned long long)st.farm.cacheHits,
                (unsigned long long)st.farm.cacheMisses,
                (unsigned long long)st.farm.computed,
                (unsigned long long)st.farm.quarantined);

    bench::JsonReport report("capsuled", scale);
    report.count("clients_accepted", st.clientsAccepted);
    report.count("clients_served", st.clientsServed);
    report.count("clients_dropped", st.clientsDropped);
    report.count("campaigns", st.campaigns);
    report.count("jobs", st.jobs);
    report.count("io_timeouts", st.ioTimeouts);
    report.count("protocol_errors", st.protocolErrors);
    bench::Scale::reportFarmStats(report, st.farm);
    return report.write() ? 0 : 1;
}
