/**
 * @file
 * Section 5, "Potential impact of CMPs on dynamic spawning" — on the
 * real CMP backend. Where this harness once only *approximated* a CMP
 * by sweeping an extra division latency on the single SMT machine, it
 * now simulates 1/2/4/8 SOMT cores (at a fixed total of 8 hardware
 * contexts, so the organisations compare at equal thread capacity)
 * sharing an L2 and one global division budget, and sweeps a 0–200
 * cycle division latency on the mcf analogue and on Dijkstra.
 *
 * The latency knob differs per column, matching what each
 * organisation would actually pay: the 1-core column sweeps the
 * paper's own axis — an extra latency on *every* granted division
 * (`divisionExtraLatency`, the Section-5 experiment, which observed
 * < 1 % average variation because even mcf divides only once every
 * ~3.7K instructions) — while the multi-core columns sweep the
 * cross-core transfer latency (`cmp.crossCoreDivLatency`), paid only
 * by divisions that spill to a remote core, whose children also
 * start against a cold private L1.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <iterator>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/workload.hh"

using namespace capsule;

namespace
{

constexpr int coreCounts[] = {1, 2, 4, 8};
constexpr Cycle latencies[] = {0, 25, 50, 100, 200};
constexpr int totalContexts = 8;
const char *const workloads[] = {"mcf", "dijkstra"};

} // namespace

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("CMP backend (core-count x division-latency sweep)",
                  scale);

    // One sweep over the full cross product; results come back in
    // submission order: workload-major, then cores, then latency.
    std::vector<harness::SweepPoint> points;
    for (const char *wlName : workloads) {
        for (int cores : coreCounts) {
            for (Cycle lat : latencies) {
                auto cfg = sim::MachineConfig::cmpSomt(
                    cores, totalContexts / cores);
                if (cores == 1)
                    cfg.divisionExtraLatency = lat;  // the SMT axis
                else
                    cfg.cmp.crossCoreDivLatency = lat;
                points.push_back(harness::registryPoint(
                    wlName, cfg, scale.request(scale.seed),
                    std::string(wlName) + "/cores" +
                        std::to_string(cores) + "/lat" +
                        std::to_string(lat)));
            }
        }
    }
    auto results = scale.runner().run(points);

    bench::JsonReport report("cmp", scale);
    bool allCorrect = true;
    auto pct = [](Cycle a, Cycle base) {
        return (double(a) / double(base) - 1.0) * 100.0;
    };

    constexpr std::size_t nLat = std::size(latencies);
    constexpr std::size_t nCores = std::size(coreCounts);
    std::size_t at = 0;
    for (const char *wlName : workloads) {
        std::vector<std::string> header{"division latency"};
        for (int cores : coreCounts)
            header.push_back(cores == 1
                                 ? std::string("1 core x 8 ctx (SMT "
                                               "per-div latency)")
                                 : std::to_string(cores) +
                                       " cores x " +
                                       std::to_string(totalContexts /
                                                      cores) +
                                       " ctx (cross-core)");
        TextTable t(std::move(header));

        // cycles[c][l] for this workload.
        std::vector<std::vector<Cycle>> cycles(nCores);
        std::vector<std::uint64_t> remote(nCores, 0);
        for (std::size_t c = 0; c < nCores; ++c) {
            for (std::size_t l = 0; l < nLat; ++l) {
                const auto &r = results[at++];
                allCorrect = allCorrect && r.correct;
                cycles[c].push_back(r.stats.cycles);
                if (l == 0)
                    remote[c] = r.stats.divisionsRemote;
            }
        }

        double smtWorstDelta = 0.0, cmpWorstDelta = 0.0;
        for (std::size_t l = 0; l < nLat; ++l) {
            std::vector<std::string> row{
                std::to_string(latencies[l]) + " cy"};
            for (std::size_t c = 0; c < nCores; ++c) {
                double d = pct(cycles[c][l], cycles[c][0]);
                (c == 0 ? smtWorstDelta : cmpWorstDelta) = std::max(
                    c == 0 ? smtWorstDelta : cmpWorstDelta,
                    std::abs(d));
                row.push_back(TextTable::count(cycles[c][l]) + " (" +
                              TextTable::num(d, 2) + "%)");
            }
            t.addRow(std::move(row));
        }
        t.render(std::cout);

        // Remote-division profile and the CMP-vs-SMT comparison at
        // the zero-latency baseline. Only genuinely multi-core
        // organisations enter the speedup, so a uniformly slower CMP
        // reports < 1.0 instead of being floored by the SMT column.
        Cycle smtBase = cycles[0][0];
        double bestSpeedup = 0.0;
        std::printf("  remote divisions at lat 0:");
        for (std::size_t c = 0; c < nCores; ++c) {
            std::printf(" %d-core=%llu", coreCounts[c],
                        (unsigned long long)remote[c]);
            if (c > 0)
                bestSpeedup = std::max(
                    bestSpeedup,
                    double(smtBase) / double(cycles[c][0]));
        }
        std::printf("\n\n");

        std::string key(wlName);
        report.num(key + "_smt_worst_delta_pct", smtWorstDelta);
        report.num(key + "_cmp_worst_delta_pct", cmpWorstDelta);
        report.num(key + "_cmp_best_speedup", bestSpeedup);
        report.count(key + "_smt_cycles", smtBase);
        report.count(key + "_8core_cycles", cycles[nCores - 1][0]);
        report.count(key + "_8core_remote_divisions",
                     remote[nCores - 1]);
    }

    std::printf("paper: < 1%% average variation up to 200 cycles of "
                "per-division latency (the 1-core\ncolumn sweeps "
                "exactly that knob); multi-core columns pay the "
                "cross-core transfer\nonly on remote grants — a "
                "denied probe stays a local constant-time check\n");

    report.count("max_cross_core_latency_cycles",
                 latencies[nLat - 1]);
    report.count("total_contexts", totalContexts);
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
