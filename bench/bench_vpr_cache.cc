/**
 * @file
 * Section 5, vpr detail — the parallel router is memory-bandwidth
 * limited: doubling the D-cache size and its ports raises the
 * per-iteration speedup from 2.47x to 3.5x (overall 3.0x) in the
 * paper. This harness runs the vpr analogue on the default SOMT and
 * on a doubled-cache/doubled-port SOMT and reports per-iteration and
 * per-run speedups against the superscalar baseline.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "workloads/vpr_route.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("vpr cache sensitivity (Section 5)", scale);

    wl::VprParams p;
    p.grid = scale.pick(32, 32, 64);
    p.nets = scale.pick(12, 16, 48);
    p.seed = scale.seed;

    auto mono = sim::MachineConfig::superscalar();
    auto somt = sim::MachineConfig::somt();
    auto big = somt;
    big.name = "somt-2xcache";
    big.mem.l1d.sizeBytes *= 2;
    big.dcachePorts *= 2;

    auto base = wl::runVpr(mono, p);
    auto small = wl::runVpr(somt, p);
    auto wide = wl::runVpr(big, p);

    auto perIter = [](const wl::VprResult &r) {
        return double(r.sectionStats.cycles) /
               double(std::max(1, r.iterations));
    };

    TextTable t({"machine", "cycles", "iterations", "cycles/iter",
                 "iter speedup", "run speedup"});
    auto row = [&](const char *name, const wl::VprResult &r) {
        t.addRow({name, TextTable::count(r.sectionStats.cycles),
                  std::to_string(r.iterations),
                  TextTable::count(Cycle(perIter(r))),
                  TextTable::num(perIter(base) / perIter(r)) + "x",
                  TextTable::num(double(base.sectionStats.cycles) /
                                 double(r.sectionStats.cycles)) +
                      "x"});
    };
    row("superscalar", base);
    row("somt (8kB L1D, 2 ports)", small);
    row("somt (16kB L1D, 4 ports)", wide);
    t.render(std::cout);
    std::printf("\npaper: iteration speedup 2.47x -> 3.5x when "
                "doubling cache size and ports (overall 3.0x)\n");

    bench::JsonReport report("vpr_cache", scale);
    report.num("iter_speedup_somt", perIter(base) / perIter(small));
    report.num("iter_speedup_somt_2xcache",
               perIter(base) / perIter(wide));
    report.num("run_speedup_somt",
               double(base.sectionStats.cycles) /
                   double(small.sectionStats.cycles));
    report.num("run_speedup_somt_2xcache",
               double(base.sectionStats.cycles) /
                   double(wide.sectionStats.cycles));
    bool allConverged =
        base.converged && small.converged && wide.converged;
    report.flag("all_correct", allConverged);
    return report.write() && allConverged ? 0 : 1;
}
