/**
 * @file
 * Section 5, vpr detail — the parallel router is memory-bandwidth
 * limited: doubling the D-cache size and its ports raises the
 * per-iteration speedup from 2.47x to 3.5x (overall 3.0x) in the
 * paper. This harness runs the vpr analogue on the default SOMT and
 * on a doubled-cache/doubled-port SOMT (one three-point sweep on the
 * experiment engine) and reports per-iteration and per-run speedups
 * against the superscalar baseline.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/vpr_route.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("vpr cache sensitivity (Section 5)", scale);

    wl::VprParams p;
    p.grid = scale.pick(32, 32, 64);
    p.nets = scale.pick(12, 16, 48);
    p.seed = scale.seed;

    auto mono = sim::MachineConfig::superscalar();
    auto somt = sim::MachineConfig::somt();
    auto big = somt;
    big.name = "somt-2xcache";
    big.mem.l1d.sizeBytes *= 2;
    big.dcachePorts *= 2;

    std::vector<harness::SweepPoint> points{
        {"vpr/superscalar", [&] { return wl::runVpr(mono, p); }},
        {"vpr/somt", [&] { return wl::runVpr(somt, p); }},
        {"vpr/somt-2xcache", [&] { return wl::runVpr(big, p); }},
    };
    auto results = scale.runner().run(points);
    const auto &base = results[0];
    const auto &small = results[1];
    const auto &wide = results[2];

    auto perIter = [](const wl::WorkloadResult &r) {
        return double(r.stats.cycles) /
               std::max(1.0, r.metric("iterations"));
    };

    TextTable t({"machine", "cycles", "iterations", "cycles/iter",
                 "iter speedup", "run speedup"});
    auto row = [&](const char *name, const wl::WorkloadResult &r) {
        t.addRow({name, TextTable::count(r.stats.cycles),
                  std::to_string(int(r.metric("iterations"))),
                  TextTable::count(Cycle(perIter(r))),
                  TextTable::num(perIter(base) / perIter(r)) + "x",
                  TextTable::num(double(base.stats.cycles) /
                                 double(r.stats.cycles)) +
                      "x"});
    };
    row("superscalar", base);
    row("somt (8kB L1D, 2 ports)", small);
    row("somt (16kB L1D, 4 ports)", wide);
    t.render(std::cout);
    std::printf("\npaper: iteration speedup 2.47x -> 3.5x when "
                "doubling cache size and ports (overall 3.0x)\n");

    bench::JsonReport report("vpr_cache", scale);
    report.num("iter_speedup_somt", perIter(base) / perIter(small));
    report.num("iter_speedup_somt_2xcache",
               perIter(base) / perIter(wide));
    report.num("run_speedup_somt",
               double(base.stats.cycles) /
                   double(small.stats.cycles));
    report.num("run_speedup_somt_2xcache",
               double(base.stats.cycles) /
                   double(wide.stats.cycles));
    bool allConverged =
        base.correct && small.correct && wide.correct;
    report.flag("all_correct", allConverged);
    return report.write() && allConverged ? 0 : 1;
}
