/**
 * @file
 * capsule_submit — the capsuled client CLI (DESIGN.md §12).
 *
 * Default mode submits the exact farm_capsule campaign (workload
 * registry x {smt, cmp, func} at the selected scale/seed) to a
 * running daemon and prints the *same* per-point table — simulated
 * fields only — so CI can diff the daemon-served results literally
 * against a direct farm_capsule run (the byte-identical contract,
 * now across a socket).
 *
 * --fuzz-traffic N is the load-test mode: N jobs drawn by the
 * platform-stable fuzz RNG (PR 5's SplitMix64 source) as random
 * (workload, machine, seed) batches, submitted from --clients
 * concurrent connections, measuring submit-to-result latency per
 * job. BENCH_daemon.json records jobs/sec, p50/p99 latency and the
 * cache hit rate under that concurrency.
 *
 * Client-specific flags on top of the common set (bench_util.hh):
 *   --socket PATH      daemon socket (default ./capsuled.sock)
 *   --io-timeout S     inactivity deadline on the connection
 *                      (default 300)
 *   --fuzz-traffic N   load-test mode: N random jobs instead of the
 *                      registry campaign
 *   --clients N        concurrent connections in load-test mode
 *                      (default 2)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "base/table.hh"
#include "bench_util.hh"
#include "fuzz/fuzz_rng.hh"
#include "harness/daemon_client.hh"
#include "workloads/workload.hh"

using namespace capsule;

namespace
{

double
percentileMs(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const auto idx = std::size_t(
        std::min<double>(double(sorted.size()) - 1,
                         p / 100.0 * double(sorted.size())));
    return sorted[idx];
}

int
runFuzzTraffic(const std::string &socketPath, double ioTimeout,
               int totalJobs, int clients,
               const bench::Scale &scale)
{
    const auto names = wl::WorkloadRegistry::builtin().names();
    const auto machines = harness::daemonMachineNames();
    const char *scaleName = wl::scaleLevelName(scale.level());

    std::mutex mtx;
    std::vector<double> latenciesMs;
    std::uint64_t campaigns = 0, hits = 0, misses = 0, failures = 0;

    // Deterministic split of the job budget and the draw streams.
    clients = std::max(1, clients);
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
        const int share = totalJobs / clients +
                          (c < totalJobs % clients ? 1 : 0);
        threads.emplace_back([&, c, share] {
            fuzz::FuzzRng rng(scale.seed * 1000003ULL +
                              std::uint64_t(c));
            harness::DaemonClient client(socketPath, ioTimeout);
            int sent = 0;
            while (sent < share) {
                const int batch = int(std::min<std::uint64_t>(
                    1 + rng.below(3),
                    std::uint64_t(share - sent)));
                std::vector<harness::daemonwire::JobSpec> jobs;
                for (int k = 0; k < batch; ++k) {
                    harness::daemonwire::JobSpec j;
                    j.workload = names[rng.below(names.size())];
                    j.machine =
                        machines[rng.below(machines.size())];
                    j.scale = scaleName;
                    // A small seed pool makes repeats (and thus
                    // cache hits) part of the traffic shape.
                    j.seed = 1 + rng.below(4);
                    jobs.push_back(std::move(j));
                }
                const auto submitAt =
                    std::chrono::steady_clock::now();
                std::vector<double> arrivals(jobs.size(), 0.0);
                auto outcome = client.run(
                    jobs, [&](std::size_t i,
                              const wl::WorkloadResult &) {
                        arrivals[i] =
                            std::chrono::duration<double,
                                                  std::milli>(
                                std::chrono::steady_clock::now() -
                                submitAt)
                                .count();
                    });
                std::lock_guard<std::mutex> lock(mtx);
                ++campaigns;
                if (!outcome.ok) {
                    ++failures;
                    std::fprintf(
                        stderr,
                        "capsule_submit: campaign failed: %s\n",
                        outcome.error.c_str());
                } else {
                    latenciesMs.insert(latenciesMs.end(),
                                       arrivals.begin(),
                                       arrivals.end());
                    hits += outcome.summary.cacheHits;
                    misses += outcome.summary.cacheMisses;
                }
                sent += batch;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    std::sort(latenciesMs.begin(), latenciesMs.end());
    const double p50 = percentileMs(latenciesMs, 50);
    const double p99 = percentileMs(latenciesMs, 99);
    const double denom = double(hits + misses);
    const double hitRate =
        denom > 0 ? 100.0 * double(hits) / denom : 0.0;
    const double jobsPerSec =
        wall > 0 ? double(latenciesMs.size()) / wall : 0.0;

    std::printf("daemon: %zu jobs in %llu campaigns from %d "
                "client(s) in %.2fs (%.1f jobs/s)\n",
                latenciesMs.size(), (unsigned long long)campaigns,
                clients, wall, jobsPerSec);
    std::printf("daemon: submit-to-result latency p50 %.1fms, "
                "p99 %.1fms; cache hit rate %.1f%%; %llu failed "
                "campaign(s)\n",
                p50, p99, hitRate, (unsigned long long)failures);

    bench::JsonReport report("daemon", scale);
    report.count("jobs", latenciesMs.size());
    report.count("campaigns", campaigns);
    report.count("clients", std::uint64_t(clients));
    report.num("jobs_per_sec", jobsPerSec);
    report.num("latency_p50_ms", p50);
    report.num("latency_p99_ms", p99);
    report.num("cache_hit_rate_percent", hitRate);
    report.count("cache_hits", hits);
    report.count("cache_misses", misses);
    report.count("failed_campaigns", failures);
    report.flag("all_ok", failures == 0);
    return report.write() && failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath = "capsuled.sock";
    double ioTimeout = 300.0;
    int fuzzTraffic = 0;
    int clients = 2;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            socketPath = argv[++i];
        } else if (std::strcmp(argv[i], "--io-timeout") == 0 &&
                   i + 1 < argc) {
            ioTimeout = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--fuzz-traffic") == 0 &&
                   i + 1 < argc) {
            fuzzTraffic = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--clients") == 0 &&
                   i + 1 < argc) {
            clients = std::atoi(argv[++i]);
        } else {
            rest.push_back(argv[i]);
        }
    }
    auto scale = bench::parseScale(int(rest.size()), rest.data());

    if (fuzzTraffic > 0) {
        bench::banner("daemon load test (seeded fuzz traffic)",
                      scale);
        return runFuzzTraffic(socketPath, ioTimeout, fuzzTraffic,
                              clients, scale);
    }

    bench::banner("daemon campaign submission (registry x machine)",
                  scale);
    const auto names = wl::WorkloadRegistry::builtin().names();
    const auto machines = harness::daemonMachineNames();
    std::vector<harness::daemonwire::JobSpec> jobs;
    for (const auto &wlName : names)
        for (const auto &m : machines)
            jobs.push_back({wlName, m,
                            wl::scaleLevelName(scale.level()),
                            scale.seed});

    harness::DaemonClient client(socketPath, ioTimeout);
    auto outcome = client.run(jobs);
    if (!outcome.ok) {
        std::fprintf(stderr, "capsule_submit: %s\n",
                     outcome.error.c_str());
        return 1;
    }

    // The same table farm_capsule prints — simulated fields only, so
    // a direct run and a daemon-served run diff byte-identical.
    TextTable table({"workload", "machine", "cycles", "insts", "ipc",
                     "correct"});
    bool allCorrect = true;
    std::size_t at = 0;
    for (const auto &wlName : names) {
        for (const auto &m : machines) {
            const auto &r = outcome.results[at++];
            const bool quarantined =
                r.metric("quarantined", 0.0) != 0.0;
            allCorrect = allCorrect && (r.correct || quarantined);
            table.addRow({wlName, m,
                          TextTable::count(r.stats.cycles),
                          TextTable::count(r.stats.instructions),
                          TextTable::num(r.stats.ipc, 4),
                          quarantined     ? "quar"
                          : r.correct     ? "yes"
                                          : "NO"});
        }
    }
    table.render(std::cout);

    const auto &s = outcome.summary;
    std::printf("\ndaemon: %llu jobs, %llu computed, %llu cache "
                "hits, %llu misses, %llu quarantined, %.2fs server "
                "wall\n",
                (unsigned long long)s.jobs,
                (unsigned long long)s.computed,
                (unsigned long long)s.cacheHits,
                (unsigned long long)s.cacheMisses,
                (unsigned long long)s.quarantined, s.wallSeconds);

    bench::JsonReport report("daemon", scale);
    std::size_t i = 0;
    for (const auto &wlName : names) {
        for (const auto &m : machines) {
            const auto &r = outcome.results[i++];
            std::string key = wlName + "." + m;
            report.count(key + ".sim_cycles", r.stats.cycles);
            report.count(key + ".sim_instructions",
                         r.stats.instructions);
            report.flag(key + ".correct", r.correct);
        }
    }
    report.count("jobs", s.jobs);
    report.count("computed", s.computed);
    report.count("cache_hits", s.cacheHits);
    report.count("cache_misses", s.cacheMisses);
    report.count("quarantined", s.quarantined);
    report.flag("all_correct", allCorrect);

    bool strictOk = true;
    if (scale.strict && s.quarantined > 0) {
        strictOk = false;
        std::fprintf(stderr,
                     "daemon: --strict and %llu point(s) "
                     "quarantined\n",
                     (unsigned long long)s.quarantined);
    }
    return report.write() && allCorrect && strictOk ? 0 : 1;
}
