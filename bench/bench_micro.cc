/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates:
 * cache access throughput, branch-predictor lookups, lock-table
 * operations, and end-to-end simulated-cycles-per-second on the
 * quickstart workload. These guard the simulator's own performance
 * (host-side), not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "casm/assembler.hh"
#include "front/asm_program.hh"
#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/lock_table.hh"
#include "sim/machine.hh"
#include "workloads/dijkstra.hh"

using namespace capsule;

namespace
{

void
BM_CacheHit(benchmark::State &state)
{
    sim::MemoryHierarchy mem({});
    mem.dataAccess(0x1000, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.dataAccess(0x1000, false));
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissStream(benchmark::State &state)
{
    sim::MemoryHierarchy mem({});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.dataAccess(a, false));
        a += 64;
    }
}
BENCHMARK(BM_CacheMissStream);

void
BM_BpredLookup(benchmark::State &state)
{
    sim::CombinedPredictor p;
    Addr pc = 0x1000;
    bool taken = false;
    for (auto _ : state) {
        taken = !taken;
        benchmark::DoNotOptimize(p.predict(pc));
        p.update(pc, taken);
        pc += 4;
    }
}
BENCHMARK(BM_BpredLookup);

void
BM_LockAcquireRelease(benchmark::State &state)
{
    sim::LockTable lt(1024);
    Addr a = 0x100;
    for (auto _ : state) {
        lt.acquire(a, 1);
        lt.release(a, 1);
        a = (a + 64) & 0xffff;
    }
}
BENCHMARK(BM_LockAcquireRelease);

void
BM_MachineCyclesPerSecond(benchmark::State &state)
{
    // End-to-end simulation speed on a warm loop.
    std::string src = "  addi r9, r0, 1000\n"
                      "top:\n"
                      "  addi r1, r1, 1\n  addi r2, r2, 1\n"
                      "  addi r3, r3, 1\n  addi r4, r4, 1\n"
                      "  addi r9, r9, -1\n"
                      "  bne r9, r0, top\n"
                      "  halt\n";
    auto img = casm::Assembler::assembleOrDie(src);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        front::AsmProcess proc(img);
        sim::Machine m(sim::MachineConfig::superscalar());
        m.addThread(std::make_unique<front::AsmProgram>(proc));
        cycles += m.run().cycles;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineCyclesPerSecond);

void
BM_DijkstraSomtEndToEnd(benchmark::State &state)
{
    wl::DijkstraParams p;
    p.nodes = 100;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        auto r = wl::runDijkstra(sim::MachineConfig::somt(), p);
        cycles += r.stats.cycles;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DijkstraSomtEndToEnd);

} // namespace

BENCHMARK_MAIN();
