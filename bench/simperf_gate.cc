/**
 * @file
 * simperf_gate — the CI perf-regression gate over BENCH_simperf.json.
 *
 * Compares the current commit's simulator-throughput metrics against
 * the parent's checked-in baseline and exits nonzero when the
 * detailed-tier aggregate sim-MIPS regressed by more than the allowed
 * fraction (default 10%). The detailed tiers (smt, cmp) are gated —
 * not the overall aggregate — so the fast functional tier's much
 * larger MIPS cannot mask a slowdown of the cycle-level kernel that
 * every paper figure funnels through. Baselines written before the
 * per-backend fields existed are still gateable: the reader falls
 * back to the overall `aggregate_mips`.
 *
 * Usage:
 *   simperf_gate <current.json> <baseline.json> [--max-regression F]
 *
 * Exit status: 0 pass (or improvement), 1 regression beyond the
 * threshold, 2 unusable inputs. Host-timing noise between runners is
 * the caller's problem: CI runs both measurements on the same runner
 * class, and the threshold leaves slack for run-to-run jitter.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

namespace
{

/**
 * Minimal reader for the flat JsonReport shape (one `"key": value`
 * line per metric inside the "metrics" object) — the same contract
 * tests/test_simperf_smoke.cc parses.
 */
std::map<std::string, std::string>
readMetrics(const std::string &path)
{
    std::ifstream f(path);
    std::map<std::string, std::string> out;
    if (!f.good())
        return out;
    std::string line;
    bool inMetrics = false;
    while (std::getline(f, line)) {
        if (line.find("\"metrics\"") != std::string::npos) {
            inMetrics = true;
            continue;
        }
        if (!inMetrics)
            continue;
        auto q1 = line.find('"');
        if (q1 == std::string::npos)
            continue;
        auto q2 = line.find('"', q1 + 1);
        auto colon = line.find(':', q2);
        if (q2 == std::string::npos || colon == std::string::npos)
            continue;
        std::string key = line.substr(q1 + 1, q2 - q1 - 1);
        std::string val = line.substr(colon + 1);
        while (!val.empty() &&
               (val.back() == ',' || val.back() == ' ' ||
                val.back() == '\r'))
            val.pop_back();
        while (!val.empty() && val.front() == ' ')
            val.erase(val.begin());
        out[key] = val;
    }
    return out;
}

/**
 * The gated figure of merit: the mean of the detailed per-backend
 * aggregate MIPS when present, else the overall aggregate (pre-func
 * baselines, where the overall figure *was* the detailed figure).
 * @return -1.0 when the file carries neither
 */
double
detailedMips(const std::map<std::string, std::string> &m)
{
    double sum = 0.0;
    int n = 0;
    for (const char *backend : {"smt", "cmp"}) {
        auto it = m.find(std::string("aggregate_mips.") + backend);
        if (it == m.end())
            continue;
        sum += std::strtod(it->second.c_str(), nullptr);
        ++n;
    }
    if (n > 0)
        return sum / n;
    auto it = m.find("aggregate_mips");
    if (it == m.end())
        return -1.0;
    return std::strtod(it->second.c_str(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string current, baseline;
    double maxRegression = 0.10;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-regression") == 0 &&
            i + 1 < argc) {
            maxRegression = std::strtod(argv[++i], nullptr);
        } else if (current.empty()) {
            current = argv[i];
        } else if (baseline.empty()) {
            baseline = argv[i];
        } else {
            std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
            return 2;
        }
    }
    if (current.empty() || baseline.empty()) {
        std::fprintf(stderr,
                     "usage: simperf_gate <current.json> "
                     "<baseline.json> [--max-regression F]\n");
        return 2;
    }

    auto cur = readMetrics(current);
    auto base = readMetrics(baseline);
    if (cur.empty()) {
        std::fprintf(stderr, "cannot read metrics from %s\n",
                     current.c_str());
        return 2;
    }
    if (base.empty()) {
        std::fprintf(stderr, "cannot read metrics from %s\n",
                     baseline.c_str());
        return 2;
    }

    double curMips = detailedMips(cur);
    double baseMips = detailedMips(base);
    if (curMips < 0.0 || baseMips <= 0.0) {
        std::fprintf(stderr,
                     "no aggregate MIPS figure in %s\n",
                     curMips < 0.0 ? current.c_str()
                                   : baseline.c_str());
        return 2;
    }

    double floor = baseMips * (1.0 - maxRegression);
    double delta = (curMips - baseMips) / baseMips * 100.0;
    std::printf("detailed aggregate sim-MIPS: current %.3f, "
                "baseline %.3f (%+.1f%%), floor %.3f "
                "(max regression %.0f%%)\n",
                curMips, baseMips, delta, floor,
                maxRegression * 100.0);
    if (curMips < floor) {
        std::printf("FAIL: simulator throughput regressed beyond the "
                    "%.0f%% gate\n",
                    maxRegression * 100.0);
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
