/**
 * @file
 * Figure 6 — the irregular division genealogy of QuickSort. Runs one
 * componentised sort on the SOMT, records every granted division
 * (parent -> child thread), prints tree statistics, and emits the
 * genealogy as GraphViz DOT (the same artifact the paper plots).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <vector>

#include "base/dot.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/quicksort.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("Figure 6 (irregular QuickSort division tree)",
                  scale);

    wl::QuickSortParams p;
    p.length = scale.pick(1024, 4096, 16384);
    p.seed = scale.seed;
    p.distribution = wl::ListDistribution::Exponential;

    DotGraph dot("quicksort_divisions");
    std::map<ThreadId, std::vector<ThreadId>> children;
    dot.addNode("t0", "worker 0 (ancestor)");
    // A one-point sweep: the experiment engine runs single points
    // inline, so the genealogy observer needs no synchronisation.
    harness::SweepPoint pt;
    pt.label = "quicksort/divtree";
    pt.run = [&] {
        return wl::runQuickSort(
            sim::MachineConfig::somt(), p,
            [&](ThreadId parent, ThreadId child) {
                dot.addNode("t" + std::to_string(child),
                            "worker " + std::to_string(child));
                dot.addEdge("t" + std::to_string(parent),
                            "t" + std::to_string(child));
                children[parent].push_back(child);
            });
    };
    auto res = scale.runner().run({pt}).front();

    std::printf("list length %d -> %llu divisions granted of %llu "
                "requested, result %s\n",
                p.length,
                (unsigned long long)res.stats.divisionsGranted,
                (unsigned long long)res.stats.divisionsRequested,
                res.correct ? "correct" : "WRONG");

    // Tree shape statistics: the irregularity the paper illustrates.
    std::size_t maxFanout = 0;
    ThreadId busiest = 0;
    for (const auto &[parent, kids] : children) {
        if (kids.size() > maxFanout) {
            maxFanout = kids.size();
            busiest = parent;
        }
    }
    std::printf("genealogy: %zu nodes, %zu edges, max fan-out %zu "
                "(worker %d)\n",
                dot.nodeCount(), dot.edgeCount(), maxFanout, busiest);

    const char *path = "fig6_divisions.dot";
    std::ofstream f(path);
    dot.render(f);
    std::printf("DOT written to %s (render with: dot -Tpdf %s)\n",
                path, path);

    bench::JsonReport report("fig6_divtree", scale);
    report.str("distribution", "exponential");
    report.count("list_length", std::uint64_t(p.length));
    report.count("divisions_requested", res.stats.divisionsRequested);
    report.count("divisions_granted", res.stats.divisionsGranted);
    report.count("genealogy_nodes", dot.nodeCount());
    report.count("genealogy_edges", dot.edgeCount());
    report.count("max_fanout", maxFanout);
    report.flag("all_correct", res.correct);
    return report.write() && res.correct ? 0 : 1;
}
