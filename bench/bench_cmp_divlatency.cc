/**
 * @file
 * Section 5, "Potential impact of CMPs on dynamic spawning" — the
 * division-latency sensitivity study. The paper simulated division
 * latencies up to 200 cycles and observed an average performance
 * variation below 1 %, because even mcf (the highest grant ratio)
 * divides only once every ~3.7K instructions. This harness sweeps
 * the extra division latency on the mcf analogue and on Dijkstra
 * (one experiment-engine sweep over all latency points) and reports
 * the relative slowdown.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <iterator>

#include "base/table.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "workloads/dijkstra.hh"
#include "workloads/mcf_route.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("CMP extrapolation (division-latency sweep)",
                  scale);

    const Cycle latencies[] = {0, 25, 50, 100, 200};

    wl::McfParams mp;
    mp.nodes = scale.pick(4000, 12000, 60000);
    mp.seed = scale.seed;

    wl::DijkstraParams dp;
    dp.nodes = scale.pick(150, 400, 1000);
    dp.seed = scale.seed;

    std::vector<harness::SweepPoint> points;
    for (Cycle extra : latencies) {
        auto cfg = sim::MachineConfig::somt();
        cfg.divisionExtraLatency = extra;
        harness::SweepPoint mcfPt;
        mcfPt.label = "mcf/lat" + std::to_string(extra);
        mcfPt.run = [cfg, mp] { return wl::runMcf(cfg, mp); };
        points.push_back(std::move(mcfPt));
        harness::SweepPoint dijPt;
        dijPt.label = "dijkstra/lat" + std::to_string(extra);
        dijPt.run = [cfg, dp] { return wl::runDijkstra(cfg, dp); };
        points.push_back(std::move(dijPt));
    }
    auto results = scale.runner().run(points);

    TextTable t({"extra division latency", "mcf cycles", "mcf delta",
                 "dijkstra cycles", "dijkstra delta"});
    bench::JsonReport report("cmp_divlatency", scale);
    Cycle mcfBase = 0, dijBase = 0;
    double mcfWorst = 0, dijWorst = 0;
    bool allCorrect = true;
    auto pct = [](Cycle now, Cycle base) {
        return (double(now) / double(base) - 1.0) * 100.0;
    };
    for (std::size_t i = 0; i < std::size(latencies); ++i) {
        Cycle extra = latencies[i];
        auto mcf = results[2 * i].stats.cycles;
        auto dij = results[2 * i + 1].stats.cycles;
        allCorrect = allCorrect && results[2 * i].correct &&
                     results[2 * i + 1].correct;

        if (extra == 0) {
            mcfBase = mcf;
            dijBase = dij;
        }
        auto delta = [&pct](Cycle now, Cycle base) {
            return TextTable::num(pct(now, base), 2) + "%";
        };
        t.addRow({std::to_string(extra) + " cy",
                  TextTable::count(mcf), delta(mcf, mcfBase),
                  TextTable::count(dij), delta(dij, dijBase)});
        mcfWorst = std::max(mcfWorst, std::abs(pct(mcf, mcfBase)));
        dijWorst = std::max(dijWorst, std::abs(pct(dij, dijBase)));
    }
    t.render(std::cout);
    std::printf("\npaper: < 1%% average variation up to 200 cycles "
                "of division latency\n");

    report.count("max_extra_latency_cycles",
                 latencies[std::size(latencies) - 1]);
    report.num("mcf_worst_delta_pct", mcfWorst);
    report.num("dijkstra_worst_delta_pct", dijWorst);
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
