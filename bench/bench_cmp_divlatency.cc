/**
 * @file
 * Section 5, "Potential impact of CMPs on dynamic spawning" — the
 * division-latency sensitivity study. The paper simulated division
 * latencies up to 200 cycles and observed an average performance
 * variation below 1 %, because even mcf (the highest grant ratio)
 * divides only once every ~3.7K instructions. This harness sweeps
 * the extra division latency on the mcf analogue and on Dijkstra and
 * reports the relative slowdown.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <iterator>

#include "base/table.hh"
#include "bench_util.hh"
#include "workloads/dijkstra.hh"
#include "workloads/mcf_route.hh"

using namespace capsule;

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::banner("CMP extrapolation (division-latency sweep)",
                  scale);

    const Cycle latencies[] = {0, 25, 50, 100, 200};

    TextTable t({"extra division latency", "mcf cycles", "mcf delta",
                 "dijkstra cycles", "dijkstra delta"});
    bench::JsonReport report("cmp_divlatency", scale);
    Cycle mcfBase = 0, dijBase = 0;
    double mcfWorst = 0, dijWorst = 0;
    bool allCorrect = true;
    auto pct = [](Cycle now, Cycle base) {
        return (double(now) / double(base) - 1.0) * 100.0;
    };
    for (Cycle extra : latencies) {
        auto cfg = sim::MachineConfig::somt();
        cfg.divisionExtraLatency = extra;

        wl::McfParams mp;
        mp.nodes = scale.pick(4000, 12000, 60000);
        mp.seed = scale.seed;
        auto mcfRes = wl::runMcf(cfg, mp);
        auto mcf = mcfRes.sectionStats.cycles;

        wl::DijkstraParams dp;
        dp.nodes = scale.pick(150, 400, 1000);
        dp.seed = scale.seed;
        auto dijRes = wl::runDijkstra(cfg, dp);
        auto dij = dijRes.stats.cycles;
        allCorrect = allCorrect && mcfRes.correct && dijRes.correct;

        if (extra == 0) {
            mcfBase = mcf;
            dijBase = dij;
        }
        auto delta = [&pct](Cycle now, Cycle base) {
            return TextTable::num(pct(now, base), 2) + "%";
        };
        t.addRow({std::to_string(extra) + " cy",
                  TextTable::count(mcf), delta(mcf, mcfBase),
                  TextTable::count(dij), delta(dij, dijBase)});
        mcfWorst = std::max(mcfWorst, std::abs(pct(mcf, mcfBase)));
        dijWorst = std::max(dijWorst, std::abs(pct(dij, dijBase)));
    }
    t.render(std::cout);
    std::printf("\npaper: < 1%% average variation up to 200 cycles "
                "of division latency\n");

    report.count("max_extra_latency_cycles",
                 latencies[std::size(latencies) - 1]);
    report.num("mcf_worst_delta_pct", mcfWorst);
    report.num("dijkstra_worst_delta_pct", dijWorst);
    report.flag("all_correct", allCorrect);
    return report.write() && allCorrect ? 0 : 1;
}
