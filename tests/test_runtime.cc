/**
 * @file
 * Tests of the coroutine worker runtime: instruction emission order,
 * value-handle dependences, stable site PCs, the probe protocol
 * (grant and deny), division prologues, the stack pool, and nested
 * task composition.
 */

#include <gtest/gtest.h>

#include "core/exec.hh"
#include "core/kernel_program.hh"
#include "core/worker.hh"

namespace capsule::rt
{
namespace
{

using isa::DynInst;
using isa::OpClass;

/** Drain a program, answering every probe with `grant`. */
std::vector<DynInst>
drain(KernelProgram &prog, bool grant,
      std::vector<std::unique_ptr<front::Program>> *children = nullptr)
{
    std::vector<DynInst> out;
    DynInst inst;
    while (prog.next(inst)) {
        out.push_back(inst);
        if (inst.cls == OpClass::Nthr) {
            auto child = prog.resolveNthr(grant);
            if (children && child)
                children->push_back(std::move(child));
        }
        if (out.size() > 100000)
            ADD_FAILURE() << "runaway emission";
    }
    return out;
}

int
countClass(const std::vector<DynInst> &v, OpClass cls)
{
    int n = 0;
    for (const auto &inst : v)
        n += inst.cls == cls;
    return n;
}

TEST(Runtime, EmitsProgramOrderAndDeath)
{
    Exec exec;
    KernelProgram prog(
        exec,
        [](Worker &w) -> Task {
            Val a = co_await w.load(0x100);
            Val b = co_await w.alu(a);
            co_await w.store(0x108, b);
        },
        /*ancestor=*/true);
    auto insts = drain(prog, false);
    ASSERT_EQ(insts.size(), 4u);
    EXPECT_EQ(insts[0].cls, OpClass::Load);
    EXPECT_EQ(insts[1].cls, OpClass::IntAlu);
    EXPECT_EQ(insts[2].cls, OpClass::Store);
    EXPECT_EQ(insts[3].cls, OpClass::Halt);  // ancestor ends in halt
}

TEST(Runtime, ChildEndsWithKthr)
{
    Exec exec;
    KernelProgram prog(
        exec, [](Worker &w) -> Task { co_await w.alu(); },
        /*ancestor=*/false);
    auto insts = drain(prog, false);
    ASSERT_FALSE(insts.empty());
    EXPECT_EQ(insts.back().cls, OpClass::Kthr);
}

TEST(Runtime, ValueHandlesCarryDependences)
{
    Exec exec;
    KernelProgram prog(
        exec,
        [](Worker &w) -> Task {
            Val a = co_await w.load(0x100);
            Val b = co_await w.alu(a);
            co_await w.store(0x200, b);
        },
        true);
    auto insts = drain(prog, false);
    // alu depends on the load's destination register.
    EXPECT_EQ(insts[1].rs1, insts[0].rd);
    // store's source is the alu's destination.
    EXPECT_EQ(insts[2].rs1, insts[1].rd);
}

TEST(Runtime, BranchSitesHaveStablePcs)
{
    Exec exec;
    KernelProgram prog(
        exec,
        [](Worker &w) -> Task {
            for (int i = 0; i < 5; ++i)
                co_await w.branch(7, i < 4);
            co_await w.branch(9, false);
        },
        true);
    auto insts = drain(prog, false);
    Addr firstPc = insts[0].pc;
    for (int i = 1; i < 5; ++i)
        EXPECT_EQ(insts[std::size_t(i)].pc, firstPc);
    EXPECT_NE(insts[5].pc, firstPc);  // different site
}

TEST(Runtime, ComputeEmitsBulk)
{
    Exec exec;
    KernelProgram prog(
        exec, [](Worker &w) -> Task { co_await w.compute(10); }, true);
    auto insts = drain(prog, false);
    EXPECT_EQ(countClass(insts, OpClass::IntAlu), 10);
}

TEST(Runtime, ChainIsSeriallyDependent)
{
    Exec exec;
    KernelProgram prog(
        exec,
        [](Worker &w) -> Task {
            Val s = co_await w.alu();
            co_await w.chain(s, 4);
        },
        true);
    auto insts = drain(prog, false);
    ASSERT_EQ(countClass(insts, OpClass::IntAlu), 5);
    for (int i = 2; i <= 4; ++i)
        EXPECT_EQ(insts[std::size_t(i)].rs1,
                  insts[std::size_t(i - 1)].rd);
}

TEST(Runtime, ProbeDeniedFallsThrough)
{
    Exec exec;
    bool childRan = false;
    KernelProgram prog(
        exec,
        [&childRan](Worker &w) -> Task {
            bool granted = co_await w.probe(
                [&childRan](Worker &cw) -> Task {
                    childRan = true;
                    co_await cw.alu();
                });
            EXPECT_FALSE(granted);
            co_await w.alu();
        },
        true);
    std::vector<std::unique_ptr<front::Program>> kids;
    auto insts = drain(prog, false, &kids);
    EXPECT_TRUE(kids.empty());
    EXPECT_FALSE(childRan);
    EXPECT_EQ(countClass(insts, OpClass::Nthr), 1);
}

TEST(Runtime, ProbeGrantedSpawnsChildWithPrologues)
{
    Exec exec;
    KernelProgram prog(
        exec,
        [](Worker &w) -> Task {
            bool granted = co_await w.probe(
                [](Worker &cw) -> Task { co_await cw.compute(3); });
            EXPECT_TRUE(granted);
            co_await w.alu();
        },
        true);
    std::vector<std::unique_ptr<front::Program>> kids;
    auto parentInsts = drain(prog, true, &kids);
    ASSERT_EQ(kids.size(), 1u);

    // Parent pays its prologue after the grant.
    int parentOps = countClass(parentInsts, OpClass::IntAlu) +
                    countClass(parentInsts, OpClass::Load) +
                    countClass(parentInsts, OpClass::Store);
    EXPECT_GE(parentOps, exec.parentPrologueOps());

    // Child emits its stack prologue before its body, then kthr.
    auto *child = dynamic_cast<KernelProgram *>(kids[0].get());
    ASSERT_NE(child, nullptr);
    auto childInsts = drain(*child, false);
    int childWork = int(childInsts.size());
    EXPECT_GE(childWork, exec.childPrologueOps() + 3);
    EXPECT_EQ(childInsts.back().cls, OpClass::Kthr);
}

TEST(Runtime, DivisionOverheadMatchesPaper)
{
    // The combined parent+child prologue approximates the measured
    // ~15 cycles per division of Section 3.2.
    Exec exec;
    EXPECT_EQ(exec.parentPrologueOps() + exec.childPrologueOps(), 15);
}

TEST(Runtime, NestedTasksCompose)
{
    Exec exec;
    KernelProgram prog(
        exec,
        [](Worker &w) -> Task {
            auto inner = [](Worker &iw, int n) -> Task {
                for (int i = 0; i < n; ++i)
                    co_await iw.alu();
            };
            co_await inner(w, 2);
            co_await w.store(0x100);
            co_await inner(w, 3);
        },
        true);
    auto insts = drain(prog, false);
    EXPECT_EQ(countClass(insts, OpClass::IntAlu), 5);
    EXPECT_EQ(countClass(insts, OpClass::Store), 1);
}

TEST(Runtime, StackPoolRecyclesAddresses)
{
    Exec exec;
    Addr a = exec.stacks().take();
    exec.stacks().give(a);
    Addr b = exec.stacks().take();
    EXPECT_EQ(a, b);
    EXPECT_EQ(exec.stacks().allocated(), 1u);
    Addr c = exec.stacks().take();
    EXPECT_NE(b, c);
    EXPECT_EQ(exec.stacks().allocated(), 2u);
}

TEST(Runtime, LockUnlockEmission)
{
    Exec exec;
    KernelProgram prog(
        exec,
        [](Worker &w) -> Task {
            co_await w.lock(0x300);
            co_await w.load(0x300);
            co_await w.unlock(0x300);
        },
        true);
    auto insts = drain(prog, false);
    EXPECT_EQ(insts[0].cls, OpClass::Mlock);
    EXPECT_EQ(insts[0].effAddr, 0x300u);
    EXPECT_EQ(insts[2].cls, OpClass::Munlock);
}

TEST(Runtime, FpOpsUseFpRegisters)
{
    Exec exec;
    KernelProgram prog(
        exec,
        [](Worker &w) -> Task {
            Val a = co_await w.loadf(0x100);
            Val b = co_await w.fmul(a, a);
            Val c = co_await w.fadd(a, b);
            co_await w.storef(0x108, c);
        },
        true);
    auto insts = drain(prog, false);
    EXPECT_TRUE(insts[0].fpRegs);
    EXPECT_EQ(insts[1].cls, OpClass::FpMult);
    EXPECT_EQ(insts[2].cls, OpClass::FpAlu);
    EXPECT_TRUE(insts[3].fpRegs);
}

} // namespace
} // namespace capsule::rt
