/**
 * @file
 * Workload correctness: every componentised algorithm must produce
 * exactly the golden result under every division policy (superscalar
 * deny-all, static-K, SOMT greedy), across seeds — parameterised
 * property tests.
 */

#include <gtest/gtest.h>

#include "workloads/bzip_sort.hh"
#include "workloads/crafty_search.hh"
#include "workloads/dijkstra.hh"
#include "workloads/graph.hh"
#include "workloads/lzw.hh"
#include "workloads/mcf_route.hh"
#include "workloads/perceptron.hh"
#include "workloads/quicksort.hh"
#include "workloads/vpr_route.hh"

namespace capsule::wl
{
namespace
{

/** gtest parameter names must be alphanumeric. */
std::string
sanitize(std::string s)
{
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

sim::MachineConfig
configByName(const std::string &name)
{
    if (name == "superscalar")
        return sim::MachineConfig::superscalar();
    if (name == "smt-static")
        return sim::MachineConfig::smtStatic();
    return sim::MachineConfig::somt();
}

// ---------------------------------------------------------------
// graph substrate
// ---------------------------------------------------------------
TEST(GraphGen, ReachableAndSized)
{
    Rng rng(3);
    Graph g = Graph::random(200, 3.0, 50, rng);
    EXPECT_EQ(g.nodes(), 200);
    EXPECT_GE(g.edges(), 199u);
    auto dist = shortestPaths(g, 0);
    int reached = 0;
    for (auto d : dist)
        reached += d != unreachable;
    EXPECT_EQ(reached, 200);  // spanning construction guarantees it
}

TEST(GraphGen, DeterministicForSeed)
{
    Rng a(11), b(11);
    Graph ga = Graph::random(100, 2.5, 20, a);
    Graph gb = Graph::random(100, 2.5, 20, b);
    EXPECT_EQ(ga.edges(), gb.edges());
    EXPECT_EQ(shortestPaths(ga, 0), shortestPaths(gb, 0));
}

// ---------------------------------------------------------------
// Dijkstra
// ---------------------------------------------------------------
class DijkstraOnConfig
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(DijkstraOnConfig, MatchesGolden)
{
    auto [name, seed] = GetParam();
    DijkstraParams p;
    p.nodes = 120;
    p.seed = std::uint64_t(seed);
    auto res = runDijkstra(configByName(name), p);
    EXPECT_TRUE(res.correct) << name << " seed " << seed;
    EXPECT_GT(res.stats.instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, DijkstraOnConfig,
    ::testing::Combine(::testing::Values("superscalar", "smt-static",
                                         "somt"),
                       ::testing::Values(1, 2, 3)),
    [](const auto &info) {
        return sanitize(std::get<0>(info.param)) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Dijkstra, SomtActuallyDivides)
{
    DijkstraParams p;
    p.nodes = 150;
    auto res = runDijkstra(sim::MachineConfig::somt(), p);
    EXPECT_GT(res.stats.divisionsGranted, 0u);
    EXPECT_GT(res.stats.threadDeaths, 0u);
}

TEST(Dijkstra, StaticGrantsAtMostSeven)
{
    DijkstraParams p;
    p.nodes = 150;
    auto res = runDijkstra(sim::MachineConfig::smtStatic(8), p);
    EXPECT_LE(res.stats.divisionsGranted, 7u);
}

// ---------------------------------------------------------------
// QuickSort
// ---------------------------------------------------------------
class QuickSortDistributions
    : public ::testing::TestWithParam<ListDistribution>
{
};

TEST_P(QuickSortDistributions, SortsCorrectlyOnSomt)
{
    QuickSortParams p;
    p.length = 600;
    p.distribution = GetParam();
    auto res = runQuickSort(sim::MachineConfig::somt(), p);
    EXPECT_TRUE(res.correct)
        << listDistributionName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, QuickSortDistributions,
    ::testing::Values(ListDistribution::Uniform,
                      ListDistribution::Gaussian,
                      ListDistribution::Exponential,
                      ListDistribution::NearlySorted,
                      ListDistribution::FewValues),
    [](const auto &info) {
        return sanitize(listDistributionName(info.param));
    });

TEST(QuickSort, CorrectUnderAllPolicies)
{
    for (const char *name : {"superscalar", "smt-static", "somt"}) {
        QuickSortParams p;
        p.length = 500;
        p.seed = 7;
        auto res = runQuickSort(configByName(name), p);
        EXPECT_TRUE(res.correct) << name;
    }
}

TEST(QuickSort, DivisionObserverSeesGenealogy)
{
    QuickSortParams p;
    p.length = 1000;
    int divisions = 0;
    auto res = runQuickSort(sim::MachineConfig::somt(), p,
                            [&divisions](ThreadId parent,
                                         ThreadId child) {
                                EXPECT_LT(parent, child);
                                ++divisions;
                            });
    EXPECT_TRUE(res.correct);
    EXPECT_EQ(std::uint64_t(divisions),
              res.stats.divisionsGranted);
    EXPECT_GT(divisions, 0);
}

// ---------------------------------------------------------------
// LZW
// ---------------------------------------------------------------
TEST(Lzw, ReferenceRoundTrip)
{
    Rng rng(5);
    auto text = makeText(2000, 16, rng);
    auto codes = lzwCompress(text, 16);
    EXPECT_LT(codes.size(), text.size());  // actually compresses
    EXPECT_EQ(lzwDecompress(codes, 16), text);
}

TEST(Lzw, EmptyAndTinyInputs)
{
    std::vector<std::uint8_t> empty;
    EXPECT_TRUE(lzwCompress(empty, 16).empty());
    std::vector<std::uint8_t> one{3};
    auto codes = lzwCompress(one, 16);
    EXPECT_EQ(lzwDecompress(codes, 16), one);
}

class LzwOnConfig : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LzwOnConfig, RoundTripsUnderPolicy)
{
    LzwParams p;
    p.length = 1024;
    p.minSplit = 64;
    auto res = runLzw(configByName(GetParam()), p);
    EXPECT_TRUE(res.correct) << GetParam();
    EXPECT_GT(res.metric("chunks"), 0);
}

INSTANTIATE_TEST_SUITE_P(Policies, LzwOnConfig,
                         ::testing::Values("superscalar", "smt-static",
                                           "somt"),
                         [](const auto &info) {
                             return sanitize(info.param);
                         });

// ---------------------------------------------------------------
// Perceptron
// ---------------------------------------------------------------
TEST(Perceptron, MatchesGoldenOnSomt)
{
    PerceptronParams p;
    p.neurons = 400;
    p.inputs = 4;
    p.minGroup = 16;
    auto res = runPerceptron(sim::MachineConfig::somt(), p);
    EXPECT_TRUE(res.correct);
    EXPECT_GT(res.stats.divisionsRequested, 0u);
}

TEST(Perceptron, MatchesGoldenOnSuperscalar)
{
    PerceptronParams p;
    p.neurons = 300;
    p.inputs = 4;
    auto res = runPerceptron(sim::MachineConfig::superscalar(), p);
    EXPECT_TRUE(res.correct);
}

// ---------------------------------------------------------------
// SPEC analogues
// ---------------------------------------------------------------
TEST(Mcf, TreeSearchMatchesGolden)
{
    McfParams p;
    p.nodes = 2000;
    for (const char *name : {"superscalar", "somt"}) {
        auto res = runMcf(configByName(name), p);
        EXPECT_TRUE(res.correct) << name;
    }
}

TEST(Mcf, ProbesAtEveryInternalNode)
{
    McfParams p;
    p.nodes = 3000;
    auto res = runMcf(sim::MachineConfig::somt(), p);
    // Requests scale with the tree, not with the grant count.
    EXPECT_GT(res.stats.divisionsRequested, 500u);
    EXPECT_GT(res.stats.divisionsGranted, 0u);
}

TEST(Vpr, ConvergesUnderBothPolicies)
{
    VprParams p;  // defaults: 32x32 grid, 16 nets, capacity 2
    auto seq = runVpr(sim::MachineConfig::superscalar(), p);
    auto par = runVpr(sim::MachineConfig::somt(), p);
    EXPECT_TRUE(seq.correct);  // converged
    EXPECT_TRUE(par.correct);
    EXPECT_GE(par.metric("iterations"), 1);
    EXPECT_GE(seq.metric("iterations"), 1);
}

TEST(Vpr, ParallelNeedsAtLeastAsManyIterations)
{
    // The paper's 9-versus-8 observation: concurrent workers see
    // congestion in a different order and may converge later.
    VprParams p;
    auto seq = runVpr(sim::MachineConfig::superscalar(), p);
    auto par = runVpr(sim::MachineConfig::somt(), p);
    ASSERT_TRUE(seq.correct);  // converged
    ASSERT_TRUE(par.correct);
    EXPECT_GE(par.metric("iterations"), seq.metric("iterations"));
}

TEST(Bzip, SuffixOrderMatchesGolden)
{
    BzipParams p;
    p.blockBytes = 300;
    for (const char *name : {"superscalar", "somt"}) {
        auto res = runBzip(configByName(name), p);
        EXPECT_TRUE(res.correct) << name;
    }
}

TEST(Crafty, MinimaxMatchesGolden)
{
    CraftyParams p;
    p.branching = 3;
    p.depth = 4;
    p.poolThreads = 3;
    auto res = runCrafty(sim::MachineConfig::somt(4), p);
    EXPECT_TRUE(res.correct);
}

TEST(Crafty, PoolSpinsWhileWaiting)
{
    CraftyParams p;
    p.branching = 3;
    p.depth = 5;
    p.poolThreads = 7;
    auto res = runCrafty(sim::MachineConfig::somt(8), p);
    EXPECT_TRUE(res.correct);
    EXPECT_GT(res.metric("spin_iterations"), 0);
}

// ---------------------------------------------------------------
// determinism across the board
// ---------------------------------------------------------------
TEST(Determinism, SameSeedSameCycles)
{
    DijkstraParams p;
    p.nodes = 100;
    p.seed = 99;
    auto a = runDijkstra(sim::MachineConfig::somt(), p);
    auto b = runDijkstra(sim::MachineConfig::somt(), p);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.instructions, b.stats.instructions);
    EXPECT_EQ(a.stats.divisionsGranted, b.stats.divisionsGranted);
}

} // namespace
} // namespace capsule::wl
