/**
 * @file
 * The simulation farm (harness/farm.hh): the stable digest contracts
 * behind its cache keys (pinned constants), memoization and the
 * corruption/eviction path, multi-process sharding determinism
 * (workers 1 vs N byte-identical), error propagation, and the
 * checkpoint/resume contract including a real mid-flight coordinator
 * kill (fork + exit-status-3 + --resume equivalent).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <stdexcept>

#include "base/digest.hh"
#include "casm/assembler.hh"
#include "harness/experiment.hh"
#include "harness/farm.hh"
#include "sim/config.hh"
#include "sim/exec_semantics.hh"
#include "workloads/workload.hh"

#ifdef __unix__
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace capsule
{
namespace
{

namespace fs = std::filesystem;

// ---------------------------------------------------------------
// stable digests (the cache-key foundations)
// ---------------------------------------------------------------

TEST(StableDigest, MachineConfigPinned)
{
    // The golden digests of the three standard machine shapes. A
    // mismatch means MachineConfig::digest() changed meaning — a new
    // field was added to the serialization, or a preset changed — and
    // every on-disk cache entry is (correctly) invalidated. Re-derive
    // the constants from the failure message when that is deliberate.
    EXPECT_EQ(sim::MachineConfig::somt().digest(),
              0x7e85032af392910fULL)
        << std::hex << sim::MachineConfig::somt().digest();
    EXPECT_EQ(sim::MachineConfig::superscalar().digest(),
              0x4cfbade72ca6aa29ULL)
        << std::hex << sim::MachineConfig::superscalar().digest();
    EXPECT_EQ(sim::MachineConfig::cmpSomt(2, 4).digest(),
              0x7073706bbd64ed60ULL)
        << std::hex << sim::MachineConfig::cmpSomt(2, 4).digest();
}

TEST(StableDigest, WireFrameBytesArePinned)
{
    // The coordinator<->worker pipe protocol is an explicit
    // little-endian byte contract (harness::wire), not an accident of
    // host endianness: these are the exact bytes on the pipe.
    unsigned char u[harness::wire::u64Size];
    harness::wire::putU64(u, 0x0123456789abcdefULL);
    const unsigned char expectU[8] = {0xef, 0xcd, 0xab, 0x89,
                                      0x67, 0x45, 0x23, 0x01};
    EXPECT_EQ(std::memcmp(u, expectU, sizeof expectU), 0);
    EXPECT_EQ(harness::wire::getU64(u), 0x0123456789abcdefULL);

    harness::wire::FrameHeader h;
    h.index = 7;
    h.status = 1;
    h.cpuSeconds = 1.5; // IEEE-754 bits 0x3ff8000000000000
    h.payloadLen = 0x1122;
    unsigned char frame[harness::wire::FrameHeader::wireSize];
    h.encode(frame);
    const unsigned char expect[32] = {
        7,    0,    0, 0, 0, 0, 0,    0,    // index
        1,    0,    0, 0, 0, 0, 0,    0,    // status
        0,    0,    0, 0, 0, 0, 0xf8, 0x3f, // cpu-seconds bits
        0x22, 0x11, 0, 0, 0, 0, 0,    0,    // payload length
    };
    EXPECT_EQ(std::memcmp(frame, expect, sizeof expect), 0);

    auto d = harness::wire::FrameHeader::decode(frame);
    EXPECT_EQ(d.index, 7u);
    EXPECT_EQ(d.status, 1u);
    EXPECT_EQ(d.cpuSeconds, 1.5);
    EXPECT_EQ(d.payloadLen, 0x1122u);

    // The shutdown sentinel (~0) is all-ones on the wire.
    harness::wire::putU64(u, ~std::uint64_t(0));
    for (unsigned char c : u)
        EXPECT_EQ(c, 0xff);

    // Requests carry the point index and the injected FaultKind as
    // two LE u64s (fault 0 = None on the fault-free fast path).
    harness::wire::PointRequest rq;
    rq.index = 0x0304;
    rq.fault = std::uint64_t(harness::FaultKind::CorruptFrame);
    unsigned char reqBytes[harness::wire::PointRequest::wireSize];
    rq.encode(reqBytes);
    const unsigned char expectReq[16] = {
        0x04, 0x03, 0, 0, 0, 0, 0, 0, // index
        3,    0,    0, 0, 0, 0, 0, 0, // FaultKind::CorruptFrame
    };
    EXPECT_EQ(std::memcmp(reqBytes, expectReq, sizeof expectReq), 0);
    auto rqd = harness::wire::PointRequest::decode(reqBytes);
    EXPECT_EQ(rqd.index, 0x0304u);
    EXPECT_EQ(rqd.fault,
              std::uint64_t(harness::FaultKind::CorruptFrame));
}

TEST(StableDigest, MachineConfigSeparatesBehavioralAxes)
{
    auto base = sim::MachineConfig::somt();
    auto d0 = base.digest();

    auto c = base;
    c.name = "renamed"; // identity, not behavior
    EXPECT_EQ(c.digest(), d0);

    c = base;
    c.ruuSize += 1;
    EXPECT_NE(c.digest(), d0);
    c = base;
    c.division.deathWindow += 1;
    EXPECT_NE(c.digest(), d0);
    c = base;
    c.mem.l1d.sizeBytes *= 2;
    EXPECT_NE(c.digest(), d0);
    c = base;
    c.backend = "func";
    EXPECT_NE(c.digest(), d0);
    c = base;
    c.maxCycles += 1;
    EXPECT_NE(c.digest(), d0);
}

TEST(StableDigest, ImageContentNotLabels)
{
    casm::Image img;
    img.base = 0x1000;
    img.words = {0x11223344, 0xdeadbeef, 0x00000000, 0x42424242};
    img.symbols["entry"] = 0x1000;

    // Pinned: the image digest is part of the fuzz cache keys.
    EXPECT_EQ(img.digest(), 0xa7f996b948d406d8ULL)
        << std::hex << img.digest();

    auto relabeled = img;
    relabeled.symbols.clear();
    relabeled.symbols["somewhere_else"] = 0x1004;
    EXPECT_EQ(relabeled.digest(), img.digest())
        << "labels are not content";

    auto moved = img;
    moved.base = 0x2000;
    EXPECT_NE(moved.digest(), img.digest());
    auto edited = img;
    edited.words[1] ^= 1;
    EXPECT_NE(edited.digest(), img.digest());
    auto extended = img;
    extended.words.push_back(0);
    EXPECT_NE(extended.digest(), img.digest());
}

TEST(StableDigest, CanonicalSerializationPrimitives)
{
    // Digest building blocks behave canonically: length-prefixed
    // strings cannot alias across field boundaries, and integers are
    // fed as explicit little-endian bytes.
    EXPECT_NE(Digest().str("ab").str("c").value(),
              Digest().str("a").str("bc").value());
    EXPECT_EQ(Digest().u64(0x0102030405060708ULL).value(),
              Digest()
                  .bytes("\x08\x07\x06\x05\x04\x03\x02\x01", 8)
                  .value());
    EXPECT_EQ(fnv1aBytes(""), 0xcbf29ce484222325ULL);
}

// ---------------------------------------------------------------
// farm campaigns (synthetic points: fast, fully deterministic)
// ---------------------------------------------------------------

wl::WorkloadResult
syntheticResult(int i)
{
    wl::WorkloadResult r;
    r.workload = "synthetic";
    r.correct = true;
    r.stats.cycles = Cycle(1000 + i);
    r.stats.instructions = std::uint64_t(500 + i);
    r.stats.ipc = double(500 + i) / double(1000 + i);
    r.setMetric("index", double(i));
    return r;
}

std::vector<harness::FarmPoint>
syntheticPoints(int n)
{
    std::vector<harness::FarmPoint> points;
    for (int i = 0; i < n; ++i) {
        harness::FarmPoint p;
        p.label = "syn" + std::to_string(i);
        p.cacheable = true;
        p.key.programDigest = std::uint64_t(i + 1);
        p.key.configDigest = 0xabcULL;
        p.key.scale = "quick";
        p.key.seed = std::uint64_t(i);
        p.key.semanticsHash = 0x5eedULL;
        p.run = [i] { return syntheticResult(i); };
        points.push_back(std::move(p));
    }
    return points;
}

std::string
tempDir(const char *tag)
{
    static int counter = 0;
    auto d = fs::temp_directory_path() /
             (std::string("capsule-farm-test-") + tag + "-" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "-" + std::to_string(counter++));
    fs::remove_all(d);
    return d.string();
}

void
expectSameResults(const std::vector<wl::WorkloadResult> &a,
                  const std::vector<wl::WorkloadResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].stats, b[i].stats) << i;
        EXPECT_EQ(a[i], b[i]) << i;
    }
}

TEST(Farm, InlineRunMatchesDirectEvaluation)
{
    harness::FarmRunner farm({});
    auto results = farm.run(syntheticPoints(10));
    ASSERT_EQ(results.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(results[std::size_t(i)], syntheticResult(i)) << i;
    EXPECT_EQ(farm.stats().points, 10u);
    EXPECT_EQ(farm.stats().computed, 10u);
    EXPECT_EQ(farm.stats().cacheHits, 0u);
    EXPECT_EQ(farm.stats().workersUsed, 0);
}

TEST(Farm, MultiProcessIdenticalToInlineAtAnyWorkerCount)
{
    auto reference = harness::FarmRunner({}).run(syntheticPoints(25));
    for (int workers : {2, 3, 8}) {
        harness::FarmOptions o;
        o.workers = workers;
        harness::FarmRunner farm(o);
        auto results = farm.run(syntheticPoints(25));
        expectSameResults(results, reference);
        EXPECT_GT(farm.stats().workersUsed, 1) << workers;
        // Every point was completed by exactly one worker.
        std::uint64_t total = 0;
        for (auto c : farm.stats().perWorkerPoints)
            total += c;
        EXPECT_EQ(total, 25u) << workers;
    }
}

TEST(Farm, WorkerCountExceedingPointsIsClamped)
{
    harness::FarmOptions o;
    o.workers = 16;
    harness::FarmRunner farm(o);
    auto results = farm.run(syntheticPoints(3));
    ASSERT_EQ(results.size(), 3u);
    EXPECT_LE(farm.stats().workersUsed, 3);
}

TEST(Farm, EmptyCampaign)
{
    harness::FarmOptions o;
    o.workers = 4;
    harness::FarmRunner farm(o);
    EXPECT_TRUE(farm.run({}).empty());
    EXPECT_EQ(farm.stats().points, 0u);
}

TEST(Farm, WarmCacheReplaysWithoutComputing)
{
    const auto dir = tempDir("warm");
    harness::FarmOptions o;
    o.cacheDir = dir;

    harness::FarmRunner cold(o);
    auto first = cold.run(syntheticPoints(12));
    EXPECT_EQ(cold.stats().computed, 12u);
    EXPECT_EQ(cold.stats().cacheMisses, 12u);
    EXPECT_EQ(cold.stats().cacheStores, 12u);

    harness::FarmRunner warm(o);
    auto second = warm.run(syntheticPoints(12));
    EXPECT_EQ(warm.stats().computed, 0u) << "warm run must not simulate";
    EXPECT_EQ(warm.stats().cacheHits, 12u);
    expectSameResults(second, first);

    // Multi-process warm run: hits are resolved in the coordinator,
    // identical again.
    harness::FarmOptions om = o;
    om.workers = 4;
    harness::FarmRunner warmMp(om);
    expectSameResults(warmMp.run(syntheticPoints(12)), first);
    EXPECT_EQ(warmMp.stats().computed, 0u);
    fs::remove_all(dir);
}

TEST(Farm, NonCacheablePointsAlwaysRecompute)
{
    const auto dir = tempDir("nocache");
    auto points = syntheticPoints(4);
    points[1].cacheable = false;
    harness::FarmOptions o;
    o.cacheDir = dir;
    harness::FarmRunner cold(o);
    cold.run(points);
    EXPECT_EQ(cold.stats().cacheStores, 3u);

    harness::FarmRunner warm(o);
    warm.run(points);
    EXPECT_EQ(warm.stats().cacheHits, 3u);
    EXPECT_EQ(warm.stats().computed, 1u);
    fs::remove_all(dir);
}

TEST(Farm, CorruptCacheEntryIsRecomputedNotTrusted)
{
    const auto dir = tempDir("corrupt");
    harness::FarmOptions o;
    o.cacheDir = dir;
    harness::FarmRunner cold(o);
    auto first = cold.run(syntheticPoints(6));

    // Damage one entry on disk.
    harness::ResultCache cache(dir);
    auto points = syntheticPoints(6);
    const std::string victim = cache.entryPath(points[2].key);
    {
        std::ofstream f(victim, std::ios::binary | std::ios::trunc);
        f << "capsule-result-cache-v1\nnot really\n";
    }

    harness::FarmRunner warm(o);
    auto second = warm.run(syntheticPoints(6));
    expectSameResults(second, first);
    EXPECT_EQ(warm.stats().cacheHits, 5u);
    EXPECT_EQ(warm.stats().computed, 1u);
    EXPECT_EQ(warm.stats().corruptEvictions, 1u);
    // The recompute repaired the entry.
    harness::FarmRunner again(o);
    again.run(syntheticPoints(6));
    EXPECT_EQ(again.stats().cacheHits, 6u);
    fs::remove_all(dir);
}

TEST(Farm, ErrorNamesLowestFailingPointAfterAllComplete)
{
    auto points = syntheticPoints(8);
    points[6].run = []() -> wl::WorkloadResult {
        throw std::runtime_error("late kaboom");
    };
    points[3].run = []() -> wl::WorkloadResult {
        throw std::runtime_error("kaboom");
    };
    points[3].cacheable = points[6].cacheable = false;

    for (int workers : {1, 4}) {
        harness::FarmOptions o;
        o.workers = workers;
        harness::FarmRunner farm(o);
        try {
            farm.run(points);
            FAIL() << "expected a runtime_error (workers="
                   << workers << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("syn3"),
                      std::string::npos)
                << e.what();
            EXPECT_NE(std::string(e.what()).find("kaboom"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(Farm, CampaignDigestTracksPointSet)
{
    auto a = harness::FarmRunner::campaignDigest(syntheticPoints(5));
    EXPECT_EQ(a,
              harness::FarmRunner::campaignDigest(syntheticPoints(5)));
    EXPECT_NE(a,
              harness::FarmRunner::campaignDigest(syntheticPoints(6)));
    auto edited = syntheticPoints(5);
    edited[0].key.seed ^= 7;
    EXPECT_NE(a, harness::FarmRunner::campaignDigest(edited));
}

TEST(Farm, RegistryFarmPointKeyContract)
{
    auto cfg = sim::MachineConfig::somt();
    wl::WorkloadRequest req{wl::ScaleLevel::Quick, 11};
    auto p = harness::registryFarmPoint("dijkstra", cfg, req);
    EXPECT_TRUE(p.cacheable);
    EXPECT_EQ(p.label, "dijkstra/somt/seed11");
    EXPECT_EQ(p.key.configDigest, cfg.digest());
    EXPECT_EQ(p.key.scale, "quick");
    EXPECT_EQ(p.key.seed, 11u);
    EXPECT_EQ(p.key.semanticsHash, sim::semanticsTableHash());
    auto other = harness::registryFarmPoint("quicksort", cfg, req);
    EXPECT_NE(p.key.digest(), other.key.digest())
        << "workload name must be part of the address";
}

// ---------------------------------------------------------------
// a real (registry) campaign: farm == ExperimentRunner
// ---------------------------------------------------------------

TEST(Farm, RegistryCampaignMatchesExperimentRunner)
{
    std::vector<harness::SweepPoint> sweep;
    std::vector<harness::FarmPoint> points;
    for (const auto &cfg :
         {sim::MachineConfig::superscalar(), sim::MachineConfig::somt()}) {
        wl::WorkloadRequest req{wl::ScaleLevel::Quick, 7};
        sweep.push_back(harness::registryPoint("dijkstra", cfg, req));
        points.push_back(
            harness::registryFarmPoint("dijkstra", cfg, req));
    }
    auto expected = harness::ExperimentRunner(1).run(sweep);

    const auto dir = tempDir("registry");
    harness::FarmOptions o;
    o.workers = 2;
    o.cacheDir = dir;
    auto results = harness::FarmRunner(o).run(points);
    expectSameResults(results, expected);

    // And the memoized replay is the same again.
    harness::FarmRunner warm(o);
    expectSameResults(warm.run(points), expected);
    EXPECT_EQ(warm.stats().computed, 0u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// fault plans (harness/fault_inject.hh)
// ---------------------------------------------------------------

TEST(FaultPlan, ParseSpecRoundTrip)
{
    const std::string spec = "crash@0,tear-journal@3,die@7";
    auto plan = harness::FaultPlan::parse(spec);
    EXPECT_EQ(plan.spec(), spec);
    ASSERT_EQ(plan.ops().size(), 3u);
    EXPECT_EQ(plan.ops()[0].kind, harness::FaultKind::CrashWorker);
    EXPECT_EQ(plan.ops()[0].index, 0u);
    EXPECT_EQ(plan.ops()[2].kind, harness::FaultKind::DieCoordinator);
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(harness::FaultPlan::parse("").empty());
    // An unexpanded rand: keeps its compact spec.
    EXPECT_EQ(harness::FaultPlan::parse("rand:42:3").spec(),
              "rand:42:3");
}

TEST(FaultPlan, ParseRejectsMalformedTokens)
{
    for (const char *bad :
         {"bogus@1", "crash", "crash@", "crash@x", "@3", "rand:1",
          "rand:x:2", "rand:1:0", "rand:1:2,rand:2:3", "crash@1,,"}) {
        EXPECT_THROW(harness::FaultPlan::parse(bad),
                     std::invalid_argument)
            << bad;
    }
}

TEST(FaultPlan, RandomExpansionIsSeededDistinctAndWorkerOnly)
{
    auto a = harness::FaultPlan::parse("rand:42:5");
    auto b = harness::FaultPlan::parse("rand:42:5");
    a.materialize(100);
    b.materialize(100);
    ASSERT_EQ(a.ops().size(), 5u);
    ASSERT_EQ(b.ops().size(), 5u);
    std::set<std::uint64_t> indices;
    for (std::size_t i = 0; i < a.ops().size(); ++i) {
        EXPECT_EQ(a.ops()[i].kind, b.ops()[i].kind) << i;
        EXPECT_EQ(a.ops()[i].index, b.ops()[i].index) << i;
        EXPECT_TRUE(harness::isWorkerFault(a.ops()[i].kind)) << i;
        EXPECT_NE(a.ops()[i].kind, harness::FaultKind::HangWorker)
            << "hang needs an explicit deadline decision";
        EXPECT_LT(a.ops()[i].index, 100u) << i;
        indices.insert(a.ops()[i].index);
    }
    EXPECT_EQ(indices.size(), 5u) << "faulted points are distinct";

    // A different seed draws a different schedule.
    auto c = harness::FaultPlan::parse("rand:43:5");
    c.materialize(100);
    bool differs = false;
    for (std::size_t i = 0; i < 5; ++i)
        differs = differs || c.ops()[i].index != a.ops()[i].index ||
                  c.ops()[i].kind != a.ops()[i].kind;
    EXPECT_TRUE(differs);

    // The count is clamped to the campaign size; materialize() is
    // idempotent.
    auto d = harness::FaultPlan::parse("rand:7:50");
    d.materialize(4);
    EXPECT_EQ(d.ops().size(), 4u);
    d.materialize(4);
    EXPECT_EQ(d.ops().size(), 4u);
}

TEST(FaultPlan, WorkerFaultsAreOneShot)
{
    auto plan = harness::FaultPlan::parse("corrupt@2");
    EXPECT_EQ(plan.takeWorkerFault(1), harness::FaultKind::None);
    EXPECT_EQ(plan.takeWorkerFault(2),
              harness::FaultKind::CorruptFrame);
    EXPECT_EQ(plan.takeWorkerFault(2), harness::FaultKind::None)
        << "the retry of a faulted point must be dealt clean";
}

TEST(FaultPlan, CoordFaultsFireAtMergeCountWithDieLast)
{
    auto plan = harness::FaultPlan::parse("die@2,tear-journal@2");
    EXPECT_TRUE(plan.takeCoordFaults(1).empty());
    auto due = plan.takeCoordFaults(2);
    ASSERT_EQ(due.size(), 2u);
    EXPECT_EQ(due[0], harness::FaultKind::TearJournalWrite)
        << "same-trigger tears land before the kill";
    EXPECT_EQ(due[1], harness::FaultKind::DieCoordinator);
    EXPECT_TRUE(plan.takeCoordFaults(2).empty()) << "one-shot";

    // A lower index than the current merge count still fires (the
    // first merge that reaches it), exactly once.
    auto late = harness::FaultPlan::parse("tear-cache@1");
    auto hit = late.takeCoordFaults(5);
    ASSERT_EQ(hit.size(), 1u);
    EXPECT_EQ(hit[0], harness::FaultKind::TearCacheWrite);
}

// ---------------------------------------------------------------
// poll wake computation (the merge loop's only blocking primitive)
// ---------------------------------------------------------------

TEST(Farm, PollTimeoutComputation)
{
    const double now = 1000.0;
    // No armed deadline at all: block until a worker speaks.
    EXPECT_EQ(harness::computePollTimeoutMs(
                  std::numeric_limits<double>::infinity(), now),
              -1);
    // A near deadline rounds *up* — never a busy-wait from rounding
    // a sub-millisecond remainder down to 0.
    EXPECT_EQ(harness::computePollTimeoutMs(now + 0.0004, now), 1);
    EXPECT_EQ(harness::computePollTimeoutMs(now + 0.25, now), 250);
    // An expired (or just-due) deadline must not block.
    EXPECT_EQ(harness::computePollTimeoutMs(now, now), 0);
    EXPECT_EQ(harness::computePollTimeoutMs(now - 5.0, now), 0);
    // A deadline beyond the clamp wakes *early* at the cap and
    // re-arms: the sweep compares against the real deadline, so the
    // clamped wake can never fire a spurious timeout. Pin that the
    // clamp is a floor on the remaining time, not a deadline.
    EXPECT_EQ(harness::computePollTimeoutMs(now + 120.0, now),
              harness::pollClampMs);
    EXPECT_EQ(harness::computePollTimeoutMs(now + 120.0, now + 60.0),
              harness::pollClampMs);
    EXPECT_EQ(harness::computePollTimeoutMs(now + 120.0, now + 119.9),
              100);
    EXPECT_EQ(harness::computePollTimeoutMs(now + 120.0, now + 120.5),
              0);
}

TEST(Farm, StatsFoldSumsCounters)
{
    harness::FarmStats a;
    a.points = 3;
    a.computed = 2;
    a.cacheHits = 1;
    a.timeouts = 1;
    a.journalWriteErrors = 2;
    a.workersUsed = 2;
    a.wallSeconds = 1.5;
    harness::FarmStats b;
    b.points = 4;
    b.computed = 4;
    b.framesRejected = 3;
    b.journalWriteErrors = 1;
    b.workersUsed = 4;
    b.wallSeconds = 0.5;
    a.fold(b);
    EXPECT_EQ(a.points, 7u);
    EXPECT_EQ(a.computed, 6u);
    EXPECT_EQ(a.cacheHits, 1u);
    EXPECT_EQ(a.timeouts, 1u);
    EXPECT_EQ(a.framesRejected, 3u);
    EXPECT_EQ(a.journalWriteErrors, 3u);
    EXPECT_EQ(a.workersUsed, 6u);
    EXPECT_DOUBLE_EQ(a.wallSeconds, 2.0);
}

// ---------------------------------------------------------------
// checkpoint / resume
// ---------------------------------------------------------------

#ifdef __unix__

TEST(FarmResume, KilledCoordinatorResumesByteIdentical)
{
    const auto dir = tempDir("resume");
    auto reference = harness::FarmRunner({}).run(syntheticPoints(20));

    // Phase 1: a coordinator that dies (SIGKILLs its workers and
    // _exits) after 7 merged results — run it in a fork so the death
    // is real, exactly like a user hitting ^C / a node reclaim.
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        harness::FarmOptions o;
        o.cacheDir = dir;
        o.workers = 2;
        o.faultPlan = harness::FaultPlan::parse("die@7");
        harness::FarmRunner farm(o);
        farm.run(syntheticPoints(20)); // _exit(3)s mid-flight
        _exit(99); // NOT REACHED: dying is the expected path
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), harness::FarmOptions::dieExitStatus)
        << "the die-after hook must exit through its own status";

    // The journal records exactly the merged points.
    auto campaign =
        harness::FarmRunner::campaignDigest(syntheticPoints(20));
    auto journalPath =
        fs::path(dir) / ("campaign-" + toHex16(campaign) + ".journal");
    ASSERT_TRUE(fs::exists(journalPath));

    // Phase 2: resume. Journaled points replay from the cache; the
    // rest are simulated; the merged vector is byte-identical.
    harness::FarmOptions o;
    o.cacheDir = dir;
    o.workers = 2;
    o.resume = true;
    harness::FarmRunner farm(o);
    auto results = farm.run(syntheticPoints(20));
    expectSameResults(results, reference);
    EXPECT_EQ(farm.stats().journalSkips, 7u);
    EXPECT_EQ(farm.stats().computed, 13u);

    // Phase 3: resuming the now-complete campaign computes nothing.
    harness::FarmRunner done(o);
    expectSameResults(done.run(syntheticPoints(20)), reference);
    EXPECT_EQ(done.stats().computed, 0u);
    EXPECT_EQ(done.stats().journalSkips, 20u);
    fs::remove_all(dir);
}

TEST(FarmResume, ResumeWithDamagedCacheEntryRecomputes)
{
    const auto dir = tempDir("resume-corrupt");
    auto reference = harness::FarmRunner({}).run(syntheticPoints(10));

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        harness::FarmOptions o;
        o.cacheDir = dir;
        o.faultPlan = harness::FaultPlan::parse("die@6");
        harness::FarmRunner farm(o);
        farm.run(syntheticPoints(10));
        _exit(99);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 3);

    // Vandalize one journaled point's cache entry: the journal says
    // "done", the cache cannot prove it — the point must recompute.
    harness::ResultCache cache(dir);
    auto points = syntheticPoints(10);
    {
        std::ofstream f(cache.entryPath(points[0].key),
                        std::ios::binary | std::ios::trunc);
        f << "vandalized";
    }

    harness::FarmOptions o;
    o.cacheDir = dir;
    o.resume = true;
    harness::FarmRunner farm(o);
    auto results = farm.run(syntheticPoints(10));
    expectSameResults(results, reference);
    EXPECT_EQ(farm.stats().corruptEvictions, 1u);
    EXPECT_EQ(farm.stats().computed, 5u)
        << "4 unjournaled + 1 vandalized";
    fs::remove_all(dir);
}

TEST(FarmResume, WithoutResumeFlagJournalIsTruncatedButCacheServes)
{
    const auto dir = tempDir("noresume");
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        harness::FarmOptions o;
        o.cacheDir = dir;
        o.faultPlan = harness::FaultPlan::parse("die@5");
        harness::FarmRunner farm(o);
        farm.run(syntheticPoints(12));
        _exit(99);
    }
    int status = 0;
    waitpid(pid, &status, 0);

    // No --resume: the journal restarts, but the memoized points
    // still hit the cache (the cache is content-addressed, not
    // campaign-scoped).
    harness::FarmOptions o;
    o.cacheDir = dir;
    harness::FarmRunner farm(o);
    auto results = farm.run(syntheticPoints(12));
    EXPECT_EQ(farm.stats().journalSkips, 0u);
    EXPECT_EQ(farm.stats().cacheHits, 5u);
    EXPECT_EQ(farm.stats().computed, 7u);
    auto reference = harness::FarmRunner({}).run(syntheticPoints(12));
    expectSameResults(results, reference);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// fault tolerance: supervision, quarantine, chaos determinism
// ---------------------------------------------------------------

TEST(FarmFault, WorkerFaultMatrixIsByteIdentical)
{
    // {crash, corrupt-frame, truncated-frame, short-read} x {first,
    // mid, last point} x {2, 4 workers}: every fault is delivered
    // one-shot, the point is retried clean, and the merged vector is
    // byte-identical to the fault-free run.
    const int n = 9;
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    for (const char *kind : {"crash", "corrupt", "truncate", "short"}) {
        for (int pos : {0, n / 2, n - 1}) {
            for (int workers : {2, 4}) {
                harness::FarmOptions o;
                o.workers = workers;
                o.faultPlan = harness::FaultPlan::parse(
                    std::string(kind) + "@" + std::to_string(pos));
                harness::FarmRunner farm(o);
                auto results = farm.run(syntheticPoints(n));
                expectSameResults(results, reference);
                const auto &st = farm.stats();
                EXPECT_EQ(st.quarantined, 0u)
                    << kind << "@" << pos << " x" << workers;
                EXPECT_EQ(st.pointRetries, 1u)
                    << kind << "@" << pos << " x" << workers;
                if (std::strcmp(kind, "crash") != 0)
                    EXPECT_GE(st.framesRejected, 1u)
                        << kind << "@" << pos << " x" << workers;
                // Worker slots grow with respawns; every completed
                // point is attributed to exactly one slot.
                EXPECT_EQ(st.perWorkerPoints.size(),
                          std::size_t(st.workersUsed) + st.respawns);
            }
        }
    }
}

TEST(FarmFault, HungWorkerIsReapedAtEveryPosition)
{
    const int n = 5;
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    for (int pos : {0, n / 2, n - 1}) {
        harness::FarmOptions o;
        o.workers = 2;
        o.pointTimeoutSeconds = 0.25;
        o.faultPlan = harness::FaultPlan::parse(
            "hang@" + std::to_string(pos));
        harness::FarmRunner farm(o);
        auto results = farm.run(syntheticPoints(n));
        expectSameResults(results, reference);
        EXPECT_EQ(farm.stats().timeouts, 1u) << pos;
        EXPECT_EQ(farm.stats().quarantined, 0u) << pos;
        EXPECT_EQ(farm.stats().pointRetries, 1u) << pos;
    }
}

TEST(FarmFault, StalledPartialHeaderIsReapedWithinDeadline)
{
    // The coordinator-stall regression: a worker writes half a
    // FrameHeader then hangs. The old blocking readFull() would wait
    // on the other half forever, defeating every --point-timeout.
    // With non-blocking drains the partial header parks in the
    // worker's frame buffer and the deadline sweep reaps it.
    const int n = 6;
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    for (int pos : {0, n / 2, n - 1}) {
        harness::FarmOptions o;
        o.workers = 2;
        o.pointTimeoutSeconds = 0.25;
        o.faultPlan = harness::FaultPlan::parse(
            "stall@" + std::to_string(pos));
        harness::FarmRunner farm(o);
        const auto t0 = std::chrono::steady_clock::now();
        auto results = farm.run(syntheticPoints(n));
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        expectSameResults(results, reference);
        EXPECT_EQ(farm.stats().timeouts, 1u) << pos;
        EXPECT_GE(farm.stats().framesRejected, 1u)
            << pos << ": the abandoned partial frame must be counted";
        EXPECT_EQ(farm.stats().quarantined, 0u) << pos;
        EXPECT_EQ(farm.stats().pointRetries, 1u) << pos;
        EXPECT_LT(elapsed, 10.0)
            << pos << ": the stalled worker must be reaped by the "
                      "0.25s point deadline, not block the campaign";
    }
}

TEST(FarmFault, SeededRandomPlanIsByteIdentical)
{
    const int n = 12;
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    for (int workers : {2, 4}) {
        harness::FarmOptions o;
        o.workers = workers;
        o.faultPlan = harness::FaultPlan::parse("rand:1234:4");
        harness::FarmRunner farm(o);
        auto results = farm.run(syntheticPoints(n));
        expectSameResults(results, reference);
        EXPECT_EQ(farm.stats().quarantined, 0u) << workers;
        EXPECT_EQ(farm.stats().pointRetries, 4u)
            << "4 distinct faulted points, one clean retry each";
    }
}

TEST(FarmFault, CrashPairForcesRespawnUnderBackoff)
{
    // Both initial workers die on their first points: progress then
    // requires at least one respawn (exponential backoff, bounded by
    // maxWorkerRestarts).
    const int n = 6;
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    harness::FarmOptions o;
    o.workers = 2;
    o.respawnBackoffMs = 1;
    o.faultPlan = harness::FaultPlan::parse("crash@0,crash@1");
    harness::FarmRunner farm(o);
    auto results = farm.run(syntheticPoints(n));
    expectSameResults(results, reference);
    EXPECT_GE(farm.stats().respawns, 1u);
    EXPECT_LE(farm.stats().respawns,
              std::uint64_t(harness::FarmOptions{}.maxWorkerRestarts));
    EXPECT_EQ(farm.stats().quarantined, 0u);
    EXPECT_EQ(farm.stats().pointRetries, 2u);
}

TEST(FarmFault, CrashPoisonPointIsQuarantinedNotRetriedInline)
{
    const auto dir = tempDir("quarantine");
    const int n = 8;
    auto points = syntheticPoints(n);
    // A deterministic killer: _exit()s whatever process runs it. If
    // the farm ever retried it inline, the test binary would die —
    // quarantine is what keeps the coordinator alive.
    points[4].run = []() -> wl::WorkloadResult { _exit(77); };

    harness::FarmOptions o;
    o.cacheDir = dir;
    o.workers = 2;
    o.respawnBackoffMs = 1;
    harness::FarmRunner farm(o);
    auto results = farm.run(points); // must not throw
    ASSERT_EQ(results.size(), std::size_t(n));
    for (int i = 0; i < n; ++i) {
        if (i == 4)
            continue;
        EXPECT_EQ(results[std::size_t(i)], syntheticResult(i)) << i;
    }
    EXPECT_FALSE(results[4].correct);
    EXPECT_EQ(results[4].metric("quarantined"), 1.0);
    const auto &st = farm.stats();
    EXPECT_EQ(st.quarantined, 1u);
    ASSERT_EQ(st.quarantinedPoints.size(), 1u);
    EXPECT_EQ(st.quarantinedPoints[0], 4u);
    EXPECT_EQ(st.pointRetries, 1u)
        << "death 1 requeues, death 2 quarantines (maxPointRetries)";

    // Resume: the journal's `quar` record keeps the point fenced —
    // it is not re-run, everything else replays from the cache.
    harness::FarmOptions ro = o;
    ro.resume = true;
    harness::FarmRunner resumed(ro);
    auto again = resumed.run(points);
    EXPECT_EQ(resumed.stats().quarantined, 1u);
    EXPECT_EQ(resumed.stats().computed, 0u);
    EXPECT_EQ(resumed.stats().journalSkips, 7u);
    EXPECT_FALSE(again[4].correct);

    // A fresh campaign (no --resume) retries the point from scratch
    // and re-quarantines it; the 7 good points hit the cache.
    harness::FarmRunner fresh(o);
    fresh.run(points);
    EXPECT_EQ(fresh.stats().quarantined, 1u);
    EXPECT_EQ(fresh.stats().cacheHits, 7u);
    fs::remove_all(dir);
}

TEST(FarmFault, HangPoisonPointIsQuarantinedByDeadline)
{
    const int n = 5;
    auto points = syntheticPoints(n);
    points[2].run = []() -> wl::WorkloadResult {
        for (;;)
            ::pause(); // hangs any worker that hosts it
    };
    harness::FarmOptions o;
    o.workers = 2;
    o.pointTimeoutSeconds = 0.2;
    o.respawnBackoffMs = 1;
    harness::FarmRunner farm(o);
    auto results = farm.run(points);
    EXPECT_EQ(farm.stats().timeouts, 2u)
        << "two deadline reaps, then quarantine";
    EXPECT_EQ(farm.stats().quarantined, 1u);
    EXPECT_EQ(results[2].metric("quarantined"), 1.0);
    for (int i = 0; i < n; ++i)
        if (i != 2)
            EXPECT_EQ(results[std::size_t(i)], syntheticResult(i))
                << i;
}

TEST(FarmFault, RestartBudgetExhaustionDrainsInline)
{
    // maxWorkerRestarts = 0: once the poison point has killed both
    // workers the farm must degrade gracefully — drain the untouched
    // points inline and quarantine the killer (it died with two
    // workers; an inline retry would take the coordinator down).
    const int n = 6;
    auto points = syntheticPoints(n);
    points[0].run = []() -> wl::WorkloadResult { _exit(77); };
    harness::FarmOptions o;
    o.workers = 2;
    o.maxWorkerRestarts = 0;
    o.maxPointRetries = 3;
    harness::FarmRunner farm(o);
    auto results = farm.run(points); // must not throw or die
    EXPECT_EQ(farm.stats().respawns, 0u);
    EXPECT_EQ(farm.stats().quarantined, 1u);
    EXPECT_EQ(farm.stats().pointRetries, 2u);
    EXPECT_EQ(results[0].metric("quarantined"), 1.0);
    for (int i = 1; i < n; ++i)
        EXPECT_EQ(results[std::size_t(i)], syntheticResult(i)) << i;
}

TEST(FarmFault, TornCacheEntryIsLengthEvictedAndRecomputed)
{
    const auto dir = tempDir("tear-cache");
    const int n = 8;
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    harness::FarmOptions o;
    o.cacheDir = dir;
    o.faultPlan = harness::FaultPlan::parse("tear-cache@4");
    harness::FarmRunner cold(o);
    expectSameResults(cold.run(syntheticPoints(n)), reference);
    EXPECT_EQ(cold.stats().cacheStores, std::uint64_t(n));

    // The 4th published entry was torn mid-payload on disk: the warm
    // run must reject it by the length check (before checksumming),
    // recompute that one point, and still merge byte-identically.
    harness::FarmOptions warm;
    warm.cacheDir = dir;
    harness::FarmRunner warmRun(warm);
    expectSameResults(warmRun.run(syntheticPoints(n)), reference);
    EXPECT_EQ(warmRun.stats().lengthEvictions, 1u);
    EXPECT_EQ(warmRun.stats().corruptEvictions, 0u);
    EXPECT_EQ(warmRun.stats().cacheHits, std::uint64_t(n - 1));
    EXPECT_EQ(warmRun.stats().computed, 1u);

    // The recompute republished the entry.
    harness::FarmRunner again(warm);
    again.run(syntheticPoints(n));
    EXPECT_EQ(again.stats().cacheHits, std::uint64_t(n));
    fs::remove_all(dir);
}

TEST(FarmFault, TornJournalRecordIsSkippedOnResume)
{
    const auto dir = tempDir("tear-journal");
    const int n = 10;
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    harness::FarmOptions o;
    o.cacheDir = dir;
    o.faultPlan = harness::FaultPlan::parse("tear-journal@3");
    harness::FarmRunner cold(o);
    expectSameResults(cold.run(syntheticPoints(n)), reference);

    // Record 3 was torn mid-line, so record 4 landed on the same
    // line: both are unparseable and must be treated as not-done.
    // Resume recovers them from the cache (the journal is a progress
    // record, never a source of results) — byte-identical again.
    harness::FarmOptions ro = o;
    ro.faultPlan = harness::FaultPlan();
    ro.resume = true;
    harness::FarmRunner resumed(ro);
    expectSameResults(resumed.run(syntheticPoints(n)), reference);
    EXPECT_EQ(resumed.stats().journalSkips, std::uint64_t(n - 2));
    EXPECT_EQ(resumed.stats().cacheHits, std::uint64_t(n));
    EXPECT_EQ(resumed.stats().computed, 0u);
    fs::remove_all(dir);
}

TEST(FarmResume, TornJournalTailFromMidAppendKill)
{
    // The paired form the torn-tail tolerance was built for: the
    // coordinator dies *during* a journal append (tear-journal and
    // die at the same merge). Only the torn record is lost.
    const auto dir = tempDir("tear-die");
    const int n = 10;
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        harness::FarmOptions o;
        o.cacheDir = dir;
        o.faultPlan =
            harness::FaultPlan::parse("tear-journal@5,die@5");
        harness::FarmRunner farm(o);
        farm.run(syntheticPoints(n));
        _exit(99); // NOT REACHED
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status),
              harness::FarmOptions::dieExitStatus);

    harness::FarmOptions o;
    o.cacheDir = dir;
    o.resume = true;
    harness::FarmRunner farm(o);
    expectSameResults(farm.run(syntheticPoints(n)), reference);
    EXPECT_EQ(farm.stats().journalSkips, 4u)
        << "4 clean records; the 5th was torn mid-append";
    EXPECT_EQ(farm.stats().cacheHits, 5u)
        << "the torn record's payload still serves from the cache";
    EXPECT_EQ(farm.stats().computed, 5u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// journal write-error detection and result streaming
// ---------------------------------------------------------------

TEST(Farm, JournalWriteErrorsAreCountedNotSilent)
{
    // /dev/full accepts the fopen but fails every flush with ENOSPC —
    // the exact disk-full shape Journal::record() used to swallow.
    if (!fs::exists("/dev/full"))
        GTEST_SKIP() << "no /dev/full on this platform";
    const auto dir = tempDir("journal-enospc");
    const int n = 5;
    fs::create_directories(dir);
    const auto campaign =
        harness::FarmRunner::campaignDigest(syntheticPoints(n));
    const auto journalPath =
        fs::path(dir) / ("campaign-" + toHex16(campaign) + ".journal");
    fs::create_symlink("/dev/full", journalPath);

    harness::FarmOptions o;
    o.cacheDir = dir;
    harness::FarmRunner farm(o);
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    auto results = farm.run(syntheticPoints(n));
    // A torn checkpoint must not affect the merged results.
    expectSameResults(results, reference);
    EXPECT_GE(farm.stats().journalWriteErrors, std::uint64_t(n))
        << "every failed append (and the header) must be counted";
    fs::remove_all(dir);
}

TEST(Farm, HealthyRunReportsNoJournalWriteErrors)
{
    const auto dir = tempDir("journal-clean");
    harness::FarmOptions o;
    o.cacheDir = dir;
    o.workers = 2;
    harness::FarmRunner farm(o);
    farm.run(syntheticPoints(6));
    EXPECT_EQ(farm.stats().journalWriteErrors, 0u);
    fs::remove_all(dir);
}

TEST(Farm, StreamedResultsArriveInSubmissionOrder)
{
    // The onResult hook is the daemon's transport: results must
    // stream in submission order — never merge (completion) order —
    // and byte-identical to the returned vector, at any worker count
    // and on the pure cache-replay path.
    const int n = 12;
    auto reference = harness::FarmRunner({}).run(syntheticPoints(n));
    const auto dir = tempDir("stream");
    for (int workers : {1, 4}) {
        harness::FarmOptions o;
        o.workers = workers;
        o.cacheDir = dir;
        std::vector<std::size_t> order;
        std::vector<wl::WorkloadResult> streamed;
        o.onResult = [&](std::size_t i,
                         const wl::WorkloadResult &r) {
            order.push_back(i);
            streamed.push_back(r);
        };
        harness::FarmRunner farm(o);
        auto results = farm.run(syntheticPoints(n));
        expectSameResults(results, reference);
        ASSERT_EQ(order.size(), std::size_t(n)) << workers;
        for (int i = 0; i < n; ++i)
            EXPECT_EQ(order[std::size_t(i)], std::size_t(i))
                << "submission order, workers=" << workers;
        expectSameResults(streamed, results);
    }
    // The second loop iteration replayed everything from the warm
    // cache — the hook must fire identically on that path too.
    fs::remove_all(dir);
}

#endif // __unix__

} // namespace
} // namespace capsule
