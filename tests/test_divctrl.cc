/**
 * @file
 * Unit tests for the division controller: the greedy strategy, the
 * death-rate throttle of Section 3.1 (window N = 128 cycles,
 * threshold contexts/2), and the StaticFirstK / DenyAll baselines.
 */

#include <gtest/gtest.h>

#include "sim/division_ctrl.hh"

namespace capsule::sim
{
namespace
{

DivisionParams
greedy(int threshold = 4, Cycle window = 128)
{
    DivisionParams p;
    p.policy = DivisionPolicy::Greedy;
    p.deathThreshold = threshold;
    p.deathWindow = window;
    return p;
}

TEST(Greedy, GrantsWithFreeContext)
{
    DivisionController dc(greedy());
    EXPECT_TRUE(dc.request(100, true));
    EXPECT_EQ(dc.granted(), 1u);
}

TEST(Greedy, DeniesWithoutFreeContext)
{
    DivisionController dc(greedy());
    EXPECT_FALSE(dc.request(100, false));
    EXPECT_EQ(dc.granted(), 0u);
    EXPECT_EQ(dc.requested(), 1u);
}

TEST(Greedy, ThrottlesWhenThreadsDieQuickly)
{
    DivisionController dc(greedy(/*threshold=*/4));
    // Five deaths within the window exceed contexts/2 = 4.
    for (Cycle t = 0; t < 5; ++t)
        dc.recordDeath(100 + t);
    EXPECT_FALSE(dc.request(110, true));
    EXPECT_EQ(dc.throttled(), 1u);
}

TEST(Greedy, ThresholdIsExclusive)
{
    DivisionController dc(greedy(/*threshold=*/4));
    // Exactly four deaths: not *more* than threshold, so granted.
    for (Cycle t = 0; t < 4; ++t)
        dc.recordDeath(100 + t);
    EXPECT_TRUE(dc.request(110, true));
}

TEST(Greedy, WindowExpires)
{
    DivisionController dc(greedy(4, 128));
    for (Cycle t = 0; t < 10; ++t)
        dc.recordDeath(t);
    EXPECT_FALSE(dc.request(50, true));   // deaths still in window
    EXPECT_TRUE(dc.request(300, true));   // window slid past them
    EXPECT_EQ(dc.recentDeaths(300), 0);
}

TEST(Greedy, RecentDeathsCountsWindowOnly)
{
    DivisionController dc(greedy(4, 128));
    dc.recordDeath(0);
    dc.recordDeath(100);
    dc.recordDeath(200);
    EXPECT_EQ(dc.recentDeaths(200), 2);  // 100 and 200
}

TEST(NoThrottle, IgnoresDeaths)
{
    DivisionParams p;
    p.policy = DivisionPolicy::GreedyNoThrottle;
    DivisionController dc(p);
    for (Cycle t = 0; t < 50; ++t)
        dc.recordDeath(t);
    EXPECT_TRUE(dc.request(10, true));
    EXPECT_FALSE(dc.request(10, false));
}

TEST(StaticFirstK, GrantsExactlyKMinusOne)
{
    DivisionParams p;
    p.policy = DivisionPolicy::StaticFirstK;
    p.staticContexts = 8;
    DivisionController dc(p);
    int granted = 0;
    for (int i = 0; i < 100; ++i)
        granted += dc.request(Cycle(i), true);
    EXPECT_EQ(granted, 7);
    EXPECT_EQ(dc.granted(), 7u);
    EXPECT_EQ(dc.requested(), 100u);
}

TEST(StaticFirstK, RespectsFreeContexts)
{
    DivisionParams p;
    p.policy = DivisionPolicy::StaticFirstK;
    p.staticContexts = 8;
    DivisionController dc(p);
    EXPECT_FALSE(dc.request(0, false));
    EXPECT_TRUE(dc.request(1, true));
}

TEST(DenyAll, NeverGrants)
{
    DivisionParams p;
    p.policy = DivisionPolicy::DenyAll;
    DivisionController dc(p);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(dc.request(Cycle(i), true));
    EXPECT_EQ(dc.requested(), 10u);
    EXPECT_EQ(dc.granted(), 0u);
}

TEST(DivisionStats, GrantRateFormula)
{
    DivisionController dc(greedy());
    dc.request(0, true);
    dc.request(1, false);
    dc.request(2, false);
    dc.request(3, false);
    StatGroup g("m");
    dc.registerStats(g);
    EXPECT_DOUBLE_EQ(g.get("div.grant_rate"), 0.25);
    EXPECT_EQ(g.get("div.denied_no_context"), 3.0);
}

} // namespace
} // namespace capsule::sim
