/**
 * @file
 * Unit tests for the CapISA assembler: syntax forms, label
 * resolution (including forward references), directives, and error
 * collection.
 */

#include <gtest/gtest.h>

#include "casm/assembler.hh"

namespace capsule::casm
{
namespace
{

using isa::Opcode;

TEST(Assembler, ThreeRegForm)
{
    auto img = Assembler::assembleOrDie("add r1, r2, r3\n");
    ASSERT_EQ(img.words.size(), 1u);
    auto inst = isa::decode(img.words[0]);
    EXPECT_EQ(inst.op, Opcode::Add);
    EXPECT_EQ(inst.rd, 1);
    EXPECT_EQ(inst.rs1, 2);
    EXPECT_EQ(inst.rs2, 3);
}

TEST(Assembler, ImmediateForm)
{
    auto img = Assembler::assembleOrDie("addi r1, r2, -42\n");
    auto inst = isa::decode(img.words[0]);
    EXPECT_EQ(inst.op, Opcode::Addi);
    EXPECT_EQ(inst.rd, 1);
    EXPECT_EQ(inst.rs1, 2);
    EXPECT_EQ(inst.imm, -42);
}

TEST(Assembler, HexImmediate)
{
    auto img = Assembler::assembleOrDie("addi r1, r0, 0xff\n");
    EXPECT_EQ(isa::decode(img.words[0]).imm, 255);
}

TEST(Assembler, LoadStoreForm)
{
    auto img = Assembler::assembleOrDie("lw r5, 16(r6)\n"
                                        "sw r5, -8(r7)\n");
    auto lw = isa::decode(img.words[0]);
    EXPECT_EQ(lw.op, Opcode::Lw);
    EXPECT_EQ(lw.rd, 5);
    EXPECT_EQ(lw.rs1, 6);
    EXPECT_EQ(lw.imm, 16);
    auto sw = isa::decode(img.words[1]);
    EXPECT_EQ(sw.op, Opcode::Sw);
    EXPECT_EQ(sw.rs2, 5);
    EXPECT_EQ(sw.rs1, 7);
    EXPECT_EQ(sw.imm, -8);
}

TEST(Assembler, BranchBackwardDisplacement)
{
    auto img = Assembler::assembleOrDie("top:\n"
                                        "  addi r1, r1, 1\n"
                                        "  bne r1, r2, top\n");
    auto bne = isa::decode(img.words[1]);
    EXPECT_EQ(bne.op, Opcode::Bne);
    // The branch sits one instruction after `top`.
    EXPECT_EQ(bne.imm, -1);
}

TEST(Assembler, ForwardReference)
{
    auto img = Assembler::assembleOrDie("  jmp end\n"
                                        "  nop\n"
                                        "end:\n"
                                        "  halt\n");
    auto jmp = isa::decode(img.words[0]);
    EXPECT_EQ(jmp.op, Opcode::Jmp);
    EXPECT_EQ(jmp.imm, 2);
}

TEST(Assembler, NthrTargetsLabel)
{
    auto img = Assembler::assembleOrDie("  nthr r4, right\n"
                                        "  halt\n"
                                        "right:\n"
                                        "  kthr\n");
    auto nthr = isa::decode(img.words[0]);
    EXPECT_EQ(nthr.op, Opcode::NthrOp);
    EXPECT_EQ(nthr.rd, 4);
    EXPECT_EQ(nthr.imm, 2);
    EXPECT_EQ(img.symbol("right"), img.base + 8);
}

TEST(Assembler, LockForms)
{
    auto img = Assembler::assembleOrDie("mlock r3\nmunlock r3\n");
    EXPECT_EQ(isa::decode(img.words[0]).op, Opcode::MlockOp);
    EXPECT_EQ(isa::decode(img.words[0]).rs1, 3);
    EXPECT_EQ(isa::decode(img.words[1]).op, Opcode::MunlockOp);
}

TEST(Assembler, OrgAndWordDirectives)
{
    auto img = Assembler::assembleOrDie("  nop\n"
                                        "  .org 0x1010\n"
                                        "data:\n"
                                        "  .word 0xdeadbeef\n",
                                        0x1000);
    EXPECT_EQ(img.symbol("data"), 0x1010u);
    ASSERT_EQ(img.words.size(), 5u);  // 0x1000..0x1010 inclusive
    EXPECT_EQ(img.words[4], 0xdeadbeefu);
}

TEST(Assembler, CommentsAndBlankLines)
{
    auto img = Assembler::assembleOrDie(
        "# full line comment\n"
        "\n"
        "  add r1, r2, r3  ; trailing comment\n");
    EXPECT_EQ(img.words.size(), 1u);
}

TEST(Assembler, CollectsMultipleErrors)
{
    Assembler as;
    EXPECT_FALSE(as.assemble("  bogus r1\n"
                             "  add r1, r2\n"
                             "  lw r1, nonsense\n"));
    EXPECT_GE(as.diagnostics().size(), 3u);
    EXPECT_EQ(as.diagnostics()[0].line, 1);
}

TEST(Assembler, DuplicateLabelRejected)
{
    Assembler as;
    EXPECT_FALSE(as.assemble("x:\n  nop\nx:\n  nop\n"));
    EXPECT_FALSE(as.diagnostics().empty());
}

TEST(Assembler, UndefinedSymbolRejected)
{
    Assembler as;
    EXPECT_FALSE(as.assemble("  jmp nowhere\n"));
    ASSERT_FALSE(as.diagnostics().empty());
    EXPECT_NE(as.diagnostics()[0].message.find("undefined"),
              std::string::npos);
}

TEST(Assembler, BadRegisterRejected)
{
    Assembler as;
    EXPECT_FALSE(as.assemble("  add r32, r1, r2\n"));
    EXPECT_FALSE(as.diagnostics().empty());
}

TEST(Assembler, FpRegistersParse)
{
    auto img = Assembler::assembleOrDie("fadd f1, f2, f3\n"
                                        "fld f4, 0(r5)\n");
    auto fadd = isa::decode(img.words[0]);
    EXPECT_EQ(fadd.op, Opcode::Fadd);
    EXPECT_EQ(fadd.rd, 1);
    auto fld = isa::decode(img.words[1]);
    EXPECT_EQ(fld.op, Opcode::Fld);
    EXPECT_EQ(fld.rd, 4);
    EXPECT_EQ(fld.rs1, 5);
}

} // namespace
} // namespace capsule::casm
