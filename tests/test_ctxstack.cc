/**
 * @file
 * Unit tests for the inactive-context stack: LIFO order, the
 * load-latency swap policy counters, and capacity limits.
 */

#include <gtest/gtest.h>

#include "sim/context_stack.hh"
#include "sim/sim_error.hh"

namespace capsule::sim
{
namespace
{

ContextStackParams
params(int entries = 16, Cycle lat = 200, int window = 1000,
       int threshold = 256)
{
    ContextStackParams p;
    p.entries = entries;
    p.swapLatency = lat;
    p.loadWindow = window;
    p.swapThreshold = threshold;
    return p;
}

TEST(ContextStack, LifoOrder)
{
    ContextStack cs(params());
    cs.push(1);
    cs.push(2);
    cs.push(3);
    EXPECT_EQ(cs.depth(), 3u);
    EXPECT_EQ(cs.pop(), 3);
    EXPECT_EQ(cs.pop(), 2);
    EXPECT_EQ(cs.pop(), 1);
    EXPECT_TRUE(cs.empty());
}

TEST(ContextStack, SwapCounters)
{
    ContextStack cs(params());
    cs.push(1);
    cs.pop();
    EXPECT_EQ(cs.swapsOut(), 1u);
    EXPECT_EQ(cs.swapsIn(), 1u);
}

TEST(ContextStack, FullDetection)
{
    ContextStack cs(params(2));
    cs.push(1);
    EXPECT_FALSE(cs.full());
    cs.push(2);
    EXPECT_TRUE(cs.full());
}

TEST(ContextStackDeath, OverflowThrowsStructuredError)
{
    ContextStack cs(params(1));
    cs.push(1);
    try {
        cs.push(2);
        FAIL() << "overflow did not raise";
    } catch (const SimulationError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::ContextStackOverflow);
        EXPECT_NE(std::string(e.what()).find("overflow"),
                  std::string::npos);
    }
}

TEST(ContextStackDeath, OverflowIsFatalWhenHard)
{
    ContextStack cs(params(1));
    cs.push(1);
    EXPECT_EXIT((setHardSimulationErrors(true), cs.push(2)),
                ::testing::ExitedWithCode(1), "overflow");
}

TEST(SwapPolicy, SlowLoadsMarkCandidate)
{
    // Low threshold to keep the test fast.
    ContextStack cs(params(16, 200, 10, 5));
    // Establish a low average with fast loads from thread 0.
    for (int i = 0; i < 50; ++i)
        cs.observeLoad(0, 1);
    EXPECT_FALSE(cs.swapCandidate(0));
    // Thread 1 suffers memory-latency loads: counter rises.
    for (int i = 0; i < 8; ++i)
        cs.observeLoad(1, 200);
    EXPECT_TRUE(cs.swapCandidate(1));
    EXPECT_FALSE(cs.swapCandidate(0));
}

TEST(SwapPolicy, FastLoadsDecrementCounter)
{
    ContextStack cs(params(16, 200, 10, 5));
    for (int i = 0; i < 50; ++i)
        cs.observeLoad(0, 10);
    // Push thread 1 toward candidacy, then give it fast loads.
    for (int i = 0; i < 4; ++i)
        cs.observeLoad(1, 500);
    EXPECT_FALSE(cs.swapCandidate(1));
    for (int i = 0; i < 10; ++i)
        cs.observeLoad(1, 1);
    for (int i = 0; i < 3; ++i)
        cs.observeLoad(1, 500);
    EXPECT_FALSE(cs.swapCandidate(1));
}

TEST(SwapPolicy, ClearCandidateResets)
{
    ContextStack cs(params(16, 200, 10, 3));
    for (int i = 0; i < 20; ++i)
        cs.observeLoad(0, 1);
    for (int i = 0; i < 5; ++i)
        cs.observeLoad(1, 300);
    EXPECT_TRUE(cs.swapCandidate(1));
    cs.clearCandidate(1);
    EXPECT_FALSE(cs.swapCandidate(1));
}

TEST(SwapPolicy, UnknownThreadIsNotCandidate)
{
    ContextStack cs(params());
    EXPECT_FALSE(cs.swapCandidate(99));
}

TEST(ContextStack, SwapLatencyExposed)
{
    ContextStack cs(params(16, 123));
    EXPECT_EQ(cs.swapLatency(), 123u);
}

} // namespace
} // namespace capsule::sim
