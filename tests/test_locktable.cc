/**
 * @file
 * Unit tests for the hardware locking table: grant/conflict
 * semantics, oldest-waiter handoff, recursion, and quiescence.
 */

#include <gtest/gtest.h>

#include "sim/lock_table.hh"
#include "sim/sim_error.hh"

namespace capsule::sim
{
namespace
{

TEST(LockTable, GrantOnFreeAddress)
{
    LockTable lt;
    EXPECT_TRUE(lt.acquire(0x100, 1));
    EXPECT_EQ(lt.owner(0x100), 1);
    EXPECT_EQ(lt.occupancy(), 1u);
}

TEST(LockTable, RecursiveAcquireIsIdempotent)
{
    LockTable lt;
    EXPECT_TRUE(lt.acquire(0x100, 1));
    EXPECT_TRUE(lt.acquire(0x100, 1));
    EXPECT_EQ(lt.conflicts(), 0u);
}

TEST(LockTable, ConflictQueuesWaiter)
{
    LockTable lt;
    EXPECT_TRUE(lt.acquire(0x100, 1));
    EXPECT_FALSE(lt.acquire(0x100, 2));
    EXPECT_EQ(lt.conflicts(), 1u);
    EXPECT_EQ(lt.owner(0x100), 1);
}

TEST(LockTable, OldestWaiterBecomesOwner)
{
    LockTable lt;
    EXPECT_TRUE(lt.acquire(0x100, 1));
    EXPECT_FALSE(lt.acquire(0x100, 2));
    EXPECT_FALSE(lt.acquire(0x100, 3));
    EXPECT_FALSE(lt.acquire(0x100, 4));
    // Release hands the lock to the *oldest* waiter (thread 2).
    EXPECT_EQ(lt.release(0x100, 1), 2);
    EXPECT_EQ(lt.owner(0x100), 2);
    EXPECT_EQ(lt.release(0x100, 2), 3);
    EXPECT_EQ(lt.release(0x100, 3), 4);
    EXPECT_EQ(lt.release(0x100, 4), invalidThread);
    EXPECT_EQ(lt.occupancy(), 0u);
}

TEST(LockTable, ReacquireAfterQueueDoesNotDuplicate)
{
    LockTable lt;
    EXPECT_TRUE(lt.acquire(0x100, 1));
    EXPECT_FALSE(lt.acquire(0x100, 2));
    EXPECT_FALSE(lt.acquire(0x100, 2));  // re-issued mlock
    EXPECT_EQ(lt.release(0x100, 1), 2);
    EXPECT_EQ(lt.release(0x100, 2), invalidThread);
}

TEST(LockTable, IndependentAddresses)
{
    LockTable lt;
    EXPECT_TRUE(lt.acquire(0x100, 1));
    EXPECT_TRUE(lt.acquire(0x200, 2));
    EXPECT_EQ(lt.owner(0x100), 1);
    EXPECT_EQ(lt.owner(0x200), 2);
}

TEST(LockTable, CancelWaitRemovesThread)
{
    LockTable lt;
    EXPECT_TRUE(lt.acquire(0x100, 1));
    EXPECT_FALSE(lt.acquire(0x100, 2));
    EXPECT_FALSE(lt.acquire(0x100, 3));
    lt.cancelWait(0x100, 2);
    EXPECT_EQ(lt.release(0x100, 1), 3);
}

TEST(LockTable, QuiescenceChecks)
{
    LockTable lt;
    EXPECT_TRUE(lt.threadQuiescent(1));
    lt.acquire(0x100, 1);
    EXPECT_FALSE(lt.threadQuiescent(1));
    lt.acquire(0x100, 2);
    EXPECT_FALSE(lt.threadQuiescent(2));
    lt.release(0x100, 1);
    EXPECT_TRUE(lt.threadQuiescent(1));
    EXPECT_FALSE(lt.threadQuiescent(2));  // now owner
    lt.release(0x100, 2);
    EXPECT_TRUE(lt.threadQuiescent(2));
}

TEST(LockTable, OwnerOfUnlockedAddress)
{
    LockTable lt;
    EXPECT_EQ(lt.owner(0xdead), invalidThread);
}

TEST(LockTableDeath, OverflowThrowsStructuredError)
{
    LockTable lt(2);
    lt.acquire(0x100, 1);
    lt.acquire(0x200, 2);
    try {
        lt.acquire(0x300, 3);
        FAIL() << "overflow did not raise";
    } catch (const SimulationError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::LockTableOverflow);
        EXPECT_NE(std::string(e.what()).find("overflow"),
                  std::string::npos);
    }
}

TEST(LockTableDeath, OverflowIsFatalWhenHard)
{
    LockTable lt(2);
    lt.acquire(0x100, 1);
    lt.acquire(0x200, 2);
    EXPECT_EXIT((setHardSimulationErrors(true), lt.acquire(0x300, 3)),
                ::testing::ExitedWithCode(1), "overflow");
}

TEST(LockTableDeath, ReleaseByNonOwnerPanics)
{
    LockTable lt;
    lt.acquire(0x100, 1);
    EXPECT_DEATH(lt.release(0x100, 2), "non-owner");
}

TEST(LockTable, StatsRegistration)
{
    LockTable lt;
    lt.acquire(0x100, 1);
    lt.acquire(0x100, 2);
    lt.release(0x100, 1);
    StatGroup g("m");
    lt.registerStats(g);
    EXPECT_EQ(g.get("locks.acquires"), 2.0);
    EXPECT_EQ(g.get("locks.conflicts"), 1.0);
    EXPECT_EQ(g.get("locks.releases"), 1.0);
}

} // namespace
} // namespace capsule::sim
