/**
 * @file
 * Toolchain tests: the lexer, the Figure-2(a)->(b) pre-processor
 * (worker expansion, coworker switch, lock insertion), and the
 * Figure-2(b)->(c) assembly post-processor — including an
 * end-to-end run where the rewritten assembly is assembled and
 * executed on the machine.
 */

#include <gtest/gtest.h>

#include "casm/assembler.hh"
#include "front/asm_program.hh"
#include "sim/machine.hh"
#include "toolchain/lexer.hh"
#include "toolchain/postprocessor.hh"
#include "toolchain/preprocessor.hh"

namespace capsule::tc
{
namespace
{

// ---------------------------------------------------------------
// lexer
// ---------------------------------------------------------------
TEST(Lexer, RoundTripsVerbatim)
{
    std::string src = "worker void f(int *p) {\n"
                      "  // comment\n"
                      "  p->x = \"str\"; /* multi\nline */ g('c');\n"
                      "}\n";
    EXPECT_EQ(emit(lex(src)), src);
}

TEST(Lexer, TokenKinds)
{
    auto toks = lex("abc 123 \"s\" 'c' + //x\n");
    ASSERT_GE(toks.size(), 8u);
    EXPECT_EQ(toks[0].kind, Token::Kind::Ident);
    EXPECT_EQ(toks[2].kind, Token::Kind::Number);
    EXPECT_EQ(toks[4].kind, Token::Kind::String);
    EXPECT_EQ(toks[6].kind, Token::Kind::CharLit);
}

TEST(Lexer, TracksLineNumbers)
{
    auto toks = lex("a\nb\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[2].line, 2);
    EXPECT_EQ(toks[4].line, 3);
}

TEST(Lexer, EscapedQuotesInStrings)
{
    auto toks = lex("\"a\\\"b\"");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].text, "\"a\\\"b\"");
}

// ---------------------------------------------------------------
// pre-processor
// ---------------------------------------------------------------

/** The paper's running example, reduced. */
const char *dijkstraWorker =
    "worker void explore(node_t *node, int from, int len) {\n"
    "  if (len < node->dist) {\n"
    "    node->dist = len;\n"
    "    for (int i = 0; i < node->nchildren; i++) {\n"
    "      coworker explore(node->child[i], node->id,\n"
    "                       len + node->w[i]);\n"
    "    }\n"
    "  }\n"
    "}\n";

TEST(Preprocessor, RecognisesWorker)
{
    Preprocessor pp;
    auto res = pp.process(dijkstraWorker);
    ASSERT_TRUE(res.ok) << (res.diagnostics.empty()
                                ? ""
                                : res.diagnostics[0]);
    ASSERT_EQ(res.workers.size(), 1u);
    EXPECT_EQ(res.workers[0].name, "explore");
    ASSERT_EQ(res.workers[0].params.size(), 3u);
    EXPECT_TRUE(res.workers[0].params[0].byAddress);
    EXPECT_EQ(res.workers[0].params[0].name, "node");
    EXPECT_FALSE(res.workers[0].params[1].byAddress);
}

TEST(Preprocessor, GeneratesThreeVersions)
{
    Preprocessor pp;
    auto res = pp.process(dijkstraWorker);
    EXPECT_NE(res.output.find("explore__seq"), std::string::npos);
    EXPECT_NE(res.output.find("explore__left"), std::string::npos);
    EXPECT_NE(res.output.find("explore__right"), std::string::npos);
    // The worker keyword must not survive into standard C.
    EXPECT_EQ(res.output.find("worker "), std::string::npos);
    EXPECT_EQ(res.output.find("coworker"), std::string::npos);
}

TEST(Preprocessor, CoworkerBecomesProbeSwitch)
{
    Preprocessor pp;
    auto res = pp.process(dijkstraWorker);
    EXPECT_NE(res.output.find("switch (__capsule_probe())"),
              std::string::npos);
    EXPECT_NE(res.output.find("case -1: explore__seq("),
              std::string::npos);
    EXPECT_NE(res.output.find("case 0: explore__left("),
              std::string::npos);
    EXPECT_NE(res.output.find("case 1: explore__right("),
              std::string::npos);
    EXPECT_EQ(res.coworkerCallsRewritten, 3);  // one per version
}

TEST(Preprocessor, SequentialVersionNeverProbes)
{
    Preprocessor pp;
    auto res = pp.process(dijkstraWorker);
    // Inside explore__seq the call lowers to a direct call.
    auto seqBegin = res.output.find("explore__seq(node_t");
    auto leftBegin = res.output.find("explore__left(node_t");
    ASSERT_NE(seqBegin, std::string::npos);
    ASSERT_NE(leftBegin, std::string::npos);
    std::string seqBody =
        res.output.substr(seqBegin, leftBegin - seqBegin);
    EXPECT_EQ(seqBody.find("__capsule_probe"), std::string::npos);
    EXPECT_NE(seqBody.find("explore__seq(node->child[i]"),
              std::string::npos);
}

TEST(Preprocessor, InsertsLocksOnByAddressParams)
{
    Preprocessor pp(/*insert_locks=*/true);
    auto res = pp.process(dijkstraWorker);
    EXPECT_NE(res.output.find("__mlock(node);"), std::string::npos);
    EXPECT_NE(res.output.find("__munlock(node);"), std::string::npos);
    // Scalars are not locked.
    EXPECT_EQ(res.output.find("__mlock(from)"), std::string::npos);
    EXPECT_GT(res.locksInserted, 0);
}

TEST(Preprocessor, LockInsertionCanBeDisabled)
{
    Preprocessor pp(/*insert_locks=*/false);
    auto res = pp.process(dijkstraWorker);
    EXPECT_EQ(res.output.find("__mlock"), std::string::npos);
}

TEST(Preprocessor, UnlockPrecedesSpawningSection)
{
    // Locks must be released before worker "movement" (the coworker
    // call), per Section 3.2.
    Preprocessor pp;
    auto res = pp.process(dijkstraWorker);
    auto leftBegin = res.output.find("explore__left(node_t");
    auto unlockPos = res.output.find("__munlock(node);", leftBegin);
    auto probePos = res.output.find("__capsule_probe", leftBegin);
    ASSERT_NE(unlockPos, std::string::npos);
    ASSERT_NE(probePos, std::string::npos);
    EXPECT_LT(unlockPos, probePos);
}

TEST(Preprocessor, RewritesPlainCallsToWorkers)
{
    std::string src = std::string(dijkstraWorker) +
                      "int main() {\n"
                      "  explore(root, -1, 0);\n"
                      "  return 0;\n"
                      "}\n";
    Preprocessor pp;
    auto res = pp.process(src);
    ASSERT_TRUE(res.ok);
    // The call in main becomes the probe switch too.
    auto mainBegin = res.output.find("int main()");
    ASSERT_NE(mainBegin, std::string::npos);
    EXPECT_NE(res.output.find("switch (__capsule_probe())",
                              mainBegin),
              std::string::npos);
}

TEST(Preprocessor, NonWorkerCodePassesThrough)
{
    std::string src = "int add(int a, int b) { return a + b; }\n";
    Preprocessor pp;
    auto res = pp.process(src);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.output, src);
}

TEST(Preprocessor, DiagnosesUnknownCoworker)
{
    std::string src = "worker void f(int x) { coworker g(x); }\n";
    Preprocessor pp;
    auto res = pp.process(src);
    EXPECT_FALSE(res.ok);
    ASSERT_FALSE(res.diagnostics.empty());
    EXPECT_NE(res.diagnostics[0].find("unknown worker"),
              std::string::npos);
}

TEST(Preprocessor, MultipleWorkers)
{
    std::string src =
        "worker void a(int *p) { coworker b(p); }\n"
        "worker void b(int *p) { coworker a(p); }\n";
    Preprocessor pp;
    auto res = pp.process(src);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.workers.size(), 2u);
    EXPECT_NE(res.output.find("b__right"), std::string::npos);
    EXPECT_NE(res.output.find("a__right"), std::string::npos);
}

// ---------------------------------------------------------------
// post-processor
// ---------------------------------------------------------------

const char *probeSite = "  jal r31, __capsule_probe\n"
                        "  addi r2, r0, -1\n"
                        "  beq r1, r2, Lseq\n"
                        "  beq r1, r0, Lleft\n"
                        "  jmp Lright\n";

TEST(Postprocessor, RewritesProbeSite)
{
    auto res = postprocess(probeSite);
    EXPECT_EQ(res.callSitesRewritten, 1);
    EXPECT_NE(res.output.find("nthr r1, Lright"), std::string::npos);
    EXPECT_EQ(res.output.find("__capsule_probe"), std::string::npos);
    EXPECT_NE(res.output.find("beq r1, r2, Lseq"), std::string::npos);
    EXPECT_NE(res.output.find("jmp Lleft"), std::string::npos);
}

TEST(Postprocessor, LeavesOtherCodeAlone)
{
    std::string src = "  add r1, r2, r3\n  jal r31, helper\n";
    auto res = postprocess(src);
    EXPECT_EQ(res.callSitesRewritten, 0);
    EXPECT_EQ(res.output, src);
}

TEST(Postprocessor, RewritesMultipleSites)
{
    std::string two = std::string(probeSite) + "  nop\n" + probeSite;
    auto res = postprocess(two);
    EXPECT_EQ(res.callSitesRewritten, 2);
}

TEST(Postprocessor, OutputAssemblesAndRunsOnMachine)
{
    // A complete conditional-division program in the pre-processed
    // shape: the probe pattern plus seq/left/right versions that tag
    // memory so the test can observe which path ran.
    std::string src = "  lui r10, 8\n"
                      "entry:\n" +
                      std::string(probeSite) +
                      "Lseq:\n"
                      "  addi r3, r0, 1\n"
                      "  sd r3, 0(r10)\n"
                      "  sd r3, 8(r10)\n"
                      "  halt\n"
                      "Lleft:\n"
                      "  addi r4, r0, 2\n"
                      "  sd r4, 0(r10)\n"
                      "  halt\n"
                      "Lright:\n"
                      "  addi r5, r0, 3\n"
                      "  sd r5, 8(r10)\n"
                      "  kthr\n";
    auto post = postprocess(src);
    ASSERT_EQ(post.callSitesRewritten, 1);

    auto img = casm::Assembler::assembleOrDie(post.output);
    front::AsmProcess proc(img);

    // On SOMT the division is granted: left runs in the parent and
    // right in the child.
    sim::Machine somt(sim::MachineConfig::somt());
    somt.addThread(std::make_unique<front::AsmProgram>(proc));
    auto stats = somt.run();
    EXPECT_EQ(stats.divisionsGranted, 1u);
    EXPECT_EQ(proc.memory.read(0x8000, 8), 2u);  // left tag
    EXPECT_EQ(proc.memory.read(0x8008, 8), 3u);  // right tag

    // On the superscalar the division is denied: sequential path.
    front::AsmProcess proc2(img);
    sim::Machine mono(sim::MachineConfig::superscalar());
    mono.addThread(std::make_unique<front::AsmProgram>(proc2));
    mono.run();
    EXPECT_EQ(proc2.memory.read(0x8000, 8), 1u);
    EXPECT_EQ(proc2.memory.read(0x8008, 8), 1u);
}

} // namespace
} // namespace capsule::tc
