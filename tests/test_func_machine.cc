/**
 * @file
 * The fast functional backend and the two-tier fast-forward engine
 * (DESIGN.md §8): backend registration and the unknown-name error,
 * func-vs-oracle bit-exactness on generated division programs, the
 * registry workloads' correctness/determinism on func, the
 * ffwd-at-0 == pure-detailed field-exactness contract, and the
 * mid-program handoff.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "front/asm_program.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/ref_interp.hh"
#include "sim/backend.hh"
#include "sim/func_machine.hh"
#include "sim/machine.hh"
#include "sim/mixed_machine.hh"
#include "workloads/workload.hh"

namespace capsule
{
namespace
{

/** Fuzz-style bound: generated programs finishing later are hung. */
constexpr Cycle testMaxCycles = 50'000'000;

sim::MachineConfig
funcConfig()
{
    auto cfg = sim::MachineConfig::somt();
    cfg.backend = "func";
    cfg.maxCycles = testMaxCycles;
    return cfg;
}

/** Run `image` to completion on the backend `cfg` selects.
 *  @return the process (for final-memory checks) and the stats */
std::pair<std::unique_ptr<front::AsmProcess>, sim::RunStats>
runImage(const casm::Image &image, const sim::MachineConfig &cfg,
         std::string *statsDump = nullptr)
{
    auto proc = std::make_unique<front::AsmProcess>(image);
    auto backend = sim::makeBackend(cfg);
    backend->addThread(std::make_unique<front::AsmProgram>(*proc));
    auto stats = backend->run();
    EXPECT_EQ(backend->lockedAddrs(), 0u);
    EXPECT_EQ(backend->swappedContexts(), 0u);
    if (statsDump) {
        std::ostringstream os;
        backend->dumpStats(os);
        *statsDump = os.str();
    }
    return {std::move(proc), stats};
}

// ---------------------------------------------------------------
// backend registration
// ---------------------------------------------------------------

TEST(MakeBackend, UnknownNameListsValidBackends)
{
    auto cfg = sim::MachineConfig::somt();
    cfg.backend = "frobnicate";
    try {
        sim::makeBackend(cfg);
        FAIL() << "makeBackend accepted an unknown backend";
    } catch (const std::invalid_argument &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("frobnicate"), std::string::npos) << msg;
        for (const auto &name : sim::backendNames())
            EXPECT_NE(msg.find(name), std::string::npos)
                << msg << " misses " << name;
    }
}

TEST(MakeBackend, SelectsFuncAndWrapsFfwd)
{
    auto cfg = funcConfig();
    EXPECT_NE(dynamic_cast<sim::FuncMachine *>(
                  sim::makeBackend(cfg).get()),
              nullptr);

    // ffwd wraps a timing backend...
    auto smt = sim::MachineConfig::somt();
    smt.ffwdInstructions = 1000;
    EXPECT_NE(dynamic_cast<sim::MixedMachine *>(
                  sim::makeBackend(smt).get()),
              nullptr);

    // ...but the functional tier has nothing to fast-forward into.
    cfg.ffwdInstructions = 1000;
    EXPECT_NE(dynamic_cast<sim::FuncMachine *>(
                  sim::makeBackend(cfg).get()),
              nullptr);
}

// ---------------------------------------------------------------
// func vs the reference oracle
// ---------------------------------------------------------------

TEST(FuncBackend, MatchesOracleOnGeneratedDivisionPrograms)
{
    for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
        fuzz::GenParams params;
        params.seed = seed;
        auto prog = fuzz::generate(params);

        fuzz::RefInterp oracle(prog.image, {});
        auto ref = oracle.run();
        ASSERT_TRUE(ref.ok) << ref.error;

        auto [proc, stats] = runImage(prog.image, funcConfig());
        EXPECT_EQ(stats.divisionsRequested,
                  prog.expectedDivisionRequests)
            << "seed " << seed;
        EXPECT_EQ(stats.threadDeaths, stats.divisionsGranted)
            << "seed " << seed;
        EXPECT_EQ(stats.cycles, stats.instructions)
            << "func's clock is its retirement counter";
        for (int c = 0; c < prog.totalCells; ++c)
            ASSERT_EQ(proc->memory.read(prog.cellAddr(c), 8),
                      oracle.readCell(prog.cellAddr(c)))
                << "seed " << seed << " cell " << c;
    }
}

TEST(FuncBackend, RegistryWorkloadsCorrectAndDeterministic)
{
    auto cfg = funcConfig();
    wl::WorkloadRequest req{wl::ScaleLevel::Quick, 1};
    for (const char *name : {"dijkstra", "quicksort"}) {
        auto a = wl::WorkloadRegistry::builtin().run(name, cfg, req);
        auto b = wl::WorkloadRegistry::builtin().run(name, cfg, req);
        EXPECT_TRUE(a.correct) << name;
        EXPECT_EQ(a.stats, b.stats)
            << name << " not deterministic on func";
        EXPECT_EQ(a.stats.cycles, a.stats.instructions) << name;
        EXPECT_GT(a.stats.divisionsRequested, 0u)
            << name << " exercised no divisions";
    }
}

// ---------------------------------------------------------------
// the two-tier fast-forward engine
// ---------------------------------------------------------------

TEST(Ffwd, AtZeroIsFieldExactWithPureDetailed)
{
    fuzz::GenParams params;
    params.seed = 21;
    auto prog = fuzz::generate(params);

    auto cfg = sim::MachineConfig::somt();
    cfg.maxCycles = testMaxCycles;
    auto [pureProc, pureStats] = runImage(prog.image, cfg);

    // MixedMachine with a zero warm-up budget skips the functional
    // tier entirely; every RunStats field must be identical.
    auto mixedProc = std::make_unique<front::AsmProcess>(prog.image);
    sim::MixedMachine mixed(cfg);
    mixed.addThread(
        std::make_unique<front::AsmProgram>(*mixedProc));
    auto mixedStats = mixed.run();

    EXPECT_EQ(pureStats, mixedStats);
    for (int c = 0; c < prog.totalCells; ++c)
        ASSERT_EQ(mixedProc->memory.read(prog.cellAddr(c), 8),
                  pureProc->memory.read(prog.cellAddr(c), 8))
            << "cell " << c;
}

TEST(Ffwd, MidProgramHandoffMatchesOracle)
{
    fuzz::GenParams params;
    params.seed = 22;
    auto prog = fuzz::generate(params);

    fuzz::RefInterp oracle(prog.image, {});
    auto ref = oracle.run();
    ASSERT_TRUE(ref.ok) << ref.error;

    auto cfg = sim::MachineConfig::somt();
    cfg.maxCycles = testMaxCycles;
    cfg.ffwdInstructions = 300;
    std::string dump;
    auto [proc, stats] = runImage(prog.image, cfg, &dump);

    // Both tiers actually ran (the warm-up budget lands inside the
    // program), and the protocol accounting spans them seamlessly.
    EXPECT_NE(dump.find("# fast-forward tier"), std::string::npos)
        << dump;
    EXPECT_NE(dump.find("# measured tier"), std::string::npos) << dump;
    EXPECT_EQ(stats.divisionsRequested, prog.expectedDivisionRequests);
    EXPECT_EQ(stats.threadDeaths, stats.divisionsGranted);
    EXPECT_GT(stats.instructions, std::uint64_t(300));
    for (int c = 0; c < prog.totalCells; ++c)
        ASSERT_EQ(proc->memory.read(prog.cellAddr(c), 8),
                  oracle.readCell(prog.cellAddr(c)))
            << "cell " << c;
}

TEST(Ffwd, WarmupSwallowsShortPrograms)
{
    fuzz::GenParams params;
    params.seed = 23;
    auto prog = fuzz::generate(params);

    fuzz::RefInterp oracle(prog.image, {});
    ASSERT_TRUE(oracle.run().ok);

    auto cfg = sim::MachineConfig::somt();
    cfg.maxCycles = testMaxCycles;
    cfg.ffwdInstructions = testMaxCycles;  // larger than any program
    std::string dump;
    auto [proc, stats] = runImage(prog.image, cfg, &dump);

    EXPECT_NE(dump.find("# fast-forward tier"), std::string::npos);
    EXPECT_EQ(dump.find("# measured tier"), std::string::npos) << dump;
    EXPECT_EQ(stats.divisionsRequested, prog.expectedDivisionRequests);
    for (int c = 0; c < prog.totalCells; ++c)
        ASSERT_EQ(proc->memory.read(prog.cellAddr(c), 8),
                  oracle.readCell(prog.cellAddr(c)))
            << "cell " << c;
}

} // namespace
} // namespace capsule
