/**
 * @file
 * Full-ISA round-trip: for every opcode in isa.hh, a source statement
 * is assembled, the emitted word decoded, the word re-encoded, and
 * the decoded instruction disassembled — asserting both binary
 * stability (encode(decode(w)) == w) and a stable canonical textual
 * form. This covers the decode → disassemble paths test_isa.cc
 * samples only representatively, and pins the assembler's
 * label-relative immediate encoding for the control-flow forms.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "casm/assembler.hh"
#include "isa/isa.hh"

namespace capsule
{
namespace
{

/** One per-opcode round-trip case. */
struct RoundTrip
{
    isa::Opcode op;
    /** Assembly statement; control-flow targets use label `t`, which
     *  the harness places two instructions (8 bytes) ahead. */
    const char *source;
    /** Canonical disassembly of the emitted word. */
    const char *disasm;
};

const RoundTrip cases[] = {
    {isa::Opcode::Nop, "nop", "nop"},
    // Integer ALU, three-register forms.
    {isa::Opcode::Add, "add r3, r4, r5", "add r3, r4, r5"},
    {isa::Opcode::Sub, "sub r3, r4, r5", "sub r3, r4, r5"},
    {isa::Opcode::And, "and r3, r4, r5", "and r3, r4, r5"},
    {isa::Opcode::Or, "or r3, r4, r5", "or r3, r4, r5"},
    {isa::Opcode::Xor, "xor r3, r4, r5", "xor r3, r4, r5"},
    {isa::Opcode::Sll, "sll r3, r4, r5", "sll r3, r4, r5"},
    {isa::Opcode::Srl, "srl r3, r4, r5", "srl r3, r4, r5"},
    {isa::Opcode::Sra, "sra r3, r4, r5", "sra r3, r4, r5"},
    {isa::Opcode::Slt, "slt r3, r4, r5", "slt r3, r4, r5"},
    {isa::Opcode::Sltu, "sltu r3, r4, r5", "sltu r3, r4, r5"},
    // Integer ALU, immediate forms.
    {isa::Opcode::Addi, "addi r3, r4, -7", "addi r3, r4, -7"},
    {isa::Opcode::Andi, "andi r3, r4, 9", "andi r3, r4, 9"},
    {isa::Opcode::Ori, "ori r3, r4, 9", "ori r3, r4, 9"},
    {isa::Opcode::Xori, "xori r3, r4, 9", "xori r3, r4, 9"},
    {isa::Opcode::Slli, "slli r3, r4, 3", "slli r3, r4, 3"},
    {isa::Opcode::Srli, "srli r3, r4, 3", "srli r3, r4, 3"},
    {isa::Opcode::Slti, "slti r3, r4, 11", "slti r3, r4, 11"},
    {isa::Opcode::Lui, "lui r3, 123", "lui r3, 123"},
    // Integer multiply / divide.
    {isa::Opcode::Mul, "mul r3, r4, r5", "mul r3, r4, r5"},
    {isa::Opcode::Div, "div r3, r4, r5", "div r3, r4, r5"},
    {isa::Opcode::Rem, "rem r3, r4, r5", "rem r3, r4, r5"},
    // Floating point; fcmp writes an int register from fp sources,
    // fcvt reads an int register into an fp destination.
    {isa::Opcode::Fadd, "fadd f3, f4, f5", "fadd f3, f4, f5"},
    {isa::Opcode::Fsub, "fsub f3, f4, f5", "fsub f3, f4, f5"},
    {isa::Opcode::Fcmp, "fcmp r3, f4, f5", "fcmp r3, f4, f5"},
    {isa::Opcode::Fcvt, "fcvt f3, r4", "fcvt f3, r4"},
    {isa::Opcode::Fmul, "fmul f3, f4, f5", "fmul f3, f4, f5"},
    {isa::Opcode::Fdiv, "fdiv f3, f4, f5", "fdiv f3, f4, f5"},
    // Memory.
    {isa::Opcode::Lb, "lb r6, 16(r7)", "lb r6, 16(r7)"},
    {isa::Opcode::Lh, "lh r6, 16(r7)", "lh r6, 16(r7)"},
    {isa::Opcode::Lw, "lw r6, 16(r7)", "lw r6, 16(r7)"},
    {isa::Opcode::Ld, "ld r6, 16(r7)", "ld r6, 16(r7)"},
    {isa::Opcode::Sb, "sb r8, -24(r9)", "sb r8, -24(r9)"},
    {isa::Opcode::Sh, "sh r8, -24(r9)", "sh r8, -24(r9)"},
    {isa::Opcode::Sw, "sw r8, -24(r9)", "sw r8, -24(r9)"},
    {isa::Opcode::Sd, "sd r8, -24(r9)", "sd r8, -24(r9)"},
    {isa::Opcode::Fld, "fld f6, 16(r7)", "fld f6, 16(r7)"},
    {isa::Opcode::Fsd, "fsd f8, -24(r9)", "fsd f8, -24(r9)"},
    // Control flow: `t` sits two instructions ahead, so the encoded
    // PC-relative displacement is 2 instruction units.
    {isa::Opcode::Beq, "beq r10, r11, t", "beq r10, r11, 2"},
    {isa::Opcode::Bne, "bne r10, r11, t", "bne r10, r11, 2"},
    {isa::Opcode::Blt, "blt r10, r11, t", "blt r10, r11, 2"},
    {isa::Opcode::Bge, "bge r10, r11, t", "bge r10, r11, 2"},
    {isa::Opcode::Jmp, "jmp t", "jmp 2"},
    {isa::Opcode::Jal, "jal r1, t", "jal r1, 2"},
    {isa::Opcode::Jr, "jr r12", "jr r12"},
    // CAPSULE extensions.
    {isa::Opcode::NthrOp, "nthr r13, t", "nthr r13, 2"},
    {isa::Opcode::KthrOp, "kthr", "kthr"},
    {isa::Opcode::MlockOp, "mlock r14", "mlock r14"},
    {isa::Opcode::MunlockOp, "munlock r14", "munlock r14"},
    {isa::Opcode::HaltOp, "halt", "halt"},
};

TEST(IsaRoundTrip, EveryOpcodeHasACase)
{
    std::map<isa::Opcode, int> seen;
    for (const auto &c : cases)
        ++seen[c.op];
    for (int i = 0; i < int(isa::Opcode::NumOpcodes); ++i) {
        auto op = isa::Opcode(i);
        EXPECT_EQ(seen[op], 1) << "opcode " << isa::mnemonic(op);
    }
}

class OpcodeRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(OpcodeRoundTrip, AssembleEncodeDecodeDisasmStable)
{
    const RoundTrip &c = cases[std::size_t(GetParam())];

    // Assemble the statement, with the shared control-flow target
    // label two instruction slots ahead of the statement itself.
    std::string source = std::string("  ") + c.source +
                         "\n  nop\nt:\n  nop\n";
    auto img = casm::Assembler::assembleOrDie(source);
    ASSERT_EQ(img.words.size(), 3u) << c.source;
    std::uint32_t word = img.words[0];

    // Binary round-trip: the decoded form re-encodes to the word.
    isa::StaticInst inst = isa::decode(word);
    EXPECT_EQ(inst.op, c.op) << c.source;
    EXPECT_EQ(isa::encode(inst), word) << c.source;

    // Textual round-trip: the canonical disassembly is stable.
    EXPECT_EQ(isa::disassemble(inst), c.disasm) << c.source;

    // And the mnemonic agrees with the table the assembler uses.
    EXPECT_EQ(std::string(c.disasm).substr(
                  0, std::string(c.disasm).find(' ')),
              isa::mnemonic(c.op));
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range(0, int(std::size(cases))),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            isa::mnemonic(cases[std::size_t(info.param)].op));
    });

} // namespace
} // namespace capsule
