/**
 * @file
 * bench_util: command-line parsing (parseScale) and the JSON metric
 * report (escaping, non-finite handling, write semantics). Built
 * against bench/bench_util.cc directly — these helpers gate every
 * harness's exit status, so they get first-class coverage.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace capsule::bench
{
namespace
{

/** Build a mutable argv from string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        for (auto &s : strings)
            ptrs.push_back(s.data());
    }

    int argc() const { return int(ptrs.size()); }
    char **argv() { return ptrs.data(); }

  private:
    std::vector<std::string> strings;
    std::vector<char *> ptrs;
};

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------
// parseScale
// ---------------------------------------------------------------
TEST(ParseScale, Defaults)
{
    Argv a({"prog"});
    auto s = parseScale(a.argc(), a.argv());
    EXPECT_FALSE(s.paper);
    EXPECT_FALSE(s.quick);
    EXPECT_EQ(s.seed, 1u);
    EXPECT_TRUE(s.json.empty());
    EXPECT_EQ(s.jobs, 0);
    EXPECT_EQ(s.level(), wl::ScaleLevel::Default);
}

TEST(ParseScale, AllFlags)
{
    Argv a({"prog", "--paper", "--seed", "42", "--json", "out.json",
            "--jobs", "3"});
    auto s = parseScale(a.argc(), a.argv());
    EXPECT_TRUE(s.paper);
    EXPECT_EQ(s.seed, 42u);
    EXPECT_EQ(s.json, "out.json");
    EXPECT_EQ(s.jobs, 3);
    EXPECT_EQ(s.level(), wl::ScaleLevel::Paper);
}

TEST(ParseScale, QuickMapsToQuickLevel)
{
    Argv a({"prog", "--quick"});
    auto s = parseScale(a.argc(), a.argv());
    EXPECT_TRUE(s.quick);
    EXPECT_EQ(s.level(), wl::ScaleLevel::Quick);
    EXPECT_EQ(s.request(9).seed, 9u);
    EXPECT_EQ(s.request(9).scale, wl::ScaleLevel::Quick);
}

TEST(ParseScale, PickFollowsFlags)
{
    Argv q({"prog", "--quick"});
    EXPECT_EQ(parseScale(q.argc(), q.argv()).pick(1, 2, 3), 1);
    Argv d({"prog"});
    EXPECT_EQ(parseScale(d.argc(), d.argv()).pick(1, 2, 3), 2);
    Argv p({"prog", "--paper"});
    EXPECT_EQ(parseScale(p.argc(), p.argv()).pick(1, 2, 3), 3);
}

using ParseScaleDeath = ::testing::Test;

TEST(ParseScaleDeath, UnknownFlagExitsWithUsage)
{
    Argv a({"prog", "--bogus"});
    EXPECT_EXIT(parseScale(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "usage:");
}

TEST(ParseScaleDeath, SeedWithoutValueExits)
{
    Argv a({"prog", "--seed"});
    EXPECT_EXIT(parseScale(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "usage:");
}

TEST(ParseScaleDeath, JobsWithoutValueExits)
{
    Argv a({"prog", "--jobs"});
    EXPECT_EXIT(parseScale(a.argc(), a.argv()),
                ::testing::ExitedWithCode(2), "usage:");
}

TEST(ParseScaleDeath, JobsRejectsGarbageAndNonPositive)
{
    // Out-of-range values (the cap also guards int truncation of
    // huge longs) must hit the same exit(2) path as garbage.
    for (const char *bad :
         {"two", "0", "-4", "3x", "4097", "4294967297"}) {
        Argv a({"prog", "--jobs", bad});
        EXPECT_EXIT(parseScale(a.argc(), a.argv()),
                    ::testing::ExitedWithCode(2),
                    "positive integer")
            << bad;
    }
}

// ---------------------------------------------------------------
// JsonReport
// ---------------------------------------------------------------
Scale
scaleWritingTo(const std::string &path)
{
    Scale s;
    s.quick = true;
    s.seed = 7;
    s.json = path;
    return s;
}

TEST(JsonReport, NoPathIsASuccessfulNoOp)
{
    Scale s;  // no --json
    JsonReport r("artifact", s);
    r.num("x", 1.0);
    EXPECT_TRUE(r.write());
}

TEST(JsonReport, UnwritablePathFails)
{
    Scale s;
    s.json = "/nonexistent-dir/nope/out.json";
    JsonReport r("artifact", s);
    EXPECT_FALSE(r.write());
}

TEST(JsonReport, WritesHeaderAndAllMetricKinds)
{
    auto path = tempPath("jsonreport_basic.json");
    JsonReport r("fig_test", scaleWritingTo(path));
    r.num("speed", 2.5);
    r.count("cycles", 123456789ull);
    r.flag("ok", true);
    r.flag("bad", false);
    r.str("machine", "somt");
    ASSERT_TRUE(r.write());

    auto text = slurp(path);
    EXPECT_NE(text.find("\"artifact\": \"fig_test\""),
              std::string::npos);
    EXPECT_NE(text.find("\"scale\": \"quick\""), std::string::npos);
    EXPECT_NE(text.find("\"seed\": 7"), std::string::npos);
    EXPECT_NE(text.find("\"speed\": 2.5"), std::string::npos);
    EXPECT_NE(text.find("\"cycles\": 123456789"), std::string::npos);
    EXPECT_NE(text.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(text.find("\"bad\": false"), std::string::npos);
    EXPECT_NE(text.find("\"machine\": \"somt\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(JsonReport, NonFiniteNumbersSerialiseAsNull)
{
    auto path = tempPath("jsonreport_nan.json");
    JsonReport r("nan_test", scaleWritingTo(path));
    r.num("nan", std::nan(""));
    r.num("inf", std::numeric_limits<double>::infinity());
    r.num("ninf", -std::numeric_limits<double>::infinity());
    r.num("fine", 1.0);
    ASSERT_TRUE(r.write());

    auto text = slurp(path);
    EXPECT_NE(text.find("\"nan\": null"), std::string::npos);
    EXPECT_NE(text.find("\"inf\": null"), std::string::npos);
    EXPECT_NE(text.find("\"ninf\": null"), std::string::npos);
    EXPECT_NE(text.find("\"fine\": 1"), std::string::npos);
    EXPECT_EQ(text.find("nan("), std::string::npos);
    std::remove(path.c_str());
}

TEST(JsonReport, EscapesStringsAndKeys)
{
    auto path = tempPath("jsonreport_escape.json");
    JsonReport r("escape \"test\"", scaleWritingTo(path));
    r.str("quote\"key", "a \"quoted\" value");
    r.str("backslash", "a\\b");
    r.str("newline", "line1\nline2");
    r.str("tab", "a\tb");
    r.str("control", std::string("bell\x07"));
    ASSERT_TRUE(r.write());

    auto text = slurp(path);
    EXPECT_NE(text.find("\"artifact\": \"escape \\\"test\\\"\""),
              std::string::npos);
    EXPECT_NE(text.find("\"quote\\\"key\": \"a \\\"quoted\\\" "
                        "value\""),
              std::string::npos);
    EXPECT_NE(text.find("\"a\\\\b\""), std::string::npos);
    EXPECT_NE(text.find("\"line1\\nline2\""), std::string::npos);
    EXPECT_NE(text.find("\"a\\tb\""), std::string::npos);
    EXPECT_NE(text.find("\"bell\\u0007\""), std::string::npos);
    // No raw newline may survive inside a serialised string.
    EXPECT_EQ(text.find("line1\nline2"), std::string::npos);
    std::remove(path.c_str());
}

TEST(JsonReport, MetricsKeepInsertionOrder)
{
    auto path = tempPath("jsonreport_order.json");
    JsonReport r("order_test", scaleWritingTo(path));
    r.num("zeta", 1);
    r.num("alpha", 2);
    ASSERT_TRUE(r.write());
    auto text = slurp(path);
    EXPECT_LT(text.find("\"zeta\""), text.find("\"alpha\""));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// mean
// ---------------------------------------------------------------
TEST(Mean, HandlesEmptyAndValues)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

} // namespace
} // namespace capsule::bench
