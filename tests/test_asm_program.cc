/**
 * @file
 * Functional tests of the CapISA interpreter (AsmProgram): arithmetic,
 * control flow, memory, and the nthr fork protocol.
 */

#include <gtest/gtest.h>

#include "casm/assembler.hh"
#include "front/asm_program.hh"

namespace capsule::front
{
namespace
{

/** Run a single thread to completion; returns instruction count. */
std::uint64_t
runToEnd(AsmProgram &prog, bool grant_divisions = false,
         std::vector<std::unique_ptr<Program>> *children = nullptr)
{
    isa::DynInst inst;
    std::uint64_t n = 0;
    while (prog.next(inst)) {
        ++n;
        if (inst.cls == isa::OpClass::Nthr) {
            auto child = prog.resolveNthr(grant_divisions);
            if (children && child)
                children->push_back(std::move(child));
        }
        if (n > 100000) {
            ADD_FAILURE() << "runaway program";
            break;
        }
    }
    return n;
}

TEST(AsmProgram, ArithmeticChain)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 6\n"
        "  addi r2, r0, 7\n"
        "  mul r3, r1, r2\n"
        "  sub r4, r3, r1\n"
        "  halt\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    runToEnd(t);
    EXPECT_EQ(t.regs().intRegs[3], 42);
    EXPECT_EQ(t.regs().intRegs[4], 36);
    EXPECT_TRUE(t.finished());
}

TEST(AsmProgram, RegisterZeroIsHardwired)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r0, r0, 99\n"
        "  add r1, r0, r0\n"
        "  halt\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    runToEnd(t);
    EXPECT_EQ(t.regs().intRegs[1], 0);
}

TEST(AsmProgram, LoopSum)
{
    // Sum 1..10 into r3.
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 10\n"
        "  addi r3, r0, 0\n"
        "top:\n"
        "  add r3, r3, r1\n"
        "  addi r1, r1, -1\n"
        "  bne r1, r0, top\n"
        "  halt\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    runToEnd(t);
    EXPECT_EQ(t.regs().intRegs[3], 55);
}

TEST(AsmProgram, MemoryRoundTrip)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 0x200\n"
        "  addi r2, r0, 1234\n"
        "  sd r2, 0(r1)\n"
        "  ld r3, 0(r1)\n"
        "  lw r4, 0(r1)\n"
        "  lb r5, 0(r1)\n"
        "  halt\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    runToEnd(t);
    EXPECT_EQ(t.regs().intRegs[3], 1234);
    EXPECT_EQ(t.regs().intRegs[4], 1234);
    // lb sign-extends the low byte: 1234 & 0xff = 0xd2 = -46.
    EXPECT_EQ(t.regs().intRegs[5], std::int8_t(1234 & 0xff));
    EXPECT_EQ(proc.memory.read(0x200, 8), 1234u);
}

TEST(AsmProgram, SignExtensionOnLoads)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 0x300\n"
        "  addi r2, r0, -1\n"
        "  sb r2, 0(r1)\n"
        "  lb r3, 0(r1)\n"
        "  halt\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    runToEnd(t);
    EXPECT_EQ(t.regs().intRegs[3], -1);
}

TEST(AsmProgram, JalAndJr)
{
    auto img = casm::Assembler::assembleOrDie(
        "  jal r1, sub\n"
        "after:\n"
        "  addi r3, r0, 5\n"
        "  halt\n"
        "sub:\n"
        "  addi r2, r0, 9\n"
        "  jr r1\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    runToEnd(t);
    EXPECT_EQ(t.regs().intRegs[2], 9);
    EXPECT_EQ(t.regs().intRegs[3], 5);
}

TEST(AsmProgram, FpOps)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 3\n"
        "  fcvt f1, r1\n"
        "  fadd f2, f1, f1\n"
        "  fmul f3, f2, f1\n"
        "  fcmp r2, f3, f1\n"
        "  halt\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    runToEnd(t);
    EXPECT_DOUBLE_EQ(t.regs().fpRegs[1], 3.0);
    EXPECT_DOUBLE_EQ(t.regs().fpRegs[2], 6.0);
    EXPECT_DOUBLE_EQ(t.regs().fpRegs[3], 18.0);
    EXPECT_EQ(t.regs().intRegs[2], 1);  // 18 > 3
}

TEST(AsmProgram, NthrDenied)
{
    auto img = casm::Assembler::assembleOrDie(
        "  nthr r1, child\n"
        "  halt\n"
        "child:\n"
        "  kthr\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    std::vector<std::unique_ptr<Program>> kids;
    runToEnd(t, /*grant=*/false, &kids);
    EXPECT_EQ(t.regs().intRegs[1], -1);  // switch case -1: sequential
    EXPECT_TRUE(kids.empty());
}

TEST(AsmProgram, NthrGrantedForksChild)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r2, r0, 77\n"
        "  nthr r1, child\n"
        "  halt\n"
        "child:\n"
        "  addi r3, r2, 1\n"
        "  kthr\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    std::vector<std::unique_ptr<Program>> kids;
    runToEnd(t, /*grant=*/true, &kids);
    EXPECT_EQ(t.regs().intRegs[1], 0);  // parent: left version
    ASSERT_EQ(kids.size(), 1u);

    auto *child = dynamic_cast<AsmProgram *>(kids[0].get());
    ASSERT_NE(child, nullptr);
    // Child starts with a copy of the registers, rd = 1.
    EXPECT_EQ(child->regs().intRegs[1], 1);
    EXPECT_EQ(child->regs().intRegs[2], 77);
    runToEnd(*child);
    EXPECT_EQ(child->regs().intRegs[3], 78);
    EXPECT_TRUE(child->finished());
}

TEST(AsmProgram, MlockEmitsAddress)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 0x500\n"
        "  mlock r1\n"
        "  munlock r1\n"
        "  halt\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    isa::DynInst inst;
    ASSERT_TRUE(t.next(inst));  // addi
    ASSERT_TRUE(t.next(inst));  // mlock
    EXPECT_EQ(inst.cls, isa::OpClass::Mlock);
    EXPECT_EQ(inst.effAddr, 0x500u);
    ASSERT_TRUE(t.next(inst));  // munlock
    EXPECT_EQ(inst.cls, isa::OpClass::Munlock);
    EXPECT_EQ(inst.effAddr, 0x500u);
}

TEST(AsmProgram, BranchRecordsOutcomeAndTarget)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 1\n"
        "  beq r1, r0, skip\n"
        "  addi r2, r0, 2\n"
        "skip:\n"
        "  halt\n");
    AsmProcess proc(img);
    AsmProgram t(proc);
    isa::DynInst inst;
    ASSERT_TRUE(t.next(inst));
    ASSERT_TRUE(t.next(inst));
    EXPECT_EQ(inst.cls, isa::OpClass::Branch);
    EXPECT_FALSE(inst.taken);
    EXPECT_EQ(inst.target, img.symbol("skip"));
    runToEnd(t);
    EXPECT_EQ(t.regs().intRegs[2], 2);
}

} // namespace
} // namespace capsule::front
