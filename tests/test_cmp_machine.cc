/**
 * @file
 * The CMP backend: backend selection by name, the numCores=1
 * cycle-equivalence contract against the SMT backend, cross-core
 * division behaviour (remote grants, probe locality, latency
 * sensitivity), shared-L2 wiring, and experiment-engine determinism
 * of the core-count sweep at any --jobs count.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/experiment.hh"
#include "sim/backend.hh"
#include "sim/cmp_machine.hh"
#include "sim/machine.hh"
#include "workloads/quicksort.hh"
#include "workloads/workload.hh"

namespace capsule
{
namespace
{

// ---------------------------------------------------------------
// backend seam
// ---------------------------------------------------------------
TEST(Backend, NamesCoverSmtCmpAndFunc)
{
    auto names = sim::backendNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "smt");
    EXPECT_EQ(names[1], "cmp");
    EXPECT_EQ(names[2], "func");
}

TEST(Backend, MakeBackendSelectsByName)
{
    auto smt = sim::makeBackend(sim::MachineConfig::somt());
    EXPECT_NE(dynamic_cast<sim::Machine *>(smt.get()), nullptr);

    auto cmp = sim::makeBackend(sim::MachineConfig::cmpSomt(2, 4));
    EXPECT_NE(dynamic_cast<sim::CmpMachine *>(cmp.get()), nullptr);
}

TEST(Backend, UnknownNameThrows)
{
    auto cfg = sim::MachineConfig::somt();
    cfg.backend = "gpu";
    EXPECT_THROW(sim::makeBackend(cfg), std::invalid_argument);
}

TEST(Backend, CmpSomtPreset)
{
    auto cfg = sim::MachineConfig::cmpSomt(4, 2);
    EXPECT_EQ(cfg.backend, "cmp");
    EXPECT_EQ(cfg.cmp.numCores, 4);
    EXPECT_EQ(cfg.numContexts, 2);
    // Death throttle sized by the total context count.
    EXPECT_EQ(cfg.division.deathThreshold, 4);
    // The shared L2 keeps the per-core Table-1 geometry.
    EXPECT_EQ(cfg.cmp.l2Config.sizeBytes, cfg.mem.l2.sizeBytes);
    EXPECT_EQ(cfg.cmp.l2Config.hitLatency, cfg.mem.l2.hitLatency);
}

// ---------------------------------------------------------------
// the numCores=1 equivalence contract
// ---------------------------------------------------------------

/** cmpSomt(1, contexts) must behave exactly like somt(contexts). */
TEST(CmpEquivalence, SingleCoreReproducesSmtOnEveryWorkload)
{
    const auto &reg = wl::WorkloadRegistry::builtin();
    auto smtCfg = sim::MachineConfig::somt();
    auto cmpCfg = sim::MachineConfig::cmpSomt(1, 8);
    wl::WorkloadRequest req{wl::ScaleLevel::Quick, 1};
    for (const auto &name : reg.names()) {
        auto smt = reg.run(name, smtCfg, req);
        auto cmp = reg.run(name, cmpCfg, req);
        EXPECT_EQ(smt.stats.cycles, cmp.stats.cycles) << name;
        // Field-exact: every counter, every derived rate, every
        // workload metric.
        EXPECT_EQ(smt.stats, cmp.stats) << name;
        EXPECT_EQ(smt, cmp) << name;
        EXPECT_TRUE(cmp.correct) << name;
    }
}

TEST(CmpEquivalence, SingleCoreNeverDividesRemotely)
{
    auto cfg = sim::MachineConfig::cmpSomt(1, 8);
    wl::QuickSortParams p;
    p.length = 800;
    p.seed = 3;
    auto r = wl::runQuickSort(cfg, p);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.stats.divisionsGranted, 0u);
    EXPECT_EQ(r.stats.divisionsRemote, 0u);
}

// ---------------------------------------------------------------
// cross-core division
// ---------------------------------------------------------------

wl::WorkloadResult
quickSortOn(const sim::MachineConfig &cfg, int length = 1200,
            std::uint64_t seed = 7)
{
    wl::QuickSortParams p;
    p.length = length;
    p.seed = seed;
    return wl::runQuickSort(cfg, p);
}

TEST(CmpDivision, SpillsToRemoteCoresWhenHomeCoreIsFull)
{
    // 4 cores x 2 contexts: the ancestor's core fills after one
    // local grant; further divisions must cross cores.
    auto r = quickSortOn(sim::MachineConfig::cmpSomt(4, 2));
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.stats.divisionsGranted, 0u);
    EXPECT_GT(r.stats.divisionsRemote, 0u);
    EXPECT_LE(r.stats.divisionsRemote, r.stats.divisionsGranted);
    // More contexts than one core offers were used.
    EXPECT_GT(r.stats.peakLiveThreads, 2);
}

TEST(CmpDivision, ProbeStaysLocalUnderDenyAll)
{
    // With every division denied, nthr is a pure probe: sweeping the
    // cross-core latency must not move a single cycle.
    auto base = sim::MachineConfig::cmpSomt(4, 2);
    base.division.policy = sim::DivisionPolicy::DenyAll;
    auto slow = base;
    slow.cmp.crossCoreDivLatency = 500;
    slow.cmp.coldL1Penalty = 500;
    auto a = quickSortOn(base);
    auto b = quickSortOn(slow);
    EXPECT_TRUE(a.correct);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.stats.divisionsGranted, 0u);
}

TEST(CmpDivision, CrossCoreLatencySlowsRemoteHeavyRuns)
{
    // 8 cores x 1 context: every division is remote; a large
    // cross-core latency must cost cycles.
    auto fast = sim::MachineConfig::cmpSomt(8, 1);
    fast.cmp.crossCoreDivLatency = 0;
    fast.cmp.coldL1Penalty = 0;
    auto slow = fast;
    slow.cmp.crossCoreDivLatency = 2000;
    auto a = quickSortOn(fast);
    auto b = quickSortOn(slow);
    ASSERT_TRUE(a.correct);
    ASSERT_TRUE(b.correct);
    EXPECT_GT(a.stats.divisionsGranted, 0u);
    EXPECT_LT(a.stats.cycles, b.stats.cycles);
}

// ---------------------------------------------------------------
// determinism: the acceptance sweep, byte-identical at any --jobs
// ---------------------------------------------------------------

/** The 1/2/4/8-core sweep at fixed total contexts. */
std::vector<harness::SweepPoint>
coreSweep()
{
    std::vector<harness::SweepPoint> points;
    for (int cores : {1, 2, 4, 8}) {
        auto cfg = sim::MachineConfig::cmpSomt(cores, 8 / cores);
        for (const char *wlName : {"dijkstra", "quicksort"})
            points.push_back(harness::registryPoint(
                wlName, cfg, {wl::ScaleLevel::Quick, 1},
                std::string(wlName) + "/" + cfg.name));
    }
    return points;
}

TEST(CmpDeterminism, CoreCountSweepIdenticalAtAnyJobCount)
{
    auto serial = harness::ExperimentRunner(1).run(coreSweep());
    auto parallel = harness::ExperimentRunner(8).run(coreSweep());
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].stats, parallel[i].stats) << i;
        EXPECT_EQ(serial[i], parallel[i]) << i;
        EXPECT_TRUE(serial[i].correct) << i;
    }
}

TEST(CmpDeterminism, RepeatedRunsIdentical)
{
    auto cfg = sim::MachineConfig::cmpSomt(4, 2);
    auto a = quickSortOn(cfg);
    auto b = quickSortOn(cfg);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace capsule
