/**
 * @file
 * Unit tests for the branch predictors of Table 1: bimodal learning,
 * GAp pattern capture, and the combining meta-predictor.
 */

#include <gtest/gtest.h>

#include "sim/bpred.hh"

namespace capsule::sim
{
namespace
{

TEST(Bimodal, LearnsStronglyBiasedBranch)
{
    BimodalPredictor p(1024);
    Addr pc = 0x1000;
    for (int i = 0; i < 10; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
    // One not-taken shouldn't flip a saturated counter.
    p.update(pc, false);
    EXPECT_TRUE(p.predict(pc));
}

TEST(Bimodal, LearnsNotTaken)
{
    BimodalPredictor p(1024);
    Addr pc = 0x2000;
    for (int i = 0; i < 10; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predict(pc));
}

TEST(Bimodal, DistinctPcsIndependent)
{
    BimodalPredictor p(1024);
    for (int i = 0; i < 10; ++i) {
        p.update(0x1000, true);
        p.update(0x1004, false);
    }
    EXPECT_TRUE(p.predict(0x1000));
    EXPECT_FALSE(p.predict(0x1004));
}

TEST(GAp, LearnsAlternatingPattern)
{
    // T,N,T,N... defeats bimodal but is trivial for history-indexed
    // tables.
    GApPredictor p(8192, 8);
    Addr pc = 0x3000;
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        taken = !taken;
        p.update(pc, taken);
    }
    // After training, verify the next 20 predictions.
    int correct = 0;
    for (int i = 0; i < 20; ++i) {
        taken = !taken;
        if (p.predict(pc) == taken)
            ++correct;
        p.update(pc, taken);
    }
    EXPECT_GE(correct, 18);
}

TEST(GAp, LearnsLoopExitPattern)
{
    // Taken 7x then not-taken once (8-iteration loop).
    GApPredictor p(8192, 8);
    Addr pc = 0x4000;
    for (int round = 0; round < 60; ++round) {
        for (int i = 0; i < 7; ++i)
            p.update(pc, true);
        p.update(pc, false);
    }
    int correct = 0;
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 7; ++i) {
            correct += p.predict(pc) == true;
            p.update(pc, true);
        }
        correct += p.predict(pc) == false;
        p.update(pc, false);
    }
    EXPECT_GE(correct, 36);  // >90 % on 40 predictions
}

TEST(Combined, TracksAccuracy)
{
    CombinedPredictor p;
    Addr pc = 0x5000;
    for (int i = 0; i < 100; ++i)
        p.update(pc, true);
    EXPECT_EQ(p.lookups(), 100u);
    EXPECT_GT(p.accuracy(), 0.9);
}

TEST(Combined, BeatsBimodalOnPatterns)
{
    // Alternating branch: bimodal hovers around 50 %, the combined
    // predictor should route it to GAp and do far better.
    CombinedPredictor comb;
    BimodalPredictor bim(4096);
    Addr pc = 0x6000;
    int bimCorrect = 0;
    int combCorrect = 0;
    bool taken = false;
    for (int i = 0; i < 600; ++i) {
        taken = !taken;
        if (i >= 100) {  // skip warmup
            bimCorrect += bim.predict(pc) == taken;
            combCorrect += comb.predict(pc) == taken;
        }
        bim.update(pc, taken);
        comb.update(pc, taken);
    }
    EXPECT_GT(combCorrect, bimCorrect + 100);
}

TEST(Combined, StatsRegistration)
{
    CombinedPredictor p;
    p.update(0x100, true);
    StatGroup g("cpu");
    p.registerStats(g);
    EXPECT_EQ(g.get("bpred.lookups"), 1.0);
}

} // namespace
} // namespace capsule::sim
