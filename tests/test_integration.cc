/**
 * @file
 * Integration tests: the paper's qualitative claims at small scale —
 * SOMT beats the superscalar baseline on divisible workloads, greedy
 * division saturates the contexts, the death throttle pays off on
 * tiny workers, and the context-stack machinery stays consistent.
 */

#include <gtest/gtest.h>

#include "workloads/dijkstra.hh"
#include "workloads/lzw.hh"
#include "workloads/perceptron.hh"
#include "workloads/quicksort.hh"

namespace capsule::wl
{
namespace
{

TEST(Speedup, SomtBeatsSuperscalarOnQuickSort)
{
    QuickSortParams p;
    p.length = 2000;
    auto mono = runQuickSort(sim::MachineConfig::superscalar(), p);
    auto somt = runQuickSort(sim::MachineConfig::somt(), p);
    ASSERT_TRUE(mono.correct);
    ASSERT_TRUE(somt.correct);
    EXPECT_GT(speedup(mono.stats.cycles, somt.stats.cycles), 1.3);
}

TEST(Speedup, SomtBeatsSuperscalarOnDijkstra)
{
    DijkstraParams p;
    p.nodes = 400;
    auto mono = runDijkstra(sim::MachineConfig::superscalar(), p);
    auto somt = runDijkstra(sim::MachineConfig::somt(), p);
    ASSERT_TRUE(mono.correct);
    ASSERT_TRUE(somt.correct);
    EXPECT_GT(speedup(mono.stats.cycles, somt.stats.cycles), 1.1);
}

TEST(Speedup, SomtAtLeastMatchesStaticOnQuickSort)
{
    QuickSortParams p;
    p.length = 2000;
    auto stat = runQuickSort(sim::MachineConfig::smtStatic(), p);
    auto somt = runQuickSort(sim::MachineConfig::somt(), p);
    ASSERT_TRUE(stat.correct);
    ASSERT_TRUE(somt.correct);
    // Dynamic load balancing should not lose to the static split.
    EXPECT_GT(speedup(stat.stats.cycles, somt.stats.cycles), 0.95);
}

TEST(Division, GreedySaturatesContexts)
{
    QuickSortParams p;
    p.length = 3000;
    auto res = runQuickSort(sim::MachineConfig::somt(8), p);
    EXPECT_GE(res.stats.peakLiveThreads, 6);
    EXPECT_GT(res.stats.divisionsGranted, 7u);  // replaces the dead
}

TEST(Division, MoreContextsMoreGrants)
{
    QuickSortParams p;
    p.length = 2000;
    auto c4 = runQuickSort(sim::MachineConfig::somt(4), p);
    auto c8 = runQuickSort(sim::MachineConfig::somt(8), p);
    EXPECT_GE(c8.stats.divisionsGranted, c4.stats.divisionsGranted);
}

TEST(Throttle, HelpsTinyWorkersOnLzw)
{
    LzwParams p;
    p.length = 4096;
    p.minSplit = 2;  // deliberately tiny parallel sections

    auto somt = sim::MachineConfig::somt();
    auto noThrottle = somt;
    noThrottle.division.policy =
        sim::DivisionPolicy::GreedyNoThrottle;

    auto with = runLzw(somt, p);
    auto without = runLzw(noThrottle, p);
    ASSERT_TRUE(with.correct);
    ASSERT_TRUE(without.correct);
    // The death throttle engages on tiny workers and must not lose
    // meaningfully (the paper's Figure-7 benefit; see EXPERIMENTS.md
    // on the magnitude in this model).
    EXPECT_GT(with.stats.divisionsThrottled, 0u);
    EXPECT_LE(double(with.stats.cycles),
              double(without.stats.cycles) * 1.05);
    // Throttling suppresses some fragmentation.
    EXPECT_LE(with.metric("chunks"), without.metric("chunks"));
}

TEST(Throttle, EngagesOnPerceptron)
{
    PerceptronParams p;
    p.neurons = 4000;
    p.inputs = 1;
    p.minGroup = 1;  // tiny groups -> fast deaths
    auto res = runPerceptron(sim::MachineConfig::somt(), p);
    ASSERT_TRUE(res.correct);
    EXPECT_GT(res.stats.divisionsThrottled, 0u);
}

TEST(Stability, SomtVarianceBelowStatic)
{
    // Figure 3's qualitative claim: the component version's execution
    // time is more stable across data sets than the static split.
    std::vector<double> somtTimes, staticTimes;
    for (int seed = 1; seed <= 6; ++seed) {
        DijkstraParams p;
        p.nodes = 200;
        p.seed = std::uint64_t(seed);
        somtTimes.push_back(double(
            runDijkstra(sim::MachineConfig::somt(), p).stats.cycles));
        staticTimes.push_back(
            double(runDijkstra(sim::MachineConfig::smtStatic(), p)
                       .stats.cycles));
    }
    auto cv = [](const std::vector<double> &v) {
        double mean = 0, var = 0;
        for (double x : v)
            mean += x;
        mean /= double(v.size());
        for (double x : v)
            var += (x - mean) * (x - mean);
        var /= double(v.size());
        return std::sqrt(var) / mean;
    };
    // Allow some slack: the claim is about the trend, not each seed.
    EXPECT_LT(cv(somtTimes), cv(staticTimes) * 1.6);
}

TEST(Locks, ConflictsObservedOnSharedStructures)
{
    DijkstraParams p;
    p.nodes = 300;
    auto res = runDijkstra(sim::MachineConfig::somt(), p);
    EXPECT_GT(res.stats.lockConflicts, 0u);
}

TEST(InstructionCounts, PolicyInvariantWorkVolume)
{
    // The component program does the same algorithmic work under all
    // policies; instruction counts should be in the same ballpark
    // (division prologues and lock retries add a little).
    QuickSortParams p;
    p.length = 1500;
    auto mono = runQuickSort(sim::MachineConfig::superscalar(), p);
    auto somt = runQuickSort(sim::MachineConfig::somt(), p);
    double ratio = double(somt.stats.instructions) /
                   double(mono.stats.instructions);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.3);
}

} // namespace
} // namespace capsule::wl
