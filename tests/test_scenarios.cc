/**
 * @file
 * The adversarial scenario registry (DESIGN.md §10): every scenario
 * is a pinned (mode, caps, seed) program, so its differential verdict
 * AND its contention profile on every backend are goldens. This suite
 * asserts (a) the registry is well-formed, (b) every scenario agrees
 * with the serial oracle on every default backend, (c) the per-
 * backend cycle/contention counters match the checked-in table
 * exactly, and (d) the division-dependent scenario's publication log
 * — the serial order of its lock-published dependencies, recorded by
 * the ordered-observation oracle — is pinned by digest.
 *
 * Functional-backend rows pin protocol counts only; cycle-domain
 * fields (cycles, lock-wait) are recorded as 0, mirroring
 * test_golden_stats.cc.
 *
 * To regenerate after an intentional change:
 *
 *   CAPSULE_GOLDEN_REGEN=1 ./tests/test_scenarios
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "front/asm_program.hh"
#include "fuzz/diff_runner.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/ref_interp.hh"
#include "fuzz/scenarios.hh"
#include "sim/backend.hh"

namespace capsule::fuzz
{
namespace
{

/** One checked-in (scenario, backend) expectation. */
struct Golden
{
    const char *scenario;
    const char *backend; ///< smt / cmp2 / cmp4 / func
    Cycle cycles;        ///< 0 on func rows (no timing golden)
    std::uint64_t instructions;
    std::uint64_t divisionsRequested;
    std::uint64_t divisionsGranted;
    std::uint64_t lockWaitCycles; ///< 0 on func rows
    std::uint64_t peakLockOccupancy;
    std::uint64_t peakCtxStackDepth;
};

// --- golden table (regenerate with CAPSULE_GOLDEN_REGEN=1) --------
const std::vector<Golden> goldens = {
    {"convoy-narrow", "smt", 14866u, 8648u, 23u, 19u, 10057u, 2u, 0u},
    {"convoy-narrow", "cmp2", 16443u, 13353u, 23u, 20u, 14744u, 2u, 0u},
    {"convoy-narrow", "cmp4", 15993u, 6933u, 23u, 17u, 9328u, 2u, 0u},
    {"convoy-narrow", "func", 0u, 7103u, 23u, 15u, 0u, 2u, 0u},
    {"convoy-wide", "smt", 19767u, 14849u, 28u, 25u, 7718u, 2u, 0u},
    {"convoy-wide", "cmp2", 19767u, 14849u, 28u, 25u, 7826u, 2u, 0u},
    {"convoy-wide", "cmp4", 19845u, 15034u, 28u, 25u, 7009u, 2u, 0u},
    {"convoy-wide", "func", 0u, 8769u, 28u, 21u, 0u, 2u, 0u},
    {"deep-chain", "smt", 17831u, 40995u, 39u, 21u, 1005u, 3u, 0u},
    {"deep-chain", "cmp2", 17471u, 40085u, 39u, 19u, 30u, 2u, 0u},
    {"deep-chain", "cmp4", 17379u, 39865u, 39u, 24u, 799u, 2u, 0u},
    {"deep-chain", "func", 0u, 10480u, 39u, 22u, 0u, 2u, 0u},
    {"unbalanced-tree", "smt", 13953u, 33885u, 27u, 15u, 203u, 2u, 0u},
    {"unbalanced-tree", "cmp2", 14184u, 34475u, 27u, 14u, 84u, 2u, 0u},
    {"unbalanced-tree", "cmp4", 14188u, 34485u, 27u, 14u, 443u, 2u, 0u},
    {"unbalanced-tree", "func", 0u, 8015u, 27u, 16u, 0u, 2u, 0u},
    {"oversubscribe", "smt", 19148u, 45824u, 32u, 21u, 203u, 2u, 0u},
    {"oversubscribe", "cmp2", 19225u, 46019u, 32u, 21u, 259u, 2u, 0u},
    {"oversubscribe", "cmp4", 19277u, 46159u, 32u, 21u, 8u, 2u, 0u},
    {"oversubscribe", "func", 0u, 9344u, 32u, 21u, 0u, 3u, 0u},
    {"divdep-pipeline", "smt", 26805u, 139728u, 31u, 30u, 2u, 3u, 0u},
    {"divdep-pipeline", "cmp2", 26735u, 160683u, 31u, 30u, 14u, 3u, 0u},
    {"divdep-pipeline", "cmp4", 26736u, 169098u, 31u, 30u, 7u, 4u, 0u},
    {"divdep-pipeline", "func", 0u, 12440u, 31u, 29u, 0u, 2u, 0u},
};
// --- end golden table ---------------------------------------------

/** The divdep-pipeline publication-log golden (same regen switch). */
constexpr std::uint64_t divdepPublications = 123;
constexpr std::uint64_t divdepPublicationDigest =
    0x0157a307e5dd60b9ULL;

/** The contention-suite backends: the default co-simulation set
 *  minus ffwd (whose counters restate smt's tail). */
std::vector<BackendSpec>
suiteBackends()
{
    std::vector<BackendSpec> out;
    for (auto &spec : defaultBackends())
        if (spec.label != "ffwd")
            out.push_back(std::move(spec));
    return out;
}

struct PointRun
{
    sim::RunStats stats;
    sim::ContentionStats cont;
};

PointRun
runPoint(const Scenario &s, const sim::MachineConfig &cfg)
{
    GeneratedProgram prog = generate(s.params);
    front::AsmProcess proc(prog.image);
    auto backend = sim::makeBackend(cfg);
    backend->addThread(std::make_unique<front::AsmProgram>(proc));
    PointRun r;
    r.stats = backend->run();
    r.cont = backend->contention();
    return r;
}

std::vector<std::pair<const Scenario *, const BackendSpec *>>
coveredPoints(const std::vector<BackendSpec> &backends)
{
    std::vector<std::pair<const Scenario *, const BackendSpec *>> pts;
    for (const auto &s : scenarios())
        for (const auto &b : backends)
            pts.emplace_back(&s, &b);
    return pts;
}

TEST(Scenarios, RegistryIsWellFormed)
{
    ASSERT_GE(scenarios().size(), 6u);
    std::set<std::string> names;
    for (const auto &s : scenarios()) {
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate scenario name " << s.name;
        EXPECT_FALSE(s.description.empty()) << s.name;
        EXPECT_NE(s.params.mode, GenMode::Independent) << s.name;
        const Scenario *found = findScenario(s.name);
        ASSERT_NE(found, nullptr) << s.name;
        EXPECT_EQ(found->params.seed, s.params.seed);
    }
    EXPECT_EQ(findScenario("no-such-scenario"), nullptr);
}

TEST(Scenarios, EveryScenarioAgreesWithTheOracle)
{
    for (const auto &s : scenarios()) {
        DiffOutcome o = runOne(s.params);
        EXPECT_TRUE(o.ok) << s.name << ":\n" << o.detail;
        EXPECT_GT(o.numNodes, 1) << s.name;
    }
}

TEST(Scenarios, RegenerateTable)
{
    if (!std::getenv("CAPSULE_GOLDEN_REGEN"))
        GTEST_SKIP() << "set CAPSULE_GOLDEN_REGEN=1 to print the table";
    auto backends = suiteBackends();
    for (const auto &[s, b] : coveredPoints(backends)) {
        PointRun r = runPoint(*s, b->cfg);
        bool fn = b->label == "func";
        std::printf("    {\"%s\", \"%s\", %lluu, %lluu, %lluu, %lluu, "
                    "%lluu, %lluu, %lluu},\n",
                    s->name.c_str(), b->label.c_str(),
                    (unsigned long long)(fn ? 0 : r.stats.cycles),
                    (unsigned long long)r.stats.instructions,
                    (unsigned long long)r.stats.divisionsRequested,
                    (unsigned long long)r.stats.divisionsGranted,
                    (unsigned long long)(fn ? 0
                                            : r.cont.lockWaitCycles),
                    (unsigned long long)r.cont.peakLockOccupancy,
                    (unsigned long long)r.cont.peakCtxStackDepth);
    }
    const Scenario *divdep = findScenario("divdep-pipeline");
    ASSERT_NE(divdep, nullptr);
    GeneratedProgram prog = generate(divdep->params);
    RefOptions opts;
    opts.orderedObservation = true;
    RefInterp oracle(prog.image, opts);
    RefResult ref = oracle.run();
    ASSERT_TRUE(ref.ok) << ref.error;
    std::printf("divdepPublications = %llu;\n"
                "divdepPublicationDigest = 0x%016llxULL;\n",
                (unsigned long long)ref.publications,
                (unsigned long long)oracle.publicationDigest());
}

TEST(Scenarios, TableCoversEveryPoint)
{
    auto backends = suiteBackends();
    auto pts = coveredPoints(backends);
    ASSERT_EQ(goldens.size(), pts.size())
        << "golden table out of date: regenerate with "
           "CAPSULE_GOLDEN_REGEN=1";
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(goldens[i].scenario, pts[i].first->name) << i;
        EXPECT_EQ(goldens[i].backend, pts[i].second->label) << i;
    }
}

class ScenarioGolden : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ScenarioGolden, MatchesCheckedInValues)
{
    ASSERT_LT(GetParam(), goldens.size());
    const Golden &g = goldens[GetParam()];
    const Scenario *s = findScenario(g.scenario);
    ASSERT_NE(s, nullptr) << g.scenario;
    auto backends = suiteBackends();
    const BackendSpec *spec = nullptr;
    for (const auto &b : backends)
        if (b.label == g.backend)
            spec = &b;
    ASSERT_NE(spec, nullptr) << g.backend;

    PointRun r = runPoint(*s, spec->cfg);
    const std::string at =
        std::string(g.scenario) + " on " + g.backend;
    bool fn = std::string(g.backend) == "func";
    if (!fn) {
        EXPECT_EQ(r.stats.cycles, g.cycles) << at;
        EXPECT_EQ(r.cont.lockWaitCycles, g.lockWaitCycles) << at;
    }
    EXPECT_EQ(r.stats.instructions, g.instructions) << at;
    EXPECT_EQ(r.stats.divisionsRequested, g.divisionsRequested) << at;
    EXPECT_EQ(r.stats.divisionsGranted, g.divisionsGranted) << at;
    EXPECT_EQ(r.cont.divisionsDenied,
              g.divisionsRequested - g.divisionsGranted)
        << at;
    EXPECT_EQ(r.cont.peakLockOccupancy, g.peakLockOccupancy) << at;
    EXPECT_EQ(r.cont.peakCtxStackDepth, g.peakCtxStackDepth) << at;
}

INSTANTIATE_TEST_SUITE_P(Table, ScenarioGolden,
                         ::testing::Range(std::size_t(0),
                                          goldens.size()));

TEST(Scenarios, DivdepPublicationLogIsPinned)
{
    const Scenario *s = findScenario("divdep-pipeline");
    ASSERT_NE(s, nullptr);
    GeneratedProgram prog = generate(s->params);
    RefOptions opts;
    opts.orderedObservation = true;
    RefInterp oracle(prog.image, opts);
    RefResult ref = oracle.run();
    ASSERT_TRUE(ref.ok) << ref.error;
    EXPECT_EQ(ref.publications, divdepPublications);
    EXPECT_EQ(oracle.publicationDigest(), divdepPublicationDigest)
        << "publication order drifted: the dependency spine itself "
           "changed, not just timing";
}

} // namespace
} // namespace capsule::fuzz
