/**
 * @file
 * Unit tests for the sparse simulated memory and the arena allocator.
 */

#include <gtest/gtest.h>

#include "mem/arena.hh"
#include "mem/memory.hh"

namespace capsule::mem
{
namespace
{

TEST(Memory, ZeroInitialised)
{
    Memory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(Memory, ByteRoundTrip)
{
    Memory m;
    m.writeByte(10, 0xab);
    EXPECT_EQ(m.readByte(10), 0xab);
    EXPECT_EQ(m.readByte(11), 0);
}

TEST(Memory, MultiByteLittleEndian)
{
    Memory m;
    m.write(100, 0x0102030405060708ULL, 8);
    EXPECT_EQ(m.readByte(100), 0x08);
    EXPECT_EQ(m.readByte(107), 0x01);
    EXPECT_EQ(m.read(100, 4), 0x05060708u);
    EXPECT_EQ(m.read(104, 4), 0x01020304u);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    Addr boundary = Memory::pageBytes - 4;
    m.write(boundary, 0x1122334455667788ULL, 8);
    EXPECT_EQ(m.read(boundary, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(Memory, CrossPageEveryMisalignment)
{
    // Every straddle split of an 8-byte access: 1..7 bytes on the
    // first page, the rest on the second.
    for (Addr back = 1; back < 8; ++back) {
        Memory m;
        Addr a = Memory::pageBytes - back;
        m.write(a, 0x1122334455667788ULL, 8);
        EXPECT_EQ(m.read(a, 8), 0x1122334455667788ULL) << back;
        EXPECT_EQ(m.pageCount(), 2u) << back;
        // Byte-granular view across the boundary (little-endian).
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(m.readByte(a + Addr(i)),
                      std::uint8_t(0x1122334455667788ULL >> (8 * i)))
                << back << " byte " << i;
    }
}

TEST(Memory, CrossPageFourByte)
{
    Memory m;
    Addr a = 2 * Memory::pageBytes - 2;
    m.write(a, 0xcafebabeu, 4);
    EXPECT_EQ(m.read(a, 4), 0xcafebabeu);
    EXPECT_EQ(m.read(a, 2), 0xbabeu);
    EXPECT_EQ(m.read(a + 2, 2), 0xcafeu);
}

TEST(Memory, CrossPageReadZeroFillsUnmappedPage)
{
    // A straddling read where only one side is mapped zero-fills the
    // unmapped side — in both orders — and maps nothing new.
    {
        Memory m;
        Addr a = Memory::pageBytes - 4;
        m.write(a, 0xddccbbaau, 4);  // low page only
        EXPECT_EQ(m.pageCount(), 1u);
        EXPECT_EQ(m.read(a, 8), 0xddccbbaaULL);
        EXPECT_EQ(m.pageCount(), 1u) << "read must not map pages";
    }
    {
        Memory m;
        Addr a = Memory::pageBytes - 4;
        m.write(Memory::pageBytes, 0x44332211u, 4);  // high page only
        EXPECT_EQ(m.pageCount(), 1u);
        EXPECT_EQ(m.read(a, 8), 0x4433221100000000ULL);
        EXPECT_EQ(m.pageCount(), 1u) << "read must not map pages";
    }
}

TEST(Memory, FullyUnmappedCrossPageReadIsZero)
{
    Memory m;
    EXPECT_EQ(m.read(Memory::pageBytes - 3, 8), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(Memory, TranslationCacheSurvivesNewPageInserts)
{
    // Interleave accesses across many pages so the last-page cache is
    // repeatedly refreshed while the map rehashes underneath it.
    Memory m;
    constexpr int pages = 100;
    for (int p = 0; p < pages; ++p) {
        m.write(Addr(p) * Memory::pageBytes + 8, std::uint64_t(p), 8);
        // Re-read an earlier page after each insert.
        Addr probe = Addr(p / 2) * Memory::pageBytes + 8;
        EXPECT_EQ(m.read(probe, 8), std::uint64_t(p / 2)) << p;
    }
    EXPECT_EQ(m.pageCount(), std::size_t(pages));
    for (int p = 0; p < pages; ++p)
        EXPECT_EQ(m.read(Addr(p) * Memory::pageBytes + 8, 8),
                  std::uint64_t(p));
}

TEST(Memory, BlockCopyAcrossPages)
{
    Memory m;
    std::vector<std::uint8_t> src(3 * Memory::pageBytes);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = std::uint8_t(i * 7 + 1);
    Addr base = Memory::pageBytes - 100;  // straddles 4 pages
    m.writeBlock(base, src.data(), src.size());
    std::vector<std::uint8_t> out(src.size(), 0);
    m.readBlock(base, out.data(), out.size());
    EXPECT_EQ(out, src);
    EXPECT_EQ(m.pageCount(), 4u);
}

TEST(Memory, BlockReadZeroFillsUnmappedSpan)
{
    Memory m;
    m.writeByte(Memory::pageBytes + 1, 0x5a);  // map the middle page
    std::vector<std::uint8_t> out(3 * Memory::pageBytes, 0xff);
    m.readBlock(0, out.data(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i],
                  i == Memory::pageBytes + 1 ? 0x5a : 0) << i;
}

TEST(Memory, DoubleRoundTrip)
{
    Memory m;
    m.writeDouble(64, 3.14159);
    EXPECT_DOUBLE_EQ(m.readDouble(64), 3.14159);
}

TEST(Memory, BlockCopy)
{
    Memory m;
    const char text[] = "capsule";
    m.writeBlock(2000, text, sizeof(text));
    char out[sizeof(text)] = {};
    m.readBlock(2000, out, sizeof(text));
    EXPECT_STREQ(out, "capsule");
}

TEST(Arena, BumpAndAlign)
{
    Arena a(0x1000, 4096);
    Addr p1 = a.alloc(10, 8);
    Addr p2 = a.alloc(10, 8);
    EXPECT_EQ(p1 % 8, 0u);
    EXPECT_EQ(p2 % 8, 0u);
    EXPECT_GT(p2, p1);
    EXPECT_GE(p2 - p1, 10u);

    Addr p3 = a.alloc(1, 64);
    EXPECT_EQ(p3 % 64, 0u);
}

TEST(Arena, UsedAndCapacity)
{
    Arena a(0, 1024);
    EXPECT_EQ(a.capacity(), 1024u);
    a.alloc(100, 1);
    EXPECT_EQ(a.used(), 100u);
    a.reset();
    EXPECT_EQ(a.used(), 0u);
}

TEST(Arena, ResetReusesAddresses)
{
    Arena a(0x2000, 256);
    Addr p1 = a.alloc(64, 8);
    a.reset();
    Addr p2 = a.alloc(64, 8);
    EXPECT_EQ(p1, p2);
}

} // namespace
} // namespace capsule::mem
