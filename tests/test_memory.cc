/**
 * @file
 * Unit tests for the sparse simulated memory and the arena allocator.
 */

#include <gtest/gtest.h>

#include "mem/arena.hh"
#include "mem/memory.hh"

namespace capsule::mem
{
namespace
{

TEST(Memory, ZeroInitialised)
{
    Memory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(Memory, ByteRoundTrip)
{
    Memory m;
    m.writeByte(10, 0xab);
    EXPECT_EQ(m.readByte(10), 0xab);
    EXPECT_EQ(m.readByte(11), 0);
}

TEST(Memory, MultiByteLittleEndian)
{
    Memory m;
    m.write(100, 0x0102030405060708ULL, 8);
    EXPECT_EQ(m.readByte(100), 0x08);
    EXPECT_EQ(m.readByte(107), 0x01);
    EXPECT_EQ(m.read(100, 4), 0x05060708u);
    EXPECT_EQ(m.read(104, 4), 0x01020304u);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    Addr boundary = Memory::pageBytes - 4;
    m.write(boundary, 0x1122334455667788ULL, 8);
    EXPECT_EQ(m.read(boundary, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(Memory, DoubleRoundTrip)
{
    Memory m;
    m.writeDouble(64, 3.14159);
    EXPECT_DOUBLE_EQ(m.readDouble(64), 3.14159);
}

TEST(Memory, BlockCopy)
{
    Memory m;
    const char text[] = "capsule";
    m.writeBlock(2000, text, sizeof(text));
    char out[sizeof(text)] = {};
    m.readBlock(2000, out, sizeof(text));
    EXPECT_STREQ(out, "capsule");
}

TEST(Arena, BumpAndAlign)
{
    Arena a(0x1000, 4096);
    Addr p1 = a.alloc(10, 8);
    Addr p2 = a.alloc(10, 8);
    EXPECT_EQ(p1 % 8, 0u);
    EXPECT_EQ(p2 % 8, 0u);
    EXPECT_GT(p2, p1);
    EXPECT_GE(p2 - p1, 10u);

    Addr p3 = a.alloc(1, 64);
    EXPECT_EQ(p3 % 64, 0u);
}

TEST(Arena, UsedAndCapacity)
{
    Arena a(0, 1024);
    EXPECT_EQ(a.capacity(), 1024u);
    a.alloc(100, 1);
    EXPECT_EQ(a.used(), 100u);
    a.reset();
    EXPECT_EQ(a.used(), 0u);
}

TEST(Arena, ResetReusesAddresses)
{
    Arena a(0x2000, 256);
    Addr p1 = a.alloc(64, 8);
    a.reset();
    Addr p2 = a.alloc(64, 8);
    EXPECT_EQ(p1, p2);
}

} // namespace
} // namespace capsule::mem
