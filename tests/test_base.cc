/**
 * @file
 * Unit tests for the base utilities: RNG determinism, histogram
 * binning and statistics, the table printer, the DOT emitter, and the
 * stats registry.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "base/dot.hh"
#include "base/histogram.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/table.hh"

namespace capsule
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(0, 1'000'000), b.uniform(0, 1'000'000));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.uniform(0, 1'000'000) == b.uniform(0, 1'000'000);
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(7);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, ForkIndependent)
{
    Rng a(5);
    Rng child = a.fork();
    // The child stream should not mirror the parent stream.
    int same = 0;
    for (int i = 0; i < 50; ++i)
        same += a.uniform(0, 1 << 30) == child.uniform(0, 1 << 30);
    EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(9);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 100.0, 10);
    h.add(5.0);    // bin 0
    h.add(95.0);   // bin 9
    h.add(-50.0);  // clamped into bin 0
    h.add(500.0);  // clamped into bin 9
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(Histogram, MeanAndStddev)
{
    Histogram h(0.0, 10.0, 5);
    h.add(2.0);
    h.add(4.0);
    h.add(6.0);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_NEAR(h.stddev(), 1.632993, 1e-5);
    EXPECT_DOUBLE_EQ(h.min(), 2.0);
    EXPECT_DOUBLE_EQ(h.max(), 6.0);
}

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLow(9), 90.0);
    EXPECT_DOUBLE_EQ(h.binHigh(9), 100.0);
}

TEST(Histogram, RenderContainsCounts)
{
    Histogram h(0.0, 10.0, 2);
    h.add(1.0);
    h.add(8.0);
    h.add(9.0);
    std::ostringstream os;
    h.render(os, "test");
    EXPECT_NE(os.str().find("test"), std::string::npos);
    EXPECT_NE(os.str().find("(n=3"), std::string::npos);
}

TEST(TextTable, AlignedRender)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "12345"});
    std::ostringstream os;
    t.render(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("12345"), std::string::npos);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::count(1234567), "1,234,567");
    EXPECT_EQ(TextTable::count(7), "7");
    EXPECT_EQ(TextTable::pct(0.403), "40.3%");
}

TEST(DotGraph, RenderShape)
{
    DotGraph g("t");
    g.addNode("a", "root");
    g.addNode("b");
    g.addEdge("a", "b");
    std::ostringstream os;
    g.render(os);
    std::string s = os.str();
    EXPECT_NE(s.find("digraph t"), std::string::npos);
    EXPECT_NE(s.find("\"a\" -> \"b\""), std::string::npos);
    EXPECT_NE(s.find("label=\"root\""), std::string::npos);
    EXPECT_EQ(g.nodeCount(), 2u);
    EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(Stats, ScalarAndFormula)
{
    Scalar s;
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);

    StatGroup g("grp");
    g.add("count", s, "a counter");
    g.addFormula("double", [&s] { return double(s.value()) * 2; });
    EXPECT_DOUBLE_EQ(g.get("count"), 5.0);
    EXPECT_DOUBLE_EQ(g.get("double"), 10.0);
    EXPECT_TRUE(g.has("count"));
    EXPECT_FALSE(g.has("missing"));

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("grp.count"), std::string::npos);
    EXPECT_NE(os.str().find("a counter"), std::string::npos);
}

TEST(Stats, Reset)
{
    Scalar s;
    s += 10;
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

} // namespace
} // namespace capsule
