/**
 * @file
 * The differential fuzzing subsystem: platform-stable seeding of the
 * generator (pinned streams and source hashes), reference-interpreter
 * semantics against hand-computed programs, the MachineBackend
 * final-state hook, clean campaigns across all timing backends,
 * --jobs determinism, and harness sensitivity (an injected ISA bug
 * must be caught within a bounded number of iterations, with a shrunk
 * .casm repro dumped to the artifacts dir).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "casm/assembler.hh"
#include "front/asm_program.hh"
#include "fuzz/diff_runner.hh"
#include "fuzz/fuzz_rng.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/ref_interp.hh"
#include "harness/thread_pool.hh"
#include "sim/backend.hh"

namespace capsule::fuzz
{
namespace
{

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

// ---------------------------------------------------------------
// FuzzRng: the stream is specified arithmetic, pinned forever.
// ---------------------------------------------------------------

TEST(FuzzRng, PinnedSplitMix64Stream)
{
    FuzzRng rng(42);
    EXPECT_EQ(rng.next(), 0xbdd732262feb6e95ULL);
    EXPECT_EQ(rng.next(), 0x28efe333b266f103ULL);
    EXPECT_EQ(rng.next(), 0x47526757130f9f52ULL);
    EXPECT_EQ(rng.next(), 0x581ce1ff0e4ae394ULL);
}

TEST(FuzzRng, BoundedDrawsStayInRange)
{
    FuzzRng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(13), 13u);
        auto v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

// ---------------------------------------------------------------
// Generator: explicit seeding and reproducibility.
// ---------------------------------------------------------------

TEST(ProgramGen, SameSeedSameBytes)
{
    GenParams p;
    p.seed = 123;
    auto a = generate(p);
    auto b = generate(p);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.image.words, b.image.words);
    EXPECT_EQ(a.numNodes, b.numNodes);
}

TEST(ProgramGen, DifferentSeedsDiffer)
{
    GenParams p;
    p.seed = 1;
    auto a = generate(p);
    p.seed = 2;
    auto b = generate(p);
    EXPECT_NE(a.source, b.source);
}

/**
 * Seed stability across platforms: `--seed N` must reproduce
 * byte-identical program text everywhere, so failing seeds reported
 * by one machine replay on any other. Every draw in the fuzz path is
 * explicit uint64 arithmetic (no <random> distributions, no draws
 * with unspecified evaluation order), making these hashes
 * platform-invariant. If this test fails after an intentional
 * generator change, re-pin the printed values; if it fails otherwise,
 * the fuzz path picked up platform-dependent randomness.
 */
TEST(ProgramGen, PinnedSourceHashes)
{
    const std::uint64_t expected[3] = {
        0xdb968ac118b2c189ULL, // seed 1
        0x794b9e4f19df8f69ULL, // seed 2
        0x0afb9d3cc98e3e91ULL, // seed 3
    };
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        GenParams p;
        p.seed = seed;
        auto prog = generate(p);
        EXPECT_EQ(fnv1a(prog.source), expected[seed - 1])
            << "seed " << seed << " hashes to 0x" << std::hex
            << fnv1a(prog.source);
    }
}

/**
 * The adversarial modes are pinned the same way: every mode's rng
 * stream is platform-invariant, and — critically — the Independent
 * hashes above must NEVER move because of adversarial-mode work (all
 * mode logic is guarded behind `mode != Independent`).
 */
TEST(ProgramGen, PinnedAdversarialSourceHashes)
{
    struct Pin
    {
        GenMode mode;
        std::uint64_t hash[3]; // seeds 1..3
    };
    const Pin pins[] = {
        {GenMode::HotLock,
         {0x23b294e4f6222c2fULL, 0x4ac019d9abb8c9b0ULL,
          0x6efb332340a9fc3eULL}},
        {GenMode::DeepTree,
         {0x4e680fb282b89e29ULL, 0x66518bc42616026eULL,
          0x86754e61d1f72365ULL}},
        {GenMode::Oversubscribe,
         {0xaed95eda59e8e192ULL, 0xa1752b26afc8b7dfULL,
          0xab2203cd2aec0ddfULL}},
        {GenMode::DivisionDependent,
         {0x9563ecb7242056f3ULL, 0xaf69fe63f811d626ULL,
          0xb31826399be034aaULL}},
    };
    for (const auto &pin : pins) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            GenParams p;
            p.seed = seed;
            p.mode = pin.mode;
            auto prog = generate(p);
            EXPECT_EQ(fnv1a(prog.source), pin.hash[seed - 1])
                << genModeName(pin.mode) << " seed " << seed
                << " hashes to 0x" << std::hex << fnv1a(prog.source);
        }
    }
}

TEST(ProgramGen, ModeNamesRoundTrip)
{
    for (GenMode m :
         {GenMode::Independent, GenMode::HotLock, GenMode::DeepTree,
          GenMode::Oversubscribe, GenMode::DivisionDependent})
        EXPECT_EQ(parseGenMode(genModeName(m)), m);
    EXPECT_THROW(parseGenMode("bogus"), std::invalid_argument);
    for (FuzzMode m :
         {FuzzMode::Independent, FuzzMode::HotLock, FuzzMode::DeepTree,
          FuzzMode::Oversubscribe, FuzzMode::DivisionDependent,
          FuzzMode::AdversarialMix})
        EXPECT_EQ(parseFuzzMode(fuzzModeName(m)), m);
    // The adversarial mix rotates through all four stress modes.
    EXPECT_EQ(genModeFor(FuzzMode::AdversarialMix, 0),
              GenMode::HotLock);
    EXPECT_EQ(genModeFor(FuzzMode::AdversarialMix, 1),
              GenMode::DeepTree);
    EXPECT_EQ(genModeFor(FuzzMode::AdversarialMix, 2),
              GenMode::Oversubscribe);
    EXPECT_EQ(genModeFor(FuzzMode::AdversarialMix, 3),
              GenMode::DivisionDependent);
    EXPECT_EQ(genModeFor(FuzzMode::AdversarialMix, 4),
              GenMode::HotLock);
}

TEST(ProgramGen, MetadataIsConsistent)
{
    for (std::uint64_t seed : {5u, 17u, 99u}) {
        GenParams p;
        p.seed = seed;
        auto prog = generate(p);
        EXPECT_GE(prog.numNodes, 1);
        EXPECT_EQ(prog.expectedDivisionRequests,
                  std::uint64_t(prog.numNodes) - 1);
        EXPECT_FALSE(prog.image.words.empty());
        EXPECT_EQ(prog.outputRegs, (std::vector<int>{10, 11}));
        EXPECT_GT(prog.totalCells, 0);
        EXPECT_EQ(prog.cellAddr(0), prog.dataBase);
    }
}

TEST(ProgramGen, ScaledShrinksAndKeepsInvariants)
{
    GenParams p;
    p.maxNodes = 48;
    p.blockOps = 18;
    p.sliceCells = 16;
    GenParams s = p.scaled(0.3);
    EXPECT_EQ(s.seed, p.seed);
    EXPECT_LT(s.maxNodes, p.maxNodes);
    EXPECT_LT(s.blockOps, p.blockOps);
    EXPECT_GE(s.maxDepth, 1);
    EXPECT_GE(s.sliceCells, 4);
    // Power-of-two slice invariant survives scaling.
    EXPECT_EQ(s.sliceCells & (s.sliceCells - 1), 0);
    // Scaled programs still generate and assemble.
    s.seed = 11;
    auto prog = generate(s);
    EXPECT_GE(prog.numNodes, 1);
}

// ---------------------------------------------------------------
// Reference interpreter semantics.
// ---------------------------------------------------------------

TEST(RefInterp, HandComputedProgram)
{
    // nthr is denied (division-serializing), so r4 = -1 and the
    // child block is skipped by the jmp.
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 5\n"
        "  addi r2, r0, 7\n"
        "  add r3, r1, r2\n"
        "  lui r9, 512\n"        // r9 = 0x200000
        "  sd r3, 0(r9)\n"
        "  nthr r4, child\n"
        "  jmp fin\n"
        "child:\n"
        "  kthr\n"
        "fin:\n"
        "  mlock r9\n"
        "  ld r5, 0(r9)\n"
        "  munlock r9\n"
        "  sd r4, 8(r9)\n"
        "  halt\n");
    RefInterp ref(img);
    RefResult res = ref.run();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.intRegs[3], 12);
    EXPECT_EQ(res.intRegs[4], -1);
    EXPECT_EQ(res.intRegs[5], 12);
    EXPECT_EQ(res.divisionRequests, 1u);
    EXPECT_EQ(res.lockAcquires, 1u);
    EXPECT_EQ(res.locksHeldAtEnd, 0u);
    EXPECT_EQ(ref.readCell(0x200000), 12u);
    EXPECT_EQ(ref.readCell(0x200008), std::uint64_t(-1));
    EXPECT_FALSE(ref.log().empty());
    EXPECT_FALSE(ref.renderLog().empty());
}

TEST(RefInterp, AgreesWithAsmProgramOnFloatPaths)
{
    // The oracle is an independent reimplementation; spot-check it
    // against the front end the timing backends use.
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 3\n"
        "  addi r2, r0, 4\n"
        "  fcvt f1, r1\n"
        "  fcvt f2, r2\n"
        "  fdiv f3, f1, f2\n"
        "  fmul f4, f3, f2\n"
        "  fcmp r5, f4, f1\n"
        "  lui r9, 512\n"
        "  fsd f4, 0(r9)\n"
        "  halt\n");
    RefInterp ref(img);
    RefResult res = ref.run();
    ASSERT_TRUE(res.ok) << res.error;

    front::AsmProcess proc(img);
    front::AsmProgram prog(proc);
    isa::DynInst inst;
    while (prog.next(inst)) {
    }
    EXPECT_EQ(res.intRegs[5], prog.regs().intRegs[5]);
    EXPECT_EQ(ref.readCell(0x200000), proc.memory.read(0x200000, 8));
}

TEST(RefInterp, DetectsLockLeakAndWildPc)
{
    auto leak = casm::Assembler::assembleOrDie(
        "  lui r1, 512\n  mlock r1\n  halt\n");
    RefInterp refLeak(leak);
    RefResult leakRes = refLeak.run();
    EXPECT_FALSE(leakRes.ok);
    EXPECT_NE(leakRes.error.find("lock"), std::string::npos);

    auto wild = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 0\n  jr r1\n  halt\n");
    RefInterp refWild(wild);
    RefResult wildRes = refWild.run();
    EXPECT_FALSE(wildRes.ok);
    EXPECT_NE(wildRes.error.find("pc"), std::string::npos);
}

TEST(RefInterp, InjectedBugPerturbsSemantics)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r1, r0, 5\n"
        "  addi r2, r0, 7\n"
        "  add r3, r1, r2\n"
        "  halt\n");
    RefOptions opts;
    opts.inject = InjectedBug::AddOffByOne;
    RefInterp ref(img, opts);
    RefResult res = ref.run();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.intRegs[3], 13); // 5 + 7 (+1 injected)

    EXPECT_EQ(parseInjectedBug("add-off-by-one"),
              InjectedBug::AddOffByOne);
    EXPECT_EQ(parseInjectedBug(""), InjectedBug::None);
    EXPECT_THROW(parseInjectedBug("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------
// The MachineBackend final-state hook.
// ---------------------------------------------------------------

TEST(BackendHook, ThreadFinalizerSnapshotsAncestorOnEveryBackend)
{
    auto img = casm::Assembler::assembleOrDie(
        "  addi r5, r0, 9\n  addi r6, r5, 1\n  halt\n");
    for (const auto &spec : defaultBackends()) {
        front::AsmProcess proc(img);
        auto backend = sim::makeBackend(spec.cfg);
        ThreadId ancestor = invalidThread;
        std::int64_t r5 = 0, r6 = 0;
        int calls = 0;
        backend->setThreadFinalizer(
            [&](ThreadId tid, const front::Program &p) {
                auto *ap =
                    dynamic_cast<const front::AsmProgram *>(&p);
                ASSERT_NE(ap, nullptr);
                if (tid != ancestor)
                    return;
                ++calls;
                r5 = ap->regs().intRegs[5];
                r6 = ap->regs().intRegs[6];
            });
        ancestor = backend->addThread(
            std::make_unique<front::AsmProgram>(proc));
        backend->run();
        EXPECT_EQ(calls, 1) << spec.label;
        EXPECT_EQ(r5, 9) << spec.label;
        EXPECT_EQ(r6, 10) << spec.label;
        EXPECT_EQ(backend->lockedAddrs(), 0u) << spec.label;
        EXPECT_EQ(backend->swappedContexts(), 0u) << spec.label;
    }
}

// ---------------------------------------------------------------
// The differential harness.
// ---------------------------------------------------------------

FuzzConfig
quietConfig(int iters, int jobs)
{
    FuzzConfig cfg;
    cfg.seed = 1;
    cfg.iters = iters;
    cfg.jobs = jobs;
    cfg.shrink = false;
    cfg.artifactsDir = ""; // tests dump artifacts explicitly
    return cfg;
}

TEST(DiffRunner, CleanCampaignAcrossAllBackends)
{
    auto res = runCampaign(quietConfig(30, 2));
    EXPECT_TRUE(res.ok()) << (res.failures.empty()
                                  ? std::string()
                                  : res.failures.front().detail);
    EXPECT_EQ(res.iterations, 30);
    EXPECT_EQ(res.digests.size(), 30u);
    EXPECT_GT(res.nodesTotal, 0u);
    EXPECT_GT(res.wordsTotal, 0u);
}

TEST(DiffRunner, JobsCountDoesNotChangeResults)
{
    auto serial = runCampaign(quietConfig(12, 1));
    auto parallel = runCampaign(quietConfig(12, 8));
    EXPECT_EQ(serial.digests, parallel.digests);
    EXPECT_EQ(serial.nodesTotal, parallel.nodesTotal);
    EXPECT_EQ(serial.wordsTotal, parallel.wordsTotal);
    EXPECT_EQ(serial.failures.size(), parallel.failures.size());
}

TEST(DiffRunner, SingleSeedOutcomeIsReproducible)
{
    GenParams p;
    p.seed = 77;
    auto a = runOne(p);
    auto b = runOne(p);
    EXPECT_TRUE(a.ok) << a.detail;
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.numNodes, b.numNodes);
    EXPECT_EQ(a.words, b.words);
}

/** The acceptance bound: an injected ISA bug must surface within 200
 *  iterations. (In practice every one of these is caught within the
 *  first handful of seeds; 20 leaves a wide robustness margin while
 *  keeping the suite fast.) */
TEST(DiffRunner, InjectedIsaBugsCaughtWithin200Iterations)
{
    for (InjectedBug bug :
         {InjectedBug::AddOffByOne, InjectedBug::XorAsOr,
          InjectedBug::SltInverted}) {
        auto cfg = quietConfig(20, 4);
        cfg.inject = bug;
        auto res = runCampaign(cfg);
        EXPECT_FALSE(res.ok()) << injectedBugName(bug);
        if (!res.failures.empty()) {
            EXPECT_LT(res.failures.front().iteration, 200)
                << injectedBugName(bug);
            EXPECT_FALSE(res.failures.front().detail.empty());
        }
    }
}

/**
 * The ordered-observation oracle: in DivisionDependent mode the
 * program's lock-guarded stores are *publications* whose serial order
 * the oracle records; the log digest is a deterministic function of
 * the seed and pins the dependency order itself, not just the final
 * state.
 */
TEST(RefInterp, OrderedObservationRecordsPublications)
{
    GenParams p;
    p.seed = 9;
    p.mode = GenMode::DivisionDependent;
    auto prog = generate(p);

    RefOptions opts;
    opts.orderedObservation = true;
    RefInterp a(prog.image, opts);
    RefResult ra = a.run();
    ASSERT_TRUE(ra.ok) << ra.error;
    // Every mailbox/result publish and accumulator update is a
    // lock-guarded store, so a multi-node program must publish.
    EXPECT_GT(ra.publications, 0u);
    EXPECT_EQ(a.publications().size(), ra.publications);

    RefInterp b(prog.image, opts);
    RefResult rb = b.run();
    EXPECT_EQ(ra.publications, rb.publications);
    EXPECT_EQ(a.publicationDigest(), b.publicationDigest());

    // Without the mode the same run records nothing.
    RefInterp c(prog.image, RefOptions{});
    RefResult rc = c.run();
    ASSERT_TRUE(rc.ok);
    EXPECT_EQ(rc.publications, 0u);
}

/**
 * The headline acceptance gate of the adversarial suite: a
 * 1000-iteration campaign rotating through all four adversarial
 * modes, co-simulated on every backend, with zero divergences. Quick
 * scale keeps this seconds-cheap at any --jobs count.
 */
TEST(DiffRunner, AdversarialCampaign1000IterationsClean)
{
    FuzzConfig cfg = quietConfig(1000, 0);
    cfg.jobs = int(harness::hostConcurrency());
    cfg.mode = FuzzMode::AdversarialMix;
    cfg.sizeScale = 0.5;
    auto res = runCampaign(cfg);
    EXPECT_TRUE(res.ok()) << (res.failures.empty()
                                  ? std::string()
                                  : res.failures.front().detail);
    EXPECT_EQ(res.iterations, 1000);
}

/**
 * The bugfix acceptance test: a convoy program on an under-provisioned
 * machine must surface as a *structured* simulation-error outcome the
 * campaign reports and shrinks — not a process abort that kills the
 * whole run (which is exactly what the pre-§10 CAPSULE_FATAL did).
 */
TEST(DiffRunner, CapacityOverflowIsAShrinkableOutcome)
{
    namespace fs = std::filesystem;
    fs::path dir =
        fs::temp_directory_path() / "capsule_fuzz_simerr_artifacts";
    fs::remove_all(dir);

    // One lock-table entry: the convoy's accumulator and completion
    // counter cannot be held concurrently, so the run overflows.
    sim::MachineConfig tiny = sim::MachineConfig::somt();
    tiny.lockTableCapacity = 1;
    tiny.maxCycles = 50'000'000;

    FuzzConfig cfg = quietConfig(3, 1);
    cfg.mode = FuzzMode::HotLock;
    cfg.shrink = true;
    cfg.artifactsDir = dir.string();
    cfg.backends = {{"tiny-locktable", tiny}};
    auto res = runCampaign(cfg);

    ASSERT_FALSE(res.ok())
        << "expected the convoy to overflow the 1-entry lock table";
    const auto &f = res.failures.front();
    EXPECT_NE(f.detail.find("simulation error (lock-table-overflow)"),
              std::string::npos)
        << f.detail;
    // The shrink ladder worked on the structured outcome like on any
    // divergence, and the repro was dumped.
    EXPECT_LE(f.shrunkNodes, f.numNodes);
    ASSERT_FALSE(f.artifactPath.empty());
    EXPECT_TRUE(fs::exists(f.artifactPath));

    fs::remove_all(dir);
}

TEST(DiffRunner, ShrinksFailuresAndDumpsCasmRepro)
{
    namespace fs = std::filesystem;
    fs::path dir =
        fs::temp_directory_path() / "capsule_fuzz_test_artifacts";
    fs::remove_all(dir);

    FuzzConfig cfg = quietConfig(2, 1);
    cfg.inject = InjectedBug::AddOffByOne;
    cfg.shrink = true;
    cfg.artifactsDir = dir.string();
    auto res = runCampaign(cfg);
    ASSERT_FALSE(res.ok());

    const auto &f = res.failures.front();
    EXPECT_LE(f.shrunkNodes, f.numNodes);
    ASSERT_FALSE(f.artifactPath.empty());
    EXPECT_TRUE(fs::exists(f.artifactPath));

    std::ifstream in(f.artifactPath);
    std::string first;
    std::getline(in, first);
    EXPECT_NE(first.find("differential-fuzz repro"),
              std::string::npos);
    // The companion report carries the divergence + serial log.
    fs::path report = fs::path(f.artifactPath).replace_extension();
    EXPECT_TRUE(fs::exists(report.string() + ".report.txt"));

    fs::remove_all(dir);
}

} // namespace
} // namespace capsule::fuzz
