/**
 * @file
 * Golden-stats regression net: every registry workload, run at quick
 * scale with seed 1 on the SMT (somt) backend — plus two workloads on
 * each baseline machine, plus the whole registry on the functional
 * backend — must reproduce the checked-in RunStats and metric values
 * exactly. The simulator is deterministic (DESIGN.md §4), so any
 * drift here is a real behaviour change: either a bug, or an
 * intentional remodel that must update the goldens *consciously*
 * instead of silently shifting the paper numbers.
 *
 * The func rows pin final-state behaviour only — instruction and
 * protocol-event counts plus the workload metrics. Cycle-domain
 * fields are NOT compared (and are recorded as 0): the functional
 * tier models no timing, and pinning its serialized clock would turn
 * every scheduler-neutral change into a golden churn.
 *
 * To regenerate after an intentional change:
 *
 *   CAPSULE_GOLDEN_REGEN=1 ./tests/test_golden_stats
 *
 * prints the golden table in source form; paste it over the table
 * below.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "workloads/workload.hh"

namespace capsule
{
namespace
{

/** One checked-in expectation. */
struct Golden
{
    const char *workload;
    const char *machine;  ///< somt / smt-static / superscalar
    Cycle cycles;
    std::uint64_t instructions;
    std::uint64_t divisionsRequested;
    std::uint64_t divisionsGranted;
    std::uint64_t threadDeaths;
    std::uint64_t lockConflicts;
    std::uint64_t swapsOut;
    Cycle serialCycles;
    /** Workload metric map, in insertion order. */
    std::vector<std::pair<std::string, double>> metrics;
};

// --- golden table (regenerate with CAPSULE_GOLDEN_REGEN=1) --------
const std::vector<Golden> goldens = {
    {"dijkstra", "somt", 6304u, 19138u, 1464u, 49u, 49u, 80u, 0u, 0u,
     {}},
    {"dijkstra-normal", "somt", 33440u, 8726u, 0u, 0u, 0u, 0u, 0u, 0u,
     {}},
    {"quicksort", "somt", 27446u, 50734u, 113u, 84u, 84u, 2u, 0u, 0u,
     {}},
    {"lzw", "somt", 3750u, 6199u, 89u, 12u, 12u, 0u, 0u, 0u,
     {{"chunks", 13}, {"codes", 524}}},
    {"perceptron", "somt", 25300u, 44292u, 719u, 20u, 20u, 0u, 0u, 0u,
     {}},
    {"mcf", "somt", 65328u, 162921u, 1844u, 356u, 356u, 161u, 0u, 0u,
     {{"best", 35}}},
    {"vpr", "somt", 6806u, 13498u, 30u, 30u, 30u, 3u, 0u, 0u,
     {{"iterations", 5}, {"overused_final", 0}}},
    {"bzip2", "somt", 26076u, 69874u, 81u, 62u, 62u, 1u, 0u, 0u,
     {}},
    {"crafty", "somt", 4070u, 20691u, 7u, 7u, 7u, 1082u, 0u, 0u,
     {{"value", 665}, {"spin_iterations", 1249}}},
    {"dijkstra", "superscalar", 98857u, 116715u, 9332u, 0u, 0u, 0u,
     0u, 0u, {}},
    {"quicksort", "superscalar", 44715u, 49390u, 113u, 0u, 0u, 0u, 0u,
     0u, {}},
    {"dijkstra", "smt-static", 6380u, 18668u, 1478u, 7u, 7u, 78u, 0u,
     0u, {}},
    {"quicksort", "smt-static", 32796u, 49502u, 113u, 7u, 7u, 0u, 0u,
     0u, {}},
    {"dijkstra", "func", 0u, 22853u, 1705u, 99u, 99u, 57u, 0u, 0u,
     {}},
    {"dijkstra-normal", "func", 0u, 8726u, 0u, 0u, 0u, 0u, 0u, 0u,
     {}},
    {"quicksort", "func", 0u, 50734u, 113u, 84u, 84u, 0u, 0u, 0u,
     {}},
    {"lzw", "func", 0u, 6142u, 83u, 11u, 11u, 0u, 0u, 0u,
     {{"chunks", 12}, {"codes", 510}}},
    {"perceptron", "func", 0u, 44198u, 765u, 15u, 15u, 0u, 0u, 0u,
     {}},
    {"mcf", "func", 0u, 162765u, 1844u, 346u, 346u, 1555u, 0u, 0u,
     {{"best", 35}}},
    {"vpr", "func", 0u, 13582u, 30u, 30u, 30u, 4u, 0u, 0u,
     {{"iterations", 5}, {"overused_final", 0}}},
    {"bzip2", "func", 0u, 69922u, 81u, 65u, 65u, 0u, 0u, 0u,
     {}},
    {"crafty", "func", 0u, 3441u, 7u, 7u, 7u, 56u, 0u, 0u,
     {{"value", 665}, {"spin_iterations", 99}}},
};
// --- end golden table ---------------------------------------------

sim::MachineConfig
machineFor(const std::string &name)
{
    if (name == "superscalar")
        return sim::MachineConfig::superscalar();
    if (name == "smt-static")
        return sim::MachineConfig::smtStatic();
    if (name == "func") {
        auto cfg = sim::MachineConfig::somt();
        cfg.backend = "func";
        return cfg;
    }
    return sim::MachineConfig::somt();
}

/** True for rows whose cycle-domain fields are not golden. */
bool
isFunctional(const std::string &machine)
{
    return machine == "func";
}

/** The covered (workload, machine) points: the whole registry on
 *  somt, plus two division-heavy workloads on each baseline, plus
 *  the whole registry on the functional backend (final state only). */
std::vector<std::pair<std::string, std::string>>
coveredPoints()
{
    std::vector<std::pair<std::string, std::string>> pts;
    for (const auto &name : wl::WorkloadRegistry::builtin().names())
        pts.emplace_back(name, "somt");
    for (const char *m : {"superscalar", "smt-static"}) {
        pts.emplace_back("dijkstra", m);
        pts.emplace_back("quicksort", m);
    }
    for (const auto &name : wl::WorkloadRegistry::builtin().names())
        pts.emplace_back(name, "func");
    return pts;
}

wl::WorkloadResult
runPoint(const std::string &workload, const std::string &machine)
{
    return wl::WorkloadRegistry::builtin().run(
        workload, machineFor(machine), {wl::ScaleLevel::Quick, 1});
}

TEST(GoldenStats, RegenerateTable)
{
    if (!std::getenv("CAPSULE_GOLDEN_REGEN"))
        GTEST_SKIP() << "set CAPSULE_GOLDEN_REGEN=1 to print the table";
    for (const auto &[workload, machine] : coveredPoints()) {
        auto r = runPoint(workload, machine);
        // Functional rows record no cycle-domain values (see above).
        bool fn = isFunctional(machine);
        std::printf("    {\"%s\", \"%s\", %lluu, %lluu, %lluu, %lluu, "
                    "%lluu, %lluu, %lluu, %lluu,\n     {",
                    workload.c_str(), machine.c_str(),
                    (unsigned long long)(fn ? 0 : r.stats.cycles),
                    (unsigned long long)r.stats.instructions,
                    (unsigned long long)r.stats.divisionsRequested,
                    (unsigned long long)r.stats.divisionsGranted,
                    (unsigned long long)r.stats.threadDeaths,
                    (unsigned long long)r.stats.lockConflicts,
                    (unsigned long long)r.stats.swapsOut,
                    (unsigned long long)(fn ? 0 : r.serialCycles));
        for (std::size_t i = 0; i < r.metrics.size(); ++i)
            std::printf("%s{\"%s\", %.17g}", i ? ", " : "",
                        r.metrics[i].first.c_str(),
                        r.metrics[i].second);
        std::printf("}},\n");
    }
}

TEST(GoldenStats, TableCoversEveryRegistryWorkload)
{
    auto pts = coveredPoints();
    ASSERT_EQ(goldens.size(), pts.size())
        << "golden table out of date: regenerate with "
           "CAPSULE_GOLDEN_REGEN=1";
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(goldens[i].workload, pts[i].first) << i;
        EXPECT_EQ(goldens[i].machine, pts[i].second) << i;
    }
}

class GoldenPoint : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GoldenPoint, MatchesCheckedInValues)
{
    ASSERT_LT(GetParam(), goldens.size());
    const Golden &g = goldens[GetParam()];
    auto r = runPoint(g.workload, g.machine);

    EXPECT_TRUE(r.correct) << g.workload;
    if (!isFunctional(g.machine)) {
        EXPECT_EQ(r.stats.cycles, g.cycles);
        EXPECT_EQ(r.serialCycles, g.serialCycles);
    }
    EXPECT_EQ(r.stats.instructions, g.instructions);
    EXPECT_EQ(r.stats.divisionsRequested, g.divisionsRequested);
    EXPECT_EQ(r.stats.divisionsGranted, g.divisionsGranted);
    EXPECT_EQ(r.stats.threadDeaths, g.threadDeaths);
    EXPECT_EQ(r.stats.lockConflicts, g.lockConflicts);
    EXPECT_EQ(r.stats.swapsOut, g.swapsOut);
    // No backend in the table grants remotely.
    EXPECT_EQ(r.stats.divisionsRemote, 0u);

    ASSERT_EQ(r.metrics.size(), g.metrics.size()) << g.workload;
    for (std::size_t i = 0; i < g.metrics.size(); ++i) {
        EXPECT_EQ(r.metrics[i].first, g.metrics[i].first)
            << g.workload;
        // Metrics are ratios/counts of deterministic integer events;
        // exact IEEE reproduction is part of the contract.
        EXPECT_DOUBLE_EQ(r.metrics[i].second, g.metrics[i].second)
            << g.workload << " metric " << g.metrics[i].first;
    }
}

std::string
goldenPointName(const ::testing::TestParamInfo<std::size_t> &info)
{
    if (info.param >= goldens.size())
        return "out_of_range_" + std::to_string(info.param);
    std::string n = std::string(goldens[info.param].workload) + "_" +
                    goldens[info.param].machine;
    for (auto &c : n)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, GoldenPoint,
    ::testing::Range(std::size_t(0),
                     std::max(goldens.size(), std::size_t(1))),
    goldenPointName);

} // namespace
} // namespace capsule
