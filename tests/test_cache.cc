/**
 * @file
 * Unit tests for the cache model and the Table-1 memory hierarchy:
 * hit/miss behaviour, LRU replacement, write-back traffic, and the
 * latency chain L1 -> L2 -> memory.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace capsule::sim
{
namespace
{

CacheParams
tiny(int size, int assoc, int line, Cycle lat)
{
    CacheParams p;
    p.name = "t";
    p.sizeBytes = std::uint64_t(size);
    p.assoc = assoc;
    p.lineBytes = line;
    p.hitLatency = lat;
    return p;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tiny(1024, 2, 32, 1), nullptr, 100);
    EXPECT_EQ(c.access(0x40, false), 101u);  // miss: 1 + 100
    EXPECT_EQ(c.access(0x40, false), 1u);    // hit
    EXPECT_EQ(c.access(0x5f, false), 1u);    // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruReplacement)
{
    // Direct-mapped-ish: 2-way, 2 sets, 32B lines = 128B cache.
    Cache c(tiny(128, 2, 32, 1), nullptr, 100);
    // Three lines mapping to set 0: addresses 0, 64, 128.
    c.access(0, false);
    c.access(64, false);
    c.access(0, false);    // touch 0 so 64 is LRU
    c.access(128, false);  // evicts 64
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(64));
    EXPECT_TRUE(c.probe(128));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache l2(tiny(1024, 4, 32, 10), nullptr, 100);
    Cache l1(tiny(64, 1, 32, 1), &l2, 100);
    l1.access(0, true);     // dirty line in set 0
    l1.access(64, false);   // evicts dirty 0 -> writeback to L2
    // L2 saw: fill for 0, fill for 64, then writeback of 0.
    EXPECT_GE(l2.hits() + l2.misses(), 3u);
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache c(tiny(1024, 2, 32, 1), nullptr, 100);
    EXPECT_FALSE(c.probe(0x80));
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(tiny(1024, 2, 32, 1), nullptr, 100);
    c.access(0x100, false);
    EXPECT_TRUE(c.probe(0x100));
    c.flush();
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Hierarchy, Table1Latencies)
{
    MemoryHierarchy::Params p;  // Table-1 defaults
    MemoryHierarchy mem(p);

    // Cold: L1 miss + L2 miss -> 1 + 12 + 200.
    EXPECT_EQ(mem.dataAccess(0x1000, false), 213u);
    // L1 hit.
    EXPECT_EQ(mem.dataAccess(0x1000, false), 1u);

    // Evict nothing; a nearby line misses L1 but hits L2 only after
    // it was filled; a fresh line far away: full path again.
    EXPECT_EQ(mem.dataAccess(0x200000, false), 213u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryHierarchy::Params p;
    // Shrink L1D to force quick evictions.
    p.l1d = CacheParams{"l1d", 128, 1, 32, 1};
    MemoryHierarchy mem(p);

    mem.dataAccess(0, false);      // fills L1 set 0 and L2
    mem.dataAccess(128, false);    // evicts line 0 from tiny L1
    mem.dataAccess(256, false);
    // Line 0 still lives in L2: 1 + 12.
    EXPECT_EQ(mem.dataAccess(0, false), 13u);
}

TEST(Hierarchy, SeparateInstructionAndDataPaths)
{
    MemoryHierarchy::Params p;
    MemoryHierarchy mem(p);
    mem.fetchAccess(0x4000);
    EXPECT_EQ(mem.l1i().misses(), 1u);
    EXPECT_EQ(mem.l1d().misses(), 0u);
    // Instruction line now in the unified L2: a data access to the
    // same line hits L2.
    EXPECT_EQ(mem.dataAccess(0x4000, false), 13u);
}

TEST(Hierarchy, StatsRegistration)
{
    MemoryHierarchy::Params p;
    MemoryHierarchy mem(p);
    mem.dataAccess(0, false);
    StatGroup g("mem");
    mem.registerStats(g);
    EXPECT_EQ(g.get("l1d.misses"), 1.0);
    EXPECT_EQ(g.get("l1d.hits"), 0.0);
}

TEST(Cache, VictimPolicyFillsInvalidWaysBeforeLru)
{
    // Pin the (historical) victim-selection order the single-pass
    // probe+victim scan must preserve: from an all-invalid 4-way set,
    // fills land in ways 1, 2, 3 and only then way 0 (way 0 seeds
    // the LRU comparison but the first invalid way at index >= 1 wins
    // outright), so the first four distinct lines coexist with no
    // eviction and the fifth evicts the LRU, not a fresh line.
    Cache c(tiny(128, 4, 32, 1), nullptr, 100);  // one 4-way set
    c.access(0, false);
    c.access(32, false);
    c.access(64, false);
    c.access(96, false);
    EXPECT_EQ(c.misses(), 4u);
    for (Addr a : {0u, 32u, 64u, 96u})
        EXPECT_TRUE(c.probe(a)) << a;
    c.access(128, false);  // evicts line 0, the LRU
    EXPECT_FALSE(c.probe(0));
    for (Addr a : {32u, 64u, 96u, 128u})
        EXPECT_TRUE(c.probe(a)) << a;
}

TEST(Cache, SinglePassHitCountsUnchangedByInvalidWays)
{
    // A hit in a later way must still be found when an earlier way is
    // invalid (the victim tracking must not cut the probe short).
    Cache c(tiny(128, 4, 32, 1), nullptr, 100);
    c.access(0, false);     // lands in way 1 (first invalid >= 1)
    c.access(0, false);     // hit
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, MissRateComputation)
{
    Cache c(tiny(1024, 2, 32, 1), nullptr, 100);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
}

} // namespace
} // namespace capsule::sim
