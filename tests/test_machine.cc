/**
 * @file
 * Pipeline tests: timing sanity on CapISA microbenchmarks (ILP vs
 * dependence chains, load latency, SMT scaling), the nthr division
 * path, mlock mutual exclusion under the fetch-gated protocol, and
 * machine statistics.
 */

#include <gtest/gtest.h>

#include "casm/assembler.hh"
#include "front/asm_program.hh"
#include "sim/machine.hh"

namespace capsule::sim
{
namespace
{

struct AsmRun
{
    RunStats stats;
    std::unique_ptr<front::AsmProcess> proc;
};

AsmRun
runAsm(const std::string &source, MachineConfig cfg)
{
    auto img = casm::Assembler::assembleOrDie(source);
    AsmRun r;
    r.proc = std::make_unique<front::AsmProcess>(img);
    Machine m(cfg);
    m.addThread(std::make_unique<front::AsmProgram>(*r.proc));
    r.stats = m.run();
    return r;
}

std::string
repeatLine(const std::string &line, int n)
{
    std::string out;
    for (int i = 0; i < n; ++i)
        out += line;
    return out;
}

TEST(Machine, RunsToCompletion)
{
    auto r = runAsm("  addi r1, r0, 1\n  halt\n",
                    MachineConfig::superscalar());
    EXPECT_EQ(r.stats.instructions, 2u);
    EXPECT_GT(r.stats.cycles, 0u);
}

/** A warm loop: `body` repeated per iteration, `iters` trips. */
std::string
loopOf(const std::string &body, int iters)
{
    return "  addi r9, r0, " + std::to_string(iters) + "\n"
           "loop:\n" + body +
           "  addi r9, r9, -1\n"
           "  bne r9, r0, loop\n"
           "  halt\n";
}

TEST(Machine, IndependentIlpBeatsDependentChain)
{
    // 8 independent adds per iteration vs 8 serially dependent ones;
    // warm code so the I-cache is not the bottleneck.
    auto ri = runAsm(loopOf(repeatLine("  addi r1, r0, 1\n", 8), 200),
                     MachineConfig::superscalar());
    auto rc = runAsm(loopOf(repeatLine("  addi r1, r1, 1\n", 8), 200),
                     MachineConfig::superscalar());
    EXPECT_LT(ri.stats.cycles * 2, rc.stats.cycles);
}

TEST(Machine, ChainIpcNearOne)
{
    // A dependent chain retires ~1 instruction per cycle once warm.
    auto r = runAsm(loopOf(repeatLine("  addi r1, r1, 1\n", 16), 100),
                    MachineConfig::superscalar());
    EXPECT_GT(r.stats.ipc, 0.7);
    EXPECT_LT(r.stats.ipc, 1.4);
}

TEST(Machine, ImultLatencySlowsChain)
{
    auto ra = runAsm(loopOf(repeatLine("  add r1, r1, r1\n", 8), 200),
                     MachineConfig::superscalar());
    auto rm = runAsm(loopOf(repeatLine("  mul r1, r1, r1\n", 8), 200),
                     MachineConfig::superscalar());
    // IMULT latency 3 vs IALU 1: the multiply chain is ~2-3x slower.
    EXPECT_GT(rm.stats.cycles, ra.stats.cycles * 3 / 2);
}

TEST(Machine, ColdLoadPaysMemoryLatency)
{
    // One dependent cold load: full L1+L2+memory path dominates.
    auto r = runAsm("  lui r1, 4\n"  // r1 = 0x4000
                    "  ld r2, 0(r1)\n"
                    "  add r3, r2, r2\n"
                    "  halt\n",
                    MachineConfig::superscalar());
    EXPECT_GT(r.stats.cycles, 200u);
}

TEST(Machine, WarmLoadsAreFast)
{
    // The same line accessed in a loop: only the first access misses.
    auto r = runAsm("  lui r1, 4\n" +
                        loopOf("  ld r2, 0(r1)\n  add r3, r2, r2\n",
                               100),
                    MachineConfig::superscalar());
    // 400+ committed instructions; one 213-cycle miss amortised away.
    EXPECT_GT(r.stats.ipc, 0.5);
}

TEST(Machine, BranchMispredictsCostCycles)
{
    // A data-dependent unpredictable-ish pattern: alternating taken /
    // not-taken resolves after warmup; compare against an always-
    // taken loop of the same trip count.
    std::string predictable =
        "  addi r1, r0, 200\n"
        "top:\n"
        "  addi r1, r1, -1\n"
        "  bne r1, r0, top\n"
        "  halt\n";
    auto r = runAsm(predictable, MachineConfig::superscalar());
    // Well-predicted loop: much faster than 200 mispredict penalties.
    EXPECT_LT(r.stats.cycles, 2000u);
    EXPECT_GT(r.stats.bpredAccuracy, 0.9);
}

TEST(Machine, NthrGrantedOnSomt)
{
    // Parent forks a child that stores 7 to memory; parent stores 5.
    auto src = "  lui r10, 8\n"  // r10 = 0x8000
               "  nthr r1, child\n"
               "  addi r2, r0, 5\n"
               "  sd r2, 0(r10)\n"
               "  halt\n"
               "child:\n"
               "  addi r3, r0, 7\n"
               "  sd r3, 8(r10)\n"
               "  kthr\n";
    auto r = runAsm(src, MachineConfig::somt());
    EXPECT_EQ(r.stats.divisionsRequested, 1u);
    EXPECT_EQ(r.stats.divisionsGranted, 1u);
    EXPECT_EQ(r.stats.threadDeaths, 1u);
    EXPECT_EQ(r.proc->memory.read(0x8000, 8), 5u);
    EXPECT_EQ(r.proc->memory.read(0x8008, 8), 7u);
    EXPECT_EQ(r.stats.peakLiveThreads, 2);
}

TEST(Machine, NthrDeniedOnSuperscalar)
{
    auto src = "  nthr r1, child\n"
               "  slti r2, r1, 0\n"  // r2 = (r1 == -1)
               "  halt\n"
               "child:\n"
               "  kthr\n";
    auto r = runAsm(src, MachineConfig::superscalar());
    EXPECT_EQ(r.stats.divisionsRequested, 1u);
    EXPECT_EQ(r.stats.divisionsGranted, 0u);
    EXPECT_EQ(r.stats.peakLiveThreads, 1);
}

TEST(Machine, SmtParallelSpeedup)
{
    // Four-way divisible dependent work. The forking binary runs one
    // warm loop per thread; the sequential baseline runs 4x the trip
    // count on one thread. SMT must overlap the chains.
    std::string loop =
        "  addi r2, r2, 1\n  addi r2, r2, 1\n  addi r2, r2, 1\n"
        "  addi r2, r2, 1\n  addi r2, r2, 1\n  addi r2, r2, 1\n";
    std::string worker =
        "  addi r9, r0, 200\n"
        "wl%:\n" + loop +
        "  addi r9, r9, -1\n"
        "  bne r9, r0, wl%\n";
    auto instantiate = [&](const std::string &tag) {
        std::string s = worker;
        std::string::size_type pos;
        while ((pos = s.find('%')) != std::string::npos)
            s.replace(pos, 1, tag);
        return s;
    };
    std::string forking = "  nthr r1, w1\n"
                          "  nthr r1, w2\n"
                          "  nthr r1, w3\n" +
                          instantiate("0") +
                          "  halt\n"
                          "w1:\n" + instantiate("1") + "  kthr\n" +
                          "w2:\n" + instantiate("2") + "  kthr\n" +
                          "w3:\n" + instantiate("3") + "  kthr\n";
    std::string sequential = instantiate("0") + instantiate("1") +
                             instantiate("2") + instantiate("3") +
                             "  halt\n";
    auto somt = runAsm(forking, MachineConfig::somt());
    auto mono = runAsm(sequential, MachineConfig::superscalar());
    EXPECT_EQ(somt.stats.divisionsGranted, 3u);
    // Four overlapped chains: expect a clear (>1.5x) win.
    EXPECT_LT(somt.stats.cycles * 3, mono.stats.cycles * 2);
}

TEST(Machine, MlockMutualExclusion)
{
    // Two threads increment a shared counter 50 times each under the
    // hardware lock; the total must be exactly 100.
    std::string loop =
        "loopP:\n"
        "  mlock r10\n"
        "  ld r1, 0(r10)\n"
        "  addi r1, r1, 1\n"
        "  sd r1, 0(r10)\n"
        "  munlock r10\n"
        "  addi r2, r2, 1\n"
        "  bne r2, r3, loopP\n"
        "  halt\n"
        "child:\n"
        "loopC:\n"
        "  mlock r10\n"
        "  ld r1, 0(r10)\n"
        "  addi r1, r1, 1\n"
        "  sd r1, 0(r10)\n"
        "  munlock r10\n"
        "  addi r4, r4, 1\n"
        "  bne r4, r3, loopC\n"
        "  kthr\n";
    std::string src = "  lui r10, 9\n"  // r10 = 0x9000
                      "  addi r3, r0, 50\n"
                      "  nthr r5, child\n" +
                      loop;
    auto r = runAsm(src, MachineConfig::somt());
    EXPECT_EQ(r.stats.divisionsGranted, 1u);
    EXPECT_EQ(r.proc->memory.read(0x9000, 8), 100u);
    EXPECT_GT(r.stats.lockConflicts, 0u);
}

TEST(Machine, DeterministicCycleCounts)
{
    std::string src = "  addi r3, r0, 64\n"
                      "top:\n"
                      "  nthr r1, child\n"
                      "  addi r3, r3, -1\n"
                      "  bne r3, r0, top\n"
                      "  halt\n"
                      "child:\n"
                      "  addi r2, r0, 1\n"
                      "  kthr\n";
    auto r1 = runAsm(src, MachineConfig::somt());
    auto r2 = runAsm(src, MachineConfig::somt());
    EXPECT_EQ(r1.stats.cycles, r2.stats.cycles);
    EXPECT_EQ(r1.stats.instructions, r2.stats.instructions);
    EXPECT_EQ(r1.stats.divisionsGranted, r2.stats.divisionsGranted);
}

TEST(Machine, DeathThrottleEngagesOnTinyWorkers)
{
    // Spawn workers that die immediately: the throttle must deny a
    // large share of requests.
    std::string src = "  addi r3, r0, 400\n"
                      "top:\n"
                      "  nthr r1, child\n"
                      "  addi r3, r3, -1\n"
                      "  bne r3, r0, top\n"
                      "  halt\n"
                      "child:\n"
                      "  kthr\n";
    auto somt = runAsm(src, MachineConfig::somt());
    EXPECT_GT(somt.stats.divisionsThrottled, 0u);
    EXPECT_LT(somt.stats.divisionsGranted,
              somt.stats.divisionsRequested);
}

TEST(Machine, StatsSnapshotConsistent)
{
    auto r = runAsm("  addi r1, r0, 1\n  halt\n",
                    MachineConfig::somt());
    EXPECT_DOUBLE_EQ(r.stats.ipc, double(r.stats.instructions) /
                                      double(r.stats.cycles));
}

} // namespace
} // namespace capsule::sim
