/**
 * @file
 * The persistent farm daemon (harness/daemon.hh, DESIGN.md §12): the
 * pinned byte layout of the submission/response wire protocol, the
 * incremental message parser, and the service contracts — two
 * concurrent clients receive results byte-identical to a direct
 * FarmRunner run of the same points, a client that disconnects
 * mid-campaign does not disturb another client's campaign, and a
 * client that sends half a header then hangs is reaped within the
 * I/O deadline (the daemon twin of the coordinator's partial-frame
 * stall fix).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "harness/daemon.hh"
#include "harness/daemon_client.hh"
#include "harness/farm.hh"
#include "workloads/workload.hh"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace capsule
{
namespace
{

namespace fs = std::filesystem;
using harness::daemonwire::JobSpec;
using harness::daemonwire::MsgHeader;

// ---------------------------------------------------------------
// wire protocol
// ---------------------------------------------------------------

TEST(DaemonWire, MessageHeaderBytesArePinned)
{
    MsgHeader h;
    h.type = harness::daemonwire::msgResult;
    h.a = 0x0102030405060708ULL;
    h.b = 1;
    h.payloadLen = 5;
    unsigned char out[MsgHeader::wireSize];
    h.encode(out);
    // Four LE u64s: type, a, b, payloadLen.
    const unsigned char want[MsgHeader::wireSize] = {
        2, 0, 0, 0, 0, 0, 0, 0, //
        8, 7, 6, 5, 4, 3, 2, 1, //
        1, 0, 0, 0, 0, 0, 0, 0, //
        5, 0, 0, 0, 0, 0, 0, 0, //
    };
    EXPECT_EQ(std::memcmp(out, want, sizeof want), 0);

    const MsgHeader back = MsgHeader::decode(out);
    EXPECT_EQ(back.type, h.type);
    EXPECT_EQ(back.a, h.a);
    EXPECT_EQ(back.b, h.b);
    EXPECT_EQ(back.payloadLen, h.payloadLen);
}

TEST(DaemonWire, JobListRoundTrip)
{
    const std::vector<JobSpec> jobs = {
        {"quicksort", "smt", "quick", 1},
        {"lzw", "func", "paper", 0xdeadbeefULL},
        {"", "", "", 0}, // degenerate but encodable
    };
    const std::string payload = harness::daemonwire::encodeJobs(jobs);
    auto back = harness::daemonwire::decodeJobs(payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, jobs);

    // Truncation anywhere is a malformation, not a crash.
    for (std::size_t cut = 0; cut < payload.size(); ++cut)
        EXPECT_FALSE(harness::daemonwire::decodeJobs(
                         payload.substr(0, cut))
                         .has_value())
            << "cut at " << cut;
    // So is trailing garbage.
    EXPECT_FALSE(
        harness::daemonwire::decodeJobs(payload + "x").has_value());
}

TEST(DaemonWire, CampaignSummaryRoundTrip)
{
    harness::daemonwire::CampaignSummary s;
    s.jobs = 27;
    s.computed = 20;
    s.cacheHits = 7;
    s.cacheMisses = 20;
    s.timeouts = 1;
    s.respawns = 2;
    s.framesRejected = 3;
    s.pointRetries = 4;
    s.quarantined = 1;
    s.journalWriteErrors = 5;
    s.wallSeconds = 1.25;
    auto back =
        harness::daemonwire::CampaignSummary::decode(s.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
    EXPECT_FALSE(harness::daemonwire::CampaignSummary::decode(
                     s.encode().substr(1))
                     .has_value());
}

TEST(DaemonWire, MessageParseIsIncrementalAndChecksummed)
{
    const std::string msg = harness::daemonwire::encodeMessage(
        harness::daemonwire::msgSubmit, 7, 0, "payload-bytes");

    // Every strict prefix parses to "need more" and consumes nothing.
    for (std::size_t cut = 0; cut < msg.size(); ++cut) {
        std::string rx = msg.substr(0, cut);
        MsgHeader hdr;
        std::string payload;
        EXPECT_EQ(
            harness::daemonwire::parseMessage(rx, hdr, payload), 0)
            << "cut at " << cut;
        EXPECT_EQ(rx.size(), cut) << "a partial message must stay "
                                     "buffered";
    }

    // The full message (plus the next message's first bytes) parses
    // and consumes exactly itself.
    std::string rx = msg + msg.substr(0, 3);
    MsgHeader hdr;
    std::string payload;
    EXPECT_EQ(harness::daemonwire::parseMessage(rx, hdr, payload),
              1);
    EXPECT_EQ(hdr.type, harness::daemonwire::msgSubmit);
    EXPECT_EQ(hdr.a, 7u);
    EXPECT_EQ(payload, "payload-bytes");
    EXPECT_EQ(rx.size(), 3u);

    // A flipped payload bit is a protocol error (checksum).
    std::string bad = msg;
    bad[MsgHeader::wireSize] ^= 0x01;
    MsgHeader h2;
    std::string p2;
    EXPECT_EQ(harness::daemonwire::parseMessage(bad, h2, p2), -1);

    // An unknown type is rejected before any payload wait.
    std::string unknown = harness::daemonwire::encodeMessage(
        99, 0, 0, "x");
    EXPECT_EQ(
        harness::daemonwire::parseMessage(unknown, h2, p2), -1);
}

TEST(DaemonWire, MachineTableMatchesFarmCapsule)
{
    for (const auto &name : harness::daemonMachineNames())
        EXPECT_NE(harness::daemonMachine(name), nullptr) << name;
    EXPECT_EQ(harness::daemonMachine("warp-drive"), nullptr);
    // The daemon's "smt" is the same config the direct campaign
    // driver sweeps — shared cache keys depend on it.
    EXPECT_EQ(harness::daemonMachine("smt")->digest(),
              sim::MachineConfig::somt().digest());
}

// ---------------------------------------------------------------
// the service (Unix-domain sockets)
// ---------------------------------------------------------------

#ifdef __unix__

std::string
tempDir(const char *tag)
{
    static int counter = 0;
    auto d = fs::temp_directory_path() /
             (std::string("capsule-daemon-test-") + tag + "-" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "-" + std::to_string(counter++));
    fs::remove_all(d);
    fs::create_directories(d);
    return d.string();
}

/** The small registry campaign the service tests submit. */
std::vector<JobSpec>
testJobs()
{
    return {
        {"quicksort", "smt", "quick", 1},
        {"lzw", "func", "quick", 1},
        {"dijkstra", "cmp", "quick", 2},
        {"quicksort", "smt", "quick", 1}, // repeat: a cache hit
    };
}

/** What a direct (no daemon) FarmRunner makes of the same jobs. */
std::vector<wl::WorkloadResult>
directResults(const std::vector<JobSpec> &jobs)
{
    std::vector<harness::FarmPoint> points;
    for (const auto &j : jobs) {
        const auto *cfg = harness::daemonMachine(j.machine);
        EXPECT_NE(cfg, nullptr) << j.machine;
        points.push_back(harness::registryFarmPoint(
            j.workload, *cfg, {wl::ScaleLevel::Quick, j.seed}));
    }
    return harness::FarmRunner({}).run(points);
}

void
expectSameResults(const std::vector<wl::WorkloadResult> &a,
                  const std::vector<wl::WorkloadResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].stats, b[i].stats) << i;
        EXPECT_EQ(a[i], b[i]) << i;
    }
}

harness::DaemonOptions
serviceOptions(const std::string &dir)
{
    harness::DaemonOptions o;
    o.socketPath = dir + "/capsuled.sock";
    o.cacheDir = dir + "/cache";
    o.workersPerCampaign = 2;
    o.ioTimeoutSeconds = 5.0;
    return o;
}

/** Raw client socket for misbehaving on the wire. */
int
rawConnect(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0)
        << std::strerror(errno);
    return fd;
}

TEST(Daemon, TwoConcurrentClientsByteIdenticalToDirectRun)
{
    const auto dir = tempDir("two-clients");
    harness::FarmDaemon daemon(serviceOptions(dir));
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const auto jobs = testJobs();
    const auto reference = directResults(jobs);

    harness::DaemonClient::Outcome out[2];
    std::vector<std::size_t> order[2];
    std::thread clients[2];
    for (int c = 0; c < 2; ++c)
        clients[c] = std::thread([&, c] {
            harness::DaemonClient client(daemon.socketPath(), 30.0);
            out[c] = client.run(
                jobs, [&, c](std::size_t i,
                             const wl::WorkloadResult &) {
                    order[c].push_back(i);
                });
        });
    for (auto &t : clients)
        t.join();

    for (int c = 0; c < 2; ++c) {
        ASSERT_TRUE(out[c].ok) << c << ": " << out[c].error;
        expectSameResults(out[c].results, reference);
        ASSERT_EQ(order[c].size(), jobs.size()) << c;
        for (std::size_t i = 0; i < order[c].size(); ++i)
            EXPECT_EQ(order[c][i], i)
                << "client " << c << " got results out of "
                << "submission order";
        EXPECT_EQ(out[c].summary.jobs, jobs.size()) << c;
        EXPECT_EQ(out[c].summary.quarantined, 0u) << c;
    }
    // Both campaigns may have raced each other cold; a third client
    // replays entirely from the now-shared cache.
    harness::DaemonClient warm(daemon.socketPath(), 30.0);
    auto warmOut = warm.run(jobs);
    ASSERT_TRUE(warmOut.ok) << warmOut.error;
    expectSameResults(warmOut.results, reference);
    EXPECT_EQ(warmOut.summary.cacheHits, jobs.size());
    EXPECT_EQ(warmOut.summary.computed, 0u);
    warm.close();

    daemon.stop();
    const auto st = daemon.stats();
    EXPECT_EQ(st.clientsAccepted, 3u);
    EXPECT_EQ(st.campaigns, 3u);
    EXPECT_EQ(st.jobs, 3 * jobs.size());
    EXPECT_EQ(st.protocolErrors, 0u);
    EXPECT_EQ(st.ioTimeouts, 0u);
    EXPECT_EQ(st.farm.quarantined, 0u);
    EXPECT_FALSE(fs::exists(daemon.socketPath()))
        << "stop() must unbind the socket";
}

TEST(Daemon, ClientDisconnectMidCampaignDoesNotDisturbOthers)
{
    const auto dir = tempDir("disconnect");
    harness::FarmDaemon daemon(serviceOptions(dir));
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    const auto jobs = testJobs();
    const auto reference = directResults(jobs);

    // Client A submits a campaign and vanishes without reading a
    // single result.
    {
        const int fd = rawConnect(daemon.socketPath());
        const std::string submit = harness::daemonwire::encodeMessage(
            harness::daemonwire::msgSubmit, 0, 0,
            harness::daemonwire::encodeJobs(jobs));
        ASSERT_EQ(::send(fd, submit.data(), submit.size(),
                         MSG_NOSIGNAL),
                  ssize_t(submit.size()));
        ::close(fd);
    }

    // Client B runs the same campaign concurrently and must be
    // served completely and correctly.
    harness::DaemonClient clientB(daemon.socketPath(), 30.0);
    auto outB = clientB.run(jobs);
    ASSERT_TRUE(outB.ok) << outB.error;
    expectSameResults(outB.results, reference);
    clientB.close();

    // And the service keeps serving: a third client after the drop.
    harness::DaemonClient clientC(daemon.socketPath(), 30.0);
    auto outC = clientC.run(jobs);
    ASSERT_TRUE(outC.ok) << outC.error;
    expectSameResults(outC.results, reference);
    EXPECT_GE(outC.summary.cacheHits, 3u)
        << "the dropped client's campaign still warmed the cache";
    clientC.close();

    // The vanished client shows up as dropped, eventually (its
    // campaign may still be finishing).
    const auto t0 = std::chrono::steady_clock::now();
    while (daemon.stats().clientsDropped < 1 &&
           std::chrono::steady_clock::now() - t0 <
               std::chrono::seconds(10))
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    daemon.stop();
    const auto st = daemon.stats();
    EXPECT_GE(st.clientsDropped, 1u);
    EXPECT_GE(st.campaigns, 3u);
}

TEST(Daemon, PartialHeaderHangIsReapedWithinDeadline)
{
    const auto dir = tempDir("partial-header");
    auto opts = serviceOptions(dir);
    opts.ioTimeoutSeconds = 0.3;
    harness::FarmDaemon daemon(opts);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    // Half a MsgHeader, then silence with the socket held open: the
    // daemon twin of the coordinator's partial-frame stall. The I/O
    // deadline must reap it — a blocking read never would.
    const int fd = rawConnect(daemon.socketPath());
    const unsigned char half[MsgHeader::wireSize / 2] = {1, 0};
    ASSERT_EQ(::send(fd, half, sizeof half, MSG_NOSIGNAL),
              ssize_t(sizeof half));

    const auto t0 = std::chrono::steady_clock::now();
    while (daemon.stats().ioTimeouts < 1 &&
           std::chrono::steady_clock::now() - t0 <
               std::chrono::seconds(5))
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(daemon.stats().ioTimeouts, 1u)
        << "the half-header client was never reaped";
    EXPECT_LT(elapsed, 5.0);
    EXPECT_GE(daemon.stats().clientsDropped, 1u);

    // The wedged client never slowed the service for anyone else.
    harness::DaemonClient client(daemon.socketPath(), 30.0);
    auto out = client.run(testJobs());
    EXPECT_TRUE(out.ok) << out.error;
    ::close(fd);
    daemon.stop();
}

TEST(Daemon, MalformedJobIsRejectedWithError)
{
    const auto dir = tempDir("badjob");
    harness::FarmDaemon daemon(serviceOptions(dir));
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;

    harness::DaemonClient client(daemon.socketPath(), 10.0);
    auto out = client.run({{"no-such-workload", "smt", "quick", 1}});
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.error.find("no-such-workload"), std::string::npos)
        << out.error;

    daemon.stop();
    EXPECT_GE(daemon.stats().protocolErrors, 1u);
}

TEST(Daemon, RestartOnSamePathAfterStop)
{
    const auto dir = tempDir("restart");
    const auto opts = serviceOptions(dir);
    {
        harness::FarmDaemon first(opts);
        std::string error;
        ASSERT_TRUE(first.start(&error)) << error;
        first.stop();
        first.stop(); // idempotent
    }
    harness::FarmDaemon second(opts);
    std::string error;
    ASSERT_TRUE(second.start(&error)) << error;
    harness::DaemonClient client(second.socketPath(), 10.0);
    auto out = client.run({{"lzw", "smt", "quick", 1}});
    EXPECT_TRUE(out.ok) << out.error;
}

#endif // __unix__

} // namespace
} // namespace capsule
