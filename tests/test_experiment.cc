/**
 * @file
 * The experiment engine: thread-pool mechanics, registry coverage of
 * every workload, and the central determinism guarantee — a sweep
 * executed on many host threads returns results byte-identical to
 * the serial (--jobs 1) run, field for field, for all RunStats
 * counters and all workload metrics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "harness/experiment.hh"
#include "harness/thread_pool.hh"
#include "workloads/dijkstra.hh"
#include "workloads/mcf_route.hh"
#include "workloads/quicksort.hh"
#include "workloads/workload.hh"

namespace capsule
{
namespace
{

// ---------------------------------------------------------------
// thread pool
// ---------------------------------------------------------------
TEST(ThreadPool, RunsEverySubmittedJob)
{
    harness::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    harness::ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker)
{
    harness::ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1);
    harness::ThreadPool pool2(-3);
    EXPECT_EQ(pool2.threads(), 1);
}

TEST(ThreadPool, MoreWorkersThanJobs)
{
    harness::ThreadPool pool(16);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ThrowingJobDoesNotDeadlockOrPoisonResults)
{
    // Stress the exception containment: 200 jobs on 4 workers, every
    // 7th throws. The pool must survive every worker seeing throws,
    // wait() must still drain, and each non-throwing job's result
    // slot must be exactly what it wrote (submission-order results
    // are how the experiment engine consumes the pool).
    harness::ThreadPool pool(4);
    constexpr int n = 200;
    std::vector<int> results(n, -1);
    for (int i = 0; i < n; ++i) {
        pool.submit([&results, i] {
            if (i % 7 == 0)
                throw std::runtime_error("boom");
            results[std::size_t(i)] = i * i;
        });
    }
    pool.wait();

    int expectedThrows = 0;
    for (int i = 0; i < n; ++i) {
        if (i % 7 == 0) {
            ++expectedThrows;
            EXPECT_EQ(results[std::size_t(i)], -1);
        } else {
            EXPECT_EQ(results[std::size_t(i)], i * i);
        }
    }
    EXPECT_EQ(pool.droppedExceptions(),
              std::uint64_t(expectedThrows));

    // The pool stays fully usable after containing the throws.
    std::atomic<int> after{0};
    for (int i = 0; i < 20; ++i)
        pool.submit([&after] { ++after; });
    pool.wait();
    EXPECT_EQ(after.load(), 20);
    EXPECT_EQ(pool.droppedExceptions(),
              std::uint64_t(expectedThrows));
}

TEST(ThreadPool, BoundedQueueBackpressuresSubmit)
{
    // A 2-entry queue on 2 workers: a producer pushing 60 jobs must
    // be paced by the pool, so the queue-depth high-water mark can
    // never exceed the bound — and every job still runs exactly once.
    harness::ThreadPool pool(2, 2);
    std::atomic<int> count{0};
    for (int i = 0; i < 60; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 60);
    EXPECT_LE(pool.peakQueued(), 2u);
    EXPECT_GE(pool.peakQueued(), 1u);
}

TEST(ThreadPool, UnboundedQueueRecordsPeakDepth)
{
    harness::ThreadPool pool(1, 0);
    std::atomic<bool> release{false};
    pool.submit([&release] {
        while (!release.load())
            std::this_thread::yield();
    });
    // With the lone worker blocked, these must all pile up.
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    EXPECT_GE(pool.peakQueued(), 10u);
    release = true;
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NonStandardExceptionsAreContainedToo)
{
    harness::ThreadPool pool(2);
    pool.submit([] { throw 42; }); // not derived from std::exception
    pool.submit([] { throw std::string("raw payload"); });
    pool.wait();
    EXPECT_EQ(pool.droppedExceptions(), 2u);
}

// ---------------------------------------------------------------
// runner mechanics
// ---------------------------------------------------------------
std::vector<harness::SweepPoint>
labelPoints(int n)
{
    std::vector<harness::SweepPoint> points;
    for (int i = 0; i < n; ++i) {
        harness::SweepPoint pt;
        pt.label = "point" + std::to_string(i);
        pt.run = [i] {
            wl::WorkloadResult res;
            res.workload = "synthetic";
            res.stats.cycles = Cycle(i);
            res.correct = true;
            res.setMetric("index", double(i));
            return res;
        };
        points.push_back(std::move(pt));
    }
    return points;
}

TEST(ExperimentRunner, ReturnsResultsInSubmissionOrder)
{
    harness::ExperimentRunner runner(8);
    auto results = runner.run(labelPoints(50));
    ASSERT_EQ(results.size(), 50u);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(results[std::size_t(i)].stats.cycles, Cycle(i));
        EXPECT_EQ(results[std::size_t(i)].metric("index"), i);
    }
}

TEST(ExperimentRunner, DefaultsToHostConcurrency)
{
    harness::ExperimentRunner runner(0);
    EXPECT_EQ(runner.jobs(), harness::hostConcurrency());
    harness::ExperimentRunner one(1);
    EXPECT_EQ(one.jobs(), 1);
}

TEST(ExperimentRunner, EmptySweep)
{
    harness::ExperimentRunner runner(4);
    EXPECT_TRUE(runner.run({}).empty());
}

TEST(ExperimentRunner, PointExceptionPropagates)
{
    harness::SweepPoint bad;
    bad.label = "bad";
    bad.run = []() -> wl::WorkloadResult {
        throw std::runtime_error("boom");
    };
    auto points = labelPoints(3);
    points.push_back(std::move(bad));
    harness::ExperimentRunner runner(4);
    EXPECT_THROW(runner.run(points), std::runtime_error);
}

// ---------------------------------------------------------------
// registry coverage
// ---------------------------------------------------------------
TEST(WorkloadRegistry, CoversEveryWorkload)
{
    const auto &reg = wl::WorkloadRegistry::builtin();
    for (const char *name :
         {"dijkstra", "dijkstra-normal", "quicksort", "lzw",
          "perceptron", "mcf", "vpr", "bzip2", "crafty"})
        EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_EQ(reg.names().size(), 9u);
}

TEST(WorkloadRegistry, UnknownNameThrows)
{
    const auto &reg = wl::WorkloadRegistry::builtin();
    EXPECT_THROW(reg.run("no-such-workload",
                         sim::MachineConfig::somt(), {}),
                 std::out_of_range);
}

TEST(WorkloadRegistry, EveryFactoryProducesACorrectQuickRun)
{
    // One sweep over the whole registry at quick scale, executed on
    // the pool: proves each factory wires its workload up correctly
    // and tags the result with its registry name.
    const auto &reg = wl::WorkloadRegistry::builtin();
    auto somt = sim::MachineConfig::somt();
    std::vector<harness::SweepPoint> points;
    for (const auto &name : reg.names())
        points.push_back(harness::registryPoint(
            name, somt, {wl::ScaleLevel::Quick, 1}));
    auto results = harness::ExperimentRunner(4).run(points);
    auto names = reg.names();
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_TRUE(results[i].correct) << names[i];
        EXPECT_EQ(results[i].workload, names[i]);
        EXPECT_GT(results[i].stats.instructions, 0u) << names[i];
    }
}

TEST(WorkloadRegistry, MetricMapRoundTrip)
{
    wl::WorkloadResult res;
    EXPECT_FALSE(res.hasMetric("x"));
    EXPECT_EQ(res.metric("x", -1.0), -1.0);
    res.setMetric("x", 2.0);
    res.setMetric("y", 3.0);
    res.setMetric("x", 4.0);  // overwrite keeps one entry
    EXPECT_TRUE(res.hasMetric("x"));
    EXPECT_EQ(res.metric("x"), 4.0);
    EXPECT_EQ(res.metrics.size(), 2u);
}

// ---------------------------------------------------------------
// determinism: parallel == serial, byte for byte
// ---------------------------------------------------------------

/** A mixed sweep across three machine configurations. */
std::vector<harness::SweepPoint>
mixedSweep()
{
    std::vector<harness::SweepPoint> points;
    // Three harness configurations (the paper's three machines), on
    // the registry path.
    for (const auto &cfg :
         {sim::MachineConfig::superscalar(),
          sim::MachineConfig::smtStatic(), sim::MachineConfig::somt()})
        points.push_back(harness::registryPoint(
            "dijkstra", cfg, {wl::ScaleLevel::Quick, 7}));
    // Custom-parameter closures, as the figure harnesses declare.
    wl::QuickSortParams qp;
    qp.length = 600;
    qp.seed = 11;
    points.push_back({"quicksort/somt", [qp] {
                          return wl::runQuickSort(
                              sim::MachineConfig::somt(), qp);
                      }});
    wl::McfParams mp;
    mp.nodes = 2000;
    mp.seed = 5;
    points.push_back({"mcf/somt", [mp] {
                          return wl::runMcf(sim::MachineConfig::somt(),
                                            mp);
                      }});
    return points;
}

TEST(Determinism, ParallelSweepIdenticalToSerial)
{
    auto serial = harness::ExperimentRunner(1).run(mixedSweep());
    auto parallel = harness::ExperimentRunner(4).run(mixedSweep());
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // Field-exact RunStats equality (cycles, instruction counts,
        // every division/lock/swap counter, the derived rates) plus
        // the full metric map — the defaulted operator== compares
        // every member.
        EXPECT_EQ(serial[i].stats, parallel[i].stats) << i;
        EXPECT_EQ(serial[i], parallel[i]) << i;
        EXPECT_TRUE(serial[i].correct) << i;
    }
}

TEST(Determinism, RepeatedParallelRunsIdentical)
{
    harness::ExperimentRunner runner(8);
    auto a = runner.run(mixedSweep());
    auto b = runner.run(mixedSweep());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << i;
}

} // namespace
} // namespace capsule
