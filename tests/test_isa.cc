/**
 * @file
 * Unit tests for CapISA: opcode classification, encode/decode
 * round-trips across all instruction formats (parameterised over the
 * full opcode space), immediate range checking, and disassembly.
 */

#include <gtest/gtest.h>

#include "isa/isa.hh"

namespace capsule::isa
{
namespace
{

TEST(OpClassMap, CapsuleExtensions)
{
    EXPECT_EQ(opClassOf(Opcode::NthrOp), OpClass::Nthr);
    EXPECT_EQ(opClassOf(Opcode::KthrOp), OpClass::Kthr);
    EXPECT_EQ(opClassOf(Opcode::MlockOp), OpClass::Mlock);
    EXPECT_EQ(opClassOf(Opcode::MunlockOp), OpClass::Munlock);
}

TEST(OpClassMap, FunctionalUnits)
{
    EXPECT_EQ(opClassOf(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opClassOf(Opcode::Mul), OpClass::IntMult);
    EXPECT_EQ(opClassOf(Opcode::Fadd), OpClass::FpAlu);
    EXPECT_EQ(opClassOf(Opcode::Fmul), OpClass::FpMult);
    EXPECT_EQ(opClassOf(Opcode::Lw), OpClass::Load);
    EXPECT_EQ(opClassOf(Opcode::Sd), OpClass::Store);
    EXPECT_EQ(opClassOf(Opcode::Beq), OpClass::Branch);
    EXPECT_EQ(opClassOf(Opcode::Jmp), OpClass::Jump);
}

TEST(AccessSize, LoadsAndStores)
{
    EXPECT_EQ(accessSize(Opcode::Lb), 1);
    EXPECT_EQ(accessSize(Opcode::Lh), 2);
    EXPECT_EQ(accessSize(Opcode::Lw), 4);
    EXPECT_EQ(accessSize(Opcode::Ld), 8);
    EXPECT_EQ(accessSize(Opcode::Fld), 8);
    EXPECT_EQ(accessSize(Opcode::Add), 0);
}

TEST(FpRegs, Classification)
{
    EXPECT_TRUE(writesFpReg(Opcode::Fadd));
    EXPECT_TRUE(writesFpReg(Opcode::Fld));
    EXPECT_FALSE(writesFpReg(Opcode::Fcmp));  // writes an int reg
    EXPECT_FALSE(writesFpReg(Opcode::Add));
}

/** Build a representative StaticInst for an opcode. */
StaticInst
sampleInst(Opcode op)
{
    StaticInst inst;
    inst.op = op;
    switch (opClassOf(op)) {
      case OpClass::Nop:
      case OpClass::Kthr:
      case OpClass::Halt:
        break;
      case OpClass::IntAlu:
      case OpClass::IntMult:
      case OpClass::FpAlu:
      case OpClass::FpMult:
        inst.rd = 3;
        if (op == Opcode::Lui) {
            inst.imm = 123;
        } else if (op >= Opcode::Addi && op <= Opcode::Slti) {
            inst.rs1 = 4;
            inst.imm = -7;
        } else {
            inst.rs1 = 4;
            inst.rs2 = 5;
        }
        break;
      case OpClass::Load:
        inst.rd = 6;
        inst.rs1 = 7;
        inst.imm = 16;
        break;
      case OpClass::Store:
        inst.rs2 = 8;
        inst.rs1 = 9;
        inst.imm = -24;
        break;
      case OpClass::Branch:
        inst.rs1 = 10;
        inst.rs2 = 11;
        inst.imm = -100;
        break;
      case OpClass::Jump:
        if (op == Opcode::Jr) {
            inst.rs1 = 12;
        } else {
            if (op == Opcode::Jal)
                inst.rd = 1;
            inst.imm = 2000;
        }
        break;
      case OpClass::Nthr:
        inst.rd = 13;
        inst.imm = 50;
        break;
      case OpClass::Mlock:
      case OpClass::Munlock:
        inst.rs1 = 14;
        break;
    }
    return inst;
}

class EncodeRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(EncodeRoundTrip, AllOpcodes)
{
    auto op = Opcode(GetParam());
    StaticInst inst = sampleInst(op);
    StaticInst back = decode(encode(inst));
    EXPECT_EQ(inst, back) << "opcode " << mnemonic(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodeRoundTrip,
    ::testing::Range(0, int(Opcode::NumOpcodes)),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(mnemonic(Opcode(info.param)));
    });

TEST(Encode, ImmediateExtremes)
{
    StaticInst inst;
    inst.op = Opcode::Jmp;
    inst.imm = (1 << 17) - 1;  // max 18-bit signed
    EXPECT_EQ(decode(encode(inst)).imm, inst.imm);
    inst.imm = -(1 << 17);
    EXPECT_EQ(decode(encode(inst)).imm, inst.imm);

    StaticInst disp;
    disp.op = Opcode::Lw;
    disp.rd = 1;
    disp.rs1 = 2;
    disp.imm = 2047;  // max 12-bit signed
    EXPECT_EQ(decode(encode(disp)).imm, 2047);
    disp.imm = -2048;
    EXPECT_EQ(decode(encode(disp)).imm, -2048);
}

TEST(Encode, NoRegSentinelSurvives)
{
    StaticInst inst;
    inst.op = Opcode::Add;
    inst.rd = 3;
    inst.rs1 = noReg;
    inst.rs2 = noReg;
    StaticInst back = decode(encode(inst));
    EXPECT_EQ(back.rs1, noReg);
    EXPECT_EQ(back.rs2, noReg);
}

TEST(Disasm, RepresentativeForms)
{
    StaticInst add = sampleInst(Opcode::Add);
    EXPECT_EQ(disassemble(add), "add r3, r4, r5");

    StaticInst lw = sampleInst(Opcode::Lw);
    EXPECT_EQ(disassemble(lw), "lw r6, 16(r7)");

    StaticInst sw = sampleInst(Opcode::Sw);
    EXPECT_EQ(disassemble(sw), "sw r8, -24(r9)");

    StaticInst beq = sampleInst(Opcode::Beq);
    EXPECT_EQ(disassemble(beq), "beq r10, r11, -100");

    StaticInst nthr = sampleInst(Opcode::NthrOp);
    EXPECT_EQ(disassemble(nthr), "nthr r13, 50");

    StaticInst kthr = sampleInst(Opcode::KthrOp);
    EXPECT_EQ(disassemble(kthr), "kthr");

    StaticInst mlock = sampleInst(Opcode::MlockOp);
    EXPECT_EQ(disassemble(mlock), "mlock r14");
}

TEST(Disasm, FpForms)
{
    StaticInst fadd = sampleInst(Opcode::Fadd);
    EXPECT_EQ(disassemble(fadd), "fadd f3, f4, f5");
}

} // namespace
} // namespace capsule::isa
