/**
 * @file
 * The content-addressed result cache (harness/result_cache.hh):
 * bit-exact round-tripping of every WorkloadResult field (including
 * NaN / infinity / denormal metric values), per-component cache-key
 * sensitivity, and the corruption contract — any damaged entry is
 * evicted and reported as a miss, never returned. Torn writes (file
 * length disagreeing with the entry's declared payload length) are
 * caught by arithmetic before checksumming and counted separately
 * (lengthEvictions vs corruptEvictions).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "harness/result_cache.hh"

namespace capsule
{
namespace
{

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = fs::temp_directory_path() /
              ("capsule-cache-test-" +
               std::to_string(::testing::UnitTest::GetInstance()
                                  ->random_seed()) +
               "-" + std::to_string(counter++));
        fs::remove_all(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string path() const { return dir.string(); }

    static wl::WorkloadResult
    sampleResult()
    {
        wl::WorkloadResult r;
        r.workload = "sample";
        r.correct = true;
        r.serialCycles = 123456789;
        r.stats.cycles = 987654;
        r.stats.instructions = 456123;
        r.stats.ipc = 0.4617283950617284;
        r.stats.divisionsRequested = 17;
        r.stats.divisionsGranted = 15;
        r.stats.divisionsThrottled = 2;
        r.stats.divisionsRemote = 3;
        r.stats.threadDeaths = 15;
        r.stats.lockConflicts = 4;
        r.stats.swapsOut = 6;
        r.stats.swapsIn = 6;
        r.stats.bpredAccuracy = 0.9312;
        r.stats.l1dMissRate = 0.0718;
        r.stats.peakLiveThreads = 8;
        r.stats.avgActiveThreads = 3.25;
        r.setMetric("speedup vs superscalar", 2.5);
        r.setMetric("host_wall_seconds", 0.125);
        return r;
    }

    static harness::CacheKey
    sampleKey()
    {
        harness::CacheKey k;
        k.programDigest = 0x1111111111111111ULL;
        k.configDigest = 0x2222222222222222ULL;
        k.scale = "quick";
        k.seed = 7;
        k.semanticsHash = 0x3333333333333333ULL;
        k.extra = 5;
        return k;
    }

    fs::path dir;
    static int counter;
};

int ResultCacheTest::counter = 0;

TEST_F(ResultCacheTest, MissOnAbsentEntry)
{
    harness::ResultCache cache(path());
    EXPECT_FALSE(cache.load(sampleKey()).has_value());
    EXPECT_EQ(cache.counters().misses, 1u);
    EXPECT_EQ(cache.counters().hits, 0u);
    EXPECT_EQ(cache.counters().corruptEvictions, 0u);
}

TEST_F(ResultCacheTest, StoreThenLoadRoundTripsEveryField)
{
    harness::ResultCache cache(path());
    auto r = sampleResult();
    cache.store(sampleKey(), r);
    EXPECT_EQ(cache.counters().stores, 1u);

    auto got = cache.load(sampleKey());
    ASSERT_TRUE(got.has_value());
    // The defaulted operator== compares every member: RunStats field
    // for field, plus the full ordered metric map.
    EXPECT_EQ(*got, r);
    EXPECT_EQ(cache.counters().hits, 1u);
}

TEST_F(ResultCacheTest, SecondCacheInstanceSeesTheEntry)
{
    {
        harness::ResultCache writer(path());
        writer.store(sampleKey(), sampleResult());
    }
    harness::ResultCache reader(path());
    auto got = reader.load(sampleKey());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, sampleResult());
}

TEST_F(ResultCacheTest, NonFiniteAndDenormalMetricsAreBitExact)
{
    harness::ResultCache cache(path());
    auto r = sampleResult();
    r.stats.ipc = std::numeric_limits<double>::quiet_NaN();
    r.stats.bpredAccuracy = std::numeric_limits<double>::infinity();
    r.stats.l1dMissRate = -std::numeric_limits<double>::infinity();
    r.stats.avgActiveThreads =
        std::numeric_limits<double>::denorm_min();
    r.setMetric("neg zero", -0.0);
    r.setMetric("nan", std::numeric_limits<double>::quiet_NaN());
    cache.store(sampleKey(), r);

    auto got = cache.load(sampleKey());
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(std::isnan(got->stats.ipc));
    EXPECT_EQ(got->stats.bpredAccuracy,
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(got->stats.l1dMissRate,
              -std::numeric_limits<double>::infinity());
    EXPECT_EQ(got->stats.avgActiveThreads,
              std::numeric_limits<double>::denorm_min());
    EXPECT_TRUE(std::isnan(got->metric("nan")));
    EXPECT_EQ(std::signbit(got->metric("neg zero")), true);
}

TEST_F(ResultCacheTest, EveryKeyComponentChangesTheAddress)
{
    harness::ResultCache cache(path());
    cache.store(sampleKey(), sampleResult());

    auto missesWith = [&](harness::CacheKey k) {
        return !cache.load(k).has_value();
    };
    auto k = sampleKey();
    k.programDigest ^= 1;
    EXPECT_TRUE(missesWith(k));
    k = sampleKey();
    k.configDigest ^= 1;
    EXPECT_TRUE(missesWith(k));
    k = sampleKey();
    k.scale = "paper";
    EXPECT_TRUE(missesWith(k));
    k = sampleKey();
    k.seed += 1;
    EXPECT_TRUE(missesWith(k));
    k = sampleKey();
    k.semanticsHash ^= 1;
    EXPECT_TRUE(missesWith(k));
    k = sampleKey();
    k.extra += 1;
    EXPECT_TRUE(missesWith(k));
    // And the original still hits.
    EXPECT_TRUE(cache.load(sampleKey()).has_value());
}

TEST_F(ResultCacheTest, SizeBudgetEvictsLeastRecentlyUsed)
{
    auto keyFor = [](std::uint64_t seed) {
        auto k = sampleKey();
        k.seed = seed;
        return k;
    };
    // Measure one entry's on-disk size (all entries here share it:
    // same payload shape, fixed-width key line), then budget for
    // three and a half entries.
    std::uintmax_t entryBytes;
    {
        harness::ResultCache probe(path());
        probe.store(keyFor(0), sampleResult());
        entryBytes = fs::file_size(probe.entryPath(keyFor(0)));
    }
    fs::remove_all(dir);

    harness::ResultCache cache(path(), 3 * entryBytes +
                                           entryBytes / 2);
    auto settle = [] {
        // Distinct mtimes: the sweep orders by last_write_time.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    };
    for (std::uint64_t s = 1; s <= 3; ++s) {
        cache.store(keyFor(s), sampleResult());
        settle();
    }
    EXPECT_EQ(cache.counters().sizeEvictions, 0u);

    // A hit refreshes entry 1's mtime, so entry 2 becomes the LRU.
    EXPECT_TRUE(cache.load(keyFor(1)).has_value());
    settle();

    // The fourth store exceeds the budget; the sweep evicts exactly
    // the oldest entry.
    cache.store(keyFor(4), sampleResult());
    EXPECT_EQ(cache.counters().sizeEvictions, 1u);
    EXPECT_TRUE(cache.load(keyFor(1)).has_value());
    EXPECT_FALSE(cache.load(keyFor(2)).has_value());
    EXPECT_TRUE(cache.load(keyFor(3)).has_value());
    EXPECT_TRUE(cache.load(keyFor(4)).has_value());

    // Hit/miss accounting is untouched by the budget machinery: the
    // evicted entry reads as a plain miss, not a corrupt eviction.
    auto c = cache.counters();
    EXPECT_EQ(c.stores, 4u);
    EXPECT_EQ(c.hits, 4u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.corruptEvictions, 0u);
}

TEST_F(ResultCacheTest, CorruptPayloadIsEvictedNotReturned)
{
    harness::ResultCache cache(path());
    cache.store(sampleKey(), sampleResult());
    const std::string entry = cache.entryPath(sampleKey());

    // Flip one payload byte: the checksum must catch it.
    {
        std::fstream f(entry, std::ios::in | std::ios::out |
                                  std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekp(60);
        f.put('X');
    }
    EXPECT_FALSE(cache.load(sampleKey()).has_value());
    EXPECT_EQ(cache.counters().corruptEvictions, 1u);
    EXPECT_FALSE(fs::exists(entry)) << "corrupt entry must be evicted";

    // After eviction the key misses cleanly (no eviction counted).
    EXPECT_FALSE(cache.load(sampleKey()).has_value());
    EXPECT_EQ(cache.counters().corruptEvictions, 1u);

    // And a fresh store repairs it.
    cache.store(sampleKey(), sampleResult());
    EXPECT_TRUE(cache.load(sampleKey()).has_value());
}

TEST_F(ResultCacheTest, TruncatedAndEmptyEntriesAreEvicted)
{
    harness::ResultCache cache(path());
    cache.store(sampleKey(), sampleResult());
    const std::string entry = cache.entryPath(sampleKey());

    std::string full;
    {
        std::ifstream in(entry, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        full = buf.str();
    }

    // Truncated mid-payload (a crashed non-atomic writer shape):
    // the header parses, the declared length disagrees with the file
    // size — a *length* eviction, before any checksumming.
    {
        std::ofstream out(entry, std::ios::binary | std::ios::trunc);
        out << full.substr(0, full.size() / 2);
    }
    EXPECT_FALSE(cache.load(sampleKey()).has_value());
    EXPECT_FALSE(fs::exists(entry));
    EXPECT_EQ(cache.counters().lengthEvictions, 1u);
    EXPECT_EQ(cache.counters().corruptEvictions, 0u);

    // Empty file: not even a magic line — corrupt, not length.
    cache.store(sampleKey(), sampleResult());
    {
        std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    }
    EXPECT_FALSE(cache.load(sampleKey()).has_value());
    EXPECT_FALSE(fs::exists(entry));

    // An entry whose key echo disagrees (a renamed/moved file).
    cache.store(sampleKey(), sampleResult());
    auto other = sampleKey();
    other.seed += 99;
    std::error_code ec;
    fs::copy_file(entry, cache.entryPath(other), ec);
    ASSERT_FALSE(ec);
    EXPECT_FALSE(cache.load(other).has_value());
    EXPECT_FALSE(fs::exists(cache.entryPath(other)));
    EXPECT_EQ(cache.counters().corruptEvictions, 2u);
    EXPECT_EQ(cache.counters().lengthEvictions, 1u);
}

TEST_F(ResultCacheTest, TornWriteIsLengthEvictedBeforeChecksumming)
{
    // The exact shape the farm's tear-cache fault injects: the
    // published entry loses its tail (torn in the tmp+rename window
    // by power loss — rename survived, data didn't).
    harness::ResultCache cache(path());
    cache.store(sampleKey(), sampleResult());
    const std::string entry = cache.entryPath(sampleKey());

    const auto size = fs::file_size(entry);
    fs::resize_file(entry, size / 2);
    EXPECT_FALSE(cache.load(sampleKey()).has_value());
    EXPECT_EQ(cache.counters().lengthEvictions, 1u);
    EXPECT_EQ(cache.counters().corruptEvictions, 0u)
        << "a short file must be rejected by the length check, "
           "not reach the checksum";
    EXPECT_FALSE(fs::exists(entry));

    // Extra appended bytes are just as much a length mismatch.
    cache.store(sampleKey(), sampleResult());
    {
        std::ofstream out(entry, std::ios::binary | std::ios::app);
        out << "tail garbage";
    }
    EXPECT_FALSE(cache.load(sampleKey()).has_value());
    EXPECT_EQ(cache.counters().lengthEvictions, 2u);
    EXPECT_EQ(cache.counters().corruptEvictions, 0u);

    // A fresh store repairs the entry and hits again.
    cache.store(sampleKey(), sampleResult());
    EXPECT_TRUE(cache.load(sampleKey()).has_value());
}

TEST_F(ResultCacheTest, DecodeRejectsAnomalies)
{
    const std::string good =
        harness::ResultCache::encode(sampleResult());
    ASSERT_TRUE(harness::ResultCache::decode(good).has_value());

    EXPECT_FALSE(harness::ResultCache::decode("").has_value());
    EXPECT_FALSE(harness::ResultCache::decode("garbage").has_value());
    // A trailing partial line after the metrics.
    EXPECT_FALSE(
        harness::ResultCache::decode(good + "metric bogus")
            .has_value());
    // Stats line with a missing field.
    auto broken = good;
    auto at = broken.find("stats ");
    ASSERT_NE(at, std::string::npos);
    auto lineEnd = broken.find('\n', at);
    auto lastSpace = broken.rfind(' ', lineEnd);
    broken.erase(lastSpace, lineEnd - lastSpace);
    EXPECT_FALSE(harness::ResultCache::decode(broken).has_value());
}

TEST_F(ResultCacheTest, ConcurrentStoresAndLoadsStayConsistent)
{
    harness::ResultCache cache(path());
    const auto r = sampleResult();
    constexpr int nThreads = 4, nOps = 50;
    std::vector<std::thread> threads;
    std::atomic<int> badReads{0};
    for (int t = 0; t < nThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < nOps; ++i) {
                auto k = sampleKey();
                k.seed = std::uint64_t(i % 8);
                if ((t + i) % 2 == 0) {
                    cache.store(k, r);
                } else {
                    auto got = cache.load(k);
                    // Either a miss (not stored yet) or the exact
                    // value — never a torn read.
                    if (got && !(*got == r))
                        ++badReads;
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(badReads.load(), 0);
    EXPECT_EQ(cache.counters().corruptEvictions, 0u);
}

} // namespace
} // namespace capsule
