/**
 * @file
 * Smoke test of the simulator-throughput harness: runs the real
 * bench_simperf binary (path provided by CMake) at quick scale,
 * validates the JSON schema — positive host timings and rates, one
 * record per workload x backend — and re-checks that the *simulated*
 * fields are identical between --jobs 1 and --jobs 8 (host timings
 * are the only nondeterministic outputs).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "workloads/workload.hh"

#ifndef CAPSULE_BENCH_SIMPERF_PATH
#error "CMake must define CAPSULE_BENCH_SIMPERF_PATH"
#endif

namespace capsule
{
namespace
{

const char *const backends[] = {"smt", "cmp", "func"};

std::string
tempJsonPath(const std::string &name)
{
    return ::testing::TempDir() + "simperf_" + name + ".json";
}

/** Run bench_simperf with `args`, writing JSON to `json_path`.
 *  @return the process exit status */
int
runHarness(const std::string &args, const std::string &json_path)
{
    std::string cmd = std::string(CAPSULE_BENCH_SIMPERF_PATH) + " " +
                      args + " --json " + json_path +
                      " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    return rc;
}

/**
 * Minimal reader for the flat JsonReport shape: every metric is one
 * `"key": value` line inside the "metrics" object. Values come back
 * as raw JSON tokens ("1.5", "42", "true").
 */
std::map<std::string, std::string>
readMetrics(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << "cannot open " << path;
    std::map<std::string, std::string> out;
    std::string line;
    bool inMetrics = false;
    while (std::getline(f, line)) {
        if (line.find("\"metrics\"") != std::string::npos) {
            inMetrics = true;
            continue;
        }
        if (!inMetrics)
            continue;
        auto q1 = line.find('"');
        if (q1 == std::string::npos)
            continue;
        auto q2 = line.find('"', q1 + 1);
        auto colon = line.find(':', q2);
        if (q2 == std::string::npos || colon == std::string::npos)
            continue;
        std::string key = line.substr(q1 + 1, q2 - q1 - 1);
        std::string val = line.substr(colon + 1);
        // Trim whitespace and a trailing comma.
        while (!val.empty() &&
               (val.back() == ',' || val.back() == ' ' ||
                val.back() == '\r'))
            val.pop_back();
        while (!val.empty() && val.front() == ' ')
            val.erase(val.begin());
        out[key] = val;
    }
    return out;
}

double
asNumber(const std::map<std::string, std::string> &m,
         const std::string &key)
{
    auto it = m.find(key);
    EXPECT_NE(it, m.end()) << "missing metric " << key;
    if (it == m.end())
        return -1.0;
    return std::strtod(it->second.c_str(), nullptr);
}

TEST(SimperfSmoke, QuickScaleSchemaAndRates)
{
    std::string json = tempJsonPath("schema");
    ASSERT_EQ(runHarness("--scale quick --jobs 2", json), 0);
    auto m = readMetrics(json);

    const auto names = wl::WorkloadRegistry::builtin().names();
    EXPECT_EQ(asNumber(m, "records"), double(names.size() * 3));
    EXPECT_TRUE(m.at("all_correct") == "true");
    EXPECT_GT(asNumber(m, "total_wall_seconds"), 0.0);
    EXPECT_GT(asNumber(m, "aggregate_mips"), 0.0);
    for (const char *backend : backends)
        EXPECT_GT(asNumber(m, std::string("aggregate_mips.") + backend),
                  0.0)
            << backend;

    // One full record per workload x backend.
    for (const auto &wlName : names) {
        for (const char *backend : backends) {
            std::string key = wlName + "." + backend;
            EXPECT_GT(asNumber(m, key + ".wall_seconds"), 0.0) << key;
            EXPECT_GT(asNumber(m, key + ".mips"), 0.0) << key;
            EXPECT_GT(asNumber(m, key + ".sim_cycles_per_sec"), 0.0)
                << key;
            EXPECT_GT(asNumber(m, key + ".sim_cycles"), 0.0) << key;
            EXPECT_GT(asNumber(m, key + ".sim_instructions"), 0.0)
                << key;
            EXPECT_EQ(m.at(key + ".correct"), "true") << key;
        }
    }
}

TEST(SimperfSmoke, SimulatedFieldsDeterministicAcrossJobs)
{
    std::string j1 = tempJsonPath("jobs1");
    std::string j8 = tempJsonPath("jobs8");
    ASSERT_EQ(runHarness("--scale quick --jobs 1 --seed 1", j1), 0);
    ASSERT_EQ(runHarness("--scale quick --jobs 8 --seed 1", j8), 0);
    auto m1 = readMetrics(j1);
    auto m8 = readMetrics(j8);

    // The simulated fields are a pure function of (config, scale,
    // seed); only host timings may differ between job counts.
    const char *const simFields[] = {".sim_cycles",
                                     ".sim_instructions", ".correct"};
    for (const auto &wlName :
         wl::WorkloadRegistry::builtin().names()) {
        for (const char *backend : backends) {
            std::string key = wlName + "." + backend;
            for (const char *field : simFields) {
                ASSERT_TRUE(m1.count(key + field)) << key << field;
                ASSERT_TRUE(m8.count(key + field)) << key << field;
                EXPECT_EQ(m1.at(key + field), m8.at(key + field))
                    << key << field;
            }
        }
    }
}

} // namespace
} // namespace capsule
