/**
 * @file
 * Direct unit tests for base/ring.hh, the fixed-capacity FIFO behind
 * the pipeline's per-thread ifq/rob/lsq (it shipped in PR 4 with only
 * indirect coverage through the machine suites): FIFO order across
 * many wrap-arounds, the full/empty edges, indexing and iteration,
 * reset semantics, and the overflow/underflow death contracts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/ring.hh"

namespace capsule
{
namespace
{

TEST(Ring, StartsEmptyWithGivenCapacity)
{
    Ring<int> r(4);
    EXPECT_EQ(r.capacity(), 4u);
    EXPECT_EQ(r.size(), 0u);
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.full());
}

TEST(Ring, DefaultConstructedHasNoCapacity)
{
    Ring<int> r;
    EXPECT_EQ(r.capacity(), 0u);
    EXPECT_TRUE(r.empty());
}

TEST(Ring, FifoOrder)
{
    Ring<int> r(3);
    r.push_back(10);
    r.push_back(20);
    r.push_back(30);
    EXPECT_EQ(r.front(), 10);
    r.pop_front();
    EXPECT_EQ(r.front(), 20);
    r.pop_front();
    EXPECT_EQ(r.front(), 30);
    r.pop_front();
    EXPECT_TRUE(r.empty());
}

TEST(Ring, FullAndEmptyEdges)
{
    Ring<int> r(2);
    r.push_back(1);
    EXPECT_FALSE(r.full());
    EXPECT_FALSE(r.empty());
    r.push_back(2);
    EXPECT_TRUE(r.full());
    r.pop_front();
    EXPECT_FALSE(r.full());
    r.pop_front();
    EXPECT_TRUE(r.empty());
    // Reusable after draining.
    r.push_back(3);
    EXPECT_EQ(r.front(), 3);
}

TEST(Ring, WrapAroundPreservesOrderAcrossManyCycles)
{
    // Capacity 4, 100 interleaved pushes/pops: the head index wraps
    // dozens of times and FIFO order must survive every wrap.
    Ring<int> r(4);
    int next_push = 0;
    int next_pop = 0;
    r.push_back(next_push++);
    r.push_back(next_push++);
    for (int i = 0; i < 100; ++i) {
        r.push_back(next_push++);
        EXPECT_EQ(r.front(), next_pop);
        r.pop_front();
        ++next_pop;
    }
    EXPECT_EQ(r.size(), 2u);
    EXPECT_EQ(r.front(), next_pop);
}

TEST(Ring, IndexingAndIterationAcrossTheSeam)
{
    Ring<int> r(4);
    for (int v : {1, 2, 3, 4})
        r.push_back(v);
    r.pop_front();
    r.pop_front();
    r.push_back(5); // physically wraps to slot 0
    r.push_back(6); // and slot 1

    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[0], 3);
    EXPECT_EQ(r[1], 4);
    EXPECT_EQ(r[2], 5);
    EXPECT_EQ(r[3], 6);

    std::vector<int> seen;
    for (int v : r)
        seen.push_back(v);
    EXPECT_EQ(seen, (std::vector<int>{3, 4, 5, 6}));
}

TEST(Ring, PopReleasesPayloadEagerly)
{
    // pop_front() resets the slot to T{} so held resources (e.g. a
    // FetchedInst's Program-derived state) are released immediately.
    Ring<std::string> r(2);
    r.push_back(std::string(1000, 'x'));
    r.pop_front();
    r.push_back("a");
    r.push_back("b");
    EXPECT_EQ(r.front(), "a");
}

TEST(Ring, ResetDropsContentsAndResizes)
{
    Ring<int> r(2);
    r.push_back(7);
    r.push_back(8);
    r.reset(5);
    EXPECT_EQ(r.capacity(), 5u);
    EXPECT_TRUE(r.empty());
    for (int i = 0; i < 5; ++i)
        r.push_back(i);
    EXPECT_TRUE(r.full());
    EXPECT_EQ(r.front(), 0);
}

// ---- death contracts (hardware queues never over/underflow) --------

using RingDeathTest = ::testing::Test;

TEST(RingDeathTest, OverwritingFullRingDies)
{
    Ring<int> r(2);
    r.push_back(1);
    r.push_back(2);
    EXPECT_DEATH(r.push_back(3), "ring overflow");
}

TEST(RingDeathTest, PopOnEmptyDies)
{
    Ring<int> r(2);
    EXPECT_DEATH(r.pop_front(), "pop_front\\(\\) on empty ring");
}

TEST(RingDeathTest, FrontOnEmptyDies)
{
    Ring<int> r(2);
    EXPECT_DEATH(r.front(), "front\\(\\) on empty ring");
}

TEST(RingDeathTest, IndexOutOfRangeDies)
{
    Ring<int> r(3);
    r.push_back(1);
    EXPECT_DEATH(r[1], "ring index out of range");
}

TEST(RingDeathTest, ZeroCapacityDies)
{
    Ring<int> r;
    EXPECT_DEATH(r.reset(0), "ring capacity must be positive");
}

} // namespace
} // namespace capsule
