/**
 * @file
 * Cross-cutting property tests: invariants that must hold across
 * seeds, configurations and workloads — conservation of committed
 * instructions, determinism, cache-geometry laws, predictor aliasing
 * behaviour, encode/decode fuzzing, and division-accounting
 * consistency.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "casm/assembler.hh"
#include "front/asm_program.hh"
#include "isa/isa.hh"
#include "sim/cache.hh"
#include "sim/machine.hh"
#include "workloads/dijkstra.hh"
#include "workloads/lzw.hh"
#include "workloads/mcf_route.hh"
#include "workloads/quicksort.hh"

namespace capsule
{
namespace
{

// ------------------------------------------------------------------
// ISA: decode(encode(x)) == x under fuzzed fields
// ------------------------------------------------------------------
class IsaFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(IsaFuzz, EncodeDecodeRoundTripsRandomFields)
{
    Rng rng{std::uint64_t(GetParam())};
    for (int trial = 0; trial < 200; ++trial) {
        isa::StaticInst inst;
        inst.op = isa::Opcode(
            rng.uniform(0, std::uint64_t(isa::Opcode::NumOpcodes) - 1));
        // Respect the per-format field constraints.
        switch (isa::opClassOf(inst.op)) {
          case isa::OpClass::Nop:
          case isa::OpClass::Kthr:
          case isa::OpClass::Halt:
            break;
          case isa::OpClass::Mlock:
          case isa::OpClass::Munlock:
            inst.rs1 = std::uint8_t(rng.uniform(0, 31));
            break;
          case isa::OpClass::Jump:
            if (inst.op == isa::Opcode::Jr) {
                inst.rs1 = std::uint8_t(rng.uniform(0, 31));
            } else {
                if (inst.op == isa::Opcode::Jal)
                    inst.rd = std::uint8_t(rng.uniform(0, 31));
                inst.imm =
                    std::int32_t(rng.uniform(0, (1u << 17) - 1)) -
                    (1 << 16);
            }
            break;
          case isa::OpClass::Nthr:
            inst.rd = std::uint8_t(rng.uniform(0, 31));
            inst.imm = std::int32_t(rng.uniform(0, (1u << 17) - 1)) -
                       (1 << 16);
            break;
          case isa::OpClass::Load:
            inst.rd = std::uint8_t(rng.uniform(0, 31));
            inst.rs1 = std::uint8_t(rng.uniform(0, 31));
            inst.imm = std::int32_t(rng.uniform(0, 4095)) - 2048;
            break;
          case isa::OpClass::Store:
          case isa::OpClass::Branch:
            inst.rs2 = std::uint8_t(rng.uniform(0, 31));
            inst.rs1 = std::uint8_t(rng.uniform(0, 31));
            inst.imm = std::int32_t(rng.uniform(0, 4095)) - 2048;
            break;
          default:
            if (inst.op == isa::Opcode::Lui) {
                inst.rd = std::uint8_t(rng.uniform(0, 31));
                inst.imm =
                    std::int32_t(rng.uniform(0, (1u << 17) - 1)) -
                    (1 << 16);
            } else if (inst.op >= isa::Opcode::Addi &&
                       inst.op <= isa::Opcode::Slti) {
                inst.rd = std::uint8_t(rng.uniform(0, 31));
                inst.rs1 = std::uint8_t(rng.uniform(0, 31));
                inst.imm = std::int32_t(rng.uniform(0, 4095)) - 2048;
            } else {
                inst.rd = std::uint8_t(rng.uniform(0, 31));
                inst.rs1 = std::uint8_t(rng.uniform(0, 31));
                inst.rs2 = std::uint8_t(rng.uniform(0, 31));
            }
            break;
        }
        EXPECT_EQ(isa::decode(isa::encode(inst)), inst)
            << isa::disassemble(inst);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaFuzz, ::testing::Values(1, 2, 3));

// ------------------------------------------------------------------
// cache: geometry laws
// ------------------------------------------------------------------
TEST(CacheProperty, FullyAssociativeNeverConflictMisses)
{
    // 8 lines fully associative: 8 distinct lines fit exactly.
    sim::CacheParams p{"fa", 256, 8, 32, 1};
    sim::Cache c(p, nullptr, 100);
    for (Addr a = 0; a < 8 * 32; a += 32)
        c.access(a, false);
    for (Addr a = 0; a < 8 * 32; a += 32)
        EXPECT_TRUE(c.probe(a));
}

TEST(CacheProperty, WorkingSetLargerThanCacheThrashes)
{
    sim::CacheParams p{"small", 256, 2, 32, 1};
    sim::Cache c(p, nullptr, 100);
    // Cycle through 2x the capacity twice: second pass still misses.
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 512; a += 32)
            c.access(a, false);
    EXPECT_GT(c.missRate(), 0.9);
}

TEST(CacheProperty, HitRateMonotoneInSize)
{
    auto missesFor = [](std::uint64_t bytes) {
        sim::CacheParams p{"c", bytes, 4, 32, 1};
        sim::Cache c(p, nullptr, 100);
        Rng rng(7);
        for (int i = 0; i < 4000; ++i)
            c.access(rng.uniform(0, 8 * 1024) & ~31ull, false);
        return c.misses();
    };
    EXPECT_GE(missesFor(1024), missesFor(4096));
    EXPECT_GE(missesFor(4096), missesFor(16384));
}

// ------------------------------------------------------------------
// machine: conservation and determinism under config sweeps
// ------------------------------------------------------------------
std::string
loopProgram(int iters)
{
    return "  addi r9, r0, " + std::to_string(iters) +
           "\n"
           "top:\n"
           "  addi r1, r1, 1\n"
           "  lui r10, 4\n"
           "  ld r2, 0(r10)\n"
           "  add r3, r2, r1\n"
           "  addi r9, r9, -1\n"
           "  bne r9, r0, top\n"
           "  halt\n";
}

class WidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(WidthSweep, CommittedCountIndependentOfWidths)
{
    auto img = casm::Assembler::assembleOrDie(loopProgram(64));
    auto run = [&](int width) {
        front::AsmProcess proc(img);
        auto cfg = sim::MachineConfig::superscalar();
        cfg.issueWidth = width;
        cfg.decodeWidth = width;
        cfg.commitWidth = width;
        sim::Machine m(cfg);
        m.addThread(std::make_unique<front::AsmProgram>(proc));
        return m.run();
    };
    auto r = run(GetParam());
    // The committed count is architectural: the r9 initialiser, 64
    // iterations of 6 instructions, and the halt.
    EXPECT_EQ(r.instructions, 2u + 64u * 6u);
    EXPECT_GT(r.ipc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(MachineProperty, NarrowerMachineIsNeverFaster)
{
    auto img = casm::Assembler::assembleOrDie(loopProgram(128));
    auto cyclesFor = [&](int width) {
        front::AsmProcess proc(img);
        auto cfg = sim::MachineConfig::superscalar();
        cfg.issueWidth = width;
        cfg.decodeWidth = width;
        cfg.commitWidth = width;
        sim::Machine m(cfg);
        m.addThread(std::make_unique<front::AsmProgram>(proc));
        return m.run().cycles;
    };
    EXPECT_GE(cyclesFor(1), cyclesFor(2));
    EXPECT_GE(cyclesFor(2), cyclesFor(4));
    EXPECT_GE(cyclesFor(4), cyclesFor(8));
}

TEST(MachineProperty, SlowerMemoryNeverHelps)
{
    auto img = casm::Assembler::assembleOrDie(loopProgram(64));
    auto cyclesFor = [&](Cycle memLat) {
        front::AsmProcess proc(img);
        auto cfg = sim::MachineConfig::superscalar();
        cfg.mem.memLatency = memLat;
        sim::Machine m(cfg);
        m.addThread(std::make_unique<front::AsmProgram>(proc));
        return m.run().cycles;
    };
    EXPECT_LE(cyclesFor(50), cyclesFor(200));
    EXPECT_LE(cyclesFor(200), cyclesFor(800));
}

// ------------------------------------------------------------------
// workloads: result invariance across machine configuration
// ------------------------------------------------------------------
class ConfigInvariance : public ::testing::TestWithParam<int>
{
};

TEST_P(ConfigInvariance, DijkstraDistancesIdenticalOnAllMachines)
{
    wl::DijkstraParams p;
    p.nodes = 100;
    p.seed = std::uint64_t(GetParam());
    auto a = wl::runDijkstra(sim::MachineConfig::superscalar(), p);
    auto b = wl::runDijkstra(sim::MachineConfig::smtStatic(), p);
    auto c = wl::runDijkstra(sim::MachineConfig::somt(), p);
    auto d = wl::runDijkstra(sim::MachineConfig::somt(4), p);
    EXPECT_EQ(a.dist, b.dist);
    EXPECT_EQ(b.dist, c.dist);
    EXPECT_EQ(c.dist, d.dist);
    EXPECT_TRUE(a.correct);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigInvariance,
                         ::testing::Values(11, 22, 33, 44));

TEST(DivisionAccounting, GrantsNeverExceedRequests)
{
    for (int seed = 1; seed <= 4; ++seed) {
        wl::QuickSortParams p;
        p.length = 800;
        p.seed = std::uint64_t(seed);
        auto r = wl::runQuickSort(sim::MachineConfig::somt(), p);
        EXPECT_LE(r.stats.divisionsGranted,
                  r.stats.divisionsRequested);
        EXPECT_LE(r.stats.divisionsThrottled,
                  r.stats.divisionsRequested);
        // Every granted division eventually dies (children only).
        EXPECT_EQ(r.stats.threadDeaths, r.stats.divisionsGranted);
    }
}

TEST(DivisionAccounting, PeakThreadsBoundedByContexts)
{
    // Without the context stack, live threads can never exceed the
    // context count.
    auto cfg = sim::MachineConfig::somt();
    cfg.enableContextStack = false;
    wl::QuickSortParams p;
    p.length = 1500;
    auto r = wl::runQuickSort(cfg, p);
    EXPECT_LE(r.stats.peakLiveThreads, cfg.numContexts);
    EXPECT_TRUE(r.correct);
}

TEST(DivisionAccounting, FewerContextsFewerGrantsHigherCycles)
{
    wl::McfParams p;
    p.nodes = 3000;
    auto c2 = wl::runMcf(sim::MachineConfig::somt(2), p);
    auto c8 = wl::runMcf(sim::MachineConfig::somt(8), p);
    EXPECT_TRUE(c2.correct);
    EXPECT_TRUE(c8.correct);
    EXPECT_LE(c2.stats.divisionsGranted,
              c8.stats.divisionsGranted);
    EXPECT_GE(c2.stats.cycles, c8.stats.cycles);
}

TEST(LzwProperty, ChunkCountMatchesGrantsPlusOne)
{
    // Every granted division creates exactly one more chunk.
    wl::LzwParams p;
    p.length = 2048;
    p.minSplit = 32;
    auto r = wl::runLzw(sim::MachineConfig::somt(), p);
    ASSERT_TRUE(r.correct);
    EXPECT_EQ(std::uint64_t(r.metric("chunks")),
              r.stats.divisionsGranted + 1);
}

TEST(Determinism, AcrossAllCoreWorkloads)
{
    for (int trial = 0; trial < 2; ++trial) {
        wl::QuickSortParams q;
        q.length = 600;
        q.seed = 5;
        static Cycle qsCycles = 0;
        auto r = wl::runQuickSort(sim::MachineConfig::somt(), q);
        if (trial == 0)
            qsCycles = r.stats.cycles;
        else
            EXPECT_EQ(qsCycles, r.stats.cycles);
    }
}

} // namespace
} // namespace capsule
