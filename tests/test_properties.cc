/**
 * @file
 * Cross-cutting property tests: invariants that must hold across
 * seeds, configurations and workloads — conservation of committed
 * instructions, determinism, cache-geometry laws, predictor aliasing
 * behaviour, encode/decode fuzzing, division-accounting consistency,
 * and randomized differential tests of the CAPSULE hardware
 * structures (LockTable against a std::map reference lock set,
 * ContextStack against a std::vector reference stack), including
 * their overflow/underflow edges.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "base/rng.hh"
#include "casm/assembler.hh"
#include "front/asm_program.hh"
#include "isa/isa.hh"
#include "sim/cache.hh"
#include "sim/context_stack.hh"
#include "sim/lock_table.hh"
#include "sim/machine.hh"
#include "sim/sim_error.hh"
#include "workloads/dijkstra.hh"
#include "workloads/lzw.hh"
#include "workloads/mcf_route.hh"
#include "workloads/quicksort.hh"

namespace capsule
{
namespace
{

// ------------------------------------------------------------------
// ISA: decode(encode(x)) == x under fuzzed fields
// ------------------------------------------------------------------
class IsaFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(IsaFuzz, EncodeDecodeRoundTripsRandomFields)
{
    Rng rng{std::uint64_t(GetParam())};
    for (int trial = 0; trial < 200; ++trial) {
        isa::StaticInst inst;
        inst.op = isa::Opcode(
            rng.uniform(0, std::uint64_t(isa::Opcode::NumOpcodes) - 1));
        // Respect the per-format field constraints.
        switch (isa::opClassOf(inst.op)) {
          case isa::OpClass::Nop:
          case isa::OpClass::Kthr:
          case isa::OpClass::Halt:
            break;
          case isa::OpClass::Mlock:
          case isa::OpClass::Munlock:
            inst.rs1 = std::uint8_t(rng.uniform(0, 31));
            break;
          case isa::OpClass::Jump:
            if (inst.op == isa::Opcode::Jr) {
                inst.rs1 = std::uint8_t(rng.uniform(0, 31));
            } else {
                if (inst.op == isa::Opcode::Jal)
                    inst.rd = std::uint8_t(rng.uniform(0, 31));
                inst.imm =
                    std::int32_t(rng.uniform(0, (1u << 17) - 1)) -
                    (1 << 16);
            }
            break;
          case isa::OpClass::Nthr:
            inst.rd = std::uint8_t(rng.uniform(0, 31));
            inst.imm = std::int32_t(rng.uniform(0, (1u << 17) - 1)) -
                       (1 << 16);
            break;
          case isa::OpClass::Load:
            inst.rd = std::uint8_t(rng.uniform(0, 31));
            inst.rs1 = std::uint8_t(rng.uniform(0, 31));
            inst.imm = std::int32_t(rng.uniform(0, 4095)) - 2048;
            break;
          case isa::OpClass::Store:
          case isa::OpClass::Branch:
            inst.rs2 = std::uint8_t(rng.uniform(0, 31));
            inst.rs1 = std::uint8_t(rng.uniform(0, 31));
            inst.imm = std::int32_t(rng.uniform(0, 4095)) - 2048;
            break;
          default:
            if (inst.op == isa::Opcode::Lui) {
                inst.rd = std::uint8_t(rng.uniform(0, 31));
                inst.imm =
                    std::int32_t(rng.uniform(0, (1u << 17) - 1)) -
                    (1 << 16);
            } else if (inst.op >= isa::Opcode::Addi &&
                       inst.op <= isa::Opcode::Slti) {
                inst.rd = std::uint8_t(rng.uniform(0, 31));
                inst.rs1 = std::uint8_t(rng.uniform(0, 31));
                inst.imm = std::int32_t(rng.uniform(0, 4095)) - 2048;
            } else {
                inst.rd = std::uint8_t(rng.uniform(0, 31));
                inst.rs1 = std::uint8_t(rng.uniform(0, 31));
                inst.rs2 = std::uint8_t(rng.uniform(0, 31));
            }
            break;
        }
        EXPECT_EQ(isa::decode(isa::encode(inst)), inst)
            << isa::disassemble(inst);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaFuzz, ::testing::Values(1, 2, 3));

// ------------------------------------------------------------------
// cache: geometry laws
// ------------------------------------------------------------------
TEST(CacheProperty, FullyAssociativeNeverConflictMisses)
{
    // 8 lines fully associative: 8 distinct lines fit exactly.
    sim::CacheParams p{"fa", 256, 8, 32, 1};
    sim::Cache c(p, nullptr, 100);
    for (Addr a = 0; a < 8 * 32; a += 32)
        c.access(a, false);
    for (Addr a = 0; a < 8 * 32; a += 32)
        EXPECT_TRUE(c.probe(a));
}

TEST(CacheProperty, WorkingSetLargerThanCacheThrashes)
{
    sim::CacheParams p{"small", 256, 2, 32, 1};
    sim::Cache c(p, nullptr, 100);
    // Cycle through 2x the capacity twice: second pass still misses.
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 512; a += 32)
            c.access(a, false);
    EXPECT_GT(c.missRate(), 0.9);
}

TEST(CacheProperty, HitRateMonotoneInSize)
{
    auto missesFor = [](std::uint64_t bytes) {
        sim::CacheParams p{"c", bytes, 4, 32, 1};
        sim::Cache c(p, nullptr, 100);
        Rng rng(7);
        for (int i = 0; i < 4000; ++i)
            c.access(rng.uniform(0, 8 * 1024) & ~31ull, false);
        return c.misses();
    };
    EXPECT_GE(missesFor(1024), missesFor(4096));
    EXPECT_GE(missesFor(4096), missesFor(16384));
}

// ------------------------------------------------------------------
// machine: conservation and determinism under config sweeps
// ------------------------------------------------------------------
std::string
loopProgram(int iters)
{
    return "  addi r9, r0, " + std::to_string(iters) +
           "\n"
           "top:\n"
           "  addi r1, r1, 1\n"
           "  lui r10, 4\n"
           "  ld r2, 0(r10)\n"
           "  add r3, r2, r1\n"
           "  addi r9, r9, -1\n"
           "  bne r9, r0, top\n"
           "  halt\n";
}

class WidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(WidthSweep, CommittedCountIndependentOfWidths)
{
    auto img = casm::Assembler::assembleOrDie(loopProgram(64));
    auto run = [&](int width) {
        front::AsmProcess proc(img);
        auto cfg = sim::MachineConfig::superscalar();
        cfg.issueWidth = width;
        cfg.decodeWidth = width;
        cfg.commitWidth = width;
        sim::Machine m(cfg);
        m.addThread(std::make_unique<front::AsmProgram>(proc));
        return m.run();
    };
    auto r = run(GetParam());
    // The committed count is architectural: the r9 initialiser, 64
    // iterations of 6 instructions, and the halt.
    EXPECT_EQ(r.instructions, 2u + 64u * 6u);
    EXPECT_GT(r.ipc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(MachineProperty, NarrowerMachineIsNeverFaster)
{
    auto img = casm::Assembler::assembleOrDie(loopProgram(128));
    auto cyclesFor = [&](int width) {
        front::AsmProcess proc(img);
        auto cfg = sim::MachineConfig::superscalar();
        cfg.issueWidth = width;
        cfg.decodeWidth = width;
        cfg.commitWidth = width;
        sim::Machine m(cfg);
        m.addThread(std::make_unique<front::AsmProgram>(proc));
        return m.run().cycles;
    };
    EXPECT_GE(cyclesFor(1), cyclesFor(2));
    EXPECT_GE(cyclesFor(2), cyclesFor(4));
    EXPECT_GE(cyclesFor(4), cyclesFor(8));
}

TEST(MachineProperty, SlowerMemoryNeverHelps)
{
    auto img = casm::Assembler::assembleOrDie(loopProgram(64));
    auto cyclesFor = [&](Cycle memLat) {
        front::AsmProcess proc(img);
        auto cfg = sim::MachineConfig::superscalar();
        cfg.mem.memLatency = memLat;
        sim::Machine m(cfg);
        m.addThread(std::make_unique<front::AsmProgram>(proc));
        return m.run().cycles;
    };
    EXPECT_LE(cyclesFor(50), cyclesFor(200));
    EXPECT_LE(cyclesFor(200), cyclesFor(800));
}

// ------------------------------------------------------------------
// workloads: result invariance across machine configuration
// ------------------------------------------------------------------
class ConfigInvariance : public ::testing::TestWithParam<int>
{
};

TEST_P(ConfigInvariance, DijkstraDistancesIdenticalOnAllMachines)
{
    wl::DijkstraParams p;
    p.nodes = 100;
    p.seed = std::uint64_t(GetParam());
    auto a = wl::runDijkstra(sim::MachineConfig::superscalar(), p);
    auto b = wl::runDijkstra(sim::MachineConfig::smtStatic(), p);
    auto c = wl::runDijkstra(sim::MachineConfig::somt(), p);
    auto d = wl::runDijkstra(sim::MachineConfig::somt(4), p);
    EXPECT_EQ(a.dist, b.dist);
    EXPECT_EQ(b.dist, c.dist);
    EXPECT_EQ(c.dist, d.dist);
    EXPECT_TRUE(a.correct);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigInvariance,
                         ::testing::Values(11, 22, 33, 44));

TEST(DivisionAccounting, GrantsNeverExceedRequests)
{
    for (int seed = 1; seed <= 4; ++seed) {
        wl::QuickSortParams p;
        p.length = 800;
        p.seed = std::uint64_t(seed);
        auto r = wl::runQuickSort(sim::MachineConfig::somt(), p);
        EXPECT_LE(r.stats.divisionsGranted,
                  r.stats.divisionsRequested);
        EXPECT_LE(r.stats.divisionsThrottled,
                  r.stats.divisionsRequested);
        // Every granted division eventually dies (children only).
        EXPECT_EQ(r.stats.threadDeaths, r.stats.divisionsGranted);
    }
}

TEST(DivisionAccounting, PeakThreadsBoundedByContexts)
{
    // Without the context stack, live threads can never exceed the
    // context count.
    auto cfg = sim::MachineConfig::somt();
    cfg.enableContextStack = false;
    wl::QuickSortParams p;
    p.length = 1500;
    auto r = wl::runQuickSort(cfg, p);
    EXPECT_LE(r.stats.peakLiveThreads, cfg.numContexts);
    EXPECT_TRUE(r.correct);
}

TEST(DivisionAccounting, FewerContextsFewerGrantsHigherCycles)
{
    wl::McfParams p;
    p.nodes = 3000;
    auto c2 = wl::runMcf(sim::MachineConfig::somt(2), p);
    auto c8 = wl::runMcf(sim::MachineConfig::somt(8), p);
    EXPECT_TRUE(c2.correct);
    EXPECT_TRUE(c8.correct);
    EXPECT_LE(c2.stats.divisionsGranted,
              c8.stats.divisionsGranted);
    EXPECT_GE(c2.stats.cycles, c8.stats.cycles);
}

TEST(LzwProperty, ChunkCountMatchesGrantsPlusOne)
{
    // Every granted division creates exactly one more chunk.
    wl::LzwParams p;
    p.length = 2048;
    p.minSplit = 32;
    auto r = wl::runLzw(sim::MachineConfig::somt(), p);
    ASSERT_TRUE(r.correct);
    EXPECT_EQ(std::uint64_t(r.metric("chunks")),
              r.stats.divisionsGranted + 1);
}

// ------------------------------------------------------------------
// LockTable: randomized differential test against a std::map model
// ------------------------------------------------------------------

/** Reference semantics: owner plus FIFO waiter queue per address. */
struct RefLockSet
{
    struct Entry
    {
        ThreadId owner;
        std::deque<ThreadId> waiters;
    };
    std::map<Addr, Entry> locks;

    bool
    acquire(Addr addr, ThreadId tid)
    {
        auto it = locks.find(addr);
        if (it == locks.end()) {
            locks[addr] = {tid, {}};
            return true;
        }
        if (it->second.owner == tid)
            return true;
        auto &w = it->second.waiters;
        if (std::find(w.begin(), w.end(), tid) == w.end())
            w.push_back(tid);
        return false;
    }

    ThreadId
    release(Addr addr, ThreadId tid)
    {
        auto it = locks.find(addr);
        EXPECT_NE(it, locks.end());
        EXPECT_EQ(it->second.owner, tid);
        if (it->second.waiters.empty()) {
            locks.erase(it);
            return invalidThread;
        }
        ThreadId next = it->second.waiters.front();
        it->second.waiters.pop_front();
        it->second.owner = next;
        return next;
    }

    bool
    quiescent(ThreadId tid) const
    {
        for (const auto &[a, e] : locks) {
            if (e.owner == tid)
                return false;
            for (ThreadId w : e.waiters)
                if (w == tid)
                    return false;
        }
        return true;
    }
};

class LockTableFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(LockTableFuzz, MatchesReferenceModelUnderRandomOps)
{
    Rng rng{std::uint64_t(GetParam())};
    constexpr int numThreads = 12;
    constexpr int numAddrs = 8;
    sim::LockTable table(64);
    RefLockSet ref;
    // waitingOn[tid]: the one address a stalled thread waits for (a
    // hardware thread stalls at its mlock, so it can wait on at most
    // one lock at a time — the op generator honours that).
    std::map<ThreadId, Addr> waitingOn;

    auto addrOf = [](std::uint64_t i) { return Addr(0x1000 + 64 * i); };

    for (int op = 0; op < 4000; ++op) {
        ThreadId tid = ThreadId(rng.uniform(0, numThreads - 1));
        Addr addr = addrOf(rng.uniform(0, numAddrs - 1));
        switch (rng.uniform(0, 2)) {
          case 0: {  // acquire (threads already waiting stay stalled)
            if (waitingOn.count(tid))
                break;
            bool got = table.acquire(addr, tid);
            bool refGot = ref.acquire(addr, tid);
            ASSERT_EQ(got, refGot) << "op " << op;
            if (!got)
                waitingOn[tid] = addr;
            break;
          }
          case 1: {  // release a lock this thread owns (if any)
            Addr held = 0;
            bool holds = false;
            for (const auto &[a, e] : ref.locks) {
                if (e.owner == tid && !waitingOn.count(tid)) {
                    held = a;
                    holds = true;
                    break;
                }
            }
            if (!holds)
                break;
            ThreadId next = table.release(held, tid);
            ThreadId refNext = ref.release(held, tid);
            ASSERT_EQ(next, refNext) << "op " << op;
            if (next != invalidThread) {
                // The hand-off unblocks the oldest waiter.
                ASSERT_TRUE(waitingOn.count(next));
                ASSERT_EQ(waitingOn[next], held);
                waitingOn.erase(next);
            }
            break;
          }
          default: {  // cancel a wait (thread killed while queued)
            if (!waitingOn.count(tid))
                break;
            Addr a = waitingOn[tid];
            table.cancelWait(a, tid);
            auto &w = ref.locks[a].waiters;
            w.erase(std::remove(w.begin(), w.end(), tid), w.end());
            waitingOn.erase(tid);
            break;
          }
        }

        // Cross-check the observable state after every op.
        ASSERT_EQ(table.occupancy(), ref.locks.size()) << "op " << op;
        for (int a = 0; a < numAddrs; ++a) {
            Addr probe = addrOf(std::uint64_t(a));
            auto it = ref.locks.find(probe);
            ThreadId expect =
                it == ref.locks.end() ? invalidThread
                                      : it->second.owner;
            ASSERT_EQ(table.owner(probe), expect) << "op " << op;
        }
        for (int t = 0; t < numThreads; ++t)
            ASSERT_EQ(table.threadQuiescent(ThreadId(t)),
                      ref.quiescent(ThreadId(t)))
                << "op " << op << " tid " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockTableFuzz,
                         ::testing::Values(101, 202, 303, 404));

TEST(LockTableEdge, CapacityOverflowThrowsStructuredError)
{
    // The default (soft) contract: an overflow is a reportable
    // simulation outcome, not a process abort — harnesses catch it,
    // attribute it to a backend and keep the campaign alive.
    sim::LockTable table(4);
    for (Addr a = 0; a < 4; ++a)
        EXPECT_TRUE(table.acquire(0x100 + 64 * a, ThreadId(a)));
    try {
        table.acquire(0x1000, 9);
        FAIL() << "overflow did not throw";
    } catch (const sim::SimulationError &e) {
        EXPECT_EQ(e.kind(), sim::SimErrorKind::LockTableOverflow);
        EXPECT_NE(std::string(e.what()).find("overflow"),
                  std::string::npos);
    }
}

TEST(LockTableEdge, CapacityOverflowIsFatalWhenHard)
{
    sim::LockTable table(4);
    for (Addr a = 0; a < 4; ++a)
        EXPECT_TRUE(table.acquire(0x100 + 64 * a, ThreadId(a)));
    // The debug escape hatch: hard mode restores the original
    // die-at-the-site behaviour (set inside the death-test child so
    // the parent process keeps the soft default).
    EXPECT_EXIT((sim::setHardSimulationErrors(true),
                 table.acquire(0x1000, 9)),
                ::testing::ExitedWithCode(1), "overflow");
}

TEST(LockTableEdge, ReleaseOfUnheldAddressPanics)
{
    sim::LockTable table(4);
    EXPECT_DEATH(table.release(0x100, 1), "unlocked address");
    table.acquire(0x100, 1);
    EXPECT_DEATH(table.release(0x100, 2), "non-owner");
}

// ------------------------------------------------------------------
// ContextStack: randomized differential test against a std::vector
// ------------------------------------------------------------------
class CtxStackFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(CtxStackFuzz, LifoMatchesReferenceUnderRandomOps)
{
    Rng rng{std::uint64_t(GetParam())};
    sim::ContextStackParams p;
    p.entries = 16;
    sim::ContextStack stack(p);
    std::vector<ThreadId> ref;
    std::uint64_t pushes = 0, pops = 0;
    ThreadId nextTid = 0;

    for (int op = 0; op < 2000; ++op) {
        // Biased walk so the fuzz visits both the empty and the full
        // boundary: push 60% of the time.
        bool doPush = rng.bernoulli(0.6);
        if (doPush && !stack.full()) {
            ThreadId tid = nextTid++;
            stack.push(tid);
            ref.push_back(tid);
            ++pushes;
        } else if (!stack.empty()) {
            ThreadId got = stack.pop();
            ASSERT_EQ(got, ref.back()) << "op " << op;
            ref.pop_back();
            ++pops;
        }
        ASSERT_EQ(stack.depth(), ref.size()) << "op " << op;
        ASSERT_EQ(stack.empty(), ref.empty()) << "op " << op;
        ASSERT_EQ(stack.full(), int(ref.size()) >= p.entries)
            << "op " << op;
        ASSERT_EQ(stack.swapsOut(), pushes) << "op " << op;
        ASSERT_EQ(stack.swapsIn(), pops) << "op " << op;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtxStackFuzz,
                         ::testing::Values(7, 21, 63));

TEST(CtxStackEdge, OverflowThrowsUnderflowPanics)
{
    sim::ContextStackParams p;
    p.entries = 4;
    sim::ContextStack stack(p);
    // Underflow stays a panic: it is a simulator bug, never a
    // property of the simulated program.
    EXPECT_DEATH(stack.pop(), "empty context stack");
    for (int i = 0; i < 4; ++i)
        stack.push(ThreadId(i));
    EXPECT_TRUE(stack.full());
    // Overflow is a program-induced capacity outcome: soft by
    // default (structured error), fatal only in hard mode.
    try {
        stack.push(99);
        FAIL() << "overflow did not throw";
    } catch (const sim::SimulationError &e) {
        EXPECT_EQ(e.kind(), sim::SimErrorKind::ContextStackOverflow);
    }
    EXPECT_EXIT((sim::setHardSimulationErrors(true), stack.push(99)),
                ::testing::ExitedWithCode(1), "overflow");
}

TEST(CtxStackPolicy, SlowLoadsMakeCandidatesAndClearResets)
{
    sim::ContextStackParams p;
    p.swapThreshold = 32;
    sim::ContextStack stack(p);
    // Thread 0 issues fast loads, thread 1 slow ones: only the
    // memory-bound thread may cross the candidate threshold.
    for (int i = 0; i < 40 * p.swapThreshold; ++i) {
        stack.observeLoad(0, 1);
        stack.observeLoad(1, 200);
    }
    EXPECT_FALSE(stack.swapCandidate(0));
    EXPECT_TRUE(stack.swapCandidate(1));
    stack.clearCandidate(1);
    EXPECT_FALSE(stack.swapCandidate(1));
    // Unknown threads are never candidates.
    EXPECT_FALSE(stack.swapCandidate(42));
}

TEST(Determinism, AcrossAllCoreWorkloads)
{
    for (int trial = 0; trial < 2; ++trial) {
        wl::QuickSortParams q;
        q.length = 600;
        q.seed = 5;
        static Cycle qsCycles = 0;
        auto r = wl::runQuickSort(sim::MachineConfig::somt(), q);
        if (trial == 0)
            qsCycles = r.stats.cycles;
        else
            EXPECT_EQ(qsCycles, r.stats.cycles);
    }
}

} // namespace
} // namespace capsule
