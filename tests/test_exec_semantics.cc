/**
 * @file
 * The one-implementation net over the execution-semantics core
 * (DESIGN.md §8): the X-macro table is pinned to the Opcode enum and
 * to a golden hash, the former duplicate sites (the execute-at-fetch
 * front end and the fuzz oracle) are asserted to dispatch into the
 * core rather than re-implementing opcodes, the two generated
 * dispatchers (switch and computed-goto) are cross-checked on random
 * straight-line programs, and the injected-bug hooks are shown to
 * perturb only callers that opt in.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "mem/memory.hh"
#include "sim/exec_semantics.hh"

#ifndef CAPSULE_SRC_DIR
#error "CMake must define CAPSULE_SRC_DIR"
#endif

namespace capsule
{
namespace
{

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------
// table pinning
// ---------------------------------------------------------------

TEST(SemanticsTable, CoversOpcodeEnumInOrder)
{
    ASSERT_EQ(sim::semanticsOpCount(),
              std::size_t(isa::Opcode::NumOpcodes));
    for (std::size_t i = 0; i < sim::semanticsOpCount(); ++i) {
        // Table entry names are the Opcode enumerator names; strip
        // the "Op" suffix of the protocol entries and lowercase to
        // land on the assembler mnemonic of the same enum slot.
        std::string name = sim::semanticsOpName(i);
        if (name.size() > 2 && name.ends_with("Op"))
            name.resize(name.size() - 2);
        for (char &c : name)
            c = char(std::tolower(static_cast<unsigned char>(c)));
        EXPECT_EQ(name, isa::mnemonic(isa::Opcode(i)))
            << "table entry " << i
            << " out of order vs the Opcode enum";
    }
}

TEST(SemanticsTable, PinnedHash)
{
    // The golden digest of the table's entry list. A mismatch means
    // the single semantics implementation changed shape (opcode
    // added, removed, renamed or reordered): re-derive the constant
    // from the failure message *after* checking the differential
    // fuzz campaign still passes.
    std::string joined;
    for (std::size_t i = 0; i < sim::semanticsOpCount(); ++i) {
        joined += sim::semanticsOpName(i);
        joined += '\n';
    }
    EXPECT_EQ(fnv1a(joined), 0xc4863f58af269207ULL)
        << "semantics table changed; new hash 0x" << std::hex
        << fnv1a(joined);
}

TEST(SemanticsTable, ExportedHashMatchesPinnedDerivation)
{
    // sim::semanticsTableHash() is the value the simulation farm
    // folds into every result-cache key (harness/result_cache.hh), so
    // it must be exactly the pinned derivation above: an ISA
    // semantics change then invalidates every memoized result by
    // construction.
    EXPECT_EQ(sim::semanticsTableHash(), 0xc4863f58af269207ULL);
}

// ---------------------------------------------------------------
// exactly one implementation in the source tree
// ---------------------------------------------------------------

TEST(SingleImplementation, TableDefinedExactlyOnce)
{
    int definitions = 0;
    std::string where;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(
             CAPSULE_SRC_DIR)) {
        if (!entry.is_regular_file())
            continue;
        auto ext = entry.path().extension().string();
        if (ext != ".hh" && ext != ".cc")
            continue;
        std::string text = readFile(entry.path().string());
        if (text.find("#define CAPSULE_CAPISA_SEMANTICS(") !=
            std::string::npos) {
            ++definitions;
            where += entry.path().string() + " ";
        }
    }
    EXPECT_EQ(definitions, 1)
        << "semantics table defined in: " << where;
    EXPECT_NE(where.find("exec_semantics.hh"), std::string::npos)
        << where;
}

TEST(SingleImplementation, FormerDuplicateSitesDispatchIntoTheCore)
{
    // The two sites that used to carry their own opcode switches.
    // They must now contain no per-opcode semantic cases and must
    // visibly call the shared step().
    for (const char *rel :
         {"/front/asm_program.cc", "/fuzz/ref_interp.cc"}) {
        std::string text = readFile(std::string(CAPSULE_SRC_DIR) + rel);
        EXPECT_EQ(text.find("case isa::Opcode::"), std::string::npos)
            << rel << " re-implements opcode semantics";
        EXPECT_EQ(text.find("case Opcode::"), std::string::npos)
            << rel << " re-implements opcode semantics";
        EXPECT_NE(text.find("sim::step("), std::string::npos)
            << rel << " does not dispatch into the semantics core";
    }
}

// ---------------------------------------------------------------
// the two generated dispatchers agree
// ---------------------------------------------------------------

/** Straight-line ops the generator draws from (incl. every access
 *  size, FP, and the divide-by-zero edges). */
const isa::Opcode straightOps[] = {
    isa::Opcode::Nop,  isa::Opcode::Add,  isa::Opcode::Sub,
    isa::Opcode::And,  isa::Opcode::Or,   isa::Opcode::Xor,
    isa::Opcode::Sll,  isa::Opcode::Srl,  isa::Opcode::Sra,
    isa::Opcode::Slt,  isa::Opcode::Sltu, isa::Opcode::Addi,
    isa::Opcode::Andi, isa::Opcode::Ori,  isa::Opcode::Xori,
    isa::Opcode::Slli, isa::Opcode::Srli, isa::Opcode::Slti,
    isa::Opcode::Lui,  isa::Opcode::Mul,  isa::Opcode::Div,
    isa::Opcode::Rem,  isa::Opcode::Fadd, isa::Opcode::Fsub,
    isa::Opcode::Fcmp, isa::Opcode::Fcvt, isa::Opcode::Fmul,
    isa::Opcode::Fdiv, isa::Opcode::Lb,   isa::Opcode::Lh,
    isa::Opcode::Lw,   isa::Opcode::Ld,   isa::Opcode::Sb,
    isa::Opcode::Sh,   isa::Opcode::Sw,   isa::Opcode::Sd,
    isa::Opcode::Fld,  isa::Opcode::Fsd,
};

constexpr Addr dataBase = 0x10000;
constexpr int dataCells = 8;

std::vector<isa::StaticInst>
randomStraightRun(std::mt19937_64 &rng, int len)
{
    std::vector<isa::StaticInst> out;
    std::uniform_int_distribution<std::size_t> pickOp(
        0, sizeof straightOps / sizeof straightOps[0] - 1);
    std::uniform_int_distribution<int> pickReg(1, 7);
    std::uniform_int_distribution<int> pickFpReg(0, 7);
    std::uniform_int_distribution<int> pickImm(-100, 100);
    std::uniform_int_distribution<int> pickCell(0, dataCells - 1);
    for (int i = 0; i < len; ++i) {
        isa::StaticInst si;
        si.op = straightOps[pickOp(rng)];
        EXPECT_TRUE(sim::isStraightLine(si.op));
        bool fp = isa::writesFpReg(si.op) || si.op == isa::Opcode::Fsd;
        si.rd = std::uint8_t(fp && si.op != isa::Opcode::Fcmp
                                 ? pickFpReg(rng)
                                 : pickReg(rng));
        si.rs1 = std::uint8_t(pickReg(rng));
        si.rs2 = std::uint8_t(fp ? pickFpReg(rng) : pickReg(rng));
        si.imm = pickImm(rng);
        if (isa::accessSize(si.op) > 0) {
            // Memory ops address one of the fixed data cells via r8,
            // preloaded with dataBase and never overwritten (pickReg
            // tops out at r7).
            si.rs1 = 8;
            si.imm = pickCell(rng) * 8;
            if (si.op == isa::Opcode::Fsd)
                si.rs2 = std::uint8_t(pickFpReg(rng));
        }
        out.push_back(si);
    }
    return out;
}

TEST(Dispatchers, SwitchAndComputedGotoAgree)
{
    std::mt19937_64 rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        auto insts = randomStraightRun(rng, 50);

        sim::RegFile rfStep, rfStraight;
        mem::Memory memStep, memStraight;
        for (int r = 1; r < 8; ++r) {
            auto v = std::int64_t(rng());
            rfStep.intRegs[std::size_t(r)] = v;
            rfStraight.intRegs[std::size_t(r)] = v;
        }
        rfStep.intRegs[8] = std::int64_t(dataBase);
        rfStraight.intRegs[8] = std::int64_t(dataBase);
        for (int r = 0; r < 8; ++r) {
            double v = double(std::int32_t(rng())) / 16.0;
            rfStep.fpRegs[std::size_t(r)] = v;
            rfStraight.fpRegs[std::size_t(r)] = v;
        }
        for (int c = 0; c < dataCells; ++c) {
            std::uint64_t v = rng();
            memStep.write(dataBase + Addr(c) * 8, v, 8);
            memStraight.write(dataBase + Addr(c) * 8, v, 8);
        }

        Addr pc = 0x1000;
        for (std::size_t i = 0; i < insts.size(); ++i)
            sim::step(insts[i], pc + Addr(i) * 4, rfStep, memStep);
        sim::execStraight(insts.data(), insts.size(), pc, rfStraight,
                          memStraight);

        ASSERT_EQ(rfStep.intRegs, rfStraight.intRegs) << trial;
        for (std::size_t r = 0; r < rfStep.fpRegs.size(); ++r) {
            std::uint64_t a, b;
            std::memcpy(&a, &rfStep.fpRegs[r], 8);
            std::memcpy(&b, &rfStraight.fpRegs[r], 8);
            ASSERT_EQ(a, b) << trial << " f" << r;
        }
        for (int c = 0; c < dataCells; ++c)
            ASSERT_EQ(memStep.read(dataBase + Addr(c) * 8, 8),
                      memStraight.read(dataBase + Addr(c) * 8, 8))
                << trial << " cell " << c;
    }
}

// ---------------------------------------------------------------
// injected bugs gate on the caller opting in
// ---------------------------------------------------------------

TEST(InjectedBugs, PerturbOnlyWhenRequested)
{
    mem::Memory mem;
    isa::StaticInst add{isa::Opcode::Add, 3, 1, 2, 0};
    isa::StaticInst xr{isa::Opcode::Xor, 3, 1, 2, 0};
    isa::StaticInst slt{isa::Opcode::Slt, 3, 1, 2, 0};

    sim::RegFile rf;
    rf.intRegs[1] = 12;
    rf.intRegs[2] = 10;

    sim::step(add, 0, rf, mem);
    EXPECT_EQ(rf.intRegs[3], 22);
    sim::step(add, 0, rf, mem, sim::InjectedBug::AddOffByOne);
    EXPECT_EQ(rf.intRegs[3], 23);

    sim::step(xr, 0, rf, mem);
    EXPECT_EQ(rf.intRegs[3], 12 ^ 10);
    sim::step(xr, 0, rf, mem, sim::InjectedBug::XorAsOr);
    EXPECT_EQ(rf.intRegs[3], 12 | 10);

    sim::step(slt, 0, rf, mem);
    EXPECT_EQ(rf.intRegs[3], 0);  // 12 < 10 is false
    sim::step(slt, 0, rf, mem, sim::InjectedBug::SltInverted);
    EXPECT_EQ(rf.intRegs[3], 1);
}

TEST(NthrProtocol, ThreeWayRegisterContract)
{
    sim::RegFile rf;
    sim::applyNthrDecision(rf, 5, false);
    EXPECT_EQ(rf.intRegs[5], -1);
    sim::applyNthrDecision(rf, 5, true);
    EXPECT_EQ(rf.intRegs[5], 0);
    EXPECT_EQ(sim::nthrChildResult, 1);
}

} // namespace
} // namespace capsule
