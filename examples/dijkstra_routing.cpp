/**
 * @file
 * Figure 1 walkthrough: componentised Dijkstra on a small worked
 * graph. Shows the component genealogy (which worker divided into
 * which), the per-node shortest distances against a golden
 * reference, and the division statistics of the run — the "Component"
 * half of the paper's Figure 1 narrative.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "workloads/dijkstra.hh"

using namespace capsule;

int
main()
{
    std::printf("CAPSULE example: component Dijkstra (Figure 1)\n\n");

    wl::DijkstraParams p;
    p.nodes = 12;
    p.avgDegree = 2.0;
    p.maxWeight = 9;
    p.seed = 7;

    std::map<ThreadId, ThreadId> parentOf;
    auto res = wl::runDijkstra(
        sim::MachineConfig::somt(), p,
        [&parentOf](ThreadId parent, ThreadId child) {
            parentOf[child] = parent;
            std::printf("  division: worker %d splits -> worker %d\n",
                        parent, child);
        });

    std::printf("\nworker genealogy (like the A -> A.B/A.C naming of"
                " Figure 1):\n");
    for (const auto &[child, parent] : parentOf) {
        std::string name = "w" + std::to_string(child);
        ThreadId cur = parent;
        while (true) {
            name = "w" + std::to_string(cur) + "." + name;
            auto it = parentOf.find(cur);
            if (it == parentOf.end())
                break;
            cur = it->second;
        }
        std::printf("  %s\n", name.c_str());
    }

    std::printf("\nshortest path distances from node 0:\n");
    for (int i = 0; i < p.nodes; ++i) {
        if (res.dist[std::size_t(i)] >= wl::unreachable)
            std::printf("  node %-2d : unreachable\n", i);
        else
            std::printf("  node %-2d : %lld\n", i,
                        (long long)res.dist[std::size_t(i)]);
    }

    std::printf("\nresult %s; %llu divisions granted of %llu "
                "requested; %llu worker deaths; %llu cycles\n",
                res.correct ? "matches the golden Dijkstra"
                            : "IS WRONG",
                (unsigned long long)res.stats.divisionsGranted,
                (unsigned long long)res.stats.divisionsRequested,
                (unsigned long long)res.stats.threadDeaths,
                (unsigned long long)res.stats.cycles);
    return res.correct ? 0 : 1;
}
