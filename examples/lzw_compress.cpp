/**
 * @file
 * Componentised LZW compression demo: compresses a generated text on
 * all three machines, verifies the round trip, and shows how the
 * division throttle limits fragmentation when parallel sections are
 * tiny (the Figure 7 effect at example scale).
 */

#include <cstdio>

#include "workloads/lzw.hh"

using namespace capsule;

int
main()
{
    std::printf("CAPSULE example: componentised LZW compression\n\n");

    wl::LzwParams p;
    p.length = 4096;
    p.minSplit = 64;
    p.seed = 11;

    auto run = [&p](const char *name, const sim::MachineConfig &cfg) {
        auto r = wl::runLzw(cfg, p);
        std::printf("%-18s %10llu cycles  %3d chunks  %5d codes  "
                    "round-trip %s\n",
                    name, (unsigned long long)r.stats.cycles,
                    int(r.metric("chunks")), int(r.metric("codes")),
                    r.correct ? "ok" : "FAILED");
        return r;
    };

    auto mono = run("superscalar", sim::MachineConfig::superscalar());
    run("smt-static", sim::MachineConfig::smtStatic());
    auto somt = run("somt", sim::MachineConfig::somt());

    std::printf("\nspeedup vs superscalar: %.2fx\n",
                double(mono.stats.cycles) /
                    double(somt.stats.cycles));

    // Tiny parallel sections: compare the throttle against raw greed.
    p.minSplit = 2;
    auto throttled = run("somt tiny chunks", sim::MachineConfig::somt());
    auto greedyCfg = sim::MachineConfig::somt();
    greedyCfg.division.policy = sim::DivisionPolicy::GreedyNoThrottle;
    auto greedy = run("  (no throttle)", greedyCfg);
    std::printf("\nthrottle denied %llu requests and kept "
                "fragmentation at %d chunks (vs %d unthrottled)\n",
                (unsigned long long)
                    throttled.stats.divisionsThrottled,
                int(throttled.metric("chunks")),
                int(greedy.metric("chunks")));
    return mono.correct && somt.correct ? 0 : 1;
}
