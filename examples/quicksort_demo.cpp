/**
 * @file
 * QuickSort division-tree demo (the Figure 6 artifact, in miniature):
 * sorts one list on the SOMT, prints the irregular division tree as
 * ASCII, and compares the three machines on the same input.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "workloads/quicksort.hh"

using namespace capsule;

namespace
{

void
printTree(const std::map<ThreadId, std::vector<ThreadId>> &kids,
          ThreadId node, int depth)
{
    std::printf("%*sworker %d\n", depth * 2, "", node);
    auto it = kids.find(node);
    if (it == kids.end())
        return;
    for (ThreadId c : it->second)
        printTree(kids, c, depth + 1);
}

} // namespace

int
main()
{
    std::printf("CAPSULE example: componentised QuickSort\n\n");

    wl::QuickSortParams p;
    p.length = 2048;
    p.distribution = wl::ListDistribution::Exponential;
    p.seed = 3;

    std::map<ThreadId, std::vector<ThreadId>> kids;
    auto somt = wl::runQuickSort(
        sim::MachineConfig::somt(), p,
        [&kids](ThreadId parent, ThreadId child) {
            kids[parent].push_back(child);
        });

    std::printf("division tree (irregular, pivot-dependent — the "
                "Figure 6 shape):\n");
    printTree(kids, 0, 1);

    auto mono = wl::runQuickSort(sim::MachineConfig::superscalar(), p);
    auto stat = wl::runQuickSort(sim::MachineConfig::smtStatic(), p);

    std::printf("\n%-16s %12s %8s %s\n", "machine", "cycles", "ipc",
                "sorted");
    auto row = [](const char *name, const wl::WorkloadResult &r) {
        std::printf("%-16s %12llu %8.2f %s\n", name,
                    (unsigned long long)r.stats.cycles, r.stats.ipc,
                    r.correct ? "yes" : "NO");
    };
    row("superscalar", mono);
    row("smt-static", stat);
    row("somt", somt);
    std::printf("\nspeedup: %.2fx vs superscalar, %.2fx vs static\n",
                double(mono.stats.cycles) / double(somt.stats.cycles),
                double(stat.stats.cycles) / double(somt.stats.cycles));
    return somt.correct && mono.correct && stat.correct ? 0 : 1;
}
