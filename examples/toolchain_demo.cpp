/**
 * @file
 * Figure 2 end-to-end: the paper's Dijkstra worker source runs
 * through the CAPSULE pre-processor (source -> three versions + the
 * probe switch) and the assembly post-processor (probe call site ->
 * nthr form), and the rewritten assembly is then executed on the
 * SOMT machine.
 */

#include <cstdio>
#include <memory>

#include "casm/assembler.hh"
#include "front/asm_program.hh"
#include "sim/machine.hh"
#include "toolchain/postprocessor.hh"
#include "toolchain/preprocessor.hh"

using namespace capsule;

int
main()
{
    std::printf("CAPSULE example: the Figure-2 toolchain pipeline\n");

    // ---- (a) the worker source -------------------------------------
    const char *source =
        "worker void explore(node_t *node, int from, int len) {\n"
        "  if (len < node->dist) {\n"
        "    node->dist = len;\n"
        "    for (int i = 0; i < node->nchildren; i++) {\n"
        "      coworker explore(node->child[i], node->id,\n"
        "                       len + node->w[i]);\n"
        "    }\n"
        "  }\n"
        "}\n";
    std::printf("\n--- (a) source ---------------------------------\n"
                "%s",
                source);

    // ---- (b) pre-processed -----------------------------------------
    tc::Preprocessor pp;
    auto pre = pp.process(source);
    if (!pre.ok) {
        std::printf("pre-processing failed: %s\n",
                    pre.diagnostics[0].c_str());
        return 1;
    }
    std::printf("\n--- (b) pre-processed --------------------------\n"
                "%s",
                pre.output.c_str());
    std::printf("\n(%d coworker call(s) rewritten, %d locks "
                "inserted)\n",
                pre.coworkerCallsRewritten, pre.locksInserted);

    // ---- (c) assembly before / after the post-processor ------------
    const char *asmBefore =
        "  lui r10, 8\n"
        "entry:\n"
        "  jal r31, __capsule_probe\n"
        "  addi r2, r0, -1\n"
        "  beq r1, r2, Lseq\n"
        "  beq r1, r0, Lleft\n"
        "  jmp Lright\n"
        "Lseq:\n"
        "  addi r3, r0, 1\n"
        "  sd r3, 0(r10)\n"
        "  sd r3, 8(r10)\n"
        "  halt\n"
        "Lleft:\n"
        "  addi r4, r0, 2\n"
        "  sd r4, 0(r10)\n"
        "  halt\n"
        "Lright:\n"
        "  addi r5, r0, 3\n"
        "  sd r5, 8(r10)\n"
        "  kthr\n";
    std::printf("\n--- assembly with the software probe -----------\n"
                "%s",
                asmBefore);

    auto post = tc::postprocess(asmBefore);
    std::printf("\n--- (c) post-processed (nthr form) -------------\n"
                "%s",
                post.output.c_str());

    // ---- run the rewritten assembly on the machine ------------------
    auto img = casm::Assembler::assembleOrDie(post.output);
    front::AsmProcess proc(img);
    sim::Machine machine(sim::MachineConfig::somt());
    machine.addThread(std::make_unique<front::AsmProgram>(proc));
    auto stats = machine.run();

    std::printf("\nexecuted on the SOMT: %llu cycles, division %s, "
                "left tag=%llu right tag=%llu\n",
                (unsigned long long)stats.cycles,
                stats.divisionsGranted ? "granted" : "denied",
                (unsigned long long)proc.memory.read(0x8000, 8),
                (unsigned long long)proc.memory.read(0x8008, 8));
    bool ok = stats.divisionsGranted == 1 &&
              proc.memory.read(0x8000, 8) == 2 &&
              proc.memory.read(0x8008, 8) == 3;
    std::printf("%s\n", ok ? "division executed both halves "
                             "concurrently — Figure 2 reproduced"
                           : "UNEXPECTED RESULT");
    return ok ? 0 : 1;
}
