/**
 * @file
 * CAPSULE quickstart: write a divisible worker, run it on the three
 * evaluated processors (superscalar, static SMT, SOMT), and compare.
 *
 * The worker sums an array by recursively halving itself whenever the
 * architecture grants a division — the canonical CAPSULE pattern.
 */

#include <cstdio>

#include "core/kernel_program.hh"
#include "core/worker.hh"
#include "sim/machine.hh"
#include "workloads/harness.hh"

using namespace capsule;

namespace
{

struct SumState
{
    Addr base = 0;
    std::vector<std::int64_t> data;
    std::int64_t result = 0;
    Addr resultAddr = 0;
};

/** Sum data[lo, hi): divide in half when the architecture allows. */
rt::Task
sumRange(rt::Worker &w, SumState &st, int lo, int hi)
{
    if (hi - lo > 64) {
        int mid = lo + (hi - lo) / 2;
        bool granted = co_await w.probe(
            [&st, mid, hi](rt::Worker &cw) -> rt::Task {
                return sumRange(cw, st, mid, hi);
            },
            /*site=*/1);
        co_await sumRange(w, st, lo, mid);
        if (!granted)
            co_await sumRange(w, st, mid, hi);
        co_return;
    }
    std::int64_t local = 0;
    rt::Val acc = co_await w.alu();
    for (int i = lo; i < hi; ++i) {
        local += st.data[std::size_t(i)];
        rt::Val v = co_await w.load(st.base + Addr(i) * 8);
        acc = co_await w.alu(acc, v);
        co_await w.branch(/*site=*/2, i + 1 < hi, acc);
    }
    // Merge into the shared result under the hardware lock.
    co_await w.lock(st.resultAddr);
    rt::Val r = co_await w.load(st.resultAddr);
    st.result += local;
    rt::Val nr = co_await w.alu(r, acc);
    co_await w.store(st.resultAddr, nr);
    co_await w.unlock(st.resultAddr);
}

Cycle
runOn(const sim::MachineConfig &cfg, int n)
{
    rt::Exec exec;
    SumState st;
    st.data.resize(std::size_t(n));
    for (int i = 0; i < n; ++i)
        st.data[std::size_t(i)] = i;
    st.base = exec.arena().alloc(std::uint64_t(n) * 8, 64);
    st.resultAddr = exec.arena().alloc(8, 8);

    auto stats = wl::simulate(cfg, exec,
                              [&st, n](rt::Worker &w) -> rt::Task {
                                  return sumRange(w, st, 0, n);
                              });

    std::int64_t expect = std::int64_t(n) * (n - 1) / 2;
    std::printf("  %-12s %10llu cycles  ipc=%.2f  divisions=%llu/%llu"
                "  sum %s\n",
                cfg.name.c_str(),
                (unsigned long long)stats.cycles,
                stats.ipc,
                (unsigned long long)stats.divisionsGranted,
                (unsigned long long)stats.divisionsRequested,
                st.result == expect ? "ok" : "WRONG");
    return stats.cycles;
}

} // namespace

int
main()
{
    constexpr int n = 8192;
    std::printf("CAPSULE quickstart: divisible array sum (%d elems)\n",
                n);
    Cycle ss = runOn(sim::MachineConfig::superscalar(), n);
    Cycle smt = runOn(sim::MachineConfig::smtStatic(), n);
    Cycle somt = runOn(sim::MachineConfig::somt(), n);
    std::printf("speedup vs superscalar: static-SMT %.2fx, SOMT %.2fx\n",
                double(ss) / double(smt), double(ss) / double(somt));
    return 0;
}
