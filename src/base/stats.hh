/**
 * @file
 * Lightweight named-counter statistics registry, in the spirit of the
 * SimpleScalar / gem5 stats packages but deliberately small. Every
 * simulator structure owns Scalar counters registered against a
 * StatGroup; dump() renders them in registration order.
 */

#ifndef CAPSULE_BASE_STATS_HH
#define CAPSULE_BASE_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace capsule
{

/** A single named 64-bit counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(std::uint64_t d) { val += d; return *this; }
    void reset() { val = 0; }
    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/**
 * A group of statistics with hierarchical names. Groups do not own the
 * counters; counters are members of the simulator objects and register
 * themselves here for dumping.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name)
        : name(std::move(group_name))
    {}

    /** Register a scalar counter under this group. */
    void
    add(const std::string &stat_name, const Scalar &s,
        const std::string &desc = "")
    {
        entries.push_back(Entry{stat_name, desc,
                                [&s] { return double(s.value()); }});
    }

    /** Register a derived (formula) statistic evaluated at dump time. */
    void
    addFormula(const std::string &stat_name, std::function<double()> fn,
               const std::string &desc = "")
    {
        entries.push_back(Entry{stat_name, desc, std::move(fn)});
    }

    /** Render all statistics, one per line: group.name  value  # desc. */
    void dump(std::ostream &os) const;

    /** Fetch a value by name (for tests); panics if absent. */
    double get(const std::string &stat_name) const;

    /** True if a statistic with this name is registered. */
    bool has(const std::string &stat_name) const;

    const std::string &groupName() const { return name; }

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        std::function<double()> value;
    };

    std::string name;
    std::vector<Entry> entries;
};

} // namespace capsule

#endif // CAPSULE_BASE_STATS_HH
