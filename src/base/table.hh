/**
 * @file
 * Fixed-width text table printer used by the benchmark harnesses to
 * print rows in the same shape as the paper's tables.
 */

#ifndef CAPSULE_BASE_TABLE_HH
#define CAPSULE_BASE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace capsule
{

/** Accumulates rows of strings and renders them column-aligned. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);
    /** Convenience: format an integer with thousands separators. */
    static std::string count(std::uint64_t v);
    /** Convenience: percentage string with one decimal, e.g. "40.2%". */
    static std::string pct(double fraction);

    void render(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace capsule

#endif // CAPSULE_BASE_TABLE_HH
