#include "base/rng.hh"

// Rng is header-only; this translation unit pins the library archive.
