/**
 * @file
 * Fundamental scalar types shared across the CAPSULE code base.
 */

#ifndef CAPSULE_BASE_TYPES_HH
#define CAPSULE_BASE_TYPES_HH

#include <cstdint>

namespace capsule
{

/** Simulated byte address. The simulated address space is 64-bit. */
using Addr = std::uint64_t;

/** Simulation time in processor cycles. */
using Cycle = std::uint64_t;

/** Dynamic-instruction sequence number (global, monotonically rising). */
using InstSeq = std::uint64_t;

/** Hardware context / thread slot identifier. */
using ThreadId = std::int32_t;

/** Sentinel for "no thread". */
inline constexpr ThreadId invalidThread = -1;

} // namespace capsule

#endif // CAPSULE_BASE_TYPES_HH
