/**
 * @file
 * Fundamental scalar types shared across the CAPSULE code base.
 */

#ifndef CAPSULE_BASE_TYPES_HH
#define CAPSULE_BASE_TYPES_HH

// Fail early and legibly on a wrong -std= flag: without this, the
// first symptoms are opaque errors deep inside the coroutine header
// ("requires -fcoroutines") or on defaulted operator== in isa.hh.
#if __cplusplus < 202002L
#error "CAPSULE requires C++20 (coroutines, defaulted operator==): compile with -std=c++20 or newer"
#endif

#include <cstdint>

namespace capsule
{

/** Simulated byte address. The simulated address space is 64-bit. */
using Addr = std::uint64_t;

/** Simulation time in processor cycles. */
using Cycle = std::uint64_t;

/** Dynamic-instruction sequence number (global, monotonically rising). */
using InstSeq = std::uint64_t;

/** Hardware context / thread slot identifier. */
using ThreadId = std::int32_t;

/** Sentinel for "no thread". */
inline constexpr ThreadId invalidThread = -1;

} // namespace capsule

#endif // CAPSULE_BASE_TYPES_HH
