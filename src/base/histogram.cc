#include "base/histogram.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "base/logging.hh"

namespace capsule
{

Histogram::Histogram(double lo_, double hi_, std::size_t num_bins)
    : lo(lo_), hi(hi_), counts(num_bins, 0)
{
    CAPSULE_ASSERT(num_bins > 0, "histogram needs at least one bin");
    CAPSULE_ASSERT(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double sample)
{
    double frac = (sample - lo) / (hi - lo);
    auto bin = static_cast<std::int64_t>(frac * double(counts.size()));
    bin = std::clamp<std::int64_t>(bin, 0,
                                   std::int64_t(counts.size()) - 1);
    ++counts[std::size_t(bin)];

    if (total == 0) {
        minSeen = maxSeen = sample;
    } else {
        minSeen = std::min(minSeen, sample);
        maxSeen = std::max(maxSeen, sample);
    }
    ++total;
    sum += sample;
    sumSq += sample * sample;
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo + (hi - lo) * double(bin) / double(counts.size());
}

double
Histogram::binHigh(std::size_t bin) const
{
    return binLow(bin + 1);
}

double
Histogram::mean() const
{
    return total ? sum / double(total) : 0.0;
}

double
Histogram::stddev() const
{
    if (!total)
        return 0.0;
    double m = mean();
    double var = sumSq / double(total) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Histogram::render(std::ostream &os, const std::string &label,
                  int width) const
{
    std::size_t peak = 1;
    for (auto c : counts)
        peak = std::max(peak, c);

    os << label << " (n=" << total << ", mean=" << std::fixed
       << std::setprecision(0) << mean() << ", sd=" << stddev() << ")\n";
    for (std::size_t b = 0; b < counts.size(); ++b) {
        int bar = int(double(counts[b]) / double(peak) * width + 0.5);
        os << std::setw(12) << std::setprecision(0) << binLow(b) << "-"
           << std::setw(12) << binHigh(b) << " |";
        for (int i = 0; i < bar; ++i)
            os << '#';
        os << ' ' << counts[b] << '\n';
    }
}

} // namespace capsule
