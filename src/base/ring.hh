/**
 * @file
 * Fixed-capacity ring buffer for the pipeline's in-order queues
 * (per-thread fetch queue, ROB and LSQ). The hardware structures
 * these model are fixed-size by definition, so a flat circular array
 * replaces std::deque's chunked heap allocation on the per-cycle hot
 * path: push/pop are two index updates, iteration is contiguous
 * (modulo one wrap), and a queue's whole lifetime performs exactly
 * one allocation.
 */

#ifndef CAPSULE_BASE_RING_HH
#define CAPSULE_BASE_RING_HH

#include <cstddef>
#include <vector>

#include "base/logging.hh"

namespace capsule
{

/** Fixed-capacity FIFO ring buffer. */
template <typename T>
class Ring
{
  public:
    Ring() = default;

    explicit Ring(std::size_t capacity) { reset(capacity); }

    /** (Re)size the buffer; drops any current contents. */
    void
    reset(std::size_t capacity)
    {
        CAPSULE_ASSERT(capacity > 0, "ring capacity must be positive");
        buf.assign(capacity, T{});
        head = 0;
        count = 0;
    }

    std::size_t size() const { return count; }
    std::size_t capacity() const { return buf.size(); }
    bool empty() const { return count == 0; }
    bool full() const { return count == buf.size(); }

    void
    push_back(const T &v)
    {
        CAPSULE_ASSERT(count < buf.size(), "ring overflow");
        buf[wrap(head + count)] = v;
        ++count;
    }

    T &
    front()
    {
        CAPSULE_ASSERT(count > 0, "front() on empty ring");
        return buf[head];
    }

    const T &
    front() const
    {
        CAPSULE_ASSERT(count > 0, "front() on empty ring");
        return buf[head];
    }

    void
    pop_front()
    {
        CAPSULE_ASSERT(count > 0, "pop_front() on empty ring");
        buf[head] = T{};  // release payload resources eagerly
        head = wrap(head + 1);
        --count;
    }

    /** i-th element from the front (0 = oldest). */
    const T &
    operator[](std::size_t i) const
    {
        CAPSULE_ASSERT(i < count, "ring index out of range");
        return buf[wrap(head + i)];
    }

    /** Minimal forward iteration, oldest first (for range-for). */
    class const_iterator
    {
      public:
        const_iterator(const Ring *r, std::size_t i) : ring(r), at(i) {}

        const T &operator*() const { return (*ring)[at]; }

        const_iterator &
        operator++()
        {
            ++at;
            return *this;
        }

        bool
        operator!=(const const_iterator &o) const
        {
            return at != o.at;
        }

      private:
        const Ring *ring;
        std::size_t at;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count}; }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        return i < buf.size() ? i : i - buf.size();
    }

    std::vector<T> buf;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace capsule

#endif // CAPSULE_BASE_RING_HH
