/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * invariant violations (aborts), fatal() for user-caused conditions
 * (clean exit), warn()/inform() for status messages.
 */

#ifndef CAPSULE_BASE_LOGGING_HH
#define CAPSULE_BASE_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace capsule
{

/** Print "panic: <msg>" with location and abort(). Internal bugs only. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print "fatal: <msg>" and exit(1). User-correctable conditions. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print "warn: <msg>" to stderr; simulation continues. */
void warnImpl(const std::string &msg);

/** Print "info: <msg>" to stderr; simulation continues. */
void informImpl(const std::string &msg);

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace capsule

#define CAPSULE_PANIC(...) \
    ::capsule::panicImpl(__FILE__, __LINE__, \
                         ::capsule::detail::formatAll(__VA_ARGS__))

#define CAPSULE_FATAL(...) \
    ::capsule::fatalImpl(__FILE__, __LINE__, \
                         ::capsule::detail::formatAll(__VA_ARGS__))

#define CAPSULE_WARN(...) \
    ::capsule::warnImpl(::capsule::detail::formatAll(__VA_ARGS__))

#define CAPSULE_INFORM(...) \
    ::capsule::informImpl(::capsule::detail::formatAll(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define CAPSULE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            CAPSULE_PANIC("assertion '" #cond "' failed. ", \
                          ##__VA_ARGS__); \
        } \
    } while (0)

#endif // CAPSULE_BASE_LOGGING_HH
