#include "base/stats.hh"

#include <iomanip>

namespace capsule
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : entries) {
        os << std::left << std::setw(40) << (name + "." + e.name)
           << std::right << std::setw(16) << e.value();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
}

double
StatGroup::get(const std::string &stat_name) const
{
    for (const auto &e : entries) {
        if (e.name == stat_name)
            return e.value();
    }
    CAPSULE_PANIC("unknown stat '", name, ".", stat_name, "'");
}

bool
StatGroup::has(const std::string &stat_name) const
{
    for (const auto &e : entries) {
        if (e.name == stat_name)
            return true;
    }
    return false;
}

} // namespace capsule
