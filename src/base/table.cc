#include "base/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace capsule
{

TextTable::TextTable(std::vector<std::string> hdr)
    : header(std::move(hdr))
{
    CAPSULE_ASSERT(!header.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    CAPSULE_ASSERT(row.size() == header.size(),
                   "row arity ", row.size(), " != header arity ",
                   header.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::count(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int since = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since == 3) {
            out.push_back(',');
            since = 0;
        }
        out.push_back(*it);
        ++since;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
TextTable::pct(double fraction)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << fraction * 100.0 << '%';
    return os.str();
}

void
TextTable::render(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(int(width[c]) + 2) << row[c];
        }
        os << '\n';
    };

    emit(header);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
}

} // namespace capsule
