#include "base/dot.hh"

namespace capsule
{

void
DotGraph::render(std::ostream &os) const
{
    os << "digraph " << name << " {\n";
    for (const auto &[id, label] : nodes) {
        os << "  \"" << id << "\"";
        if (!label.empty())
            os << " [label=\"" << label << "\"]";
        os << ";\n";
    }
    for (const auto &[from, to] : edges)
        os << "  \"" << from << "\" -> \"" << to << "\";\n";
    os << "}\n";
}

} // namespace capsule
