/**
 * @file
 * The one FNV-1a 64-bit digest builder behind every content-addressed
 * identity in the code base: `MachineConfig::digest()`, assembled
 * `casm::Image` digests, the execution-semantics table hash and the
 * result-cache keys of the simulation farm (harness/result_cache.hh).
 *
 * Canonical-serialization rules (what makes two digests comparable
 * across platforms and across refactors):
 *  - integers are widened to `std::uint64_t` and fed as 8 explicit
 *    little-endian bytes, never through their in-memory representation;
 *  - floating-point values are fed as their IEEE-754 bit pattern;
 *  - strings are fed length-prefixed, so adjacent fields cannot alias
 *    ("ab" + "c" vs "a" + "bc").
 *
 * A digest changes exactly when the serialized field list changes —
 * the pinned-constant tests (tests/test_farm.cc) make a silent change
 * of meaning loud.
 */

#ifndef CAPSULE_BASE_DIGEST_HH
#define CAPSULE_BASE_DIGEST_HH

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace capsule
{

/** Incremental FNV-1a (64-bit offset basis / prime). */
class Digest
{
  public:
    static constexpr std::uint64_t offsetBasis = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t prime = 0x100000001b3ULL;

    /** Feed raw bytes. */
    Digest &
    bytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= prime;
        }
        return *this;
    }

    /** Feed an integer as 8 explicit little-endian bytes. */
    Digest &
    u64(std::uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = (unsigned char)(v >> (8 * i));
        return bytes(b, sizeof b);
    }

    Digest &
    i64(std::int64_t v)
    {
        return u64(std::uint64_t(v));
    }

    /** Feed a double as its IEEE-754 bit pattern (bit-exact, covers
     *  NaN payloads and signed zeros). */
    Digest &
    f64(double v)
    {
        return u64(std::bit_cast<std::uint64_t>(v));
    }

    /** Feed a string, length-prefixed. */
    Digest &
    str(std::string_view s)
    {
        u64(s.size());
        return bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = offsetBasis;
};

/** One-shot digest of a string (the PR 6 semantics-table pin shape:
 *  plain FNV-1a over the bytes, no length prefix). */
inline std::uint64_t
fnv1aBytes(std::string_view s)
{
    std::uint64_t h = Digest::offsetBasis;
    for (unsigned char c : s) {
        h ^= c;
        h *= Digest::prime;
    }
    return h;
}

/** Canonical 16-digit lower-case hex rendering of a digest (cache
 *  entry names, journal lines, JSON identity fields). */
inline std::string
toHex16(std::uint64_t v)
{
    static const char *digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[std::size_t(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return s;
}

/** Parse a toHex16 rendering; false on anything else. */
inline bool
parseHex16(std::string_view s, std::uint64_t &out)
{
    if (s.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | std::uint64_t(d);
    }
    out = v;
    return true;
}

} // namespace capsule

#endif // CAPSULE_BASE_DIGEST_HH
