/**
 * @file
 * Minimal GraphViz DOT emitter, used to regenerate Figure 6 (the
 * irregular QuickSort division tree).
 */

#ifndef CAPSULE_BASE_DOT_HH
#define CAPSULE_BASE_DOT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace capsule
{

/** Builds a directed graph and renders it in DOT syntax. */
class DotGraph
{
  public:
    explicit DotGraph(std::string graph_name)
        : name(std::move(graph_name))
    {}

    /** Add a node with an optional label. Ids are arbitrary strings. */
    void
    addNode(const std::string &id, const std::string &label = "")
    {
        nodes.emplace_back(id, label);
    }

    void
    addEdge(const std::string &from, const std::string &to)
    {
        edges.emplace_back(from, to);
    }

    std::size_t nodeCount() const { return nodes.size(); }
    std::size_t edgeCount() const { return edges.size(); }

    void render(std::ostream &os) const;

  private:
    std::string name;
    std::vector<std::pair<std::string, std::string>> nodes;
    std::vector<std::pair<std::string, std::string>> edges;
};

} // namespace capsule

#endif // CAPSULE_BASE_DOT_HH
