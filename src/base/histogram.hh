/**
 * @file
 * Fixed-bin histogram used to regenerate the paper's execution-time
 * distribution figures (Figures 3 and 5): x-axis execution time, y-axis
 * number of data sets falling in the bin.
 */

#ifndef CAPSULE_BASE_HISTOGRAM_HH
#define CAPSULE_BASE_HISTOGRAM_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace capsule
{

/** Histogram over double samples with uniform bins. */
class Histogram
{
  public:
    /**
     * @param lo lower bound of the first bin
     * @param hi upper bound of the last bin
     * @param bins number of uniform bins; samples outside [lo,hi) are
     *        clamped into the first / last bin so no data is dropped.
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double sample);

    std::size_t count(std::size_t bin) const { return counts.at(bin); }
    std::size_t bins() const { return counts.size(); }
    std::size_t samples() const { return total; }
    double binLow(std::size_t bin) const;
    double binHigh(std::size_t bin) const;

    double mean() const;
    double min() const { return minSeen; }
    double max() const { return maxSeen; }
    /** Population standard deviation. */
    double stddev() const;

    /**
     * Render an ASCII bar chart, one row per bin, labelled with the bin
     * range; `width` is the width of the widest bar in characters.
     */
    void render(std::ostream &os, const std::string &label,
                int width = 50) const;

  private:
    double lo;
    double hi;
    std::vector<std::size_t> counts;
    std::size_t total = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double minSeen = 0.0;
    double maxSeen = 0.0;
};

} // namespace capsule

#endif // CAPSULE_BASE_HISTOGRAM_HH
