/**
 * @file
 * Deterministic random number generation. All stochastic behaviour in
 * the simulator and the workload generators flows through Rng so that a
 * given seed always reproduces the same experiment.
 */

#ifndef CAPSULE_BASE_RNG_HH
#define CAPSULE_BASE_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace capsule
{

/**
 * Seeded pseudo-random source wrapping std::mt19937_64 with the handful
 * of draw shapes the workloads need.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        std::uniform_int_distribution<std::uint64_t> d(lo, hi);
        return d(engine);
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        std::uniform_real_distribution<double> d(0.0, 1.0);
        return d(engine);
    }

    /** Gaussian with given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        std::normal_distribution<double> d(mean, sigma);
        return d(engine);
    }

    /** Exponential with given rate parameter lambda. */
    double
    exponential(double lambda)
    {
        std::exponential_distribution<double> d(lambda);
        return d(engine);
    }

    /** True with probability p. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution d(p);
        return d(engine);
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniform(0, i - 1);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel structure). */
    Rng
    fork()
    {
        return Rng(engine());
    }

  private:
    std::mt19937_64 engine;
};

} // namespace capsule

#endif // CAPSULE_BASE_RNG_HH
