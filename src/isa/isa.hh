/**
 * @file
 * CapISA: the RISC instruction set understood by the CAPSULE simulator.
 *
 * CapISA is a small fixed-width (32-bit) ISA with 32 integer registers
 * (r0 hard-wired to zero), 31 floating-point registers, and the four
 * CAPSULE extension instructions from the paper:
 *
 *  - nthr rd, label  : conditional thread division. If the architecture
 *    grants the division, the parent continues at the fall-through with
 *    rd = 0 and a new thread starts at `label` with a copy of the
 *    registers and rd = 1. If the architecture denies it, execution
 *    falls through with rd = -1. This matches the three-way switch the
 *    toolchain generates (case -1 sequential / 0 left / 1 right).
 *  - kthr           : kill the executing thread; its context is freed.
 *  - mlock rs       : acquire the hardware lock on the base address in
 *    rs; stalls the thread while another thread owns the lock.
 *  - munlock rs     : release the lock on the base address in rs; the
 *    oldest waiter becomes the new owner.
 */

#ifndef CAPSULE_ISA_ISA_HH
#define CAPSULE_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace capsule::isa
{

/** Number of integer architectural registers (r0 reads as zero). */
inline constexpr int numIntRegs = 32;
/** Number of floating-point architectural registers. */
inline constexpr int numFpRegs = 31;
/** Register id meaning "no register operand". */
inline constexpr std::uint8_t noReg = 0xff;

/**
 * Functional-unit class of an instruction; the timing model schedules
 * on these (Table 1: 8 IALU, 4 IMULT, 4 FPALU, 4 FPMULT).
 */
enum class OpClass : std::uint8_t
{
    Nop,
    IntAlu,    ///< 1-cycle integer ops (add, sub, logic, compare, shift)
    IntMult,   ///< integer multiply / divide
    FpAlu,     ///< fp add/sub/compare/convert
    FpMult,    ///< fp multiply / divide
    Load,
    Store,
    Branch,    ///< conditional branch
    Jump,      ///< unconditional jump / call / return
    Nthr,      ///< CAPSULE thread division probe+spawn
    Kthr,      ///< CAPSULE thread kill
    Mlock,     ///< CAPSULE lock acquire
    Munlock,   ///< CAPSULE lock release
    Halt,      ///< stop the whole program (ancestor only)
};

/** Concrete opcode (superset; each maps to one OpClass). */
enum class Opcode : std::uint8_t
{
    Nop = 0,
    // Integer ALU.
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    Addi, Andi, Ori, Xori, Slli, Srli, Slti, Lui,
    // Integer multiply / divide.
    Mul, Div, Rem,
    // Floating point.
    Fadd, Fsub, Fcmp, Fcvt, Fmul, Fdiv,
    // Memory.
    Lb, Lh, Lw, Ld, Sb, Sh, Sw, Sd, Fld, Fsd,
    // Control.
    Beq, Bne, Blt, Bge, Jmp, Jal, Jr,
    // CAPSULE extensions.
    NthrOp, KthrOp, MlockOp, MunlockOp,
    HaltOp,
    NumOpcodes,
};

/** Map opcode to its scheduling class. */
OpClass opClassOf(Opcode op);

/** Mnemonic text for an opcode (as accepted by the assembler). */
const char *mnemonic(Opcode op);

/** True for opcodes whose destination is a floating-point register. */
bool writesFpReg(Opcode op);

/** Memory access size in bytes for load/store opcodes (0 otherwise). */
int accessSize(Opcode op);

/**
 * A decoded static instruction: opcode plus register / immediate
 * fields. This is the output of decode() and the assembler.
 */
struct StaticInst
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = noReg;    ///< destination register
    std::uint8_t rs1 = noReg;   ///< first source
    std::uint8_t rs2 = noReg;   ///< second source
    std::int32_t imm = 0;       ///< immediate / branch displacement

    bool operator==(const StaticInst &) const = default;
};

/**
 * Binary instruction layout (little-endian 32-bit word):
 *   [31:24] opcode  [23:18] rd  [17:12] rs1  [11:6] rs2  [5:0] immLo
 * For immediate-bearing forms, rs2/immLo are replaced by a 18-bit
 * signed immediate in [17:0] with rs2 unused, selected by opcode.
 */
std::uint32_t encode(const StaticInst &inst);

/** Inverse of encode(); panics on an invalid opcode byte. */
StaticInst decode(std::uint32_t word);

/** Render "op rd, rs1, rs2/imm" for logs and the disassembler. */
std::string disassemble(const StaticInst &inst);

/**
 * A dynamic instruction record: what the timing pipeline consumes from
 * a functional front end. PC and branch outcome are known functionally
 * (execute-at-fetch front ends), the pipeline models all timing.
 */
struct DynInst
{
    OpClass cls = OpClass::Nop;
    Addr pc = 0;
    std::uint8_t rd = noReg;
    std::uint8_t rs1 = noReg;
    std::uint8_t rs2 = noReg;
    bool fpRegs = false;      ///< dest/source are FP registers
    Addr effAddr = 0;         ///< LOAD/STORE/MLOCK/MUNLOCK address
    int accessBytes = 0;      ///< memory access size
    Addr target = 0;          ///< taken-branch / nthr-child target PC
    bool taken = false;       ///< actual branch outcome
};

} // namespace capsule::isa

#endif // CAPSULE_ISA_ISA_HH
