#include "isa/isa.hh"

#include <sstream>

namespace capsule::isa
{
namespace
{

std::string
regName(std::uint8_t r, bool fp)
{
    if (r == noReg)
        return "-";
    std::ostringstream os;
    os << (fp ? 'f' : 'r') << int(r);
    return os.str();
}

} // namespace

std::string
disassemble(const StaticInst &inst)
{
    std::ostringstream os;
    os << mnemonic(inst.op);
    bool fp = writesFpReg(inst.op) || inst.op == Opcode::Fsd ||
              inst.op == Opcode::Fcmp;

    switch (opClassOf(inst.op)) {
      case OpClass::Nop:
      case OpClass::Kthr:
      case OpClass::Halt:
        break;
      case OpClass::IntAlu:
      case OpClass::IntMult:
      case OpClass::FpAlu:
      case OpClass::FpMult:
        // Register banks per operand: fcmp writes an int register
        // from fp sources, fcvt reads an int register into fp.
        os << ' ' << regName(inst.rd, writesFpReg(inst.op));
        if (inst.rs1 != noReg)
            os << ", "
               << regName(inst.rs1, fp && inst.op != Opcode::Fcvt);
        if (inst.rs2 != noReg)
            os << ", " << regName(inst.rs2, fp);
        else if (inst.op >= Opcode::Addi && inst.op <= Opcode::Lui)
            os << ", " << inst.imm;
        break;
      case OpClass::Load:
        os << ' ' << regName(inst.rd, fp) << ", " << inst.imm << "("
           << regName(inst.rs1, false) << ")";
        break;
      case OpClass::Store:
        os << ' ' << regName(inst.rs2, fp) << ", " << inst.imm << "("
           << regName(inst.rs1, false) << ")";
        break;
      case OpClass::Branch:
        os << ' ' << regName(inst.rs1, false) << ", "
           << regName(inst.rs2, false) << ", " << inst.imm;
        break;
      case OpClass::Jump:
        if (inst.op == Opcode::Jr)
            os << ' ' << regName(inst.rs1, false);
        else if (inst.op == Opcode::Jal)
            os << ' ' << regName(inst.rd, false) << ", " << inst.imm;
        else
            os << ' ' << inst.imm;
        break;
      case OpClass::Nthr:
        os << ' ' << regName(inst.rd, false) << ", " << inst.imm;
        break;
      case OpClass::Mlock:
      case OpClass::Munlock:
        os << ' ' << regName(inst.rs1, false);
        break;
    }
    return os.str();
}

} // namespace capsule::isa
