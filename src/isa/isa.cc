#include "isa/isa.hh"

#include "base/logging.hh"

namespace capsule::isa
{

OpClass
opClassOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
        return OpClass::Nop;
      case Opcode::Add: case Opcode::Sub: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Sll:
      case Opcode::Srl: case Opcode::Sra: case Opcode::Slt:
      case Opcode::Sltu: case Opcode::Addi: case Opcode::Andi:
      case Opcode::Ori: case Opcode::Xori: case Opcode::Slli:
      case Opcode::Srli: case Opcode::Slti: case Opcode::Lui:
        return OpClass::IntAlu;
      case Opcode::Mul: case Opcode::Div: case Opcode::Rem:
        return OpClass::IntMult;
      case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fcmp:
      case Opcode::Fcvt:
        return OpClass::FpAlu;
      case Opcode::Fmul: case Opcode::Fdiv:
        return OpClass::FpMult;
      case Opcode::Lb: case Opcode::Lh: case Opcode::Lw:
      case Opcode::Ld: case Opcode::Fld:
        return OpClass::Load;
      case Opcode::Sb: case Opcode::Sh: case Opcode::Sw:
      case Opcode::Sd: case Opcode::Fsd:
        return OpClass::Store;
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge:
        return OpClass::Branch;
      case Opcode::Jmp: case Opcode::Jal: case Opcode::Jr:
        return OpClass::Jump;
      case Opcode::NthrOp:
        return OpClass::Nthr;
      case Opcode::KthrOp:
        return OpClass::Kthr;
      case Opcode::MlockOp:
        return OpClass::Mlock;
      case Opcode::MunlockOp:
        return OpClass::Munlock;
      case Opcode::HaltOp:
        return OpClass::Halt;
      default:
        CAPSULE_PANIC("opClassOf: bad opcode ", int(op));
    }
}

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Slti: return "slti";
      case Opcode::Lui: return "lui";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fsub: return "fsub";
      case Opcode::Fcmp: return "fcmp";
      case Opcode::Fcvt: return "fcvt";
      case Opcode::Fmul: return "fmul";
      case Opcode::Fdiv: return "fdiv";
      case Opcode::Lb: return "lb";
      case Opcode::Lh: return "lh";
      case Opcode::Lw: return "lw";
      case Opcode::Ld: return "ld";
      case Opcode::Sb: return "sb";
      case Opcode::Sh: return "sh";
      case Opcode::Sw: return "sw";
      case Opcode::Sd: return "sd";
      case Opcode::Fld: return "fld";
      case Opcode::Fsd: return "fsd";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Jal: return "jal";
      case Opcode::Jr: return "jr";
      case Opcode::NthrOp: return "nthr";
      case Opcode::KthrOp: return "kthr";
      case Opcode::MlockOp: return "mlock";
      case Opcode::MunlockOp: return "munlock";
      case Opcode::HaltOp: return "halt";
      default:
        CAPSULE_PANIC("mnemonic: bad opcode ", int(op));
    }
}

bool
writesFpReg(Opcode op)
{
    switch (op) {
      case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fcvt:
      case Opcode::Fmul: case Opcode::Fdiv: case Opcode::Fld:
        return true;
      default:
        return false;
    }
}

int
accessSize(Opcode op)
{
    switch (op) {
      case Opcode::Lb: case Opcode::Sb: return 1;
      case Opcode::Lh: case Opcode::Sh: return 2;
      case Opcode::Lw: case Opcode::Sw: return 4;
      case Opcode::Ld: case Opcode::Sd:
      case Opcode::Fld: case Opcode::Fsd: return 8;
      default: return 0;
    }
}

} // namespace capsule::isa
