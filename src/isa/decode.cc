#include "isa/isa.hh"

#include "base/logging.hh"

namespace capsule::isa
{
namespace
{

/** Opcodes whose bits [17:0] hold a signed 18-bit immediate. */
bool
usesWideImm(Opcode op)
{
    switch (op) {
      case Opcode::Lui:
      case Opcode::Jmp: case Opcode::Jal:
      case Opcode::NthrOp:
        return true;
      default:
        return false;
    }
}

/** Opcodes encoding rs1 + a signed 12-bit immediate in [11:0]. */
bool
usesDisp(Opcode op)
{
    switch (op) {
      case Opcode::Addi: case Opcode::Andi: case Opcode::Ori:
      case Opcode::Xori: case Opcode::Slli: case Opcode::Srli:
      case Opcode::Slti:
      case Opcode::Lb: case Opcode::Lh: case Opcode::Lw:
      case Opcode::Ld: case Opcode::Fld:
      case Opcode::Sb: case Opcode::Sh: case Opcode::Sw:
      case Opcode::Sd: case Opcode::Fsd:
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

std::uint32_t
signedField(std::int32_t v, int bits)
{
    auto u = static_cast<std::uint32_t>(v);
    std::uint32_t mask = (1u << bits) - 1;
    std::int32_t lo = -(1 << (bits - 1));
    std::int32_t hi = (1 << (bits - 1)) - 1;
    CAPSULE_ASSERT(v >= lo && v <= hi,
                   "immediate ", v, " out of ", bits, "-bit range");
    return u & mask;
}

std::int32_t
signExtend(std::uint32_t field, int bits)
{
    std::uint32_t sign = 1u << (bits - 1);
    std::uint32_t mask = (1u << bits) - 1;
    field &= mask;
    if (field & sign)
        return std::int32_t(field | ~mask);
    return std::int32_t(field);
}

std::uint8_t
regField(std::uint8_t r)
{
    // noReg is stored as 0x3f (6-bit all-ones); real registers 0..62.
    return r == noReg ? 0x3f : r;
}

std::uint8_t
regUnfield(std::uint32_t f)
{
    return f == 0x3f ? noReg : std::uint8_t(f);
}

/**
 * True for disp-format opcodes whose bits [23:18] hold a second source
 * register (store data register, branch comparand) instead of rd.
 */
bool
dispSlotIsSource(Opcode op)
{
    switch (op) {
      case Opcode::Sb: case Opcode::Sh: case Opcode::Sw:
      case Opcode::Sd: case Opcode::Fsd:
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

} // namespace

std::uint32_t
encode(const StaticInst &inst)
{
    auto opbyte = std::uint32_t(inst.op);
    CAPSULE_ASSERT(inst.op < Opcode::NumOpcodes, "bad opcode");
    std::uint32_t word = opbyte << 24;

    if (usesWideImm(inst.op)) {
        word |= std::uint32_t(regField(inst.rd)) << 18;
        word |= signedField(inst.imm, 18);
    } else if (usesDisp(inst.op)) {
        std::uint8_t slot =
            dispSlotIsSource(inst.op) ? inst.rs2 : inst.rd;
        word |= std::uint32_t(regField(slot)) << 18;
        word |= std::uint32_t(regField(inst.rs1)) << 12;
        word |= signedField(inst.imm, 12);
    } else {
        word |= std::uint32_t(regField(inst.rd)) << 18;
        word |= std::uint32_t(regField(inst.rs1)) << 12;
        word |= std::uint32_t(regField(inst.rs2)) << 6;
        word |= signedField(inst.imm, 6);
    }
    return word;
}

StaticInst
decode(std::uint32_t word)
{
    StaticInst inst;
    std::uint32_t opbyte = word >> 24;
    CAPSULE_ASSERT(opbyte < std::uint32_t(Opcode::NumOpcodes),
                   "decode: bad opcode byte ", opbyte);
    inst.op = Opcode(opbyte);
    std::uint8_t slot = regUnfield((word >> 18) & 0x3f);

    if (usesWideImm(inst.op)) {
        inst.rd = slot;
        inst.imm = signExtend(word & 0x3ffff, 18);
    } else if (usesDisp(inst.op)) {
        if (dispSlotIsSource(inst.op))
            inst.rs2 = slot;
        else
            inst.rd = slot;
        inst.rs1 = regUnfield((word >> 12) & 0x3f);
        inst.imm = signExtend(word & 0xfff, 12);
    } else {
        inst.rd = slot;
        inst.rs1 = regUnfield((word >> 12) & 0x3f);
        inst.rs2 = regUnfield((word >> 6) & 0x3f);
        inst.imm = signExtend(word & 0x3f, 6);
    }
    return inst;
}

} // namespace capsule::isa
