#include "front/asm_program.hh"

#include "base/logging.hh"

namespace capsule::front
{

using isa::Opcode;
using isa::OpClass;

AsmProcess::AsmProcess(const casm::Image &img)
    : entry(img.base), codeBase(img.base)
{
    decoded.reserve(img.words.size());
    for (std::size_t i = 0; i < img.words.size(); ++i) {
        decoded.push_back(isa::decode(img.words[i]));
        memory.write(img.base + Addr(i) * 4, img.words[i], 4);
    }
}

isa::StaticInst
AsmProcess::fetch(Addr pc) const
{
    CAPSULE_ASSERT(pc >= codeBase && (pc - codeBase) / 4 < decoded.size(),
                   "instruction fetch outside code image at pc=", pc);
    CAPSULE_ASSERT(pc % 4 == 0, "misaligned pc ", pc);
    return decoded[(pc - codeBase) / 4];
}

AsmProgram::AsmProgram(AsmProcess &process)
    : proc(process), curPc(process.entry)
{
}

AsmProgram::AsmProgram(AsmProcess &process, const RegFile &regs,
                       Addr start_pc, std::int64_t nthr_result,
                       std::uint8_t nthr_rd)
    : proc(process), rf(regs), curPc(start_pc)
{
    if (nthr_rd != isa::noReg)
        writeInt(nthr_rd, nthr_result);
}

std::int64_t
AsmProgram::readInt(std::uint8_t r) const
{
    CAPSULE_ASSERT(r < isa::numIntRegs, "bad int reg ", int(r));
    return r == 0 ? 0 : rf.intRegs[r];
}

void
AsmProgram::writeInt(std::uint8_t r, std::int64_t v)
{
    CAPSULE_ASSERT(r < isa::numIntRegs, "bad int reg ", int(r));
    if (r != 0)
        rf.intRegs[r] = v;
}

bool
AsmProgram::next(isa::DynInst &out)
{
    CAPSULE_ASSERT(!pendingNthr,
                   "next() called with an unresolved nthr decision");
    if (done)
        return false;

    isa::StaticInst si = proc.fetch(curPc);
    out = isa::DynInst{};
    out.cls = isa::opClassOf(si.op);
    out.pc = curPc;
    out.rd = si.rd;
    out.rs1 = si.rs1;
    out.rs2 = si.rs2;
    out.fpRegs = isa::writesFpReg(si.op) || si.op == Opcode::Fsd ||
                 si.op == Opcode::Fcmp;

    Addr nextPc = curPc + 4;
    ++executed;

    switch (si.op) {
      case Opcode::Nop:
        break;

      case Opcode::Add:
        writeInt(si.rd, readInt(si.rs1) + readInt(si.rs2));
        break;
      case Opcode::Sub:
        writeInt(si.rd, readInt(si.rs1) - readInt(si.rs2));
        break;
      case Opcode::And:
        writeInt(si.rd, readInt(si.rs1) & readInt(si.rs2));
        break;
      case Opcode::Or:
        writeInt(si.rd, readInt(si.rs1) | readInt(si.rs2));
        break;
      case Opcode::Xor:
        writeInt(si.rd, readInt(si.rs1) ^ readInt(si.rs2));
        break;
      case Opcode::Sll:
        writeInt(si.rd, readInt(si.rs1)
                            << (readInt(si.rs2) & 63));
        break;
      case Opcode::Srl:
        writeInt(si.rd,
                 std::int64_t(std::uint64_t(readInt(si.rs1)) >>
                              (readInt(si.rs2) & 63)));
        break;
      case Opcode::Sra:
        writeInt(si.rd, readInt(si.rs1) >> (readInt(si.rs2) & 63));
        break;
      case Opcode::Slt:
        writeInt(si.rd, readInt(si.rs1) < readInt(si.rs2) ? 1 : 0);
        break;
      case Opcode::Sltu:
        writeInt(si.rd, std::uint64_t(readInt(si.rs1)) <
                                std::uint64_t(readInt(si.rs2))
                            ? 1
                            : 0);
        break;
      case Opcode::Addi:
        writeInt(si.rd, readInt(si.rs1) + si.imm);
        break;
      case Opcode::Andi:
        writeInt(si.rd, readInt(si.rs1) & si.imm);
        break;
      case Opcode::Ori:
        writeInt(si.rd, readInt(si.rs1) | si.imm);
        break;
      case Opcode::Xori:
        writeInt(si.rd, readInt(si.rs1) ^ si.imm);
        break;
      case Opcode::Slli:
        writeInt(si.rd, readInt(si.rs1) << (si.imm & 63));
        break;
      case Opcode::Srli:
        writeInt(si.rd, std::int64_t(std::uint64_t(readInt(si.rs1)) >>
                                     (si.imm & 63)));
        break;
      case Opcode::Slti:
        writeInt(si.rd, readInt(si.rs1) < si.imm ? 1 : 0);
        break;
      case Opcode::Lui:
        writeInt(si.rd, std::int64_t(si.imm) << 12);
        break;

      case Opcode::Mul:
        writeInt(si.rd, readInt(si.rs1) * readInt(si.rs2));
        break;
      case Opcode::Div: {
        std::int64_t d = readInt(si.rs2);
        writeInt(si.rd, d == 0 ? -1 : readInt(si.rs1) / d);
        break;
      }
      case Opcode::Rem: {
        std::int64_t d = readInt(si.rs2);
        writeInt(si.rd, d == 0 ? readInt(si.rs1) : readInt(si.rs1) % d);
        break;
      }

      case Opcode::Fadd:
        rf.fpRegs[si.rd] = rf.fpRegs[si.rs1] + rf.fpRegs[si.rs2];
        break;
      case Opcode::Fsub:
        rf.fpRegs[si.rd] = rf.fpRegs[si.rs1] - rf.fpRegs[si.rs2];
        break;
      case Opcode::Fmul:
        rf.fpRegs[si.rd] = rf.fpRegs[si.rs1] * rf.fpRegs[si.rs2];
        break;
      case Opcode::Fdiv:
        rf.fpRegs[si.rd] = rf.fpRegs[si.rs1] / rf.fpRegs[si.rs2];
        break;
      case Opcode::Fcmp:
        // Result to an integer register: -1 / 0 / 1.
        writeInt(si.rd, rf.fpRegs[si.rs1] < rf.fpRegs[si.rs2]   ? -1
                        : rf.fpRegs[si.rs1] > rf.fpRegs[si.rs2] ? 1
                                                                : 0);
        out.fpRegs = false;
        break;
      case Opcode::Fcvt:
        rf.fpRegs[si.rd] = double(readInt(si.rs1));
        break;

      case Opcode::Lb:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 1;
        writeInt(si.rd, std::int8_t(proc.memory.read(out.effAddr, 1)));
        break;
      case Opcode::Lh:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 2;
        writeInt(si.rd, std::int16_t(proc.memory.read(out.effAddr, 2)));
        break;
      case Opcode::Lw:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 4;
        writeInt(si.rd, std::int32_t(proc.memory.read(out.effAddr, 4)));
        break;
      case Opcode::Ld:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 8;
        writeInt(si.rd, std::int64_t(proc.memory.read(out.effAddr, 8)));
        break;
      case Opcode::Fld:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 8;
        rf.fpRegs[si.rd] = proc.memory.readDouble(out.effAddr);
        break;
      case Opcode::Sb:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 1;
        proc.memory.write(out.effAddr,
                          std::uint64_t(readInt(si.rs2)), 1);
        break;
      case Opcode::Sh:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 2;
        proc.memory.write(out.effAddr,
                          std::uint64_t(readInt(si.rs2)), 2);
        break;
      case Opcode::Sw:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 4;
        proc.memory.write(out.effAddr,
                          std::uint64_t(readInt(si.rs2)), 4);
        break;
      case Opcode::Sd:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 8;
        proc.memory.write(out.effAddr,
                          std::uint64_t(readInt(si.rs2)), 8);
        break;
      case Opcode::Fsd:
        out.effAddr = Addr(readInt(si.rs1) + si.imm);
        out.accessBytes = 8;
        proc.memory.writeDouble(out.effAddr, rf.fpRegs[si.rs2]);
        break;

      case Opcode::Beq:
        out.taken = readInt(si.rs1) == readInt(si.rs2);
        out.target = curPc + Addr(std::int64_t(si.imm) * 4);
        if (out.taken)
            nextPc = out.target;
        break;
      case Opcode::Bne:
        out.taken = readInt(si.rs1) != readInt(si.rs2);
        out.target = curPc + Addr(std::int64_t(si.imm) * 4);
        if (out.taken)
            nextPc = out.target;
        break;
      case Opcode::Blt:
        out.taken = readInt(si.rs1) < readInt(si.rs2);
        out.target = curPc + Addr(std::int64_t(si.imm) * 4);
        if (out.taken)
            nextPc = out.target;
        break;
      case Opcode::Bge:
        out.taken = readInt(si.rs1) >= readInt(si.rs2);
        out.target = curPc + Addr(std::int64_t(si.imm) * 4);
        if (out.taken)
            nextPc = out.target;
        break;

      case Opcode::Jmp:
        out.taken = true;
        out.target = curPc + Addr(std::int64_t(si.imm) * 4);
        nextPc = out.target;
        break;
      case Opcode::Jal:
        out.taken = true;
        out.target = curPc + Addr(std::int64_t(si.imm) * 4);
        writeInt(si.rd, std::int64_t(curPc + 4));
        nextPc = out.target;
        break;
      case Opcode::Jr:
        out.taken = true;
        out.target = Addr(readInt(si.rs1));
        nextPc = out.target;
        break;

      case Opcode::NthrOp:
        out.target = curPc + Addr(std::int64_t(si.imm) * 4);
        pendingNthr = true;
        pendingNthrTarget = out.target;
        pendingNthrRd = si.rd;
        // nextPc (fall-through) is taken by the parent regardless of
        // the decision; the register result distinguishes the cases.
        break;

      case Opcode::KthrOp:
        done = true;
        break;
      case Opcode::HaltOp:
        done = true;
        break;

      case Opcode::MlockOp:
      case Opcode::MunlockOp:
        out.effAddr = Addr(readInt(si.rs1));
        out.accessBytes = 8;
        break;

      default:
        CAPSULE_PANIC("unhandled opcode in AsmProgram: ",
                      isa::mnemonic(si.op));
    }

    curPc = nextPc;
    return true;
}

std::unique_ptr<Program>
AsmProgram::resolveNthr(bool granted)
{
    CAPSULE_ASSERT(pendingNthr, "resolveNthr without a pending nthr");
    pendingNthr = false;
    if (!granted) {
        writeInt(pendingNthrRd, -1);
        return nullptr;
    }
    // Parent: rd = 0 and fall through. Child: copy of registers as of
    // the division point, rd = 1, starts at the nthr target.
    writeInt(pendingNthrRd, 0);
    return std::make_unique<AsmProgram>(proc, rf, pendingNthrTarget,
                                        1, pendingNthrRd);
}

} // namespace capsule::front
