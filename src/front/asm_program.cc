#include "front/asm_program.hh"

#include <algorithm>

#include "base/logging.hh"

namespace capsule::front
{

using isa::Opcode;
using isa::OpClass;

AsmProcess::AsmProcess(const casm::Image &img)
    : entry(img.base), codeBase(img.base), imageDigest(img.digest())
{
    decoded.reserve(img.words.size());
    for (std::size_t i = 0; i < img.words.size(); ++i) {
        decoded.push_back(isa::decode(img.words[i]));
        memory.write(img.base + Addr(i) * 4, img.words[i], 4);
    }
    // Backward pass: straight[i] counts the consecutive plain opcodes
    // from i, so the block executor runs them in one threaded burst.
    straight.assign(decoded.size(), 0);
    for (std::size_t i = decoded.size(); i-- > 0;) {
        if (!sim::isStraightLine(decoded[i].op))
            continue;
        straight[i] = 1 + (i + 1 < decoded.size() ? straight[i + 1] : 0);
    }
}

std::size_t
AsmProcess::indexOf(Addr pc) const
{
    CAPSULE_ASSERT(pc >= codeBase && (pc - codeBase) / 4 < decoded.size(),
                   "instruction fetch outside code image at pc=", pc);
    CAPSULE_ASSERT(pc % 4 == 0, "misaligned pc ", pc);
    return (pc - codeBase) / 4;
}

isa::StaticInst
AsmProcess::fetch(Addr pc) const
{
    return decoded[indexOf(pc)];
}

AsmProgram::AsmProgram(AsmProcess &process)
    : proc(process), curPc(process.entry)
{
}

AsmProgram::AsmProgram(AsmProcess &process, const RegFile &regs,
                       Addr start_pc, std::int64_t nthr_result,
                       std::uint8_t nthr_rd)
    : proc(process), rf(regs), curPc(start_pc)
{
    if (nthr_rd != isa::noReg)
        rf.writeInt(nthr_rd, nthr_result);
}

bool
AsmProgram::next(isa::DynInst &out)
{
    CAPSULE_ASSERT(!pendingNthr,
                   "next() called with an unresolved nthr decision");
    if (done)
        return false;

    isa::StaticInst si = proc.fetch(curPc);
    sim::StepResult r = sim::step(si, curPc, rf, proc.memory);
    ++executed;

    out = isa::DynInst{};
    out.cls = isa::opClassOf(si.op);
    out.pc = curPc;
    out.rd = si.rd;
    out.rs1 = si.rs1;
    out.rs2 = si.rs2;
    out.fpRegs = isa::writesFpReg(si.op) || si.op == Opcode::Fsd;
    out.effAddr = r.effAddr;
    out.accessBytes = r.accessBytes;
    out.taken = r.taken;
    out.target = r.target;

    switch (r.kind) {
      case sim::StepKind::Nthr:
        pendingNthr = true;
        pendingNthrTarget = r.target;
        pendingNthrRd = si.rd;
        // nextPc (fall-through) is taken by the parent regardless of
        // the decision; the register result distinguishes the cases.
        break;
      case sim::StepKind::Kthr:
      case sim::StepKind::Halt:
        done = true;
        break;
      default:
        break;
    }

    curPc = r.nextPc;
    return true;
}

std::uint64_t
AsmProgram::runDirect(std::uint64_t budget)
{
    CAPSULE_ASSERT(!pendingNthr,
                   "runDirect() called with an unresolved nthr decision");
    std::uint64_t retired = 0;
    while (retired < budget && !done) {
        std::size_t idx = proc.indexOf(curPc);
        std::uint32_t run = proc.straightRun(idx);
        if (run > 0) {
            std::uint64_t n =
                std::min<std::uint64_t>(run, budget - retired);
            sim::execStraight(proc.decodedData() + idx, n, curPc, rf,
                              proc.memory);
            curPc += Addr(n) * 4;
            retired += n;
            continue;
        }
        const isa::StaticInst &si = proc.decodedData()[idx];
        OpClass cls = isa::opClassOf(si.op);
        if (cls != OpClass::Branch && cls != OpClass::Jump)
            break;  // protocol opcode: left for the caller's next()
        sim::StepResult r = sim::step(si, curPc, rf, proc.memory);
        curPc = r.nextPc;
        ++retired;
    }
    executed += retired;
    return retired;
}

std::unique_ptr<Program>
AsmProgram::resolveNthr(bool granted)
{
    CAPSULE_ASSERT(pendingNthr, "resolveNthr without a pending nthr");
    pendingNthr = false;
    sim::applyNthrDecision(rf, pendingNthrRd, granted);
    if (!granted)
        return nullptr;
    // Parent: rd = 0 and fall through. Child: copy of registers as of
    // the division point, rd = 1, starts at the nthr target.
    return std::make_unique<AsmProgram>(proc, rf, pendingNthrTarget,
                                        sim::nthrChildResult,
                                        pendingNthrRd);
}

} // namespace capsule::front
