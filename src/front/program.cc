#include "front/program.hh"

// Program is an interface; this translation unit pins the library.
