/**
 * @file
 * The functional front-end contract between a simulated thread and the
 * timing pipeline.
 *
 * CAPSULE uses execute-at-fetch functional simulation: when the fetch
 * stage pulls the next dynamic instruction of a thread, the front end
 * has already computed its functional effects (register values, memory
 * updates, branch outcome). The pipeline models *time* only. Two front
 * ends implement this interface: AsmProgram (CapISA interpreter) and
 * the coroutine-based worker runtime in src/core.
 *
 * Ordering guarantees the pipeline relies on:
 *  - next() emits instructions of one thread in program order;
 *  - after an Nthr record is returned, next() must not be called again
 *    until resolveNthr() delivers the architecture's decision;
 *  - the pipeline gates fetch across Mlock grants, so the functional
 *    mutual exclusion of lock-protected sections matches timing.
 */

#ifndef CAPSULE_FRONT_PROGRAM_HH
#define CAPSULE_FRONT_PROGRAM_HH

#include <memory>

#include "isa/isa.hh"

namespace capsule::front
{

/** One simulated thread's instruction source. */
class Program
{
  public:
    virtual ~Program() = default;

    /**
     * Produce the next dynamic instruction in program order.
     * @return false when the thread has no more instructions (after a
     *         Kthr/Halt record has been emitted).
     */
    virtual bool next(isa::DynInst &out) = 0;

    /**
     * Deliver the division decision for the Nthr record previously
     * returned by next(). When granted, the front end must return the
     * child thread's Program (sharing this thread's functional state
     * as the ISA prescribes: full register copy, same address space).
     */
    virtual std::unique_ptr<Program> resolveNthr(bool granted) = 0;
};

} // namespace capsule::front

#endif // CAPSULE_FRONT_PROGRAM_HH
