/**
 * @file
 * Functional interpreter for assembled CapISA images. Each AsmProgram
 * is one simulated thread; nthr forks a child AsmProgram with a copy
 * of the architectural registers, sharing Memory.
 */

#ifndef CAPSULE_FRONT_ASM_PROGRAM_HH
#define CAPSULE_FRONT_ASM_PROGRAM_HH

#include <array>
#include <cstdint>
#include <memory>

#include "casm/assembler.hh"
#include "front/program.hh"
#include "mem/memory.hh"

namespace capsule::front
{

/** Architectural register state of one CapISA thread. */
struct RegFile
{
    std::array<std::int64_t, isa::numIntRegs> intRegs{};
    std::array<double, isa::numFpRegs> fpRegs{};
};

/**
 * Shared process image: code plus data memory. Created once per
 * simulation from an assembled Image; threads reference it.
 */
class AsmProcess
{
  public:
    explicit AsmProcess(const casm::Image &img);

    /** Fetch and decode the static instruction at `pc`. */
    isa::StaticInst fetch(Addr pc) const;

    mem::Memory memory;
    Addr entry;

  private:
    Addr codeBase;
    std::vector<isa::StaticInst> decoded;
};

/**
 * One thread of an AsmProcess. Implements the Program front-end
 * contract; functional semantics follow isa.hh.
 */
class AsmProgram : public Program
{
  public:
    /** Ancestor thread starting at the image entry point. */
    explicit AsmProgram(AsmProcess &process);
    /** Child thread: copied registers, explicit start PC. */
    AsmProgram(AsmProcess &process, const RegFile &regs, Addr start_pc,
               std::int64_t nthr_result, std::uint8_t nthr_rd);

    bool next(isa::DynInst &out) override;
    std::unique_ptr<Program> resolveNthr(bool granted) override;

    /** Registers are inspectable for tests. */
    const RegFile &regs() const { return rf; }
    Addr pc() const { return curPc; }
    bool finished() const { return done; }

    /** Instructions functionally executed so far. */
    std::uint64_t retiredCount() const { return executed; }

  private:
    std::int64_t readInt(std::uint8_t r) const;
    void writeInt(std::uint8_t r, std::int64_t v);

    AsmProcess &proc;
    RegFile rf;
    Addr curPc;
    bool done = false;
    std::uint64_t executed = 0;

    /** Set between an Nthr emission and its resolveNthr() call. */
    bool pendingNthr = false;
    Addr pendingNthrTarget = 0;
    std::uint8_t pendingNthrRd = isa::noReg;
};

} // namespace capsule::front

#endif // CAPSULE_FRONT_ASM_PROGRAM_HH
