/**
 * @file
 * Functional interpreter for assembled CapISA images. Each AsmProgram
 * is one simulated thread; nthr forks a child AsmProgram with a copy
 * of the architectural registers, sharing Memory. Instruction
 * semantics come from the shared execution-semantics core
 * (sim/exec_semantics.hh); this layer adds the Program front-end
 * protocol (DynInst staging, nthr resolution) and the functional
 * backend's straight-line fast path.
 */

#ifndef CAPSULE_FRONT_ASM_PROGRAM_HH
#define CAPSULE_FRONT_ASM_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "casm/assembler.hh"
#include "front/program.hh"
#include "mem/memory.hh"
#include "sim/exec_semantics.hh"

namespace capsule::front
{

/** Architectural register state of one CapISA thread. */
using RegFile = sim::RegFile;

/**
 * Shared process image: code plus data memory. Created once per
 * simulation from an assembled Image; threads reference it.
 */
class AsmProcess
{
  public:
    explicit AsmProcess(const casm::Image &img);

    /** Fetch and decode the static instruction at `pc`. */
    isa::StaticInst fetch(Addr pc) const;

    /** Index of `pc` into the decoded image (asserts bounds/align). */
    std::size_t indexOf(Addr pc) const;

    const isa::StaticInst *decodedData() const { return decoded.data(); }

    /** Length of the straight-line run (consecutive opcodes satisfying
     *  sim::isStraightLine) starting at decoded index `idx`. */
    std::uint32_t straightRun(std::size_t idx) const
    {
        return straight[idx];
    }

    /** Content digest of the assembled image this process was loaded
     *  from (casm::Image::digest(), captured at construction): the
     *  program component of the farm's content-addressed cache keys. */
    std::uint64_t digest() const { return imageDigest; }

    mem::Memory memory;
    Addr entry;

  private:
    Addr codeBase;
    std::uint64_t imageDigest;
    std::vector<isa::StaticInst> decoded;
    /** straight[i]: straight-line run length starting at i, memoised
     *  once at decode for the functional backend's block executor. */
    std::vector<std::uint32_t> straight;
};

/**
 * One thread of an AsmProcess. Implements the Program front-end
 * contract; functional semantics follow isa.hh.
 */
class AsmProgram : public Program
{
  public:
    /** Ancestor thread starting at the image entry point. */
    explicit AsmProgram(AsmProcess &process);
    /** Child thread: copied registers, explicit start PC. */
    AsmProgram(AsmProcess &process, const RegFile &regs, Addr start_pc,
               std::int64_t nthr_result, std::uint8_t nthr_rd);

    bool next(isa::DynInst &out) override;
    std::unique_ptr<Program> resolveNthr(bool granted) override;

    /**
     * Functional-backend fast path: execute up to `budget`
     * instructions directly through the shared semantics core —
     * straight-line runs via the threaded block executor, branches and
     * jumps singly — stopping early (without executing it) at the
     * first protocol opcode (nthr/mlock/munlock/kthr/halt), which the
     * caller then pulls via next().
     * @return instructions retired
     */
    std::uint64_t runDirect(std::uint64_t budget);

    /** Registers are inspectable for tests. */
    const RegFile &regs() const { return rf; }
    Addr pc() const { return curPc; }
    bool finished() const { return done; }

    /** Instructions functionally executed so far. */
    std::uint64_t retiredCount() const { return executed; }

    /** The owning process's image digest (see AsmProcess::digest). */
    std::uint64_t digest() const { return proc.digest(); }

  private:
    AsmProcess &proc;
    RegFile rf;
    Addr curPc;
    bool done = false;
    std::uint64_t executed = 0;

    /** Set between an Nthr emission and its resolveNthr() call. */
    bool pendingNthr = false;
    Addr pendingNthrTarget = 0;
    std::uint8_t pendingNthrRd = isa::noReg;
};

} // namespace capsule::front

#endif // CAPSULE_FRONT_ASM_PROGRAM_HH
