/**
 * @file
 * The differential fuzzing harness (DESIGN.md §7): for each seed it
 * generates one CAPSULE program, runs the division-serializing
 * reference oracle, then runs the same image on every timing backend
 * — the single-core SMT pipeline and 2- and 4-core CMP organisations
 * — and demands:
 *
 *  - final-state equivalence: every 8-byte data cell and the
 *    ancestor's checksum registers match the oracle bit-for-bit;
 *  - division accounting: requests equal the generator's static
 *    count (each nthr site executes exactly once under any grant
 *    pattern), grants never exceed requests, and every granted thread
 *    dies exactly once;
 *  - clean teardown: no lock-table entry and no inactive-context-
 *    stack entry survives the run.
 *
 * A failing seed is shrunk by re-generating the same seed down a
 * ladder of smaller GenParams and keeping the smallest program that
 * still diverges; its `.casm` text and a report (divergence detail +
 * the oracle's canonical serial log) land in the artifacts dir.
 *
 * Campaigns fan iterations out over the experiment engine's host
 * ThreadPool; per-iteration outcomes are collected in submission
 * order and all artifact/shrink work happens in a serial post-pass,
 * so a campaign's result — and the fuzz_capsule CLI's output — is
 * byte-identical at any --jobs count.
 */

#ifndef CAPSULE_FUZZ_DIFF_RUNNER_HH
#define CAPSULE_FUZZ_DIFF_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/program_gen.hh"
#include "fuzz/ref_interp.hh"
#include "harness/farm.hh"
#include "sim/config.hh"

namespace capsule::fuzz
{

/** One timing backend a program is co-simulated on. */
struct BackendSpec
{
    std::string label;
    sim::MachineConfig cfg;
};

/** The standard co-simulation set: smt, cmp x2, cmp x4 (8 contexts
 *  total each, mirroring the bench_cmp organisation sweep). */
std::vector<BackendSpec> defaultBackends();

/** Verdict of one generated program across all backends. */
struct DiffOutcome
{
    bool ok = true;
    /** The farm quarantined this iteration: it is reported as a
     *  failure but never re-simulated, shrunk, or dumped in this
     *  process — it kept killing the process that hosted it. */
    bool quarantined = false;
    /** Human-readable divergence/invariant report (empty when ok). */
    std::string detail;
    int numNodes = 0;
    std::size_t words = 0;
    /** The program text; kept only for failures (artifact dumps). */
    std::string source;
};

/** Generate the program `params` describes and judge it. */
DiffOutcome runOne(const GenParams &params, InjectedBug inject,
                   const std::vector<BackendSpec> &backends);

/** Convenience overload over defaultBackends(). */
DiffOutcome runOne(const GenParams &params,
                   InjectedBug inject = InjectedBug::None);

/**
 * Campaign-level generator-mode selection: one fixed GenMode, or
 * `AdversarialMix`, which rotates iterations through the four
 * adversarial modes (hotlock, deeptree, oversubscribe, divdep) so one
 * campaign pressures every subsystem.
 */
enum class FuzzMode
{
    Independent,
    HotLock,
    DeepTree,
    Oversubscribe,
    DivisionDependent,
    AdversarialMix,
};

/** Stable mode name ("independent", ..., "adversarial"). */
const char *fuzzModeName(FuzzMode mode);

/** Parse a --mode name; throws std::invalid_argument with the valid
 *  list on anything else. */
FuzzMode parseFuzzMode(const std::string &name);

/** The GenMode iteration `i` of a `mode` campaign generates with. */
GenMode genModeFor(FuzzMode mode, int iteration);

/** A full campaign's knobs. */
struct FuzzConfig
{
    std::uint64_t seed = 1;  ///< iteration i uses seed + i
    int iters = 100;
    int jobs = 1;            ///< host threads (<=1 runs inline)
    double sizeScale = 1.0;  ///< GenParams multiplier (--scale)
    GenParams base;          ///< caps before sizeScale is applied
    FuzzMode mode = FuzzMode::Independent;
    /** Co-simulation set override (empty = defaultBackends()); tests
     *  use this to pin down under-provisioned machines. */
    std::vector<BackendSpec> backends;
    InjectedBug inject = InjectedBug::None;
    bool shrink = true;
    /** Where failing .casm repros land ("" disables dumping). */
    std::string artifactsDir = "fuzz-artifacts";

    // Simulation-farm routing (harness/farm.hh). Any of these set
    // runs iterations through the FarmRunner instead of the
    // in-process ThreadPool: verdicts are memoized under the
    // *generated image's* content digest, so a warm rerun of an
    // unchanged campaign only regenerates programs and replays
    // verdicts. Failing iterations are always re-simulated in the
    // serial post-pass (the cache stores the verdict, not the
    // divergence detail), so failures stay fully reported and the
    // campaign output is byte-identical with or without the cache.
    std::string cacheDir;    ///< verdict cache dir ("" = off)
    /** LRU size budget for cacheDir in bytes (0 = unbounded). */
    std::uint64_t cacheMaxBytes = 0;
    int workers = 1;         ///< farm worker processes (0 = cores)
    bool resume = false;     ///< resume this campaign's journal

    // Fault-tolerance passthrough (DESIGN.md §11). A quarantined
    // iteration surfaces as a campaign failure whose detail says so;
    // it is NOT re-simulated inline — quarantine exists precisely
    // because the point keeps killing its host process.
    std::string faultPlan;         ///< FaultPlan spec ("" = off)
    double pointTimeoutSeconds = -1; ///< <0 keeps the farm default
    int maxPointRetries = 0;       ///< 0 keeps the farm default
};

/** One confirmed, shrunk failure. */
struct FailureReport
{
    int iteration = 0;
    std::uint64_t seed = 0;
    std::string detail;       ///< divergence of the shrunk repro
    int numNodes = 0;         ///< original program size
    int shrunkNodes = 0;      ///< repro size after the shrink ladder
    std::string artifactPath; ///< "" when dumping is disabled
};

struct CampaignResult
{
    int iterations = 0;
    std::vector<FailureReport> failures;
    std::uint64_t nodesTotal = 0;
    std::uint64_t wordsTotal = 0;
    /** Per-iteration outcome digests, for --jobs determinism checks. */
    std::vector<std::uint64_t> digests;
    /** Farm counters (all zero on the classic ThreadPool path). */
    harness::FarmStats farm;

    bool ok() const { return failures.empty(); }
};

/** The GenParams iteration `i` of a campaign generates with. */
GenParams paramsFor(const FuzzConfig &cfg, int iteration);

/** Run a campaign (parallel across iterations, deterministic). */
CampaignResult runCampaign(const FuzzConfig &cfg);

} // namespace capsule::fuzz

#endif // CAPSULE_FUZZ_DIFF_RUNNER_HH
