/**
 * @file
 * The adversarial scenario registry (DESIGN.md §10): a small set of
 * *named, pinned* pathological programs drawn from the adversarial
 * generator modes. Where the fuzzer explores, the registry pins: each
 * scenario is one (mode, caps, seed) triple whose generated program —
 * and therefore whose cycle counts and contention counters on every
 * backend — is reproducible byte-for-byte, so tests can golden them
 * and bench_adversarial can track them release over release.
 *
 * Every scenario remains grant-independent in its final observable
 * state (the generator's contract), so the serial reference oracle
 * judges all of them; what makes them pathological is *where the
 * cycles go*: lock convoys, context-stack oversubscription, deep
 * unbalanced division chains, and serialising publish/consume
 * dependency spines.
 */

#ifndef CAPSULE_FUZZ_SCENARIOS_HH
#define CAPSULE_FUZZ_SCENARIOS_HH

#include <string>
#include <vector>

#include "fuzz/program_gen.hh"

namespace capsule::fuzz
{

/** One named pathological program. */
struct Scenario
{
    std::string name;        ///< stable CLI/test identifier
    std::string description; ///< what it pressures, one line
    GenParams params;        ///< fully pinned generator parameters
};

/** The registry, in fixed order (tests iterate it and pin goldens —
 *  adding scenarios is append-only). */
const std::vector<Scenario> &scenarios();

/** Look a scenario up by name; nullptr when unknown. */
const Scenario *findScenario(const std::string &name);

} // namespace capsule::fuzz

#endif // CAPSULE_FUZZ_SCENARIOS_HH
