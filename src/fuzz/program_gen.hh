/**
 * @file
 * Seeded random CAPSULE-program generator for the differential
 * fuzzing subsystem (DESIGN.md §7).
 *
 * Programs are emitted as CapISA assembly text and round-tripped
 * through the real `casm::Assembler`, so the fuzzer exercises the
 * toolchain encoding path as well as the machines. Every generated
 * program is *division-independent by construction*: it computes the
 * same final observable state whether each `nthr` is granted, denied,
 * or granted to a remote CMP core. That is exactly the contract the
 * CAPSULE programming model demands of componentised programs (the
 * hardware is free to treat any division probe as a nop), and it is
 * what makes a single serial oracle a sound reference for every
 * timing backend and every grant interleaving.
 *
 * Shape of a generated program:
 *  - a static division tree of up to maxNodes nodes (depth/fan-out
 *    drawn per seed, capped by GenParams). Each non-root node is
 *    reached through one `nthr` in its parent with the paper's
 *    three-way protocol: granted parent (rd=0) skips the child block,
 *    the spawned child (rd=1) runs it and `kthr`s, a denied parent
 *    (rd=-1) falls through and runs the child block inline;
 *  - node bodies are random straight-line work (int ALU, mul/div,
 *    fcvt/fcmp/fadd float paths, data-dependent skip branches,
 *    loads/stores of all four sizes) over a private slice of data
 *    cells, def-before-use within each chunk so the inline and
 *    spawned executions are indistinguishable;
 *  - lock-guarded commutative updates (add/xor) of shared accumulator
 *    cells via mlock/munlock;
 *  - a lock-guarded completion counter joined on by the root, which
 *    then writes an fcvt/fadd/fmul checksum double, folds every data
 *    cell into two output registers (r10 masked sum, r11 full-width
 *    xor) and halts.
 *
 * All randomness flows through FuzzRng, so `--seed N` reproduces the
 * same program text byte-for-byte on every platform.
 */

#ifndef CAPSULE_FUZZ_PROGRAM_GEN_HH
#define CAPSULE_FUZZ_PROGRAM_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "casm/assembler.hh"

namespace capsule::fuzz
{

/**
 * Generator modes (DESIGN.md §10). `Independent` is the classic PR 5
 * generator; the adversarial modes stress exactly the hardware the
 * paper's benign workloads never pressure. Every mode still generates
 * programs whose final observable state is grant-independent, so the
 * serial oracle stays sound; `DivisionDependent` achieves this with
 * explicitly ordered lock-published dependencies rather than pure
 * commutativity.
 */
enum class GenMode
{
    Independent,       ///< commutative, division-independent (PR 5)
    HotLock,           ///< convoy: every node hammers one accumulator
    DeepTree,          ///< deep, unbalanced division chains
    Oversubscribe,     ///< static thread demand >> hardware contexts
    DivisionDependent, ///< consume earlier chunks' published results
};

/** Stable lower-case mode name ("hotlock", "divdep", ...). */
const char *genModeName(GenMode mode);

/** Parse a mode name; throws std::invalid_argument listing the valid
 *  names on anything else. */
GenMode parseGenMode(const std::string &name);

/** Size caps and probabilities of the generator (all draws are made
 *  per seed inside generate(), so these are maxima, not constants). */
struct GenParams
{
    std::uint64_t seed = 1;

    /** Program shape (adversarial modes override some caps below;
     *  Independent leaves the PR 5 rng stream byte-identical). */
    GenMode mode = GenMode::Independent;

    int maxDepth = 3;    ///< division nesting depth cap
    int maxFanout = 3;   ///< children per node cap
    int maxNodes = 48;   ///< total division-tree size cap
    int blockOps = 18;   ///< random work items per chunk cap

    int sliceCells = 16; ///< private 8-byte cells per node (power of 2)
    int numAccums = 4;   ///< shared lock-guarded accumulator cells
    int numInputs = 8;   ///< read-only input cells (root-initialised)

    int childPercent = 75; ///< chance a fan-out slot grows a subtree
    int floatPercent = 35; ///< chance a work chunk mixes float ops
    int accumUpdatesMax = 2; ///< shared accumulator updates per node

    /** Uniformly shrunk copy (same seed): the shrink ladder of the
     *  differential harness re-generates with these. */
    GenParams scaled(double f) const;
};

/** A generated program plus everything the harness needs to judge it. */
struct GeneratedProgram
{
    std::string source;   ///< CapISA assembly text
    casm::Image image;    ///< assembled through casm::Assembler

    int numNodes = 0;     ///< division-tree size (root included)
    /** Every node except the root is reached through exactly one nthr
     *  site that executes exactly once under any grant pattern, so
     *  every backend must report exactly this many division requests. */
    std::uint64_t expectedDivisionRequests = 0;

    Addr dataBase = 0;    ///< first data cell address
    int totalCells = 0;   ///< 8-byte cells in [dataBase, dataBase+8*n)
    int counterCell = 0;  ///< completion-counter cell index
    /** Ancestor registers holding the final checksums (r10 masked
     *  sum, r11 full-width xor); the only registers whose final value
     *  is grant-independent by construction. */
    std::vector<int> outputRegs;

    /** Address of 8-byte data cell `i`. */
    Addr
    cellAddr(int i) const
    {
        return dataBase + Addr(i) * 8;
    }
};

/** Generate (and assemble) the program `params` describes. Fatal on
 *  an internal generation bug (emitted text that fails to assemble). */
GeneratedProgram generate(const GenParams &params);

} // namespace capsule::fuzz

#endif // CAPSULE_FUZZ_PROGRAM_GEN_HH
