#include "fuzz/diff_runner.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/digest.hh"
#include "base/logging.hh"
#include "front/asm_program.hh"
#include "harness/thread_pool.hh"
#include "sim/backend.hh"
#include "sim/exec_semantics.hh"
#include "sim/sim_error.hh"

namespace capsule::fuzz
{
namespace
{

/** Fuzz runs are bounded programs; anything this long is a hang. */
constexpr Cycle fuzzMaxCycles = 50'000'000;

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t h)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
outcomeDigest(const DiffOutcome &o)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    std::uint64_t fields[3] = {o.ok ? 1u : 0u,
                               std::uint64_t(o.numNodes),
                               std::uint64_t(o.words)};
    h = fnv1a(fields, sizeof fields, h);
    h = fnv1a(o.detail.data(), o.detail.size(), h);
    return h;
}

/** Everything observed from one backend run of one image. */
struct BackendRun
{
    std::unique_ptr<front::AsmProcess> proc;
    front::RegFile finalRegs;
    bool ancestorFinished = false;
    sim::RunStats stats;
    std::size_t lockedAddrs = 0;
    std::size_t swappedContexts = 0;
};

BackendRun
runBackend(const casm::Image &image, const sim::MachineConfig &cfg)
{
    BackendRun r;
    r.proc = std::make_unique<front::AsmProcess>(image);
    auto backend = sim::makeBackend(cfg);

    ThreadId ancestor = invalidThread;
    backend->setThreadFinalizer(
        [&](ThreadId tid, const front::Program &p) {
            if (tid != ancestor)
                return;
            if (auto *ap =
                    dynamic_cast<const front::AsmProgram *>(&p)) {
                r.finalRegs = ap->regs();
                r.ancestorFinished = true;
            }
        });
    ancestor =
        backend->addThread(std::make_unique<front::AsmProgram>(*r.proc));
    r.stats = backend->run();
    r.lockedAddrs = backend->lockedAddrs();
    r.swappedContexts = backend->swappedContexts();
    return r;
}

/** Judge one backend run against the oracle; appends to `out`. */
void
judgeBackend(const GeneratedProgram &prog, const RefResult &ref,
             const RefInterp &oracle, const BackendSpec &spec,
             const BackendRun &run, std::ostringstream &out)
{
    auto diverge = [&](const std::string &what) {
        out << "[" << spec.label << "] " << what << "\n";
    };

    if (!run.ancestorFinished)
        diverge("ancestor thread never retired its halt");

    // Division accounting: each of the numNodes-1 nthr sites executes
    // exactly once under any grant pattern.
    if (run.stats.divisionsRequested != prog.expectedDivisionRequests)
        diverge("division requests " +
                std::to_string(run.stats.divisionsRequested) +
                " != expected " +
                std::to_string(prog.expectedDivisionRequests));
    if (run.stats.divisionsGranted > run.stats.divisionsRequested)
        diverge("granted " +
                std::to_string(run.stats.divisionsGranted) +
                " divisions exceed the " +
                std::to_string(run.stats.divisionsRequested) +
                " requested");
    if (run.stats.threadDeaths != run.stats.divisionsGranted)
        diverge("thread deaths " +
                std::to_string(run.stats.threadDeaths) +
                " != divisions granted " +
                std::to_string(run.stats.divisionsGranted));

    // Clean teardown.
    if (run.lockedAddrs != 0)
        diverge(std::to_string(run.lockedAddrs) +
                " lock-table entr(ies) leaked");
    if (run.swappedContexts != 0)
        diverge(std::to_string(run.swappedContexts) +
                " context(s) leaked on the inactive-context stack");

    // Final architectural registers of the ancestor (the generated
    // epilogue reloads them from joined memory, so they are
    // grant-independent by construction).
    if (run.ancestorFinished) {
        for (int reg : prog.outputRegs) {
            std::int64_t got =
                run.finalRegs.intRegs[std::size_t(reg)];
            std::int64_t want = ref.intRegs[std::size_t(reg)];
            if (got != want)
                diverge("output r" + std::to_string(reg) + " = " +
                        std::to_string(got) + ", oracle says " +
                        std::to_string(want));
        }
    }

    // Final memory image, cell by cell, bit for bit.
    int reported = 0;
    for (int c = 0; c < prog.totalCells; ++c) {
        Addr a = prog.cellAddr(c);
        std::uint64_t got = run.proc->memory.read(a, 8);
        std::uint64_t want = oracle.readCell(a);
        if (got == want)
            continue;
        if (reported < 4) {
            std::ostringstream cell;
            cell << "cell " << c << " @0x" << std::hex << a
                 << std::dec << " = " << got << ", oracle says "
                 << want;
            diverge(cell.str());
        }
        ++reported;
    }
    if (reported > 4)
        diverge(std::to_string(reported - 4) +
                " further cell mismatch(es) suppressed");
}

std::string
dumpArtifact(const std::string &dir, const GenParams &params,
             const DiffOutcome &outcome, InjectedBug inject)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return "";

    std::string stem =
        dir + "/seed" + std::to_string(params.seed);
    {
        std::ofstream casm(stem + ".casm");
        casm << "# differential-fuzz repro, seed " << params.seed
             << " (" << outcome.numNodes << " nodes, "
             << outcome.words << " words)\n";
        casm << outcome.source;
    }
    {
        std::ofstream report(stem + ".report.txt");
        report << "seed: " << params.seed << "\n"
               << "mode: " << genModeName(params.mode) << "\n"
               << "injected bug: " << injectedBugName(inject) << "\n"
               << "nodes: " << outcome.numNodes << "\n\n"
               << "divergences:\n"
               << outcome.detail << "\n";
        // The oracle's canonical serial log of the repro.
        GeneratedProgram prog = generate(params);
        RefOptions opts;
        opts.inject = inject;
        RefInterp oracle(prog.image, opts);
        oracle.run();
        report << "canonical serial log (first "
               << oracle.log().size() << " steps):\n"
               << oracle.renderLog();
    }
    return stem + ".casm";
}

} // namespace

std::vector<BackendSpec>
defaultBackends()
{
    std::vector<BackendSpec> specs;
    {
        sim::MachineConfig cfg = sim::MachineConfig::somt();
        cfg.maxCycles = fuzzMaxCycles;
        specs.push_back({"smt", cfg});
    }
    for (int cores : {2, 4}) {
        sim::MachineConfig cfg =
            sim::MachineConfig::cmpSomt(cores, 8 / cores);
        cfg.maxCycles = fuzzMaxCycles;
        specs.push_back({"cmp" + std::to_string(cores), cfg});
    }
    {
        // The functional tier: same protocol, no cycle model. Runs
        // against the same oracle, so the two-tier engine's fast path
        // is held to the same bit-exactness bar as the timing cores.
        sim::MachineConfig cfg = sim::MachineConfig::somt();
        cfg.backend = "func";
        cfg.maxCycles = fuzzMaxCycles;
        specs.push_back({"func", cfg});
    }
    {
        // Mixed mode: warm up functionally, hand off mid-program into
        // the detailed SMT pipeline. 2000 instructions lands the
        // handoff inside the parallel phase of typical generated
        // programs, exercising multi-thread snapshot/restore.
        sim::MachineConfig cfg = sim::MachineConfig::somt();
        cfg.ffwdInstructions = 2000;
        cfg.maxCycles = fuzzMaxCycles;
        specs.push_back({"ffwd", cfg});
    }
    return specs;
}

DiffOutcome
runOne(const GenParams &params, InjectedBug inject,
       const std::vector<BackendSpec> &backends)
{
    GeneratedProgram prog = generate(params);

    DiffOutcome out;
    out.numNodes = prog.numNodes;
    out.words = prog.image.words.size();

    RefOptions refOpts;
    refOpts.inject = inject;
    RefInterp oracle(prog.image, refOpts);
    RefResult ref = oracle.run();

    std::ostringstream detail;
    if (!ref.ok) {
        detail << "[reference] " << ref.error << "\n";
    } else {
        for (const auto &spec : backends) {
            // A SimulationError (capacity overflow, deadlock,
            // maxCycles) is a structured per-backend outcome: it
            // fails this backend's verdict and shrinks like any
            // divergence instead of killing the campaign (harness
            // bugs still propagate to the caller's containment).
            try {
                BackendRun run = runBackend(prog.image, spec.cfg);
                judgeBackend(prog, ref, oracle, spec, run, detail);
            } catch (const sim::SimulationError &e) {
                detail << "[" << spec.label << "] simulation error ("
                       << sim::simErrorKindName(e.kind())
                       << "): " << e.what() << "\n";
            }
        }
    }

    out.detail = detail.str();
    out.ok = out.detail.empty();
    if (!out.ok)
        out.source = prog.source;
    return out;
}

DiffOutcome
runOne(const GenParams &params, InjectedBug inject)
{
    return runOne(params, inject, defaultBackends());
}

const char *
fuzzModeName(FuzzMode mode)
{
    switch (mode) {
      case FuzzMode::Independent:
        return "independent";
      case FuzzMode::HotLock:
        return "hotlock";
      case FuzzMode::DeepTree:
        return "deeptree";
      case FuzzMode::Oversubscribe:
        return "oversubscribe";
      case FuzzMode::DivisionDependent:
        return "divdep";
      case FuzzMode::AdversarialMix:
        return "adversarial";
    }
    return "unknown";
}

FuzzMode
parseFuzzMode(const std::string &name)
{
    static constexpr FuzzMode all[] = {
        FuzzMode::Independent,   FuzzMode::HotLock,
        FuzzMode::DeepTree,      FuzzMode::Oversubscribe,
        FuzzMode::DivisionDependent, FuzzMode::AdversarialMix};
    for (FuzzMode m : all)
        if (name == fuzzModeName(m))
            return m;
    throw std::invalid_argument(
        "unknown fuzz mode '" + name +
        "' (valid: independent, hotlock, deeptree, oversubscribe, "
        "divdep, adversarial)");
}

GenMode
genModeFor(FuzzMode mode, int iteration)
{
    switch (mode) {
      case FuzzMode::Independent:
        return GenMode::Independent;
      case FuzzMode::HotLock:
        return GenMode::HotLock;
      case FuzzMode::DeepTree:
        return GenMode::DeepTree;
      case FuzzMode::Oversubscribe:
        return GenMode::Oversubscribe;
      case FuzzMode::DivisionDependent:
        return GenMode::DivisionDependent;
      case FuzzMode::AdversarialMix:
        break;
    }
    static constexpr GenMode rotation[] = {
        GenMode::HotLock, GenMode::DeepTree, GenMode::Oversubscribe,
        GenMode::DivisionDependent};
    return rotation[std::size_t(iteration) % 4];
}

GenParams
paramsFor(const FuzzConfig &cfg, int iteration)
{
    GenParams p = cfg.base.scaled(cfg.sizeScale);
    p.seed = cfg.seed + std::uint64_t(iteration);
    p.mode = genModeFor(cfg.mode, iteration);
    return p;
}

CampaignResult
runCampaign(const FuzzConfig &cfg)
{
    CampaignResult out;
    out.iterations = cfg.iters;
    if (cfg.iters <= 0)
        return out;

    const auto backends =
        cfg.backends.empty() ? defaultBackends() : cfg.backends;
    std::vector<DiffOutcome> results(std::size_t(cfg.iters));
    auto work = [&](int i) {
        // An escaping exception must become a failed iteration, not
        // a default-ok slot: the ThreadPool contains throws, so
        // without this a throwing iteration would read as a pass
        // under --jobs > 1 (and crash under --jobs 1).
        DiffOutcome &slot = results[std::size_t(i)];
        try {
            slot = runOne(paramsFor(cfg, i), cfg.inject, backends);
        } catch (const std::exception &e) {
            slot.ok = false;
            slot.detail =
                std::string("[harness] iteration threw: ") + e.what() +
                "\n";
        } catch (...) {
            slot.ok = false;
            slot.detail = "[harness] iteration threw a non-standard "
                          "exception\n";
        }
    };

    const bool useFarm = !cfg.cacheDir.empty() || cfg.workers != 1 ||
                         !cfg.faultPlan.empty();
    if (useFarm) {
        // Farm routing: each iteration becomes a cacheable point
        // keyed by the *generated image's* content digest (the
        // coordinator regenerates the program for the key — cheap
        // next to co-simulating every backend) plus the backend set,
        // the injected bug and the ISA semantics hash. The cache
        // stores the verdict (ok, nodes, words); a failing iteration
        // is re-simulated below to recover its divergence detail and
        // source, so output is byte-identical with or without it.
        Digest bd;
        bd.str("capsule-fuzz-backends-v1");
        for (const auto &spec : backends) {
            bd.str(spec.label);
            bd.u64(spec.cfg.digest());
        }
        const std::uint64_t backendsDigest = bd.value();

        std::vector<harness::FarmPoint> pts;
        pts.reserve(std::size_t(cfg.iters));
        for (int i = 0; i < cfg.iters; ++i) {
            GenParams p = paramsFor(cfg, i);
            GeneratedProgram prog = generate(p);
            harness::FarmPoint fp;
            fp.label = "iter" + std::to_string(i) + "/seed" +
                       std::to_string(p.seed);
            fp.cacheable = true;
            fp.key.programDigest = prog.image.digest();
            fp.key.configDigest = backendsDigest;
            fp.key.scale = "fuzz";
            fp.key.seed = p.seed;
            fp.key.semanticsHash = sim::semanticsTableHash();
            // The generator mode shapes judging expectations too, so
            // it joins the injected bug in the key's extra field.
            fp.key.extra = std::uint64_t(cfg.inject) |
                           (std::uint64_t(p.mode) << 8);
            const InjectedBug inject = cfg.inject;
            fp.run = [p, inject, &backends] {
                wl::WorkloadResult wr;
                wr.workload = "fuzz-iteration";
                // A throwing iteration is a (recomputable) failed
                // verdict, mirroring work()'s containment.
                try {
                    DiffOutcome o = runOne(p, inject, backends);
                    wr.correct = o.ok;
                    wr.setMetric("nodes", double(o.numNodes));
                    wr.setMetric("words", double(o.words));
                } catch (...) {
                    wr.correct = false;
                    wr.setMetric("harness_threw", 1.0);
                }
                return wr;
            };
            pts.push_back(std::move(fp));
        }

        harness::FarmOptions fo;
        fo.workers = cfg.workers;
        fo.cacheDir = cfg.cacheDir;
        fo.cacheMaxBytes = cfg.cacheMaxBytes;
        fo.resume = cfg.resume;
        if (!cfg.faultPlan.empty())
            fo.faultPlan = harness::FaultPlan::parse(cfg.faultPlan);
        if (cfg.pointTimeoutSeconds >= 0)
            fo.pointTimeoutSeconds = cfg.pointTimeoutSeconds;
        if (cfg.maxPointRetries > 0)
            fo.maxPointRetries = cfg.maxPointRetries;
        harness::FarmRunner farm(fo);
        auto verdicts = farm.run(pts);
        out.farm = farm.stats();

        for (int i = 0; i < cfg.iters; ++i) {
            const auto &wr = verdicts[std::size_t(i)];
            if (wr.correct) {
                DiffOutcome &slot = results[std::size_t(i)];
                slot.ok = true;
                slot.numNodes = int(wr.metric("nodes"));
                slot.words = std::size_t(wr.metric("words"));
            } else if (wr.metric("quarantined", 0.0) != 0.0) {
                // Quarantined: this iteration kept killing or
                // hanging its worker — re-simulating it inline is
                // exactly the coordinator suicide quarantine
                // prevents, so report it as a failure by reference.
                DiffOutcome &slot = results[std::size_t(i)];
                slot.ok = false;
                slot.quarantined = true;
                slot.detail =
                    "[farm] iteration quarantined after repeated "
                    "worker deaths; re-run this seed alone to "
                    "debug\n";
            } else {
                // Diverged (or threw): re-simulate inline for the
                // full detail the shrink/artifact pass needs.
                work(i);
            }
        }
    } else if (cfg.jobs <= 1 || cfg.iters == 1) {
        for (int i = 0; i < cfg.iters; ++i)
            work(i);
    } else {
        const int threads = std::min(cfg.jobs, cfg.iters);
        harness::ThreadPool pool(threads, 4 * std::size_t(threads));
        for (int i = 0; i < cfg.iters; ++i)
            pool.submit([&work, i] { work(i); });
        pool.wait();
    }

    // Serial post-pass in iteration order: aggregation, shrinking and
    // artifact dumping stay deterministic at any --jobs count.
    out.digests.reserve(results.size());
    for (int i = 0; i < cfg.iters; ++i) {
        DiffOutcome &o = results[std::size_t(i)];
        out.nodesTotal += std::uint64_t(o.numNodes);
        out.wordsTotal += std::uint64_t(o.words);
        out.digests.push_back(outcomeDigest(o));
        if (o.ok)
            continue;

        GenParams params = paramsFor(cfg, i);
        GenParams bestParams = params;
        int originalNodes = o.numNodes;
        DiffOutcome best = std::move(o);
        if (cfg.shrink && !best.quarantined) {
            // Re-generate the failing seed down a size ladder and
            // keep the smallest program that still diverges.
            for (double f : {0.7, 0.5, 0.35, 0.2}) {
                GenParams sp = params.scaled(f);
                try {
                    DiffOutcome so = runOne(sp, cfg.inject, backends);
                    if (!so.ok) {
                        bestParams = sp;
                        best = std::move(so);
                    }
                } catch (...) {
                    // A throwing shrink step never loses the failure
                    // we already hold; keep the current best repro.
                }
            }
        }

        FailureReport fr;
        fr.iteration = i;
        fr.seed = params.seed;
        fr.detail = best.detail;
        fr.numNodes = originalNodes;
        fr.shrunkNodes = best.numNodes;
        if (!cfg.artifactsDir.empty() && !best.quarantined)
            fr.artifactPath = dumpArtifact(cfg.artifactsDir,
                                           bestParams, best,
                                           cfg.inject);
        out.failures.push_back(std::move(fr));
    }
    return out;
}

} // namespace capsule::fuzz
