#include "fuzz/ref_interp.hh"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "base/logging.hh"

namespace capsule::fuzz
{

using isa::Opcode;

InjectedBug
parseInjectedBug(const std::string &name)
{
    if (name.empty() || name == "none")
        return InjectedBug::None;
    if (name == "add-off-by-one")
        return InjectedBug::AddOffByOne;
    if (name == "xor-as-or")
        return InjectedBug::XorAsOr;
    if (name == "slt-inverted")
        return InjectedBug::SltInverted;
    throw std::invalid_argument("unknown injected bug '" + name + "'");
}

const char *
injectedBugName(InjectedBug bug)
{
    switch (bug) {
      case InjectedBug::None: return "none";
      case InjectedBug::AddOffByOne: return "add-off-by-one";
      case InjectedBug::XorAsOr: return "xor-as-or";
      case InjectedBug::SltInverted: return "slt-inverted";
    }
    return "none";
}

RefInterp::RefInterp(const casm::Image &image, const RefOptions &options)
    : opt(options), codeBase(image.base), entry(image.base)
{
    code.reserve(image.words.size());
    for (std::size_t i = 0; i < image.words.size(); ++i) {
        code.push_back(isa::decode(image.words[i]));
        memWrite(image.base + Addr(i) * 4, image.words[i], 4);
    }
}

std::uint8_t *
RefInterp::pageFor(Addr a)
{
    Addr key = a & ~(pageBytes - 1);
    auto &page = pages[key];
    if (page.empty())
        page.assign(pageBytes, 0);
    return page.data() + (a & (pageBytes - 1));
}

const std::uint8_t *
RefInterp::pageForConst(Addr a) const
{
    Addr key = a & ~(pageBytes - 1);
    auto it = pages.find(key);
    if (it == pages.end())
        return nullptr;
    return it->second.data() + (a & (pageBytes - 1));
}

std::uint64_t
RefInterp::memRead(Addr a, int size) const
{
    std::uint64_t v = 0;
    for (int i = 0; i < size; ++i) {
        const std::uint8_t *b = pageForConst(a + Addr(i));
        v |= std::uint64_t(b ? *b : 0) << (8 * i);
    }
    return v;
}

void
RefInterp::memWrite(Addr a, std::uint64_t v, int size)
{
    for (int i = 0; i < size; ++i)
        *pageFor(a + Addr(i)) = std::uint8_t(v >> (8 * i));
}

std::uint64_t
RefInterp::readCell(Addr addr) const
{
    return memRead(addr, 8);
}

std::int64_t
RefInterp::readInt(std::uint8_t reg) const
{
    CAPSULE_ASSERT(reg < isa::numIntRegs, "ref: bad int reg ",
                   int(reg));
    return reg == 0 ? 0 : rf[reg];
}

void
RefInterp::writeInt(std::uint8_t reg, std::int64_t v)
{
    CAPSULE_ASSERT(reg < isa::numIntRegs, "ref: bad int reg ",
                   int(reg));
    if (reg != 0)
        rf[reg] = v;
}

std::string
RefInterp::renderLog() const
{
    std::ostringstream os;
    for (const auto &rec : obs) {
        os << "step " << rec.step << "  pc 0x" << std::hex << rec.pc
           << std::dec << "  " << isa::mnemonic(rec.op);
        if (rec.effAddr)
            os << "  addr 0x" << std::hex << rec.effAddr << std::dec;
        os << "  val " << rec.value << "\n";
    }
    return os.str();
}

RefResult
RefInterp::run()
{
    RefResult res;
    Addr pc = entry;

    auto fail = [&](const std::string &why) {
        res.ok = false;
        res.error = why;
        res.intRegs = rf;
        res.fpRegs = ff;
        res.locksHeldAtEnd = locksHeld.size();
        return res;
    };

    for (;;) {
        if (res.steps >= opt.maxSteps)
            return fail("reference exceeded maxSteps=" +
                        std::to_string(opt.maxSteps));
        if (pc % 4 != 0)
            return fail("misaligned pc " + std::to_string(pc));
        if (pc < codeBase || (pc - codeBase) / 4 >= code.size())
            return fail("pc outside code image: " +
                        std::to_string(pc));
        const isa::StaticInst si = code[(pc - codeBase) / 4];
        Addr nextPc = pc + 4;
        ++res.steps;

        ObsRecord rec;
        rec.step = res.steps;
        rec.pc = pc;
        rec.op = si.op;

        switch (si.op) {
          case Opcode::Nop:
            break;

          case Opcode::Add: {
            std::int64_t v = readInt(si.rs1) + readInt(si.rs2);
            if (opt.inject == InjectedBug::AddOffByOne)
                v += 1;
            writeInt(si.rd, v);
            break;
          }
          case Opcode::Sub:
            writeInt(si.rd, readInt(si.rs1) - readInt(si.rs2));
            break;
          case Opcode::And:
            writeInt(si.rd, readInt(si.rs1) & readInt(si.rs2));
            break;
          case Opcode::Or:
            writeInt(si.rd, readInt(si.rs1) | readInt(si.rs2));
            break;
          case Opcode::Xor:
            if (opt.inject == InjectedBug::XorAsOr)
                writeInt(si.rd, readInt(si.rs1) | readInt(si.rs2));
            else
                writeInt(si.rd, readInt(si.rs1) ^ readInt(si.rs2));
            break;
          case Opcode::Sll:
            writeInt(si.rd, readInt(si.rs1)
                                << (readInt(si.rs2) & 63));
            break;
          case Opcode::Srl:
            writeInt(si.rd,
                     std::int64_t(std::uint64_t(readInt(si.rs1)) >>
                                  (readInt(si.rs2) & 63)));
            break;
          case Opcode::Sra:
            writeInt(si.rd, readInt(si.rs1) >> (readInt(si.rs2) & 63));
            break;
          case Opcode::Slt: {
            bool lt = readInt(si.rs1) < readInt(si.rs2);
            if (opt.inject == InjectedBug::SltInverted)
                lt = !lt;
            writeInt(si.rd, lt ? 1 : 0);
            break;
          }
          case Opcode::Sltu:
            writeInt(si.rd, std::uint64_t(readInt(si.rs1)) <
                                    std::uint64_t(readInt(si.rs2))
                                ? 1
                                : 0);
            break;
          case Opcode::Addi:
            writeInt(si.rd, readInt(si.rs1) + si.imm);
            break;
          case Opcode::Andi:
            writeInt(si.rd, readInt(si.rs1) & si.imm);
            break;
          case Opcode::Ori:
            writeInt(si.rd, readInt(si.rs1) | si.imm);
            break;
          case Opcode::Xori:
            writeInt(si.rd, readInt(si.rs1) ^ si.imm);
            break;
          case Opcode::Slli:
            writeInt(si.rd, readInt(si.rs1) << (si.imm & 63));
            break;
          case Opcode::Srli:
            writeInt(si.rd,
                     std::int64_t(std::uint64_t(readInt(si.rs1)) >>
                                  (si.imm & 63)));
            break;
          case Opcode::Slti:
            writeInt(si.rd, readInt(si.rs1) < si.imm ? 1 : 0);
            break;
          case Opcode::Lui:
            writeInt(si.rd, std::int64_t(si.imm) << 12);
            break;

          case Opcode::Mul:
            writeInt(si.rd, readInt(si.rs1) * readInt(si.rs2));
            break;
          case Opcode::Div: {
            std::int64_t d = readInt(si.rs2);
            writeInt(si.rd, d == 0 ? -1 : readInt(si.rs1) / d);
            break;
          }
          case Opcode::Rem: {
            std::int64_t d = readInt(si.rs2);
            writeInt(si.rd,
                     d == 0 ? readInt(si.rs1) : readInt(si.rs1) % d);
            break;
          }

          case Opcode::Fadd:
            ff[si.rd] = ff[si.rs1] + ff[si.rs2];
            break;
          case Opcode::Fsub:
            ff[si.rd] = ff[si.rs1] - ff[si.rs2];
            break;
          case Opcode::Fmul:
            ff[si.rd] = ff[si.rs1] * ff[si.rs2];
            break;
          case Opcode::Fdiv:
            ff[si.rd] = ff[si.rs1] / ff[si.rs2];
            break;
          case Opcode::Fcmp:
            writeInt(si.rd, ff[si.rs1] < ff[si.rs2]   ? -1
                            : ff[si.rs1] > ff[si.rs2] ? 1
                                                      : 0);
            break;
          case Opcode::Fcvt:
            ff[si.rd] = double(readInt(si.rs1));
            break;

          case Opcode::Lb: {
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            std::uint64_t v = memRead(rec.effAddr, 1);
            rec.value = v;
            writeInt(si.rd, std::int8_t(v));
            break;
          }
          case Opcode::Lh: {
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            std::uint64_t v = memRead(rec.effAddr, 2);
            rec.value = v;
            writeInt(si.rd, std::int16_t(v));
            break;
          }
          case Opcode::Lw: {
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            std::uint64_t v = memRead(rec.effAddr, 4);
            rec.value = v;
            writeInt(si.rd, std::int32_t(v));
            break;
          }
          case Opcode::Ld: {
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            std::uint64_t v = memRead(rec.effAddr, 8);
            rec.value = v;
            writeInt(si.rd, std::int64_t(v));
            break;
          }
          case Opcode::Fld: {
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            std::uint64_t v = memRead(rec.effAddr, 8);
            rec.value = v;
            double d;
            std::memcpy(&d, &v, sizeof d);
            ff[si.rd] = d;
            break;
          }
          case Opcode::Sb:
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            rec.value = std::uint64_t(readInt(si.rs2));
            memWrite(rec.effAddr, rec.value, 1);
            break;
          case Opcode::Sh:
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            rec.value = std::uint64_t(readInt(si.rs2));
            memWrite(rec.effAddr, rec.value, 2);
            break;
          case Opcode::Sw:
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            rec.value = std::uint64_t(readInt(si.rs2));
            memWrite(rec.effAddr, rec.value, 4);
            break;
          case Opcode::Sd:
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            rec.value = std::uint64_t(readInt(si.rs2));
            memWrite(rec.effAddr, rec.value, 8);
            break;
          case Opcode::Fsd: {
            rec.effAddr = Addr(readInt(si.rs1) + si.imm);
            std::uint64_t v;
            double d = ff[si.rs2];
            std::memcpy(&v, &d, sizeof v);
            rec.value = v;
            memWrite(rec.effAddr, v, 8);
            break;
          }

          case Opcode::Beq: {
            bool taken = readInt(si.rs1) == readInt(si.rs2);
            rec.value = taken;
            if (taken)
                nextPc = pc + Addr(std::int64_t(si.imm) * 4);
            break;
          }
          case Opcode::Bne: {
            bool taken = readInt(si.rs1) != readInt(si.rs2);
            rec.value = taken;
            if (taken)
                nextPc = pc + Addr(std::int64_t(si.imm) * 4);
            break;
          }
          case Opcode::Blt: {
            bool taken = readInt(si.rs1) < readInt(si.rs2);
            rec.value = taken;
            if (taken)
                nextPc = pc + Addr(std::int64_t(si.imm) * 4);
            break;
          }
          case Opcode::Bge: {
            bool taken = readInt(si.rs1) >= readInt(si.rs2);
            rec.value = taken;
            if (taken)
                nextPc = pc + Addr(std::int64_t(si.imm) * 4);
            break;
          }

          case Opcode::Jmp:
            nextPc = pc + Addr(std::int64_t(si.imm) * 4);
            break;
          case Opcode::Jal:
            writeInt(si.rd, std::int64_t(pc + 4));
            nextPc = pc + Addr(std::int64_t(si.imm) * 4);
            break;
          case Opcode::Jr:
            nextPc = Addr(readInt(si.rs1));
            break;

          case Opcode::NthrOp:
            // Division-serializing: deny every probe, taking the
            // sequential fall-back path of the three-way protocol.
            ++res.divisionRequests;
            writeInt(si.rd, -1);
            break;

          case Opcode::MlockOp: {
            rec.effAddr = Addr(readInt(si.rs1));
            // Single-threaded: acquisition always succeeds
            // (recursive re-acquisition is idempotent, as in the
            // hardware table).
            locksHeld.insert(rec.effAddr);
            ++res.lockAcquires;
            break;
          }
          case Opcode::MunlockOp: {
            rec.effAddr = Addr(readInt(si.rs1));
            if (locksHeld.erase(rec.effAddr) == 0)
                return fail("munlock of unheld address " +
                            std::to_string(rec.effAddr));
            break;
          }

          case Opcode::KthrOp:
          case Opcode::HaltOp:
            if (obs.size() < opt.obsLogLimit)
                obs.push_back(rec);
            res.ok = true;
            res.intRegs = rf;
            res.fpRegs = ff;
            res.locksHeldAtEnd = locksHeld.size();
            if (!locksHeld.empty()) {
                res.ok = false;
                res.error = "program ended holding " +
                            std::to_string(locksHeld.size()) +
                            " lock(s)";
            }
            return res;

          default:
            return fail(std::string("unhandled opcode ") +
                        isa::mnemonic(si.op));
        }

        if (obs.size() < opt.obsLogLimit)
            obs.push_back(rec);
        pc = nextPc;
    }
}

} // namespace capsule::fuzz
