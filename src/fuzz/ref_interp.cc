#include "fuzz/ref_interp.hh"

#include <sstream>
#include <stdexcept>

#include "base/digest.hh"

namespace capsule::fuzz
{

InjectedBug
parseInjectedBug(const std::string &name)
{
    if (name.empty() || name == "none")
        return InjectedBug::None;
    if (name == "add-off-by-one")
        return InjectedBug::AddOffByOne;
    if (name == "xor-as-or")
        return InjectedBug::XorAsOr;
    if (name == "slt-inverted")
        return InjectedBug::SltInverted;
    throw std::invalid_argument("unknown injected bug '" + name + "'");
}

const char *
injectedBugName(InjectedBug bug)
{
    switch (bug) {
      case InjectedBug::None: return "none";
      case InjectedBug::AddOffByOne: return "add-off-by-one";
      case InjectedBug::XorAsOr: return "xor-as-or";
      case InjectedBug::SltInverted: return "slt-inverted";
    }
    return "none";
}

RefInterp::RefInterp(const casm::Image &image, const RefOptions &options)
    : opt(options), codeBase(image.base), entry(image.base)
{
    code.reserve(image.words.size());
    for (std::size_t i = 0; i < image.words.size(); ++i) {
        code.push_back(isa::decode(image.words[i]));
        memory.write(image.base + Addr(i) * 4, image.words[i], 4);
    }
}

std::uint64_t
RefInterp::readCell(Addr addr) const
{
    return memory.read(addr, 8);
}

std::uint64_t
RefInterp::publicationDigest() const
{
    Digest d;
    d.str("capsule-publication-log-v1");
    for (const auto &rec : pubs) {
        d.u64(rec.effAddr);
        d.u64(rec.value);
    }
    return d.value();
}

std::string
RefInterp::renderLog() const
{
    std::ostringstream os;
    for (const auto &rec : obs) {
        os << "step " << rec.step << "  pc 0x" << std::hex << rec.pc
           << std::dec << "  " << isa::mnemonic(rec.op);
        if (rec.effAddr)
            os << "  addr 0x" << std::hex << rec.effAddr << std::dec;
        os << "  val " << rec.value << "\n";
    }
    return os.str();
}

RefResult
RefInterp::run()
{
    RefResult res;
    Addr pc = entry;

    auto finalState = [&] {
        res.intRegs = regs.intRegs;
        res.fpRegs = regs.fpRegs;
        res.locksHeldAtEnd = locksHeld.size();
    };
    auto fail = [&](const std::string &why) {
        res.ok = false;
        res.error = why;
        finalState();
        return res;
    };

    for (;;) {
        if (res.steps >= opt.maxSteps)
            return fail("reference exceeded maxSteps=" +
                        std::to_string(opt.maxSteps));
        if (pc % 4 != 0)
            return fail("misaligned pc " + std::to_string(pc));
        if (pc < codeBase || (pc - codeBase) / 4 >= code.size())
            return fail("pc outside code image: " +
                        std::to_string(pc));
        const isa::StaticInst si = code[(pc - codeBase) / 4];
        ++res.steps;

        // The one semantics implementation executes the instruction;
        // the oracle only runs the serial protocol around it.
        sim::StepResult sr =
            sim::step(si, pc, regs, memory, opt.inject);

        ObsRecord rec;
        rec.step = res.steps;
        rec.pc = pc;
        rec.op = si.op;
        rec.effAddr = sr.effAddr;
        rec.value = sr.value;

        switch (sr.kind) {
          case sim::StepKind::Nthr:
            // Division-serializing: deny every probe, taking the
            // sequential fall-back path of the three-way protocol.
            ++res.divisionRequests;
            sim::applyNthrDecision(regs, si.rd, false);
            break;

          case sim::StepKind::Mlock:
            // Single-threaded: acquisition always succeeds (recursive
            // re-acquisition is idempotent, as in the hardware table).
            locksHeld.insert(sr.effAddr);
            ++res.lockAcquires;
            break;

          case sim::StepKind::Munlock:
            if (locksHeld.erase(sr.effAddr) == 0)
                return fail("munlock of unheld address " +
                            std::to_string(sr.effAddr));
            break;

          case sim::StepKind::Kthr:
          case sim::StepKind::Halt:
            if (obs.size() < opt.obsLogLimit)
                obs.push_back(rec);
            res.ok = true;
            finalState();
            if (!locksHeld.empty()) {
                res.ok = false;
                res.error = "program ended holding " +
                            std::to_string(locksHeld.size()) +
                            " lock(s)";
            }
            return res;

          case sim::StepKind::Store:
            // Ordered-observation mode: a store made while holding a
            // lock is a publication; its serial order is the
            // dependency order division-dependent programs encode.
            if (opt.orderedObservation && !locksHeld.empty()) {
                ++res.publications;
                if (pubs.size() < opt.pubLogLimit)
                    pubs.push_back(rec);
            }
            break;

          default:
            break;
        }

        if (obs.size() < opt.obsLogLimit)
            obs.push_back(rec);
        pc = sr.nextPc;
    }
}

} // namespace capsule::fuzz
