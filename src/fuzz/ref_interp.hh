/**
 * @file
 * The functional reference oracle of the differential fuzzing
 * subsystem: a 1-IPC, in-order, division-serializing interpreter. It
 * denies every `nthr` (the hardware is always free to treat a division
 * probe as a nop), so a generated program's sequential fall-back path
 * executes the whole computation on one thread — the serial semantics
 * every grant interleaving of a division-independent program must
 * reproduce.
 *
 * Since the two-tier refactor (DESIGN.md §8) the per-opcode semantics
 * live in the one shared execution-semantics core
 * (sim/exec_semantics.hh); this oracle is a thin serial driver over
 * it. What stays independent — and what the differential campaign
 * therefore still checks — is everything *around* the opcode bodies:
 * the division/lock/teardown protocol, thread scheduling and
 * interleaving, the timing pipelines' staging of functional effects,
 * and the memory/lock bookkeeping of each backend.
 *
 * For harness diagnostics the oracle also records a canonical serial
 * observation log — the first N (pc, opcode, effective address,
 * value) tuples in execution order — dumped alongside failing `.casm`
 * repros.
 *
 * `InjectedBug` (now defined with the core, as the perturbation must
 * live inside the single semantics implementation) is a test-only
 * hook: only the oracle opts in, so the test suite can prove the
 * differential harness actually detects an ISA-level bug within a
 * bounded number of iterations (see tests/test_fuzz_diff.cc and the
 * CI nightly job).
 */

#ifndef CAPSULE_FUZZ_REF_INTERP_HH
#define CAPSULE_FUZZ_REF_INTERP_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/types.hh"
#include "casm/assembler.hh"
#include "isa/isa.hh"
#include "mem/memory.hh"
#include "sim/exec_semantics.hh"

namespace capsule::fuzz
{

/** Deliberate semantic mutations for harness-sensitivity tests. */
using InjectedBug = sim::InjectedBug;

/** Parse a --inject-bug name; returns None for an empty string,
 *  throws std::invalid_argument on an unknown one. */
InjectedBug parseInjectedBug(const std::string &name);
const char *injectedBugName(InjectedBug bug);

/** One canonical-serial-log record. */
struct ObsRecord
{
    std::uint64_t step = 0;
    Addr pc = 0;
    isa::Opcode op = isa::Opcode::Nop;
    Addr effAddr = 0;
    std::uint64_t value = 0; ///< store data / loaded value / branch taken
};

struct RefOptions
{
    std::uint64_t maxSteps = 50'000'000;
    std::size_t obsLogLimit = 256;
    InjectedBug inject = InjectedBug::None;
    /**
     * Ordered-observation mode (DESIGN.md §10): record every store
     * executed while at least one lock is held, in serial execution
     * order. Division-dependent programs publish results through
     * exactly such stores, so this log *is* the canonical dependency
     * order the adversarial scenario goldens pin (via
     * publicationDigest()). Commutative programs don't need it —
     * their judge compares final state only.
     */
    bool orderedObservation = false;
    std::size_t pubLogLimit = 4096;
};

/** Final state and verdict of one oracle run. */
struct RefResult
{
    bool ok = false;
    std::string error; ///< set when !ok (wild pc, lock misuse, ...)
    std::uint64_t steps = 0;
    std::uint64_t divisionRequests = 0;
    std::uint64_t lockAcquires = 0;
    std::size_t locksHeldAtEnd = 0;
    /** Lock-guarded stores recorded (orderedObservation mode only). */
    std::uint64_t publications = 0;
    std::array<std::int64_t, isa::numIntRegs> intRegs{};
    std::array<double, isa::numFpRegs> fpRegs{};
};

/** The division-serializing functional oracle. */
class RefInterp
{
  public:
    explicit RefInterp(const casm::Image &image,
                       const RefOptions &options = {});

    /** Execute from the image entry to halt/kthr (or an error). */
    RefResult run();

    /** 8-byte little-endian read of final memory (zero if untouched). */
    std::uint64_t readCell(Addr addr) const;

    const std::vector<ObsRecord> &log() const { return obs; }

    /** The ordered publication log (empty unless orderedObservation):
     *  every lock-guarded store, in serial execution order. */
    const std::vector<ObsRecord> &publications() const { return pubs; }

    /** FNV-1a digest over the publication log's (addr, value) pairs
     *  in order — the pinnable canonical dependency order. */
    std::uint64_t publicationDigest() const;

    /** Render the observation log for a failure artifact. */
    std::string renderLog() const;

  private:
    RefOptions opt;
    Addr codeBase;
    Addr entry;
    std::vector<isa::StaticInst> code;

    mem::Memory memory;
    std::unordered_set<Addr> locksHeld;
    sim::RegFile regs;

    std::vector<ObsRecord> obs;
    std::vector<ObsRecord> pubs; ///< ordered lock-guarded stores
};

} // namespace capsule::fuzz

#endif // CAPSULE_FUZZ_REF_INTERP_HH
