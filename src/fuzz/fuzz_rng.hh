/**
 * @file
 * Platform-stable random source for the fuzzing subsystem.
 *
 * The general-purpose `capsule::Rng` draws through the standard
 * <random> distributions, whose outputs are *not* specified bit-for-
 * bit by the C++ standard — libstdc++ and libc++ produce different
 * streams from the same engine. Fuzzing needs stronger reproduction
 * guarantees than that: `fuzz_capsule --seed N` must emit the same
 * program text on every platform so a failing seed reported by CI can
 * be replayed anywhere. FuzzRng therefore specifies every draw
 * explicitly: a SplitMix64 engine (Steele et al., "Fast splittable
 * pseudorandom number generators") with plain modulo range reduction,
 * all in exact uint64 arithmetic. The modulo bias is irrelevant for
 * test-case generation and the trade is byte-identical streams
 * everywhere (pinned by tests/test_fuzz_diff.cc).
 */

#ifndef CAPSULE_FUZZ_FUZZ_RNG_HH
#define CAPSULE_FUZZ_FUZZ_RNG_HH

#include <cstdint>

namespace capsule::fuzz
{

/** Explicitly-specified deterministic random source (SplitMix64). */
class FuzzRng
{
  public:
    explicit FuzzRng(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform-ish integer in [0, n); n must be positive. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Uniform-ish integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + std::int64_t(below(std::uint64_t(hi - lo) + 1));
    }

    /** True with probability approximately `percent`/100. */
    bool
    chance(int percent)
    {
        return below(100) < std::uint64_t(percent);
    }

    /** Derive an independent child stream (explicit, like next()). */
    FuzzRng
    fork()
    {
        return FuzzRng(next());
    }

  private:
    std::uint64_t state;
};

} // namespace capsule::fuzz

#endif // CAPSULE_FUZZ_FUZZ_RNG_HH
