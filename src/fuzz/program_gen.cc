#include "fuzz/program_gen.hh"

#include <algorithm>
#include <stdexcept>

#include "base/logging.hh"
#include "fuzz/fuzz_rng.hh"

namespace capsule::fuzz
{
namespace
{

/**
 * Register conventions of generated programs:
 *   r1..r8    work-chunk scratch, def-before-use within each chunk so
 *             a chunk computes the same values whether it runs in the
 *             spawned child or inline in a denied parent;
 *   r9,r12-r15 address/loop temps, never live across work items;
 *   r10,r11   root checksum outputs (masked sum / full-width xor);
 *   r16..r23  division-result registers, one per nesting depth;
 *   r28       epilogue constant;
 *   r29..r31  lock address / contribution / read-modify-write temps.
 *
 * Scratch values are masked to [0, 1023] after every growing op
 * (add/sub/mul/shift and every load), which keeps all integer
 * arithmetic far from signed-overflow UB in the two functional
 * interpreters while leaving div/rem/compare behaviour interesting.
 */
constexpr int firstDepthReg = 16;
constexpr int maxDepthRegs = 8;
constexpr Addr dataBaseAddr = 0x200000;
constexpr int scratchMask = 1023;

class Generator
{
  public:
    explicit Generator(const GenParams &params)
        : p(params), rng(params.seed)
    {
    }

    GeneratedProgram build();

  private:
    struct Node
    {
        int id = 0;
        int depth = 0;
        /** Previous child of the same parent, or -1. In
         *  DivisionDependent mode a node consumes its previous
         *  sibling's lock-published result before its own body. */
        int prevSibling = -1;
        std::vector<int> children;
    };

    // ---- tree ------------------------------------------------------
    void grow(int id, int depth_budget);

    // ---- cell map --------------------------------------------------
    int inputCell(int i) const { return i; }
    int accumCell(int a) const { return nInputs + a; }
    int counterCell() const { return nInputs + nAccums; }
    int fpOutCell() const { return nInputs + nAccums + 1; }
    int
    sliceCell(int node, int k) const
    {
        return nInputs + nAccums + 2 + node * p.sliceCells + k;
    }
    /** DivisionDependent-only cells, placed after every slice so the
     *  Independent layout is byte-identical to PR 5's. */
    int
    depCellBase() const
    {
        return nInputs + nAccums + 2 + int(nodes.size()) * p.sliceCells;
    }
    int mailboxCell(int node) const { return depCellBase() + node; }
    int
    resultCell(int node) const
    {
        return depCellBase() + int(nodes.size()) + node;
    }
    int
    totalCells() const
    {
        int n = nInputs + nAccums + 2 +
                int(nodes.size()) * p.sliceCells;
        if (p.mode == GenMode::DivisionDependent)
            n += 2 * int(nodes.size());
        return n;
    }

    // ---- emission helpers ------------------------------------------
    void line(const std::string &s) { src += "  " + s + "\n"; }
    void label(const std::string &s) { src += s + ":\n"; }
    std::string r(int n) { return "r" + std::to_string(n); }
    std::string f(int n) { return "f" + std::to_string(n); }
    std::string
    uniqueLabel(const char *stem)
    {
        return std::string(stem) + "_" + std::to_string(labelSeq++);
    }

    void emitLoadConst(int reg, std::int64_t v);
    void emitCellAddr(int reg, int cell);
    void emitSliceIndexAddr(int addr_reg, int idx_reg, int node);

    // ---- program pieces --------------------------------------------
    void emitNode(const Node &node);
    void emitSpawn(const Node &child);
    void emitWorkChunk(const Node &node);
    void emitAccumUpdate(const Node &node);
    void emitCounterIncrement();
    void emitPublishCell(int cell, std::int64_t token);
    void emitConsumeCell(int cell, int node);
    void emitRootPreamble();
    void emitRootEpilogue();

    GenParams p;
    FuzzRng rng;
    std::vector<Node> nodes;
    int nInputs = 0;
    int nAccums = 0;
    std::vector<const char *> accumOps; ///< "add" or "xor" per cell
    std::string src;
    int labelSeq = 0;
};

void
Generator::grow(int id, int depth_budget)
{
    if (depth_budget <= 0)
        return;
    // DeepTree draws no slot count: a fixed two-slot layout with a
    // near-certain first slot and an unlikely second grows long
    // unbalanced spines instead of bushy balanced trees.
    int slots = p.mode == GenMode::DeepTree
                    ? p.maxFanout
                    : 1 + int(rng.below(std::uint64_t(p.maxFanout)));
    int lastChild = -1;
    for (int s = 0; s < slots; ++s) {
        if (int(nodes.size()) >= p.maxNodes)
            return;
        int pct = p.mode == GenMode::DeepTree
                      ? (s == 0 ? 95 : 34)
                      : p.childPercent;
        if (!rng.chance(pct))
            continue;
        int child = int(nodes.size());
        nodes.push_back(Node{child, nodes[std::size_t(id)].depth + 1,
                             lastChild, {}});
        nodes[std::size_t(id)].children.push_back(child);
        lastChild = child;
        grow(child, depth_budget - 1);
    }
}

void
Generator::emitLoadConst(int reg, std::int64_t v)
{
    if (v >= -2048 && v <= 2047) {
        line("addi " + r(reg) + ", r0, " + std::to_string(v));
        return;
    }
    // lui/addi pair; bias so the addi remainder is in 12-bit range.
    std::int64_t hi = (v + 2048) >> 12;
    std::int64_t lo = v - (hi << 12);
    CAPSULE_ASSERT(lo >= -2048 && lo <= 2047, "bad const split for ",
                   v);
    line("lui " + r(reg) + ", " + std::to_string(hi));
    if (lo != 0)
        line("addi " + r(reg) + ", " + r(reg) + ", " +
             std::to_string(lo));
}

void
Generator::emitCellAddr(int reg, int cell)
{
    emitLoadConst(reg, std::int64_t(dataBaseAddr) + 8 * cell);
}

/** addr_reg = &slice[idx_reg % sliceCells] of `node` (clobbers both
 *  registers; sliceCells is a power of two). */
void
Generator::emitSliceIndexAddr(int addr_reg, int idx_reg, int node)
{
    line("andi " + r(idx_reg) + ", " + r(idx_reg) + ", " +
         std::to_string(p.sliceCells - 1));
    line("slli " + r(idx_reg) + ", " + r(idx_reg) + ", 3");
    emitCellAddr(addr_reg, sliceCell(node, 0));
    line("add " + r(addr_reg) + ", " + r(addr_reg) + ", " +
         r(idx_reg));
}

void
Generator::emitWorkChunk(const Node &node)
{
    int nRegs = 3 + int(rng.below(6)); // scratch r1..r{nRegs}
    bool useFloat = rng.chance(p.floatPercent);

    auto scratch = [&] { return 1 + int(rng.below(std::uint64_t(nRegs))); };
    auto mask = [&](int reg) {
        line("andi " + r(reg) + ", " + r(reg) + ", " +
             std::to_string(scratchMask));
    };

    // Def-before-use: every scratch register this chunk may read gets
    // a value derived only from constants, inputs or the node's own
    // slice — never from what a sibling or parent left behind.
    for (int k = 1; k <= nRegs; ++k) {
        switch (rng.below(3)) {
          case 0:
            line("addi " + r(k) + ", r0, " +
                 std::to_string(rng.below(1024)));
            break;
          case 1:
            emitCellAddr(9, inputCell(int(rng.below(
                                std::uint64_t(nInputs)))));
            line("ld " + r(k) + ", 0(r9)");
            mask(k);
            break;
          default:
            emitCellAddr(9, sliceCell(node.id,
                                      int(rng.below(std::uint64_t(
                                          p.sliceCells)))));
            line("ld " + r(k) + ", 0(r9)");
            mask(k);
            break;
        }
    }
    if (useFloat) {
        // Same def-before-use rule as the integer scratch: every f
        // register a float item may read or store must hold a value
        // this chunk computed, never one inherited across a division.
        for (int k = 1; k <= 6; ++k)
            line("fcvt " + f(k) + ", " + r(std::min(k, nRegs)));
    }

    // One rng draw per statement throughout: draws inside a single
    // string expression would be evaluated in unspecified (and thus
    // compiler-dependent) order, breaking the cross-platform
    // byte-identical guarantee the seed-stability test pins.
    int ops = 2 + int(rng.below(std::uint64_t(p.blockOps)));
    for (int i = 0; i < ops; ++i) {
        int kind = int(rng.below(useFloat ? 10u : 7u));
        switch (kind) {
          case 0: { // three-register integer ALU
            static const char *alu[] = {"add", "sub", "and", "or",
                                        "xor", "slt", "sltu", "sra",
                                        "srl"};
            int op = int(rng.below(9));
            int rd = scratch();
            int ra = scratch();
            int rb = scratch();
            line(std::string(alu[op]) + " " + r(rd) + ", " + r(ra) +
                 ", " + r(rb));
            if (op <= 1) // add/sub can grow
                mask(rd);
            break;
          }
          case 1: { // immediate integer ALU
            static const char *alui[] = {"addi", "andi", "ori",
                                         "xori", "slti"};
            int op = int(rng.below(5));
            int rd = scratch();
            int ra = scratch();
            std::uint64_t imm = rng.below(1024);
            line(std::string(alui[op]) + " " + r(rd) + ", " + r(ra) +
                 ", " + std::to_string(imm));
            if (op == 0)
                mask(rd);
            break;
          }
          case 2: { // immediate shifts
            int rd = scratch();
            int ra = scratch();
            bool left = rng.chance(50);
            std::uint64_t amount = rng.below(11);
            line(std::string(left ? "slli" : "srli") + " " + r(rd) +
                 ", " + r(ra) + ", " + std::to_string(amount));
            if (left)
                mask(rd);
            break;
          }
          case 3: { // multiply / divide / remainder
            static const char *mdr[] = {"mul", "div", "rem"};
            int op = int(rng.below(3));
            int rd = scratch();
            int ra = scratch();
            int rb = scratch();
            line(std::string(mdr[op]) + " " + r(rd) + ", " + r(ra) +
                 ", " + r(rb));
            if (op == 0)
                mask(rd);
            break;
          }
          case 4: { // store to the node's own slice (all sizes)
            static const char *st[] = {"sb", "sh", "sw", "sd"};
            int val = scratch();
            int idx = scratch();
            int size = int(rng.below(4));
            line("addi r12, " + r(idx) + ", 0");
            emitSliceIndexAddr(9, 12, node.id);
            line(std::string(st[size]) + " " + r(val) + ", 0(r9)");
            break;
          }
          case 5: { // load from the node's own slice (all sizes)
            static const char *lo[] = {"lb", "lh", "lw", "ld"};
            int rd = scratch();
            int idx = scratch();
            int size = int(rng.below(4));
            line("addi r12, " + r(idx) + ", 0");
            emitSliceIndexAddr(9, 12, node.id);
            line(std::string(lo[size]) + " " + r(rd) + ", 0(r9)");
            mask(rd);
            break;
          }
          case 6: { // data-dependent skip branch
            std::string skip = uniqueLabel("b");
            int ra = scratch();
            int rb = scratch();
            line("slt r9, " + r(ra) + ", " + r(rb));
            line("beq r9, r0, " + skip);
            int body = 1 + int(rng.below(2));
            for (int j = 0; j < body; ++j) {
                int rd = scratch();
                int rc = scratch();
                int re = scratch();
                line("add " + r(rd) + ", " + r(rc) + ", " + r(re));
                mask(rd);
            }
            label(skip);
            break;
          }
          case 7: { // float arithmetic
            static const char *fp[] = {"fadd", "fsub", "fmul",
                                       "fdiv"};
            int op = int(rng.below(4));
            int fd = 1 + int(rng.below(6));
            int fa = 1 + int(rng.below(6));
            int fb = 1 + int(rng.below(6));
            line(std::string(fp[op]) + " " + f(fd) + ", " + f(fa) +
                 ", " + f(fb));
            break;
          }
          case 8: { // float compare / convert into the int domain
            if (rng.chance(50)) {
                int rd = scratch();
                int fa = 1 + int(rng.below(6));
                int fb = 1 + int(rng.below(6));
                line("fcmp " + r(rd) + ", " + f(fa) + ", " + f(fb));
            } else {
                int fd = 1 + int(rng.below(6));
                int ra = scratch();
                line("fcvt " + f(fd) + ", " + r(ra));
            }
            break;
          }
          default: { // float load/store against the node's slice
            int fd = 1 + int(rng.below(6));
            int cell = int(rng.below(std::uint64_t(p.sliceCells)));
            emitCellAddr(9, sliceCell(node.id, cell));
            if (rng.chance(50))
                line("fsd " + f(fd) + ", 0(r9)");
            else
                line("fld " + f(fd) + ", 0(r9)");
            break;
          }
        }
    }
}

void
Generator::emitAccumUpdate(const Node &node)
{
    // Deterministic contribution: the node's own slice, masked. The
    // update itself is a lock-guarded read-modify-write of a shared
    // cell; add and xor are commutative, so the accumulator's final
    // value is independent of how threads interleave.
    emitCellAddr(9, sliceCell(node.id, int(rng.below(std::uint64_t(
                                  p.sliceCells)))));
    line("ld r30, 0(r9)");
    line("andi r30, r30, " + std::to_string(scratchMask));
    int accum = int(rng.below(std::uint64_t(nAccums)));
    emitCellAddr(29, accumCell(accum));
    line("mlock r29");
    line("ld r31, 0(r29)");
    if (p.mode == GenMode::HotLock) {
        // Convoy pressure: stretch the critical section with scratch
        // work that cannot touch the accumulator, so hold time grows
        // but the update stays commutative.
        int extra = 2 + int(rng.below(6));
        for (int i = 0; i < extra; ++i) {
            line("mul r9, r30, r30");
            line("andi r9, r9, " + std::to_string(scratchMask));
        }
    }
    // The combining operation is a per-accumulator property: updates
    // commute within add and within xor, but an add/xor mix on one
    // cell is interleaving-dependent and would (rightly) diverge.
    line(std::string(accumOps[std::size_t(accum)]) +
         " r31, r31, r30");
    line("sd r31, 0(r29)");
    line("munlock r29");
}

/** Lock-publish a nonzero constant into `cell`. Each dependency cell
 *  is written exactly once with a grant-independent token, so the
 *  final data region stays deterministic under any interleaving. */
void
Generator::emitPublishCell(int cell, std::int64_t token)
{
    emitCellAddr(29, cell);
    line("mlock r29");
    emitLoadConst(30, token);
    line("sd r30, 0(r29)");
    line("munlock r29");
}

/** Spin until `cell` is nonzero, then read it under its lock and
 *  store it into `node`'s first slice cell — a real data dependency
 *  on an earlier chunk's lock-published result. Spins commit
 *  instructions, so the detailed tier's progress watchdog stays
 *  quiet; every publisher is live and fairly scheduled, so every
 *  spin terminates (the dependency graph points backward in serial
 *  division order and is acyclic by construction). */
void
Generator::emitConsumeCell(int cell, int node)
{
    std::string spin = uniqueLabel("dep");
    label(spin);
    emitCellAddr(9, cell);
    line("ld r12, 0(r9)");
    line("beq r12, r0, " + spin);
    emitCellAddr(29, cell);
    line("mlock r29");
    line("ld r30, 0(r29)");
    line("munlock r29");
    emitCellAddr(9, sliceCell(node, 0));
    line("sd r30, 0(r9)");
}

void
Generator::emitCounterIncrement()
{
    emitCellAddr(29, counterCell());
    line("mlock r29");
    line("ld r31, 0(r29)");
    line("addi r31, r31, 1");
    line("sd r31, 0(r29)");
    line("munlock r29");
}

void
Generator::emitSpawn(const Node &child)
{
    CAPSULE_ASSERT(child.depth >= 1 && child.depth <= maxDepthRegs,
                   "division depth ", child.depth,
                   " exceeds the register convention");
    int dreg = firstDepthReg + child.depth - 1;
    std::string entry = "node_" + std::to_string(child.id);
    std::string granted = uniqueLabel("g");
    std::string ret = uniqueLabel("ret");
    std::string cont = uniqueLabel("cont");

    // The child's mailbox token is lock-published *before* the nthr,
    // so the child block — spawned or inline — always finds it.
    if (p.mode == GenMode::DivisionDependent)
        emitPublishCell(mailboxCell(child.id),
                        std::int64_t(child.id) + 1);

    // The paper's three-way division protocol: granted parent (rd=0)
    // skips the child block, the spawned child (rd=1) runs it and
    // kthrs, a denied parent (rd=-1) runs it inline and falls back
    // into its own continuation.
    line("nthr " + r(dreg) + ", " + entry);
    line("bge " + r(dreg) + ", r0, " + granted);
    line("jmp " + entry);
    label(granted);
    line("jmp " + cont);
    label(entry);
    emitNode(nodes[std::size_t(child.id)]);
    line("addi r28, r0, 1");
    line("bne " + r(dreg) + ", r28, " + ret);
    line("kthr");
    label(ret);
    line("jmp " + cont);
    label(cont);
}

void
Generator::emitNode(const Node &node)
{
    // DivisionDependent: consume the mailbox token the parent
    // published before this node's nthr, then the previous sibling's
    // end-of-body result. Both dependencies point backward in serial
    // (all-deny) division order, so the graph is acyclic.
    if (p.mode == GenMode::DivisionDependent && node.id != 0) {
        emitConsumeCell(mailboxCell(node.id), node.id);
        if (node.prevSibling >= 0)
            emitConsumeCell(resultCell(node.prevSibling), node.id);
    }
    for (int child : node.children) {
        emitWorkChunk(node);
        emitSpawn(nodes[std::size_t(child)]);
    }
    emitWorkChunk(node);
    int updates = int(rng.below(std::uint64_t(p.accumUpdatesMax) + 1));
    for (int u = 0; u < updates; ++u)
        emitAccumUpdate(node);
    if (p.mode == GenMode::DivisionDependent)
        emitPublishCell(resultCell(node.id),
                        std::int64_t(node.id) + 1);
    emitCounterIncrement();
}

void
Generator::emitRootPreamble()
{
    // Materialise the read-only input cells before any division: the
    // data region starts zeroed, so writes here are the only
    // initialisation the program needs.
    for (int i = 0; i < nInputs; ++i) {
        emitLoadConst(12, std::int64_t(1 + rng.below(1023)));
        emitCellAddr(9, inputCell(i));
        line("sd r12, 0(r9)");
    }
}

void
Generator::emitRootEpilogue()
{
    // Join: spin until every node (root included) has bumped the
    // completion counter. All descendant memory writes precede their
    // counter increment in program order, so once the count matches,
    // the data region is final.
    std::string spin = uniqueLabel("spin");
    label(spin);
    emitCellAddr(9, counterCell());
    line("ld r12, 0(r9)");
    line("addi r13, r0, " + std::to_string(nodes.size()));
    line("bne r12, r13, " + spin);

    // Float epilogue over now-final values (fcvt/fadd/fmul/fsub/fcmp),
    // landing a checksum double in a data cell the comparison covers.
    emitCellAddr(9, counterCell());
    line("ld r1, 0(r9)");
    emitCellAddr(9, accumCell(0));
    line("ld r2, 0(r9)");
    line("andi r2, r2, " + std::to_string(scratchMask));
    line("fcvt f1, r1");
    line("fcvt f2, r2");
    line("fadd f3, f1, f2");
    line("fmul f4, f3, f1");
    line("fsub f5, f4, f2");
    line("fcmp r3, f5, f1");
    line("fcvt f6, r3");
    line("fadd f6, f6, f4");
    emitCellAddr(9, fpOutCell());
    line("fsd f6, 0(r9)");

    // Fold every data cell into the two output registers: r10 a
    // masked running sum (overflow-safe), r11 a full-width xor.
    std::string loop = uniqueLabel("ck");
    line("addi r10, r0, 0");
    line("addi r11, r0, 0");
    line("addi r12, r0, 0");
    emitLoadConst(13, std::int64_t(dataBaseAddr));
    emitLoadConst(15, totalCells());
    label(loop);
    line("slli r9, r12, 3");
    line("add r9, r9, r13");
    line("ld r14, 0(r9)");
    line("xor r11, r11, r14");
    line("andi r14, r14, " + std::to_string(scratchMask));
    line("add r10, r10, r14");
    line("addi r12, r12, 1");
    line("bne r12, r15, " + loop);
    line("halt");
}

GeneratedProgram
Generator::build()
{
    CAPSULE_ASSERT(p.sliceCells > 0 &&
                       (p.sliceCells & (p.sliceCells - 1)) == 0,
                   "sliceCells must be a power of two");

    // Adversarial shape overrides, all strictly inside mode guards so
    // the Independent rng stream — and with it PR 5's pinned source
    // hashes — stays byte-identical.
    switch (p.mode) {
      case GenMode::Independent:
        break;
      case GenMode::HotLock:
        p.maxDepth = std::min(p.maxDepth, 2);
        p.maxFanout = std::max(p.maxFanout, 5);
        p.childPercent = std::max(p.childPercent, 95);
        p.numAccums = 1; // every update convoys on one cell
        p.accumUpdatesMax = std::max(p.accumUpdatesMax, 4);
        break;
      case GenMode::DeepTree:
        p.maxDepth = maxDepthRegs;
        p.maxFanout = 2; // spine + rare side branch (see grow())
        break;
      case GenMode::Oversubscribe:
        p.maxDepth = std::max(p.maxDepth, 3);
        p.maxFanout = std::max(p.maxFanout, 4);
        p.childPercent = 100; // every slot grows: demand >> contexts
        break;
      case GenMode::DivisionDependent:
        break; // layout + emission changes only
    }

    nInputs = std::max(1, p.numInputs);
    nAccums = std::max(1, p.numAccums);
    for (int a = 0; a < nAccums; ++a)
        accumOps.push_back(rng.chance(50) ? "add" : "xor");

    int depth = 1 + int(rng.below(std::uint64_t(
                        std::min(p.maxDepth, maxDepthRegs))));
    if (p.mode == GenMode::Oversubscribe)
        depth = std::max(depth, std::min(3, p.maxDepth));
    if (p.mode == GenMode::DeepTree)
        depth = std::max(depth, std::min(6, p.maxDepth));
    nodes.push_back(Node{0, 0, -1, {}});
    grow(0, depth);
    CAPSULE_ASSERT(int(nodes.size()) <= 2047,
                   "division tree too large for the join immediate");

    src.clear();
    src += "# fuzz-generated CAPSULE program (seed " +
           std::to_string(p.seed) + ", " +
           std::to_string(nodes.size()) + " nodes)\n";
    if (p.mode != GenMode::Independent)
        src += "# generator mode: " +
               std::string(genModeName(p.mode)) + "\n";
    emitRootPreamble();
    emitNode(nodes[0]);
    emitRootEpilogue();

    GeneratedProgram out;
    out.source = src;
    casm::Assembler as;
    if (!as.assemble(src)) {
        const auto &d = as.diagnostics().front();
        CAPSULE_FATAL("fuzz generator emitted bad assembly (seed ",
                      p.seed, ") at line ", d.line, ": ", d.message);
    }
    out.image = as.image();
    CAPSULE_ASSERT(out.image.words.size() < 120000,
                   "generated program too large for jmp displacements");
    out.numNodes = int(nodes.size());
    out.expectedDivisionRequests = std::uint64_t(nodes.size()) - 1;
    out.dataBase = dataBaseAddr;
    out.totalCells = totalCells();
    out.counterCell = counterCell();
    out.outputRegs = {10, 11};
    return out;
}

} // namespace

const char *
genModeName(GenMode mode)
{
    switch (mode) {
      case GenMode::Independent:
        return "independent";
      case GenMode::HotLock:
        return "hotlock";
      case GenMode::DeepTree:
        return "deeptree";
      case GenMode::Oversubscribe:
        return "oversubscribe";
      case GenMode::DivisionDependent:
        return "divdep";
    }
    return "unknown";
}

GenMode
parseGenMode(const std::string &name)
{
    static constexpr GenMode all[] = {
        GenMode::Independent, GenMode::HotLock, GenMode::DeepTree,
        GenMode::Oversubscribe, GenMode::DivisionDependent};
    for (GenMode m : all)
        if (name == genModeName(m))
            return m;
    throw std::invalid_argument(
        "unknown generator mode '" + name +
        "' (valid: independent, hotlock, deeptree, oversubscribe, "
        "divdep)");
}

GenParams
GenParams::scaled(double f) const
{
    auto shrink = [f](int v, int floor_v) {
        return std::max(floor_v, int(v * f));
    };
    GenParams s = *this;
    s.maxDepth = shrink(maxDepth, 1);
    s.maxFanout = shrink(maxFanout, 1);
    s.maxNodes = shrink(maxNodes, 1);
    s.blockOps = shrink(blockOps, 2);
    s.numAccums = shrink(numAccums, 1);
    s.numInputs = shrink(numInputs, 1);
    int cells = shrink(sliceCells, 4);
    while (cells & (cells - 1)) // keep the power-of-two invariant
        cells &= cells - 1;
    s.sliceCells = cells;
    return s;
}

GeneratedProgram
generate(const GenParams &params)
{
    return Generator(params).build();
}

} // namespace capsule::fuzz
