#include "fuzz/scenarios.hh"

namespace capsule::fuzz
{
namespace
{

GenParams
base(GenMode mode, std::uint64_t seed)
{
    GenParams p;
    p.seed = seed;
    p.mode = mode;
    return p;
}

std::vector<Scenario>
makeScenarios()
{
    std::vector<Scenario> v;

    // Lock convoy, narrow: the HotLock overrides collapse every
    // node's updates onto one accumulator; the small tree keeps all
    // the pressure on a single cache line's lock.
    {
        GenParams p = base(GenMode::HotLock, 11);
        p.maxNodes = 24;
        v.push_back({"convoy-narrow",
                     "every thread hammers one lock-guarded "
                     "accumulator with long critical sections",
                     p});
    }

    // Lock convoy, wide: same single hot lock, but a bigger tree so
    // more simultaneous waiters queue on it (lock-wait cycles scale
    // with the convoy length, not the work).
    {
        GenParams p = base(GenMode::HotLock, 46);
        p.maxNodes = 48;
        p.maxFanout = 6;
        v.push_back({"convoy-wide",
                     "a wider division tree queues more simultaneous "
                     "waiters on the same hot lock",
                     p});
    }

    // Deep chain: DeepTree biases the first fan-out slot at 95%, so
    // the tree degenerates toward one long nthr-in-nthr spine —
    // maximum division nesting depth, minimal parallel width.
    {
        GenParams p = base(GenMode::DeepTree, 21);
        p.maxDepth = 8;
        p.maxNodes = 40;
        v.push_back({"deep-chain",
                     "a near-linear division spine nests nthr eight "
                     "deep with little parallel width",
                     p});
    }

    // Unbalanced tree: the same mode at a shallower cap grows a few
    // heavy spines off a light crown — grant patterns differ wildly
    // between backends, final state must not.
    {
        GenParams p = base(GenMode::DeepTree, 37);
        p.maxDepth = 6;
        p.maxNodes = 32;
        v.push_back({"unbalanced-tree",
                     "heavy spines off a light crown make grant "
                     "patterns maximally backend-dependent",
                     p});
    }

    // Oversubscription: childPercent 100 at fan-out 4 demands far
    // more threads than any backend has contexts, forcing denied
    // divisions (and, with small context stacks, swap pressure).
    {
        GenParams p = base(GenMode::Oversubscribe, 31);
        p.maxNodes = 64;
        v.push_back({"oversubscribe",
                     "static thread demand far exceeds hardware "
                     "contexts, forcing denials and swap pressure",
                     p});
    }

    // Division-dependent pipeline: children consume their parent's
    // lock-published mailbox and their elder sibling's result, so the
    // program's *internal* order is pinned while its final state
    // stays grant-independent; judged with the ordered-observation
    // oracle.
    {
        GenParams p = base(GenMode::DivisionDependent, 24);
        p.maxNodes = 32;
        p.maxFanout = 4;
        p.childPercent = 95;
        v.push_back({"divdep-pipeline",
                     "publish/consume spines serialise siblings "
                     "through lock-published mailboxes",
                     p});
    }

    return v;
}

} // namespace

const std::vector<Scenario> &
scenarios()
{
    static const std::vector<Scenario> v = makeScenarios();
    return v;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const auto &s : scenarios())
        if (s.name == name)
            return &s;
    return nullptr;
}

} // namespace capsule::fuzz
