/**
 * @file
 * The functional simulation tier (DESIGN.md §8): a MachineBackend that
 * executes programs through the shared execution-semantics core with
 * the *real* CAPSULE protocol — nthr three-way division through the
 * DivisionController, the hardware lock table, kthr/halt teardown —
 * but none of the timing machinery: no RUU/LSQ, no caches, no branch
 * predictor, no context-stack swapping, no cycle model.
 *
 * Time model: a serialized 1-IPC instruction clock — `cycles` equals
 * total retired instructions across all threads. The clock feeds the
 * division controller's death-rate window, so the greedy-throttle
 * policy remains meaningful (a different but architecturally legal
 * grant pattern than the detailed tiers').
 *
 * Scheduling: deterministic round-robin over live threads in creation
 * order, `sliceQuantum` instructions per turn. AsmProgram-backed
 * threads run their straight-line stretches through the pre-decoded
 * block cache and the computed-goto executor (AsmProgram::runDirect);
 * other Program front ends (the rt:: worker runtime) pull through the
 * ordinary DynInst path. Both paths execute the identical semantics.
 *
 * The backend also powers mixed-mode fast-forward: runUntil() stops
 * at the first safe point (no locks held, no instruction in flight)
 * after N instructions, and releaseLiveThreads() hands the surviving
 * Programs to a detailed backend (see sim/mixed_machine.hh).
 */

#ifndef CAPSULE_SIM_FUNC_MACHINE_HH
#define CAPSULE_SIM_FUNC_MACHINE_HH

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "front/asm_program.hh"
#include "sim/backend.hh"
#include "sim/config.hh"
#include "sim/division_ctrl.hh"
#include "sim/lock_table.hh"

namespace capsule::sim
{

/** The fast functional backend ("func"). */
class FuncMachine : public MachineBackend
{
  public:
    /** Round-robin slice length (instructions per thread turn). */
    static constexpr std::uint64_t sliceQuantum = 64;

    explicit FuncMachine(const MachineConfig &config);

    ThreadId addThread(std::unique_ptr<front::Program> program) override;
    RunStats run() override;
    RunStats stats() const override;
    ContentionStats contention() const override;

    void
    setDivisionObserver(DivisionObserver obs) override
    {
        divObserver = std::move(obs);
    }

    void
    setThreadFinalizer(ThreadFinalizer fin) override
    {
        threadFinalizer = std::move(fin);
    }

    std::size_t lockedAddrs() const override { return locks.occupancy(); }
    /** The functional tier has no inactive-context stack. */
    std::size_t swappedContexts() const override { return 0; }
    const MachineConfig &config() const override { return cfg; }
    void dumpStats(std::ostream &os) const override;

    /**
     * Fast-forward: run until at least `min_instructions` have retired
     * AND the machine is at a safe handoff point — no locks held or
     * awaited, no staged instruction, no pending nthr — or until all
     * threads finish, whichever first.
     */
    void runUntil(std::uint64_t min_instructions);

    /**
     * Harvest the surviving threads for handoff to a detailed backend,
     * in thread-id order. Programs carry their architectural state
     * (pc, registers); memory lives in the shared process image.
     * Callable only at the safe point runUntil() stops at.
     */
    std::vector<std::pair<ThreadId, std::unique_ptr<front::Program>>>
    releaseLiveThreads();

    /** The serialized instruction clock (== retired instructions). */
    Cycle now() const { return clock; }
    int liveThreads() const { return liveCnt; }
    /** Threads ever created (ancestors + granted children). */
    std::size_t threadsCreated() const { return threads.size(); }

  private:
    struct Thread
    {
        ThreadId tid = invalidThread;
        std::unique_ptr<front::Program> program;
        /** Non-null when `program` is an AsmProgram: enables the
         *  pre-decoded block-cache / computed-goto fast path. */
        front::AsmProgram *fast = nullptr;
        enum class State { Active, LockWait, Finished } state =
            State::Active;
        /** One pulled-but-unretired DynInst; persists only across a
         *  LockWait stall (the mlock re-executes on wake). */
        std::optional<isa::DynInst> staged;
    };

    void runLoop(std::optional<std::uint64_t> stop_after);
    void runSlice(std::size_t idx, std::uint64_t budget);
    void handleNthr(std::size_t idx, const isa::DynInst &d);
    void finishThread(std::size_t idx, bool is_kthr);
    ThreadId spawn(std::unique_ptr<front::Program> p);
    void wake(ThreadId tid);

    /** Advance the instruction clock by `n` retirements. */
    void
    retire(std::uint64_t n)
    {
        clock += n;
        activeSum += n * std::uint64_t(activeCnt);
        lockWaitSum += n * std::uint64_t(liveCnt - activeCnt);
    }

    MachineConfig cfg;
    std::vector<Thread> threads;  ///< tid == index, creation order
    LockTable locks;
    DivisionController divCtrl;
    DivisionObserver divObserver;
    ThreadFinalizer threadFinalizer;

    Cycle clock = 0;        ///< == retired instructions
    int liveCnt = 0;        ///< Active + LockWait
    int activeCnt = 0;      ///< Active only
    int peakLive = 0;
    std::uint64_t activeSum = 0;  ///< sum of activeCnt per retirement
    /** Sum of LockWait threads per retirement (instruction-clock
     *  analogue of the detailed tier's lock-wait cycle counter). */
    std::uint64_t lockWaitSum = 0;
    std::uint64_t nDeaths = 0;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_FUNC_MACHINE_HH
