/**
 * @file
 * The simulation-backend seam: every machine organisation (the
 * single-core SMT pipeline, the multi-core CMP, the fast functional
 * tier) presents the same narrow surface — add ancestor threads, run to completion, report
 * one `RunStats` — and is selected by name through `makeBackend()`.
 * The workload layer (`wl::simulate`) routes through this seam, so
 * every registry workload and every experiment-engine sweep can
 * target any backend by setting `MachineConfig::backend`.
 */

#ifndef CAPSULE_SIM_BACKEND_HH
#define CAPSULE_SIM_BACKEND_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"
#include "front/program.hh"
#include "sim/config.hh"

namespace capsule::sim
{

/** Aggregate results of one simulation run. */
struct RunStats
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    std::uint64_t divisionsRequested = 0;
    std::uint64_t divisionsGranted = 0;
    std::uint64_t divisionsThrottled = 0;
    /** Divisions granted to a remote core (CMP backend; 0 on SMT). */
    std::uint64_t divisionsRemote = 0;
    std::uint64_t threadDeaths = 0;
    std::uint64_t lockConflicts = 0;
    std::uint64_t swapsOut = 0;
    std::uint64_t swapsIn = 0;
    double bpredAccuracy = 0.0;
    double l1dMissRate = 0.0;
    int peakLiveThreads = 0;
    /** Mean number of threads in the Active state per cycle. */
    double avgActiveThreads = 0.0;

    /** Field-exact equality, for parallel == serial determinism
     *  checks in the experiment engine. */
    bool operator==(const RunStats &) const = default;
};

/**
 * Contention metrics under adversarial pressure (DESIGN.md §10),
 * reported separately from RunStats: the result-cache wire format
 * pins the RunStats field list, and these counters only matter to
 * the adversarial bench/scenario suite, not to cached sweeps.
 */
struct ContentionStats
{
    /** Thread-cycles spent stalled on a lock (sum over threads). */
    std::uint64_t lockWaitCycles = 0;
    /** Division requests denied (no free context / throttled). */
    std::uint64_t divisionsDenied = 0;
    /** Peak number of simultaneously locked addresses. */
    std::uint64_t peakLockOccupancy = 0;
    /** Peak inactive-context stack depth (max over stacks on CMP). */
    std::uint64_t peakCtxStackDepth = 0;

    bool operator==(const ContentionStats &) const = default;
};

/**
 * Observer invoked on every granted division with (parent, child)
 * thread ids; used to reconstruct division genealogy (Figure 6).
 * Thread ids are unique machine-wide, including across CMP cores.
 */
using DivisionObserver = std::function<void(ThreadId, ThreadId)>;

/**
 * Observer invoked as a thread retires its kthr/halt, immediately
 * before the machine releases its front-end Program — the last moment
 * the thread's final architectural state is observable. The
 * differential fuzzing harness uses this to snapshot the ancestor's
 * register file uniformly from any backend.
 */
using ThreadFinalizer =
    std::function<void(ThreadId, const front::Program &)>;

/** The common surface of every simulation backend. */
class MachineBackend
{
  public:
    virtual ~MachineBackend() = default;

    /**
     * Add a thread running `program`. Threads added before run() are
     * the ancestors; nthr-spawned children are added internally.
     * @return the new thread's id
     */
    virtual ThreadId addThread(std::unique_ptr<front::Program> p) = 0;

    /** Run to completion (all threads finished) or cfg.maxCycles. */
    virtual RunStats run() = 0;

    /** Snapshot the aggregate run statistics. */
    virtual RunStats stats() const = 0;

    /**
     * Snapshot the contention metrics (lock-wait cycles, denied
     * divisions, peak occupancies). The default derives what it can
     * from stats(); timing backends override with exact counters.
     */
    virtual ContentionStats
    contention() const
    {
        ContentionStats c;
        RunStats s = stats();
        c.divisionsDenied = s.divisionsRequested - s.divisionsGranted;
        return c;
    }

    virtual void setDivisionObserver(DivisionObserver obs) = 0;

    /** Install the end-of-thread snapshot hook (see ThreadFinalizer). */
    virtual void setThreadFinalizer(ThreadFinalizer fin) = 0;

    /**
     * Addresses still held or waited on in the (shared) lock table
     * after run(); a program that exits cleanly leaves 0. Exposed so
     * invariant checkers need no backend-specific casts.
     */
    virtual std::size_t lockedAddrs() const = 0;

    /** Thread contexts still parked on the inactive-context stack(s)
     *  after run(); a clean exit leaves 0 (no context leak). */
    virtual std::size_t swappedContexts() const = 0;

    virtual const MachineConfig &config() const = 0;

    /** Dump the full named-counter statistics. */
    virtual void dumpStats(std::ostream &os) const = 0;
};

/** The registered backend names, in selection order. */
std::vector<std::string> backendNames();

/**
 * Build the backend `cfg.backend` selects ("smt", "cmp" or "func").
 * With `cfg.ffwdInstructions > 0` a timing backend is wrapped in the
 * two-tier fast-forward engine (sim/mixed_machine.hh).
 * @throws std::invalid_argument on an unknown backend name, listing
 *         the valid ones
 */
std::unique_ptr<MachineBackend> makeBackend(const MachineConfig &cfg);

} // namespace capsule::sim

#endif // CAPSULE_SIM_BACKEND_HH
