#include "sim/context_stack.hh"

#include "base/logging.hh"
#include "sim/sim_error.hh"

namespace capsule::sim
{

ContextStack::ContextStack(const ContextStackParams &params)
    : p(params)
{
    CAPSULE_ASSERT(p.entries > 0, "context stack needs entries");
    stack.reserve(std::size_t(p.entries));
}

void
ContextStack::observeLoad(ThreadId tid, Cycle latency)
{
    // Exponential moving average with alpha = 1/loadWindow models the
    // "average of the last N loads" with O(1) state.
    ++loadsSeen;
    double alpha = 1.0 / double(p.loadWindow);
    if (loadsSeen == 1)
        avgLoadLatency = double(latency);
    else
        avgLoadLatency += alpha * (double(latency) - avgLoadLatency);

    auto idx = std::size_t(tid);
    if (idx >= counters.size())
        counters.resize(idx + 1, 0);
    if (double(latency) > avgLoadLatency) {
        ++counters[idx];
    } else if (counters[idx] > 0) {
        --counters[idx];
    }
}

bool
ContextStack::swapCandidate(ThreadId tid) const
{
    auto idx = std::size_t(tid);
    if (idx >= counters.size())
        return false;
    return counters[idx] >= p.swapThreshold;
}

void
ContextStack::clearCandidate(ThreadId tid)
{
    auto idx = std::size_t(tid);
    if (idx < counters.size())
        counters[idx] = 0;
}

void
ContextStack::push(ThreadId tid)
{
    if (full())
        CAPSULE_SIM_ERROR(SimErrorKind::ContextStackOverflow,
                          "context stack overflow (", p.entries,
                          " entries); a full design would trap to memory");
    stack.push_back(tid);
    ++nSwapsOut;
    if (stack.size() > nPeakDepth.value()) {
        nPeakDepth.reset();
        nPeakDepth += stack.size();
    }
}

ThreadId
ContextStack::pop()
{
    CAPSULE_ASSERT(!stack.empty(), "pop from empty context stack");
    ThreadId tid = stack.back();
    stack.pop_back();
    ++nSwapsIn;
    return tid;
}

void
ContextStack::registerStats(StatGroup &g) const
{
    g.add("ctxstack.swaps_out", nSwapsOut, "threads swapped out");
    g.add("ctxstack.swaps_in", nSwapsIn, "threads swapped in");
    g.add("ctxstack.peak_depth", nPeakDepth, "max stack occupancy");
}

} // namespace capsule::sim
