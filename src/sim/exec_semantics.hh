/**
 * @file
 * The single CapISA execution-semantics core (DESIGN.md §8).
 *
 * Every component that executes CapISA — the execute-at-fetch front
 * end feeding the timing backends (front::AsmProgram), the functional
 * "func" backend's block executor (sim::FuncMachine), and the
 * differential-fuzzing oracle (fuzz::RefInterp) — dispatches into the
 * one opcode->semantics table defined here. The table is an X-macro
 * (`CAPSULE_CAPISA_SEMANTICS`) listing the 49 opcodes in exact
 * `isa::Opcode` enum order (statically asserted below), from which two
 * dispatchers are generated:
 *
 *  - step(): a switch over one decoded instruction, returning a
 *    StepResult the caller maps onto its own protocol (DynInst fields,
 *    oracle observation records, ...). Control-transfer and CAPSULE
 *    protocol opcodes (nthr/kthr/mlock/munlock/halt) only *classify*
 *    here; the caller owns the division/lock/teardown protocol.
 *  - execStraight(): a threaded computed-goto executor (GCC/Clang
 *    labels-as-values; portable switch fallback) over a pre-decoded
 *    straight-line run of plain opcodes — the functional backend's
 *    basic-block fast path.
 *
 * The memory parameter is a concept: any type with
 * `std::uint64_t read(Addr, int)` and
 * `void write(Addr, std::uint64_t, int)` little-endian byte semantics
 * (mem::Memory satisfies it). FP loads/stores move raw bit patterns
 * through read/write, bit-identical to Memory::readDouble/writeDouble.
 *
 * `InjectedBug` lives here because the perturbation must apply at the
 * single implementation: the fuzz oracle opts in (proving the harness
 * detects an ISA-level bug), while every production caller passes
 * `InjectedBug::None`, so an injected campaign still diverges.
 */

#ifndef CAPSULE_SIM_EXEC_SEMANTICS_HH
#define CAPSULE_SIM_EXEC_SEMANTICS_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "base/logging.hh"
#include "base/types.hh"
#include "isa/isa.hh"

namespace capsule::sim
{

/** Architectural register state of one CapISA thread (r0 wired 0). */
struct RegFile
{
    std::array<std::int64_t, isa::numIntRegs> intRegs{};
    std::array<double, isa::numFpRegs> fpRegs{};

    std::int64_t
    readInt(std::uint8_t r) const
    {
        CAPSULE_ASSERT(r < isa::numIntRegs, "bad int reg ", int(r));
        return r == 0 ? 0 : intRegs[r];
    }

    void
    writeInt(std::uint8_t r, std::int64_t v)
    {
        CAPSULE_ASSERT(r < isa::numIntRegs, "bad int reg ", int(r));
        if (r != 0)
            intRegs[r] = v;
    }
};

/** Deliberate semantic mutations for harness-sensitivity tests. */
enum class InjectedBug
{
    None,
    AddOffByOne,  ///< add computes rs1 + rs2 + 1
    XorAsOr,      ///< xor behaves like or
    SltInverted,  ///< slt returns the opposite truth value
};

/** What one executed instruction asks of the caller's protocol. */
enum class StepKind : std::uint8_t
{
    Plain,    ///< ALU/FP op, fully executed
    Load,     ///< memory read performed; effAddr/value filled
    Store,    ///< memory write performed; effAddr/value filled
    Branch,   ///< conditional; taken/target/nextPc resolved
    Jump,     ///< unconditional; target/nextPc resolved
    Nthr,     ///< division probe: caller decides, then applyNthrDecision
    Mlock,    ///< lock acquire on effAddr: caller runs the lock protocol
    Munlock,  ///< lock release on effAddr: caller runs the lock protocol
    Kthr,     ///< thread kill: caller tears the thread down
    Halt,     ///< program halt: caller tears the thread down
};

/** Functional outcome of one step() over the semantics table. */
struct StepResult
{
    Addr nextPc = 0;           ///< sequential or taken-branch successor
    StepKind kind = StepKind::Plain;
    Addr effAddr = 0;          ///< load/store/mlock/munlock address
    int accessBytes = 0;       ///< memory access size
    bool taken = false;        ///< branch outcome (jumps: true)
    Addr target = 0;           ///< branch/jump target, nthr child PC
    std::uint64_t value = 0;   ///< raw loaded bits / stored bits / taken
};

/**
 * The CapISA opcode->semantics table, in exact isa::Opcode enum order.
 * Each entry is X(Name, { body }) where the body executes over an
 * `Env &e` (see below): `e.si` decoded instruction, `e.pc` its PC,
 * `e.rf` registers, `e.mem` memory, `e.inject` bug hook, `e.res` the
 * StepResult (pre-set to kind Plain, nextPc = pc + 4).
 *
 * This is THE instruction-semantics implementation; tests pin its
 * source hash and assert no other translation unit re-implements an
 * opcode (tests/test_exec_semantics.cc).
 */
#define CAPSULE_CAPISA_SEMANTICS(X)                                     \
    X(Nop, { (void)e; })                                                \
    X(Add, {                                                            \
        std::int64_t v = e.R(e.si.rs1) + e.R(e.si.rs2);                 \
        if (e.inject == InjectedBug::AddOffByOne)                       \
            v += 1;                                                     \
        e.W(e.si.rd, v);                                                \
    })                                                                  \
    X(Sub, { e.W(e.si.rd, e.R(e.si.rs1) - e.R(e.si.rs2)); })            \
    X(And, { e.W(e.si.rd, e.R(e.si.rs1) & e.R(e.si.rs2)); })            \
    X(Or, { e.W(e.si.rd, e.R(e.si.rs1) | e.R(e.si.rs2)); })             \
    X(Xor, {                                                            \
        if (e.inject == InjectedBug::XorAsOr)                           \
            e.W(e.si.rd, e.R(e.si.rs1) | e.R(e.si.rs2));                \
        else                                                            \
            e.W(e.si.rd, e.R(e.si.rs1) ^ e.R(e.si.rs2));                \
    })                                                                  \
    X(Sll, {                                                            \
        e.W(e.si.rd, e.R(e.si.rs1) << (e.R(e.si.rs2) & 63));            \
    })                                                                  \
    X(Srl, {                                                            \
        e.W(e.si.rd,                                                    \
            std::int64_t(std::uint64_t(e.R(e.si.rs1)) >>                \
                         (e.R(e.si.rs2) & 63)));                        \
    })                                                                  \
    X(Sra, {                                                            \
        e.W(e.si.rd, e.R(e.si.rs1) >> (e.R(e.si.rs2) & 63));            \
    })                                                                  \
    X(Slt, {                                                            \
        bool lt = e.R(e.si.rs1) < e.R(e.si.rs2);                        \
        if (e.inject == InjectedBug::SltInverted)                       \
            lt = !lt;                                                   \
        e.W(e.si.rd, lt ? 1 : 0);                                       \
    })                                                                  \
    X(Sltu, {                                                           \
        e.W(e.si.rd, std::uint64_t(e.R(e.si.rs1)) <                     \
                             std::uint64_t(e.R(e.si.rs2))               \
                         ? 1                                            \
                         : 0);                                          \
    })                                                                  \
    X(Addi, { e.W(e.si.rd, e.R(e.si.rs1) + e.si.imm); })                \
    X(Andi, { e.W(e.si.rd, e.R(e.si.rs1) & e.si.imm); })                \
    X(Ori, { e.W(e.si.rd, e.R(e.si.rs1) | e.si.imm); })                 \
    X(Xori, { e.W(e.si.rd, e.R(e.si.rs1) ^ e.si.imm); })                \
    X(Slli, { e.W(e.si.rd, e.R(e.si.rs1) << (e.si.imm & 63)); })        \
    X(Srli, {                                                           \
        e.W(e.si.rd, std::int64_t(std::uint64_t(e.R(e.si.rs1)) >>       \
                                  (e.si.imm & 63)));                    \
    })                                                                  \
    X(Slti, { e.W(e.si.rd, e.R(e.si.rs1) < e.si.imm ? 1 : 0); })        \
    X(Lui, { e.W(e.si.rd, std::int64_t(e.si.imm) << 12); })             \
    X(Mul, { e.W(e.si.rd, e.R(e.si.rs1) * e.R(e.si.rs2)); })            \
    X(Div, {                                                            \
        std::int64_t d = e.R(e.si.rs2);                                 \
        e.W(e.si.rd, d == 0 ? -1 : e.R(e.si.rs1) / d);                  \
    })                                                                  \
    X(Rem, {                                                            \
        std::int64_t d = e.R(e.si.rs2);                                 \
        e.W(e.si.rd, d == 0 ? e.R(e.si.rs1) : e.R(e.si.rs1) % d);       \
    })                                                                  \
    X(Fadd, { e.F(e.si.rd) = e.F(e.si.rs1) + e.F(e.si.rs2); })          \
    X(Fsub, { e.F(e.si.rd) = e.F(e.si.rs1) - e.F(e.si.rs2); })          \
    X(Fcmp, {                                                           \
        /* Result to an integer register: -1 / 0 / 1. */                \
        e.W(e.si.rd, e.F(e.si.rs1) < e.F(e.si.rs2)   ? -1               \
                     : e.F(e.si.rs1) > e.F(e.si.rs2) ? 1                \
                                                     : 0);              \
    })                                                                  \
    X(Fcvt, { e.F(e.si.rd) = double(e.R(e.si.rs1)); })                  \
    X(Fmul, { e.F(e.si.rd) = e.F(e.si.rs1) * e.F(e.si.rs2); })          \
    X(Fdiv, { e.F(e.si.rd) = e.F(e.si.rs1) / e.F(e.si.rs2); })          \
    X(Lb, {                                                             \
        e.load(1);                                                      \
        e.W(e.si.rd, std::int8_t(e.res.value));                         \
    })                                                                  \
    X(Lh, {                                                             \
        e.load(2);                                                      \
        e.W(e.si.rd, std::int16_t(e.res.value));                        \
    })                                                                  \
    X(Lw, {                                                             \
        e.load(4);                                                      \
        e.W(e.si.rd, std::int32_t(e.res.value));                        \
    })                                                                  \
    X(Ld, {                                                             \
        e.load(8);                                                      \
        e.W(e.si.rd, std::int64_t(e.res.value));                        \
    })                                                                  \
    X(Sb, { e.store(1, std::uint64_t(e.R(e.si.rs2))); })                \
    X(Sh, { e.store(2, std::uint64_t(e.R(e.si.rs2))); })                \
    X(Sw, { e.store(4, std::uint64_t(e.R(e.si.rs2))); })                \
    X(Sd, { e.store(8, std::uint64_t(e.R(e.si.rs2))); })                \
    X(Fld, {                                                            \
        e.load(8);                                                      \
        double d;                                                       \
        std::memcpy(&d, &e.res.value, sizeof d);                        \
        e.F(e.si.rd) = d;                                               \
    })                                                                  \
    X(Fsd, {                                                            \
        double d = e.F(e.si.rs2);                                       \
        std::uint64_t v;                                                \
        std::memcpy(&v, &d, sizeof v);                                  \
        e.store(8, v);                                                  \
    })                                                                  \
    X(Beq, { e.branch(e.R(e.si.rs1) == e.R(e.si.rs2)); })               \
    X(Bne, { e.branch(e.R(e.si.rs1) != e.R(e.si.rs2)); })               \
    X(Blt, { e.branch(e.R(e.si.rs1) < e.R(e.si.rs2)); })                \
    X(Bge, { e.branch(e.R(e.si.rs1) >= e.R(e.si.rs2)); })               \
    X(Jmp, {                                                            \
        e.jump(e.pc + Addr(std::int64_t(e.si.imm) * 4));                \
    })                                                                  \
    X(Jal, {                                                            \
        e.W(e.si.rd, std::int64_t(e.pc + 4));                           \
        e.jump(e.pc + Addr(std::int64_t(e.si.imm) * 4));                \
    })                                                                  \
    X(Jr, { e.jump(Addr(e.R(e.si.rs1))); })                             \
    X(NthrOp, {                                                         \
        /* Probe only: the caller decides and applies the three-way     \
         * protocol via applyNthrDecision(). The fall-through nextPc    \
         * is the parent's path regardless of the decision. */          \
        e.res.kind = StepKind::Nthr;                                    \
        e.res.target = e.pc + Addr(std::int64_t(e.si.imm) * 4);         \
    })                                                                  \
    X(KthrOp, { e.res.kind = StepKind::Kthr; })                         \
    X(MlockOp, {                                                        \
        e.res.kind = StepKind::Mlock;                                   \
        e.res.effAddr = Addr(e.R(e.si.rs1));                            \
        e.res.accessBytes = 8;                                          \
    })                                                                  \
    X(MunlockOp, {                                                      \
        e.res.kind = StepKind::Munlock;                                 \
        e.res.effAddr = Addr(e.R(e.si.rs1));                            \
        e.res.accessBytes = 8;                                          \
    })                                                                  \
    X(HaltOp, { e.res.kind = StepKind::Halt; })

// Pin the table order to the Opcode enum: a reordered or missing entry
// is a compile error, not a silently wrong dispatch.
namespace xsem_order
{
enum Order : int
{
#define CAPSULE_XSEM_X(name, ...) name,
    CAPSULE_CAPISA_SEMANTICS(CAPSULE_XSEM_X)
#undef CAPSULE_XSEM_X
        Count
};
#define CAPSULE_XSEM_X(name, ...)                                       \
    static_assert(int(name) == int(isa::Opcode::name),                  \
                  "semantics table out of enum order at " #name);
CAPSULE_CAPISA_SEMANTICS(CAPSULE_XSEM_X)
#undef CAPSULE_XSEM_X
static_assert(int(Count) == int(isa::Opcode::NumOpcodes),
              "semantics table must cover every opcode exactly once");
} // namespace xsem_order

namespace xsem
{

/** Execution environment one opcode body runs over. */
template <class Mem>
struct Env
{
    const isa::StaticInst &si;
    Addr pc;
    RegFile &rf;
    Mem &mem;
    InjectedBug inject;
    StepResult &res;

    std::int64_t R(std::uint8_t r) const { return rf.readInt(r); }
    void W(std::uint8_t r, std::int64_t v) { rf.writeInt(r, v); }
    double &F(std::uint8_t r) { return rf.fpRegs[r]; }

    /** Load helper: address, size, raw little-endian bits in value. */
    void
    load(int bytes)
    {
        res.kind = StepKind::Load;
        res.effAddr = Addr(R(si.rs1) + si.imm);
        res.accessBytes = bytes;
        res.value = mem.read(res.effAddr, bytes);
    }

    /** Store helper: records the full (untruncated) source bits. */
    void
    store(int bytes, std::uint64_t bits)
    {
        res.kind = StepKind::Store;
        res.effAddr = Addr(R(si.rs1) + si.imm);
        res.accessBytes = bytes;
        res.value = bits;
        mem.write(res.effAddr, bits, bytes);
    }

    void
    branch(bool cond)
    {
        res.kind = StepKind::Branch;
        res.taken = cond;
        res.target = pc + Addr(std::int64_t(si.imm) * 4);
        res.value = cond;
        if (cond)
            res.nextPc = res.target;
    }

    void
    jump(Addr target)
    {
        res.kind = StepKind::Jump;
        res.taken = true;
        res.target = target;
        res.nextPc = target;
    }
};

// One inline function per opcode, generated from the table.
#define CAPSULE_XSEM_X(name, ...)                                       \
    template <class Mem>                                                \
    inline void exec_##name(Env<Mem> &e) __VA_ARGS__
CAPSULE_CAPISA_SEMANTICS(CAPSULE_XSEM_X)
#undef CAPSULE_XSEM_X

/** Switch dispatcher over the table (shared by step() and the
 *  portable execStraight fallback). */
template <class Mem>
inline void
dispatchOne(Env<Mem> &e)
{
    switch (e.si.op) {
#define CAPSULE_XSEM_X(name, ...)                                       \
      case isa::Opcode::name:                                           \
        exec_##name(e);                                                 \
        break;
        CAPSULE_CAPISA_SEMANTICS(CAPSULE_XSEM_X)
#undef CAPSULE_XSEM_X
      default:
        CAPSULE_PANIC("invalid opcode ", int(e.si.op));
    }
}

} // namespace xsem

/**
 * Execute one decoded instruction functionally.
 * @return the functional outcome; protocol opcodes (StepKind::Nthr,
 *         Mlock, Munlock, Kthr, Halt) classify without side effects
 *         beyond computing their operands — the caller owns the
 *         division/lock/teardown protocol.
 */
template <class Mem>
inline StepResult
step(const isa::StaticInst &si, Addr pc, RegFile &rf, Mem &mem,
     InjectedBug inject = InjectedBug::None)
{
    StepResult res;
    res.nextPc = pc + 4;
    xsem::Env<Mem> e{si, pc, rf, mem, inject, res};
    xsem::dispatchOne(e);
    return res;
}

/** True for opcodes execStraight() may run: plain compute and memory
 *  ops with sequential control flow and no protocol interaction. */
inline bool
isStraightLine(isa::Opcode op)
{
    switch (isa::opClassOf(op)) {
      case isa::OpClass::Nop:
      case isa::OpClass::IntAlu:
      case isa::OpClass::IntMult:
      case isa::OpClass::FpAlu:
      case isa::OpClass::FpMult:
      case isa::OpClass::Load:
      case isa::OpClass::Store:
        return true;
      default:
        return false;
    }
}

/**
 * Threaded execution of a pre-decoded straight-line run: `n`
 * consecutive instructions starting at `insts` / `pc`, every one
 * satisfying isStraightLine(). Dispatch is computed-goto (GCC/Clang
 * labels-as-values) — the functional backend's basic-block fast path —
 * with a portable switch loop as fallback.
 */
template <class Mem>
inline void
execStraight(const isa::StaticInst *insts, std::size_t n, Addr pc,
             RegFile &rf, Mem &mem,
             InjectedBug inject = InjectedBug::None)
{
    StepResult res;  // scratch: straight-line ops never branch
    std::size_t i = 0;
#if defined(__GNUC__) || defined(__clang__)
    static const void *const dispatch[] = {
#define CAPSULE_XSEM_X(name, ...) &&straight_##name,
        CAPSULE_CAPISA_SEMANTICS(CAPSULE_XSEM_X)
#undef CAPSULE_XSEM_X
    };
    static_assert(sizeof dispatch / sizeof dispatch[0] ==
                      std::size_t(isa::Opcode::NumOpcodes),
                  "dispatch table must cover every opcode");
    if (i == n)
        return;
    goto *dispatch[int(insts[i].op)];
#define CAPSULE_XSEM_X(name, ...)                                       \
  straight_##name: {                                                    \
        xsem::Env<Mem> e{insts[i], pc, rf, mem, inject, res};           \
        xsem::exec_##name(e);                                           \
        pc += 4;                                                        \
        if (++i == n)                                                   \
            return;                                                     \
        goto *dispatch[int(insts[i].op)];                               \
    }
    CAPSULE_CAPISA_SEMANTICS(CAPSULE_XSEM_X)
#undef CAPSULE_XSEM_X
#else
    for (; i < n; ++i) {
        xsem::Env<Mem> e{insts[i], pc, rf, mem, inject, res};
        xsem::dispatchOne(e);
        pc += 4;
    }
#endif
}

/**
 * Apply the three-way nthr register protocol to the *issuing* thread:
 * deny writes rd = -1 (sequential fall-back), grant writes the parent's
 * rd = 0. A granted child starts with rd = nthrChildResult.
 */
inline void
applyNthrDecision(RegFile &rf, std::uint8_t rd, bool granted)
{
    rf.writeInt(rd, granted ? 0 : -1);
}

/** The granted child's value of the nthr destination register. */
inline constexpr std::int64_t nthrChildResult = 1;

/** Number of opcodes in the semantics table (== NumOpcodes). */
std::size_t semanticsOpCount();

/** Mnemonic-order name of table entry `idx`, for the pinned-source
 *  one-implementation test. */
const char *semanticsOpName(std::size_t idx);

/**
 * FNV-1a digest of the semantics table's entry list (the same value
 * tests/test_exec_semantics.cc pins). The simulation farm folds it
 * into every content-addressed cache key, so a change to the
 * execution-semantics table invalidates every memoized result instead
 * of silently replaying results computed under older semantics.
 */
std::uint64_t semanticsTableHash();

} // namespace capsule::sim

#endif // CAPSULE_SIM_EXEC_SEMANTICS_HH
