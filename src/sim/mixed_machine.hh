/**
 * @file
 * Mixed-mode fast-forward (DESIGN.md §8): a MachineBackend that runs
 * the first `MachineConfig::ffwdInstructions` instructions on the
 * functional tier, then hands the surviving threads off to the
 * selected detailed backend (smt/cmp) for the measured interval.
 *
 * Snapshot/handoff contract:
 *  - The warm-up runs the full CAPSULE protocol (divisions may be
 *    granted, locks taken and released), so the handed-off state can
 *    include several live threads.
 *  - Handoff happens at a *safe point*: no locks held or awaited, no
 *    instruction staged, no nthr pending. Architectural state needs no
 *    copying — each front-end Program carries its own pc + registers,
 *    and memory lives in the shared process image the Programs
 *    reference.
 *  - Microarchitectural state is NOT carried over: the detailed tier
 *    starts with cold caches, an empty predictor and an empty
 *    inactive-context stack (warm-up models none of them).
 *  - Thread ids stay unique machine-wide: warm-up ids pass through
 *    unchanged; detailed-tier survivors map back to their warm-up ids
 *    and detailed-spawned children continue after the warm-up's
 *    highest id, so DivisionObserver / ThreadFinalizer clients see one
 *    consistent id space across the tiers.
 *
 * Stats contract: instruction and protocol-event counters (divisions,
 * deaths, lock conflicts) aggregate across both tiers;
 * cycles/ipc/swaps/bpred/cache fields describe the measured (detailed)
 * interval only; peakLiveThreads is the maximum across tiers. With
 * ffwdInstructions == 0 the warm-up is skipped entirely and every
 * field is identical to the pure detailed backend's (asserted
 * field-exactly by tests/test_func_machine.cc).
 */

#ifndef CAPSULE_SIM_MIXED_MACHINE_HH
#define CAPSULE_SIM_MIXED_MACHINE_HH

#include <memory>
#include <vector>

#include "sim/backend.hh"
#include "sim/config.hh"
#include "sim/func_machine.hh"

namespace capsule::sim
{

/** Two-tier fast-forward engine wrapping a detailed backend. */
class MixedMachine : public MachineBackend
{
  public:
    explicit MixedMachine(const MachineConfig &config);

    ThreadId addThread(std::unique_ptr<front::Program> program) override;
    RunStats run() override;
    RunStats stats() const override;
    ContentionStats contention() const override;
    void setDivisionObserver(DivisionObserver obs) override;
    void setThreadFinalizer(ThreadFinalizer fin) override;
    std::size_t lockedAddrs() const override;
    std::size_t swappedContexts() const override;
    const MachineConfig &config() const override { return cfg; }
    void dumpStats(std::ostream &os) const override;

  private:
    /** Map a detailed-tier tid into the machine-wide id space. */
    ThreadId mapDetailTid(ThreadId tid) const;

    MachineConfig cfg;
    /** Ancestors buffered between addThread() and run(). */
    std::vector<std::unique_ptr<front::Program>> pending;

    std::unique_ptr<FuncMachine> warm;
    std::unique_ptr<MachineBackend> detail;

    /** Machine-wide ids of the survivors, in detailed creation order. */
    std::vector<ThreadId> survivorIds;
    /** Ids consumed by the warm-up tier (children continue after). */
    ThreadId warmIdCount = 0;

    RunStats warmStats;
    bool ranWarm = false;

    DivisionObserver divObserver;
    ThreadFinalizer threadFinalizer;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_MIXED_MACHINE_HH
