#include "sim/cmp_machine.hh"

#include <algorithm>

#include "base/logging.hh"

namespace capsule::sim
{

CmpMachine::CmpMachine(const MachineConfig &config)
    : cfg(config),
      l2(config.cmp.l2Config, nullptr, config.mem.memLatency),
      locks(config.lockTableCapacity),
      divCtrl(config.division)
{
    CAPSULE_ASSERT(cfg.cmp.numCores >= 1, "CMP needs at least 1 core");
    cores.reserve(std::size_t(cfg.cmp.numCores));
    for (int i = 0; i < cfg.cmp.numCores; ++i) {
        MachineConfig coreCfg = cfg;
        coreCfg.name = cfg.name + ".core" + std::to_string(i);
        CoreLinks links;
        links.coreId = i;
        links.sharedL2 = &l2;
        links.sharedLocks = &locks;
        links.sharedDivCtrl = &divCtrl;
        links.tidCounter = &nextTid;
        links.coupling = this;
        cores.push_back(std::make_unique<Machine>(coreCfg, links));
    }
}

CmpMachine::~CmpMachine() = default;

ThreadId
CmpMachine::addThread(std::unique_ptr<front::Program> program)
{
    ThreadId tid = cores.front()->addThread(std::move(program));
    peakLive = std::max(peakLive, liveThreads());
    return tid;
}

int
CmpMachine::liveThreads() const
{
    int n = 0;
    for (const auto &c : cores)
        n += c->liveThreads();
    return n;
}

Machine &
CmpMachine::owningCore(ThreadId tid)
{
    for (auto &c : cores)
        if (c->ownsThread(tid))
            return *c;
    CAPSULE_PANIC("thread ", tid, " lives on no core");
}

// --------------------------------------------------------------------
// CmpCoupling: division arbitration and cross-core plumbing
// --------------------------------------------------------------------
DivisionGrant
CmpMachine::requestDivision(int core, Cycle when, bool local_free)
{
    DivisionGrant g;
    int target = -1;
    if (!local_free) {
        // Remote fallback: the core with the most free contexts,
        // ties to the lowest id (deterministic ascending scan).
        int best = 0;
        for (int i = 0; i < numCores(); ++i) {
            if (i == core)
                continue;
            int f = cores[std::size_t(i)]->freeContexts();
            if (f > best) {
                best = f;
                target = i;
            }
        }
    }
    bool anyFree = local_free || target >= 0;
    g.granted = divCtrl.request(when, anyFree);
    if (g.granted && !local_free) {
        g.remote = true;
        g.targetCore = target;
        ++nRemoteDivisions;
    }
    return g;
}

ThreadId
CmpMachine::adoptRemoteChild(int target_core, int from_core,
                             ThreadId parent,
                             std::unique_ptr<front::Program> child)
{
    CAPSULE_ASSERT(target_core >= 0 && target_core < numCores() &&
                       target_core != from_core,
                   "bad remote division target ", target_core);
    (void)parent;
    ThreadId tid =
        cores[std::size_t(target_core)]->adoptThread(std::move(child));
    peakLive = std::max(peakLive, liveThreads());
    return tid;
}

void
CmpMachine::activateRemoteChild(ThreadId child, Cycle when)
{
    owningCore(child).activateThread(child, when);
}

void
CmpMachine::wakeRemoteWaiter(ThreadId tid)
{
    owningCore(tid).wakeWaiter(tid);
}

// --------------------------------------------------------------------
// top level
// --------------------------------------------------------------------
bool
CmpMachine::step()
{
    if (liveThreads() == 0)
        return false;
    for (auto &c : cores)
        c->stepShared();
    ++curCycle;
    peakLive = std::max(peakLive, liveThreads());
    return true;
}

RunStats
CmpMachine::run()
{
    while (step()) {
    }
    return stats();
}

void
CmpMachine::setDivisionObserver(DivisionObserver obs)
{
    for (auto &c : cores)
        c->setDivisionObserver(obs);
}

void
CmpMachine::setThreadFinalizer(ThreadFinalizer fin)
{
    for (auto &c : cores)
        c->setThreadFinalizer(fin);
}

std::size_t
CmpMachine::lockedAddrs() const
{
    return locks.occupancy();
}

std::size_t
CmpMachine::swappedContexts() const
{
    std::size_t n = 0;
    for (const auto &c : cores)
        n += c->contextStack().depth();
    return n;
}

RunStats
CmpMachine::stats() const
{
    RunStats s;
    s.cycles = curCycle;
    s.divisionsRequested = divCtrl.requested();
    s.divisionsGranted = divCtrl.granted();
    s.divisionsThrottled = divCtrl.throttled();
    s.divisionsRemote = nRemoteDivisions;
    s.lockConflicts = locks.conflicts();
    s.peakLiveThreads = peakLive;

    std::uint64_t activeSum = 0;
    std::uint64_t bpLookups = 0, bpCorrect = 0;
    std::uint64_t l1dHits = 0, l1dMisses = 0;
    for (const auto &c : cores) {
        s.instructions += c->committedInstructions();
        s.threadDeaths += c->threadDeaths();
        s.swapsOut += c->contextStack().swapsOut();
        s.swapsIn += c->contextStack().swapsIn();
        activeSum += c->activeCycleSum();
        bpLookups += c->predictor().lookups();
        bpCorrect += c->predictor().correct();
        l1dHits += c->memoryConst().l1dConst().hits();
        l1dMisses += c->memoryConst().l1dConst().misses();
    }
    s.ipc = curCycle ? double(s.instructions) / double(curCycle) : 0.0;
    s.avgActiveThreads =
        curCycle ? double(activeSum) / double(curCycle) : 0.0;
    s.bpredAccuracy =
        bpLookups ? double(bpCorrect) / double(bpLookups) : 0.0;
    std::uint64_t l1dTotal = l1dHits + l1dMisses;
    s.l1dMissRate = l1dTotal ? double(l1dMisses) / double(l1dTotal)
                             : 0.0;
    return s;
}

ContentionStats
CmpMachine::contention() const
{
    ContentionStats c;
    c.divisionsDenied = divCtrl.requested() - divCtrl.granted();
    c.peakLockOccupancy = locks.peakOccupancy();
    for (const auto &core : cores) {
        c.lockWaitCycles += core->lockWaitCycleSum();
        c.peakCtxStackDepth = std::max(c.peakCtxStackDepth,
                                       core->contextStack().peakDepth());
    }
    return c;
}

void
CmpMachine::dumpStats(std::ostream &os) const
{
    StatGroup g(cfg.name);
    g.addFormula("cycles", [this] { return double(curCycle); },
                 "simulated cycles");
    g.addFormula("cores", [this] { return double(numCores()); },
                 "CMP cores");
    g.addFormula("remote_divisions",
                 [this] { return double(nRemoteDivisions); },
                 "divisions granted to a remote core");
    divCtrl.registerStats(g);
    locks.registerStats(g);
    l2.registerStats(g);
    g.dump(os);
    for (const auto &c : cores)
        c->dumpStats(os);
}

} // namespace capsule::sim
