#include "sim/sim_error.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace capsule::sim
{

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::ContextStackOverflow:
        return "context-stack-overflow";
      case SimErrorKind::LockTableOverflow:
        return "lock-table-overflow";
      case SimErrorKind::Deadlock:
        return "deadlock";
      case SimErrorKind::CyclesExceeded:
        return "cycles-exceeded";
    }
    return "unknown";
}

namespace
{

bool &
hardFlag()
{
    static bool hard = [] {
        const char *env = std::getenv("CAPSULE_HARD_SIM_ERRORS");
        return env && *env && std::string(env) != "0";
    }();
    return hard;
}

} // namespace

bool
hardSimulationErrors()
{
    return hardFlag();
}

void
setHardSimulationErrors(bool hard)
{
    hardFlag() = hard;
}

void
raiseSimError(SimErrorKind kind, const char *file, int line,
              const std::string &msg)
{
    if (hardSimulationErrors())
        fatalImpl(file, line, msg);
    throw SimulationError(kind, msg);
}

} // namespace capsule::sim
