/**
 * @file
 * Set-associative cache model with LRU replacement and write-back /
 * write-allocate policy, plus the two-level hierarchy of Table 1
 * (L1I 16 kB / 1 cy, L1D 8 kB / 1 cy, unified L2 1 MB / 12 cy, memory
 * 200 cy). Accesses return a completion latency; the pipeline overlaps
 * them freely (port contention is modelled at issue).
 */

#ifndef CAPSULE_SIM_CACHE_HH
#define CAPSULE_SIM_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace capsule::sim
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 8 * 1024;
    int assoc = 4;
    int lineBytes = 32;
    Cycle hitLatency = 1;
};

/**
 * One level of set-associative cache. The next level is another Cache
 * or nullptr, in which case misses cost `memLatency`.
 */
class Cache
{
  public:
    Cache(const CacheParams &params, Cache *next_level,
          Cycle mem_latency);

    /**
     * Access a line.
     * @param addr byte address (the whole access is assumed to fit in
     *        one line; the workloads align node records)
     * @param write true for stores (sets dirty; write-allocate)
     * @return total latency in cycles to completion
     */
    Cycle access(Addr addr, bool write);

    /** True if the address currently hits (no state change). */
    bool probe(Addr addr) const;

    /** Invalidate everything (between benchmark data sets). */
    void flush();

    std::uint64_t hits() const { return nHits.value(); }
    std::uint64_t misses() const { return nMisses.value(); }
    double
    missRate() const
    {
        std::uint64_t total = hits() + misses();
        return total ? double(misses()) / double(total) : 0.0;
    }

    void registerStats(StatGroup &g) const;
    const CacheParams &params() const { return p; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams p;
    Cache *next;
    Cycle memLatency;
    std::uint64_t numSets;
    std::vector<Line> lines;   ///< numSets * assoc, set-major
    std::uint64_t stamp = 0;

    mutable Scalar nHits;
    mutable Scalar nMisses;
    Scalar nWritebacks;
};

/** The full Table-1 memory hierarchy. */
class MemoryHierarchy
{
  public:
    struct Params
    {
        CacheParams l1i{"l1i", 16 * 1024, 4, 32, 1};
        CacheParams l1d{"l1d", 8 * 1024, 4, 32, 1};
        CacheParams l2{"l2", 1024 * 1024, 8, 64, 12};
        Cycle memLatency = 200;
    };

    /**
     * With `shared_l2` null the hierarchy owns its L2 (Table 1). A
     * non-null `shared_l2` is the per-core view of a CMP: the L1s
     * miss into the caller-owned external L2 (the caller registers
     * its stats once), and `params.l2` is ignored.
     */
    explicit MemoryHierarchy(const Params &params,
                             Cache *shared_l2 = nullptr);

    /** Instruction fetch; returns latency. */
    Cycle fetchAccess(Addr pc) { return l1iCache.access(pc, false); }
    /** Data access; returns latency. */
    Cycle
    dataAccess(Addr addr, bool write)
    {
        return l1dCache.access(addr, write);
    }

    Cache &l1i() { return l1iCache; }
    Cache &l1d() { return l1dCache; }
    Cache &l2() { return *l2Ptr; }
    const Cache &l1iConst() const { return l1iCache; }
    const Cache &l1dConst() const { return l1dCache; }
    const Cache &l2Const() const { return *l2Ptr; }

    /** True when this hierarchy owns its L2 (non-CMP organisation). */
    bool ownsL2() const { return l2Cache != nullptr; }

    /** Flush the L1s and, when owned, the L2. */
    void flush();
    /** Register L1 stats and, when owned, L2 stats. */
    void registerStats(StatGroup &g) const;

  private:
    std::unique_ptr<Cache> l2Cache;  ///< null when the L2 is shared
    Cache *l2Ptr;                    ///< owned or external L2
    Cache l1iCache;
    Cache l1dCache;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_CACHE_HH
