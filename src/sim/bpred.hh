/**
 * @file
 * Branch direction predictors per Table 1: a 4K-entry bimodal table,
 * an 8K-second-level GAp two-level predictor, and a combining
 * predictor with a 1K-entry meta chooser. Targets are assumed perfect
 * (see DESIGN.md); only direction is predicted.
 */

#ifndef CAPSULE_SIM_BPRED_HH
#define CAPSULE_SIM_BPRED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace capsule::sim
{

/** Direction predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at `pc`. */
    virtual bool predict(Addr pc) = 0;

    /** Train with the resolved outcome. */
    virtual void update(Addr pc, bool taken) = 0;
};

/** Classic 2-bit saturating-counter bimodal predictor. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(std::size_t entries = 4096);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

  private:
    std::size_t index(Addr pc) const;
    std::vector<std::uint8_t> table;  ///< 2-bit counters
};

/**
 * GAp two-level predictor: one global history register indexing
 * per-address pattern history tables; second-level table of 8K 2-bit
 * counters as in Table 1.
 */
class GApPredictor : public BranchPredictor
{
  public:
    GApPredictor(std::size_t second_level_entries = 8192,
                 int history_bits = 8);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

  private:
    std::size_t index(Addr pc) const;
    std::vector<std::uint8_t> table;
    std::uint32_t history = 0;
    int histBits;
};

/**
 * Combined predictor (McFarling): bimodal + GAp with a meta table of
 * 2-bit choosers (1K entries per Table 1).
 */
class CombinedPredictor : public BranchPredictor
{
  public:
    CombinedPredictor(std::size_t bimodal_entries = 4096,
                      std::size_t gap_entries = 8192,
                      std::size_t meta_entries = 1024);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

    std::uint64_t lookups() const { return nLookups.value(); }
    std::uint64_t correct() const { return nCorrect.value(); }
    double
    accuracy() const
    {
        return lookups() ? double(correct()) / double(lookups()) : 0.0;
    }

    void registerStats(StatGroup &g) const;

  private:
    BimodalPredictor bimodal;
    GApPredictor gap;
    std::vector<std::uint8_t> meta;

    Scalar nLookups;
    Scalar nCorrect;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_BPRED_HH
