#include "sim/bpred.hh"

#include "base/logging.hh"

namespace capsule::sim
{
namespace
{

/** 2-bit saturating counter helpers; >=2 predicts taken. */
inline bool
counterTaken(std::uint8_t c)
{
    return c >= 2;
}

inline std::uint8_t
counterTrain(std::uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

} // namespace

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table(entries, 2)  // weakly taken
{
    CAPSULE_ASSERT((entries & (entries - 1)) == 0,
                   "bimodal entries must be a power of two");
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return (pc >> 2) & (table.size() - 1);
}

bool
BimodalPredictor::predict(Addr pc)
{
    return counterTaken(table[index(pc)]);
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    auto &c = table[index(pc)];
    c = counterTrain(c, taken);
}

GApPredictor::GApPredictor(std::size_t second_level_entries,
                           int history_bits)
    : table(second_level_entries, 2), histBits(history_bits)
{
    CAPSULE_ASSERT(
        (second_level_entries & (second_level_entries - 1)) == 0,
        "GAp entries must be a power of two");
    CAPSULE_ASSERT(history_bits > 0 && history_bits <= 16,
                   "bad history length");
}

std::size_t
GApPredictor::index(Addr pc) const
{
    // Per-address second level: concatenate low PC bits with the
    // global history (GAp structure).
    std::uint64_t h = history & ((1u << histBits) - 1);
    return ((pc >> 2) * (1u << histBits) + h) & (table.size() - 1);
}

bool
GApPredictor::predict(Addr pc)
{
    return counterTaken(table[index(pc)]);
}

void
GApPredictor::update(Addr pc, bool taken)
{
    auto &c = table[index(pc)];
    c = counterTrain(c, taken);
    history = ((history << 1) | (taken ? 1 : 0)) &
              ((1u << histBits) - 1);
}

CombinedPredictor::CombinedPredictor(std::size_t bimodal_entries,
                                     std::size_t gap_entries,
                                     std::size_t meta_entries)
    : bimodal(bimodal_entries), gap(gap_entries), meta(meta_entries, 2)
{
    CAPSULE_ASSERT((meta_entries & (meta_entries - 1)) == 0,
                   "meta entries must be a power of two");
}

bool
CombinedPredictor::predict(Addr pc)
{
    bool useGap = counterTaken(meta[(pc >> 2) & (meta.size() - 1)]);
    return useGap ? gap.predict(pc) : bimodal.predict(pc);
}

void
CombinedPredictor::update(Addr pc, bool taken)
{
    bool bimodalHit = bimodal.predict(pc) == taken;
    bool gapHit = gap.predict(pc) == taken;
    bool useGap = counterTaken(meta[(pc >> 2) & (meta.size() - 1)]);
    bool predicted = useGap ? gap.predict(pc) : bimodal.predict(pc);

    ++nLookups;
    if (predicted == taken)
        ++nCorrect;

    // Meta trains toward the component that was right.
    if (bimodalHit != gapHit) {
        auto &m = meta[(pc >> 2) & (meta.size() - 1)];
        m = counterTrain(m, gapHit);
    }
    bimodal.update(pc, taken);
    gap.update(pc, taken);
}

void
CombinedPredictor::registerStats(StatGroup &g) const
{
    g.add("bpred.lookups", nLookups, "branch predictions made");
    g.add("bpred.correct", nCorrect, "correct predictions");
    g.addFormula("bpred.accuracy", [this] { return accuracy(); },
                 "prediction accuracy");
}

} // namespace capsule::sim
