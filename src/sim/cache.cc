#include "sim/cache.hh"

#include "base/logging.hh"

namespace capsule::sim
{

Cache::Cache(const CacheParams &params, Cache *next_level,
             Cycle mem_latency)
    : p(params), next(next_level), memLatency(mem_latency)
{
    CAPSULE_ASSERT(p.assoc > 0 && p.lineBytes > 0, "bad cache params");
    std::uint64_t numLines = p.sizeBytes / std::uint64_t(p.lineBytes);
    CAPSULE_ASSERT(numLines % std::uint64_t(p.assoc) == 0,
                   "cache size not divisible by assoc*line");
    numSets = numLines / std::uint64_t(p.assoc);
    CAPSULE_ASSERT((numSets & (numSets - 1)) == 0,
                   "number of sets must be a power of two");
    lines.resize(numLines);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr / std::uint64_t(p.lineBytes)) & (numSets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / std::uint64_t(p.lineBytes) / numSets;
}

Cycle
Cache::access(Addr addr, bool write)
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    // One pass over the set's ways: probe for the hit and track the
    // replacement choice simultaneously, instead of a second victim
    // scan on every miss. Victim policy is unchanged: way 0 seeds the
    // LRU comparison, and the first invalid way at index >= 1 wins
    // outright (an invalid way 0 still loses only to ways with a
    // smaller lruStamp, which valid ways never have).
    Line *const base = &lines[set * std::uint64_t(p.assoc)];
    ++stamp;

    Line *victim = base;
    bool victimInvalid = false;
    for (int w = 0; w < p.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = stamp;
            line.dirty |= write;
            ++nHits;
            return p.hitLatency;
        }
        if (w == 0 || victimInvalid)
            continue;
        if (!line.valid) {
            victim = &line;
            victimInvalid = true;
        } else if (line.lruStamp < victim->lruStamp) {
            victim = &line;
        }
    }

    // Miss: fill from the next level (or memory).
    ++nMisses;
    Cycle fill = next ? next->access(addr, false) : memLatency;

    if (victim->valid && victim->dirty) {
        ++nWritebacks;
        // Write-back traffic: charge the next level's hit latency; a
        // write buffer hides the rest (standard sim-outorder model).
        if (next) {
            Addr victimAddr = (victim->tag * numSets + set) *
                              std::uint64_t(p.lineBytes);
            next->access(victimAddr, true);
        }
    }
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lruStamp = stamp;
    return p.hitLatency + fill;
}

bool
Cache::probe(Addr addr) const
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    const Line *base = &lines[set * std::uint64_t(p.assoc)];
    for (int w = 0; w < p.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines)
        line = Line{};
    stamp = 0;
}

void
Cache::registerStats(StatGroup &g) const
{
    g.add(p.name + ".hits", nHits, "cache hits");
    g.add(p.name + ".misses", nMisses, "cache misses");
    g.addFormula(p.name + ".miss_rate", [this] { return missRate(); },
                 "miss rate");
}

MemoryHierarchy::MemoryHierarchy(const Params &params, Cache *shared_l2)
    : l2Cache(shared_l2 ? nullptr
                        : std::make_unique<Cache>(params.l2, nullptr,
                                                  params.memLatency)),
      l2Ptr(shared_l2 ? shared_l2 : l2Cache.get()),
      l1iCache(params.l1i, l2Ptr, params.memLatency),
      l1dCache(params.l1d, l2Ptr, params.memLatency)
{
}

void
MemoryHierarchy::flush()
{
    l1iCache.flush();
    l1dCache.flush();
    if (l2Cache)
        l2Cache->flush();
}

void
MemoryHierarchy::registerStats(StatGroup &g) const
{
    l1iCache.registerStats(g);
    l1dCache.registerStats(g);
    if (l2Cache)
        l2Cache->registerStats(g);
}

} // namespace capsule::sim
