#include "sim/lock_table.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/sim_error.hh"

namespace capsule::sim
{

LockTable::LockTable(std::size_t cap) : capacity(cap)
{
    CAPSULE_ASSERT(capacity > 0, "lock table needs capacity");
}

bool
LockTable::acquire(Addr addr, ThreadId tid)
{
    ++nAcquires;
    auto it = entries.find(addr);
    if (it == entries.end()) {
        if (entries.size() >= capacity)
            CAPSULE_SIM_ERROR(SimErrorKind::LockTableOverflow,
                              "locking table overflow (capacity ",
                              capacity, "); raise LockTable capacity");
        Entry e;
        e.owner = tid;
        entries.emplace(addr, std::move(e));
        if (entries.size() > nPeakOccupancy.value()) {
            nPeakOccupancy.reset();
            nPeakOccupancy += entries.size();
        }
        return true;
    }
    if (it->second.owner == tid)
        return true;  // recursive acquisition holds
    ++nConflicts;
    // Queue unless already queued (re-issue after squash).
    auto &w = it->second.waiters;
    if (std::find(w.begin(), w.end(), tid) == w.end())
        w.push_back(tid);
    return false;
}

ThreadId
LockTable::release(Addr addr, ThreadId tid)
{
    ++nReleases;
    auto it = entries.find(addr);
    CAPSULE_ASSERT(it != entries.end(),
                   "munlock on unlocked address ", addr);
    CAPSULE_ASSERT(it->second.owner == tid, "munlock by non-owner: ",
                   tid, " vs owner ", it->second.owner);
    if (it->second.waiters.empty()) {
        entries.erase(it);
        return invalidThread;
    }
    ThreadId next = it->second.waiters.front();
    it->second.waiters.pop_front();
    it->second.owner = next;
    return next;
}

void
LockTable::cancelWait(Addr addr, ThreadId tid)
{
    auto it = entries.find(addr);
    if (it == entries.end())
        return;
    auto &w = it->second.waiters;
    w.erase(std::remove(w.begin(), w.end(), tid), w.end());
}

ThreadId
LockTable::owner(Addr addr) const
{
    auto it = entries.find(addr);
    return it == entries.end() ? invalidThread : it->second.owner;
}

bool
LockTable::threadQuiescent(ThreadId tid) const
{
    for (const auto &[addr, e] : entries) {
        if (e.owner == tid)
            return false;
        for (auto w : e.waiters) {
            if (w == tid)
                return false;
        }
    }
    return true;
}

void
LockTable::registerStats(StatGroup &g) const
{
    g.add("locks.acquires", nAcquires, "mlock attempts");
    g.add("locks.conflicts", nConflicts, "mlock stalls");
    g.add("locks.releases", nReleases, "munlock operations");
}

} // namespace capsule::sim
