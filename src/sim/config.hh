/**
 * @file
 * Machine configuration mirroring Table 1 of the paper, with presets
 * for the three evaluated processors: the aggressive superscalar, the
 * statically parallelised SMT, and the self-organised SMT (SOMT).
 */

#ifndef CAPSULE_SIM_CONFIG_HH
#define CAPSULE_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/cache.hh"
#include "sim/context_stack.hh"
#include "sim/division_ctrl.hh"

namespace capsule::sim
{

/**
 * CMP organisation (Section 5): N SMT cores, each with its own
 * hardware contexts, L1 caches and inactive-context stack, sharing
 * one L2 and one global division budget. A `capsule_divide` whose
 * home core has no free context may be granted to a remote core at
 * a cross-core cost; the probe itself (grant/deny) stays a local
 * constant-time check of the replicated free-context scoreboard.
 */
struct CmpParams
{
    /** Number of cores (1 = degenerate CMP, cycle-identical to the
     *  SMT backend; asserted by test_cmp_machine). */
    int numCores = 1;

    /** Extra cycles to activate a child granted to a *remote* core:
     *  the register file crosses the interconnect instead of being
     *  copied within the core (Section 5's division-latency axis). */
    Cycle crossCoreDivLatency = 40;

    /** One-time activation penalty for a remote child modelling the
     *  transfer of the parent's hot lines: the child's private L1 is
     *  cold and its first touches migrate through the shared L2
     *  (which the cache model then charges per access). */
    Cycle coldL1Penalty = 20;

    /** Geometry of the *shared* L2 (replaces the per-core `mem.l2`
     *  when the CMP backend is selected). */
    CacheParams l2Config{"l2.shared", 1024 * 1024, 8, 64, 12};
};

/** Full machine configuration (Table 1 defaults). */
struct MachineConfig
{
    std::string name = "somt";

    /** Simulation backend selector: "smt" (the single-core SOMT
     *  pipeline), "cmp" (numCores lockstep SOMT cores) or "func" (the
     *  fast functional tier, DESIGN.md §8). Workloads and the
     *  experiment engine route through makeBackend() on this name
     *  (see sim/backend.hh). */
    std::string backend = "smt";

    // Thread resources.
    int numContexts = 8;

    // Front end.
    int fetchWidth = 16;          ///< total instructions per cycle
    int fetchThreadsPerCycle = 4; ///< Icount.4.4: 4 threads ...
    int fetchInstsPerThread = 4;  ///< ... with 4 instructions each
    int branchPredPerCycle = 2;   ///< two predictions per cycle
    int ifqSize = 16;             ///< per-thread fetch queue

    // Core widths and windows.
    int decodeWidth = 8;
    int issueWidth = 8;
    int commitWidth = 8;
    int ruuSize = 256;
    int lsqSize = 128;

    // Functional units (count and latency).
    int numIalu = 8;
    int numImult = 4;
    int numFpalu = 4;
    int numFpmult = 4;
    Cycle ialuLatency = 1;
    Cycle imultLatency = 3;
    Cycle fpaluLatency = 2;
    Cycle fpmultLatency = 4;

    /** D-cache ports: loads+stores issued per cycle (the paper's
     *  aggressive core; SimpleScalar's default is 2, but an 8-wide
     *  issue core needs more to feed its pointer-chasing suite). */
    int dcachePorts = 4;

    // Memory hierarchy (Table 1 geometry).
    MemoryHierarchy::Params mem;

    // CAPSULE hardware support.
    DivisionParams division;
    ContextStackParams ctxStack;
    bool enableContextStack = true;
    std::size_t lockTableCapacity = 256;

    /** Cycles to copy the 62 registers + PC into a child context. */
    Cycle registerCopyCycles = 8;
    /** Extra division latency (CMP extrapolation sweep, Section 5). */
    Cycle divisionExtraLatency = 0;

    /** Multi-core organisation; consulted only by the "cmp" backend. */
    CmpParams cmp;

    /**
     * Mixed-mode fast-forward (DESIGN.md §8): when > 0, makeBackend()
     * wraps the selected *timing* backend in a two-tier engine that
     * executes at least this many instructions on the functional tier
     * first, then hands the surviving threads' architectural state to
     * the detailed backend for the measured interval. 0 (the default)
     * is pure detailed simulation; the "func" backend ignores it.
     */
    std::uint64_t ffwdInstructions = 0;

    /** Safety net for runaway simulations. */
    Cycle maxCycles = 2'000'000'000ULL;

    /**
     * Stable behavioral identity of this configuration: an FNV-1a
     * digest over the canonical serialization of every field that can
     * change simulated results (base/digest.hh rules; `name` is a
     * display label and deliberately excluded). Used as the
     * MachineConfig component of the simulation farm's content-
     * addressed cache keys, so it must change exactly when simulated
     * behavior can — pinned by tests/test_farm.cc.
     */
    std::uint64_t digest() const;

    /** The paper's three evaluated processors. */
    static MachineConfig superscalar();
    static MachineConfig smtStatic(int contexts = 8);
    static MachineConfig somt(int contexts = 8);

    /**
     * A CMP of SOMT cores on the "cmp" backend. The division death
     * throttle stays sized by the *total* context count so the 1/2/4/8
     * core sweep at fixed total contexts compares organisations, not
     * policies; the shared L2 keeps the per-core Table-1 geometry.
     */
    static MachineConfig cmpSomt(int cores, int contexts_per_core = 8);
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_CONFIG_HH
