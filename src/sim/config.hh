/**
 * @file
 * Machine configuration mirroring Table 1 of the paper, with presets
 * for the three evaluated processors: the aggressive superscalar, the
 * statically parallelised SMT, and the self-organised SMT (SOMT).
 */

#ifndef CAPSULE_SIM_CONFIG_HH
#define CAPSULE_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/cache.hh"
#include "sim/context_stack.hh"
#include "sim/division_ctrl.hh"

namespace capsule::sim
{

/** Full machine configuration (Table 1 defaults). */
struct MachineConfig
{
    std::string name = "somt";

    // Thread resources.
    int numContexts = 8;

    // Front end.
    int fetchWidth = 16;          ///< total instructions per cycle
    int fetchThreadsPerCycle = 4; ///< Icount.4.4: 4 threads ...
    int fetchInstsPerThread = 4;  ///< ... with 4 instructions each
    int branchPredPerCycle = 2;   ///< two predictions per cycle
    int ifqSize = 16;             ///< per-thread fetch queue

    // Core widths and windows.
    int decodeWidth = 8;
    int issueWidth = 8;
    int commitWidth = 8;
    int ruuSize = 256;
    int lsqSize = 128;

    // Functional units (count and latency).
    int numIalu = 8;
    int numImult = 4;
    int numFpalu = 4;
    int numFpmult = 4;
    Cycle ialuLatency = 1;
    Cycle imultLatency = 3;
    Cycle fpaluLatency = 2;
    Cycle fpmultLatency = 4;

    /** D-cache ports: loads+stores issued per cycle (the paper's
     *  aggressive core; SimpleScalar's default is 2, but an 8-wide
     *  issue core needs more to feed its pointer-chasing suite). */
    int dcachePorts = 4;

    // Memory hierarchy (Table 1 geometry).
    MemoryHierarchy::Params mem;

    // CAPSULE hardware support.
    DivisionParams division;
    ContextStackParams ctxStack;
    bool enableContextStack = true;
    std::size_t lockTableCapacity = 256;

    /** Cycles to copy the 62 registers + PC into a child context. */
    Cycle registerCopyCycles = 8;
    /** Extra division latency (CMP extrapolation sweep, Section 5). */
    Cycle divisionExtraLatency = 0;

    /** Safety net for runaway simulations. */
    Cycle maxCycles = 2'000'000'000ULL;

    /** The paper's three evaluated processors. */
    static MachineConfig superscalar();
    static MachineConfig smtStatic(int contexts = 8);
    static MachineConfig somt(int contexts = 8);
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_CONFIG_HH
