#include "sim/exec_semantics.hh"

#include <string>

#include "base/digest.hh"

namespace capsule::sim
{
namespace
{

const char *const opNames[] = {
#define CAPSULE_XSEM_X(name, ...) #name,
    CAPSULE_CAPISA_SEMANTICS(CAPSULE_XSEM_X)
#undef CAPSULE_XSEM_X
};

} // namespace

std::size_t
semanticsOpCount()
{
    return sizeof opNames / sizeof opNames[0];
}

const char *
semanticsOpName(std::size_t idx)
{
    CAPSULE_ASSERT(idx < semanticsOpCount(),
                   "semantics table index out of range: ", idx);
    return opNames[idx];
}

std::uint64_t
semanticsTableHash()
{
    // Exactly the derivation the pinned-hash test uses: the entry
    // names in table order, '\n'-joined, plain FNV-1a.
    std::string joined;
    for (std::size_t i = 0; i < semanticsOpCount(); ++i) {
        joined += semanticsOpName(i);
        joined += '\n';
    }
    return fnv1aBytes(joined);
}

} // namespace capsule::sim
