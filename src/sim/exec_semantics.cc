#include "sim/exec_semantics.hh"

namespace capsule::sim
{
namespace
{

const char *const opNames[] = {
#define CAPSULE_XSEM_X(name, ...) #name,
    CAPSULE_CAPISA_SEMANTICS(CAPSULE_XSEM_X)
#undef CAPSULE_XSEM_X
};

} // namespace

std::size_t
semanticsOpCount()
{
    return sizeof opNames / sizeof opNames[0];
}

const char *
semanticsOpName(std::size_t idx)
{
    CAPSULE_ASSERT(idx < semanticsOpCount(),
                   "semantics table index out of range: ", idx);
    return opNames[idx];
}

} // namespace capsule::sim
