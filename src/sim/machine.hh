/**
 * @file
 * The SOMT machine: a cycle-level out-of-order SMT pipeline with the
 * CAPSULE hardware extensions (thread division, the inactive-context
 * stack, and the fast locking table).
 *
 * Pipeline organisation (per cycle, evaluated commit-first so each
 * stage sees last cycle's downstream state):
 *
 *   commit    - per-thread in-order retirement, 8 wide total; nthr
 *               children activate here (+ register-copy latency),
 *               kthr frees the context and feeds the death throttle,
 *               munlock hands the lock to the oldest waiter.
 *   writeback - completion events wake dependents and resolve
 *               mispredicted branches (fetch redirects next cycle).
 *   issue     - dependence-driven wakeup from a 256-entry RUU, oldest
 *               first, 8 wide, constrained by FU counts and D-cache
 *               ports; loads check the LSQ for older conflicting
 *               stores and forward when possible.
 *   dispatch  - moves fetched instructions into RUU/LSQ, 8 wide.
 *   fetch     - Icount.4.4: up to 4 threads, 4 instructions each, 16
 *               total, 2 branch predictions per cycle; nthr and mlock
 *               are steered here (see DESIGN.md on the fetch-time
 *               decision approximation).
 *   housekeep - thread activations, context-stack swaps.
 *
 * Functional execution happens in the front end at fetch pull
 * (execute-at-fetch); the pipeline models timing only.
 */

#ifndef CAPSULE_SIM_MACHINE_HH
#define CAPSULE_SIM_MACHINE_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <queue>
#include <set>
#include <vector>

#include "base/stats.hh"
#include "front/program.hh"
#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/context_stack.hh"
#include "sim/division_ctrl.hh"
#include "sim/lock_table.hh"

namespace capsule::sim
{

/** Lifecycle of a simulated thread (worker). */
enum class ThreadState
{
    Starting,    ///< context seized by nthr; waiting activation
    Active,      ///< fetching instructions
    LockWait,    ///< stalled on a busy mlock
    Draining,    ///< kthr/halt fetched; in-flight work retiring
    SwappingOut, ///< selected for eviction; draining then copying out
    Swapped,     ///< resident on the inactive-context stack
    SwappingIn,  ///< copying registers back in
    Finished,    ///< retired its kthr/halt
};

/** Aggregate results of one simulation run. */
struct RunStats
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    std::uint64_t divisionsRequested = 0;
    std::uint64_t divisionsGranted = 0;
    std::uint64_t divisionsThrottled = 0;
    std::uint64_t threadDeaths = 0;
    std::uint64_t lockConflicts = 0;
    std::uint64_t swapsOut = 0;
    std::uint64_t swapsIn = 0;
    double bpredAccuracy = 0.0;
    double l1dMissRate = 0.0;
    int peakLiveThreads = 0;
    /** Mean number of threads in the Active state per cycle. */
    double avgActiveThreads = 0.0;

    /** Field-exact equality, for parallel == serial determinism
     *  checks in the experiment engine. */
    bool operator==(const RunStats &) const = default;
};

/** The SOMT / SMT / superscalar machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Add a thread running `program`. Threads added before run() are
     * the ancestors; nthr-spawned children are added internally.
     * @return the new thread's id
     */
    ThreadId addThread(std::unique_ptr<front::Program> program);

    /** Run to completion (all threads finished) or cfg.maxCycles. */
    RunStats run();

    /** Advance one cycle. @return false once all threads finished. */
    bool step();

    Cycle now() const { return curCycle; }
    const MachineConfig &config() const { return cfg; }

    int liveThreads() const;
    std::uint64_t
    committedInstructions() const
    {
        return nCommitted.value();
    }

    const DivisionController &
    divisionController() const
    {
        return divCtrl;
    }
    const LockTable &lockTable() const { return locks; }
    const ContextStack &contextStack() const { return ctxStack; }
    MemoryHierarchy &memory() { return mem; }
    const CombinedPredictor &predictor() const { return bpred; }
    std::uint64_t threadDeaths() const { return nDeaths.value(); }

    /** Snapshot the aggregate run statistics. */
    RunStats stats() const;

    /** Dump the full named-counter statistics. */
    void dumpStats(std::ostream &os) const;

    /**
     * Observer invoked on every granted division with (parent, child)
     * thread ids; used to reconstruct division genealogy (Figure 6).
     */
    using DivisionObserver = std::function<void(ThreadId, ThreadId)>;
    void
    setDivisionObserver(DivisionObserver obs)
    {
        divObserver = std::move(obs);
    }

  private:
    /** An instruction fetched but not yet dispatched. */
    struct FetchedInst
    {
        isa::DynInst inst;
        InstSeq seq = 0;
        bool mispredicted = false;
        bool granted = false;           ///< nthr decision
        ThreadId childTid = invalidThread;
    };

    struct Thread
    {
        ThreadId tid = invalidThread;
        std::unique_ptr<front::Program> program;
        ThreadState state = ThreadState::Active;
        int slot = -1;
        bool programDone = false;
        std::optional<isa::DynInst> staged;  ///< one-instruction peek
        bool stagedIsUnresolvedNthr = false;
        Cycle fetchReadyCycle = 0;
        InstSeq blockedOnBranch = 0;  ///< seq of unresolved mispredict
        int inFlight = 0;             ///< fetched, not yet committed
        std::uint64_t committed = 0;
        Addr lockWaitAddr = 0;
        std::deque<FetchedInst> ifq;  ///< fetched, waiting dispatch
        std::deque<int> rob;          ///< dispatched RUU ids, in order
        std::deque<int> lsq;          ///< memory-op RUU ids, in order
        Cycle activationCycle = 0;    ///< Starting / swap completion
    };

    struct RuuEntry
    {
        bool valid = false;
        isa::DynInst inst;
        ThreadId tid = invalidThread;
        InstSeq seq = 0;
        enum class St { Waiting, Ready, Issued, Done } st = St::Waiting;
        int pendingSrcs = 0;
        std::vector<int> dependents;
        Cycle issueCycle = 0;
        Cycle completeCycle = 0;
        bool granted = false;       ///< nthr decision
        bool mispredicted = false;
        ThreadId childTid = invalidThread;
    };

    // ---- pipeline stages -------------------------------------------
    void commitStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();
    void housekeepStage();

    // ---- helpers ----------------------------------------------------
    Thread &thread(ThreadId tid);
    const Thread &threadConst(ThreadId tid) const;
    bool peek(Thread &t);
    int allocRuu();
    void freeRuu(int idx);
    int freeSlots() const;
    int takeSlot(ThreadId tid);
    void releaseSlot(Thread &t);
    void commitOne(Thread &t, RuuEntry &e, int idx);
    Cycle fuLatency(isa::OpClass cls) const;
    bool fuAvailable(isa::OpClass cls) const;
    void consumeFu(isa::OpClass cls);
    void wakeDependents(int ruu_idx);
    bool loadBlockedByStore(const Thread &t, const RuuEntry &load,
                            bool &forwarded) const;

    // ---- state --------------------------------------------------------
    MachineConfig cfg;
    Cycle curCycle = 0;
    InstSeq nextSeq = 1;
    ThreadId nextTid = 0;
    std::size_t rrCommit = 0;    ///< round-robin pointers
    std::size_t rrDispatch = 0;
    Cycle lastProgressCycle = 0;

    std::vector<std::unique_ptr<Thread>> threads;  ///< by tid
    std::vector<ThreadId> slotOwner;               ///< slot -> tid
    int slotsInUse = 0;

    std::vector<RuuEntry> ruu;
    std::vector<int> ruuFreeList;
    int ruuUsed = 0;
    int lsqUsed = 0;

    /** Entries ready to issue, ordered oldest first. */
    std::set<std::pair<InstSeq, int>> readySet;
    /** Completion events: (cycle, ruu index). */
    std::priority_queue<std::pair<Cycle, int>,
                        std::vector<std::pair<Cycle, int>>,
                        std::greater<>>
        completions;

    /** Per-thread rename maps: architectural reg -> producing RUU. */
    struct RenameMap
    {
        std::array<int, isa::numIntRegs> intMap;
        std::array<int, isa::numFpRegs + 1> fpMap;

        RenameMap()
        {
            intMap.fill(-1);
            fpMap.fill(-1);
        }
    };
    std::vector<RenameMap> renameMaps;  ///< by tid

    MemoryHierarchy mem;
    CombinedPredictor bpred;
    LockTable locks;
    ContextStack ctxStack;
    DivisionController divCtrl;
    DivisionObserver divObserver;

    // Per-cycle resource budgets (reset in issueStage).
    int ialuLeft = 0, imultLeft = 0, fpaluLeft = 0, fpmultLeft = 0;
    int dportsLeft = 0;

    Scalar nCommitted;
    Scalar nFetched;
    Scalar nDeaths;
    Scalar nMispredicts;
    Scalar nActiveCycleSum;  ///< sum over cycles of Active threads
    mutable Scalar nPeakThreads;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_MACHINE_HH
