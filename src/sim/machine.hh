/**
 * @file
 * The SOMT machine: a cycle-level out-of-order SMT pipeline with the
 * CAPSULE hardware extensions (thread division, the inactive-context
 * stack, and the fast locking table).
 *
 * Pipeline organisation (per cycle, evaluated commit-first so each
 * stage sees last cycle's downstream state):
 *
 *   commit    - per-thread in-order retirement, 8 wide total; nthr
 *               children activate here (+ register-copy latency),
 *               kthr frees the context and feeds the death throttle,
 *               munlock hands the lock to the oldest waiter.
 *   writeback - completion events wake dependents and resolve
 *               mispredicted branches (fetch redirects next cycle).
 *   issue     - dependence-driven wakeup from a 256-entry RUU, oldest
 *               first, 8 wide, constrained by FU counts and D-cache
 *               ports; loads check the LSQ for older conflicting
 *               stores and forward when possible.
 *   dispatch  - moves fetched instructions into RUU/LSQ, 8 wide.
 *   fetch     - Icount.4.4: up to 4 threads, 4 instructions each, 16
 *               total, 2 branch predictions per cycle; nthr and mlock
 *               are steered here (see DESIGN.md on the fetch-time
 *               decision approximation).
 *   housekeep - thread activations, context-stack swaps.
 *
 * Functional execution happens in the front end at fetch pull
 * (execute-at-fetch); the pipeline models timing only.
 *
 * A Machine also serves as one *core* of a CmpMachine (DESIGN.md §5):
 * `CoreLinks` rebinds its L2, lock table and division controller to
 * CMP-shared instances and installs a `CmpCoupling` that arbitrates
 * divisions machine-wide, so an nthr whose home core is full may be
 * granted to a remote core.
 */

#ifndef CAPSULE_SIM_MACHINE_HH
#define CAPSULE_SIM_MACHINE_HH

#include <array>
#include <memory>
#include <optional>
#include <ostream>
#include <queue>
#include <unordered_map>
#include <vector>

#include "base/ring.hh"
#include "base/stats.hh"
#include "front/program.hh"
#include "sim/backend.hh"
#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/context_stack.hh"
#include "sim/division_ctrl.hh"
#include "sim/lock_table.hh"

namespace capsule::sim
{

/** Lifecycle of a simulated thread (worker). */
enum class ThreadState
{
    Starting,    ///< context seized by nthr; waiting activation
    Active,      ///< fetching instructions
    LockWait,    ///< stalled on a busy mlock
    Draining,    ///< kthr/halt fetched; in-flight work retiring
    SwappingOut, ///< selected for eviction; draining then copying out
    Swapped,     ///< resident on the inactive-context stack
    SwappingIn,  ///< copying registers back in
    Finished,    ///< retired its kthr/halt
};

/** Division arbitration outcome for one nthr (CMP backends). */
struct DivisionGrant
{
    bool granted = false;
    bool remote = false; ///< child context seized on another core
    int targetCore = -1; ///< valid when remote
};

/**
 * The hooks a CmpMachine installs into each of its cores. All
 * decisions stay on the simulation's single host thread; the coupling
 * exists so one core can reach machine-wide state (the global
 * division budget, other cores' free contexts, lock waiters living on
 * other cores) without owning it.
 */
class CmpCoupling
{
  public:
    virtual ~CmpCoupling() = default;

    /**
     * Arbitrate the nthr fetched on `core` at `now`. The probe part
     * (grant/deny) is a constant-time local check of the replicated
     * free-context scoreboard; only a granted *remote* division later
     * pays the cross-core transfer latency.
     */
    virtual DivisionGrant requestDivision(int core, Cycle now,
                                          bool local_free) = 0;

    /**
     * Place a granted remote child on `target_core` (seizing one of
     * its contexts now, at the parent's fetch).
     * @return the child's machine-wide thread id
     */
    virtual ThreadId adoptRemoteChild(
        int target_core, int from_core, ThreadId parent,
        std::unique_ptr<front::Program> child) = 0;

    /** The parent's nthr committed: schedule the remote child's
     *  activation (cross-core latency already folded into `when`). */
    virtual void activateRemoteChild(ThreadId child, Cycle when) = 0;

    /** Wake a lock waiter that lives on another core. */
    virtual void wakeRemoteWaiter(ThreadId tid) = 0;
};

/**
 * Wiring of one core into a CMP. Default-constructed links make the
 * Machine standalone: it owns its L2, lock table and division
 * controller, and arbitrates divisions locally.
 */
struct CoreLinks
{
    int coreId = 0;
    Cache *sharedL2 = nullptr;
    LockTable *sharedLocks = nullptr;
    DivisionController *sharedDivCtrl = nullptr;
    /** Machine-wide thread-id counter (unique tids across cores). */
    ThreadId *tidCounter = nullptr;
    CmpCoupling *coupling = nullptr;
};

/** The SOMT / SMT / superscalar machine (and the CMP's core). */
class Machine : public MachineBackend
{
  public:
    using DivisionObserver = sim::DivisionObserver;

    explicit Machine(const MachineConfig &config);
    Machine(const MachineConfig &config, const CoreLinks &links);
    ~Machine() override;

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    ThreadId addThread(std::unique_ptr<front::Program> program) override;

    /** Run to completion (all threads finished) or cfg.maxCycles. */
    RunStats run() override;

    /** Advance one cycle. @return false once all threads finished. */
    bool step();

    /**
     * Lockstep variant for CMP cores: with no live threads the core
     * idle-ticks (clock and watchdog advance, no pipeline work) so it
     * stays cycle-synchronised and can adopt remote children later.
     * @return true if the core had live threads this cycle
     */
    bool stepShared();

    /** Adopt a remote division's child: seize a context now; the
     *  thread activates when activateThread() delivers the parent's
     *  commit time. */
    ThreadId adoptThread(std::unique_ptr<front::Program> program);

    /** Schedule the activation of a Starting (adopted) thread. */
    void activateThread(ThreadId tid, Cycle when);

    /** Hand the lock to a waiter on this core (cross-core munlock). */
    void wakeWaiter(ThreadId tid);

    /** True if `tid` lives on this machine/core. */
    bool ownsThread(ThreadId tid) const;

    Cycle now() const { return curCycle; }
    const MachineConfig &config() const override { return cfg; }

    int liveThreads() const;
    /** Unclaimed hardware contexts (the CMP division scoreboard). */
    int freeContexts() const { return freeSlots(); }
    std::uint64_t
    committedInstructions() const
    {
        return nCommitted.value();
    }

    const DivisionController &
    divisionController() const
    {
        return *divCtrl;
    }
    const LockTable &lockTable() const { return *locks; }
    const ContextStack &contextStack() const { return ctxStack; }
    MemoryHierarchy &memory() { return mem; }
    const MemoryHierarchy &memoryConst() const { return mem; }
    const CombinedPredictor &predictor() const { return bpred; }
    std::uint64_t threadDeaths() const { return nDeaths.value(); }
    /** Sum over cycles of threads in the Active state (for CMP
     *  aggregation of avgActiveThreads). */
    std::uint64_t
    activeCycleSum() const
    {
        return nActiveCycleSum.value();
    }
    /** Sum over cycles of threads stalled in LockWait (for the
     *  contention metrics and their CMP aggregation). */
    std::uint64_t
    lockWaitCycleSum() const
    {
        return nLockWaitCycleSum.value();
    }

    /** Snapshot the aggregate run statistics. In a CMP, the division
     *  and lock fields read the *shared* controllers (machine-wide
     *  numbers); CmpMachine::stats() aggregates the rest. */
    RunStats stats() const override;

    ContentionStats contention() const override;

    void dumpStats(std::ostream &os) const override;

    void
    setDivisionObserver(DivisionObserver obs) override
    {
        divObserver = std::move(obs);
    }

    void
    setThreadFinalizer(ThreadFinalizer fin) override
    {
        threadFinalizer = std::move(fin);
    }

    /** Lock-table occupancy (the shared table's in a CMP). */
    std::size_t
    lockedAddrs() const override
    {
        return locks->occupancy();
    }

    std::size_t
    swappedContexts() const override
    {
        return ctxStack.depth();
    }

  private:
    /** An instruction fetched but not yet dispatched. */
    struct FetchedInst
    {
        isa::DynInst inst;
        InstSeq seq = 0;
        bool mispredicted = false;
        bool granted = false;           ///< nthr decision
        bool remote = false;            ///< nthr child on another core
        ThreadId childTid = invalidThread;
    };

    /** Per-thread rename map: architectural reg -> producing RUU. */
    struct RenameMap
    {
        std::array<int, isa::numIntRegs> intMap;
        std::array<int, isa::numFpRegs + 1> fpMap;

        RenameMap()
        {
            intMap.fill(-1);
            fpMap.fill(-1);
        }
    };

    struct Thread
    {
        ThreadId tid = invalidThread;
        std::unique_ptr<front::Program> program;
        ThreadState state = ThreadState::Active;
        int slot = -1;
        std::size_t index = 0;        ///< position in `threads`
        bool programDone = false;
        std::optional<isa::DynInst> staged;  ///< one-instruction peek
        bool stagedIsUnresolvedNthr = false;
        Cycle fetchReadyCycle = 0;
        InstSeq blockedOnBranch = 0;  ///< seq of unresolved mispredict
        int inFlight = 0;             ///< fetched, not yet committed
        std::uint64_t committed = 0;
        Addr lockWaitAddr = 0;
        /** The in-order queues are fixed-capacity hardware structures
         *  (ifqSize / ruuSize / lsqSize); flat rings replace deques on
         *  the per-cycle hot path. */
        Ring<FetchedInst> ifq;        ///< fetched, waiting dispatch
        Ring<int> rob;                ///< dispatched RUU ids, in order
        Ring<int> lsq;                ///< memory-op RUU ids, in order
        Cycle activationCycle = 0;    ///< Starting / swap completion
        RenameMap rename;
    };

    struct RuuEntry
    {
        bool valid = false;
        isa::DynInst inst;
        ThreadId tid = invalidThread;
        /** Owning thread (heap-stable for the whole run); avoids a
         *  tid hash lookup in the per-cycle issue/writeback paths. */
        Thread *owner = nullptr;
        InstSeq seq = 0;
        enum class St { Waiting, Ready, Issued, Done } st = St::Waiting;
        int pendingSrcs = 0;
        /** Head of this entry's dependent list in the machine-owned
         *  node pool (`depPool`); -1 when empty. Replaces a per-entry
         *  heap vector: entry recycling is a plain field reset and the
         *  nodes live in one arena sized 2 * ruuSize (each in-flight
         *  instruction consumes at most two source edges). */
        int depHead = -1;
        Cycle issueCycle = 0;
        Cycle completeCycle = 0;
        bool granted = false;       ///< nthr decision
        bool remote = false;        ///< nthr child on another core
        bool mispredicted = false;
        ThreadId childTid = invalidThread;
    };

    /** One edge of a dependent list: `ruuIdx` waits on the entry
     *  whose list this node is threaded on; `next` chains the list
     *  (or the free list when the node is unallocated). */
    struct DepNode
    {
        int ruuIdx = -1;
        int next = -1;
    };

    // ---- pipeline stages -------------------------------------------
    void commitStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();
    void housekeepStage();

    /** One full pipeline cycle plus clock/watchdog bookkeeping. */
    void cycleOnce();

    // ---- helpers ----------------------------------------------------
    Thread &thread(ThreadId tid);
    const Thread &threadConst(ThreadId tid) const;
    Thread &newThread(std::unique_ptr<front::Program> program);
    void notePeakThreads();
    bool peek(Thread &t);
    int allocRuu();
    void freeRuu(int idx);
    int allocDepNode();
    void pushReady(InstSeq seq, int ruu_idx);
    /** Threads with work for a round-robin stage, in the exact order
     *  the historical full-array scan visited them: indices >= start
     *  first, then wraparound — restricted to live threads via the
     *  sorted `liveIdx`. `hasWork` filters (e.g. non-empty rob). */
    template <typename Pred>
    void collectRoundRobin(std::size_t start, Pred &&hasWork);
    int freeSlots() const;
    int takeSlot(ThreadId tid);
    void releaseSlot(Thread &t);
    void commitOne(Thread &t, RuuEntry &e, int idx);
    Cycle fuLatency(isa::OpClass cls) const;
    bool fuAvailable(isa::OpClass cls) const;
    void consumeFu(isa::OpClass cls);
    void wakeDependents(int ruu_idx);
    bool loadBlockedByStore(const Thread &t, const RuuEntry &load,
                            bool &forwarded) const;

    // ---- state --------------------------------------------------------
    MachineConfig cfg;
    CoreLinks links;
    Cycle curCycle = 0;
    InstSeq nextSeq = 1;
    ThreadId ownNextTid = 0;
    ThreadId *tidCounter;        ///< own or CMP-shared tid source
    std::size_t rrCommit = 0;    ///< round-robin pointers
    std::size_t rrDispatch = 0;
    Cycle lastProgressCycle = 0;

    std::vector<std::unique_ptr<Thread>> threads;  ///< creation order
    std::unordered_map<ThreadId, std::size_t> tidIndex;
    /** Indices of non-Finished threads, ascending. The per-cycle
     *  stages walk this instead of the ever-growing `threads` vector,
     *  so a long run's thousands of dead threads cost nothing. */
    std::vector<std::size_t> liveIdx;
    std::vector<ThreadId> slotOwner;               ///< slot -> tid
    int slotsInUse = 0;

    std::vector<RuuEntry> ruu;
    std::vector<int> ruuFreeList;
    int ruuUsed = 0;
    int lsqUsed = 0;

    /** Arena of dependent-list nodes (see RuuEntry::depHead). */
    std::vector<DepNode> depPool;
    int depFree = -1;               ///< free-list head

    /** Entries ready to issue: a min-heap on (seq, ruu index) —
     *  oldest first, like the std::set it replaces, but flat. */
    std::vector<std::pair<InstSeq, int>> readyHeap;

    // Per-cycle scratch (members to avoid per-cycle allocation).
    std::vector<Thread *> stageOrder;      ///< round-robin candidates
    std::vector<Thread *> fetchCandidates;
    std::vector<std::pair<InstSeq, int>> issueSkipped;
    std::vector<std::size_t> diedThisCycle;
    /** Completion events: (cycle, ruu index). */
    std::priority_queue<std::pair<Cycle, int>,
                        std::vector<std::pair<Cycle, int>>,
                        std::greater<>>
        completions;

    MemoryHierarchy mem;
    CombinedPredictor bpred;
    LockTable ownLocks;
    DivisionController ownDivCtrl;
    LockTable *locks;            ///< own or CMP-shared
    DivisionController *divCtrl; ///< own or CMP-shared
    ContextStack ctxStack;
    DivisionObserver divObserver;
    ThreadFinalizer threadFinalizer;

    // Per-cycle resource budgets (reset in issueStage).
    int ialuLeft = 0, imultLeft = 0, fpaluLeft = 0, fpmultLeft = 0;
    int dportsLeft = 0;

    Scalar nCommitted;
    Scalar nFetched;
    Scalar nDeaths;
    Scalar nMispredicts;
    Scalar nActiveCycleSum;  ///< sum over cycles of Active threads
    Scalar nLockWaitCycleSum; ///< sum over cycles of LockWait threads
    mutable Scalar nPeakThreads;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_MACHINE_HH
