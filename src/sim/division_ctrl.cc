#include "sim/division_ctrl.hh"

#include "base/logging.hh"

namespace capsule::sim
{

DivisionController::DivisionController(const DivisionParams &params)
    : p(params)
{
    CAPSULE_ASSERT(p.deathWindow > 0, "bad death window");
}

void
DivisionController::expire(Cycle now) const
{
    Cycle horizon = now >= p.deathWindow ? now - p.deathWindow : 0;
    while (!deaths.empty() && deaths.front() < horizon)
        deaths.pop_front();
}

bool
DivisionController::request(Cycle now, bool free_context)
{
    ++nRequested;

    switch (p.policy) {
      case DivisionPolicy::DenyAll:
        return false;

      case DivisionPolicy::StaticFirstK:
        if (grantsSoFar >= p.staticContexts - 1 || !free_context)
            return false;
        ++grantsSoFar;
        ++nGranted;
        return true;

      case DivisionPolicy::GreedyNoThrottle:
        if (!free_context) {
            ++nDeniedNoContext;
            return false;
        }
        ++nGranted;
        return true;

      case DivisionPolicy::Greedy: {
        if (!free_context) {
            ++nDeniedNoContext;
            return false;
        }
        expire(now);
        if (int(deaths.size()) > p.deathThreshold) {
            ++nThrottled;
            return false;
        }
        ++nGranted;
        return true;
      }
    }
    CAPSULE_PANIC("unreachable division policy");
}

void
DivisionController::recordDeath(Cycle now)
{
    deaths.push_back(now);
}

int
DivisionController::recentDeaths(Cycle now) const
{
    expire(now);
    return int(deaths.size());
}

void
DivisionController::registerStats(StatGroup &g) const
{
    g.add("div.requested", nRequested, "nthr requests seen");
    g.add("div.granted", nGranted, "divisions granted");
    g.add("div.throttled", nThrottled, "denied by death throttle");
    g.add("div.denied_no_context", nDeniedNoContext,
          "denied for lack of a free context");
    g.addFormula("div.grant_rate",
                 [this] {
                     auto r = requested();
                     return r ? double(granted()) / double(r) : 0.0;
                 },
                 "fraction of requests granted");
}

} // namespace capsule::sim
