#include "sim/config.hh"

namespace capsule::sim
{

MachineConfig
MachineConfig::superscalar()
{
    MachineConfig c;
    c.name = "superscalar";
    c.numContexts = 1;
    // A single thread may use the full fetch bandwidth (Table 1's
    // fetch width of 16 with the same core resources).
    c.fetchThreadsPerCycle = 1;
    c.fetchInstsPerThread = 16;
    c.division.policy = DivisionPolicy::DenyAll;
    c.enableContextStack = false;
    return c;
}

MachineConfig
MachineConfig::smtStatic(int contexts)
{
    MachineConfig c;
    c.name = "smt-static";
    c.numContexts = contexts;
    c.division.policy = DivisionPolicy::StaticFirstK;
    c.division.staticContexts = contexts;
    // A standard SMT has no division hardware; the static baseline
    // keeps the context stack off as well.
    c.enableContextStack = false;
    return c;
}

MachineConfig
MachineConfig::somt(int contexts)
{
    MachineConfig c;
    c.name = "somt";
    c.numContexts = contexts;
    c.division.policy = DivisionPolicy::Greedy;
    c.division.deathThreshold = contexts / 2;
    c.enableContextStack = true;
    return c;
}

} // namespace capsule::sim
