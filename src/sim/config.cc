#include "sim/config.hh"

namespace capsule::sim
{

MachineConfig
MachineConfig::superscalar()
{
    MachineConfig c;
    c.name = "superscalar";
    c.numContexts = 1;
    // A single thread may use the full fetch bandwidth (Table 1's
    // fetch width of 16 with the same core resources).
    c.fetchThreadsPerCycle = 1;
    c.fetchInstsPerThread = 16;
    c.division.policy = DivisionPolicy::DenyAll;
    c.enableContextStack = false;
    return c;
}

MachineConfig
MachineConfig::smtStatic(int contexts)
{
    MachineConfig c;
    c.name = "smt-static";
    c.numContexts = contexts;
    c.division.policy = DivisionPolicy::StaticFirstK;
    c.division.staticContexts = contexts;
    // A standard SMT has no division hardware; the static baseline
    // keeps the context stack off as well.
    c.enableContextStack = false;
    return c;
}

MachineConfig
MachineConfig::somt(int contexts)
{
    MachineConfig c;
    c.name = "somt";
    c.numContexts = contexts;
    c.division.policy = DivisionPolicy::Greedy;
    c.division.deathThreshold = contexts / 2;
    c.enableContextStack = true;
    return c;
}

MachineConfig
MachineConfig::cmpSomt(int cores, int contexts_per_core)
{
    MachineConfig c = somt(contexts_per_core);
    c.name = "cmp" + std::to_string(cores) + "x" +
             std::to_string(contexts_per_core);
    c.backend = "cmp";
    c.cmp.numCores = cores;
    // Throttle on the machine-wide death rate (the budget is global).
    c.division.deathThreshold = cores * contexts_per_core / 2;
    // The shared L2 inherits the per-core Table-1 geometry, so a
    // 1-core CMP is cache-identical to the SMT backend.
    c.cmp.l2Config = c.mem.l2;
    c.cmp.l2Config.name = "l2.shared";
    return c;
}

} // namespace capsule::sim
