#include "sim/config.hh"

#include "base/digest.hh"

namespace capsule::sim
{
namespace
{

void
feed(Digest &d, const CacheParams &c)
{
    // Cache names ("l1d", "l2.shared", ...) only label stats dumps;
    // geometry and latency are what simulate.
    d.u64(c.sizeBytes)
        .i64(c.assoc)
        .i64(c.lineBytes)
        .u64(c.hitLatency);
}

} // namespace

std::uint64_t
MachineConfig::digest() const
{
    Digest d;
    // A format tag so a future serialization change cannot collide
    // with today's by accident.
    d.str("capsule-machine-config-v1");
    d.str(backend);
    d.i64(numContexts);
    d.i64(fetchWidth)
        .i64(fetchThreadsPerCycle)
        .i64(fetchInstsPerThread)
        .i64(branchPredPerCycle)
        .i64(ifqSize);
    d.i64(decodeWidth).i64(issueWidth).i64(commitWidth);
    d.i64(ruuSize).i64(lsqSize);
    d.i64(numIalu).i64(numImult).i64(numFpalu).i64(numFpmult);
    d.u64(ialuLatency)
        .u64(imultLatency)
        .u64(fpaluLatency)
        .u64(fpmultLatency);
    d.i64(dcachePorts);
    feed(d, mem.l1i);
    feed(d, mem.l1d);
    feed(d, mem.l2);
    d.u64(mem.memLatency);
    d.i64(std::int64_t(division.policy));
    d.u64(division.deathWindow);
    d.i64(division.deathThreshold);
    d.i64(division.staticContexts);
    d.i64(ctxStack.entries);
    d.u64(ctxStack.swapLatency);
    d.i64(ctxStack.loadWindow);
    d.i64(ctxStack.swapThreshold);
    d.u64(enableContextStack ? 1 : 0);
    d.u64(lockTableCapacity);
    d.u64(registerCopyCycles);
    d.u64(divisionExtraLatency);
    d.i64(cmp.numCores);
    d.u64(cmp.crossCoreDivLatency);
    d.u64(cmp.coldL1Penalty);
    feed(d, cmp.l2Config);
    d.u64(ffwdInstructions);
    d.u64(maxCycles);
    return d.value();
}

MachineConfig
MachineConfig::superscalar()
{
    MachineConfig c;
    c.name = "superscalar";
    c.numContexts = 1;
    // A single thread may use the full fetch bandwidth (Table 1's
    // fetch width of 16 with the same core resources).
    c.fetchThreadsPerCycle = 1;
    c.fetchInstsPerThread = 16;
    c.division.policy = DivisionPolicy::DenyAll;
    c.enableContextStack = false;
    return c;
}

MachineConfig
MachineConfig::smtStatic(int contexts)
{
    MachineConfig c;
    c.name = "smt-static";
    c.numContexts = contexts;
    c.division.policy = DivisionPolicy::StaticFirstK;
    c.division.staticContexts = contexts;
    // A standard SMT has no division hardware; the static baseline
    // keeps the context stack off as well.
    c.enableContextStack = false;
    return c;
}

MachineConfig
MachineConfig::somt(int contexts)
{
    MachineConfig c;
    c.name = "somt";
    c.numContexts = contexts;
    c.division.policy = DivisionPolicy::Greedy;
    c.division.deathThreshold = contexts / 2;
    c.enableContextStack = true;
    return c;
}

MachineConfig
MachineConfig::cmpSomt(int cores, int contexts_per_core)
{
    MachineConfig c = somt(contexts_per_core);
    c.name = "cmp" + std::to_string(cores) + "x" +
             std::to_string(contexts_per_core);
    c.backend = "cmp";
    c.cmp.numCores = cores;
    // Throttle on the machine-wide death rate (the budget is global).
    c.division.deathThreshold = cores * contexts_per_core / 2;
    // The shared L2 inherits the per-core Table-1 geometry, so a
    // 1-core CMP is cache-identical to the SMT backend.
    c.cmp.l2Config = c.mem.l2;
    c.cmp.l2Config.name = "l2.shared";
    return c;
}

} // namespace capsule::sim
