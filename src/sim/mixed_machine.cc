#include "sim/mixed_machine.hh"

#include <algorithm>

#include "base/logging.hh"

namespace capsule::sim
{

MixedMachine::MixedMachine(const MachineConfig &config) : cfg(config)
{
    CAPSULE_ASSERT(cfg.backend != "func",
                   "mixed-mode fast-forward wraps a *timing* backend; "
                   "the func backend is already functional");
}

ThreadId
MixedMachine::addThread(std::unique_ptr<front::Program> program)
{
    CAPSULE_ASSERT(!warm && !detail,
                   "ancestor threads must be added before run()");
    pending.push_back(std::move(program));
    return ThreadId(pending.size() - 1);
}

void
MixedMachine::setDivisionObserver(DivisionObserver obs)
{
    divObserver = std::move(obs);
}

void
MixedMachine::setThreadFinalizer(ThreadFinalizer fin)
{
    threadFinalizer = std::move(fin);
}

ThreadId
MixedMachine::mapDetailTid(ThreadId tid) const
{
    std::size_t t = std::size_t(tid);
    if (t < survivorIds.size())
        return survivorIds[t];
    // A child spawned during the measured interval: continue the
    // machine-wide id space after the warm-up tier's ids.
    return warmIdCount + ThreadId(t - survivorIds.size());
}

RunStats
MixedMachine::run()
{
    MachineConfig dcfg = cfg;
    dcfg.ffwdInstructions = 0;

    std::vector<std::pair<ThreadId, std::unique_ptr<front::Program>>>
        survivors;
    if (cfg.ffwdInstructions > 0) {
        warm = std::make_unique<FuncMachine>(cfg);
        // Warm-up tids are machine-wide tids; hooks pass through.
        if (divObserver)
            warm->setDivisionObserver(divObserver);
        if (threadFinalizer)
            warm->setThreadFinalizer(threadFinalizer);
        for (auto &p : pending)
            warm->addThread(std::move(p));
        pending.clear();
        warm->runUntil(cfg.ffwdInstructions);
        warmStats = warm->stats();
        warmIdCount = ThreadId(warm->threadsCreated());
        ranWarm = true;
        survivors = warm->releaseLiveThreads();
        if (survivors.empty())
            return stats();  // the program fit inside the warm-up
    } else {
        // ffwd at 0: pure detailed simulation, field-exact.
        for (std::size_t i = 0; i < pending.size(); ++i)
            survivors.emplace_back(ThreadId(i), std::move(pending[i]));
        pending.clear();
    }

    detail = makeBackend(dcfg);
    for (auto &[warmTid, program] : survivors) {
        survivorIds.push_back(warmTid);
        detail->addThread(std::move(program));
    }
    if (divObserver)
        detail->setDivisionObserver(
            [this](ThreadId parent, ThreadId child) {
                divObserver(mapDetailTid(parent), mapDetailTid(child));
            });
    if (threadFinalizer)
        detail->setThreadFinalizer(
            [this](ThreadId tid, const front::Program &p) {
                threadFinalizer(mapDetailTid(tid), p);
            });
    detail->run();
    return stats();
}

RunStats
MixedMachine::stats() const
{
    if (!detail)
        return ranWarm ? warmStats : RunStats{};
    RunStats s = detail->stats();
    if (!ranWarm)
        return s;
    // Event counters aggregate across tiers; cycle-domain fields
    // (cycles, ipc, swaps, bpred, cache, avgActive) describe the
    // measured interval only.
    s.instructions += warmStats.instructions;
    s.divisionsRequested += warmStats.divisionsRequested;
    s.divisionsGranted += warmStats.divisionsGranted;
    s.divisionsThrottled += warmStats.divisionsThrottled;
    s.divisionsRemote += warmStats.divisionsRemote;
    s.threadDeaths += warmStats.threadDeaths;
    s.lockConflicts += warmStats.lockConflicts;
    s.peakLiveThreads =
        std::max(s.peakLiveThreads, warmStats.peakLiveThreads);
    return s;
}

ContentionStats
MixedMachine::contention() const
{
    ContentionStats c;
    if (detail)
        c = detail->contention();
    if (warm && ranWarm) {
        ContentionStats w = warm->contention();
        c.lockWaitCycles += w.lockWaitCycles;
        c.divisionsDenied += w.divisionsDenied;
        c.peakLockOccupancy =
            std::max(c.peakLockOccupancy, w.peakLockOccupancy);
        c.peakCtxStackDepth =
            std::max(c.peakCtxStackDepth, w.peakCtxStackDepth);
    }
    return c;
}

std::size_t
MixedMachine::lockedAddrs() const
{
    return (warm ? warm->lockedAddrs() : 0) +
           (detail ? detail->lockedAddrs() : 0);
}

std::size_t
MixedMachine::swappedContexts() const
{
    return (warm ? warm->swappedContexts() : 0) +
           (detail ? detail->swappedContexts() : 0);
}

void
MixedMachine::dumpStats(std::ostream &os) const
{
    if (warm) {
        os << "# fast-forward tier (" << warmStats.instructions
           << " instructions)\n";
        warm->dumpStats(os);
    }
    if (detail) {
        os << "# measured tier (" << cfg.backend << ")\n";
        detail->dumpStats(os);
    }
}

} // namespace capsule::sim
