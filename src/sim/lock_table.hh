/**
 * @file
 * The fast hardware locking table of Section 3.1 (after Tullsen et
 * al.'s fine-grained SMT synchronisation). A lock is held on the base
 * address of a shared object, independently of object size. When a
 * thread issues mlock on an address owned by another thread, it stalls
 * and queues; on munlock the *oldest* waiter becomes the new owner.
 */

#ifndef CAPSULE_SIM_LOCK_TABLE_HH
#define CAPSULE_SIM_LOCK_TABLE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace capsule::sim
{

/** Hardware locking table. */
class LockTable
{
  public:
    /**
     * @param capacity maximum simultaneously locked addresses; the
     *        paper's table is small and spill is a fatal condition in
     *        this model (no software fallback is described).
     */
    explicit LockTable(std::size_t capacity = 64);

    /**
     * Try to acquire the lock on `addr` for `tid`.
     * @return true if the lock was granted (free, or already owned by
     *         this thread — recursive acquisition is idempotent);
     *         false if the thread must stall (it is queued).
     */
    bool acquire(Addr addr, ThreadId tid);

    /**
     * Release the lock held by `tid` on `addr`.
     * @return the thread that becomes the new owner (oldest waiter),
     *         or invalidThread if the entry emptied.
     */
    ThreadId release(Addr addr, ThreadId tid);

    /** Drop a queued waiter (thread died while waiting). */
    void cancelWait(Addr addr, ThreadId tid);

    /** Current owner of `addr`, or invalidThread. */
    ThreadId owner(Addr addr) const;

    /** Number of addresses currently locked. */
    std::size_t occupancy() const { return entries.size(); }

    /** True if `tid` holds no locks and waits on none (for kthr). */
    bool threadQuiescent(ThreadId tid) const;

    void registerStats(StatGroup &g) const;

    std::uint64_t acquires() const { return nAcquires.value(); }
    std::uint64_t conflicts() const { return nConflicts.value(); }

    /** Peak number of simultaneously locked addresses. */
    std::uint64_t peakOccupancy() const { return nPeakOccupancy.value(); }

  private:
    struct Entry
    {
        ThreadId owner = invalidThread;
        std::deque<ThreadId> waiters;  ///< oldest first
    };

    std::size_t capacity;
    std::unordered_map<Addr, Entry> entries;

    Scalar nAcquires;
    Scalar nConflicts;
    Scalar nReleases;
    mutable Scalar nPeakOccupancy;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_LOCK_TABLE_HH
