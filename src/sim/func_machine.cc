#include "sim/func_machine.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/stats.hh"
#include "sim/sim_error.hh"

namespace capsule::sim
{

using isa::OpClass;

FuncMachine::FuncMachine(const MachineConfig &config)
    : cfg(config), locks(cfg.lockTableCapacity), divCtrl(cfg.division)
{
}

ThreadId
FuncMachine::addThread(std::unique_ptr<front::Program> program)
{
    return spawn(std::move(program));
}

ThreadId
FuncMachine::spawn(std::unique_ptr<front::Program> p)
{
    ThreadId tid = ThreadId(threads.size());
    Thread t;
    t.tid = tid;
    t.fast = dynamic_cast<front::AsmProgram *>(p.get());
    t.program = std::move(p);
    threads.push_back(std::move(t));
    ++liveCnt;
    ++activeCnt;
    peakLive = std::max(peakLive, liveCnt);
    return tid;
}

void
FuncMachine::wake(ThreadId tid)
{
    Thread &t = threads[std::size_t(tid)];
    CAPSULE_ASSERT(t.state == Thread::State::LockWait,
                   "woke thread ", tid, " that was not lock-waiting");
    t.state = Thread::State::Active;
    ++activeCnt;
}

void
FuncMachine::finishThread(std::size_t idx, bool is_kthr)
{
    Thread &t = threads[idx];
    CAPSULE_ASSERT(locks.threadQuiescent(t.tid), "thread ", t.tid,
                   " finished while holding or awaiting locks");
    if (threadFinalizer)
        threadFinalizer(t.tid, *t.program);
    t.program.reset();
    t.fast = nullptr;
    t.state = Thread::State::Finished;
    --liveCnt;
    --activeCnt;
    if (is_kthr) {
        divCtrl.recordDeath(clock);
        ++nDeaths;
    }
}

void
FuncMachine::handleNthr(std::size_t idx, const isa::DynInst &d)
{
    (void)d;
    bool free_context = liveCnt < cfg.numContexts;
    bool granted = divCtrl.request(clock, free_context);
    Thread &t = threads[idx];
    auto child = t.program->resolveNthr(granted);
    ThreadId parent = t.tid;
    t.staged.reset();
    retire(1);
    if (!granted)
        return;
    CAPSULE_ASSERT(child, "granted nthr produced no child program");
    // spawn() may reallocate `threads`; no Thread references survive it.
    ThreadId childTid = spawn(std::move(child));
    if (divObserver)
        divObserver(parent, childTid);
}

void
FuncMachine::runSlice(std::size_t idx, std::uint64_t budget)
{
    std::uint64_t used = 0;
    while (used < budget) {
        Thread &t = threads[idx];
        if (t.state != Thread::State::Active)
            return;

        // Block-cache fast path: straight-line stretches and resolved
        // control flow retire in bulk through the threaded executor.
        if (t.fast && !t.staged) {
            std::uint64_t n = t.fast->runDirect(budget - used);
            if (n > 0) {
                retire(n);
                used += n;
                continue;
            }
            // The next opcode needs the protocol; pull it below.
        }

        if (!t.staged) {
            // Generic front end (rt:: worker programs): next() already
            // executes plain/branch ops functionally, so drain them in
            // a tight loop and batch their retirement; only protocol
            // ops are staged for the switch below.
            isa::DynInst d;
            std::uint64_t run = 0;
            while (used + run < budget) {
                if (!t.program->next(d))
                    CAPSULE_PANIC("thread ", t.tid,
                                  " program ended without kthr/halt");
                if (d.cls == OpClass::Nthr ||
                    d.cls == OpClass::Mlock ||
                    d.cls == OpClass::Munlock ||
                    d.cls == OpClass::Kthr || d.cls == OpClass::Halt) {
                    t.staged = d;
                    break;
                }
                ++run;
            }
            if (run > 0) {
                retire(run);
                used += run;
            }
            if (!t.staged)
                continue;  // budget burned on plain work
        }

        const isa::DynInst d = *t.staged;  // copy: spawn may realloc
        switch (d.cls) {
          case OpClass::Nthr:
            handleNthr(idx, d);
            ++used;
            break;

          case OpClass::Mlock:
            if (!locks.acquire(d.effAddr, t.tid)) {
                // Stall; the staged mlock re-executes on wake, when
                // release() has already made this thread the owner
                // (idempotent re-acquisition).
                t.state = Thread::State::LockWait;
                --activeCnt;
                return;
            }
            t.staged.reset();
            retire(1);
            ++used;
            break;

          case OpClass::Munlock: {
            ThreadId next = locks.release(d.effAddr, t.tid);
            t.staged.reset();
            retire(1);
            ++used;
            if (next != invalidThread)
                wake(next);
            break;
          }

          case OpClass::Kthr:
          case OpClass::Halt:
            t.staged.reset();
            retire(1);
            ++used;
            finishThread(idx, d.cls == OpClass::Kthr);
            return;

          default:
            CAPSULE_PANIC("thread ", t.tid,
                          " staged a non-protocol op");
        }
    }
}

void
FuncMachine::runLoop(std::optional<std::uint64_t> stop_after)
{
    while (liveCnt > 0) {
        if (stop_after && clock >= *stop_after &&
            locks.occupancy() == 0)
            return;
        Cycle before = clock;
        for (std::size_t i = 0; i < threads.size(); ++i) {
            // Children spawned this round sit at higher indices and
            // get their first slice within the same round.
            if (threads[i].state == Thread::State::Active)
                runSlice(i, sliceQuantum);
        }
        if (clock == before && liveCnt > 0)
            CAPSULE_SIM_ERROR(SimErrorKind::Deadlock,
                              "functional backend deadlocked: ", liveCnt,
                              " live thread(s), none runnable at ", clock,
                              " retired instructions");
        if (clock >= cfg.maxCycles)
            CAPSULE_SIM_ERROR(SimErrorKind::CyclesExceeded,
                              "simulation exceeded maxCycles=",
                              cfg.maxCycles);
    }
}

RunStats
FuncMachine::run()
{
    runLoop(std::nullopt);
    return stats();
}

void
FuncMachine::runUntil(std::uint64_t min_instructions)
{
    runLoop(min_instructions);
}

std::vector<std::pair<ThreadId, std::unique_ptr<front::Program>>>
FuncMachine::releaseLiveThreads()
{
    CAPSULE_ASSERT(locks.occupancy() == 0,
                   "thread handoff with locks still held");
    std::vector<std::pair<ThreadId, std::unique_ptr<front::Program>>>
        out;
    for (Thread &t : threads) {
        if (t.state == Thread::State::Finished)
            continue;
        CAPSULE_ASSERT(t.state == Thread::State::Active && !t.staged,
                       "thread ", t.tid,
                       " handed off at an unsafe point");
        out.emplace_back(t.tid, std::move(t.program));
        t.fast = nullptr;
        t.state = Thread::State::Finished;
        --liveCnt;
        --activeCnt;
    }
    return out;
}

RunStats
FuncMachine::stats() const
{
    RunStats s;
    s.cycles = clock;
    s.instructions = clock;
    s.ipc = clock ? 1.0 : 0.0;
    s.divisionsRequested = divCtrl.requested();
    s.divisionsGranted = divCtrl.granted();
    s.divisionsThrottled = divCtrl.throttled();
    s.divisionsRemote = 0;
    s.threadDeaths = nDeaths;
    s.lockConflicts = locks.conflicts();
    s.swapsOut = 0;
    s.swapsIn = 0;
    s.bpredAccuracy = 0.0;
    s.l1dMissRate = 0.0;
    s.peakLiveThreads = peakLive;
    s.avgActiveThreads =
        clock ? double(activeSum) / double(clock) : 0.0;
    return s;
}

ContentionStats
FuncMachine::contention() const
{
    ContentionStats c;
    c.lockWaitCycles = lockWaitSum;
    c.divisionsDenied = divCtrl.requested() - divCtrl.granted();
    c.peakLockOccupancy = locks.peakOccupancy();
    c.peakCtxStackDepth = 0;  // the functional tier never swaps
    return c;
}

void
FuncMachine::dumpStats(std::ostream &os) const
{
    StatGroup g(cfg.name + ".func");
    g.addFormula("instructions", [this] { return double(clock); },
                 "retired instructions (== serialized clock)");
    g.addFormula("threads", [this] { return double(threads.size()); },
                 "threads ever created");
    g.addFormula("deaths", [this] { return double(nDeaths); },
                 "kthr retirements");
    g.addFormula("peak_live", [this] { return double(peakLive); },
                 "peak simultaneously live threads");
    g.addFormula("avg_active",
                 [this] {
                     return clock ? double(activeSum) / double(clock)
                                  : 0.0;
                 },
                 "mean active threads per retirement");
    g.dump(os);
    StatGroup d(cfg.name + ".division");
    divCtrl.registerStats(d);
    d.dump(os);
    StatGroup l(cfg.name + ".locks");
    locks.registerStats(l);
    l.dump(os);
}

} // namespace capsule::sim
