/**
 * @file
 * The LIFO inactive-context stack of Section 3.1 (after Tune et al.'s
 * Balanced Multithreading): a 16-entry stack of swapped-out thread
 * contexts attached to the register bank. Swapping a context in or out
 * costs ~200 cycles for 62 registers plus a PC (the paper's estimate
 * without register masks); the 16-entry stack is 4 kB.
 *
 * The swap-out policy is driven by cache behaviour: each completed
 * load's latency is compared with the running average of the last 1000
 * loads; a per-thread counter is incremented when slower, decremented
 * when faster, and crossing a threshold of 256 marks the thread as a
 * swap candidate (it is evicted only when no hardware context is
 * free).
 */

#ifndef CAPSULE_SIM_CONTEXT_STACK_HH
#define CAPSULE_SIM_CONTEXT_STACK_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace capsule::sim
{

/** Parameters of the context stack and its swap policy. */
struct ContextStackParams
{
    int entries = 16;
    Cycle swapLatency = 200;
    /** Number of loads in the running-average window. */
    int loadWindow = 1000;
    /** Counter threshold that marks a thread as a swap candidate. */
    int swapThreshold = 256;
};

/**
 * Tracks the swapped-out thread LIFO and the per-thread load-latency
 * counters of the swap policy. The Machine owns thread state; this
 * class owns only stack membership and policy counters.
 */
class ContextStack
{
  public:
    explicit ContextStack(const ContextStackParams &params);

    /** Record a completed load for the policy. */
    void observeLoad(ThreadId tid, Cycle latency);

    /** True if the policy currently wants `tid` swapped out. */
    bool swapCandidate(ThreadId tid) const;

    /** Reset the candidate counter (after a swap decision). */
    void clearCandidate(ThreadId tid);

    /** Push a thread onto the LIFO. Fatal on overflow (the paper notes
     *  a full design would trap to memory; our experiments, like the
     *  paper's, must not overflow). */
    void push(ThreadId tid);

    /** Pop the most recently pushed thread. */
    ThreadId pop();

    bool empty() const { return stack.empty(); }
    bool full() const { return int(stack.size()) >= p.entries; }
    std::size_t depth() const { return stack.size(); }

    Cycle swapLatency() const { return p.swapLatency; }

    std::uint64_t swapsOut() const { return nSwapsOut.value(); }
    std::uint64_t swapsIn() const { return nSwapsIn.value(); }

    /** Maximum stack occupancy over the run. */
    std::uint64_t peakDepth() const { return nPeakDepth.value(); }

    void registerStats(StatGroup &g) const;

  private:
    ContextStackParams p;
    std::vector<ThreadId> stack;

    /** Running mean of recent load latencies (exponential window that
     *  approximates "the average latency of the last N loads"). */
    double avgLoadLatency = 0.0;
    std::uint64_t loadsSeen = 0;

    /** Per-thread swap-policy counters, grown on demand. */
    mutable std::vector<int> counters;

    Scalar nSwapsOut;
    Scalar nSwapsIn;
    mutable Scalar nPeakDepth;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_CONTEXT_STACK_HH
