#include "sim/backend.hh"

#include <stdexcept>

#include "sim/cmp_machine.hh"
#include "sim/func_machine.hh"
#include "sim/machine.hh"
#include "sim/mixed_machine.hh"

namespace capsule::sim
{

std::vector<std::string>
backendNames()
{
    return {"smt", "cmp", "func"};
}

std::unique_ptr<MachineBackend>
makeBackend(const MachineConfig &cfg)
{
    // The functional tier has no cycle model to fast-forward into;
    // ffwdInstructions only wraps the timing backends.
    if (cfg.backend != "func" && cfg.ffwdInstructions > 0)
        return std::make_unique<MixedMachine>(cfg);
    if (cfg.backend == "smt")
        return std::make_unique<Machine>(cfg);
    if (cfg.backend == "cmp")
        return std::make_unique<CmpMachine>(cfg);
    if (cfg.backend == "func")
        return std::make_unique<FuncMachine>(cfg);

    std::string valid;
    for (const auto &name : backendNames())
        valid += (valid.empty() ? "" : ", ") + name;
    throw std::invalid_argument("unknown simulation backend: '" +
                                cfg.backend + "' (valid backends: " +
                                valid + ")");
}

} // namespace capsule::sim
