#include "sim/backend.hh"

#include <stdexcept>

#include "sim/cmp_machine.hh"
#include "sim/machine.hh"

namespace capsule::sim
{

std::vector<std::string>
backendNames()
{
    return {"smt", "cmp"};
}

std::unique_ptr<MachineBackend>
makeBackend(const MachineConfig &cfg)
{
    if (cfg.backend == "smt")
        return std::make_unique<Machine>(cfg);
    if (cfg.backend == "cmp")
        return std::make_unique<CmpMachine>(cfg);
    throw std::invalid_argument("unknown simulation backend: '" +
                                cfg.backend + "' (expected smt or cmp)");
}

} // namespace capsule::sim
