/**
 * @file
 * Reportable simulation errors (DESIGN.md §10). Capacity overflows and
 * scheduling failures (context-stack overflow, lock-table overflow,
 * functional-backend deadlock, maxCycles exceeded) are *properties of
 * the simulated program*, not harness bugs: an oversubscribed fuzz
 * program must surface as a structured failure the differential
 * harness can shrink, not kill a 5000-iteration campaign or a farm
 * worker mid-flight. By default these sites throw SimulationError;
 * the classic hard abort (fatal + exit(1)) is kept behind an explicit
 * debug flag for interactive debugging, settable programmatically or
 * via the CAPSULE_HARD_SIM_ERRORS environment variable.
 */

#ifndef CAPSULE_SIM_SIM_ERROR_HH
#define CAPSULE_SIM_SIM_ERROR_HH

#include <stdexcept>
#include <string>

namespace capsule::sim
{

/** What kind of simulated-program failure was detected. */
enum class SimErrorKind
{
    ContextStackOverflow, ///< swap-out demand exceeded ctxStack entries
    LockTableOverflow,    ///< distinct locked addresses exceeded capacity
    Deadlock,             ///< live threads, none runnable (func backend)
    CyclesExceeded,       ///< simulation passed cfg.maxCycles
};

/** Stable lower-case name for a SimErrorKind ("deadlock", ...). */
const char *simErrorKindName(SimErrorKind kind);

/**
 * A structured, catchable simulation failure. wl::simulate and the
 * diff_runner backends propagate this to their callers; the fuzz
 * harness reports it as a per-backend outcome and shrinks the
 * offending program like any other divergence.
 */
class SimulationError : public std::runtime_error
{
  public:
    SimulationError(SimErrorKind kind, std::string msg)
        : std::runtime_error(std::move(msg)), kind_(kind)
    {
    }

    SimErrorKind kind() const { return kind_; }

  private:
    SimErrorKind kind_;
};

/** True when simulation errors hard-abort instead of throwing.
 *  Initial value comes from the CAPSULE_HARD_SIM_ERRORS env var. */
bool hardSimulationErrors();

/** Override the hard-abort flag (tests; debug sessions). */
void setHardSimulationErrors(bool hard);

/** Raise: fatal (exit 1) when hardSimulationErrors(), else throw. */
[[noreturn]] void raiseSimError(SimErrorKind kind, const char *file,
                                int line, const std::string &msg);

} // namespace capsule::sim

#define CAPSULE_SIM_ERROR(kind, ...) \
    ::capsule::sim::raiseSimError( \
        kind, __FILE__, __LINE__, \
        ::capsule::detail::formatAll(__VA_ARGS__))

#endif // CAPSULE_SIM_SIM_ERROR_HH
