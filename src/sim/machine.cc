#include "sim/machine.hh"

#include <algorithm>
#include <iostream>

#include "base/logging.hh"
#include "sim/sim_error.hh"

namespace capsule::sim
{

using isa::OpClass;

namespace
{

/** Cycles with no commit before the machine declares a hang. */
constexpr Cycle progressTimeout = 5'000'000;

bool
isMemOp(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store;
}

} // namespace

Machine::Machine(const MachineConfig &config)
    : Machine(config, CoreLinks{})
{
}

Machine::Machine(const MachineConfig &config, const CoreLinks &links_)
    : cfg(config),
      links(links_),
      tidCounter(links_.tidCounter ? links_.tidCounter : &ownNextTid),
      slotOwner(std::size_t(config.numContexts), invalidThread),
      ruu(std::size_t(config.ruuSize)),
      mem(config.mem, links_.sharedL2),
      bpred(),
      ownLocks(config.lockTableCapacity),
      ownDivCtrl(config.division),
      locks(links_.sharedLocks ? links_.sharedLocks : &ownLocks),
      divCtrl(links_.sharedDivCtrl ? links_.sharedDivCtrl
                                   : &ownDivCtrl),
      ctxStack(config.ctxStack)
{
    ruuFreeList.reserve(ruu.size());
    for (int i = int(ruu.size()) - 1; i >= 0; --i)
        ruuFreeList.push_back(i);

    // Dependent-node arena: every in-flight instruction holds at most
    // two source edges, so 2 * ruuSize nodes can never run out.
    depPool.resize(2 * ruu.size());
    for (std::size_t i = 0; i < depPool.size(); ++i)
        depPool[i].next = i + 1 < depPool.size() ? int(i + 1) : -1;
    depFree = depPool.empty() ? -1 : 0;

    readyHeap.reserve(ruu.size());
    issueSkipped.reserve(std::size_t(cfg.issueWidth) + 1);
}

Machine::~Machine() = default;

Machine::Thread &
Machine::thread(ThreadId tid)
{
    auto it = tidIndex.find(tid);
    CAPSULE_ASSERT(it != tidIndex.end(), "bad tid ", tid);
    return *threads[it->second];
}

const Machine::Thread &
Machine::threadConst(ThreadId tid) const
{
    auto it = tidIndex.find(tid);
    CAPSULE_ASSERT(it != tidIndex.end(), "bad tid ", tid);
    return *threads[it->second];
}

bool
Machine::ownsThread(ThreadId tid) const
{
    return tidIndex.count(tid) != 0;
}

int
Machine::freeSlots() const
{
    return cfg.numContexts - slotsInUse;
}

int
Machine::takeSlot(ThreadId tid)
{
    for (int s = 0; s < cfg.numContexts; ++s) {
        if (slotOwner[std::size_t(s)] == invalidThread) {
            slotOwner[std::size_t(s)] = tid;
            ++slotsInUse;
            return s;
        }
    }
    CAPSULE_PANIC("takeSlot with no free context");
}

void
Machine::releaseSlot(Thread &t)
{
    CAPSULE_ASSERT(t.slot >= 0, "thread ", t.tid, " has no slot");
    slotOwner[std::size_t(t.slot)] = invalidThread;
    t.slot = -1;
    --slotsInUse;
}

Machine::Thread &
Machine::newThread(std::unique_ptr<front::Program> program)
{
    ThreadId tid = (*tidCounter)++;
    auto t = std::make_unique<Thread>();
    t->tid = tid;
    t->program = std::move(program);
    t->index = threads.size();
    t->ifq.reset(std::size_t(cfg.ifqSize));
    t->rob.reset(std::size_t(cfg.ruuSize));
    t->lsq.reset(std::size_t(cfg.lsqSize));
    tidIndex.emplace(tid, threads.size());
    liveIdx.push_back(threads.size());  // new index is the maximum
    threads.push_back(std::move(t));
    threads.back()->slot = takeSlot(tid);
    return *threads.back();
}

void
Machine::notePeakThreads()
{
    int live = liveThreads();
    if (std::uint64_t(live) > nPeakThreads.value()) {
        nPeakThreads.reset();
        nPeakThreads += std::uint64_t(live);
    }
}

ThreadId
Machine::addThread(std::unique_ptr<front::Program> program)
{
    CAPSULE_ASSERT(freeSlots() > 0,
                   "no free hardware context for a new thread");
    Thread &t = newThread(std::move(program));
    t.state = ThreadState::Active;
    notePeakThreads();
    return t.tid;
}

ThreadId
Machine::adoptThread(std::unique_ptr<front::Program> program)
{
    CAPSULE_ASSERT(freeSlots() > 0,
                   "adoptThread with no free context");
    Thread &t = newThread(std::move(program));
    t.state = ThreadState::Starting;
    // Activation is scheduled when the parent's nthr commits.
    t.activationCycle = ~Cycle(0);
    notePeakThreads();
    return t.tid;
}

void
Machine::activateThread(ThreadId tid, Cycle when)
{
    Thread &t = thread(tid);
    CAPSULE_ASSERT(t.state == ThreadState::Starting,
                   "activating thread ", tid, " not in Starting state");
    t.activationCycle = when;
}

void
Machine::wakeWaiter(ThreadId tid)
{
    Thread &waiter = thread(tid);
    CAPSULE_ASSERT(waiter.state == ThreadState::LockWait,
                   "lock granted to a thread that is not waiting");
    waiter.state = ThreadState::Active;
    waiter.lockWaitAddr = 0;
    waiter.fetchReadyCycle =
        std::max(waiter.fetchReadyCycle, curCycle + 1);
}

int
Machine::liveThreads() const
{
    return int(liveIdx.size());
}

int
Machine::allocRuu()
{
    CAPSULE_ASSERT(!ruuFreeList.empty(), "RUU overflow");
    int idx = ruuFreeList.back();
    ruuFreeList.pop_back();
    ++ruuUsed;
    ruu[std::size_t(idx)] = RuuEntry{};
    ruu[std::size_t(idx)].valid = true;
    return idx;
}

void
Machine::freeRuu(int idx)
{
    CAPSULE_ASSERT(ruu[std::size_t(idx)].depHead == -1,
                   "freeing RUU entry with live dependents");
    ruu[std::size_t(idx)].valid = false;
    ruuFreeList.push_back(idx);
    --ruuUsed;
}

int
Machine::allocDepNode()
{
    CAPSULE_ASSERT(depFree != -1, "dependent-node pool exhausted");
    int n = depFree;
    depFree = depPool[std::size_t(n)].next;
    return n;
}

void
Machine::pushReady(InstSeq seq, int ruu_idx)
{
    readyHeap.emplace_back(seq, ruu_idx);
    std::push_heap(readyHeap.begin(), readyHeap.end(),
                   std::greater<>{});
}

template <typename Pred>
void
Machine::collectRoundRobin(std::size_t start, Pred &&hasWork)
{
    stageOrder.clear();
    auto wrapAt = std::lower_bound(liveIdx.begin(), liveIdx.end(),
                                   start);
    auto visit = [&](std::size_t i) {
        Thread &t = *threads[i];
        if (hasWork(t))
            stageOrder.push_back(&t);
    };
    for (auto it = wrapAt; it != liveIdx.end(); ++it)
        visit(*it);
    for (auto it = liveIdx.begin(); it != wrapAt; ++it)
        visit(*it);
}

Cycle
Machine::fuLatency(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntMult:
        return cfg.imultLatency;
      case OpClass::FpAlu:
        return cfg.fpaluLatency;
      case OpClass::FpMult:
        return cfg.fpmultLatency;
      default:
        return cfg.ialuLatency;
    }
}

bool
Machine::fuAvailable(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntMult:
        return imultLeft > 0;
      case OpClass::FpAlu:
        return fpaluLeft > 0;
      case OpClass::FpMult:
        return fpmultLeft > 0;
      case OpClass::Load:
      case OpClass::Store:
        return dportsLeft > 0;
      default:
        return ialuLeft > 0;
    }
}

void
Machine::consumeFu(OpClass cls)
{
    switch (cls) {
      case OpClass::IntMult:
        --imultLeft;
        break;
      case OpClass::FpAlu:
        --fpaluLeft;
        break;
      case OpClass::FpMult:
        --fpmultLeft;
        break;
      case OpClass::Load:
      case OpClass::Store:
        --dportsLeft;
        break;
      default:
        --ialuLeft;
        break;
    }
}

bool
Machine::peek(Thread &t)
{
    if (t.staged)
        return true;
    if (t.programDone || t.stagedIsUnresolvedNthr)
        return false;
    isa::DynInst inst;
    if (!t.program || !t.program->next(inst)) {
        t.programDone = true;
        return false;
    }
    t.staged = inst;
    if (inst.cls == OpClass::Nthr)
        t.stagedIsUnresolvedNthr = true;
    return true;
}

// --------------------------------------------------------------------
// fetch
// --------------------------------------------------------------------
void
Machine::fetchStage()
{
    // Rank active threads by in-flight count (Icount policy).
    std::vector<Thread *> &candidates = fetchCandidates;
    candidates.clear();
    for (std::size_t i : liveIdx) {
        Thread &t = *threads[i];
        if (t.state != ThreadState::Active)
            continue;
        if (t.fetchReadyCycle > curCycle || t.blockedOnBranch != 0)
            continue;
        candidates.push_back(&t);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Thread *a, const Thread *b) {
                  if (a->inFlight != b->inFlight)
                      return a->inFlight < b->inFlight;
                  return a->tid < b->tid;
              });

    int totalLeft = cfg.fetchWidth;
    int predsLeft = cfg.branchPredPerCycle;
    int threadsLeft = cfg.fetchThreadsPerCycle;

    for (Thread *tp : candidates) {
        if (totalLeft <= 0 || threadsLeft <= 0)
            break;
        Thread &t = *tp;
        if (!peek(t))
            continue;
        --threadsLeft;

        // Instruction-cache access for this thread's fetch group.
        Cycle ilat = mem.fetchAccess(t.staged->pc);
        if (ilat > cfg.mem.l1i.hitLatency) {
            t.fetchReadyCycle = curCycle + ilat;
            continue;
        }

        int mine = std::min(cfg.fetchInstsPerThread, totalLeft);
        while (mine > 0 && totalLeft > 0) {
            if (!peek(t))
                break;
            if (int(t.ifq.size()) >= cfg.ifqSize)
                break;

            isa::DynInst inst = *t.staged;
            bool stopAfter = false;
            FetchedInst fi;
            fi.inst = inst;

            switch (inst.cls) {
              case OpClass::Branch: {
                if (predsLeft <= 0)
                    goto threadDone;  // budget: stop this thread
                --predsLeft;
                bool predTaken = bpred.predict(inst.pc);
                bpred.update(inst.pc, inst.taken);
                if (predTaken != inst.taken) {
                    fi.mispredicted = true;
                    ++nMispredicts;
                    stopAfter = true;
                } else if (inst.taken) {
                    stopAfter = true;  // redirect to target next cycle
                }
                break;
              }
              case OpClass::Jump:
                // Perfect target prediction; taken ends the packet.
                stopAfter = true;
                break;
              case OpClass::Nthr: {
                DivisionGrant grant;
                if (links.coupling) {
                    grant = links.coupling->requestDivision(
                        links.coreId, curCycle, freeSlots() > 0);
                } else {
                    grant.granted =
                        divCtrl->request(curCycle, freeSlots() > 0);
                }
                fi.granted = grant.granted;
                auto child = t.program->resolveNthr(grant.granted);
                t.stagedIsUnresolvedNthr = false;
                if (grant.granted) {
                    CAPSULE_ASSERT(child, "granted nthr returned no "
                                          "child program");
                    if (grant.remote) {
                        fi.remote = true;
                        fi.childTid = links.coupling->adoptRemoteChild(
                            grant.targetCore, links.coreId, t.tid,
                            std::move(child));
                    } else {
                        Thread &ct = newThread(std::move(child));
                        ct.state = ThreadState::Starting;
                        // Activation is scheduled at nthr commit.
                        ct.activationCycle = ~Cycle(0);
                        fi.childTid = ct.tid;
                        notePeakThreads();
                    }
                    if (divObserver)
                        divObserver(t.tid, fi.childTid);
                    // Parent redirects into its 'left' code version.
                    stopAfter = true;
                } else {
                    CAPSULE_ASSERT(!child, "denied nthr returned a "
                                           "child program");
                }
                break;
              }
              case OpClass::Mlock: {
                if (!locks->acquire(inst.effAddr, t.tid)) {
                    // Queued as a waiter; stall without consuming.
                    t.state = ThreadState::LockWait;
                    t.lockWaitAddr = inst.effAddr;
                    goto threadDone;
                }
                break;
              }
              case OpClass::Munlock: {
                // Release at fetch, symmetric with the fetch-time
                // acquire: the functional critical section is the
                // fetch-order window (see DESIGN.md).
                ThreadId next = locks->release(inst.effAddr, t.tid);
                if (next != invalidThread) {
                    if (ownsThread(next))
                        wakeWaiter(next);
                    else
                        links.coupling->wakeRemoteWaiter(next);
                }
                break;
              }
              case OpClass::Kthr:
              case OpClass::Halt:
                t.state = ThreadState::Draining;
                stopAfter = true;
                break;
              default:
                break;
            }

            // Consume the staged instruction.
            t.staged.reset();
            fi.seq = nextSeq++;
            t.ifq.push_back(fi);
            ++t.inFlight;
            ++nFetched;
            --mine;
            --totalLeft;

            if (fi.mispredicted)
                t.blockedOnBranch = fi.seq;
            if (stopAfter)
                break;
        }
      threadDone:;
    }
}

// --------------------------------------------------------------------
// dispatch (decode/rename into RUU + LSQ)
// --------------------------------------------------------------------
void
Machine::dispatchStage()
{
    int budget = cfg.decodeWidth;
    if (threads.empty())
        return;
    std::size_t n = threads.size();
    std::size_t start = rrDispatch++ % n;

    // The round-robin modulus stays the historical threads.size() so
    // the schedule is cycle-identical; only threads with fetched
    // instructions are visited (the ifq fills exclusively in fetch,
    // which runs after dispatch, so the candidate set is stable).
    collectRoundRobin(start,
                      [](const Thread &t) { return !t.ifq.empty(); });

    // One instruction per thread per pass keeps rename bandwidth
    // fairly shared even when a long dependence chain fills the RUU.
    bool progress = true;
    while (budget > 0 && progress && ruuUsed < cfg.ruuSize) {
        progress = false;
        for (Thread *tp : stageOrder) {
            if (budget <= 0)
                break;
            Thread &t = *tp;
            if (t.ifq.empty())
                continue;
            if (ruuUsed >= cfg.ruuSize)
                break;
            const FetchedInst &fi = t.ifq.front();
            bool memOp = isMemOp(fi.inst.cls);
            if (memOp && lsqUsed >= cfg.lsqSize)
                continue;

            int idx = allocRuu();
            RuuEntry &e = ruu[std::size_t(idx)];
            e.inst = fi.inst;
            e.tid = t.tid;
            e.owner = &t;
            e.seq = fi.seq;
            e.granted = fi.granted;
            e.remote = fi.remote;
            e.mispredicted = fi.mispredicted;
            e.childTid = fi.childTid;
            e.st = RuuEntry::St::Waiting;
            e.pendingSrcs = 0;

            // Rename: source dependences.
            RenameMap &rm = t.rename;
            auto addDep = [&](std::uint8_t reg, bool fp) {
                if (reg == isa::noReg || (!fp && reg == 0))
                    return;
                int prod = fp ? rm.fpMap[reg] : rm.intMap[reg];
                if (prod < 0)
                    return;
                RuuEntry &p = ruu[std::size_t(prod)];
                if (!p.valid || p.st == RuuEntry::St::Done)
                    return;
                int node = allocDepNode();
                depPool[std::size_t(node)] = {idx, p.depHead};
                p.depHead = node;
                ++e.pendingSrcs;
            };
            addDep(fi.inst.rs1, fi.inst.fpRegs);
            addDep(fi.inst.rs2, fi.inst.fpRegs);

            // Rename: destination mapping.
            if (fi.inst.rd != isa::noReg) {
                if (fi.inst.fpRegs)
                    rm.fpMap[fi.inst.rd] = idx;
                else if (fi.inst.rd != 0)
                    rm.intMap[fi.inst.rd] = idx;
            }

            t.rob.push_back(idx);
            if (memOp) {
                t.lsq.push_back(idx);
                ++lsqUsed;
            }
            t.ifq.pop_front();

            if (e.pendingSrcs == 0) {
                e.st = RuuEntry::St::Ready;
                pushReady(e.seq, idx);
            }
            --budget;
            progress = true;
        }
    }
}

// --------------------------------------------------------------------
// issue
// --------------------------------------------------------------------
bool
Machine::loadBlockedByStore(const Thread &t, const RuuEntry &load,
                            bool &forwarded) const
{
    forwarded = false;
    Addr lo = load.inst.effAddr;
    Addr hi = lo + Addr(load.inst.accessBytes);
    // Scan older memory ops; the youngest older matching store wins.
    const RuuEntry *match = nullptr;
    for (int idx : t.lsq) {
        const RuuEntry &e = ruu[std::size_t(idx)];
        if (e.seq >= load.seq)
            break;
        if (e.inst.cls != OpClass::Store)
            continue;
        Addr slo = e.inst.effAddr;
        Addr shi = slo + Addr(e.inst.accessBytes);
        if (slo < hi && lo < shi)
            match = &e;
    }
    if (!match)
        return false;
    if (match->st == RuuEntry::St::Done) {
        forwarded = true;
        return false;
    }
    return true;  // wait for the store's data
}

void
Machine::issueStage()
{
    ialuLeft = cfg.numIalu;
    imultLeft = cfg.numImult;
    fpaluLeft = cfg.numFpalu;
    fpmultLeft = cfg.numFpmult;
    dportsLeft = cfg.dcachePorts;

    // Drain the ready heap oldest-first. Entries that cannot issue
    // this cycle (FU busy, load blocked by an older store) are set
    // aside and re-pushed afterwards — the same retry-next-cycle
    // semantics as iterating past them in the ordered set this heap
    // replaces, without per-entry tree nodes.
    int budget = cfg.issueWidth;
    issueSkipped.clear();
    while (!readyHeap.empty() && budget > 0) {
        std::pop_heap(readyHeap.begin(), readyHeap.end(),
                      std::greater<>{});
        auto [seq, idx] = readyHeap.back();
        readyHeap.pop_back();
        RuuEntry &e = ruu[std::size_t(idx)];
        CAPSULE_ASSERT(e.valid && e.st == RuuEntry::St::Ready,
                       "corrupt ready set");
        if (!fuAvailable(e.inst.cls)) {
            issueSkipped.emplace_back(seq, idx);
            continue;
        }

        Cycle lat;
        if (e.inst.cls == OpClass::Load) {
            bool forwarded = false;
            const Thread &t = *e.owner;
            if (loadBlockedByStore(t, e, forwarded)) {
                issueSkipped.emplace_back(seq, idx);  // retry next cy
                continue;
            }
            if (forwarded) {
                lat = 1;
            } else {
                lat = mem.dataAccess(e.inst.effAddr, false);
            }
            consumeFu(e.inst.cls);
        } else if (e.inst.cls == OpClass::Store) {
            // Write-buffer semantics: the access charges the memory
            // system now but the store completes in one cycle.
            mem.dataAccess(e.inst.effAddr, true);
            consumeFu(e.inst.cls);
            lat = 1;
        } else {
            consumeFu(e.inst.cls);
            lat = fuLatency(e.inst.cls);
        }

        e.st = RuuEntry::St::Issued;
        e.issueCycle = curCycle;
        e.completeCycle = curCycle + lat;
        completions.emplace(e.completeCycle, idx);
        --budget;
    }
    for (const auto &[seq, idx] : issueSkipped)
        pushReady(seq, idx);
}

// --------------------------------------------------------------------
// writeback
// --------------------------------------------------------------------
void
Machine::wakeDependents(int ruu_idx)
{
    RuuEntry &e = ruu[std::size_t(ruu_idx)];
    int n = e.depHead;
    while (n != -1) {
        DepNode &node = depPool[std::size_t(n)];
        int next = node.next;
        int dep = node.ruuIdx;
        RuuEntry &d = ruu[std::size_t(dep)];
        if (d.valid) {
            CAPSULE_ASSERT(d.pendingSrcs > 0, "dependence underflow");
            if (--d.pendingSrcs == 0 &&
                d.st == RuuEntry::St::Waiting) {
                d.st = RuuEntry::St::Ready;
                pushReady(d.seq, dep);
            }
        }
        node.next = depFree;  // return the node to the pool
        depFree = n;
        n = next;
    }
    e.depHead = -1;
}

void
Machine::writebackStage()
{
    while (!completions.empty() && completions.top().first <= curCycle) {
        auto [when, idx] = completions.top();
        completions.pop();
        RuuEntry &e = ruu[std::size_t(idx)];
        if (!e.valid || e.st != RuuEntry::St::Issued ||
            e.completeCycle != when)
            continue;
        e.st = RuuEntry::St::Done;
        wakeDependents(idx);

        Thread &t = *e.owner;
        if (e.inst.cls == OpClass::Load && cfg.enableContextStack)
            ctxStack.observeLoad(e.tid, e.completeCycle - e.issueCycle);

        if (e.mispredicted && t.blockedOnBranch == e.seq) {
            t.blockedOnBranch = 0;
            t.fetchReadyCycle =
                std::max(t.fetchReadyCycle, curCycle + 1);
        }
    }
}

// --------------------------------------------------------------------
// commit
// --------------------------------------------------------------------
void
Machine::commitOne(Thread &t, RuuEntry &e, int idx)
{
    switch (e.inst.cls) {
      case OpClass::Nthr:
        if (e.granted) {
            Cycle activation = curCycle + cfg.registerCopyCycles +
                               cfg.divisionExtraLatency;
            if (e.remote) {
                // The register file crosses the interconnect and the
                // child starts against a cold private L1.
                links.coupling->activateRemoteChild(
                    e.childTid, activation +
                                    cfg.cmp.crossCoreDivLatency +
                                    cfg.cmp.coldL1Penalty);
            } else {
                Thread &child = thread(e.childTid);
                CAPSULE_ASSERT(child.state == ThreadState::Starting,
                               "child not in Starting state");
                child.activationCycle = activation;
            }
            // The parent stalls one cycle for the register copy.
            t.fetchReadyCycle =
                std::max(t.fetchReadyCycle, curCycle + 1);
        }
        break;
      case OpClass::Kthr:
      case OpClass::Halt: {
        CAPSULE_ASSERT(t.state == ThreadState::Draining,
                       "retiring kthr of non-draining thread");
        CAPSULE_ASSERT(locks->threadQuiescent(t.tid),
                       "thread ", t.tid, " died holding locks");
        t.state = ThreadState::Finished;
        diedThisCycle.push_back(t.index);
        releaseSlot(t);
        if (threadFinalizer && t.program)
            threadFinalizer(t.tid, *t.program);
        t.program.reset();
        if (e.inst.cls == OpClass::Kthr) {
            divCtrl->recordDeath(curCycle);
            ++nDeaths;
        }
        break;
      }
      default:
        break;
    }

    // Clear the rename map if this entry is still the youngest writer.
    RenameMap &rm = t.rename;
    if (e.inst.rd != isa::noReg) {
        if (e.inst.fpRegs) {
            if (rm.fpMap[e.inst.rd] == idx)
                rm.fpMap[e.inst.rd] = -1;
        } else if (e.inst.rd != 0) {
            if (rm.intMap[e.inst.rd] == idx)
                rm.intMap[e.inst.rd] = -1;
        }
    }

    if (isMemOp(e.inst.cls)) {
        CAPSULE_ASSERT(!t.lsq.empty() && t.lsq.front() == idx,
                       "LSQ commit order violation");
        t.lsq.pop_front();
        --lsqUsed;
    }

    --t.inFlight;
    ++t.committed;
    ++nCommitted;
    lastProgressCycle = curCycle;
}

void
Machine::commitStage()
{
    int budget = cfg.commitWidth;
    if (threads.empty())
        return;
    std::size_t n = threads.size();
    std::size_t start = rrCommit++ % n;

    // Same modulus, same visit order as the historical full-array
    // scan — but candidates are gathered once (the rob only fills in
    // dispatch, so no thread joins mid-stage) instead of re-scanning
    // every dead thread on every pass.
    collectRoundRobin(start,
                      [](const Thread &t) { return !t.rob.empty(); });
    diedThisCycle.clear();

    // One instruction per thread per pass (fair shared retirement).
    bool progress = true;
    while (budget > 0 && progress) {
        progress = false;
        for (Thread *tp : stageOrder) {
            if (budget <= 0)
                break;
            Thread &t = *tp;
            if (t.rob.empty())
                continue;
            int idx = t.rob.front();
            RuuEntry &e = ruu[std::size_t(idx)];
            if (e.st != RuuEntry::St::Done)
                continue;
            t.rob.pop_front();
            commitOne(t, e, idx);
            freeRuu(idx);
            --budget;
            progress = true;
        }
    }

    // Drop finished threads from the live index (ascending order is
    // preserved by removal).
    for (std::size_t dead : diedThisCycle) {
        auto it = std::lower_bound(liveIdx.begin(), liveIdx.end(),
                                   dead);
        CAPSULE_ASSERT(it != liveIdx.end() && *it == dead,
                       "finished thread missing from live index");
        liveIdx.erase(it);
    }
}

// --------------------------------------------------------------------
// housekeeping: activations and the context stack
// --------------------------------------------------------------------
void
Machine::housekeepStage()
{
    // Thread activations (nthr children, swap-ins) and swap-out
    // completion.
    for (std::size_t i : liveIdx) {
        Thread &t = *threads[i];
        switch (t.state) {
          case ThreadState::Starting:
          case ThreadState::SwappingIn:
            if (t.activationCycle <= curCycle) {
                t.state = ThreadState::Active;
                t.fetchReadyCycle =
                    std::max(t.fetchReadyCycle, curCycle);
            }
            break;
          case ThreadState::SwappingOut:
            if (t.inFlight == 0) {
                if (t.activationCycle == ~Cycle(0)) {
                    t.activationCycle =
                        curCycle + ctxStack.swapLatency();
                } else if (t.activationCycle <= curCycle) {
                    releaseSlot(t);
                    ctxStack.push(t.tid);
                    t.state = ThreadState::Swapped;
                }
            }
            break;
          default:
            break;
        }
    }

    if (!cfg.enableContextStack)
        return;

    // Swap-out initiation: evict memory-bound threads when every
    // context is busy (Section 3.1 policy).
    if (freeSlots() == 0) {
        for (std::size_t i : liveIdx) {
            Thread &t = *threads[i];
            if (t.state != ThreadState::Active)
                continue;
            if (!ctxStack.swapCandidate(t.tid) || ctxStack.full())
                continue;
            t.state = ThreadState::SwappingOut;
            t.activationCycle = ~Cycle(0);
            ctxStack.clearCandidate(t.tid);
            break;  // at most one eviction per cycle
        }
    }

    // Swap-in: the LIFO head returns as soon as a context frees.
    while (freeSlots() > 0 && !ctxStack.empty()) {
        ThreadId tid = ctxStack.pop();
        Thread &t = thread(tid);
        CAPSULE_ASSERT(t.state == ThreadState::Swapped,
                       "stack thread not swapped");
        t.slot = takeSlot(tid);
        t.state = ThreadState::SwappingIn;
        t.activationCycle = curCycle + ctxStack.swapLatency();
    }
}

// --------------------------------------------------------------------
// top level
// --------------------------------------------------------------------
void
Machine::cycleOnce()
{
    commitStage();
    writebackStage();
    issueStage();
    dispatchStage();
    fetchStage();
    housekeepStage();

    int active = 0;
    int lockWait = 0;
    for (std::size_t i : liveIdx) {
        active += threads[i]->state == ThreadState::Active;
        lockWait += threads[i]->state == ThreadState::LockWait;
    }
    nActiveCycleSum += std::uint64_t(active);
    nLockWaitCycleSum += std::uint64_t(lockWait);

    ++curCycle;

    if (curCycle - lastProgressCycle > progressTimeout) {
        dumpStats(std::cerr);
        CAPSULE_PANIC("no commit for ", progressTimeout,
                      " cycles at cycle ", curCycle,
                      "; machine is deadlocked");
    }
    if (curCycle >= cfg.maxCycles)
        CAPSULE_SIM_ERROR(SimErrorKind::CyclesExceeded,
                          "simulation exceeded maxCycles=",
                          cfg.maxCycles);
}

bool
Machine::step()
{
    if (liveThreads() == 0)
        return false;
    cycleOnce();
    return true;
}

bool
Machine::stepShared()
{
    if (liveThreads() == 0) {
        // Idle core of a CMP: stay in lockstep with the others and
        // keep the progress watchdog quiet until work arrives.
        ++curCycle;
        lastProgressCycle = curCycle;
        return false;
    }
    cycleOnce();
    return true;
}

RunStats
Machine::run()
{
    while (step()) {
    }
    return stats();
}

RunStats
Machine::stats() const
{
    RunStats s;
    s.cycles = curCycle;
    s.instructions = nCommitted.value();
    s.ipc = curCycle ? double(s.instructions) / double(curCycle) : 0.0;
    s.divisionsRequested = divCtrl->requested();
    s.divisionsGranted = divCtrl->granted();
    s.divisionsThrottled = divCtrl->throttled();
    s.threadDeaths = nDeaths.value();
    s.lockConflicts = locks->conflicts();
    s.swapsOut = ctxStack.swapsOut();
    s.swapsIn = ctxStack.swapsIn();
    s.bpredAccuracy = bpred.accuracy();
    s.l1dMissRate = mem.l1dConst().missRate();
    s.peakLiveThreads = int(nPeakThreads.value());
    s.avgActiveThreads =
        curCycle ? double(nActiveCycleSum.value()) / double(curCycle)
                 : 0.0;
    return s;
}

ContentionStats
Machine::contention() const
{
    ContentionStats c;
    c.lockWaitCycles = nLockWaitCycleSum.value();
    c.divisionsDenied = divCtrl->requested() - divCtrl->granted();
    c.peakLockOccupancy = locks->peakOccupancy();
    c.peakCtxStackDepth = ctxStack.peakDepth();
    return c;
}

void
Machine::dumpStats(std::ostream &os) const
{
    StatGroup g(cfg.name);
    g.addFormula("cycles", [this] { return double(curCycle); },
                 "simulated cycles");
    g.add("instructions", nCommitted, "committed instructions");
    g.addFormula("ipc",
                 [this] {
                     return curCycle ? double(nCommitted.value()) /
                                           double(curCycle)
                                     : 0.0;
                 },
                 "instructions per cycle");
    g.add("fetched", nFetched, "fetched instructions");
    g.add("deaths", nDeaths, "thread deaths (kthr)");
    g.add("mispredicts", nMispredicts, "branch mispredictions");
    g.add("peak_threads", nPeakThreads, "peak live threads");
    // Shared CMP structures are registered once by the CmpMachine.
    if (!links.sharedDivCtrl)
        divCtrl->registerStats(g);
    if (!links.sharedLocks)
        locks->registerStats(g);
    ctxStack.registerStats(g);
    bpred.registerStats(g);
    mem.registerStats(g);
    g.dump(os);
}

} // namespace capsule::sim
