/**
 * @file
 * The division (spawning) steering logic of Section 3.1. The hardware
 * is free to treat an nthr as a nop; the strategy is *greedy with a
 * death-rate throttle*: grant when a hardware context is free, unless
 * the number of threads that died in the last N = 128 cycles exceeds
 * half the number of hardware contexts (parallel sections too short to
 * amortise thread-creation overhead).
 *
 * The same interface also expresses the paper's two baselines:
 *  - DenyAll      : superscalar execution of the component program;
 *  - StaticFirstK : the profile-derived statically parallelised
 *    version of Section 4 — grant exactly the first K-1 divisions
 *    (reproducing the recorded data distribution when the worker count
 *    first reaches the hardware context count) and deny everything
 *    after, which is how the paper derives its static-parallel SMT
 *    comparison point.
 */

#ifndef CAPSULE_SIM_DIVISION_CTRL_HH
#define CAPSULE_SIM_DIVISION_CTRL_HH

#include <cstdint>
#include <deque>

#include "base/stats.hh"
#include "base/types.hh"

namespace capsule::sim
{

/** Division steering policy selector. */
enum class DivisionPolicy
{
    Greedy,        ///< SOMT: grant if free context, death throttle
    GreedyNoThrottle, ///< ablation: greedy without the death throttle
    StaticFirstK,  ///< static parallelisation baseline (Section 4)
    DenyAll,       ///< superscalar baseline
};

/** Parameters of the division controller. */
struct DivisionParams
{
    DivisionPolicy policy = DivisionPolicy::Greedy;
    /** Death-rate observation window (cycles). */
    Cycle deathWindow = 128;
    /** Deny when deaths in window exceed contexts/2 (set from the
     *  machine's context count). */
    int deathThreshold = 4;
    /** K for StaticFirstK (grants K-1 divisions). */
    int staticContexts = 8;
};

/** Tracks death history and decides nthr grants. */
class DivisionController
{
  public:
    explicit DivisionController(const DivisionParams &params);

    /**
     * Decide an nthr request observed at `now`.
     * @param free_context true if a hardware context is available
     * @return true to grant the division
     */
    bool request(Cycle now, bool free_context);

    /** Record a thread death (kthr commit) at `now`. */
    void recordDeath(Cycle now);

    /** Deaths inside the current window ending at `now`. */
    int recentDeaths(Cycle now) const;

    std::uint64_t requested() const { return nRequested.value(); }
    std::uint64_t granted() const { return nGranted.value(); }
    std::uint64_t throttled() const { return nThrottled.value(); }

    void registerStats(StatGroup &g) const;

  private:
    void expire(Cycle now) const;

    DivisionParams p;
    int grantsSoFar = 0;
    mutable std::deque<Cycle> deaths;  ///< death timestamps in window

    Scalar nRequested;
    Scalar nGranted;
    Scalar nThrottled;
    Scalar nDeniedNoContext;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_DIVISION_CTRL_HH
