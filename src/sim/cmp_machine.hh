/**
 * @file
 * The CMP backend (Section 5, "Potential impact of CMPs on dynamic
 * spawning"): `cmp.numCores` SOMT cores stepped in lockstep on one
 * host thread. Each core keeps its own hardware contexts, L1 caches
 * and inactive-context stack; all cores share one L2, one fast
 * locking table and one global division budget (controller + death
 * throttle).
 *
 * Division semantics across cores:
 *  - the *probe* part of `nthr` (grant/deny) is a local constant-time
 *    check against the replicated free-context scoreboard — it costs
 *    the same whether the machine has 1 or 8 cores;
 *  - a grant prefers a free context on the *home* core (identical to
 *    the SMT backend: register-copy latency only);
 *  - with the home core full, the grant may land on the remote core
 *    with the most free contexts (ties to the lowest core id). The
 *    child then activates `crossCoreDivLatency` later (register file
 *    over the interconnect) plus `coldL1Penalty` (transfer of the
 *    parent's hot lines), and its first touches miss its cold private
 *    L1 into the shared L2 — that part emerges from the cache model.
 *
 * Determinism: cores are stepped in core-id order within each cycle,
 * so shared-L2 and division-controller accesses are totally ordered;
 * a CMP run is a pure function of (config, workload, seed) like every
 * other backend, and byte-identical at any experiment-engine --jobs
 * count. At numCores=1 the backend reproduces the SMT machine's cycle
 * counts exactly (asserted by tests/test_cmp_machine.cc).
 */

#ifndef CAPSULE_SIM_CMP_MACHINE_HH
#define CAPSULE_SIM_CMP_MACHINE_HH

#include <memory>
#include <vector>

#include "sim/backend.hh"
#include "sim/machine.hh"

namespace capsule::sim
{

/** N lockstep SOMT cores with a shared L2 and division budget. */
class CmpMachine : public MachineBackend, private CmpCoupling
{
  public:
    explicit CmpMachine(const MachineConfig &config);
    ~CmpMachine() override;

    CmpMachine(const CmpMachine &) = delete;
    CmpMachine &operator=(const CmpMachine &) = delete;

    /** Ancestors start on core 0. */
    ThreadId addThread(std::unique_ptr<front::Program> program) override;

    RunStats run() override;

    /** Advance every core one cycle. @return false once all threads
     *  on all cores have finished. */
    bool step();

    RunStats stats() const override;

    /** Lock-wait sums across cores; shared lock table / division
     *  budget; max of the per-core context-stack peaks. */
    ContentionStats contention() const override;

    /** Observes divisions on every core; parent/child ids are unique
     *  machine-wide, so cross-core genealogy needs no translation. */
    void setDivisionObserver(DivisionObserver obs) override;

    /** Installed into every core: a thread retires on whichever core
     *  owns it, and thread ids are machine-wide. */
    void setThreadFinalizer(ThreadFinalizer fin) override;

    /** Occupancy of the shared lock table. */
    std::size_t lockedAddrs() const override;

    /** Sum of the per-core inactive-context-stack depths. */
    std::size_t swappedContexts() const override;

    const MachineConfig &config() const override { return cfg; }

    void dumpStats(std::ostream &os) const override;

    Cycle now() const { return curCycle; }
    int numCores() const { return int(cores.size()); }
    const Machine &core(int i) const { return *cores[std::size_t(i)]; }
    int liveThreads() const;

    /** Divisions granted to a core other than the requester's. */
    std::uint64_t remoteDivisions() const { return nRemoteDivisions; }

    const DivisionController &
    divisionController() const
    {
        return divCtrl;
    }
    const LockTable &lockTable() const { return locks; }
    const Cache &sharedL2() const { return l2; }

  private:
    // CmpCoupling (the cores call back into their CMP).
    DivisionGrant requestDivision(int core, Cycle now,
                                  bool local_free) override;
    ThreadId adoptRemoteChild(int target_core, int from_core,
                              ThreadId parent,
                              std::unique_ptr<front::Program> child)
        override;
    void activateRemoteChild(ThreadId child, Cycle when) override;
    void wakeRemoteWaiter(ThreadId tid) override;

    /** The core owning `tid` (asserts on unknown ids). */
    Machine &owningCore(ThreadId tid);

    MachineConfig cfg;
    Cache l2;
    LockTable locks;
    DivisionController divCtrl;
    ThreadId nextTid = 0;
    std::vector<std::unique_ptr<Machine>> cores;

    Cycle curCycle = 0;
    std::uint64_t nRemoteDivisions = 0;
    int peakLive = 0;
};

} // namespace capsule::sim

#endif // CAPSULE_SIM_CMP_MACHINE_HH
