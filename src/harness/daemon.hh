/**
 * @file
 * capsuled — the persistent farm service (DESIGN.md §12). A Unix-
 * domain SOCK_STREAM listener accepts multiple concurrent clients,
 * receives batched job submissions (a campaign = a list of registry
 * points: workload / machine / scale / seed), schedules each
 * campaign onto the existing FarmRunner worker pool over a shared
 * ResultCache directory, and streams merged results back in
 * submission order per client.
 *
 * The wire protocol reuses the farm's conventions exactly: every
 * integer crosses the socket as explicit little-endian bytes
 * (harness::wire), every message is a fixed header + payload + an
 * FNV-1a checksum of the payload, and the layout is pinned by
 * tests/test_daemon.cc. Messages:
 *
 *     Submit(a = reserved, b = reserved,  payload = JobSpec list)
 *     Result(a = job index, b = reserved, payload = ResultCache
 *                                                   encoding)
 *     Done  (a = job count, b = reserved, payload = CampaignSummary)
 *     Error (a = job index or ~0, b = 0,  payload = message text)
 *
 * A client may submit any number of campaigns over one connection;
 * each Submit is answered by its Results in submission order and one
 * trailing Done (or an Error, which also ends the connection).
 *
 * Deadline-aware I/O invariant: the service never issues a blocking
 * read or write on a client socket. Reads drain into a per-client
 * buffer and parse complete messages out of it (the satellite
 * mechanism of the coordinator's partial-frame fix); an incomplete
 * message older than `ioTimeoutSeconds` drops the client. Writes
 * retry under the same deadline; a client too slow to take its
 * results is marked gone and its campaign finishes silently (the
 * shared cache still keeps the work). One slow, hung, or vanished
 * client can therefore never stall the service or another client's
 * campaign — each connection is served by its own thread and its own
 * FarmRunner, and the only cross-client state is the cache's atomic
 * publishes.
 */

#ifndef CAPSULE_HARNESS_DAEMON_HH
#define CAPSULE_HARNESS_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/farm.hh"

namespace capsule::harness
{

/** Byte-level encoding of the daemon's client<->server messages —
 *  the same conventions as the coordinator<->worker pipe protocol
 *  (harness::wire): LE u64 fields, length-prefixed strings, FNV-1a
 *  payload checksums. */
namespace daemonwire
{

/** Message types (the MsgHeader::type field). */
constexpr std::uint64_t msgSubmit = 1;
constexpr std::uint64_t msgResult = 2;
constexpr std::uint64_t msgDone = 3;
constexpr std::uint64_t msgError = 4;

/** Hard upper bound of any message payload (anti-amplification). */
constexpr std::uint64_t maxMsgPayload = 1ULL << 30;

/** The fixed-size header of one message (the FrameHeader shape:
 *  four LE u64s; `a`/`b` mean what the type says they mean). */
struct MsgHeader
{
    std::uint64_t type = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t payloadLen = 0;

    static constexpr std::size_t wireSize = 4 * wire::u64Size;

    void encode(unsigned char out[wireSize]) const;
    static MsgHeader decode(const unsigned char in[wireSize]);
};

/** One job of a campaign: a registry point by name. */
struct JobSpec
{
    std::string workload; ///< registry name ("quicksort", ...)
    std::string machine;  ///< daemon machine name ("smt", ...)
    std::string scale;    ///< scale level name ("quick", ...)
    std::uint64_t seed = 1;

    bool operator==(const JobSpec &) const = default;
};

/** Serialize a campaign (the Submit payload): a job count, then per
 *  job three length-prefixed strings and the seed. */
std::string encodeJobs(const std::vector<JobSpec> &jobs);

/** Parse a Submit payload; std::nullopt on any malformation. */
std::optional<std::vector<JobSpec>>
decodeJobs(const std::string &payload);

/** The campaign counters carried by a Done message: the FarmStats
 *  scalars a client needs for accounting (cache hit rate, timeouts,
 *  quarantines) without shipping the per-worker vectors. */
struct CampaignSummary
{
    std::uint64_t jobs = 0;
    std::uint64_t computed = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t respawns = 0;
    std::uint64_t framesRejected = 0;
    std::uint64_t pointRetries = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t journalWriteErrors = 0;
    double wallSeconds = 0.0;

    static CampaignSummary fromStats(const FarmStats &st);

    std::string encode() const;
    static std::optional<CampaignSummary>
    decode(const std::string &payload);

    bool operator==(const CampaignSummary &) const = default;
};

/** One complete message: header + payload + payload checksum. */
std::string encodeMessage(std::uint64_t type, std::uint64_t a,
                          std::uint64_t b,
                          const std::string &payload);

/**
 * Incremental message parse out of a receive buffer — the exact
 * shape of the coordinator's partial-frame handling. Returns
 *  +1 and fills `hdr`/`payload` (consuming the bytes) on a complete
 *     valid message,
 *   0 when `rx` holds only a prefix (read more, keep the deadline
 *     armed),
 *  -1 on a protocol violation (unknown type, oversize claim, or a
 *     checksum mismatch — drop the peer).
 */
int parseMessage(std::string &rx, MsgHeader &hdr,
                 std::string &payload);

} // namespace daemonwire

/** The machine shapes a daemon job may name, by daemon name: the
 *  farm_capsule trio {smt, cmp, func}. nullptr on unknown names. */
const sim::MachineConfig *daemonMachine(const std::string &name);

/** The valid JobSpec::machine names, in table order. */
std::vector<std::string> daemonMachineNames();

struct DaemonOptions
{
    /** Filesystem path of the listening socket (required; an
     *  existing socket file is replaced). */
    std::string socketPath;

    /** Shared result-cache directory (empty disables memoization —
     *  every campaign recomputes). */
    std::string cacheDir;
    std::uint64_t cacheMaxBytes = 0;

    /** FarmRunner workers per campaign (<= 0: hardware threads,
     *  1: inline in the client's service thread). */
    int workersPerCampaign = 1;

    /** Per-point deadline forwarded to each campaign's FarmRunner. */
    double pointTimeoutSeconds = 300.0;

    /** Client I/O deadline in seconds: an incomplete inbound message
     *  (e.g. half a header, then silence) or a blocked outbound
     *  result older than this drops the client. <= 0 uses 30 s. */
    double ioTimeoutSeconds = 30.0;

    /** Largest accepted campaign (jobs per Submit). */
    std::size_t maxCampaignJobs = 4096;
};

/** Service observability counters (a snapshot; see stats()). */
struct DaemonStats
{
    std::uint64_t clientsAccepted = 0;
    /** Connections that ended with a clean shutdown from the peer. */
    std::uint64_t clientsServed = 0;
    /** Connections dropped by the service: I/O deadline blown,
     *  protocol violation, or a mid-campaign disappearance. */
    std::uint64_t clientsDropped = 0;
    std::uint64_t campaigns = 0;
    std::uint64_t jobs = 0;
    std::uint64_t protocolErrors = 0;
    /** Client I/O deadlines blown (reads and writes). */
    std::uint64_t ioTimeouts = 0;
    /** Every campaign's FarmStats, folded (FarmStats::fold). */
    FarmStats farm;
};

/**
 * The daemon: start() binds the socket and spawns the accept thread;
 * every accepted client is served by its own thread (shared-nothing
 * but the cache directory and the stats, under one mutex). stop() —
 * also run by the destructor — closes the listener, flags every
 * service loop down (they poll with bounded timeouts, never block
 * indefinitely) and joins.
 */
class FarmDaemon
{
  public:
    explicit FarmDaemon(DaemonOptions opts);
    ~FarmDaemon();

    FarmDaemon(const FarmDaemon &) = delete;
    FarmDaemon &operator=(const FarmDaemon &) = delete;

    /** Bind + listen + spawn the accept loop. False (with `error`
     *  filled when given) when the socket cannot be created. */
    bool start(std::string *error = nullptr);

    /** Idempotent orderly shutdown; joins every service thread. */
    void stop();

    bool running() const { return running_.load(); }

    const std::string &socketPath() const { return opts_.socketPath; }

    /** Snapshot of the service counters. */
    DaemonStats stats() const;

  private:
    void acceptLoop();
    void serveClient(int fd);

    DaemonOptions opts_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};
    std::thread acceptThread_;

    mutable std::mutex mtx_; ///< guards st_ and clients_
    DaemonStats st_;
    std::vector<std::thread> clients_;
};

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_DAEMON_HH
