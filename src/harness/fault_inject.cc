#include "harness/fault_inject.hh"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <unordered_set>

namespace capsule::harness
{
namespace
{

struct KindSpec
{
    const char *name;
    FaultKind kind;
};

constexpr KindSpec kindTable[] = {
    {"crash", FaultKind::CrashWorker},
    {"hang", FaultKind::HangWorker},
    {"corrupt", FaultKind::CorruptFrame},
    {"truncate", FaultKind::TruncateFrame},
    {"short", FaultKind::ShortFrame},
    {"stall", FaultKind::StallFrame},
    {"tear-cache", FaultKind::TearCacheWrite},
    {"tear-journal", FaultKind::TearJournalWrite},
    {"die", FaultKind::DieCoordinator},
};

/** SplitMix64 — the same platform-stable generator family the fuzz
 *  subsystem pins (no <random> distributions, one draw per use). */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool
parseDecimal(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + std::uint64_t(c - '0');
    }
    out = v;
    return true;
}

[[noreturn]] void
badToken(const std::string &token, const char *why)
{
    throw std::invalid_argument("fault-plan token '" + token + "': " +
                                why);
}

} // namespace

bool
isWorkerFault(FaultKind kind)
{
    switch (kind) {
    case FaultKind::CrashWorker:
    case FaultKind::HangWorker:
    case FaultKind::CorruptFrame:
    case FaultKind::TruncateFrame:
    case FaultKind::ShortFrame:
    case FaultKind::StallFrame:
        return true;
    default:
        return false;
    }
}

const char *
faultKindName(FaultKind kind)
{
    for (const auto &k : kindTable)
        if (k.kind == kind)
            return k.name;
    return "none";
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t at = 0;
    while (at <= spec.size()) {
        std::size_t comma = spec.find(',', at);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(at, comma - at);
        at = comma + 1;
        if (token.empty()) {
            if (spec.empty())
                break;
            badToken(token, "empty operation");
        }

        if (token.rfind("rand:", 0) == 0) {
            std::size_t colon = token.find(':', 5);
            if (colon == std::string::npos)
                badToken(token, "want rand:SEED:COUNT");
            std::uint64_t seed = 0, count = 0;
            if (!parseDecimal(token.substr(5, colon - 5), seed) ||
                !parseDecimal(token.substr(colon + 1), count) ||
                count == 0)
                badToken(token, "want rand:SEED:COUNT");
            if (plan.randCount_ != 0)
                badToken(token, "only one rand: component per plan");
            plan.randSeed_ = seed;
            plan.randCount_ = count;
            continue;
        }

        std::size_t sep = token.find('@');
        if (sep == std::string::npos)
            badToken(token, "want KIND@INDEX");
        const std::string kindName = token.substr(0, sep);
        FaultKind kind = FaultKind::None;
        for (const auto &k : kindTable)
            if (kindName == k.name)
                kind = k.kind;
        if (kind == FaultKind::None)
            badToken(token, "unknown fault kind (want crash, hang, "
                            "corrupt, truncate, short, stall, "
                            "tear-cache, tear-journal or die)");
        std::uint64_t index = 0;
        if (!parseDecimal(token.substr(sep + 1), index))
            badToken(token, "index must be a decimal integer");
        plan.ops_.push_back({kind, index, false});
    }
    return plan;
}

std::string
FaultPlan::spec() const
{
    std::string out;
    auto sep = [&] {
        if (!out.empty())
            out += ',';
    };
    for (const auto &op : ops_) {
        sep();
        out += faultKindName(op.kind);
        out += '@';
        out += std::to_string(op.index);
    }
    if (randCount_ != 0) {
        sep();
        out += "rand:" + std::to_string(randSeed_) + ":" +
               std::to_string(randCount_);
    }
    return out;
}

void
FaultPlan::materialize(std::uint64_t num_points)
{
    if (randCount_ == 0)
        return;
    // Hang and stall are excluded from random draws (they need an
    // explicit deadline decision); everything else is fair game.
    static constexpr FaultKind drawable[] = {
        FaultKind::CrashWorker,
        FaultKind::CorruptFrame,
        FaultKind::TruncateFrame,
        FaultKind::ShortFrame,
    };
    std::uint64_t state = randSeed_;
    std::unordered_set<std::uint64_t> used;
    for (const auto &op : ops_)
        if (isWorkerFault(op.kind))
            used.insert(op.index);
    const std::uint64_t want =
        num_points == 0 ? 0 : std::min(randCount_, num_points);
    std::uint64_t placed = 0;
    // Bounded rejection sampling for distinct points: with count
    // clamped to num_points this terminates fast in practice; the
    // hard iteration cap keeps a pathological plan from spinning.
    for (std::uint64_t tries = 0;
         placed < want && tries < 64 * (want + 1); ++tries) {
        std::uint64_t point = splitMix64(state) % num_points;
        if (!used.insert(point).second)
            continue;
        FaultKind kind = drawable[splitMix64(state) % 4];
        ops_.push_back({kind, point, false});
        ++placed;
    }
    randSeed_ = 0;
    randCount_ = 0;
}

FaultKind
FaultPlan::takeWorkerFault(std::uint64_t point_index)
{
    for (auto &op : ops_) {
        if (!op.fired && isWorkerFault(op.kind) &&
            op.index == point_index) {
            op.fired = true;
            return op.kind;
        }
    }
    return FaultKind::None;
}

std::vector<FaultKind>
FaultPlan::takeCoordFaults(std::uint64_t merge_count)
{
    std::vector<FaultKind> due;
    for (auto &op : ops_) {
        if (!op.fired && !isWorkerFault(op.kind) &&
            op.index <= merge_count) {
            op.fired = true;
            due.push_back(op.kind);
        }
    }
    // Tears before the kill when they share a trigger.
    std::stable_partition(due.begin(), due.end(), [](FaultKind k) {
        return k != FaultKind::DieCoordinator;
    });
    return due;
}

bool
tearFileTail(const std::string &path, std::uint64_t keep_num,
             std::uint64_t keep_den)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec || keep_den == 0)
        return false;
    std::filesystem::resize_file(path, size * keep_num / keep_den,
                                 ec);
    return !ec;
}

} // namespace capsule::harness
