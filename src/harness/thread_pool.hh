/**
 * @file
 * A fixed-size host thread pool for the experiment engine. Simulation
 * points are pure functions of their parameters, so the pool needs no
 * result plumbing of its own: jobs capture their output slot. Kept
 * deliberately minimal — submit closures, wait for the queue to
 * drain, destruction joins.
 *
 * Jobs should report errors through their captured state (the
 * ExperimentRunner captures an exception_ptr per point); a job that
 * throws anyway is contained rather than catastrophic: the exception
 * is swallowed and counted, the worker survives, wait() still drains,
 * and every other job's result is unaffected.
 */

#ifndef CAPSULE_HARNESS_THREAD_POOL_HH
#define CAPSULE_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace capsule::harness
{

/** Number of host hardware threads (at least 1). */
int hostConcurrency();

class ThreadPool
{
  public:
    /** Spawn `threads` workers (clamped to at least 1). */
    explicit ThreadPool(int threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job (see the file comment on throwing jobs). */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    int threads() const { return int(workers.size()); }

    /** Jobs whose escaped exception the pool swallowed. */
    std::uint64_t droppedExceptions() const;

  private:
    void workerLoop();

    mutable std::mutex mtx;
    std::condition_variable wake;   ///< signals workers: job / stop
    std::condition_variable drained; ///< signals wait(): all done
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    int inFlight = 0;   ///< dequeued but not yet finished
    std::uint64_t nDropped = 0; ///< jobs that threw (see above)
    bool stopping = false;
};

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_THREAD_POOL_HH
