/**
 * @file
 * A fixed-size host thread pool for the experiment engine. Simulation
 * points are pure functions of their parameters, so the pool needs no
 * result plumbing of its own: jobs capture their output slot. Kept
 * deliberately minimal — submit closures, wait for the queue to
 * drain, destruction joins.
 *
 * Jobs should report errors through their captured state (the
 * ExperimentRunner captures an exception_ptr per point); a job that
 * throws anyway is contained rather than catastrophic: the exception
 * is swallowed and counted, the worker survives, wait() still drains,
 * and every other job's result is unaffected.
 */

#ifndef CAPSULE_HARNESS_THREAD_POOL_HH
#define CAPSULE_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace capsule::harness
{

/** Number of host hardware threads (at least 1). */
int hostConcurrency();

class ThreadPool
{
  public:
    /**
     * Spawn `threads` workers (clamped to at least 1). `maxQueue`
     * bounds the number of *queued* (not yet running) jobs: a full
     * queue makes submit() block until a worker dequeues, so a
     * producer enumerating a huge campaign is backpressured to the
     * pool's pace instead of materializing every closure up front.
     * 0 keeps the queue unbounded.
     */
    explicit ThreadPool(int threads, std::size_t maxQueue = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job; blocks while a bounded queue is full (see the
     *  file comment on throwing jobs). */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    int threads() const { return int(workers.size()); }

    /** Jobs whose escaped exception the pool swallowed. */
    std::uint64_t droppedExceptions() const;

    /** High-water mark of queued (not yet dequeued) jobs; with a
     *  bounded queue this never exceeds the bound. */
    std::size_t peakQueued() const;

  private:
    void workerLoop();

    mutable std::mutex mtx;
    std::condition_variable wake;   ///< signals workers: job / stop
    std::condition_variable drained; ///< signals wait(): all done
    std::condition_variable space;  ///< signals submit(): queue room
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    std::size_t maxQueued = 0; ///< submit() bound; 0 = unbounded
    std::size_t peak = 0;      ///< queue-depth high-water mark
    int inFlight = 0;   ///< dequeued but not yet finished
    std::uint64_t nDropped = 0; ///< jobs that threw (see above)
    bool stopping = false;
};

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_THREAD_POOL_HH
