/**
 * @file
 * A fixed-size host thread pool for the experiment engine. Simulation
 * points are pure functions of their parameters, so the pool needs no
 * result plumbing of its own: jobs capture their output slot. Kept
 * deliberately minimal — submit closures, wait for the queue to
 * drain, destruction joins.
 */

#ifndef CAPSULE_HARNESS_THREAD_POOL_HH
#define CAPSULE_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace capsule::harness
{

/** Number of host hardware threads (at least 1). */
int hostConcurrency();

class ThreadPool
{
  public:
    /** Spawn `threads` workers (clamped to at least 1). */
    explicit ThreadPool(int threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Jobs must not throw. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    int threads() const { return int(workers.size()); }

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable wake;   ///< signals workers: job / stop
    std::condition_variable drained; ///< signals wait(): all done
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    int inFlight = 0;   ///< dequeued but not yet finished
    bool stopping = false;
};

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_THREAD_POOL_HH
