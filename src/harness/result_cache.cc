#include "harness/result_cache.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "base/digest.hh"
#include "base/logging.hh"

#ifdef __unix__
#include <unistd.h>
#endif

namespace capsule::harness
{
namespace
{

// v2 added the `len` line (declared payload length, validated before
// the checksum); v1 entries fail the magic check and evict as
// corrupt — a one-time recompute, never a wrong result.
constexpr const char *entryMagic = "capsule-result-cache-v2";

std::string
bits(double v)
{
    return toHex16(std::bit_cast<std::uint64_t>(v));
}

bool
parseBits(const std::string &s, double &out)
{
    std::uint64_t u;
    if (!parseHex16(s, u))
        return false;
    out = std::bit_cast<double>(u);
    return true;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + std::uint64_t(c - '0');
    }
    out = v;
    return true;
}

/** Process-unique suffix for atomic-publish temp files. */
std::string
tempSuffix()
{
    static std::atomic<std::uint64_t> seq{0};
#ifdef __unix__
    long pid = long(::getpid());
#else
    long pid = 0;
#endif
    return ".tmp-" + std::to_string(pid) + "-" +
           std::to_string(seq.fetch_add(1));
}

} // namespace

std::uint64_t
CacheKey::digest() const
{
    Digest d;
    d.str("capsule-cache-key-v1");
    d.u64(programDigest);
    d.u64(configDigest);
    d.str(scale);
    d.u64(seed);
    d.u64(semanticsHash);
    d.u64(extra);
    return d.value();
}

ResultCache::ResultCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), maxBytes_(max_bytes)
{
    CAPSULE_ASSERT(!dir_.empty(), "empty result-cache directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec && !std::filesystem::is_directory(dir_))
        throw std::runtime_error("cannot create result cache at '" +
                                 dir_ + "': " + ec.message());
}

std::string
ResultCache::entryPath(const CacheKey &key) const
{
    return dir_ + "/" + toHex16(key.digest()) + ".res";
}

std::string
ResultCache::encode(const wl::WorkloadResult &r)
{
    CAPSULE_ASSERT(r.workload.find('\n') == std::string::npos,
                   "workload name contains a newline");
    std::ostringstream out;
    out << "workload " << r.workload << "\n";
    out << "correct " << (r.correct ? 1 : 0) << "\n";
    out << "serial " << r.serialCycles << "\n";
    const auto &s = r.stats;
    out << "stats " << s.cycles << " " << s.instructions << " "
        << bits(s.ipc) << " " << s.divisionsRequested << " "
        << s.divisionsGranted << " " << s.divisionsThrottled << " "
        << s.divisionsRemote << " " << s.threadDeaths << " "
        << s.lockConflicts << " " << s.swapsOut << " " << s.swapsIn
        << " " << bits(s.bpredAccuracy) << " " << bits(s.l1dMissRate)
        << " " << s.peakLiveThreads << " "
        << bits(s.avgActiveThreads) << "\n";
    for (const auto &[k, v] : r.metrics) {
        CAPSULE_ASSERT(k.find('\n') == std::string::npos,
                       "metric key contains a newline");
        // Value first: the key is the rest of the line, so metric
        // keys may contain spaces.
        out << "metric " << bits(v) << " " << k << "\n";
    }
    return out.str();
}

std::optional<wl::WorkloadResult>
ResultCache::decode(const std::string &payload)
{
    std::istringstream in(payload);
    std::string line;
    wl::WorkloadResult r;

    auto next = [&](const char *tag, std::string &rest) {
        if (!std::getline(in, line))
            return false;
        std::string prefix = std::string(tag) + " ";
        if (line.rfind(prefix, 0) != 0)
            return false;
        rest = line.substr(prefix.size());
        return true;
    };

    std::string rest;
    if (!next("workload", rest))
        return std::nullopt;
    r.workload = rest;
    if (!next("correct", rest) || (rest != "0" && rest != "1"))
        return std::nullopt;
    r.correct = rest == "1";
    if (!next("serial", rest) || !parseU64(rest, r.serialCycles))
        return std::nullopt;
    if (!next("stats", rest))
        return std::nullopt;
    {
        std::istringstream fields(rest);
        std::string f[15];
        for (auto &t : f)
            if (!(fields >> t))
                return std::nullopt;
        std::string trailing;
        if (fields >> trailing)
            return std::nullopt;
        auto &s = r.stats;
        std::uint64_t peak = 0;
        if (!parseU64(f[0], s.cycles) ||
            !parseU64(f[1], s.instructions) ||
            !parseBits(f[2], s.ipc) ||
            !parseU64(f[3], s.divisionsRequested) ||
            !parseU64(f[4], s.divisionsGranted) ||
            !parseU64(f[5], s.divisionsThrottled) ||
            !parseU64(f[6], s.divisionsRemote) ||
            !parseU64(f[7], s.threadDeaths) ||
            !parseU64(f[8], s.lockConflicts) ||
            !parseU64(f[9], s.swapsOut) ||
            !parseU64(f[10], s.swapsIn) ||
            !parseBits(f[11], s.bpredAccuracy) ||
            !parseBits(f[12], s.l1dMissRate) ||
            !parseU64(f[13], peak) ||
            !parseBits(f[14], s.avgActiveThreads))
            return std::nullopt;
        s.peakLiveThreads = int(peak);
    }
    while (std::getline(in, line)) {
        // metric <16-hex bits> <key, may contain spaces>
        if (line.rfind("metric ", 0) != 0 || line.size() < 7 + 16 + 2)
            return std::nullopt;
        double v;
        if (!parseBits(line.substr(7, 16), v) || line[7 + 16] != ' ')
            return std::nullopt;
        r.metrics.emplace_back(line.substr(7 + 17), v);
    }
    return r;
}

std::optional<wl::WorkloadResult>
ResultCache::load(const CacheKey &key)
{
    const std::string path = entryPath(key);
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::lock_guard lock(mtx);
            ++ctr.misses;
            return std::nullopt;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    auto evict = [&](bool length) -> std::optional<wl::WorkloadResult> {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        std::lock_guard lock(mtx);
        ++ctr.misses;
        if (length)
            ++ctr.lengthEvictions;
        else
            ++ctr.corruptEvictions;
        return std::nullopt;
    };
    auto corrupt = [&] { return evict(false); };

    // Header: magic line, key echo, declared payload length.
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != entryMagic)
        return corrupt();
    std::uint64_t echoed = 0;
    if (!std::getline(in, line) || line.rfind("key ", 0) != 0 ||
        !parseHex16(line.substr(4), echoed) ||
        echoed != key.digest())
        return corrupt();
    std::uint64_t declaredLen = 0;
    if (!std::getline(in, line) || line.rfind("len ", 0) != 0 ||
        !parseU64(line.substr(4), declaredLen))
        return corrupt();

    // Length check BEFORE any checksumming: the whole file must be
    // exactly header + declared payload + the fixed-width check
    // line. A torn write (truncated mid-payload or mid-check-line)
    // fails this cheap arithmetic and is counted as a length
    // eviction, distinct from content corruption.
    const std::size_t payloadBegin = std::size_t(in.tellg());
    constexpr std::size_t checkLineSize = 6 + 16 + 1;
    if (text.size() != payloadBegin + declaredLen + checkLineSize)
        return evict(true);

    std::string payload = text.substr(payloadBegin, declaredLen);
    std::string checkLine = text.substr(payloadBegin + declaredLen);
    std::uint64_t want = 0;
    if (checkLine.rfind("check ", 0) != 0 ||
        checkLine.back() != '\n' ||
        !parseHex16(checkLine.substr(6, 16), want) ||
        fnv1aBytes(payload) != want)
        return corrupt();

    auto result = decode(payload);
    if (!result)
        return corrupt();

    // Refresh the entry's mtime so the size-budget sweep evicts in
    // true least-recently-*used* order, not publish order.
    if (maxBytes_ != 0) {
        std::error_code ec;
        std::filesystem::last_write_time(
            path, std::filesystem::file_time_type::clock::now(), ec);
    }

    std::lock_guard lock(mtx);
    ++ctr.hits;
    return result;
}

void
ResultCache::store(const CacheKey &key, const wl::WorkloadResult &r)
{
    std::string payload = encode(r);
    std::ostringstream out;
    out << entryMagic << "\n";
    out << "key " << toHex16(key.digest()) << "\n";
    out << "len " << payload.size() << "\n";
    out << payload;
    out << "check " << toHex16(fnv1aBytes(payload)) << "\n";

    const std::string path = entryPath(key);
    const std::string tmp = path + tempSuffix();
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f) {
            return; // degrade to recompute-next-time
        }
        f << out.str();
        f.flush();
        if (!f) {
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return;
    }
    {
        std::lock_guard lock(mtx);
        ++ctr.stores;
    }
    if (maxBytes_ != 0)
        sweepToBudget();
}

void
ResultCache::sweepToBudget()
{
    // Snapshot every published entry with its age and size. Temp
    // files are skipped: they belong to an in-flight publish.
    struct Entry
    {
        std::filesystem::path path;
        std::filesystem::file_time_type mtime;
        std::uint64_t size;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (de.path().extension() != ".res")
            continue;
        std::error_code fec;
        auto mtime = std::filesystem::last_write_time(de.path(), fec);
        if (fec)
            continue;
        auto size = std::filesystem::file_size(de.path(), fec);
        if (fec)
            continue;
        entries.push_back({de.path(), mtime, size});
        total += size;
    }
    if (total <= maxBytes_)
        return;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime ||
                         (a.mtime == b.mtime && a.path < b.path);
              });
    std::uint64_t evicted = 0;
    for (const auto &e : entries) {
        if (total <= maxBytes_)
            break;
        std::error_code rec;
        // remove() can race a concurrent sweeper; only count and
        // discount entries this process actually removed.
        if (std::filesystem::remove(e.path, rec) && !rec) {
            total -= e.size;
            ++evicted;
        }
    }
    if (evicted) {
        std::lock_guard lock(mtx);
        ctr.sizeEvictions += evicted;
    }
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard lock(mtx);
    return ctr;
}

} // namespace capsule::harness
