/**
 * @file
 * The experiment engine: every paper evaluation is a sweep of
 * independent simulation points (MachineConfig x workload x seed).
 * A harness declares its points, the ExperimentRunner executes them
 * on a fixed-size host thread pool, and the results come back in
 * submission order — so rendered tables, histograms and JSON are
 * byte-identical at any `--jobs` count. Determinism rests on two
 * invariants the workload layer provides: the simulator has no
 * global mutable state, and every point derives all randomness from
 * its own explicit seed.
 */

#ifndef CAPSULE_HARNESS_EXPERIMENT_HH
#define CAPSULE_HARNESS_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace capsule::harness
{

/** One independent simulation point of a sweep. */
struct SweepPoint
{
    /** Harness-chosen identifier (shown in errors, useful when
     *  mapping results back to sweep axes). */
    std::string label;

    /** The simulation; must depend only on captured parameters. */
    std::function<wl::WorkloadResult()> run;
};

/** A point running a registered workload (see WorkloadRegistry). */
SweepPoint registryPoint(const std::string &workload,
                         const sim::MachineConfig &cfg,
                         const wl::WorkloadRequest &req,
                         std::string label = "");

/**
 * Executes sweeps. `jobs` <= 0 selects host hardware concurrency;
 * `jobs` == 1 runs points inline on the calling thread (the serial
 * reference the determinism tests compare against).
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(int jobs = 0);

    int jobs() const { return nJobs; }

    /**
     * Run every point and return the results in submission order.
     * A point that throws re-throws here — after all other points
     * completed — always the lowest-index failure, regardless of
     * the host schedule.
     */
    std::vector<wl::WorkloadResult>
    run(const std::vector<SweepPoint> &points) const;

  private:
    int nJobs;
};

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_EXPERIMENT_HH
