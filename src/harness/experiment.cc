#include "harness/experiment.hh"

#include <exception>

#include "harness/thread_pool.hh"

namespace capsule::harness
{

SweepPoint
registryPoint(const std::string &workload,
              const sim::MachineConfig &cfg,
              const wl::WorkloadRequest &req, std::string label)
{
    SweepPoint p;
    p.label = label.empty()
                  ? workload + "/" + cfg.name + "/seed" +
                        std::to_string(req.seed)
                  : std::move(label);
    p.run = [workload, cfg, req] {
        return wl::WorkloadRegistry::builtin().run(workload, cfg,
                                                   req);
    };
    return p;
}

ExperimentRunner::ExperimentRunner(int jobs)
    : nJobs(jobs <= 0 ? hostConcurrency() : jobs)
{
}

std::vector<wl::WorkloadResult>
ExperimentRunner::run(const std::vector<SweepPoint> &points) const
{
    std::vector<wl::WorkloadResult> results(points.size());
    std::vector<std::exception_ptr> errors(points.size());

    auto runPoint = [&](std::size_t i) {
        try {
            results[i] = points[i].run();
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    if (nJobs == 1 || points.size() <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i)
            runPoint(i);
    } else {
        const int threads = int(
            std::min<std::size_t>(std::size_t(nJobs), points.size()));
        // Bounded queue: huge sweeps are fed at the pool's pace
        // instead of materializing every pending closure up front.
        ThreadPool pool(threads, 4 * std::size_t(threads));
        for (std::size_t i = 0; i < points.size(); ++i)
            pool.submit([&runPoint, i] { runPoint(i); });
        pool.wait();
    }

    for (auto &e : errors)
        if (e)
            std::rethrow_exception(e);
    return results;
}

} // namespace capsule::harness
