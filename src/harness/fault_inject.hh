/**
 * @file
 * Deterministic, seeded fault injection for the simulation farm
 * (DESIGN.md §11). A FaultPlan is a small list of one-shot fault
 * operations, each naming a kind and a trigger index, parsed from a
 * compact spec string (`--fault-plan` on the farm CLIs) so a chaos
 * run is fully described by its command line and replays exactly.
 *
 * Two trigger domains:
 *
 *  - **worker faults** (`crash`, `hang`, `corrupt`, `truncate`,
 *    `short`, `stall`) trigger on a *point index*: the coordinator
 *    delivers
 *    the fault over the wire together with the dealt point, so it
 *    fires in whichever worker happens to hold that point and —
 *    because each operation is one-shot — the retry of the same
 *    point runs fault-free. That is what keeps merged output
 *    byte-identical to a fault-free campaign: faults perturb the
 *    schedule, never the (pure) per-point results.
 *  - **coordinator faults** (`tear-cache`, `tear-journal`, `die`)
 *    trigger on a *merge index*: the Nth merged result tears the
 *    just-published cache entry mid-payload, tears the journal
 *    append mid-line, or SIGKILLs the workers and _exit(3)s the
 *    coordinator (subsuming the former ad-hoc dieAfterMerges hook).
 *
 * Spec grammar (comma-separated, whitespace-free):
 *
 *     plan     := op (',' op)*
 *     op       := kind '@' index | 'rand:' seed ':' count
 *     kind     := crash | hang | corrupt | truncate | short | stall
 *               | tear-cache | tear-journal | die
 *
 * `rand:S:K` expands — deterministically from seed S via SplitMix64
 * once the campaign size is known (materialize()) — into K worker
 * faults at distinct points, drawing kinds from {crash, corrupt,
 * truncate, short}. `hang` and `stall` are never drawn randomly:
 * they only make sense with a finite point deadline, so they must be
 * placed explicitly.
 */

#ifndef CAPSULE_HARNESS_FAULT_INJECT_HH
#define CAPSULE_HARNESS_FAULT_INJECT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace capsule::harness
{

/** What a single fault operation does when it fires. */
enum class FaultKind : std::uint8_t
{
    None = 0,

    // Worker-side (delivered with a dealt point; one-shot).
    CrashWorker,   ///< worker raises SIGKILL instead of simulating
    HangWorker,    ///< worker blocks forever (deadline must reap it)
    CorruptFrame,  ///< response frame carries a bad payload checksum
    TruncateFrame, ///< header promises N payload bytes, EOF mid-way
    ShortFrame,    ///< header under-reports the payload length
    StallFrame,    ///< write half a header, then hang forever

    // Coordinator-side (fire when the merge count reaches index).
    TearCacheWrite,   ///< truncate the just-published cache entry
    TearJournalWrite, ///< tear the journal append mid-line
    DieCoordinator,   ///< SIGKILL workers, _exit(dieExitStatus)
};

/** True for kinds delivered to a worker with a dealt point. */
bool isWorkerFault(FaultKind kind);

/** Canonical spec name of `kind` ("crash", "tear-cache", ...). */
const char *faultKindName(FaultKind kind);

/**
 * A deterministic fault schedule: an ordered list of one-shot
 * operations. Copyable value type; FarmRunner consumes a private
 * copy per run so the same FarmOptions can be reused.
 */
class FaultPlan
{
  public:
    struct Op
    {
        FaultKind kind = FaultKind::None;
        std::uint64_t index = 0; ///< point or merge index (by kind)
        bool fired = false;
    };

    FaultPlan() = default;

    /**
     * Parse the spec grammar above.
     *  @throws std::invalid_argument naming the offending token
     */
    static FaultPlan parse(const std::string &spec);

    /** No operations at all (the fault-free fast path). */
    bool empty() const { return ops_.empty() && randCount_ == 0; }

    /** Canonical round-trippable spec of the plan as parsed
     *  (an unexpanded `rand:` keeps its compact form). */
    std::string spec() const;

    /**
     * Expand any `rand:` component over a campaign of `num_points`
     * points: `count` worker faults at distinct seeded point
     * indices. Idempotent; called by FarmRunner at run start.
     */
    void materialize(std::uint64_t num_points);

    /**
     * The worker fault to deliver with point `point_index`, or None.
     * One-shot: the matching operation is marked fired, so the
     * point's retry (after the fault killed a worker or poisoned a
     * frame) runs clean.
     */
    FaultKind takeWorkerFault(std::uint64_t point_index);

    /**
     * Every coordinator fault due at a total merge count of
     * `merge_count` (operations with index <= merge_count fire at
     * the first merge that reaches them; each at most once). A
     * DieCoordinator is always ordered last so same-index tears
     * land before the kill.
     */
    std::vector<FaultKind> takeCoordFaults(std::uint64_t merge_count);

    /** The operations (tests introspect; `fired` is live state). */
    const std::vector<Op> &ops() const { return ops_; }

  private:
    std::vector<Op> ops_;
    std::uint64_t randSeed_ = 0;
    std::uint64_t randCount_ = 0; ///< pending rand: expansion
};

/**
 * Truncate the file at `path` to `keep_num`/`keep_den` of its size —
 * the on-disk shape of a write torn by power loss after a rename
 * that was never fsynced. Returns false when the file is missing or
 * the resize fails (best-effort, like the fault it simulates).
 */
bool tearFileTail(const std::string &path, std::uint64_t keep_num = 1,
                  std::uint64_t keep_den = 2);

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_FAULT_INJECT_HH
