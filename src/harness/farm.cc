#include "harness/farm.hh"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "base/digest.hh"
#include "base/logging.hh"
#include "harness/thread_pool.hh"
#include "sim/exec_semantics.hh"

#ifdef __unix__
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#define CAPSULE_FARM_CAN_FORK 1
#else
#define CAPSULE_FARM_CAN_FORK 0
#endif

namespace capsule::harness
{

namespace wire
{

void
putU64(unsigned char out[u64Size], std::uint64_t v)
{
    for (std::size_t i = 0; i < u64Size; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
getU64(const unsigned char in[u64Size])
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < u64Size; ++i)
        v |= std::uint64_t(in[i]) << (8 * i);
    return v;
}

void
PointRequest::encode(unsigned char out[wireSize]) const
{
    putU64(out + 0 * u64Size, index);
    putU64(out + 1 * u64Size, fault);
}

PointRequest
PointRequest::decode(const unsigned char in[wireSize])
{
    PointRequest r;
    r.index = getU64(in + 0 * u64Size);
    r.fault = getU64(in + 1 * u64Size);
    return r;
}

void
FrameHeader::encode(unsigned char out[wireSize]) const
{
    putU64(out + 0 * u64Size, index);
    putU64(out + 1 * u64Size, status);
    putU64(out + 2 * u64Size, std::bit_cast<std::uint64_t>(cpuSeconds));
    putU64(out + 3 * u64Size, payloadLen);
}

FrameHeader
FrameHeader::decode(const unsigned char in[wireSize])
{
    FrameHeader h;
    h.index = getU64(in + 0 * u64Size);
    h.status = getU64(in + 1 * u64Size);
    h.cpuSeconds = std::bit_cast<double>(getU64(in + 2 * u64Size));
    h.payloadLen = getU64(in + 3 * u64Size);
    return h;
}

} // namespace wire

int
computePollTimeoutMs(double wake_at, double now)
{
    if (!std::isfinite(wake_at))
        return -1;
    return int(std::clamp(std::ceil((wake_at - now) * 1000.0), 0.0,
                          double(pollClampMs)));
}

void
FarmStats::fold(const FarmStats &other)
{
    points += other.points;
    computed += other.computed;
    cacheHits += other.cacheHits;
    cacheMisses += other.cacheMisses;
    cacheStores += other.cacheStores;
    corruptEvictions += other.corruptEvictions;
    lengthEvictions += other.lengthEvictions;
    sizeEvictions += other.sizeEvictions;
    journalSkips += other.journalSkips;
    journalWriteErrors += other.journalWriteErrors;
    timeouts += other.timeouts;
    respawns += other.respawns;
    framesRejected += other.framesRejected;
    pointRetries += other.pointRetries;
    quarantined += other.quarantined;
    workersUsed += other.workersUsed;
    wallSeconds += other.wallSeconds;
}

namespace
{

double
wallSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

double
threadCpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

/** Coordinator faults due at one merge (DESIGN.md §11). */
struct CoordFaults
{
    bool tearCache = false;
    bool tearJournal = false;
    bool die = false;
};

/**
 * The campaign journal: one line per completed point digest, flushed
 * to the kernel per append so a SIGKILLed coordinator loses at most
 * the in-flight points. `done` records a merged result, `quar` a
 * quarantined point — quarantine is sticky across resumes of the
 * same campaign (the killer is not re-run), while a fresh journal
 * (no resume flag) retries it. The header pins the campaign identity
 * and size; a resume against a journal written by a *different*
 * campaign (changed point matrix) starts fresh instead of
 * mis-skipping.
 */
class Journal
{
  public:
    Journal(std::string path, std::uint64_t campaign,
            std::uint64_t num_points)
        : path_(std::move(path)), campaign_(campaign),
          numPoints_(num_points)
    {
    }

    ~Journal()
    {
        if (f)
            std::fclose(f);
    }

    struct ResumeState
    {
        std::unordered_set<std::uint64_t> done;
        std::unordered_set<std::uint64_t> quarantined;
    };

    /** Resume mode: parse completed/quarantined digests (tolerating
     *  a torn final line), then reopen for appending. A missing or
     *  foreign-campaign journal yields empty sets and a fresh
     *  file. */
    ResumeState
    loadForResume()
    {
        ResumeState rs;
        bool valid = false;
        if (FILE *in = std::fopen(path_.c_str(), "r")) {
            char line[128];
            if (std::fgets(line, sizeof line, in) &&
                std::string(line) == header()) {
                valid = true;
                while (std::fgets(line, sizeof line, in)) {
                    std::string s(line);
                    std::uint64_t d = 0;
                    if (s.size() == 5 + 16 + 1 && s.back() == '\n' &&
                        parseHex16(s.substr(5, 16), d)) {
                        if (s.rfind("done ", 0) == 0)
                            rs.done.insert(d);
                        else if (s.rfind("quar ", 0) == 0)
                            rs.quarantined.insert(d);
                    }
                    // A torn or foreign line is simply not a
                    // record; the point recomputes.
                }
            }
            std::fclose(in);
        }
        if (valid) {
            f = std::fopen(path_.c_str(), "a");
        } else {
            rs = ResumeState{};
            startFresh();
        }
        return rs;
    }

    void
    startFresh()
    {
        f = std::fopen(path_.c_str(), "w");
        if (!f) {
            noteWriteError("open");
            return;
        }
        if (std::fputs(header().c_str(), f) < 0 ||
            std::fflush(f) != 0)
            noteWriteError("header write");
    }

    /** Journal appends that short-wrote or failed to flush — the
     *  checkpoint can no longer be trusted for --resume. */
    std::uint64_t
    writeErrors() const
    {
        return writeErrors_;
    }

    /** Record a merged point. `torn` (fault injection) writes only
     *  the first half of the line — the on-disk shape of an append
     *  cut down by a crash or power loss mid-write. */
    void
    append(std::uint64_t digest, bool torn = false)
    {
        record("done", digest, torn);
    }

    /** Record a quarantined point (sticky across resumes). */
    void
    appendQuarantine(std::uint64_t digest, bool torn = false)
    {
        record("quar", digest, torn);
    }

  private:
    void
    record(const char *tag, std::uint64_t digest, bool torn)
    {
        if (!f) {
            // The open already failed and warned; every record the
            // journal cannot hold is another unreliable checkpoint.
            ++writeErrors_;
            return;
        }
        std::string line =
            std::string(tag) + " " + toHex16(digest) + "\n";
        if (torn)
            line.resize(line.size() / 2);
        // A short write or failed flush would silently tear the
        // record: the campaign would "complete" with a checkpoint
        // that lies on --resume. Count it and warn once — results
        // stay correct either way (the journal is a progress record,
        // never a source of results).
        const bool wrote =
            std::fwrite(line.data(), 1, line.size(), f) ==
            line.size();
        const bool flushed = std::fflush(f) == 0;
        if (!wrote || !flushed)
            noteWriteError(wrote ? "flush" : "append");
    }

    void
    noteWriteError(const char *what)
    {
        ++writeErrors_;
        if (warned_)
            return;
        warned_ = true;
        std::fprintf(stderr,
                     "farm: journal %s failed for '%s' (%s): the "
                     "campaign checkpoint is unreliable; --resume "
                     "may recompute completed points\n",
                     what, path_.c_str(),
                     errno ? std::strerror(errno) : "short write");
    }

    std::string
    header() const
    {
        return "capsule-farm-journal-v2 " + toHex16(campaign_) + " " +
               std::to_string(numPoints_) + "\n";
    }

    std::string path_;
    std::uint64_t campaign_;
    std::uint64_t numPoints_;
    FILE *f = nullptr;
    std::uint64_t writeErrors_ = 0;
    bool warned_ = false;
};

#if CAPSULE_FARM_CAN_FORK

/** Coordinator-to-worker "no more points" sentinel. */
constexpr std::uint64_t shutdownIndex = ~std::uint64_t(0);

/** Largest response payload the coordinator will believe; anything
 *  bigger is protocol corruption, not a result. */
constexpr std::uint64_t maxFramePayload = std::uint64_t(1) << 30;

bool
readFull(int fd, void *buf, std::size_t len)
{
    auto *p = static_cast<unsigned char *>(buf);
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n > 0) {
            p += n;
            len -= std::size_t(n);
        } else if (n == 0) {
            return false; // EOF
        } else if (errno != EINTR) {
            return false;
        }
    }
    return true;
}

bool
writeFull(int fd, const void *buf, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(buf);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n >= 0) {
            p += n;
            len -= std::size_t(n);
        } else if (errno != EINTR) {
            return false;
        }
    }
    return true;
}

/**
 * Worker main loop: read a point request, simulate, answer with a
 * framed result, repeat until the shutdown sentinel or EOF. Workers
 * never touch the cache or the journal — the coordinator is the
 * single writer — so a worker crash can lose only its own point.
 *
 * Frame layout: the harness::wire encoding — every integer crosses
 * the pipe as explicit little-endian bytes, so the protocol is a
 * platform-independent pinned contract rather than an accident of
 * host endianness. [FrameHeader][payload bytes][FNV-1a of payload].
 * status 0 carries an encoded WorkloadResult, 1 an error message.
 *
 * A request may carry an injected fault (DESIGN.md §11): crash and
 * hang fire before simulating (the coordinator-visible effect — EOF
 * or silence — is the same, and the fault matrix stays fast); the
 * frame faults poison the response in three distinct ways so every
 * coordinator rejection path is reachable on demand.
 */
[[noreturn]] void
workerLoop(const std::vector<FarmPoint> &points, int req_fd,
           int resp_fd)
{
    for (;;) {
        unsigned char reqBytes[wire::PointRequest::wireSize];
        if (!readFull(req_fd, reqBytes, sizeof reqBytes))
            _exit(0);
        const wire::PointRequest req =
            wire::PointRequest::decode(reqBytes);
        if (req.index == shutdownIndex)
            _exit(0);
        if (req.index >= points.size())
            _exit(1);
        const auto fault = static_cast<FaultKind>(req.fault);

        if (fault == FaultKind::CrashWorker) {
            ::raise(SIGKILL);
            _exit(1); // NOT REACHED
        }
        if (fault == FaultKind::HangWorker) {
            for (;;)
                ::pause(); // the deadline reaper is the only way out
        }

        std::uint64_t status = 0;
        std::string payload;
        double c0 = threadCpuSeconds();
        try {
            payload = ResultCache::encode(points[req.index].run());
        } catch (const std::exception &e) {
            status = 1;
            payload = e.what();
        } catch (...) {
            status = 1;
            payload = "non-standard exception";
        }

        wire::FrameHeader h;
        h.index = req.index;
        h.status = status;
        h.cpuSeconds = threadCpuSeconds() - c0;
        h.payloadLen = payload.size();
        std::uint64_t check = fnv1aBytes(payload);

        std::size_t sendLen = payload.size();
        bool dieMidFrame = false;
        switch (fault) {
        case FaultKind::CorruptFrame:
            check ^= 1; // payload no longer checks out
            break;
        case FaultKind::TruncateFrame:
            sendLen = payload.size() / 2; // EOF mid-payload
            dieMidFrame = true;
            break;
        case FaultKind::ShortFrame:
            h.payloadLen = payload.size() / 2; // header lies short
            break;
        default:
            break;
        }

        unsigned char hdr[wire::FrameHeader::wireSize];
        h.encode(hdr);
        unsigned char checkBytes[wire::u64Size];
        wire::putU64(checkBytes, check);
        if (fault == FaultKind::StallFrame) {
            // The coordinator-stall reproducer: half a FrameHeader,
            // then silence. Only the per-point deadline can reap
            // this worker — a blocking header read never returns.
            writeFull(resp_fd, hdr, sizeof hdr / 2);
            for (;;)
                ::pause();
        }
        if (!writeFull(resp_fd, hdr, sizeof hdr) ||
            !writeFull(resp_fd, payload.data(), sendLen))
            _exit(1); // coordinator went away
        if (dieMidFrame)
            _exit(1); // the torn frame is the whole point
        if (!writeFull(resp_fd, checkBytes, sizeof checkBytes))
            _exit(1);
    }
}

/** One forked worker as the coordinator sees it. */
struct WorkerHandle
{
    pid_t pid = -1;
    int reqFd = -1;  ///< coordinator writes point requests here
    int respFd = -1; ///< coordinator reads result frames here
    std::int64_t inflight = -1; ///< dealt, not yet answered
    bool alive = false;
    /** Absolute wall deadline of the in-flight point (+inf when
     *  idle or deadlines are disabled). */
    double deadline = std::numeric_limits<double>::infinity();
    /** Bytes received but not yet parsed into a complete frame.
     *  respFd is non-blocking: the coordinator reads whatever is
     *  available and buffers it here, so a worker that writes half a
     *  header (or half a payload) and hangs parks its bytes in this
     *  buffer until the frame completes or the point deadline reaps
     *  the worker — it can never stall the merge loop in a blocking
     *  read. */
    std::string rx;
};

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        CAPSULE_FATAL("farm: fcntl(O_NONBLOCK) failed: ",
                      std::strerror(errno));
}

/**
 * Drain a worker's (non-blocking) response pipe into its frame
 * buffer. Returns false when the worker is gone — EOF or a hard read
 * error — true when the pipe is merely empty for now (EAGAIN).
 */
bool
drainWorker(WorkerHandle &w)
{
    for (;;) {
        unsigned char buf[1 << 16];
        ssize_t n = ::read(w.respFd, buf, sizeof buf);
        if (n > 0) {
            w.rx.append(reinterpret_cast<const char *>(buf),
                        std::size_t(n));
            continue;
        }
        if (n == 0)
            return false; // EOF
        if (errno == EINTR)
            continue;
        return errno == EAGAIN || errno == EWOULDBLOCK;
    }
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
reapWorker(WorkerHandle &w, bool force_kill)
{
    if (!w.alive)
        return;
    closeFd(w.reqFd);
    closeFd(w.respFd);
    if (force_kill)
        ::kill(w.pid, SIGKILL);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.alive = false;
}

#endif // CAPSULE_FARM_CAN_FORK

} // namespace

FarmPoint
registryFarmPoint(const std::string &workload,
                  const sim::MachineConfig &cfg,
                  const wl::WorkloadRequest &req, std::string label)
{
    FarmPoint p;
    p.label = label.empty()
                  ? workload + "/" + cfg.name + "/seed" +
                        std::to_string(req.seed)
                  : std::move(label);
    p.cacheable = true;
    p.key.programDigest =
        Digest().str("capsule-registry-workload-v1").str(workload)
            .value();
    p.key.configDigest = cfg.digest();
    p.key.scale = wl::scaleLevelName(req.scale);
    p.key.seed = req.seed;
    p.key.semanticsHash = sim::semanticsTableHash();
    p.run = [workload, cfg, req] {
        return wl::WorkloadRegistry::builtin().run(workload, cfg,
                                                   req);
    };
    return p;
}

FarmRunner::FarmRunner(FarmOptions options) : opts(std::move(options))
{
}

std::uint64_t
FarmRunner::campaignDigest(const std::vector<FarmPoint> &points)
{
    Digest d;
    d.str("capsule-farm-campaign-v1");
    d.u64(points.size());
    for (const auto &p : points) {
        d.str(p.label);
        d.u64(p.cacheable ? 1 : 0);
        d.u64(p.cacheable ? p.key.digest() : 0);
    }
    return d.value();
}

wl::WorkloadResult
FarmRunner::quarantinedResult(const FarmPoint &p)
{
    wl::WorkloadResult r;
    r.workload = p.label;
    r.correct = false;
    r.setMetric("quarantined", 1.0);
    return r;
}

std::vector<wl::WorkloadResult>
FarmRunner::run(const std::vector<FarmPoint> &points)
{
    const double w0 = wallSeconds();
    const std::size_t n = points.size();
    st = FarmStats{};
    st.points = n;

    std::vector<wl::WorkloadResult> results(n);
    std::vector<std::string> errors(n);
    /** Fatal worker failures (death, hang) charged per point. */
    std::vector<std::uint64_t> deaths(n, 0);
    const std::uint64_t maxRetries =
        std::uint64_t(std::max(1, opts.maxPointRetries));

    // A private copy: fault operations are one-shot live state.
    FaultPlan plan = opts.faultPlan;
    plan.materialize(n);

    std::unique_ptr<ResultCache> cache;
    std::unique_ptr<Journal> journal;
    Journal::ResumeState journaled;
    if (!opts.cacheDir.empty()) {
        cache = std::make_unique<ResultCache>(opts.cacheDir,
                                              opts.cacheMaxBytes);
        if (opts.journal) {
            journal = std::make_unique<Journal>(
                opts.cacheDir + "/campaign-" +
                    toHex16(campaignDigest(points)) + ".journal",
                campaignDigest(points), n);
            if (opts.resume)
                journaled = journal->loadForResume();
            else
                journal->startFresh();
        }
    }

    std::uint64_t merges = 0;
    // Set on the forked path so an injected `die` takes the workers
    // with it, exactly as the resume tests' real SIGKILL would.
    std::function<void()> workerKiller;

    auto dieNow = [&] {
        if (workerKiller)
            workerKiller();
        _exit(FarmOptions::dieExitStatus);
    };

    // Count one merge and collect the coordinator faults due at it
    // (tear-cache / tear-journal / die). Every merge site calls this
    // exactly once; the caller applies the tears to ITS merge's
    // cache/journal writes and executes die last.
    auto nextMergeFaults = [&] {
        CoordFaults cf;
        ++merges;
        if (!plan.empty()) {
            for (FaultKind f : plan.takeCoordFaults(merges)) {
                cf.tearCache |= f == FaultKind::TearCacheWrite;
                cf.tearJournal |= f == FaultKind::TearJournalWrite;
                cf.die |= f == FaultKind::DieCoordinator;
            }
        }
        return cf;
    };

    // In-order streaming (FarmOptions::onResult): a merged point is
    // emitted as soon as it and every earlier point have merged, so
    // a daemon client sees results in submission order while later
    // points are still computing. Errored points advance the cursor
    // without emitting (the run throws for them at the end).
    std::vector<unsigned char> merged(n, 0); // 0 empty, 1 ok, 2 error
    std::size_t emitNext = 0;
    auto noteFilled = [&](std::size_t i, bool ok) {
        merged[i] = ok ? 1 : 2;
        if (!opts.onResult)
            return;
        while (emitNext < n && merged[emitNext] != 0) {
            if (merged[emitNext] == 1)
                opts.onResult(emitNext, results[emitNext]);
            ++emitNext;
        }
    };

    /** Fence a poison point: placeholder result, sticky journal
     *  record, loud stderr line. Callers adjust `outstanding`. */
    auto quarantinePoint = [&](std::size_t i, const char *why) {
        results[i] = quarantinedResult(points[i]);
        ++st.quarantined;
        st.quarantinedPoints.push_back(i);
        noteFilled(i, true);
        std::fprintf(stderr, "farm: point '%s' quarantined (%s)\n",
                     points[i].label.c_str(), why);
        auto cf = nextMergeFaults();
        if (journal && points[i].cacheable)
            journal->appendQuarantine(points[i].key.digest(),
                                      cf.tearJournal);
        if (cf.die)
            dieNow();
    };

    // Phase 1 — resolve: satisfy cacheable points from the cache
    // (journal-recorded points on a resume count as skips; journal-
    // quarantined points stay fenced), queue the rest.
    std::deque<std::uint64_t> pending;
    for (std::size_t i = 0; i < n; ++i) {
        const FarmPoint &p = points[i];
        bool filled = false;
        if (cache && p.cacheable) {
            const std::uint64_t kd = p.key.digest();
            if (journaled.quarantined.count(kd)) {
                results[i] = quarantinedResult(p);
                ++st.quarantined;
                st.quarantinedPoints.push_back(i);
                filled = true;
                noteFilled(i, true);
                auto cf = nextMergeFaults();
                if (cf.die)
                    dieNow();
            } else if (auto r = cache->load(p.key)) {
                results[i] = std::move(*r);
                filled = true;
                noteFilled(i, true);
                auto cf = nextMergeFaults();
                if (journaled.done.count(kd))
                    ++st.journalSkips;
                else if (journal)
                    journal->append(kd, cf.tearJournal);
                if (cf.tearCache)
                    tearFileTail(cache->entryPath(p.key));
                if (cf.die)
                    dieNow();
            }
            // A journaled point whose entry vanished or failed
            // validation falls through and recomputes: the journal
            // is a progress record, never a source of results.
        }
        if (!filled)
            pending.push_back(i);
    }
    st.computed = pending.size();

    auto completeComputed = [&](std::size_t i,
                                wl::WorkloadResult result) {
        results[i] = std::move(result);
        noteFilled(i, true);
        auto cf = nextMergeFaults();
        if (cache && points[i].cacheable) {
            cache->store(points[i].key, results[i]);
            if (cf.tearCache)
                tearFileTail(cache->entryPath(points[i].key));
            if (journal)
                journal->append(points[i].key.digest(),
                                cf.tearJournal);
        }
        if (cf.die)
            dieNow();
    };

    auto failMerge = [&](std::size_t i, std::string what) {
        errors[i] = std::move(what);
        noteFilled(i, false);
        auto cf = nextMergeFaults();
        if (cf.die)
            dieNow();
    };

    auto runInline = [&](std::size_t i) {
        try {
            completeComputed(i, points[i].run());
        } catch (const std::exception &e) {
            failMerge(i, e.what());
        } catch (...) {
            failMerge(i, "non-standard exception");
        }
    };

    const int workersRequested =
        opts.workers <= 0 ? hostConcurrency() : opts.workers;
    int workers = int(std::min<std::size_t>(
        std::size_t(std::max(1, workersRequested)),
        std::max<std::size_t>(1, pending.size())));

#if CAPSULE_FARM_CAN_FORK
    // Fork whenever multi-process operation was requested, even for a
    // single pending point: process isolation is what lets a poison
    // point be quarantined instead of taking the coordinator down.
    const bool forked = workersRequested > 1 && !pending.empty();
#else
    const bool forked = false;
#endif

    if (!forked) {
        // Inline path: worker faults have no process to kill and are
        // ignored; coordinator faults (tear-*/die) fire normally.
        while (!pending.empty()) {
            std::size_t i = pending.front();
            pending.pop_front();
            runInline(i);
        }
    }
#if CAPSULE_FARM_CAN_FORK
    else {
        // Phase 2 — shard: fork the workers, deal one point at a
        // time (self-balancing), merge frames as they arrive, and
        // supervise (DESIGN.md §11): deadline-reap hung workers,
        // respawn dead ones under the backoff budget, quarantine
        // points that keep killing their workers.
        st.workersUsed = workers;

        // A worker that died mid-write must surface as a requeue,
        // not kill the coordinator with SIGPIPE.
        struct sigaction ign{}, oldPipe{};
        ign.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ign, &oldPipe);

        std::vector<WorkerHandle> ws;
        ws.reserve(std::size_t(workers) +
                   std::size_t(std::max(0, opts.maxWorkerRestarts)));
        workerKiller = [&ws] {
            for (auto &w : ws)
                if (w.alive)
                    ::kill(w.pid, SIGKILL);
        };

        auto spawnWorker = [&]() -> WorkerHandle & {
            int req[2], resp[2];
            if (::pipe(req) != 0 || ::pipe(resp) != 0)
                CAPSULE_FATAL("farm: pipe() failed: ",
                              std::strerror(errno));
            pid_t pid = ::fork();
            if (pid < 0)
                CAPSULE_FATAL("farm: fork() failed: ",
                              std::strerror(errno));
            if (pid == 0) {
                // Worker: keep only its own two pipe ends.
                ::close(req[1]);
                ::close(resp[0]);
                for (auto &other : ws) {
                    if (other.alive) {
                        ::close(other.reqFd);
                        ::close(other.respFd);
                    }
                }
                workerLoop(points, req[0], resp[1]);
            }
            ::close(req[0]);
            ::close(resp[1]);
            // The response pipe is read non-blocking: a worker that
            // writes a partial frame and stalls parks its bytes in
            // the handle's rx buffer instead of hanging readFull().
            setNonBlocking(resp[0]);
            ws.push_back(WorkerHandle{pid, req[1], resp[0], -1, true,
                                      std::numeric_limits<
                                          double>::infinity(),
                                      {}});
            st.perWorkerPoints.push_back(0);
            st.perWorkerCpuSeconds.push_back(0.0);
            return ws.back();
        };

        std::size_t outstanding = pending.size();

        /** A worker failed fatally (EOF, poisoned frame, deadline):
         *  SIGKILL + reap it, charge its in-flight point a death,
         *  then requeue or quarantine that point. */
        auto onWorkerFailure = [&](WorkerHandle &w, bool timed_out) {
            const std::int64_t idx = w.inflight;
            w.inflight = -1;
            reapWorker(w, true);
            if (timed_out)
                ++st.timeouts;
            if (!w.rx.empty()) {
                // An abandoned partial frame (half a header at the
                // deadline, a payload cut by a death) is a rejected
                // frame, not just a dead worker.
                ++st.framesRejected;
                w.rx.clear();
            }
            if (idx < 0)
                return;
            const std::size_t i = std::size_t(idx);
            ++deaths[i];
            if (deaths[i] >= maxRetries) {
                quarantinePoint(i, timed_out
                                       ? "hung its workers too often"
                                       : "killed its workers too "
                                         "often");
                --outstanding;
            } else {
                ++st.pointRetries;
                pending.push_front(i);
            }
        };

        auto deal = [&](WorkerHandle &w) {
            while (w.alive && w.inflight < 0 && !pending.empty()) {
                const std::uint64_t idx = pending.front();
                wire::PointRequest req;
                req.index = idx;
                // One-shot delivery: consumed here, so the retry
                // after this fault fells a worker is dealt clean.
                req.fault =
                    std::uint64_t(plan.takeWorkerFault(idx));
                unsigned char bytes[wire::PointRequest::wireSize];
                req.encode(bytes);
                if (writeFull(w.reqFd, bytes, sizeof bytes)) {
                    pending.pop_front();
                    w.inflight = std::int64_t(idx);
                    w.deadline =
                        opts.pointTimeoutSeconds > 0
                            ? wallSeconds() +
                                  opts.pointTimeoutSeconds
                            : std::numeric_limits<
                                  double>::infinity();
                } else {
                    // Died before taking the point; the point was
                    // never attempted, so no death is charged.
                    onWorkerFailure(w, false);
                    return;
                }
            }
        };

        for (int w = 0; w < workers; ++w)
            spawnWorker();
        for (auto &w : ws)
            deal(w);

        const int respawnBudget = std::max(0, opts.maxWorkerRestarts);
        int respawnsUsed = 0;
        double nextRespawnAt = 0.0;

        while (outstanding > 0) {
            double now = wallSeconds();
            int liveCount = 0;
            for (const auto &w : ws)
                liveCount += w.alive ? 1 : 0;

            // Supervision: replace dead workers while queued work,
            // budget and backoff allow.
            const bool respawnWanted = liveCount < workers &&
                                       !pending.empty() &&
                                       respawnsUsed < respawnBudget;
            if (respawnWanted && now >= nextRespawnAt) {
                ++respawnsUsed;
                ++st.respawns;
                // Exponential backoff before the *next* respawn.
                nextRespawnAt =
                    now + double(opts.respawnBackoffMs) *
                              double(1u << std::min(respawnsUsed - 1,
                                                    10)) *
                              1e-3;
                deal(spawnWorker());
                continue; // re-evaluate with the new worker seated
            }

            if (liveCount == 0) {
                if (respawnWanted) {
                    // Waiting out the backoff with nothing to poll.
                    const double waitS = std::min(
                        std::max(0.0, nextRespawnAt - now), 0.05);
                    timespec ts{};
                    ts.tv_nsec = long(waitS * 1e9);
                    ::nanosleep(&ts, nullptr);
                    continue;
                }
                // Graceful degradation: no workers, no budget. The
                // serial killers are already quarantined (they
                // reached maxRetries in workers); drain what is
                // left inline, and never inline-retry a point that
                // died with a worker more than once.
                std::fprintf(
                    stderr,
                    "farm: no live workers and the restart budget "
                    "(%d) is exhausted; draining %zu point(s) "
                    "inline\n",
                    respawnBudget, pending.size());
                while (!pending.empty()) {
                    std::size_t i = std::size_t(pending.front());
                    pending.pop_front();
                    if (deaths[i] <= 1)
                        runInline(i);
                    else
                        quarantinePoint(i,
                                        "died with too many workers "
                                        "to risk an inline retry");
                    --outstanding;
                }
                break;
            }

            // Any idle worker picks up requeued work.
            for (auto &w : ws)
                deal(w);

            std::vector<pollfd> fds;
            std::vector<std::size_t> fdWorker;
            for (std::size_t w = 0; w < ws.size(); ++w) {
                if (ws[w].alive && ws[w].respFd >= 0) {
                    fds.push_back(
                        pollfd{ws[w].respFd, POLLIN, 0});
                    fdWorker.push_back(w);
                }
            }
            if (fds.empty())
                continue; // everyone died in deal(); re-evaluate

            // The poll timeout comes from the earliest outstanding
            // point deadline (and a pending respawn's due time) —
            // never an unconditional -1, so one hung worker can no
            // longer stall the campaign forever.
            double wakeAt = std::numeric_limits<double>::infinity();
            for (const auto &w : ws)
                if (w.alive && w.inflight >= 0)
                    wakeAt = std::min(wakeAt, w.deadline);
            if (respawnWanted)
                wakeAt = std::min(wakeAt, nextRespawnAt);
            const int timeoutMs =
                computePollTimeoutMs(wakeAt, wallSeconds());
            int rc =
                ::poll(fds.data(), nfds_t(fds.size()), timeoutMs);
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                CAPSULE_FATAL("farm: poll() failed: ",
                              std::strerror(errno));
            }

            for (std::size_t k = 0; rc > 0 && k < fds.size(); ++k) {
                if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                WorkerHandle &w = ws[fdWorker[k]];
                if (!w.alive)
                    continue;

                // Never block on a worker fd: drain whatever is
                // available into the per-worker buffer, then parse
                // complete frames out of it. A worker that writes a
                // partial header (or payload) and hangs leaves its
                // deadline armed, so the sweep below reaps it — the
                // coordinator no longer stalls past --point-timeout.
                const bool open = drainWorker(w);
                bool protocolError = false;
                while (w.alive && w.inflight >= 0 &&
                       w.rx.size() >= wire::FrameHeader::wireSize) {
                    const wire::FrameHeader hdr =
                        wire::FrameHeader::decode(
                            reinterpret_cast<const unsigned char *>(
                                w.rx.data()));
                    if (hdr.index != std::uint64_t(w.inflight) ||
                        hdr.payloadLen > maxFramePayload) {
                        ++st.framesRejected; // protocol corruption
                        protocolError = true;
                        break;
                    }
                    const std::size_t frameLen =
                        wire::FrameHeader::wireSize +
                        std::size_t(hdr.payloadLen) + wire::u64Size;
                    if (w.rx.size() < frameLen)
                        break; // partial frame: deadline stays armed
                    std::string payload = w.rx.substr(
                        wire::FrameHeader::wireSize,
                        std::size_t(hdr.payloadLen));
                    const std::uint64_t check = wire::getU64(
                        reinterpret_cast<const unsigned char *>(
                            w.rx.data()) +
                        wire::FrameHeader::wireSize +
                        std::size_t(hdr.payloadLen));
                    w.rx.erase(0, frameLen);
                    if (fnv1aBytes(payload) != check) {
                        ++st.framesRejected; // poisoned frame
                        protocolError = true;
                        break;
                    }

                    w.inflight = -1;
                    w.deadline =
                        std::numeric_limits<double>::infinity();
                    st.perWorkerPoints[fdWorker[k]] += 1;
                    st.perWorkerCpuSeconds[fdWorker[k]] +=
                        hdr.cpuSeconds;

                    if (hdr.status == 0) {
                        auto decoded = ResultCache::decode(payload);
                        if (decoded) {
                            completeComputed(std::size_t(hdr.index),
                                             std::move(*decoded));
                        } else {
                            failMerge(std::size_t(hdr.index),
                                      "worker returned an undecodable "
                                      "result frame");
                        }
                    } else {
                        failMerge(std::size_t(hdr.index), payload);
                    }
                    --outstanding;
                    deal(w);
                }
                if (protocolError) {
                    onWorkerFailure(w, false);
                    continue;
                }
                if (w.alive && w.inflight < 0 && !w.rx.empty()) {
                    // Bytes past the final expected frame — the
                    // worker is talking out of turn.
                    ++st.framesRejected;
                    onWorkerFailure(w, false);
                    continue;
                }
                if (!open && w.alive)
                    onWorkerFailure(w, false); // EOF: died silently
            }

            // Deadline enforcement — after the frame sweep, so a
            // result that raced its deadline in still counts.
            now = wallSeconds();
            for (auto &w : ws)
                if (w.alive && w.inflight >= 0 && w.deadline <= now)
                    onWorkerFailure(w, true);
        }

        for (auto &w : ws)
            reapWorker(w, false);
        workerKiller = nullptr;
        ::sigaction(SIGPIPE, &oldPipe, nullptr);
    }
#endif // CAPSULE_FARM_CAN_FORK

    if (cache) {
        auto c = cache->counters();
        st.cacheHits = c.hits;
        st.cacheMisses = c.misses;
        st.cacheStores = c.stores;
        st.corruptEvictions = c.corruptEvictions;
        st.lengthEvictions = c.lengthEvictions;
        st.sizeEvictions = c.sizeEvictions;
    }
    if (journal)
        st.journalWriteErrors = journal->writeErrors();
    std::sort(st.quarantinedPoints.begin(),
              st.quarantinedPoints.end());
    st.wallSeconds = wallSeconds() - w0;

    for (std::size_t i = 0; i < n; ++i) {
        if (!errors[i].empty())
            throw std::runtime_error("farm point '" + points[i].label +
                                     "' failed: " + errors[i]);
    }
    return results;
}

} // namespace capsule::harness
