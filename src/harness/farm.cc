#include "harness/farm.hh"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <deque>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "base/digest.hh"
#include "base/logging.hh"
#include "harness/thread_pool.hh"
#include "sim/exec_semantics.hh"

#ifdef __unix__
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#define CAPSULE_FARM_CAN_FORK 1
#else
#define CAPSULE_FARM_CAN_FORK 0
#endif

namespace capsule::harness
{

namespace wire
{

void
putU64(unsigned char out[u64Size], std::uint64_t v)
{
    for (std::size_t i = 0; i < u64Size; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
getU64(const unsigned char in[u64Size])
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < u64Size; ++i)
        v |= std::uint64_t(in[i]) << (8 * i);
    return v;
}

void
FrameHeader::encode(unsigned char out[wireSize]) const
{
    putU64(out + 0 * u64Size, index);
    putU64(out + 1 * u64Size, status);
    putU64(out + 2 * u64Size, std::bit_cast<std::uint64_t>(cpuSeconds));
    putU64(out + 3 * u64Size, payloadLen);
}

FrameHeader
FrameHeader::decode(const unsigned char in[wireSize])
{
    FrameHeader h;
    h.index = getU64(in + 0 * u64Size);
    h.status = getU64(in + 1 * u64Size);
    h.cpuSeconds = std::bit_cast<double>(getU64(in + 2 * u64Size));
    h.payloadLen = getU64(in + 3 * u64Size);
    return h;
}

} // namespace wire

namespace
{

double
wallSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

double
threadCpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

/**
 * The campaign journal: one line per completed point digest, flushed
 * to the kernel per append so a SIGKILLed coordinator loses at most
 * the in-flight points. The header pins the campaign identity and
 * size; a resume against a journal written by a *different* campaign
 * (changed point matrix) starts fresh instead of mis-skipping.
 */
class Journal
{
  public:
    Journal(std::string path, std::uint64_t campaign,
            std::uint64_t num_points)
        : path_(std::move(path)), campaign_(campaign),
          numPoints_(num_points)
    {
    }

    ~Journal()
    {
        if (f)
            std::fclose(f);
    }

    /** Resume mode: parse completed digests (tolerating a torn final
     *  line), then reopen for appending. A missing or foreign-
     *  campaign journal yields an empty set and a fresh file. */
    std::unordered_set<std::uint64_t>
    loadForResume()
    {
        std::unordered_set<std::uint64_t> done;
        bool valid = false;
        if (FILE *in = std::fopen(path_.c_str(), "r")) {
            char line[128];
            if (std::fgets(line, sizeof line, in) &&
                std::string(line) == header()) {
                valid = true;
                while (std::fgets(line, sizeof line, in)) {
                    std::string s(line);
                    std::uint64_t d = 0;
                    if (s.size() == 5 + 16 + 1 &&
                        s.rfind("done ", 0) == 0 && s.back() == '\n' &&
                        parseHex16(s.substr(5, 16), d))
                        done.insert(d);
                    // A torn or foreign line is simply not a
                    // completion record; the point recomputes.
                }
            }
            std::fclose(in);
        }
        if (valid) {
            f = std::fopen(path_.c_str(), "a");
        } else {
            done.clear();
            startFresh();
        }
        return done;
    }

    void
    startFresh()
    {
        f = std::fopen(path_.c_str(), "w");
        if (f) {
            std::fputs(header().c_str(), f);
            std::fflush(f);
        }
    }

    void
    append(std::uint64_t digest)
    {
        if (!f)
            return;
        std::fprintf(f, "done %s\n", toHex16(digest).c_str());
        std::fflush(f);
    }

  private:
    std::string
    header() const
    {
        return "capsule-farm-journal-v1 " + toHex16(campaign_) + " " +
               std::to_string(numPoints_) + "\n";
    }

    std::string path_;
    std::uint64_t campaign_;
    std::uint64_t numPoints_;
    FILE *f = nullptr;
};

#if CAPSULE_FARM_CAN_FORK

/** Coordinator-to-worker "no more points" sentinel. */
constexpr std::uint64_t shutdownIndex = ~std::uint64_t(0);

/** Largest response payload the coordinator will believe; anything
 *  bigger is protocol corruption, not a result. */
constexpr std::uint64_t maxFramePayload = std::uint64_t(1) << 30;

bool
readFull(int fd, void *buf, std::size_t len)
{
    auto *p = static_cast<unsigned char *>(buf);
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n > 0) {
            p += n;
            len -= std::size_t(n);
        } else if (n == 0) {
            return false; // EOF
        } else if (errno != EINTR) {
            return false;
        }
    }
    return true;
}

bool
writeFull(int fd, const void *buf, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(buf);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n >= 0) {
            p += n;
            len -= std::size_t(n);
        } else if (errno != EINTR) {
            return false;
        }
    }
    return true;
}

/**
 * Worker main loop: read a point index, simulate, answer with a
 * framed result, repeat until the shutdown sentinel or EOF. Workers
 * never touch the cache or the journal — the coordinator is the
 * single writer — so a worker crash can lose only its own point.
 *
 * Frame layout: the harness::wire encoding — every integer crosses
 * the pipe as explicit little-endian bytes, so the protocol is a
 * platform-independent pinned contract rather than an accident of
 * host endianness. [FrameHeader][payload bytes][FNV-1a of payload].
 * status 0 carries an encoded WorkloadResult, 1 an error message.
 */
[[noreturn]] void
workerLoop(const std::vector<FarmPoint> &points, int req_fd,
           int resp_fd)
{
    for (;;) {
        unsigned char idxBytes[wire::u64Size];
        if (!readFull(req_fd, idxBytes, sizeof idxBytes))
            _exit(0);
        const std::uint64_t idx = wire::getU64(idxBytes);
        if (idx == shutdownIndex)
            _exit(0);
        if (idx >= points.size())
            _exit(1);

        std::uint64_t status = 0;
        std::string payload;
        double c0 = threadCpuSeconds();
        try {
            payload = ResultCache::encode(points[idx].run());
        } catch (const std::exception &e) {
            status = 1;
            payload = e.what();
        } catch (...) {
            status = 1;
            payload = "non-standard exception";
        }

        wire::FrameHeader h;
        h.index = idx;
        h.status = status;
        h.cpuSeconds = threadCpuSeconds() - c0;
        h.payloadLen = payload.size();
        unsigned char hdr[wire::FrameHeader::wireSize];
        h.encode(hdr);
        unsigned char check[wire::u64Size];
        wire::putU64(check, fnv1aBytes(payload));
        if (!writeFull(resp_fd, hdr, sizeof hdr) ||
            !writeFull(resp_fd, payload.data(), payload.size()) ||
            !writeFull(resp_fd, check, sizeof check))
            _exit(1); // coordinator went away
    }
}

/** One forked worker as the coordinator sees it. */
struct WorkerHandle
{
    pid_t pid = -1;
    int reqFd = -1;  ///< coordinator writes point indices here
    int respFd = -1; ///< coordinator reads result frames here
    std::int64_t inflight = -1; ///< dealt, not yet answered
    bool alive = false;
};

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
reapWorker(WorkerHandle &w, bool force_kill)
{
    if (!w.alive)
        return;
    closeFd(w.reqFd);
    closeFd(w.respFd);
    if (force_kill)
        ::kill(w.pid, SIGKILL);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.alive = false;
}

#endif // CAPSULE_FARM_CAN_FORK

} // namespace

FarmPoint
registryFarmPoint(const std::string &workload,
                  const sim::MachineConfig &cfg,
                  const wl::WorkloadRequest &req, std::string label)
{
    FarmPoint p;
    p.label = label.empty()
                  ? workload + "/" + cfg.name + "/seed" +
                        std::to_string(req.seed)
                  : std::move(label);
    p.cacheable = true;
    p.key.programDigest =
        Digest().str("capsule-registry-workload-v1").str(workload)
            .value();
    p.key.configDigest = cfg.digest();
    p.key.scale = wl::scaleLevelName(req.scale);
    p.key.seed = req.seed;
    p.key.semanticsHash = sim::semanticsTableHash();
    p.run = [workload, cfg, req] {
        return wl::WorkloadRegistry::builtin().run(workload, cfg,
                                                   req);
    };
    return p;
}

FarmRunner::FarmRunner(FarmOptions options) : opts(std::move(options))
{
}

std::uint64_t
FarmRunner::campaignDigest(const std::vector<FarmPoint> &points)
{
    Digest d;
    d.str("capsule-farm-campaign-v1");
    d.u64(points.size());
    for (const auto &p : points) {
        d.str(p.label);
        d.u64(p.cacheable ? 1 : 0);
        d.u64(p.cacheable ? p.key.digest() : 0);
    }
    return d.value();
}

std::vector<wl::WorkloadResult>
FarmRunner::run(const std::vector<FarmPoint> &points)
{
    const double w0 = wallSeconds();
    const std::size_t n = points.size();
    st = FarmStats{};
    st.points = n;

    std::vector<wl::WorkloadResult> results(n);
    std::vector<std::string> errors(n);

    std::unique_ptr<ResultCache> cache;
    std::unique_ptr<Journal> journal;
    std::unordered_set<std::uint64_t> journaled;
    if (!opts.cacheDir.empty()) {
        cache = std::make_unique<ResultCache>(opts.cacheDir,
                                              opts.cacheMaxBytes);
        journal = std::make_unique<Journal>(
            opts.cacheDir + "/campaign-" +
                toHex16(campaignDigest(points)) + ".journal",
            campaignDigest(points), n);
        if (opts.resume)
            journaled = journal->loadForResume();
        else
            journal->startFresh();
    }

    std::uint64_t merges = 0;
    // The mid-flight-kill hook (see FarmOptions::dieAfterMerges).
    // Deliberately abrupt: the journal is flushed per merge, so
    // _exit here leaves exactly the on-disk state a real SIGKILL
    // would, which the resume tests then recover from.
    auto maybeDie = [&](std::function<void()> kill_workers) {
        if (opts.dieAfterMerges >= 0 &&
            merges >= std::uint64_t(opts.dieAfterMerges)) {
            if (kill_workers)
                kill_workers();
            _exit(FarmOptions::dieExitStatus);
        }
    };

    // Phase 1 — resolve: satisfy cacheable points from the cache
    // (journal-recorded points on a resume count as skips), queue
    // the rest for computation.
    std::deque<std::uint64_t> pending;
    for (std::size_t i = 0; i < n; ++i) {
        const FarmPoint &p = points[i];
        bool filled = false;
        if (cache && p.cacheable) {
            const std::uint64_t kd = p.key.digest();
            if (auto r = cache->load(p.key)) {
                results[i] = std::move(*r);
                filled = true;
                if (journaled.count(kd))
                    ++st.journalSkips;
                else if (journal)
                    journal->append(kd);
                ++merges;
                maybeDie(nullptr);
            }
            // A journaled point whose entry vanished or failed
            // validation falls through and recomputes: the journal
            // is a progress record, never a source of results.
        }
        if (!filled)
            pending.push_back(i);
    }
    st.computed = pending.size();

    auto completeComputed = [&](std::size_t i,
                                wl::WorkloadResult result) {
        results[i] = std::move(result);
        if (cache && points[i].cacheable) {
            cache->store(points[i].key, results[i]);
            if (journal)
                journal->append(points[i].key.digest());
        }
        ++merges;
    };

    auto runInline = [&](std::size_t i) {
        try {
            completeComputed(i, points[i].run());
        } catch (const std::exception &e) {
            errors[i] = e.what();
            ++merges;
        } catch (...) {
            errors[i] = "non-standard exception";
            ++merges;
        }
        maybeDie(nullptr);
    };

    int workers = opts.workers <= 0 ? hostConcurrency() : opts.workers;
    workers = int(std::min<std::size_t>(
        std::size_t(std::max(1, workers)),
        std::max<std::size_t>(1, pending.size())));

#if CAPSULE_FARM_CAN_FORK
    const bool forked = workers > 1 && pending.size() > 1;
#else
    const bool forked = false;
#endif

    if (!forked) {
        while (!pending.empty()) {
            std::size_t i = pending.front();
            pending.pop_front();
            runInline(i);
        }
    }
#if CAPSULE_FARM_CAN_FORK
    else {
        // Phase 2 — shard: fork the workers, deal one point at a
        // time (self-balancing), merge frames as they arrive.
        st.workersUsed = workers;
        st.perWorkerPoints.assign(std::size_t(workers), 0);
        st.perWorkerCpuSeconds.assign(std::size_t(workers), 0.0);

        // A worker that died mid-write must surface as a requeue,
        // not kill the coordinator with SIGPIPE.
        struct sigaction ign{}, oldPipe{};
        ign.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ign, &oldPipe);

        std::vector<WorkerHandle> ws;
        ws.resize(std::size_t(workers));
        for (int w = 0; w < workers; ++w) {
            int req[2], resp[2];
            if (::pipe(req) != 0 || ::pipe(resp) != 0)
                CAPSULE_FATAL("farm: pipe() failed: ",
                              std::strerror(errno));
            pid_t pid = ::fork();
            if (pid < 0)
                CAPSULE_FATAL("farm: fork() failed: ",
                              std::strerror(errno));
            if (pid == 0) {
                // Worker: keep only its own two pipe ends.
                ::close(req[1]);
                ::close(resp[0]);
                for (auto &other : ws) {
                    if (other.alive) {
                        ::close(other.reqFd);
                        ::close(other.respFd);
                    }
                }
                workerLoop(points, req[0], resp[1]);
            }
            ::close(req[0]);
            ::close(resp[1]);
            ws[std::size_t(w)] =
                WorkerHandle{pid, req[1], resp[0], -1, true};
        }

        std::size_t outstanding = pending.size();

        auto deal = [&](WorkerHandle &w) {
            while (w.alive && w.inflight < 0) {
                if (pending.empty()) {
                    unsigned char s[wire::u64Size];
                    wire::putU64(s, shutdownIndex);
                    writeFull(w.reqFd, s, sizeof s);
                    closeFd(w.reqFd);
                    return;
                }
                std::uint64_t idx = pending.front();
                unsigned char req[wire::u64Size];
                wire::putU64(req, idx);
                if (writeFull(w.reqFd, req, sizeof req)) {
                    pending.pop_front();
                    w.inflight = std::int64_t(idx);
                } else {
                    reapWorker(w, true); // point stays pending
                }
            }
        };

        auto workerDied = [&](WorkerHandle &w) {
            if (w.inflight >= 0) {
                pending.push_front(std::uint64_t(w.inflight));
                w.inflight = -1;
            }
            reapWorker(w, true);
        };

        auto killAll = [&] {
            for (auto &w : ws)
                if (w.alive)
                    ::kill(w.pid, SIGKILL);
        };

        for (auto &w : ws)
            deal(w);

        while (outstanding > 0) {
            int liveCount = 0;
            for (auto &w : ws)
                liveCount += w.alive ? 1 : 0;
            if (liveCount == 0) {
                // Every worker died (all points crash-prone, or the
                // host is hostile): finish inline so the campaign
                // still completes and errors stay attributable.
                while (!pending.empty()) {
                    std::size_t i = pending.front();
                    pending.pop_front();
                    runInline(i);
                    --outstanding;
                }
                break;
            }

            std::vector<pollfd> fds;
            std::vector<std::size_t> fdWorker;
            for (std::size_t w = 0; w < ws.size(); ++w) {
                if (ws[w].alive && ws[w].respFd >= 0) {
                    fds.push_back(
                        pollfd{ws[w].respFd, POLLIN, 0});
                    fdWorker.push_back(w);
                }
            }
            if (fds.empty())
                break;
            int rc = ::poll(fds.data(), nfds_t(fds.size()), -1);
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                CAPSULE_FATAL("farm: poll() failed: ",
                              std::strerror(errno));
            }

            for (std::size_t k = 0; k < fds.size(); ++k) {
                if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                WorkerHandle &w = ws[fdWorker[k]];
                if (!w.alive)
                    continue;

                unsigned char hdrBytes[wire::FrameHeader::wireSize];
                if (!readFull(w.respFd, hdrBytes, sizeof hdrBytes)) {
                    workerDied(w);
                    continue;
                }
                const wire::FrameHeader hdr =
                    wire::FrameHeader::decode(hdrBytes);
                const std::uint64_t idx = hdr.index;
                const std::uint64_t status = hdr.status;
                const double cpu = hdr.cpuSeconds;
                const std::uint64_t len = hdr.payloadLen;
                if (idx != std::uint64_t(w.inflight) ||
                    len > maxFramePayload) {
                    workerDied(w); // protocol corruption
                    continue;
                }
                std::string payload(len, '\0');
                unsigned char checkBytes[wire::u64Size];
                if (!readFull(w.respFd, payload.data(), len) ||
                    !readFull(w.respFd, checkBytes,
                              sizeof checkBytes) ||
                    fnv1aBytes(payload) != wire::getU64(checkBytes)) {
                    workerDied(w);
                    continue;
                }

                w.inflight = -1;
                st.perWorkerPoints[fdWorker[k]] += 1;
                st.perWorkerCpuSeconds[fdWorker[k]] += cpu;

                if (status == 0) {
                    auto decoded = ResultCache::decode(payload);
                    if (decoded) {
                        completeComputed(std::size_t(idx),
                                         std::move(*decoded));
                    } else {
                        errors[idx] = "worker returned an "
                                      "undecodable result frame";
                        ++merges;
                    }
                } else {
                    errors[idx] = payload;
                    ++merges;
                }
                --outstanding;
                maybeDie(killAll);
                deal(w);
            }
        }

        for (auto &w : ws)
            reapWorker(w, false);
        ::sigaction(SIGPIPE, &oldPipe, nullptr);
    }
#endif // CAPSULE_FARM_CAN_FORK

    if (cache) {
        auto c = cache->counters();
        st.cacheHits = c.hits;
        st.cacheMisses = c.misses;
        st.cacheStores = c.stores;
        st.corruptEvictions = c.corruptEvictions;
        st.sizeEvictions = c.sizeEvictions;
    }
    st.wallSeconds = wallSeconds() - w0;

    for (std::size_t i = 0; i < n; ++i) {
        if (!errors[i].empty())
            throw std::runtime_error("farm point '" + points[i].label +
                                     "' failed: " + errors[i]);
    }
    return results;
}

} // namespace capsule::harness
