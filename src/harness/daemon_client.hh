/**
 * @file
 * Client side of the capsuled protocol (harness/daemon.hh): connect
 * to a farm daemon's Unix-domain socket, submit a campaign (a list
 * of daemonwire::JobSpec), and collect the streamed results — which
 * arrive in submission order, a contract this client *enforces* (an
 * out-of-order Result index is a protocol error, not a reorder).
 *
 * The socket is non-blocking throughout; every wait is a bounded
 * poll under an inactivity deadline, so a dead or wedged server
 * surfaces as a timed-out Outcome instead of a hung client. One
 * connection can carry any number of campaigns, one run() at a time.
 */

#ifndef CAPSULE_HARNESS_DAEMON_CLIENT_HH
#define CAPSULE_HARNESS_DAEMON_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/daemon.hh"

namespace capsule::harness
{

class DaemonClient
{
  public:
    /** `io_timeout_seconds` is the inactivity deadline: a campaign
     *  may run long, but the server stalling that long mid-message
     *  (or between messages) fails the run. <= 0 uses 300 s. */
    explicit DaemonClient(std::string socket_path,
                          double io_timeout_seconds = 300.0);
    ~DaemonClient();

    DaemonClient(const DaemonClient &) = delete;
    DaemonClient &operator=(const DaemonClient &) = delete;

    /** Connect (idempotent). False with `error` filled on failure. */
    bool connect(std::string *error = nullptr);

    void close();

    bool connected() const { return fd_ >= 0; }

    /** The raw socket (tests use it to misbehave on the wire). */
    int fd() const { return fd_; }

    /** What one submitted campaign came back as. */
    struct Outcome
    {
        /** Done received, every result present and in order. */
        bool ok = false;
        /** Why not (protocol violation, server Error, timeout). */
        std::string error;
        /** Per-job results, submission order (complete iff ok). */
        std::vector<wl::WorkloadResult> results;
        /** The server's campaign counters (valid iff ok). */
        daemonwire::CampaignSummary summary;
    };

    /**
     * Submit `jobs` as one campaign and stream the results.
     * `on_result` (optional) fires per result as it arrives, in
     * submission order — the same hook shape as FarmOptions::
     * onResult, so a caller can swap the daemon in for a local
     * FarmRunner without restructuring.
     */
    Outcome
    run(const std::vector<daemonwire::JobSpec> &jobs,
        const std::function<void(std::size_t,
                                 const wl::WorkloadResult &)>
            &on_result = {});

  private:
    std::string path_;
    double timeout_;
    int fd_ = -1;
    std::string rx_;
};

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_DAEMON_CLIENT_HH
