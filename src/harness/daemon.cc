#include "harness/daemon.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "base/digest.hh"
#include "harness/result_cache.hh"

#ifdef __unix__
#include <csignal>
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace capsule::harness
{

namespace daemonwire
{

void
MsgHeader::encode(unsigned char out[wireSize]) const
{
    wire::putU64(out + 0 * wire::u64Size, type);
    wire::putU64(out + 1 * wire::u64Size, a);
    wire::putU64(out + 2 * wire::u64Size, b);
    wire::putU64(out + 3 * wire::u64Size, payloadLen);
}

MsgHeader
MsgHeader::decode(const unsigned char in[wireSize])
{
    MsgHeader h;
    h.type = wire::getU64(in + 0 * wire::u64Size);
    h.a = wire::getU64(in + 1 * wire::u64Size);
    h.b = wire::getU64(in + 2 * wire::u64Size);
    h.payloadLen = wire::getU64(in + 3 * wire::u64Size);
    return h;
}

namespace
{

void
appendU64(std::string &out, std::uint64_t v)
{
    unsigned char b[wire::u64Size];
    wire::putU64(b, v);
    out.append(reinterpret_cast<const char *>(b), sizeof b);
}

bool
takeU64(const std::string &in, std::size_t &at, std::uint64_t &out)
{
    if (in.size() - at < wire::u64Size || at > in.size())
        return false;
    out = wire::getU64(
        reinterpret_cast<const unsigned char *>(in.data()) + at);
    at += wire::u64Size;
    return true;
}

void
appendStr(std::string &out, const std::string &s)
{
    appendU64(out, s.size());
    out += s;
}

bool
takeStr(const std::string &in, std::size_t &at, std::string &out)
{
    std::uint64_t len = 0;
    if (!takeU64(in, at, len) || len > in.size() - at)
        return false;
    out = in.substr(at, std::size_t(len));
    at += std::size_t(len);
    return true;
}

} // namespace

std::string
encodeJobs(const std::vector<JobSpec> &jobs)
{
    std::string out;
    appendU64(out, jobs.size());
    for (const auto &j : jobs) {
        appendStr(out, j.workload);
        appendStr(out, j.machine);
        appendStr(out, j.scale);
        appendU64(out, j.seed);
    }
    return out;
}

std::optional<std::vector<JobSpec>>
decodeJobs(const std::string &payload)
{
    std::size_t at = 0;
    std::uint64_t count = 0;
    if (!takeU64(payload, at, count))
        return std::nullopt;
    // Four u64s is the floor of one encoded job — a cheap bound that
    // rejects absurd counts before any allocation.
    if (count > payload.size() / (4 * wire::u64Size) + 1)
        return std::nullopt;
    std::vector<JobSpec> jobs;
    jobs.reserve(std::size_t(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        JobSpec j;
        if (!takeStr(payload, at, j.workload) ||
            !takeStr(payload, at, j.machine) ||
            !takeStr(payload, at, j.scale) ||
            !takeU64(payload, at, j.seed))
            return std::nullopt;
        jobs.push_back(std::move(j));
    }
    if (at != payload.size())
        return std::nullopt; // trailing garbage
    return jobs;
}

CampaignSummary
CampaignSummary::fromStats(const FarmStats &st)
{
    CampaignSummary s;
    s.jobs = st.points;
    s.computed = st.computed;
    s.cacheHits = st.cacheHits;
    s.cacheMisses = st.cacheMisses;
    s.timeouts = st.timeouts;
    s.respawns = st.respawns;
    s.framesRejected = st.framesRejected;
    s.pointRetries = st.pointRetries;
    s.quarantined = st.quarantined;
    s.journalWriteErrors = st.journalWriteErrors;
    s.wallSeconds = st.wallSeconds;
    return s;
}

std::string
CampaignSummary::encode() const
{
    std::string out;
    appendU64(out, jobs);
    appendU64(out, computed);
    appendU64(out, cacheHits);
    appendU64(out, cacheMisses);
    appendU64(out, timeouts);
    appendU64(out, respawns);
    appendU64(out, framesRejected);
    appendU64(out, pointRetries);
    appendU64(out, quarantined);
    appendU64(out, journalWriteErrors);
    appendU64(out, std::bit_cast<std::uint64_t>(wallSeconds));
    return out;
}

std::optional<CampaignSummary>
CampaignSummary::decode(const std::string &payload)
{
    std::size_t at = 0;
    CampaignSummary s;
    std::uint64_t wallBits = 0;
    if (!takeU64(payload, at, s.jobs) ||
        !takeU64(payload, at, s.computed) ||
        !takeU64(payload, at, s.cacheHits) ||
        !takeU64(payload, at, s.cacheMisses) ||
        !takeU64(payload, at, s.timeouts) ||
        !takeU64(payload, at, s.respawns) ||
        !takeU64(payload, at, s.framesRejected) ||
        !takeU64(payload, at, s.pointRetries) ||
        !takeU64(payload, at, s.quarantined) ||
        !takeU64(payload, at, s.journalWriteErrors) ||
        !takeU64(payload, at, wallBits) || at != payload.size())
        return std::nullopt;
    s.wallSeconds = std::bit_cast<double>(wallBits);
    return s;
}

std::string
encodeMessage(std::uint64_t type, std::uint64_t a, std::uint64_t b,
              const std::string &payload)
{
    MsgHeader h;
    h.type = type;
    h.a = a;
    h.b = b;
    h.payloadLen = payload.size();
    unsigned char hdr[MsgHeader::wireSize];
    h.encode(hdr);
    std::string out;
    out.reserve(sizeof hdr + payload.size() + wire::u64Size);
    out.append(reinterpret_cast<const char *>(hdr), sizeof hdr);
    out += payload;
    appendU64(out, fnv1aBytes(payload));
    return out;
}

int
parseMessage(std::string &rx, MsgHeader &hdr, std::string &payload)
{
    if (rx.size() < MsgHeader::wireSize)
        return 0;
    const MsgHeader h = MsgHeader::decode(
        reinterpret_cast<const unsigned char *>(rx.data()));
    if (h.type < msgSubmit || h.type > msgError ||
        h.payloadLen > maxMsgPayload)
        return -1;
    const std::size_t total = MsgHeader::wireSize +
                              std::size_t(h.payloadLen) +
                              wire::u64Size;
    if (rx.size() < total)
        return 0;
    payload =
        rx.substr(MsgHeader::wireSize, std::size_t(h.payloadLen));
    const std::uint64_t check = wire::getU64(
        reinterpret_cast<const unsigned char *>(rx.data()) +
        MsgHeader::wireSize + std::size_t(h.payloadLen));
    rx.erase(0, total);
    if (fnv1aBytes(payload) != check)
        return -1;
    hdr = h;
    return 1;
}

} // namespace daemonwire

const sim::MachineConfig *
daemonMachine(const std::string &name)
{
    // The farm_capsule trio: the daemon serves exactly the machine
    // shapes the direct campaign driver sweeps, so a submitted
    // campaign and a direct run share cache keys byte-for-byte.
    static const std::vector<std::pair<std::string,
                                       sim::MachineConfig>>
        machines = [] {
            std::vector<std::pair<std::string, sim::MachineConfig>>
                m;
            m.emplace_back("smt", sim::MachineConfig::somt());
            m.emplace_back("cmp", sim::MachineConfig::cmpSomt(2, 4));
            auto func = sim::MachineConfig::somt();
            func.backend = "func";
            m.emplace_back("func", std::move(func));
            return m;
        }();
    for (const auto &[n, cfg] : machines)
        if (n == name)
            return &cfg;
    return nullptr;
}

std::vector<std::string>
daemonMachineNames()
{
    return {"smt", "cmp", "func"};
}

namespace
{

double
monoSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The scale level named by a JobSpec, or nullopt. */
std::optional<wl::ScaleLevel>
scaleByName(const std::string &name)
{
    for (auto level :
         {wl::ScaleLevel::Quick, wl::ScaleLevel::Default,
          wl::ScaleLevel::Paper})
        if (name == wl::scaleLevelName(level))
            return level;
    return std::nullopt;
}

} // namespace

FarmDaemon::FarmDaemon(DaemonOptions opts) : opts_(std::move(opts))
{
    if (opts_.ioTimeoutSeconds <= 0)
        opts_.ioTimeoutSeconds = 30.0;
}

FarmDaemon::~FarmDaemon() { stop(); }

#ifndef __unix__

bool
FarmDaemon::start(std::string *error)
{
    if (error)
        *error = "capsuled requires Unix-domain sockets";
    return false;
}

void
FarmDaemon::stop()
{
}

DaemonStats
FarmDaemon::stats() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return st_;
}

void FarmDaemon::acceptLoop() {}
void FarmDaemon::serveClient(int) {}

#else // __unix__

namespace
{

/** Bounded poll slice: service loops wake at least this often to
 *  check the stop flag, whatever their current deadline. */
constexpr int sliceMs = 100;

void
setFdNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

bool
FarmDaemon::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };
    if (running_.load())
        return true;
    if (opts_.socketPath.empty()) {
        if (error)
            *error = "no socket path";
        return false;
    }
    sockaddr_un addr{};
    if (opts_.socketPath.size() >= sizeof addr.sun_path) {
        if (error)
            *error = "socket path too long for sockaddr_un";
        return false;
    }

    // The farm already ignores SIGPIPE per run; the daemon makes it
    // process-wide so a vanished client can only ever surface as an
    // EPIPE write error on its own service thread.
    ::signal(SIGPIPE, SIG_IGN);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket()");
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);
    ::unlink(opts_.socketPath.c_str()); // replace a stale socket
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0)
        return fail("bind(" + opts_.socketPath + ")");
    if (::listen(listenFd_, 16) < 0)
        return fail("listen()");
    setFdNonBlocking(listenFd_);

    stop_.store(false);
    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
FarmDaemon::stop()
{
    if (!running_.exchange(false))
        return;
    stop_.store(true);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(opts_.socketPath.c_str());
    // Service threads poll with bounded slices and check the stop
    // flag, so every join completes promptly (campaigns in flight
    // finish their current points first).
    std::vector<std::thread> clients;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        clients.swap(clients_);
    }
    for (auto &t : clients)
        if (t.joinable())
            t.join();
}

DaemonStats
FarmDaemon::stats() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return st_;
}

void
FarmDaemon::acceptLoop()
{
    while (!stop_.load()) {
        pollfd p{listenFd_, POLLIN, 0};
        const int rc = ::poll(&p, 1, sliceMs);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        setFdNonBlocking(fd);
        std::lock_guard<std::mutex> lock(mtx_);
        ++st_.clientsAccepted;
        clients_.emplace_back(
            [this, fd] { serveClient(fd); });
    }
}

namespace
{

/**
 * Deadline-aware full write on a non-blocking socket: retries under
 * `deadline_s` of *stall* (each successful chunk re-arms it), waking
 * every slice to honour `stop`. False when the peer is gone, errors,
 * or stalls past the deadline (`timed_out` says which).
 */
bool
sendAllDeadline(int fd, const std::string &data, double deadline_s,
                const std::atomic<bool> &stop, bool &timed_out)
{
    timed_out = false;
    std::size_t at = 0;
    double stallStart = monoSeconds();
    while (at < data.size()) {
        if (stop.load())
            return false;
        const ssize_t n =
            ::send(fd, data.data() + at, data.size() - at,
                   MSG_NOSIGNAL);
        if (n > 0) {
            at += std::size_t(n);
            stallStart = monoSeconds();
            continue;
        }
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR)
            return false; // EPIPE/ECONNRESET: the client vanished
        const double now = monoSeconds();
        if (now - stallStart >= deadline_s) {
            timed_out = true;
            return false;
        }
        pollfd p{fd, POLLOUT, 0};
        const int want = computePollTimeoutMs(
            stallStart + deadline_s, now);
        ::poll(&p, 1, std::min(want < 0 ? sliceMs : want, sliceMs));
    }
    return true;
}

} // namespace

void
FarmDaemon::serveClient(int fd)
{
    std::string rx;
    // Armed while rx holds a partial message; infinite when idle — a
    // quiet persistent client is fine, a half-sent header is not.
    double rxDeadline = std::numeric_limits<double>::infinity();
    bool clean = false;    ///< peer shut down at a message boundary
    bool dropped = false;  ///< we cut the peer off
    bool ioTimeout = false;
    bool protocolError = false;

    auto send = [&](const std::string &msg) {
        if (dropped)
            return false;
        bool timedOut = false;
        if (!sendAllDeadline(fd, msg, opts_.ioTimeoutSeconds, stop_,
                             timedOut)) {
            dropped = true;
            ioTimeout |= timedOut;
            return false;
        }
        return true;
    };

    auto runCampaign = [&](const std::string &payload) {
        auto jobs = daemonwire::decodeJobs(payload);
        if (!jobs || jobs->size() > opts_.maxCampaignJobs) {
            protocolError = true;
            send(daemonwire::encodeMessage(
                daemonwire::msgError, ~0ULL, 0,
                !jobs ? "malformed job list"
                      : "campaign exceeds the job limit"));
            return false;
        }

        std::vector<FarmPoint> points;
        points.reserve(jobs->size());
        const auto &registry = wl::WorkloadRegistry::builtin();
        for (std::size_t i = 0; i < jobs->size(); ++i) {
            const auto &j = (*jobs)[i];
            const sim::MachineConfig *cfg = daemonMachine(j.machine);
            const auto scale = scaleByName(j.scale);
            if (!registry.contains(j.workload) || !cfg || !scale) {
                protocolError = true;
                send(daemonwire::encodeMessage(
                    daemonwire::msgError, i, 0,
                    "unknown workload/machine/scale in job '" +
                        j.workload + "/" + j.machine + "/" +
                        j.scale + "'"));
                return false;
            }
            points.push_back(registryFarmPoint(
                j.workload, *cfg, {*scale, j.seed},
                j.workload + "/" + j.machine + "/seed" +
                    std::to_string(j.seed)));
        }

        FarmOptions fo;
        fo.workers = opts_.workersPerCampaign;
        fo.cacheDir = opts_.cacheDir;
        fo.cacheMaxBytes = opts_.cacheMaxBytes;
        fo.pointTimeoutSeconds = opts_.pointTimeoutSeconds;
        // No journal: concurrent clients may run the same campaign
        // digest, and two coordinators appending one journal file
        // would interleave. The shared cache is the durable state.
        fo.journal = false;
        fo.onResult = [&](std::size_t i,
                          const wl::WorkloadResult &r) {
            // A gone client stops the streaming, not the campaign:
            // the remaining points still publish into the shared
            // cache, so the work is kept either way.
            if (!dropped)
                send(daemonwire::encodeMessage(
                    daemonwire::msgResult, i, 0,
                    ResultCache::encode(r)));
        };

        FarmRunner farm(fo);
        std::string campaignError;
        try {
            farm.run(points);
        } catch (const std::exception &e) {
            campaignError = e.what();
        }
        {
            std::lock_guard<std::mutex> lock(mtx_);
            ++st_.campaigns;
            st_.jobs += points.size();
            st_.farm.fold(farm.stats());
        }
        if (!campaignError.empty()) {
            send(daemonwire::encodeMessage(daemonwire::msgError,
                                           ~0ULL, 0,
                                           campaignError));
            return false;
        }
        send(daemonwire::encodeMessage(
            daemonwire::msgDone, points.size(), 0,
            daemonwire::CampaignSummary::fromStats(farm.stats())
                .encode()));
        return !dropped;
    };

    while (!stop_.load() && !dropped) {
        const double now = monoSeconds();
        if (now >= rxDeadline) {
            // Half a message, then silence: the client-side twin of
            // the coordinator's partial-frame stall. Reap it.
            dropped = true;
            ioTimeout = true;
            break;
        }
        pollfd p{fd, POLLIN, 0};
        const int want = computePollTimeoutMs(rxDeadline, now);
        if (::poll(&p, 1,
                   std::min(want < 0 ? sliceMs : want, sliceMs)) < 0 &&
            errno != EINTR)
            break;

        bool sawEof = false;
        for (;;) {
            char buf[1 << 16];
            const ssize_t n = ::read(fd, buf, sizeof buf);
            if (n > 0) {
                rx.append(buf, std::size_t(n));
                continue;
            }
            if (n == 0)
                sawEof = true;
            else if (errno == EINTR)
                continue;
            else if (errno != EAGAIN && errno != EWOULDBLOCK)
                sawEof = true; // hard error: treat as gone
            break;
        }

        bool violated = false;
        for (;;) {
            daemonwire::MsgHeader hdr;
            std::string payload;
            const int rc = daemonwire::parseMessage(rx, hdr, payload);
            if (rc == 0)
                break;
            if (rc < 0 || hdr.type != daemonwire::msgSubmit) {
                violated = true;
                break;
            }
            if (!runCampaign(payload)) {
                violated = true;
                break;
            }
        }
        if (violated) {
            if (!dropped) {
                protocolError = true;
                dropped = true;
            }
            break;
        }
        rxDeadline = rx.empty()
                         ? std::numeric_limits<double>::infinity()
                         : std::min(rxDeadline,
                                    monoSeconds() +
                                        opts_.ioTimeoutSeconds);
        if (sawEof) {
            clean = rx.empty();
            break;
        }
    }

    ::close(fd);
    std::lock_guard<std::mutex> lock(mtx_);
    if (clean && !dropped)
        ++st_.clientsServed;
    else
        ++st_.clientsDropped;
    if (ioTimeout)
        ++st_.ioTimeouts;
    if (protocolError)
        ++st_.protocolErrors;
}

#endif // __unix__

} // namespace capsule::harness
