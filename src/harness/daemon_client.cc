#include "harness/daemon_client.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include "harness/result_cache.hh"

#ifdef __unix__
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace capsule::harness
{

namespace
{

double
monoSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

DaemonClient::DaemonClient(std::string socket_path,
                           double io_timeout_seconds)
    : path_(std::move(socket_path)), timeout_(io_timeout_seconds)
{
    if (timeout_ <= 0)
        timeout_ = 300.0;
}

DaemonClient::~DaemonClient() { close(); }

#ifndef __unix__

bool
DaemonClient::connect(std::string *error)
{
    if (error)
        *error = "capsuled requires Unix-domain sockets";
    return false;
}

void
DaemonClient::close()
{
}

DaemonClient::Outcome
DaemonClient::run(const std::vector<daemonwire::JobSpec> &,
                  const std::function<void(
                      std::size_t, const wl::WorkloadResult &)> &)
{
    Outcome out;
    out.error = "capsuled requires Unix-domain sockets";
    return out;
}

#else // __unix__

bool
DaemonClient::connect(std::string *error)
{
    if (fd_ >= 0)
        return true;
    sockaddr_un addr{};
    if (path_.size() >= sizeof addr.sun_path) {
        if (error)
            *error = "socket path too long for sockaddr_un";
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket(): ") +
                     std::strerror(errno);
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        if (error)
            *error = "connect(" + path_ +
                     "): " + std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    rx_.clear();
    return true;
}

void
DaemonClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    rx_.clear();
}

DaemonClient::Outcome
DaemonClient::run(
    const std::vector<daemonwire::JobSpec> &jobs,
    const std::function<void(std::size_t,
                             const wl::WorkloadResult &)> &on_result)
{
    Outcome out;
    out.results.resize(jobs.size());
    std::string connectError;
    if (!connect(&connectError)) {
        out.error = connectError;
        return out;
    }

    const std::string submit = daemonwire::encodeMessage(
        daemonwire::msgSubmit, 0, 0, daemonwire::encodeJobs(jobs));

    // Deadline-aware full send (non-blocking socket throughout).
    std::size_t at = 0;
    double lastProgress = monoSeconds();
    while (at < submit.size()) {
        const ssize_t n = ::send(fd_, submit.data() + at,
                                 submit.size() - at, MSG_NOSIGNAL);
        if (n > 0) {
            at += std::size_t(n);
            lastProgress = monoSeconds();
            continue;
        }
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR) {
            out.error = std::string("send(): ") +
                        std::strerror(errno);
            close();
            return out;
        }
        const double now = monoSeconds();
        if (now - lastProgress >= timeout_) {
            out.error = "timed out sending the submission";
            close();
            return out;
        }
        pollfd p{fd_, POLLOUT, 0};
        ::poll(&p, 1,
               computePollTimeoutMs(lastProgress + timeout_, now));
    }

    // Receive loop: Results (strictly in submission order), then one
    // Done or Error. Any byte re-arms the inactivity deadline.
    std::size_t expect = 0;
    lastProgress = monoSeconds();
    for (;;) {
        bool sawEof = false;
        for (;;) {
            char buf[1 << 16];
            const ssize_t n = ::read(fd_, buf, sizeof buf);
            if (n > 0) {
                rx_.append(buf, std::size_t(n));
                lastProgress = monoSeconds();
                continue;
            }
            if (n == 0)
                sawEof = true;
            else if (errno == EINTR)
                continue;
            else if (errno != EAGAIN && errno != EWOULDBLOCK)
                sawEof = true;
            break;
        }

        for (;;) {
            daemonwire::MsgHeader hdr;
            std::string payload;
            const int rc =
                daemonwire::parseMessage(rx_, hdr, payload);
            if (rc == 0)
                break;
            if (rc < 0) {
                out.error = "protocol violation from the server";
                close();
                return out;
            }
            switch (hdr.type) {
            case daemonwire::msgResult: {
                if (hdr.a != expect || expect >= jobs.size()) {
                    out.error =
                        "result index " + std::to_string(hdr.a) +
                        " out of submission order (expected " +
                        std::to_string(expect) + ")";
                    close();
                    return out;
                }
                auto decoded = ResultCache::decode(payload);
                if (!decoded) {
                    out.error = "undecodable result payload";
                    close();
                    return out;
                }
                out.results[expect] = std::move(*decoded);
                if (on_result)
                    on_result(expect, out.results[expect]);
                ++expect;
                break;
            }
            case daemonwire::msgDone: {
                auto summary =
                    daemonwire::CampaignSummary::decode(payload);
                if (!summary || expect != jobs.size()) {
                    out.error = !summary
                                    ? "undecodable campaign summary"
                                    : "campaign completed with " +
                                          std::to_string(expect) +
                                          " of " +
                                          std::to_string(
                                              jobs.size()) +
                                          " results";
                    close();
                    return out;
                }
                out.summary = *summary;
                out.ok = true;
                return out; // connection stays open for the next run
            }
            case daemonwire::msgError:
                out.error = payload.empty()
                                ? "server reported an error"
                                : payload;
                close();
                return out;
            default:
                out.error = "unexpected message type " +
                            std::to_string(hdr.type);
                close();
                return out;
            }
        }

        if (sawEof) {
            out.error = "server closed the connection";
            close();
            return out;
        }
        const double now = monoSeconds();
        if (now - lastProgress >= timeout_) {
            out.error = "timed out waiting for results";
            close();
            return out;
        }
        pollfd p{fd_, POLLIN, 0};
        if (::poll(&p, 1,
                   computePollTimeoutMs(lastProgress + timeout_,
                                        now)) < 0 &&
            errno != EINTR) {
            out.error = std::string("poll(): ") +
                        std::strerror(errno);
            close();
            return out;
        }
    }
}

#endif // __unix__

} // namespace capsule::harness
