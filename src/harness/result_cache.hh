/**
 * @file
 * Content-addressed on-disk memoization of simulation results
 * (DESIGN.md §9). A cache key names *what* was simulated — program
 * digest, MachineConfig digest, data-set scale, seed and the
 * execution-semantics table hash — never *where or when*, so a warm
 * cache makes re-running an unchanged sweep near-free while any
 * behavioral change (config field, program content, ISA semantics)
 * misses by construction.
 *
 * Entries are small versioned text files, one per key, whose payload
 * carries every `wl::WorkloadResult` field with doubles as IEEE-754
 * bit patterns (bit-exact round trip) and ends in an FNV-1a checksum.
 * Loads verify version, key echo, the declared payload *length*, and
 * the checksum — in that order, so a torn write (the file cut short
 * mid-payload, DESIGN.md §11) is rejected by cheap arithmetic before
 * any checksumming and counted separately (`lengthEvictions`) from
 * content corruption (`corruptEvictions`). Anything unexpected —
 * truncation, corruption, a stale format — is treated as a miss, the
 * entry is evicted, and the caller recomputes: a corrupt cache can
 * cost time, never wrong results.
 *
 * Stores are atomic (unique temp file + rename), so concurrent
 * writers — farm coordinators, thread-pool jobs, even two unrelated
 * campaigns sharing a directory — can only ever publish complete
 * entries. The class is thread-safe.
 */

#ifndef CAPSULE_HARNESS_RESULT_CACHE_HH
#define CAPSULE_HARNESS_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "workloads/workload.hh"

namespace capsule::harness
{

/** What a memoized result is keyed by (DESIGN.md §9 contract). */
struct CacheKey
{
    /** Content digest of the simulated program: casm::Image::digest()
     *  for image-level callers (the fuzzer); for registry workloads —
     *  which derive their program deterministically from (name, seed,
     *  scale) — a digest of the workload name stands in. */
    std::uint64_t programDigest = 0;

    /** MachineConfig::digest() of the simulated configuration. */
    std::uint64_t configDigest = 0;

    /** Data-set scale name ("quick" / "default" / "paper"). */
    std::string scale;

    /** Workload/generator seed of the point. */
    std::uint64_t seed = 0;

    /** sim::semanticsTableHash(): ties every entry to the ISA
     *  semantics it was computed under. */
    std::uint64_t semanticsHash = 0;

    /** Harness-specific extra axis (bench_simperf repetition count,
     *  fuzz backend-set + injected-bug digest, ...). */
    std::uint64_t extra = 0;

    /** The content address: FNV-1a over the canonical serialization
     *  of every component above. */
    std::uint64_t digest() const;
};

class ResultCache
{
  public:
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        /** Entries evicted because they failed validation (bad
         *  magic, key echo, checksum, or undecodable payload). */
        std::uint64_t corruptEvictions = 0;
        /** Entries evicted because the file size disagreed with the
         *  declared payload length — the shape of a torn write —
         *  detected before checksumming. */
        std::uint64_t lengthEvictions = 0;
        /** Entries evicted by the LRU size-budget sweep. */
        std::uint64_t sizeEvictions = 0;
    };

    /**
     * Opens (and creates if needed) the cache directory. A nonzero
     * `max_bytes` caps the directory's total entry size: after each
     * publish the oldest entries (by mtime — hits refresh it, so the
     * order is true LRU) are swept until the total fits again.
     *  @throws std::runtime_error when the directory cannot be made */
    explicit ResultCache(std::string dir, std::uint64_t max_bytes = 0);

    const std::string &dir() const { return dir_; }

    /**
     * Look `key` up. A validated entry returns its result (hit);
     * absence is a miss; a present-but-invalid entry is evicted and
     * reported as a miss plus a corrupt eviction.
     */
    std::optional<wl::WorkloadResult> load(const CacheKey &key);

    /** Memoize `result` under `key` (atomic publish; best-effort — a
     *  full disk degrades to recompute-next-time, not an error). */
    void store(const CacheKey &key, const wl::WorkloadResult &result);

    Counters counters() const;

    /** Entry path for `key` (tests poke files to simulate damage). */
    std::string entryPath(const CacheKey &key) const;

    /** Serialize `result` as the versioned entry payload. */
    static std::string encode(const wl::WorkloadResult &result);

    /** Parse an entry payload; std::nullopt on any anomaly. */
    static std::optional<wl::WorkloadResult>
    decode(const std::string &payload);

  private:
    /** Evict oldest entries until the directory fits the budget. */
    void sweepToBudget();

    std::string dir_;
    std::uint64_t maxBytes_;
    mutable std::mutex mtx;
    Counters ctr;
};

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_RESULT_CACHE_HH
