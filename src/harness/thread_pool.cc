#include "harness/thread_pool.hh"

#include <algorithm>

namespace capsule::harness
{

int
hostConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads, std::size_t maxQueue)
    : maxQueued(maxQueue)
{
    int n = std::max(1, threads);
    workers.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    space.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock lock(mtx);
        if (maxQueued > 0)
            space.wait(lock, [this] {
                return stopping || queue.size() < maxQueued;
            });
        if (stopping)
            return; // racing the destructor; drop rather than hang
        queue.push_back(std::move(job));
        peak = std::max(peak, queue.size());
    }
    wake.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mtx);
    drained.wait(lock,
                 [this] { return queue.empty() && inFlight == 0; });
}

std::uint64_t
ThreadPool::droppedExceptions() const
{
    std::unique_lock lock(mtx);
    return nDropped;
}

std::size_t
ThreadPool::peakQueued() const
{
    std::unique_lock lock(mtx);
    return peak;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock lock(mtx);
            wake.wait(lock,
                      [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;  // stopping and nothing left to run
            job = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
        }
        if (maxQueued > 0)
            space.notify_one(); // room for a backpressured submit()
        // Contain a throwing job: without this, the exception would
        // kill the worker with inFlight still counted (wait() would
        // then block forever) — or terminate the process outright.
        bool threw = false;
        try {
            job();
        } catch (...) {
            threw = true;
        }
        {
            std::unique_lock lock(mtx);
            --inFlight;
            if (threw)
                ++nDropped;
            if (queue.empty() && inFlight == 0)
                drained.notify_all();
        }
    }
}

} // namespace capsule::harness
