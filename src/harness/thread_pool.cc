#include "harness/thread_pool.hh"

#include <algorithm>

namespace capsule::harness
{

int
hostConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads)
{
    int n = std::max(1, threads);
    workers.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock lock(mtx);
        queue.push_back(std::move(job));
    }
    wake.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mtx);
    drained.wait(lock,
                 [this] { return queue.empty() && inFlight == 0; });
}

std::uint64_t
ThreadPool::droppedExceptions() const
{
    std::unique_lock lock(mtx);
    return nDropped;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock lock(mtx);
            wake.wait(lock,
                      [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;  // stopping and nothing left to run
            job = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
        }
        // Contain a throwing job: without this, the exception would
        // kill the worker with inFlight still counted (wait() would
        // then block forever) — or terminate the process outright.
        bool threw = false;
        try {
            job();
        } catch (...) {
            threw = true;
        }
        {
            std::unique_lock lock(mtx);
            --inFlight;
            if (threw)
                ++nDropped;
            if (queue.empty() && inFlight == 0)
                drained.notify_all();
        }
    }
}

} // namespace capsule::harness
