/**
 * @file
 * The campaign engine (DESIGN.md §9): runs a sweep of independent
 * simulation points like the ExperimentRunner, but promoted to a
 * multi-process simulation farm with three properties the single-
 * process engine cannot offer:
 *
 *  - **content-addressed memoization** — every cacheable point is
 *    keyed by (program digest, MachineConfig digest, scale, seed,
 *    semantics-table hash) in a shared on-disk ResultCache, so
 *    re-running an unchanged sweep is near-free and any behavioral
 *    change misses by construction;
 *  - **multi-process sharding** — the coordinator forks N worker
 *    processes and deals points over pipes one at a time (a
 *    self-balancing shard size), merging results in submission order
 *    so output is byte-identical to a single worker at any count.
 *    Process isolation also means a crashing point cannot take the
 *    campaign down: the coordinator requeues the dead worker's point
 *    and finishes with the survivors (inline if none remain);
 *  - **checkpoint/resume** — completed point digests are journaled
 *    (flushed per merge) next to the cache, so a killed campaign
 *    restarted with `resume` replays its completed points from the
 *    cache and simulates only the remainder. A journaled point whose
 *    cache entry is missing or corrupt is recomputed — a damaged
 *    checkpoint can cost time, never wrong results.
 *
 * Determinism contract: results are a pure function of each point's
 * parameters (the workload-layer contract, DESIGN.md §4), the merge
 * order is the submission order, and cache entries round-trip every
 * field bit-exactly — so the result vector is byte-identical across
 * worker counts, cold vs warm caches, and kill+resume, which
 * tests/test_farm.cc asserts literally.
 */

#ifndef CAPSULE_HARNESS_FARM_HH
#define CAPSULE_HARNESS_FARM_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/result_cache.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace capsule::harness
{

/**
 * Byte-level wire encoding of the coordinator<->worker pipe protocol.
 * Every integer crosses the pipe as explicit little-endian bytes —
 * never a raw struct or host-endian u64 — so the frame layout is a
 * pinned, platform-independent contract (tests/test_farm.cc asserts
 * the exact bytes). Requests are one wireU64 (a point index, or the
 * all-ones shutdown sentinel); responses are a FrameHeader, the
 * payload bytes, then a wireU64 FNV-1a checksum of the payload.
 */
namespace wire
{

/** Serialized u64 width (also a request's and a checksum's size). */
constexpr std::size_t u64Size = 8;

/** Write `v` as 8 little-endian bytes. */
void putU64(unsigned char out[u64Size], std::uint64_t v);

/** Read 8 little-endian bytes back into a u64. */
std::uint64_t getU64(const unsigned char in[u64Size]);

/** The fixed-size header of one worker response frame. */
struct FrameHeader
{
    std::uint64_t index = 0;      ///< point index being answered
    std::uint64_t status = 0;     ///< 0 = result payload, 1 = error
    double cpuSeconds = 0.0;      ///< worker CPU burned on the point
    std::uint64_t payloadLen = 0; ///< bytes following the header

    /** Encoded size: four LE u64s (cpuSeconds as IEEE-754 bits). */
    static constexpr std::size_t wireSize = 4 * u64Size;

    void encode(unsigned char out[wireSize]) const;
    static FrameHeader decode(const unsigned char in[wireSize]);
};

} // namespace wire

/** One independent point of a campaign. */
struct FarmPoint
{
    /** Harness-chosen identifier (errors, progress). */
    std::string label;

    /** Whether the point may be memoized; non-cacheable points are
     *  recomputed every run (and never satisfied from a journal). */
    bool cacheable = false;

    /** Content address of the point (meaningful when cacheable). */
    CacheKey key;

    /** The simulation; must depend only on captured parameters. */
    std::function<wl::WorkloadResult()> run;
};

/** A cacheable point running a registered workload; the cache key is
 *  (workload-name digest, cfg.digest(), scale, seed, semantics hash)
 *  — the registry derives the simulated program deterministically
 *  from exactly those axes (DESIGN.md §9). */
FarmPoint registryFarmPoint(const std::string &workload,
                            const sim::MachineConfig &cfg,
                            const wl::WorkloadRequest &req,
                            std::string label = "");

struct FarmOptions
{
    /** Worker processes; <= 0 selects host hardware concurrency and
     *  1 runs every point inline in the coordinator. */
    int workers = 1;

    /** Result-cache directory; empty disables memoization *and* the
     *  journal (resume needs the cache as its payload store). */
    std::string cacheDir;

    /** LRU size budget for cacheDir in bytes (0 = unbounded). The
     *  sweep runs in the coordinator at publish time; see
     *  ResultCache. */
    std::uint64_t cacheMaxBytes = 0;

    /** Continue this campaign's journal instead of starting it
     *  fresh: journaled points load from the cache, the rest are
     *  simulated. Without the flag an existing journal for the same
     *  campaign is truncated (the cache still serves hits). */
    bool resume = false;

    /**
     * Test/CI hook simulating a mid-flight coordinator kill: after
     * this many merged results the coordinator SIGKILLs its workers
     * and _exit()s with status `dieExitStatus`, leaving the journal
     * and cache exactly as a real kill would. < 0 disables.
     */
    int dieAfterMerges = -1;
    static constexpr int dieExitStatus = 3;
};

/** Observability counters of one FarmRunner::run. */
struct FarmStats
{
    std::uint64_t points = 0;    ///< points in the campaign
    std::uint64_t computed = 0;  ///< points actually simulated
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheStores = 0;
    std::uint64_t corruptEvictions = 0;
    /** Entries evicted by the cache's LRU size-budget sweep. */
    std::uint64_t sizeEvictions = 0;
    /** Resume-path points satisfied from journal + cache. */
    std::uint64_t journalSkips = 0;
    /** Workers actually forked (0 = fully inline run). */
    int workersUsed = 0;
    /** Points completed per worker (size == workersUsed). */
    std::vector<std::uint64_t> perWorkerPoints;
    /** Simulation CPU seconds burned per worker. */
    std::vector<double> perWorkerCpuSeconds;
    double wallSeconds = 0.0;
};

class FarmRunner
{
  public:
    explicit FarmRunner(FarmOptions opts);

    /**
     * Run the campaign; results come back in submission order. A
     * point that fails (throws in a worker or inline) surfaces as a
     * std::runtime_error naming the lowest-index failing point —
     * thrown after every other point completed, like the
     * ExperimentRunner contract.
     */
    std::vector<wl::WorkloadResult>
    run(const std::vector<FarmPoint> &points);

    /** Counters of the most recent run(). */
    const FarmStats &stats() const { return st; }

    /** The campaign identity `points` journals under: a digest of
     *  every point's label and key, in order. */
    static std::uint64_t
    campaignDigest(const std::vector<FarmPoint> &points);

  private:
    FarmOptions opts;
    FarmStats st;
};

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_FARM_HH
