/**
 * @file
 * The campaign engine (DESIGN.md §9): runs a sweep of independent
 * simulation points like the ExperimentRunner, but promoted to a
 * multi-process simulation farm with three properties the single-
 * process engine cannot offer:
 *
 *  - **content-addressed memoization** — every cacheable point is
 *    keyed by (program digest, MachineConfig digest, scale, seed,
 *    semantics-table hash) in a shared on-disk ResultCache, so
 *    re-running an unchanged sweep is near-free and any behavioral
 *    change misses by construction;
 *  - **multi-process sharding** — the coordinator forks N worker
 *    processes and deals points over pipes one at a time (a
 *    self-balancing shard size), merging results in submission order
 *    so output is byte-identical to a single worker at any count.
 *    Process isolation also means a crashing point cannot take the
 *    campaign down: the coordinator requeues the dead worker's point
 *    and finishes with the survivors (inline if none remain);
 *  - **checkpoint/resume** — completed point digests are journaled
 *    (flushed per merge) next to the cache, so a killed campaign
 *    restarted with `resume` replays its completed points from the
 *    cache and simulates only the remainder. A journaled point whose
 *    cache entry is missing or corrupt is recomputed — a damaged
 *    checkpoint can cost time, never wrong results;
 *  - **fault tolerance** (DESIGN.md §11) — the coordinator
 *    supervises its workers: every dealt point carries a deadline
 *    (the poll timeout is derived from the earliest outstanding
 *    deadline, never -1), a hung worker is SIGKILLed and reaped, a
 *    dead worker is respawned under an exponential-backoff budget
 *    (`maxWorkerRestarts`), and a point that kills or hangs workers
 *    `maxPointRetries` times is **quarantined** — recorded in the
 *    campaign journal and surfaced as a placeholder result — instead
 *    of being retried inline where it could take the coordinator
 *    down. When the restart budget is exhausted the farm degrades
 *    gracefully: it says so on stderr and drains the remaining
 *    points inline (points that died with a worker more than once
 *    are quarantined, not risked in-process). A seeded FaultPlan
 *    (harness/fault_inject.hh, `FarmOptions::faultPlan`) exercises
 *    all of these paths deterministically.
 *
 * Determinism contract: results are a pure function of each point's
 * parameters (the workload-layer contract, DESIGN.md §4), the merge
 * order is the submission order, and cache entries round-trip every
 * field bit-exactly — so the result vector is byte-identical across
 * worker counts, cold vs warm caches, kill+resume, and any fault
 * plan that quarantines no points (worker faults are delivered
 * one-shot with the dealt point, so the retry recomputes the same
 * pure function), which tests/test_farm.cc asserts literally.
 */

#ifndef CAPSULE_HARNESS_FARM_HH
#define CAPSULE_HARNESS_FARM_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/fault_inject.hh"
#include "harness/result_cache.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace capsule::harness
{

/**
 * Byte-level wire encoding of the coordinator<->worker pipe protocol.
 * Every integer crosses the pipe as explicit little-endian bytes —
 * never a raw struct or host-endian u64 — so the frame layout is a
 * pinned, platform-independent contract (tests/test_farm.cc asserts
 * the exact bytes). Requests are a PointRequest (a point index plus
 * the fault to inject while serving it, or the all-ones shutdown
 * sentinel); responses are a FrameHeader, the payload bytes, then a
 * wireU64 FNV-1a checksum of the payload.
 */
namespace wire
{

/** Serialized u64 width (also a checksum's size). */
constexpr std::size_t u64Size = 8;

/** Write `v` as 8 little-endian bytes. */
void putU64(unsigned char out[u64Size], std::uint64_t v);

/** Read 8 little-endian bytes back into a u64. */
std::uint64_t getU64(const unsigned char in[u64Size]);

/** One coordinator-to-worker request: serve `index`, injecting
 *  `fault` (a FaultKind; None on the fault-free fast path). The
 *  fault crosses the wire — rather than the plan being consulted in
 *  the worker — so firing is one-shot by construction: the
 *  coordinator marks the operation fired when it deals the point,
 *  and the retry is dealt clean. */
struct PointRequest
{
    std::uint64_t index = 0;
    std::uint64_t fault = 0; ///< FaultKind as an integer

    /** Encoded size: two LE u64s. */
    static constexpr std::size_t wireSize = 2 * u64Size;

    void encode(unsigned char out[wireSize]) const;
    static PointRequest decode(const unsigned char in[wireSize]);
};

/** The fixed-size header of one worker response frame. */
struct FrameHeader
{
    std::uint64_t index = 0;      ///< point index being answered
    std::uint64_t status = 0;     ///< 0 = result payload, 1 = error
    double cpuSeconds = 0.0;      ///< worker CPU burned on the point
    std::uint64_t payloadLen = 0; ///< bytes following the header

    /** Encoded size: four LE u64s (cpuSeconds as IEEE-754 bits). */
    static constexpr std::size_t wireSize = 4 * u64Size;

    void encode(unsigned char out[wireSize]) const;
    static FrameHeader decode(const unsigned char in[wireSize]);
};

} // namespace wire

/** Upper bound of any single poll() wait in the coordinator (and the
 *  daemon): a deadline further out than this re-arms across several
 *  shorter waits instead of one long sleep, so clock clamping can
 *  never turn a long deadline into a lost wakeup. */
constexpr int pollClampMs = 60'000;

/**
 * The poll timeout for a wakeup due at absolute wall time `wake_at`
 * seconds, evaluated at `now`: -1 (block) when no wakeup is pending
 * (`wake_at` infinite), otherwise the remaining time in milliseconds,
 * rounded up and clamped to [0, pollClampMs]. A deadline beyond the
 * clamp simply wakes early and re-arms — the caller's deadline sweep
 * compares absolute times, so a clamped wait never fires a spurious
 * timeout (pinned in tests/test_farm.cc).
 */
int computePollTimeoutMs(double wake_at, double now);

/** One independent point of a campaign. */
struct FarmPoint
{
    /** Harness-chosen identifier (errors, progress). */
    std::string label;

    /** Whether the point may be memoized; non-cacheable points are
     *  recomputed every run (and never satisfied from a journal). */
    bool cacheable = false;

    /** Content address of the point (meaningful when cacheable). */
    CacheKey key;

    /** The simulation; must depend only on captured parameters. */
    std::function<wl::WorkloadResult()> run;
};

/** A cacheable point running a registered workload; the cache key is
 *  (workload-name digest, cfg.digest(), scale, seed, semantics hash)
 *  — the registry derives the simulated program deterministically
 *  from exactly those axes (DESIGN.md §9). */
FarmPoint registryFarmPoint(const std::string &workload,
                            const sim::MachineConfig &cfg,
                            const wl::WorkloadRequest &req,
                            std::string label = "");

struct FarmOptions
{
    /** Worker processes; <= 0 selects host hardware concurrency and
     *  1 runs every point inline in the coordinator. */
    int workers = 1;

    /** Result-cache directory; empty disables memoization *and* the
     *  journal (resume needs the cache as its payload store). */
    std::string cacheDir;

    /** LRU size budget for cacheDir in bytes (0 = unbounded). The
     *  sweep runs in the coordinator at publish time; see
     *  ResultCache. */
    std::uint64_t cacheMaxBytes = 0;

    /** Continue this campaign's journal instead of starting it
     *  fresh: journaled points load from the cache, the rest are
     *  simulated (journaled *quarantined* points stay quarantined).
     *  Without the flag an existing journal for the same campaign
     *  is truncated (the cache still serves hits). */
    bool resume = false;

    /**
     * Seeded deterministic fault schedule (DESIGN.md §11). Worker
     * faults (crash/hang/corrupt/truncate/short) fire on the forked
     * path only — they are delivered with the dealt point; the
     * inline path has no worker to kill. Coordinator faults
     * (tear-cache/tear-journal/die) fire on every path. A `die`
     * operation SIGKILLs the workers and _exit()s with
     * `dieExitStatus`, leaving journal and cache exactly as a real
     * kill would (the CI kill+resume probe).
     */
    FaultPlan faultPlan;
    static constexpr int dieExitStatus = 3;

    /**
     * Per-point deadline in seconds: a worker that holds one point
     * longer than this is presumed hung, SIGKILLed and reaped, and
     * the point is retried (the poll timeout is computed from the
     * earliest outstanding deadline). <= 0 disables deadlines —
     * reintroducing the historical block-forever-on-a-hung-worker
     * behavior, so leave it on unless points legitimately run for
     * minutes.
     */
    double pointTimeoutSeconds = 300.0;

    /** A point whose worker died or hung this many times is
     *  quarantined instead of retried (must be >= 1). */
    int maxPointRetries = 2;

    /** Worker respawn budget for one run: after this many respawns
     *  the farm stops replacing dead workers and, once none remain,
     *  drains the remaining points inline. */
    int maxWorkerRestarts = 4;

    /** Base respawn backoff in milliseconds; the delay doubles with
     *  every respawn used (exponential backoff, capped at 2^10x). */
    int respawnBackoffMs = 25;

    /** Keep the campaign journal (checkpoint/resume). The daemon
     *  turns it off: concurrent clients may run the same campaign
     *  digest, and two coordinators appending to one journal file
     *  would interleave — the shared ResultCache (atomic publishes)
     *  is the only cross-client state it needs. No effect when
     *  cacheDir is empty (the journal needs the cache anyway). */
    bool journal = true;

    /**
     * Streaming hook: called once per point, in submission order, as
     * soon as that point's result (computed, cache hit, or
     * quarantine placeholder) and every earlier point's result are
     * merged. Points whose worker reported an error are skipped (the
     * run still throws for them at the end, naming the lowest). The
     * callback runs on the coordinator thread between merges — it
     * must not re-enter the runner, and a slow callback stalls only
     * its own campaign.
     */
    std::function<void(std::size_t, const wl::WorkloadResult &)>
        onResult;
};

/** Observability counters of one FarmRunner::run. */
struct FarmStats
{
    std::uint64_t points = 0;    ///< points in the campaign
    std::uint64_t computed = 0;  ///< points actually simulated
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheStores = 0;
    std::uint64_t corruptEvictions = 0;
    /** Entries evicted because their stored payload length
     *  disagreed with the entry header (torn writes). */
    std::uint64_t lengthEvictions = 0;
    /** Entries evicted by the cache's LRU size-budget sweep. */
    std::uint64_t sizeEvictions = 0;
    /** Resume-path points satisfied from journal + cache. */
    std::uint64_t journalSkips = 0;
    /** Journal appends (or opens) that failed — a short fwrite or a
     *  failed fflush, the shape of a full disk. The results are
     *  still correct; the *checkpoint* is unreliable, so --strict
     *  fails on it and a one-time stderr warning names it. */
    std::uint64_t journalWriteErrors = 0;

    // Supervision counters (DESIGN.md §11).
    /** Workers SIGKILLed for blowing a per-point deadline. */
    std::uint64_t timeouts = 0;
    /** Replacement workers forked after a death or hang. */
    std::uint64_t respawns = 0;
    /** Response frames rejected after a valid header: short reads,
     *  checksum mismatches, index echoes, oversize claims. */
    std::uint64_t framesRejected = 0;
    /** Point requeues after a worker death or timeout. */
    std::uint64_t pointRetries = 0;
    /** Points quarantined after maxPointRetries worker deaths. */
    std::uint64_t quarantined = 0;
    /** Indices of the quarantined points (sorted ascending). */
    std::vector<std::uint64_t> quarantinedPoints;

    /** Workers initially forked (0 = fully inline run). */
    int workersUsed = 0;
    /** Points completed per worker slot; respawned workers append
     *  slots, so size == workersUsed + respawns on a faulty run. */
    std::vector<std::uint64_t> perWorkerPoints;
    /** Simulation CPU seconds burned per worker slot. */
    std::vector<double> perWorkerCpuSeconds;
    double wallSeconds = 0.0;

    /** Accumulate another run's scalar counters into this one (the
     *  daemon aggregates per-client campaigns this way). Per-worker
     *  and per-point vectors are per-run shapes and are not
     *  concatenated; workersUsed and wallSeconds sum. */
    void fold(const FarmStats &other);
};

class FarmRunner
{
  public:
    explicit FarmRunner(FarmOptions opts);

    /**
     * Run the campaign; results come back in submission order. A
     * point that fails (throws in a worker or inline) surfaces as a
     * std::runtime_error naming the lowest-index failing point —
     * thrown after every other point completed, like the
     * ExperimentRunner contract. A *quarantined* point (its workers
     * died or hung maxPointRetries times) does NOT throw: its slot
     * holds a placeholder result (correct == false, metric
     * "quarantined" == 1) and it is reported via stats() — callers
     * wanting hard failure check stats().quarantined (`--strict`).
     */
    std::vector<wl::WorkloadResult>
    run(const std::vector<FarmPoint> &points);

    /** The placeholder result a quarantined point merges as. */
    static wl::WorkloadResult quarantinedResult(const FarmPoint &p);

    /** Counters of the most recent run(). */
    const FarmStats &stats() const { return st; }

    /** The campaign identity `points` journals under: a digest of
     *  every point's label and key, in order. */
    static std::uint64_t
    campaignDigest(const std::vector<FarmPoint> &points);

  private:
    FarmOptions opts;
    FarmStats st;
};

} // namespace capsule::harness

#endif // CAPSULE_HARNESS_FARM_HH
