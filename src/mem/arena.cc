#include "mem/arena.hh"

// Arena is header-only; this translation unit pins the library archive.
