/**
 * @file
 * Simulated-address arena allocator. Runtime workloads keep their data
 * host-side but pair every node with a simulated address so that the
 * cache hierarchy and the locking table observe a realistic, stable
 * footprint. A bump allocator is the right model for the paper's
 * pre-allocated pools (worker stacks, graph nodes).
 */

#ifndef CAPSULE_MEM_ARENA_HH
#define CAPSULE_MEM_ARENA_HH

#include <cstdint>

#include "base/logging.hh"
#include "base/types.hh"

namespace capsule::mem
{

/** Bump allocator over a region of the simulated address space. */
class Arena
{
  public:
    /**
     * @param base first simulated address served by this arena
     * @param bytes capacity; exceeding it is a fatal user error
     */
    Arena(Addr base, std::uint64_t bytes)
        : start(base), limit(base + bytes), next(base)
    {}

    /** Allocate `bytes` with the given power-of-two alignment. */
    Addr
    alloc(std::uint64_t bytes, std::uint64_t align = 8)
    {
        CAPSULE_ASSERT((align & (align - 1)) == 0,
                       "alignment must be a power of two");
        Addr a = (next + (align - 1)) & ~(align - 1);
        if (a + bytes > limit)
            CAPSULE_FATAL("arena exhausted: need ", bytes, " at ", a,
                          ", limit ", limit);
        next = a + bytes;
        return a;
    }

    /** Release everything (pool reuse between data sets). */
    void reset() { next = start; }

    Addr base() const { return start; }
    std::uint64_t used() const { return next - start; }
    std::uint64_t capacity() const { return limit - start; }

  private:
    Addr start;
    Addr limit;
    Addr next;
};

} // namespace capsule::mem

#endif // CAPSULE_MEM_ARENA_HH
