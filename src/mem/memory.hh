/**
 * @file
 * Sparse byte-addressable simulated memory. Pages are allocated on
 * first touch; untouched memory reads as zero. Used by the functional
 * CapISA interpreter; the timing model only sees addresses.
 */

#ifndef CAPSULE_MEM_MEMORY_HH
#define CAPSULE_MEM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace capsule::mem
{

/** Sparse 64-bit simulated memory with on-demand 4 KiB pages. */
class Memory
{
  public:
    static constexpr Addr pageBytes = 4096;

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    /** Little-endian multi-byte access, size in {1,2,4,8}. */
    std::uint64_t read(Addr a, int size) const;
    void write(Addr a, std::uint64_t v, int size);

    double readDouble(Addr a) const;
    void writeDouble(Addr a, double v);

    /** Bulk copy into simulated memory. */
    void writeBlock(Addr a, const void *src, std::size_t len);
    /** Bulk copy out of simulated memory. */
    void readBlock(Addr a, void *dst, std::size_t len) const;

    /** Number of pages materialised so far. */
    std::size_t pageCount() const { return pages.size(); }

  private:
    using Page = std::vector<std::uint8_t>;

    Page *findPage(Addr a);
    const Page *findPageConst(Addr a) const;

    mutable std::unordered_map<Addr, Page> pages;
};

} // namespace capsule::mem

#endif // CAPSULE_MEM_MEMORY_HH
