/**
 * @file
 * Sparse byte-addressable simulated memory. Pages are allocated on
 * first touch; untouched memory reads as zero. Used by the functional
 * CapISA interpreter; the timing model only sees addresses.
 *
 * Hot-path design: a one-entry last-page translation cache sits in
 * front of the page hash map, so the common case — repeated accesses
 * within the same 4 KiB page — is a compare and a pointer deref
 * instead of an unordered_map lookup per byte. Multi-byte accesses
 * that fit in one page touch the map at most once; accesses that
 * straddle a page boundary touch it at most twice (one lookup per
 * page); block copies run page-sized memcpy chunks.
 */

#ifndef CAPSULE_MEM_MEMORY_HH
#define CAPSULE_MEM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace capsule::mem
{

/** Sparse 64-bit simulated memory with on-demand 4 KiB pages. */
class Memory
{
  public:
    static constexpr Addr pageBytes = 4096;

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    /** Little-endian multi-byte access, size in {1,2,4,8}. */
    std::uint64_t read(Addr a, int size) const;
    void write(Addr a, std::uint64_t v, int size);

    double readDouble(Addr a) const;
    void writeDouble(Addr a, double v);

    /** Bulk copy into simulated memory. */
    void writeBlock(Addr a, const void *src, std::size_t len);
    /** Bulk copy out of simulated memory. */
    void readBlock(Addr a, void *dst, std::size_t len) const;

    /** Number of pages materialised so far. */
    std::size_t pageCount() const { return pages.size(); }

  private:
    static_assert((pageBytes & (pageBytes - 1)) == 0,
                  "page-offset masking requires a power-of-two page");
    static constexpr Addr pageMask = pageBytes - 1;
    static constexpr Addr noPage = ~Addr(0);

    using Page = std::vector<std::uint8_t>;

    /** Byte storage of the page holding `a`, materialising it (and
     *  refreshing the translation cache) on first touch. */
    std::uint8_t *pageData(Addr a);
    /** Byte storage of the page holding `a`, or nullptr when the
     *  page was never touched (reads as zero). Refreshes the
     *  translation cache on a hit. */
    const std::uint8_t *pageDataConst(Addr a) const;

    mutable std::unordered_map<Addr, Page> pages;

    /** Last-page translation cache. Safe to hold across inserts:
     *  unordered_map references are stable and pages are never
     *  erased or resized. Never caches an unmapped page, so there is
     *  no negative entry to invalidate when a write materialises it. */
    mutable Addr cachedKey = noPage;
    mutable std::uint8_t *cachedData = nullptr;
};

} // namespace capsule::mem

#endif // CAPSULE_MEM_MEMORY_HH
