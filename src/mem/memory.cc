#include "mem/memory.hh"

#include <cstring>

#include "base/logging.hh"

namespace capsule::mem
{

Memory::Page *
Memory::findPage(Addr a)
{
    Addr key = a / pageBytes;
    auto it = pages.find(key);
    if (it == pages.end())
        it = pages.emplace(key, Page(pageBytes, 0)).first;
    return &it->second;
}

const Memory::Page *
Memory::findPageConst(Addr a) const
{
    Addr key = a / pageBytes;
    auto it = pages.find(key);
    return it == pages.end() ? nullptr : &it->second;
}

std::uint8_t
Memory::readByte(Addr a) const
{
    const Page *p = findPageConst(a);
    return p ? (*p)[a % pageBytes] : 0;
}

void
Memory::writeByte(Addr a, std::uint8_t v)
{
    (*findPage(a))[a % pageBytes] = v;
}

std::uint64_t
Memory::read(Addr a, int size) const
{
    CAPSULE_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                   "bad access size ", size);
    std::uint64_t v = 0;
    for (int i = 0; i < size; ++i)
        v |= std::uint64_t(readByte(a + Addr(i))) << (8 * i);
    return v;
}

void
Memory::write(Addr a, std::uint64_t v, int size)
{
    CAPSULE_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                   "bad access size ", size);
    for (int i = 0; i < size; ++i)
        writeByte(a + Addr(i), std::uint8_t(v >> (8 * i)));
}

double
Memory::readDouble(Addr a) const
{
    std::uint64_t bits = read(a, 8);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

void
Memory::writeDouble(Addr a, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write(a, bits, 8);
}

void
Memory::writeBlock(Addr a, const void *src, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    for (std::size_t i = 0; i < len; ++i)
        writeByte(a + Addr(i), bytes[i]);
}

void
Memory::readBlock(Addr a, void *dst, std::size_t len) const
{
    auto *bytes = static_cast<std::uint8_t *>(dst);
    for (std::size_t i = 0; i < len; ++i)
        bytes[i] = readByte(a + Addr(i));
}

} // namespace capsule::mem
