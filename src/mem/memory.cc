#include "mem/memory.hh"

#include <cstring>

#include "base/logging.hh"

namespace capsule::mem
{

std::uint8_t *
Memory::pageData(Addr a)
{
    Addr key = a / pageBytes;
    if (key == cachedKey)
        return cachedData;
    auto it = pages.find(key);
    if (it == pages.end())
        it = pages.emplace(key, Page(pageBytes, 0)).first;
    cachedKey = key;
    cachedData = it->second.data();
    return cachedData;
}

const std::uint8_t *
Memory::pageDataConst(Addr a) const
{
    Addr key = a / pageBytes;
    if (key == cachedKey)
        return cachedData;
    auto it = pages.find(key);
    if (it == pages.end())
        return nullptr;
    cachedKey = key;
    cachedData = it->second.data();
    return cachedData;
}

std::uint8_t
Memory::readByte(Addr a) const
{
    const std::uint8_t *p = pageDataConst(a);
    return p ? p[a & pageMask] : 0;
}

void
Memory::writeByte(Addr a, std::uint8_t v)
{
    pageData(a)[a & pageMask] = v;
}

std::uint64_t
Memory::read(Addr a, int size) const
{
    CAPSULE_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                   "bad access size ", size);
    Addr off = a & pageMask;
    std::uint64_t v = 0;
    if (off + Addr(size) <= pageBytes) {
        // In-page fast path: one (usually cached) translation, then
        // little-endian assembly the compiler folds into a single
        // load on little-endian hosts.
        const std::uint8_t *p = pageDataConst(a);
        if (!p)
            return 0;  // untouched memory reads as zero
        p += off;
        for (int i = 0; i < size; ++i)
            v |= std::uint64_t(p[i]) << (8 * i);
        return v;
    }
    // Page-straddling access: one lookup per page (exactly two).
    int first = int(pageBytes - off);
    const std::uint8_t *lo = pageDataConst(a);
    if (lo) {
        lo += off;
        for (int i = 0; i < first; ++i)
            v |= std::uint64_t(lo[i]) << (8 * i);
    }
    const std::uint8_t *hi = pageDataConst(a + Addr(first));
    if (hi) {
        for (int i = first; i < size; ++i)
            v |= std::uint64_t(hi[i - first]) << (8 * i);
    }
    return v;
}

void
Memory::write(Addr a, std::uint64_t v, int size)
{
    CAPSULE_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                   "bad access size ", size);
    Addr off = a & pageMask;
    if (off + Addr(size) <= pageBytes) {
        std::uint8_t *p = pageData(a) + off;
        for (int i = 0; i < size; ++i)
            p[i] = std::uint8_t(v >> (8 * i));
        return;
    }
    int first = int(pageBytes - off);
    std::uint8_t *lo = pageData(a) + off;
    for (int i = 0; i < first; ++i)
        lo[i] = std::uint8_t(v >> (8 * i));
    std::uint8_t *hi = pageData(a + Addr(first));
    for (int i = first; i < size; ++i)
        hi[i - first] = std::uint8_t(v >> (8 * i));
}

double
Memory::readDouble(Addr a) const
{
    std::uint64_t bits = read(a, 8);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

void
Memory::writeDouble(Addr a, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write(a, bits, 8);
}

void
Memory::writeBlock(Addr a, const void *src, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        Addr off = a & pageMask;
        std::size_t chunk =
            std::min<std::size_t>(len, std::size_t(pageBytes - off));
        std::memcpy(pageData(a) + off, bytes, chunk);
        a += Addr(chunk);
        bytes += chunk;
        len -= chunk;
    }
}

void
Memory::readBlock(Addr a, void *dst, std::size_t len) const
{
    auto *bytes = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        Addr off = a & pageMask;
        std::size_t chunk =
            std::min<std::size_t>(len, std::size_t(pageBytes - off));
        const std::uint8_t *p = pageDataConst(a);
        if (p)
            std::memcpy(bytes, p + off, chunk);
        else
            std::memset(bytes, 0, chunk);  // unmapped reads as zero
        a += Addr(chunk);
        bytes += chunk;
        len -= chunk;
    }
}

} // namespace capsule::mem
