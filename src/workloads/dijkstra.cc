#include "workloads/dijkstra.hh"

#include "base/logging.hh"

namespace capsule::wl
{
namespace
{

using rt::Task;
using rt::Val;
using rt::Worker;

/** Branch/probe site ids (stable PCs shared by all workers). */
enum Site : std::uint32_t
{
    siteCompare = 10,
    siteEdgeLoop = 11,
    siteProbe = 12,
};

/** Shared state of one Dijkstra run. */
struct Run
{
    const Graph &g;
    GraphLayout layout;
    std::vector<std::int64_t> dist;

    Run(const Graph &graph, mem::Arena &arena)
        : g(graph), layout(graph, arena),
          dist(std::size_t(graph.nodes()), unreachable)
    {}
};

/**
 * Shared node-examination step: lock the record, compare the carried
 * path with the recorded shortest path, update or die. Returns (via
 * out-param) whether the worker should continue to the children.
 */
Task
examineNode(Worker &w, Run &run, int node, std::int64_t plen,
            bool *continue_out)
{
    Addr naddr = run.layout.node(node);
    co_await w.lock(naddr);
    Val d = co_await w.load(naddr);
    bool shorter = plen < run.dist[std::size_t(node)];
    co_await w.branch(siteCompare, shorter, d);
    if (!shorter) {
        co_await w.unlock(naddr);
        *continue_out = false;
        co_return;
    }
    run.dist[std::size_t(node)] = plen;
    Val nv = co_await w.alu(d);
    co_await w.store(naddr, nv);
    co_await w.unlock(naddr);
    *continue_out = true;
}

/**
 * Visit `node` with traversed path length `plen`; the component
 * version of Figure 2(a). A denied division means the worker simply
 * carries on serially — and, since every node visit re-executes this
 * code, it keeps probing as it walks (the constant probing that lets
 * the machine adapt the moment a context frees).
 */
Task
visit(Worker &w, Run &run, int node, std::int64_t plen)
{
    bool go = false;
    co_await examineNode(w, run, node, plen, &go);
    if (!go) {
        // Sub-optimal path: the worker dies (kthr emitted by the
        // runtime when this coroutine finishes).
        co_return;
    }

    const auto &edges = run.g.out[std::size_t(node)];
    for (std::size_t i = 0; i < edges.size(); ++i) {
        bool more = i + 1 < edges.size();
        int child = edges[i].to;
        std::int64_t nplen = plen + edges[i].weight;

        // Touch the edge record and compute the tagged distance.
        Val e = co_await w.load(run.layout.edge(node, i));
        co_await w.alu(e);
        co_await w.branch(siteEdgeLoop, more, e);

        if (more) {
            bool granted = co_await w.probe(
                [&run, child, nplen](Worker &cw) -> Task {
                    return visit(cw, run, child, nplen);
                },
                siteProbe);
            if (granted)
                continue;  // the child component explores that path
        }
        // Denied (or last edge): the worker itself moves to the
        // child node and carries on, probing again at future nodes.
        co_await visit(w, run, child, nplen);
    }
}

/**
 * The standard imperative Dijkstra: a central binary heap of tagged
 * nodes. Heap sift operations emit the pointer-chasing loads and
 * compare branches of the real data structure.
 */
Task
dijkstraNormal(Worker &w, Run &run, int root, Addr heap_base)
{
    using Item = std::pair<std::int64_t, int>;
    std::vector<Item> heap;

    auto heapAt = [&](std::size_t i) {
        return heap_base + Addr(i) * 16;
    };
    auto siftUp = [&](std::size_t i) -> Task {
        while (i > 0) {
            std::size_t up = (i - 1) / 2;
            Val a = co_await w.load(heapAt(i));
            Val b = co_await w.load(heapAt(up));
            bool swapUp = heap[i] < heap[up];
            co_await w.branch(siteCompare, swapUp, a);
            if (!swapUp)
                break;
            std::swap(heap[i], heap[up]);
            co_await w.store(heapAt(i), b);
            co_await w.store(heapAt(up), a);
            i = up;
        }
    };
    auto siftDown = [&]() -> Task {
        std::size_t i = 0;
        for (;;) {
            std::size_t l = 2 * i + 1;
            std::size_t r = l + 1;
            std::size_t best = i;
            if (l < heap.size()) {
                Val a = co_await w.load(heapAt(l));
                co_await w.branch(siteEdgeLoop,
                                  heap[l] < heap[best], a);
                if (heap[l] < heap[best])
                    best = l;
            }
            if (r < heap.size()) {
                Val a = co_await w.load(heapAt(r));
                co_await w.branch(siteEdgeLoop,
                                  heap[r] < heap[best], a);
                if (heap[r] < heap[best])
                    best = r;
            }
            if (best == i)
                break;
            std::swap(heap[i], heap[best]);
            Val v = co_await w.load(heapAt(best));
            co_await w.store(heapAt(i), v);
            i = best;
        }
    };

    run.dist[std::size_t(root)] = 0;
    heap.emplace_back(0, root);
    co_await w.store(heapAt(0));

    while (!heap.empty()) {
        auto [d, n] = heap.front();
        Val top = co_await w.load(heapAt(0));
        heap.front() = heap.back();
        heap.pop_back();
        co_await w.store(heapAt(0), top);
        co_await siftDown();

        bool stale = d > run.dist[std::size_t(n)];
        co_await w.branch(siteCompare, stale, top);
        if (stale)
            continue;
        const auto &edges = run.g.out[std::size_t(n)];
        for (std::size_t i = 0; i < edges.size(); ++i) {
            Val e = co_await w.load(run.layout.edge(n, i));
            Val dv = co_await w.load(run.layout.node(edges[i].to));
            std::int64_t nd = d + edges[i].weight;
            bool relax = nd < run.dist[std::size_t(edges[i].to)];
            co_await w.branch(siteProbe, relax, dv);
            co_await w.branch(siteEdgeLoop, i + 1 < edges.size(), e);
            if (!relax)
                continue;
            run.dist[std::size_t(edges[i].to)] = nd;
            co_await w.store(run.layout.node(edges[i].to), dv);
            heap.emplace_back(nd, edges[i].to);
            co_await w.store(heapAt(heap.size() - 1), dv);
            co_await siftUp(heap.size() - 1);
        }
    }
}

} // namespace

DijkstraResult
runDijkstraNormal(const sim::MachineConfig &cfg,
                  const DijkstraParams &params)
{
    Rng rng(params.seed);
    Graph g = Graph::random(params.nodes, params.avgDegree,
                            params.maxWeight, rng);

    rt::Exec exec;
    Run run(g, exec.arena());
    Addr heapBase =
        exec.arena().alloc(std::uint64_t(params.nodes) * 4 * 16, 64);

    int root = params.root;
    DijkstraResult res;
    res.workload = "dijkstra-normal";
    res.stats =
        simulate(cfg, exec, [&run, root, heapBase](Worker &w) -> Task {
            return dijkstraNormal(w, run, root, heapBase);
        });
    res.dist = run.dist;
    res.correct = run.dist == shortestPaths(g, root);
    return res;
}

DijkstraResult
runDijkstra(const sim::MachineConfig &cfg, const DijkstraParams &params,
            sim::Machine::DivisionObserver obs)
{
    Rng rng(params.seed);
    Graph g = Graph::random(params.nodes, params.avgDegree,
                            params.maxWeight, rng);

    rt::Exec exec;
    Run run(g, exec.arena());

    int root = params.root;
    DijkstraResult res;
    res.workload = "dijkstra";
    res.stats = simulate(
        cfg, exec,
        [&run, root](Worker &w) -> Task {
            return visit(w, run, root, 0);
        },
        std::move(obs));
    res.dist = run.dist;
    res.correct = run.dist == shortestPaths(g, root);
    return res;
}

} // namespace capsule::wl
