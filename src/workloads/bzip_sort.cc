#include "workloads/bzip_sort.hh"

#include <algorithm>

#include "base/logging.hh"
#include "workloads/lzw.hh"  // makeText

namespace capsule::wl
{
namespace
{

using rt::Task;
using rt::Val;
using rt::Worker;

enum Site : std::uint32_t
{
    siteCmpLoop = 70,
    sitePartition = 71,
    siteProbe = 72,
    siteInsert = 73,
};

struct Run
{
    const std::vector<std::uint8_t> &block;
    std::vector<int> &order;
    int maxCompare;
    Addr blockAddr;
    Addr orderAddr;

    Addr chr(int i) const
    {
        return blockAddr + Addr(i % int(block.size()));
    }
    Addr slot(int i) const { return orderAddr + Addr(i) * 4; }

    /** Host-side comparator identical to the golden order. */
    bool
    less(int a, int b) const
    {
        int n = int(block.size());
        for (int k = 0; k < maxCompare; ++k) {
            std::uint8_t ca = block[std::size_t((a + k) % n)];
            std::uint8_t cb = block[std::size_t((b + k) % n)];
            if (ca != cb)
                return ca < cb;
        }
        return a < b;
    }
};

/** Emit the per-character work of one suffix comparison. */
Task
emitCompare(Worker &w, Run &run, int a, int b)
{
    int n = int(run.block.size());
    for (int k = 0; k < run.maxCompare; ++k) {
        std::uint8_t ca = run.block[std::size_t((a + k) % n)];
        std::uint8_t cb = run.block[std::size_t((b + k) % n)];
        Val va = co_await w.load(run.chr(a + k));
        Val vb = co_await w.load(run.chr(b + k));
        bool differ = ca != cb;
        co_await w.branch(siteCmpLoop, !differ, va);
        if (differ) {
            co_await w.alu(va, vb);
            co_return;
        }
    }
}

/** Componentised quicksort over suffix indices. */
Task
sortSuffixes(Worker &w, Run &run, int lo, int hi, int cutoff)
{
    if (hi - lo + 1 <= cutoff) {
        // Insertion sort with full comparison emission.
        for (int i = lo + 1; i <= hi; ++i) {
            int key = run.order[std::size_t(i)];
            int j = i - 1;
            while (j >= lo && run.less(key, run.order[std::size_t(j)])) {
                co_await emitCompare(w, run, key,
                                     run.order[std::size_t(j)]);
                co_await w.branch(siteInsert, true, Val{});
                run.order[std::size_t(j + 1)] =
                    run.order[std::size_t(j)];
                co_await w.store(run.slot(j + 1));
                --j;
            }
            co_await w.branch(siteInsert, false, Val{});
            run.order[std::size_t(j + 1)] = key;
            co_await w.store(run.slot(j + 1));
        }
        co_return;
    }

    int pivot = run.order[std::size_t((lo + hi) / 2)];
    co_await w.load(run.slot((lo + hi) / 2));
    int i = lo;
    int j = hi;
    while (true) {
        while (run.less(run.order[std::size_t(i)], pivot)) {
            co_await emitCompare(w, run, run.order[std::size_t(i)],
                                 pivot);
            co_await w.branch(sitePartition, true, Val{});
            ++i;
        }
        co_await w.branch(sitePartition, false, Val{});
        while (run.less(pivot, run.order[std::size_t(j)])) {
            co_await emitCompare(w, run, pivot,
                                 run.order[std::size_t(j)]);
            co_await w.branch(sitePartition, true, Val{});
            --j;
        }
        co_await w.branch(sitePartition, false, Val{});
        if (i >= j)
            break;
        std::swap(run.order[std::size_t(i)], run.order[std::size_t(j)]);
        Val a = co_await w.load(run.slot(i));
        Val b = co_await w.load(run.slot(j));
        co_await w.store(run.slot(i), b);
        co_await w.store(run.slot(j), a);
        ++i;
        --j;
    }
    int mid = j;

    int rlo = mid + 1;
    bool granted = co_await w.probe(
        [&run, rlo, hi, cutoff](Worker &cw) -> Task {
            return sortSuffixes(cw, run, rlo, hi, cutoff);
        },
        siteProbe);
    co_await sortSuffixes(w, run, lo, mid, cutoff);
    if (!granted)
        co_await sortSuffixes(w, run, rlo, hi, cutoff);
}

} // namespace

std::vector<int>
suffixOrder(const std::vector<std::uint8_t> &block, int max_compare)
{
    std::vector<int> order(block.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = int(i);
    int n = int(block.size());
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        for (int k = 0; k < max_compare; ++k) {
            std::uint8_t ca = block[std::size_t((a + k) % n)];
            std::uint8_t cb = block[std::size_t((b + k) % n)];
            if (ca != cb)
                return ca < cb;
        }
        return a < b;
    });
    return order;
}

WorkloadResult
runBzip(const sim::MachineConfig &cfg, const BzipParams &params)
{
    Rng rng(params.seed);
    std::vector<std::uint8_t> block =
        makeText(params.blockBytes, 64, rng);

    std::vector<int> order(block.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = int(i);

    rt::Exec exec;
    Run run{block, order, params.maxCompare,
            exec.arena().alloc(block.size(), 64),
            exec.arena().alloc(order.size() * 4, 64)};

    int hi = int(order.size()) - 1;
    int cutoff = params.serialCutoff;
    WorkloadResult res;
    res.workload = "bzip2";
    res.stats =
        simulate(cfg, exec, [&run, hi, cutoff](Worker &w) -> Task {
            return sortSuffixes(w, run, 0, hi, cutoff);
        });
    res.correct = order == suffixOrder(block, params.maxCompare);

    if (params.serialSectionOps > 0) {
        rt::Exec serialExec;
        auto serial = simulate(
            cfg, serialExec,
            serialSection(serialExec, params.serialSectionOps));
        res.serialCycles = serial.cycles;
    }
    return res;
}

} // namespace capsule::wl
