#include "workloads/crafty_search.hh"

#include <algorithm>
#include <deque>

#include "base/logging.hh"

namespace capsule::wl
{
namespace
{

using rt::Task;
using rt::Val;
using rt::Worker;

enum Site : std::uint32_t
{
    siteQueueEmpty = 80,
    siteDoneFlag = 81,
    siteSpin = 82,
    siteNodeLoop = 83,
    sitePoolSpawn = 84,
};

/** One work item: a subtree handed to the pool. */
struct Item
{
    int node;        ///< subtree root
    bool maximising; ///< side to move at that node
    std::int64_t value = 0;
};

struct Run
{
    const GameTree &tree;
    Addr nodeBase;
    Addr queueAddr;
    Addr doneAddr;
    std::deque<int> queue;     ///< indices into items
    std::vector<Item> items;
    bool allDone = false;
    std::uint64_t spins = 0;
    JoinCounter *joins = nullptr;

    Addr node(int i) const { return nodeBase + Addr(i) * 32; }
};

/** Host-side minimax (also the golden reference). */
std::int64_t
minimaxNode(const GameTree &t, int node, bool maximising)
{
    const auto &n = t.nodes[std::size_t(node)];
    if (n.children.empty())
        return n.score;
    std::int64_t best = maximising ? std::numeric_limits<std::int64_t>::min()
                                   : std::numeric_limits<std::int64_t>::max();
    for (int c : n.children) {
        std::int64_t v = minimaxNode(t, c, !maximising);
        best = maximising ? std::max(best, v) : std::min(best, v);
    }
    return best;
}

/** Emit the serial search of one subtree (division inhibited). */
Task
searchSubtree(Worker &w, Run &run, int node, bool maximising,
              std::int64_t *out)
{
    const auto &n = run.tree.nodes[std::size_t(node)];
    Val rec = co_await w.load(run.node(node));
    co_await w.alu(rec);
    if (n.children.empty()) {
        *out = n.score;
        co_return;
    }
    std::int64_t best = maximising
                            ? std::numeric_limits<std::int64_t>::min()
                            : std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < n.children.size(); ++i) {
        std::int64_t v = 0;
        co_await searchSubtree(w, run, n.children[i], !maximising, &v);
        best = maximising ? std::max(best, v) : std::min(best, v);
        co_await w.alu(rec);
        co_await w.branch(siteNodeLoop, i + 1 < n.children.size(), rec);
    }
    *out = best;
}

/** The pool-thread body: lock-protected queue plus active wait. */
Task
poolWorker(Worker &w, Run &run)
{
    for (;;) {
        co_await w.lock(run.queueAddr);
        Val head = co_await w.load(run.queueAddr);
        bool empty = run.queue.empty();
        co_await w.branch(siteQueueEmpty, empty, head);
        if (!empty) {
            int item = run.queue.front();
            run.queue.pop_front();
            Val nh = co_await w.alu(head);
            co_await w.store(run.queueAddr, nh);
            // Crafty's Split(): the position state is copied into
            // the split block while the lock is held, serialising
            // work handoffs across the pool.
            for (int blk = 0; blk < 8; ++blk) {
                Val v = co_await w.load(run.queueAddr + 64 +
                                        Addr(blk) * 8);
                co_await w.store(run.queueAddr + 192 + Addr(blk) * 8,
                                 v);
                co_await w.compute(4);
            }
            co_await w.unlock(run.queueAddr);

            Item &it = run.items[std::size_t(item)];
            co_await searchSubtree(w, run, it.node, it.maximising,
                                   &it.value);
            co_await run.joins->done(w);
            continue;
        }
        co_await w.unlock(run.queueAddr);

        Val done = co_await w.load(run.doneAddr);
        co_await w.branch(siteDoneFlag, run.allDone, done);
        if (run.allDone)
            co_return;
        // Active wait: burn issue slots, exactly what a software
        // thread pool does between work items.
        ++run.spins;
        co_await w.compute(8);
        co_await w.jump(siteSpin);
    }
}

/** The ancestor: spawn the pool, generate work while searching the
 *  upper tree (crafty's owner thread), then help drain the queue. */
Task
craftyMain(Worker &w, Run &run, int pool_threads,
           std::int64_t *value_out)
{
    run.joins->reset(std::int64_t(run.items.size()));

    // Spawn the pool: the pthread_create calls of the original,
    // expressed as divisions that the architecture grants while
    // contexts are free.
    for (int p = 0; p < pool_threads; ++p) {
        co_await w.probe(
            [&run](Worker &cw) -> Task { return poolWorker(cw, run); },
            sitePoolSpawn);
    }

    // Split points are discovered incrementally as the owner walks
    // the upper tree; the pool spins (and churns the queue lock)
    // between arrivals — the software-managed-context overhead the
    // paper observes.
    for (std::size_t i = 0; i < run.items.size(); ++i) {
        // Upper-tree search work between split points.
        Val v = co_await w.load(run.node(run.items[i].node));
        co_await w.chain(v, 24);
        co_await w.compute(24);
        co_await w.lock(run.queueAddr);
        run.queue.push_back(int(i));
        Val h = co_await w.load(run.queueAddr);
        co_await w.store(run.queueAddr, h);
        co_await w.unlock(run.queueAddr);
    }

    // The ancestor works the queue too.
    for (;;) {
        co_await w.lock(run.queueAddr);
        Val head = co_await w.load(run.queueAddr);
        bool empty = run.queue.empty();
        co_await w.branch(siteQueueEmpty, empty, head);
        if (empty) {
            co_await w.unlock(run.queueAddr);
            break;
        }
        int item = run.queue.front();
        run.queue.pop_front();
        Val nh = co_await w.alu(head);
        co_await w.store(run.queueAddr, nh);
        // Split-block copy under the lock (see poolWorker).
        for (int blk = 0; blk < 8; ++blk) {
            Val v = co_await w.load(run.queueAddr + 64 +
                                    Addr(blk) * 8);
            co_await w.store(run.queueAddr + 192 + Addr(blk) * 8, v);
            co_await w.compute(4);
        }
        co_await w.unlock(run.queueAddr);
        Item &it = run.items[std::size_t(item)];
        co_await searchSubtree(w, run, it.node, it.maximising,
                               &it.value);
        co_await run.joins->done(w);
    }

    // Tell the spinners the game is over, then wait for stragglers.
    run.allDone = true;
    co_await w.store(run.doneAddr);
    co_await run.joins->wait(w);

    // Combine: the root maximises over its children's minimax values.
    std::int64_t rootBest = std::numeric_limits<std::int64_t>::min();
    for (const Item &it : run.items) {
        rootBest = std::max(rootBest, it.value);
        Val v = co_await w.load(run.node(it.node));
        co_await w.alu(v);
    }
    *value_out = rootBest;
}

} // namespace

GameTree
GameTree::random(int branching, int depth, int max_score, Rng &rng)
{
    CAPSULE_ASSERT(branching > 0 && depth >= 0, "bad tree shape");
    GameTree t;
    t.nodes.emplace_back();
    // Breadth-first construction of the complete tree.
    std::vector<int> frontier{0};
    for (int d = 0; d < depth; ++d) {
        std::vector<int> next;
        for (int node : frontier) {
            for (int b = 0; b < branching; ++b) {
                int id = int(t.nodes.size());
                t.nodes.emplace_back();
                t.nodes[std::size_t(node)].children.push_back(id);
                next.push_back(id);
            }
        }
        frontier = std::move(next);
    }
    for (int leaf : frontier)
        t.nodes[std::size_t(leaf)].score =
            std::int64_t(rng.uniform(0, std::uint64_t(max_score)));
    return t;
}

std::int64_t
minimaxValue(const GameTree &t)
{
    return minimaxNode(t, 0, true);
}

WorkloadResult
runCrafty(const sim::MachineConfig &cfg, const CraftyParams &params)
{
    Rng rng(params.seed);
    GameTree tree = GameTree::random(params.branching, params.depth,
                                     params.maxScore, rng);

    rt::Exec exec;
    Run run{tree,
            exec.arena().alloc(tree.nodes.size() * 32, 64),
            exec.arena().alloc(64, 64),
            exec.arena().alloc(8, 8),
            {},
            {},
            false,
            0,
            nullptr};
    JoinCounter joins(exec);
    run.joins = &joins;

    // Work items: the root's children (the original splits the
    // search tree near the root, so work is scarce relative to a big
    // pool — the reason extra pool threads degrade performance).
    for (int d1 : tree.nodes[0].children)
        run.items.push_back(Item{d1, false, 0});

    std::int64_t value = 0;
    int pool = params.poolThreads;
    WorkloadResult res;
    res.workload = "crafty";
    res.stats =
        simulate(cfg, exec, [&run, pool, &value](Worker &w) -> Task {
            return craftyMain(w, run, pool, &value);
        });
    res.setMetric("value", double(value));
    res.setMetric("spin_iterations", double(run.spins));
    res.correct = value == minimaxValue(tree);
    return res;
}

} // namespace capsule::wl
