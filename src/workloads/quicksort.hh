/**
 * @file
 * Componentised QuickSort (Section 5, Figures 5 and 6): a worker
 * partitions its list segment around a pivot, then probes to divide
 * itself — the child sorts one half while the parent keeps the other;
 * denied divisions fall back to serial recursion. Pivot-dependent
 * segment sizes make the division tree irregular (Figure 6).
 */

#ifndef CAPSULE_WL_QUICKSORT_HH
#define CAPSULE_WL_QUICKSORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "sim/machine.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

namespace capsule::wl
{

/** Input-list distributions ("500 lists of various distributions"). */
enum class ListDistribution
{
    Uniform,
    Gaussian,
    Exponential,
    NearlySorted,
    FewValues,
};

const char *listDistributionName(ListDistribution d);

/** Generate one input list. */
std::vector<std::int64_t> makeList(ListDistribution d, int length,
                                   Rng &rng);

/** Parameters of one QuickSort experiment. */
struct QuickSortParams
{
    int length = 4096;
    ListDistribution distribution = ListDistribution::Uniform;
    std::uint64_t seed = 1;
    /** Segments at or below this size sort serially (insertion). */
    int serialCutoff = 16;
};

/** Simulate componentised QuickSort under `cfg`'s division policy. */
WorkloadResult runQuickSort(const sim::MachineConfig &cfg,
                            const QuickSortParams &params,
                            sim::Machine::DivisionObserver obs =
                                nullptr);

} // namespace capsule::wl

#endif // CAPSULE_WL_QUICKSORT_HH
